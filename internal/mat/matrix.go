// Package mat provides a small, self-contained dense linear-algebra kernel
// used by the control-design and scheduling layers of this repository.
//
// It implements exactly the operations the cache-aware control co-design
// pipeline needs — general real matrices, LU-based solves, Householder QR,
// Hessenberg reduction, Francis double-shift QR eigenvalues, and the matrix
// exponential — with no external dependencies. Matrices are dense,
// row-major, and sized at construction time.
package mat

import (
	"fmt"
	"math"
	"strings"
)

// Matrix is a dense, row-major real matrix.
//
// The zero value is not usable; construct matrices with New, NewFromRows,
// Identity, or Zeros.
type Matrix struct {
	rows, cols int
	data       []float64
}

// New returns an r-by-c zero matrix. It panics if either dimension is
// non-positive.
func New(r, c int) *Matrix {
	if r <= 0 || c <= 0 {
		panic(fmt.Sprintf("mat: invalid dimensions %dx%d", r, c))
	}
	return &Matrix{rows: r, cols: c, data: make([]float64, r*c)}
}

// NewFromRows builds a matrix from a slice of equal-length rows. It panics
// on an empty input or ragged rows.
func NewFromRows(rows [][]float64) *Matrix {
	if len(rows) == 0 || len(rows[0]) == 0 {
		panic("mat: NewFromRows on empty input")
	}
	m := New(len(rows), len(rows[0]))
	for i, row := range rows {
		if len(row) != m.cols {
			panic(fmt.Sprintf("mat: ragged row %d: got %d entries, want %d", i, len(row), m.cols))
		}
		copy(m.data[i*m.cols:(i+1)*m.cols], row)
	}
	return m
}

// Identity returns the n-by-n identity matrix.
func Identity(n int) *Matrix {
	m := New(n, n)
	for i := 0; i < n; i++ {
		m.data[i*n+i] = 1
	}
	return m
}

// Zeros returns an r-by-c zero matrix. It is an alias of New provided for
// readability at call sites that build block matrices.
func Zeros(r, c int) *Matrix { return New(r, c) }

// ColVec returns a column vector (len(v)-by-1 matrix) with the given entries.
func ColVec(v ...float64) *Matrix {
	m := New(len(v), 1)
	copy(m.data, v)
	return m
}

// RowVec returns a row vector (1-by-len(v) matrix) with the given entries.
func RowVec(v ...float64) *Matrix {
	m := New(1, len(v))
	copy(m.data, v)
	return m
}

// Rows returns the number of rows.
func (m *Matrix) Rows() int { return m.rows }

// Cols returns the number of columns.
func (m *Matrix) Cols() int { return m.cols }

// At returns the element at row i, column j (0-based). It panics if the
// indices are out of range.
func (m *Matrix) At(i, j int) float64 {
	m.check(i, j)
	return m.data[i*m.cols+j]
}

// Set assigns the element at row i, column j (0-based). It panics if the
// indices are out of range.
func (m *Matrix) Set(i, j int, v float64) {
	m.check(i, j)
	m.data[i*m.cols+j] = v
}

func (m *Matrix) check(i, j int) {
	if i < 0 || i >= m.rows || j < 0 || j >= m.cols {
		panic(fmt.Sprintf("mat: index (%d,%d) out of range for %dx%d matrix", i, j, m.rows, m.cols))
	}
}

// Clone returns a deep copy of m.
func (m *Matrix) Clone() *Matrix {
	c := New(m.rows, m.cols)
	copy(c.data, m.data)
	return c
}

// Equal reports whether m and b have identical shape and entries equal
// within absolute tolerance tol.
func (m *Matrix) Equal(b *Matrix, tol float64) bool {
	if m.rows != b.rows || m.cols != b.cols {
		return false
	}
	for i, v := range m.data {
		if math.Abs(v-b.data[i]) > tol {
			return false
		}
	}
	return true
}

// Add returns m + b. It panics on shape mismatch.
func (m *Matrix) Add(b *Matrix) *Matrix {
	m.sameShape(b, "Add")
	out := New(m.rows, m.cols)
	for i, v := range m.data {
		out.data[i] = v + b.data[i]
	}
	return out
}

// Sub returns m - b. It panics on shape mismatch.
func (m *Matrix) Sub(b *Matrix) *Matrix {
	m.sameShape(b, "Sub")
	out := New(m.rows, m.cols)
	for i, v := range m.data {
		out.data[i] = v - b.data[i]
	}
	return out
}

// AddScaled returns m + s*b. It panics on shape mismatch.
func (m *Matrix) AddScaled(s float64, b *Matrix) *Matrix {
	m.sameShape(b, "AddScaled")
	out := New(m.rows, m.cols)
	for i, v := range m.data {
		out.data[i] = v + s*b.data[i]
	}
	return out
}

func (m *Matrix) sameShape(b *Matrix, op string) {
	if m.rows != b.rows || m.cols != b.cols {
		panic(fmt.Sprintf("mat: %s shape mismatch %dx%d vs %dx%d", op, m.rows, m.cols, b.rows, b.cols))
	}
}

// Scale returns s*m.
func (m *Matrix) Scale(s float64) *Matrix {
	out := New(m.rows, m.cols)
	for i, v := range m.data {
		out.data[i] = s * v
	}
	return out
}

// Mul returns the matrix product m*b. It panics if m.Cols() != b.Rows().
func (m *Matrix) Mul(b *Matrix) *Matrix {
	if m.cols != b.rows {
		panic(fmt.Sprintf("mat: Mul shape mismatch %dx%d * %dx%d", m.rows, m.cols, b.rows, b.cols))
	}
	out := New(m.rows, b.cols)
	for i := 0; i < m.rows; i++ {
		mrow := m.data[i*m.cols : (i+1)*m.cols]
		orow := out.data[i*b.cols : (i+1)*b.cols]
		for k, mv := range mrow {
			if mv == 0 {
				continue
			}
			brow := b.data[k*b.cols : (k+1)*b.cols]
			for j, bv := range brow {
				orow[j] += mv * bv
			}
		}
	}
	return out
}

// Transpose returns the transpose of m.
func (m *Matrix) Transpose() *Matrix {
	out := New(m.cols, m.rows)
	m.TransposeTo(out)
	return out
}

// TransposeTo writes the transpose of m into dst without allocating. dst
// must not alias m (except for 1x1 matrices, where aliasing is harmless).
func (m *Matrix) TransposeTo(dst *Matrix) {
	if dst.rows != m.cols || dst.cols != m.rows {
		panic(fmt.Sprintf("mat: TransposeTo dst %dx%d, want %dx%d", dst.rows, dst.cols, m.cols, m.rows))
	}
	for i := 0; i < m.rows; i++ {
		for j := 0; j < m.cols; j++ {
			dst.data[j*m.rows+i] = m.data[i*m.cols+j]
		}
	}
}

// InfNorm returns the maximum absolute row sum of m.
func (m *Matrix) InfNorm() float64 {
	max := 0.0
	for i := 0; i < m.rows; i++ {
		s := 0.0
		for j := 0; j < m.cols; j++ {
			s += math.Abs(m.data[i*m.cols+j])
		}
		if s > max {
			max = s
		}
	}
	return max
}

// Norm1 returns the maximum absolute column sum of m.
func (m *Matrix) Norm1() float64 {
	sums := make([]float64, m.cols)
	for i := 0; i < m.rows; i++ {
		for j := 0; j < m.cols; j++ {
			sums[j] += math.Abs(m.data[i*m.cols+j])
		}
	}
	max := 0.0
	for _, s := range sums {
		if s > max {
			max = s
		}
	}
	return max
}

// Frobenius returns the Frobenius norm of m.
func (m *Matrix) Frobenius() float64 {
	s := 0.0
	for _, v := range m.data {
		s += v * v
	}
	return math.Sqrt(s)
}

// MaxAbs returns the largest absolute entry of m.
func (m *Matrix) MaxAbs() float64 {
	max := 0.0
	for _, v := range m.data {
		if a := math.Abs(v); a > max {
			max = a
		}
	}
	return max
}

// Trace returns the sum of diagonal entries. It panics if m is not square.
func (m *Matrix) Trace() float64 {
	m.mustSquare("Trace")
	t := 0.0
	for i := 0; i < m.rows; i++ {
		t += m.data[i*m.cols+i]
	}
	return t
}

func (m *Matrix) mustSquare(op string) {
	if m.rows != m.cols {
		panic(fmt.Sprintf("mat: %s requires a square matrix, got %dx%d", op, m.rows, m.cols))
	}
}

// Row returns a copy of row i.
func (m *Matrix) Row(i int) []float64 {
	m.check(i, 0)
	out := make([]float64, m.cols)
	copy(out, m.data[i*m.cols:(i+1)*m.cols])
	return out
}

// Col returns a copy of column j.
func (m *Matrix) Col(j int) []float64 {
	m.check(0, j)
	out := make([]float64, m.rows)
	for i := 0; i < m.rows; i++ {
		out[i] = m.data[i*m.cols+j]
	}
	return out
}

// SetRow overwrites row i with v. It panics if len(v) != Cols().
func (m *Matrix) SetRow(i int, v []float64) {
	m.check(i, 0)
	if len(v) != m.cols {
		panic(fmt.Sprintf("mat: SetRow length %d != cols %d", len(v), m.cols))
	}
	copy(m.data[i*m.cols:(i+1)*m.cols], v)
}

// SetCol overwrites column j with v. It panics if len(v) != Rows().
func (m *Matrix) SetCol(j int, v []float64) {
	m.check(0, j)
	if len(v) != m.rows {
		panic(fmt.Sprintf("mat: SetCol length %d != rows %d", len(v), m.rows))
	}
	for i := 0; i < m.rows; i++ {
		m.data[i*m.cols+j] = v[i]
	}
}

// Slice returns a copy of the submatrix with rows [r0,r1) and columns
// [c0,c1). It panics on an empty or out-of-range selection.
func (m *Matrix) Slice(r0, r1, c0, c1 int) *Matrix {
	if r0 < 0 || r1 > m.rows || c0 < 0 || c1 > m.cols || r0 >= r1 || c0 >= c1 {
		panic(fmt.Sprintf("mat: Slice [%d:%d,%d:%d] out of range for %dx%d", r0, r1, c0, c1, m.rows, m.cols))
	}
	out := New(r1-r0, c1-c0)
	for i := r0; i < r1; i++ {
		copy(out.data[(i-r0)*out.cols:(i-r0+1)*out.cols], m.data[i*m.cols+c0:i*m.cols+c1])
	}
	return out
}

// SetSlice copies b into m starting at row r0, column c0. It panics if b
// does not fit.
func (m *Matrix) SetSlice(r0, c0 int, b *Matrix) {
	if r0 < 0 || c0 < 0 || r0+b.rows > m.rows || c0+b.cols > m.cols {
		panic(fmt.Sprintf("mat: SetSlice %dx%d at (%d,%d) does not fit in %dx%d", b.rows, b.cols, r0, c0, m.rows, m.cols))
	}
	for i := 0; i < b.rows; i++ {
		copy(m.data[(r0+i)*m.cols+c0:(r0+i)*m.cols+c0+b.cols], b.data[i*b.cols:(i+1)*b.cols])
	}
}

// Block assembles a matrix from a 2-D grid of blocks. Rows of the grid must
// have consistent heights and columns consistent widths. A nil block is
// treated as a zero block of the size implied by its row and column; at
// least one block in each grid row and column must be non-nil.
func Block(grid [][]*Matrix) *Matrix {
	if len(grid) == 0 || len(grid[0]) == 0 {
		panic("mat: Block on empty grid")
	}
	nbr, nbc := len(grid), len(grid[0])
	rowH := make([]int, nbr)
	colW := make([]int, nbc)
	for i := 0; i < nbr; i++ {
		if len(grid[i]) != nbc {
			panic("mat: Block ragged grid")
		}
		for j := 0; j < nbc; j++ {
			b := grid[i][j]
			if b == nil {
				continue
			}
			if rowH[i] == 0 {
				rowH[i] = b.rows
			} else if rowH[i] != b.rows {
				panic(fmt.Sprintf("mat: Block row %d height mismatch", i))
			}
			if colW[j] == 0 {
				colW[j] = b.cols
			} else if colW[j] != b.cols {
				panic(fmt.Sprintf("mat: Block column %d width mismatch", j))
			}
		}
	}
	totR, totC := 0, 0
	for i, h := range rowH {
		if h == 0 {
			panic(fmt.Sprintf("mat: Block row %d has no non-nil block", i))
		}
		totR += h
	}
	for j, w := range colW {
		if w == 0 {
			panic(fmt.Sprintf("mat: Block column %d has no non-nil block", j))
		}
		totC += w
	}
	out := New(totR, totC)
	r0 := 0
	for i := 0; i < nbr; i++ {
		c0 := 0
		for j := 0; j < nbc; j++ {
			if b := grid[i][j]; b != nil {
				out.SetSlice(r0, c0, b)
			}
			c0 += colW[j]
		}
		r0 += rowH[i]
	}
	return out
}

// String renders m with aligned columns, suitable for debugging output.
func (m *Matrix) String() string {
	var sb strings.Builder
	for i := 0; i < m.rows; i++ {
		sb.WriteString("[")
		for j := 0; j < m.cols; j++ {
			if j > 0 {
				sb.WriteString("  ")
			}
			fmt.Fprintf(&sb, "% .6g", m.data[i*m.cols+j])
		}
		sb.WriteString("]\n")
	}
	return sb.String()
}

// ApplyVec computes dst = m * src, treating src (length Cols) and dst
// (length Rows) as column vectors. dst must not alias src. It exists for
// allocation-free inner loops such as the closed-loop simulator.
func (m *Matrix) ApplyVec(dst, src []float64) {
	if len(src) != m.cols || len(dst) != m.rows {
		panic(fmt.Sprintf("mat: ApplyVec dims dst=%d src=%d for %dx%d", len(dst), len(src), m.rows, m.cols))
	}
	for i := 0; i < m.rows; i++ {
		row := m.data[i*m.cols : (i+1)*m.cols]
		s := 0.0
		for k, v := range row {
			s += v * src[k]
		}
		dst[i] = s
	}
}

// RowInto copies row i into dst without allocating. It panics if dst does
// not have exactly Cols entries.
func (m *Matrix) RowInto(i int, dst []float64) {
	m.check(i, 0)
	if len(dst) != m.cols {
		panic(fmt.Sprintf("mat: RowInto length %d != cols %d", len(dst), m.cols))
	}
	copy(dst, m.data[i*m.cols:(i+1)*m.cols])
}

// Copy overwrites m with the entries of b. It panics on shape mismatch.
func (m *Matrix) Copy(b *Matrix) {
	m.sameShape(b, "Copy")
	copy(m.data, b.data)
}

// Zero overwrites every entry of m with +0 (exactly the state of a fresh
// matrix, unlike scaling by zero, which keeps signed zeros and NaNs).
func (m *Matrix) Zero() {
	for i := range m.data {
		m.data[i] = 0
	}
}

// SetIdentity overwrites m with the identity matrix. It panics if m is not
// square.
func (m *Matrix) SetIdentity() {
	m.mustSquare("SetIdentity")
	for i := range m.data {
		m.data[i] = 0
	}
	for i := 0; i < m.rows; i++ {
		m.data[i*m.cols+i] = 1
	}
}

// MulTo computes dst = m * b without allocating. dst must not alias m or b.
// It accumulates in the same order as Mul, so results are bit-identical.
func (m *Matrix) MulTo(dst, b *Matrix) {
	if m.cols != b.rows {
		panic(fmt.Sprintf("mat: MulTo shape mismatch %dx%d * %dx%d", m.rows, m.cols, b.rows, b.cols))
	}
	if dst.rows != m.rows || dst.cols != b.cols {
		panic(fmt.Sprintf("mat: MulTo dst %dx%d, want %dx%d", dst.rows, dst.cols, m.rows, b.cols))
	}
	for i := range dst.data {
		dst.data[i] = 0
	}
	for i := 0; i < m.rows; i++ {
		mrow := m.data[i*m.cols : (i+1)*m.cols]
		orow := dst.data[i*b.cols : (i+1)*b.cols]
		for k, mv := range mrow {
			if mv == 0 {
				continue
			}
			brow := b.data[k*b.cols : (k+1)*b.cols]
			for j, bv := range brow {
				orow[j] += mv * bv
			}
		}
	}
}

// AddScaledTo computes dst = m + s*b without allocating. dst may alias m or
// b. It panics on shape mismatch.
func (m *Matrix) AddScaledTo(dst *Matrix, s float64, b *Matrix) {
	m.sameShape(b, "AddScaledTo")
	m.sameShape(dst, "AddScaledTo")
	for i, v := range m.data {
		dst.data[i] = v + s*b.data[i]
	}
}

// ScaleTo computes dst = s*m without allocating. dst may alias m. It panics
// on shape mismatch.
func (m *Matrix) ScaleTo(dst *Matrix, s float64) {
	m.sameShape(dst, "ScaleTo")
	for i, v := range m.data {
		dst.data[i] = s * v
	}
}

// IsFinite reports whether every entry of m is finite (no NaN or Inf).
func (m *Matrix) IsFinite() bool {
	for _, v := range m.data {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return false
		}
	}
	return true
}
