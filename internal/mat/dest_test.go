package mat

import (
	"math/rand"
	"testing"
)

// TestMulToMatchesMul requires bit-identical results from the destination
// variant: the simulation-plan compiler depends on it to keep golden tables
// unchanged.
func TestMulToMatchesMul(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	for trial := 0; trial < 20; trial++ {
		a := randomMatrix(r, 4, 3)
		b := randomMatrix(r, 3, 5)
		if trial%3 == 0 {
			a.Set(trial%4, trial%3, 0) // exercise the zero-skip path
		}
		want := a.Mul(b)
		got := New(4, 5)
		got.Set(0, 0, 123) // stale dst content must be overwritten
		a.MulTo(got, b)
		for i := 0; i < 4; i++ {
			for j := 0; j < 5; j++ {
				if got.At(i, j) != want.At(i, j) {
					t.Fatalf("trial %d: MulTo[%d,%d] = %v, Mul = %v", trial, i, j, got.At(i, j), want.At(i, j))
				}
			}
		}
	}
}

func TestAddScaledToAndScaleTo(t *testing.T) {
	r := rand.New(rand.NewSource(12))
	a := randomMatrix(r, 3, 3)
	b := randomMatrix(r, 3, 3)
	want := a.AddScaled(-0.37, b)
	got := New(3, 3)
	a.AddScaledTo(got, -0.37, b)
	if !got.Equal(want, 0) {
		t.Error("AddScaledTo differs from AddScaled")
	}
	// Aliased accumulate: a += s*b.
	acc := a.Clone()
	acc.AddScaledTo(acc, -0.37, b)
	if !acc.Equal(want, 0) {
		t.Error("aliased AddScaledTo differs")
	}
	ws := a.Scale(2.5)
	gs := New(3, 3)
	a.ScaleTo(gs, 2.5)
	if !gs.Equal(ws, 0) {
		t.Error("ScaleTo differs from Scale")
	}
}

func TestRowIntoCopyAndSetIdentity(t *testing.T) {
	m := NewFromRows([][]float64{{1, 2, 3}, {4, 5, 6}})
	dst := make([]float64, 3)
	m.RowInto(1, dst)
	if dst[0] != 4 || dst[1] != 5 || dst[2] != 6 {
		t.Errorf("RowInto = %v", dst)
	}
	c := New(2, 3)
	c.Copy(m)
	if !c.Equal(m, 0) {
		t.Error("Copy differs")
	}
	id := randomMatrix(rand.New(rand.NewSource(1)), 3, 3)
	id.SetIdentity()
	if !id.Equal(Identity(3), 0) {
		t.Error("SetIdentity differs from Identity")
	}
}

// TestExpmWorkspaceBitIdentical checks the workspace exponential against the
// allocating one, including inputs large enough to trigger scaling/squaring,
// and reuse of one workspace across calls.
func TestExpmWorkspaceBitIdentical(t *testing.T) {
	r := rand.New(rand.NewSource(13))
	w := NewExpmWorkspace(4)
	for trial := 0; trial < 25; trial++ {
		a := randomMatrix(r, 4, 4)
		if trial%2 == 0 {
			a = a.Scale(float64(trial)) // norms from 0 to large
		}
		want := Expm(a)
		got := New(4, 4)
		w.ExpmTo(got, a)
		if !got.Equal(want, 0) {
			t.Fatalf("trial %d: ExpmTo differs from Expm", trial)
		}
	}
}

// TestExpmIntegralWorkspaceBitIdentical checks the workspace discretization
// pair against the allocating ExpmIntegral over a sweep of step lengths, as
// the plan compiler uses it.
func TestExpmIntegralWorkspaceBitIdentical(t *testing.T) {
	r := rand.New(rand.NewSource(14))
	a := randomMatrix(r, 3, 3)
	b := randomMatrix(r, 3, 1)
	w := NewExpmWorkspace(4)
	for _, dt := range []float64{1e-6, 5e-4, 0.02, 0.5, 3} {
		wantAd, wantBd := ExpmIntegral(a, b, dt)
		gotAd, gotBd := w.ExpmIntegral(a, b, dt)
		if !gotAd.Equal(wantAd, 0) || !gotBd.Equal(wantBd, 0) {
			t.Fatalf("dt=%g: workspace ExpmIntegral differs", dt)
		}
	}
}

func TestExpmWorkspaceDimensionChecks(t *testing.T) {
	w := NewExpmWorkspace(3)
	defer func() {
		if recover() == nil {
			t.Error("dimension mismatch must panic")
		}
	}()
	w.ExpmTo(New(2, 2), New(2, 2))
}
