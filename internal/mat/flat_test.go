package mat

import (
	"math"
	"math/rand"
	"testing"
)

func TestFlatViewAliasesMatrix(t *testing.T) {
	m := NewFromRows([][]float64{{1, 2}, {3, 4}})
	f := m.Flat()
	if f.Rows != 2 || f.Cols != 2 || f.Stride != 2 {
		t.Fatalf("flat shape %dx%d stride %d", f.Rows, f.Cols, f.Stride)
	}
	if f.At(1, 0) != 3 {
		t.Fatalf("At(1,0) = %g", f.At(1, 0))
	}
	f.Row(0)[1] = 9
	if m.At(0, 1) != 9 {
		t.Fatal("write through Flat row not visible in Matrix")
	}
}

func TestFlatViewStride(t *testing.T) {
	// A 2x2 view with stride 3 inside a 2x3 buffer: the third column is
	// skipped, not read.
	data := []float64{1, 2, 99, 3, 4, 99}
	f := FlatView(data, 2, 2, 3)
	dst := make([]float64, 2)
	f.ApplyVec(dst, []float64{1, 1})
	if dst[0] != 3 || dst[1] != 7 {
		t.Fatalf("strided ApplyVec = %v, want [3 7]", dst)
	}
}

func TestFlatViewPanics(t *testing.T) {
	for name, fn := range map[string]func(){
		"short buffer":     func() { FlatView(make([]float64, 3), 2, 2, 2) },
		"stride below col": func() { FlatView(make([]float64, 9), 2, 3, 2) },
		"zero rows":        func() { FlatView(make([]float64, 9), 0, 3, 3) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: no panic", name)
				}
			}()
			fn()
		}()
	}
}

// TestFlatApplyVecBitIdentical pins the contract the simulation hot loop
// depends on: the Flat kernels accumulate exactly like Matrix.ApplyVec.
func TestFlatApplyVecBitIdentical(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		rows, cols := 1+r.Intn(6), 1+r.Intn(6)
		m := randomMatrix(r, rows, cols)
		src := make([]float64, cols)
		for i := range src {
			src[i] = r.NormFloat64()
		}
		want := make([]float64, rows)
		m.ApplyVec(want, src)
		got := make([]float64, rows)
		m.Flat().ApplyVec(got, src)
		for i := range want {
			if math.Float64bits(want[i]) != math.Float64bits(got[i]) {
				t.Fatalf("trial %d: Flat.ApplyVec[%d] = %x, Matrix %x", trial, i, got[i], want[i])
			}
		}
	}
}

// TestFlatApplyVecAddBitIdentical pins the fused kernel against the unfused
// ApplyVec-then-axpy sequence the simulator previously ran.
func TestFlatApplyVecAddBitIdentical(t *testing.T) {
	r := rand.New(rand.NewSource(8))
	for trial := 0; trial < 50; trial++ {
		n := 1 + r.Intn(6)
		m := randomMatrix(r, n, n)
		src := make([]float64, n)
		add := make([]float64, n)
		for i := range src {
			src[i] = r.NormFloat64()
			add[i] = r.NormFloat64()
		}
		u := r.NormFloat64()
		want := make([]float64, n)
		m.ApplyVec(want, src)
		for i := range want {
			want[i] += add[i] * u
		}
		got := make([]float64, n)
		m.Flat().ApplyVecAdd(got, src, add, u)
		for i := range want {
			if math.Float64bits(want[i]) != math.Float64bits(got[i]) {
				t.Fatalf("trial %d: fused[%d] = %x, unfused %x", trial, i, got[i], want[i])
			}
		}
	}
}

// TestEigWorkspaceSpectralRadius pins the workspace's bit-identity to the
// allocating SpectralRadius, including the non-finite and 1x1 shortcuts.
func TestEigWorkspaceSpectralRadius(t *testing.T) {
	r := rand.New(rand.NewSource(9))
	for _, n := range []int{1, 2, 3, 5} {
		w := NewEigWorkspace(n)
		for trial := 0; trial < 30; trial++ {
			a := randomMatrix(r, n, n)
			want, errW := SpectralRadius(a)
			got, errG := w.SpectralRadius(a)
			if (errW == nil) != (errG == nil) {
				t.Fatalf("n=%d trial %d: err %v vs %v", n, trial, errW, errG)
			}
			if math.Float64bits(want) != math.Float64bits(got) {
				t.Fatalf("n=%d trial %d: workspace %x, reference %x", n, trial, got, want)
			}
		}
		inf := New(n, n)
		inf.Set(0, 0, math.Inf(1))
		if got, err := w.SpectralRadius(inf); err != nil || !math.IsInf(got, 1) {
			t.Fatalf("non-finite input: got %g, %v", got, err)
		}
	}
}

func TestEigWorkspaceDimensionPanics(t *testing.T) {
	w := NewEigWorkspace(3)
	defer func() {
		if recover() == nil {
			t.Fatal("dimension mismatch did not panic")
		}
	}()
	w.SpectralRadius(Identity(4))
}

// TestLUWorkspaceSolve pins the workspace solve against the allocating
// Solve, including the singular-matrix error path.
func TestLUWorkspaceSolve(t *testing.T) {
	r := rand.New(rand.NewSource(10))
	for _, shape := range []struct{ n, cols int }{{1, 1}, {3, 1}, {4, 2}, {12, 1}} {
		w := NewLUWorkspace(shape.n, shape.cols)
		for trial := 0; trial < 20; trial++ {
			a := randomMatrix(r, shape.n, shape.n)
			b := randomMatrix(r, shape.n, shape.cols)
			want, errW := Solve(a, b)
			got, errG := w.Solve(a, b)
			if (errW == nil) != (errG == nil) {
				t.Fatalf("n=%d trial %d: err %v vs %v", shape.n, trial, errW, errG)
			}
			if errW != nil {
				continue
			}
			for i := 0; i < shape.n; i++ {
				for j := 0; j < shape.cols; j++ {
					if math.Float64bits(want.At(i, j)) != math.Float64bits(got.At(i, j)) {
						t.Fatalf("n=%d trial %d: x[%d,%d] workspace %x, reference %x",
							shape.n, trial, i, j, got.At(i, j), want.At(i, j))
					}
				}
			}
		}
	}
	// Singular input must return ErrSingular like Factor does.
	w := NewLUWorkspace(2, 1)
	if _, err := w.Solve(New(2, 2), New(2, 1)); err != ErrSingular {
		t.Fatalf("singular solve: %v, want ErrSingular", err)
	}
	// The workspace stays usable after an error.
	if _, err := w.Solve(Identity(2), ColVec(1, 2)); err != nil {
		t.Fatalf("solve after singular: %v", err)
	}
}
