package mat

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEq(t *testing.T, got, want, tol float64, msg string) {
	t.Helper()
	if math.Abs(got-want) > tol {
		t.Errorf("%s: got %g, want %g (tol %g)", msg, got, want, tol)
	}
}

func randomMatrix(r *rand.Rand, n, m int) *Matrix {
	a := New(n, m)
	for i := 0; i < n; i++ {
		for j := 0; j < m; j++ {
			a.Set(i, j, r.NormFloat64())
		}
	}
	return a
}

func TestNewAndAccessors(t *testing.T) {
	m := New(2, 3)
	if m.Rows() != 2 || m.Cols() != 3 {
		t.Fatalf("shape: got %dx%d", m.Rows(), m.Cols())
	}
	m.Set(1, 2, 4.5)
	if m.At(1, 2) != 4.5 {
		t.Errorf("At(1,2) = %g, want 4.5", m.At(1, 2))
	}
	if m.At(0, 0) != 0 {
		t.Errorf("zero init violated: %g", m.At(0, 0))
	}
}

func TestNewFromRowsAndEqual(t *testing.T) {
	a := NewFromRows([][]float64{{1, 2}, {3, 4}})
	b := NewFromRows([][]float64{{1, 2}, {3, 4 + 1e-12}})
	if !a.Equal(b, 1e-9) {
		t.Error("Equal within tolerance failed")
	}
	if a.Equal(b, 1e-15) {
		t.Error("Equal should fail at tight tolerance")
	}
	c := NewFromRows([][]float64{{1, 2, 3}})
	if a.Equal(c, 1) {
		t.Error("Equal must reject shape mismatch")
	}
}

func TestRaggedRowsPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic on ragged rows")
		}
	}()
	NewFromRows([][]float64{{1, 2}, {3}})
}

func TestIdentityMul(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	a := randomMatrix(r, 4, 4)
	if !a.Mul(Identity(4)).Equal(a, 1e-14) {
		t.Error("A*I != A")
	}
	if !Identity(4).Mul(a).Equal(a, 1e-14) {
		t.Error("I*A != A")
	}
}

func TestMulKnown(t *testing.T) {
	a := NewFromRows([][]float64{{1, 2}, {3, 4}})
	b := NewFromRows([][]float64{{5, 6}, {7, 8}})
	want := NewFromRows([][]float64{{19, 22}, {43, 50}})
	if !a.Mul(b).Equal(want, 0) {
		t.Errorf("Mul: got\n%v want\n%v", a.Mul(b), want)
	}
}

func TestMulShapePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic on inner-dimension mismatch")
		}
	}()
	New(2, 3).Mul(New(2, 3))
}

func TestAddSubScale(t *testing.T) {
	a := NewFromRows([][]float64{{1, -2}, {0, 3}})
	b := NewFromRows([][]float64{{4, 1}, {2, -1}})
	if !a.Add(b).Sub(b).Equal(a, 1e-15) {
		t.Error("(A+B)-B != A")
	}
	if !a.Scale(2).Equal(a.Add(a), 1e-15) {
		t.Error("2A != A+A")
	}
	if !a.AddScaled(-1, a).Equal(Zeros(2, 2), 0) {
		t.Error("A + (-1)A != 0")
	}
}

func TestTranspose(t *testing.T) {
	a := NewFromRows([][]float64{{1, 2, 3}, {4, 5, 6}})
	at := a.Transpose()
	if at.Rows() != 3 || at.Cols() != 2 {
		t.Fatalf("transpose shape %dx%d", at.Rows(), at.Cols())
	}
	if !at.Transpose().Equal(a, 0) {
		t.Error("(A^T)^T != A")
	}
	if at.At(2, 1) != 6 {
		t.Errorf("At(2,1) = %g, want 6", at.At(2, 1))
	}
}

func TestNorms(t *testing.T) {
	a := NewFromRows([][]float64{{1, -2}, {-3, 4}})
	almostEq(t, a.InfNorm(), 7, 0, "inf norm")
	almostEq(t, a.Norm1(), 6, 0, "1-norm")
	almostEq(t, a.Frobenius(), math.Sqrt(30), 1e-15, "frobenius")
	almostEq(t, a.MaxAbs(), 4, 0, "max abs")
	almostEq(t, a.Trace(), 5, 0, "trace")
}

func TestRowColOps(t *testing.T) {
	a := NewFromRows([][]float64{{1, 2}, {3, 4}})
	row := a.Row(1)
	row[0] = 99 // must be a copy
	if a.At(1, 0) != 3 {
		t.Error("Row must return a copy")
	}
	col := a.Col(1)
	if col[0] != 2 || col[1] != 4 {
		t.Errorf("Col: got %v", col)
	}
	a.SetRow(0, []float64{7, 8})
	a.SetCol(1, []float64{9, 10})
	want := NewFromRows([][]float64{{7, 9}, {3, 10}})
	if !a.Equal(want, 0) {
		t.Errorf("after SetRow/SetCol: got\n%v", a)
	}
}

func TestSliceAndSetSlice(t *testing.T) {
	a := NewFromRows([][]float64{{1, 2, 3}, {4, 5, 6}, {7, 8, 9}})
	s := a.Slice(1, 3, 0, 2)
	want := NewFromRows([][]float64{{4, 5}, {7, 8}})
	if !s.Equal(want, 0) {
		t.Errorf("Slice: got\n%v", s)
	}
	s.Set(0, 0, -1) // must not alias a
	if a.At(1, 0) != 4 {
		t.Error("Slice must copy")
	}
	a.SetSlice(0, 1, NewFromRows([][]float64{{0, 0}, {0, 0}}))
	if a.At(0, 1) != 0 || a.At(1, 2) != 0 {
		t.Error("SetSlice did not write block")
	}
}

func TestBlock(t *testing.T) {
	a := Identity(2)
	b := NewFromRows([][]float64{{5}, {6}})
	c := RowVec(7, 8)
	d := ColVec(9)
	m := Block([][]*Matrix{{a, b}, {c, d}})
	want := NewFromRows([][]float64{{1, 0, 5}, {0, 1, 6}, {7, 8, 9}})
	if !m.Equal(want, 0) {
		t.Errorf("Block: got\n%v want\n%v", m, want)
	}
	// nil blocks become zero blocks.
	m2 := Block([][]*Matrix{{a, nil}, {nil, d}})
	want2 := NewFromRows([][]float64{{1, 0, 0}, {0, 1, 0}, {0, 0, 9}})
	if !m2.Equal(want2, 0) {
		t.Errorf("Block nil: got\n%v", m2)
	}
}

func TestColRowVec(t *testing.T) {
	v := ColVec(1, 2, 3)
	if v.Rows() != 3 || v.Cols() != 1 || v.At(2, 0) != 3 {
		t.Error("ColVec wrong")
	}
	w := RowVec(1, 2, 3)
	if w.Rows() != 1 || w.Cols() != 3 || w.At(0, 2) != 3 {
		t.Error("RowVec wrong")
	}
}

func TestIsFinite(t *testing.T) {
	a := Identity(2)
	if !a.IsFinite() {
		t.Error("identity should be finite")
	}
	a.Set(0, 1, math.NaN())
	if a.IsFinite() {
		t.Error("NaN should be non-finite")
	}
	a.Set(0, 1, math.Inf(-1))
	if a.IsFinite() {
		t.Error("Inf should be non-finite")
	}
}

func TestStringRenders(t *testing.T) {
	s := NewFromRows([][]float64{{1, 2}}).String()
	if s == "" {
		t.Error("String should render something")
	}
}

// Property: matrix addition commutes and Mul distributes over Add.
func TestQuickAlgebra(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	f := func(seed int64) bool {
		rr := rand.New(rand.NewSource(seed))
		n := 1 + rr.Intn(5)
		a, b, c := randomMatrix(rr, n, n), randomMatrix(rr, n, n), randomMatrix(rr, n, n)
		if !a.Add(b).Equal(b.Add(a), 1e-12) {
			return false
		}
		lhs := a.Mul(b.Add(c))
		rhs := a.Mul(b).Add(a.Mul(c))
		return lhs.Equal(rhs, 1e-9*(1+lhs.MaxAbs()))
	}
	cfg := &quick.Config{MaxCount: 50, Rand: r}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

// Property: (A*B)^T == B^T * A^T.
func TestQuickTransposeProduct(t *testing.T) {
	f := func(seed int64) bool {
		rr := rand.New(rand.NewSource(seed))
		n, m, p := 1+rr.Intn(4), 1+rr.Intn(4), 1+rr.Intn(4)
		a, b := randomMatrix(rr, n, m), randomMatrix(rr, m, p)
		return a.Mul(b).Transpose().Equal(b.Transpose().Mul(a.Transpose()), 1e-10)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
