package mat

import "fmt"

// Flat is a stride-aware matrix view over a flat []float64 buffer: element
// (i, j) lives at Data[i*Stride+j]. It exists for hot loops that want many
// small matrices packed into one contiguous arena (the compiled simulation
// plans of internal/ctrl) instead of pointer-chasing a *Matrix per step:
// the view is a value (no heap indirection beyond the shared buffer) and
// its kernels accumulate in exactly the same element order as the *Matrix
// ones, so switching a loop to Flat never changes a result bit.
//
// A Flat aliasing a Matrix (via Matrix.Flat) shares its storage; writes
// through either are visible to both.
type Flat struct {
	Rows, Cols, Stride int
	Data               []float64
}

// Flat returns a flat view aliasing m's storage (Stride == Cols).
func (m *Matrix) Flat() Flat {
	return Flat{Rows: m.rows, Cols: m.cols, Stride: m.cols, Data: m.data}
}

// FlatView wraps an existing buffer as an r-by-c view with the given row
// stride. It panics on impossible shapes or a buffer too short to hold the
// last element.
func FlatView(data []float64, r, c, stride int) Flat {
	if r <= 0 || c <= 0 || stride < c {
		panic(fmt.Sprintf("mat: FlatView invalid shape %dx%d stride %d", r, c, stride))
	}
	if need := (r-1)*stride + c; len(data) < need {
		panic(fmt.Sprintf("mat: FlatView buffer %d too short for %dx%d stride %d (need %d)", len(data), r, c, stride, need))
	}
	return Flat{Rows: r, Cols: c, Stride: stride, Data: data}
}

// At returns element (i, j). It panics if the indices are out of range.
func (f Flat) At(i, j int) float64 {
	if i < 0 || i >= f.Rows || j < 0 || j >= f.Cols {
		panic(fmt.Sprintf("mat: Flat index (%d,%d) out of range for %dx%d view", i, j, f.Rows, f.Cols))
	}
	return f.Data[i*f.Stride+j]
}

// Row returns row i as a subslice of the underlying buffer (no copy).
func (f Flat) Row(i int) []float64 {
	if i < 0 || i >= f.Rows {
		panic(fmt.Sprintf("mat: Flat row %d out of range for %d rows", i, f.Rows))
	}
	return f.Data[i*f.Stride : i*f.Stride+f.Cols]
}

// ApplyVec computes dst = f * src, treating src (length Cols) and dst
// (length Rows) as column vectors; dst must not alias src. It accumulates
// in the same order as Matrix.ApplyVec, so results are bit-identical.
func (f Flat) ApplyVec(dst, src []float64) {
	if len(src) != f.Cols || len(dst) != f.Rows {
		panic(fmt.Sprintf("mat: Flat.ApplyVec dims dst=%d src=%d for %dx%d", len(dst), len(src), f.Rows, f.Cols))
	}
	for i := 0; i < f.Rows; i++ {
		row := f.Data[i*f.Stride : i*f.Stride+f.Cols]
		s := 0.0
		for k, v := range row {
			s += v * src[k]
		}
		dst[i] = s
	}
}

// ApplyVecAdd computes dst = f*src + u*add in one pass: the fused
// propagation kernel of the simulation step x' = Ad x + bd u. Element i is
// evaluated as (Σ_k f[i,k]·src[k]) + add[i]·u — exactly the value the
// unfused ApplyVec-then-axpy sequence produces, so the fusion is
// bit-identical. dst must not alias src.
func (f Flat) ApplyVecAdd(dst, src, add []float64, u float64) {
	if len(src) != f.Cols || len(dst) != f.Rows || len(add) != f.Rows {
		panic(fmt.Sprintf("mat: Flat.ApplyVecAdd dims dst=%d src=%d add=%d for %dx%d", len(dst), len(src), len(add), f.Rows, f.Cols))
	}
	if f.Rows == 2 && f.Cols == 2 {
		// Second-order plants dominate the case studies; the unrolled form
		// performs the same operations in the same order as the loop
		// (including the 0.0 starting accumulator, which matters for the
		// signed zeros a folded first term would lose).
		d := f.Data
		x0, x1 := src[0], src[1]
		s0 := 0.0
		s0 += d[0] * x0
		s0 += d[1] * x1
		s1 := 0.0
		s1 += d[f.Stride] * x0
		s1 += d[f.Stride+1] * x1
		dst[0] = s0 + add[0]*u
		dst[1] = s1 + add[1]*u
		return
	}
	for i := 0; i < f.Rows; i++ {
		row := f.Data[i*f.Stride : i*f.Stride+f.Cols]
		s := 0.0
		for k, v := range row {
			s += v * src[k]
		}
		dst[i] = s + add[i]*u
	}
}
