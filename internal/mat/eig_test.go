package mat

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func eigOrFail(t *testing.T, a *Matrix) []complex128 {
	t.Helper()
	e, err := Eigenvalues(a)
	if err != nil {
		t.Fatalf("Eigenvalues: %v", err)
	}
	return e
}

func TestEigDiagonal(t *testing.T) {
	a := NewFromRows([][]float64{{3, 0, 0}, {0, -1, 0}, {0, 0, 0.5}})
	e := eigOrFail(t, a)
	SortEigenvalues(e)
	want := []complex128{3, -1, 0.5}
	for i, w := range want {
		if cmplxAbs(e[i]-w) > 1e-12 {
			t.Errorf("eig[%d] = %v, want %v", i, e[i], w)
		}
	}
}

func TestEigComplexPair(t *testing.T) {
	// Rotation-scaling matrix: eigenvalues r*e^{±iθ} with r=0.9, θ=0.7.
	r, th := 0.9, 0.7
	a := NewFromRows([][]float64{
		{r * math.Cos(th), -r * math.Sin(th)},
		{r * math.Sin(th), r * math.Cos(th)},
	})
	e := eigOrFail(t, a)
	for _, ev := range e {
		almostEq(t, cmplxAbs(ev), r, 1e-12, "eig magnitude")
		almostEq(t, math.Abs(imag(ev)), r*math.Sin(th), 1e-12, "eig imag part")
	}
	if imag(e[0])*imag(e[1]) >= 0 {
		t.Error("complex eigenvalues must be conjugates")
	}
}

func TestEigKnown3x3(t *testing.T) {
	// Companion matrix of (x-1)(x-2)(x-3) = x^3 -6x^2 +11x -6.
	a := NewFromRows([][]float64{
		{0, 0, 6},
		{1, 0, -11},
		{0, 1, 6},
	})
	e := eigOrFail(t, a)
	got := []float64{real(e[0]), real(e[1]), real(e[2])}
	sort.Float64s(got)
	for i, w := range []float64{1, 2, 3} {
		almostEq(t, got[i], w, 1e-8, "companion eigenvalue")
		almostEq(t, imag(e[i]), 0, 1e-8, "companion eig imag")
	}
}

func TestEigSize1And2(t *testing.T) {
	e := eigOrFail(t, NewFromRows([][]float64{{-4}}))
	if len(e) != 1 || e[0] != -4 {
		t.Errorf("1x1 eig: %v", e)
	}
	e = eigOrFail(t, NewFromRows([][]float64{{0, 1}, {-1, 0}}))
	for _, ev := range e {
		almostEq(t, real(ev), 0, 1e-14, "pure rotation real part")
		almostEq(t, math.Abs(imag(ev)), 1, 1e-14, "pure rotation imag part")
	}
}

func TestEigDefective(t *testing.T) {
	// Jordan block: repeated eigenvalue 2 with one eigenvector.
	a := NewFromRows([][]float64{{2, 1}, {0, 2}})
	e := eigOrFail(t, a)
	for _, ev := range e {
		if cmplxAbs(ev-2) > 1e-6 {
			t.Errorf("Jordan eig = %v, want 2", ev)
		}
	}
}

func TestSpectralRadius(t *testing.T) {
	a := NewFromRows([][]float64{{0.5, 0.2}, {0, -0.8}})
	r, err := SpectralRadius(a)
	if err != nil {
		t.Fatal(err)
	}
	almostEq(t, r, 0.8, 1e-12, "spectral radius triangular")

	nan := NewFromRows([][]float64{{math.NaN()}})
	r, err = SpectralRadius(nan)
	if err != nil || !math.IsInf(r, 1) {
		t.Errorf("NaN matrix spectral radius = %v, %v; want +Inf, nil", r, err)
	}
}

func TestEigEmptyAndZero(t *testing.T) {
	e := eigOrFail(t, New(2, 2))
	for _, ev := range e {
		if cmplxAbs(ev) > 1e-14 {
			t.Errorf("zero matrix eig %v", ev)
		}
	}
}

// Property: the eigenvalue sum equals the trace and the product equals the
// determinant, for random matrices.
func TestQuickEigTraceDet(t *testing.T) {
	f := func(seed int64) bool {
		rr := rand.New(rand.NewSource(seed))
		n := 1 + rr.Intn(6)
		a := randomMatrix(rr, n, n)
		e, err := Eigenvalues(a)
		if err != nil {
			return false
		}
		sum := complex(0, 0)
		prod := complex(1, 0)
		for _, ev := range e {
			sum += ev
			prod *= ev
		}
		scale := 1 + a.InfNorm()
		if math.Abs(real(sum)-a.Trace()) > 1e-7*scale || math.Abs(imag(sum)) > 1e-7*scale {
			return false
		}
		d := Det(a)
		return cmplxAbs(prod-complex(d, 0)) <= 1e-6*(1+math.Abs(d))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// Property: eigenvalues of A^2 are the squares of eigenvalues of A.
func TestQuickEigSquare(t *testing.T) {
	f := func(seed int64) bool {
		rr := rand.New(rand.NewSource(seed))
		n := 2 + rr.Intn(4)
		a := randomMatrix(rr, n, n)
		e1, err := Eigenvalues(a)
		if err != nil {
			return false
		}
		e2, err := Eigenvalues(a.Mul(a))
		if err != nil {
			return false
		}
		sq := make([]complex128, len(e1))
		for i, ev := range e1 {
			sq[i] = ev * ev
		}
		SortEigenvalues(sq)
		SortEigenvalues(e2)
		for i := range sq {
			if cmplxAbs(sq[i]-e2[i]) > 1e-5*(1+cmplxAbs(sq[i])) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestEigLargerStable(t *testing.T) {
	// A randomly generated 12x12 matrix: verify char-poly consistency via
	// trace of powers (Newton's identities spot check: sum of eigs^k equals
	// trace(A^k)).
	r := rand.New(rand.NewSource(99))
	a := randomMatrix(r, 12, 12)
	e := eigOrFail(t, a)
	ak := Identity(12)
	for k := 1; k <= 3; k++ {
		ak = ak.Mul(a)
		var s complex128
		for _, ev := range e {
			p := complex(1, 0)
			for i := 0; i < k; i++ {
				p *= ev
			}
			s += p
		}
		if math.Abs(real(s)-ak.Trace()) > 1e-6*(1+math.Abs(ak.Trace())) {
			t.Errorf("sum eig^%d = %v, trace(A^%d) = %g", k, s, k, ak.Trace())
		}
	}
}
