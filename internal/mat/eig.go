package mat

import (
	"errors"
	"fmt"
	"math"
	"sort"
)

// ErrNoConvergence is returned by Eigenvalues when the QR iteration fails to
// converge within the iteration budget. This is extremely rare for the
// well-scaled closed-loop matrices produced by the control pipeline.
var ErrNoConvergence = errors.New("mat: eigenvalue iteration did not converge")

// Eigenvalues returns all eigenvalues of a square real matrix, in no
// particular order. The implementation balances the matrix, reduces it to
// upper Hessenberg form by stabilized elementary transformations, and runs
// the Francis double-shift QR iteration (the classic EISPACK BALANC /
// ELMHES / HQR sequence).
func Eigenvalues(a *Matrix) ([]complex128, error) {
	a.mustSquare("Eigenvalues")
	n := a.rows
	if n == 0 {
		return nil, nil
	}
	if n == 1 {
		return []complex128{complex(a.data[0], 0)}, nil
	}
	// Work on a 1-based copy to keep the classic algorithm port faithful.
	h := make([][]float64, n+1)
	for i := 1; i <= n; i++ {
		h[i] = make([]float64, n+1)
		for j := 1; j <= n; j++ {
			h[i][j] = a.data[(i-1)*n+(j-1)]
		}
	}
	balance(h, n)
	elmhes(h, n)
	wr, wi, err := hqr(h, n)
	if err != nil {
		return nil, err
	}
	out := make([]complex128, n)
	for i := 1; i <= n; i++ {
		out[i-1] = complex(wr[i], wi[i])
	}
	return out, nil
}

// SpectralRadius returns the largest eigenvalue magnitude of a square
// matrix. It returns +Inf if the matrix contains non-finite entries and
// propagates ErrNoConvergence from the eigenvalue iteration.
func SpectralRadius(a *Matrix) (float64, error) {
	if !a.IsFinite() {
		return math.Inf(1), nil
	}
	eigs, err := Eigenvalues(a)
	if err != nil {
		return 0, err
	}
	r := 0.0
	for _, e := range eigs {
		if m := cmplxAbs(e); m > r {
			r = m
		}
	}
	return r, nil
}

func cmplxAbs(c complex128) float64 { return math.Hypot(real(c), imag(c)) }

// EigWorkspace holds the intermediate buffers of repeated same-dimension
// eigenvalue computations (the 1-based Hessenberg copy and the root
// arrays), so stability checks running once per objective evaluation — the
// spectral radius of every candidate design's monodromy matrix — stop
// allocating. Results are bit-identical to the allocating functions: the
// workspace runs the same balance/elmhes/hqr sequence on the same values.
// A workspace is not safe for concurrent use; the design loop keeps one per
// worker.
type EigWorkspace struct {
	n      int
	h      [][]float64
	wr, wi []float64
}

// NewEigWorkspace returns a workspace for n-by-n eigenvalue problems.
func NewEigWorkspace(n int) *EigWorkspace {
	w := &EigWorkspace{n: n, wr: make([]float64, n+1), wi: make([]float64, n+1)}
	w.h = make([][]float64, n+1)
	back := make([]float64, (n+1)*(n+1))
	for i := range w.h {
		w.h[i] = back[i*(n+1) : (i+1)*(n+1)]
	}
	return w
}

// SpectralRadius is the workspace variant of the package-level
// SpectralRadius, bit-identical to it for any input of the workspace's
// dimension.
func (w *EigWorkspace) SpectralRadius(a *Matrix) (float64, error) {
	a.mustSquare("SpectralRadius")
	if !a.IsFinite() {
		return math.Inf(1), nil
	}
	n := a.rows
	if n == 0 {
		return 0, nil
	}
	if n == 1 {
		// cmplxAbs(complex(x, 0)) == Hypot(x, 0) == |x| exactly.
		return math.Abs(a.data[0]), nil
	}
	if n != w.n {
		panic(fmt.Sprintf("mat: EigWorkspace holds dimension %d, got %d", w.n, n))
	}
	for i := 1; i <= n; i++ {
		for j := 1; j <= n; j++ {
			w.h[i][j] = a.data[(i-1)*n+(j-1)]
		}
	}
	balance(w.h, n)
	elmhes(w.h, n)
	if err := hqrInto(w.h, n, w.wr, w.wi); err != nil {
		return 0, err
	}
	r := 0.0
	for i := 1; i <= n; i++ {
		if m := cmplxAbs(complex(w.wr[i], w.wi[i])); m > r {
			r = m
		}
	}
	return r, nil
}

// SortEigenvalues orders eigenvalues by descending magnitude (ties broken
// by real part, then imaginary part) so test expectations are stable.
func SortEigenvalues(e []complex128) {
	sort.Slice(e, func(i, j int) bool {
		mi, mj := cmplxAbs(e[i]), cmplxAbs(e[j])
		if mi != mj {
			return mi > mj
		}
		if real(e[i]) != real(e[j]) {
			return real(e[i]) > real(e[j])
		}
		return imag(e[i]) > imag(e[j])
	})
}

// balance scales a (1-based) matrix by diagonal similarity transforms so
// that row and column norms are comparable, improving eigenvalue accuracy.
func balance(a [][]float64, n int) {
	const radix = 2.0
	const sqrdx = radix * radix
	for {
		done := true
		for i := 1; i <= n; i++ {
			r, c := 0.0, 0.0
			for j := 1; j <= n; j++ {
				if j != i {
					c += math.Abs(a[j][i])
					r += math.Abs(a[i][j])
				}
			}
			if c == 0 || r == 0 {
				continue
			}
			g := r / radix
			f := 1.0
			s := c + r
			for c < g {
				f *= radix
				c *= sqrdx
			}
			g = r * radix
			for c > g {
				f /= radix
				c /= sqrdx
			}
			if (c+r)/f < 0.95*s {
				done = false
				g = 1 / f
				for j := 1; j <= n; j++ {
					a[i][j] *= g
				}
				for j := 1; j <= n; j++ {
					a[j][i] *= f
				}
			}
		}
		if done {
			return
		}
	}
}

// elmhes reduces a (1-based) matrix to upper Hessenberg form using
// stabilized elementary similarity transformations.
func elmhes(a [][]float64, n int) {
	for m := 2; m < n; m++ {
		x := 0.0
		i := m
		for j := m; j <= n; j++ {
			if math.Abs(a[j][m-1]) > math.Abs(x) {
				x = a[j][m-1]
				i = j
			}
		}
		if i != m {
			for j := m - 1; j <= n; j++ {
				a[i][j], a[m][j] = a[m][j], a[i][j]
			}
			for j := 1; j <= n; j++ {
				a[j][i], a[j][m] = a[j][m], a[j][i]
			}
		}
		if x == 0 {
			continue
		}
		for i := m + 1; i <= n; i++ {
			y := a[i][m-1]
			if y == 0 {
				continue
			}
			y /= x
			a[i][m-1] = y
			for j := m; j <= n; j++ {
				a[i][j] -= y * a[m][j]
			}
			for j := 1; j <= n; j++ {
				a[j][m] += y * a[j][i]
			}
		}
	}
}

func sign(a, b float64) float64 {
	if b >= 0 {
		return math.Abs(a)
	}
	return -math.Abs(a)
}

// hqr finds all eigenvalues of a (1-based) upper Hessenberg matrix by the
// Francis double-shift QR iteration with deflation and exceptional shifts.
// The matrix is destroyed. Returned slices are 1-based like the input.
func hqr(a [][]float64, n int) (wr, wi []float64, err error) {
	wr = make([]float64, n+1)
	wi = make([]float64, n+1)
	if err := hqrInto(a, n, wr, wi); err != nil {
		return nil, nil, err
	}
	return wr, wi, nil
}

// hqrInto is hqr writing the roots into caller-provided 1-based slices of
// length n+1; every index 1..n is assigned before a nil error returns.
func hqrInto(a [][]float64, n int, wr, wi []float64) error {
	anorm := 0.0
	for i := 1; i <= n; i++ {
		lo := i - 1
		if lo < 1 {
			lo = 1
		}
		for j := lo; j <= n; j++ {
			anorm += math.Abs(a[i][j])
		}
	}
	nn := n
	t := 0.0
	for nn >= 1 {
		its := 0
		var l int
		for {
			// Look for a single small subdiagonal element to split the
			// matrix.
			for l = nn; l >= 2; l-- {
				s := math.Abs(a[l-1][l-1]) + math.Abs(a[l][l])
				if s == 0 {
					s = anorm
				}
				if math.Abs(a[l][l-1])+s == s {
					a[l][l-1] = 0
					break
				}
			}
			x := a[nn][nn]
			if l == nn {
				// One real root found.
				wr[nn] = x + t
				wi[nn] = 0
				nn--
				break
			}
			y := a[nn-1][nn-1]
			w := a[nn][nn-1] * a[nn-1][nn]
			if l == nn-1 {
				// Two roots found (real pair or complex conjugates).
				p := 0.5 * (y - x)
				q := p*p + w
				z := math.Sqrt(math.Abs(q))
				x += t
				if q >= 0 {
					z = p + sign(z, p)
					wr[nn-1] = x + z
					wr[nn] = wr[nn-1]
					if z != 0 {
						wr[nn] = x - w/z
					}
					wi[nn-1] = 0
					wi[nn] = 0
				} else {
					wr[nn-1] = x + p
					wr[nn] = wr[nn-1]
					wi[nn] = z
					wi[nn-1] = -z
				}
				nn -= 2
				break
			}
			// No roots yet: perform a double QR step.
			if its == 60 {
				return ErrNoConvergence
			}
			if its == 10 || its == 20 || its == 30 || its == 40 || its == 50 {
				// Exceptional shift to break symmetry-induced cycling.
				t += x
				for i := 1; i <= nn; i++ {
					a[i][i] -= x
				}
				s := math.Abs(a[nn][nn-1]) + math.Abs(a[nn-1][nn-2])
				y = 0.75 * s
				x = y
				w = -0.4375 * s * s
			}
			its++
			var m int
			var p, q, r float64
			for m = nn - 2; m >= l; m-- {
				// Find two consecutive small subdiagonal elements.
				z := a[m][m]
				r = x - z
				s := y - z
				p = (r*s-w)/a[m+1][m] + a[m][m+1]
				q = a[m+1][m+1] - z - r - s
				r = a[m+2][m+1]
				s = math.Abs(p) + math.Abs(q) + math.Abs(r)
				p /= s
				q /= s
				r /= s
				if m == l {
					break
				}
				u := math.Abs(a[m][m-1]) * (math.Abs(q) + math.Abs(r))
				v := math.Abs(p) * (math.Abs(a[m-1][m-1]) + math.Abs(z) + math.Abs(a[m+1][m+1]))
				if u+v == v {
					break
				}
			}
			for i := m + 2; i <= nn; i++ {
				a[i][i-2] = 0
				if i != m+2 {
					a[i][i-3] = 0
				}
			}
			for k := m; k <= nn-1; k++ {
				// Double QR step on rows l..nn and columns m..nn.
				if k != m {
					p = a[k][k-1]
					q = a[k+1][k-1]
					r = 0
					if k != nn-1 {
						r = a[k+2][k-1]
					}
					x = math.Abs(p) + math.Abs(q) + math.Abs(r)
					if x != 0 {
						p /= x
						q /= x
						r /= x
					}
				}
				s := sign(math.Sqrt(p*p+q*q+r*r), p)
				if s == 0 {
					continue
				}
				if k == m {
					if l != m {
						a[k][k-1] = -a[k][k-1]
					}
				} else {
					a[k][k-1] = -s * x
				}
				p += s
				x = p / s
				y = q / s
				z := r / s
				q /= p
				r /= p
				for j := k; j <= nn; j++ {
					// Row modification.
					p = a[k][j] + q*a[k+1][j]
					if k != nn-1 {
						p += r * a[k+2][j]
						a[k+2][j] -= p * z
					}
					a[k+1][j] -= p * y
					a[k][j] -= p * x
				}
				mmin := nn
				if k+3 < nn {
					mmin = k + 3
				}
				for i := l; i <= mmin; i++ {
					// Column modification.
					p = x*a[i][k] + y*a[i][k+1]
					if k != nn-1 {
						p += z * a[i][k+2]
						a[i][k+2] -= p * r
					}
					a[i][k+1] -= p * q
					a[i][k] -= p
				}
			}
		}
	}
	return nil
}
