package mat

import "math"

// Expm returns the matrix exponential e^A computed by the diagonal Padé
// approximation with scaling and squaring (Golub & Van Loan, Algorithm
// 11.3.1, q = 6). The input is not modified.
func Expm(a *Matrix) *Matrix {
	a.mustSquare("Expm")
	n := a.rows

	// Scale A by a power of two so that ||A/2^j||_inf <= 1/2.
	norm := a.InfNorm()
	j := 0
	if norm > 0.5 {
		j = int(math.Ceil(math.Log2(norm) + 1))
		if j < 0 {
			j = 0
		}
	}
	as := a.Scale(1 / math.Pow(2, float64(j)))

	// Diagonal Padé approximation of order q.
	const q = 6
	x := Identity(n) // running power As^k
	num := Identity(n)
	den := Identity(n)
	c := 1.0
	for k := 1; k <= q; k++ {
		c = c * float64(q-k+1) / (float64(k) * float64(2*q-k+1))
		x = as.Mul(x)
		num = num.AddScaled(c, x)
		if k%2 == 0 {
			den = den.AddScaled(c, x)
		} else {
			den = den.AddScaled(-c, x)
		}
	}
	f, err := Solve(den, num)
	if err != nil {
		// The denominator of the diagonal Padé approximant is nonsingular
		// for ||As|| <= 1/2; reaching this indicates non-finite input.
		panic("mat: Expm failed to solve Padé system: " + err.Error())
	}

	// Undo the scaling by repeated squaring.
	for k := 0; k < j; k++ {
		f = f.Mul(f)
	}
	return f
}

// ExpmIntegral returns the pair
//
//	Ad = e^(A*t)
//	Bd = ∫₀ᵗ e^(A*s) ds · B
//
// used to discretize a continuous-time LTI system under a zero-order hold.
// It is computed exactly (up to the Expm accuracy) via the exponential of
// the augmented block matrix [[A, B], [0, 0]] * t.
func ExpmIntegral(a, b *Matrix, t float64) (ad, bd *Matrix) {
	a.mustSquare("ExpmIntegral")
	if b.rows != a.rows {
		panic("mat: ExpmIntegral B row count must match A")
	}
	n, m := a.rows, b.cols
	aug := New(n+m, n+m)
	aug.SetSlice(0, 0, a.Scale(t))
	aug.SetSlice(0, n, b.Scale(t))
	e := Expm(aug)
	return e.Slice(0, n, 0, n), e.Slice(0, n, n, n+m)
}
