package mat

import (
	"fmt"
	"math"
)

// Expm returns the matrix exponential e^A computed by the diagonal Padé
// approximation with scaling and squaring (Golub & Van Loan, Algorithm
// 11.3.1, q = 6). The input is not modified.
func Expm(a *Matrix) *Matrix {
	a.mustSquare("Expm")
	n := a.rows

	// Scale A by a power of two so that ||A/2^j||_inf <= 1/2.
	norm := a.InfNorm()
	j := 0
	if norm > 0.5 {
		j = int(math.Ceil(math.Log2(norm) + 1))
		if j < 0 {
			j = 0
		}
	}
	as := a.Scale(1 / math.Pow(2, float64(j)))

	// Diagonal Padé approximation of order q.
	const q = 6
	x := Identity(n) // running power As^k
	num := Identity(n)
	den := Identity(n)
	c := 1.0
	for k := 1; k <= q; k++ {
		c = c * float64(q-k+1) / (float64(k) * float64(2*q-k+1))
		x = as.Mul(x)
		num = num.AddScaled(c, x)
		if k%2 == 0 {
			den = den.AddScaled(c, x)
		} else {
			den = den.AddScaled(-c, x)
		}
	}
	f, err := Solve(den, num)
	if err != nil {
		// The denominator of the diagonal Padé approximant is nonsingular
		// for ||As|| <= 1/2; reaching this indicates non-finite input.
		panic("mat: Expm failed to solve Padé system: " + err.Error())
	}

	// Undo the scaling by repeated squaring.
	for k := 0; k < j; k++ {
		f = f.Mul(f)
	}
	return f
}

// ExpmIntegral returns the pair
//
//	Ad = e^(A*t)
//	Bd = ∫₀ᵗ e^(A*s) ds · B
//
// used to discretize a continuous-time LTI system under a zero-order hold.
// It is computed exactly (up to the Expm accuracy) via the exponential of
// the augmented block matrix [[A, B], [0, 0]] * t.
func ExpmIntegral(a, b *Matrix, t float64) (ad, bd *Matrix) {
	a.mustSquare("ExpmIntegral")
	if b.rows != a.rows {
		panic("mat: ExpmIntegral B row count must match A")
	}
	n, m := a.rows, b.cols
	aug := New(n+m, n+m)
	aug.SetSlice(0, 0, a.Scale(t))
	aug.SetSlice(0, n, b.Scale(t))
	e := Expm(aug)
	return e.Slice(0, n, 0, n), e.Slice(0, n, n, n+m)
}

// ExpmWorkspace holds the intermediate matrices of repeated same-dimension
// Expm / ExpmIntegral evaluations, so batch discretizers (the simulation-plan
// compiler, mode tables) stop allocating fresh Padé temporaries per call.
// Results are bit-identical to the allocating functions: every destination
// kernel accumulates in the same element order. A workspace is not safe for
// concurrent use.
type ExpmWorkspace struct {
	n                   int
	as, x, x2, num, den *Matrix
	e                   *Matrix // e^aug result buffer
	aug                 *Matrix // augmented [[A,B],[0,0]]*t for ExpmIntegral
}

// NewExpmWorkspace returns a workspace for n-by-n exponentials. For
// ExpmIntegral calls, n must be the augmented dimension A.Rows()+B.Cols().
func NewExpmWorkspace(n int) *ExpmWorkspace {
	return &ExpmWorkspace{
		n:   n,
		as:  New(n, n),
		x:   New(n, n),
		x2:  New(n, n),
		num: New(n, n),
		den: New(n, n),
		e:   New(n, n),
		aug: New(n, n),
	}
}

// ExpmTo computes dst = e^a using the workspace buffers. It mirrors Expm
// operation for operation (only the Padé solve still allocates its LU
// factors), so the result is bit-identical to Expm(a).
func (w *ExpmWorkspace) ExpmTo(dst, a *Matrix) {
	a.mustSquare("ExpmTo")
	if a.rows != w.n || dst.rows != w.n || dst.cols != w.n {
		panic(fmt.Sprintf("mat: ExpmTo dimension %d, workspace holds %d", a.rows, w.n))
	}

	norm := a.InfNorm()
	j := 0
	if norm > 0.5 {
		j = int(math.Ceil(math.Log2(norm) + 1))
		if j < 0 {
			j = 0
		}
	}
	a.ScaleTo(w.as, 1/math.Pow(2, float64(j)))

	const q = 6
	w.x.SetIdentity()
	w.num.SetIdentity()
	w.den.SetIdentity()
	c := 1.0
	x, x2 := w.x, w.x2
	for k := 1; k <= q; k++ {
		c = c * float64(q-k+1) / (float64(k) * float64(2*q-k+1))
		w.as.MulTo(x2, x)
		x, x2 = x2, x
		w.num.AddScaledTo(w.num, c, x)
		if k%2 == 0 {
			w.den.AddScaledTo(w.den, c, x)
		} else {
			w.den.AddScaledTo(w.den, -c, x)
		}
	}
	f, err := Solve(w.den, w.num)
	if err != nil {
		panic("mat: ExpmTo failed to solve Padé system: " + err.Error())
	}

	cur, buf := f, x // x is free after the Padé loop
	for k := 0; k < j; k++ {
		cur.MulTo(buf, cur)
		cur, buf = buf, cur
	}
	dst.Copy(cur)
}

// ExpmIntegral is the workspace variant of the package-level ExpmIntegral:
// it returns freshly allocated Ad, Bd (callers retain them in compiled
// plans) but reuses the workspace for every intermediate. The workspace
// dimension must equal A.Rows()+B.Cols().
func (w *ExpmWorkspace) ExpmIntegral(a, b *Matrix, t float64) (ad, bd *Matrix) {
	a.mustSquare("ExpmIntegral")
	if b.rows != a.rows {
		panic("mat: ExpmIntegral B row count must match A")
	}
	n, m := a.rows, b.cols
	if n+m != w.n {
		panic(fmt.Sprintf("mat: ExpmIntegral augmented dimension %d, workspace holds %d", n+m, w.n))
	}
	for i := range w.aug.data {
		w.aug.data[i] = 0
	}
	for i := 0; i < n; i++ {
		augRow := w.aug.data[i*w.aug.cols : i*w.aug.cols+w.aug.cols]
		aRow := a.data[i*a.cols : (i+1)*a.cols]
		for j, v := range aRow {
			augRow[j] = t * v
		}
		bRow := b.data[i*b.cols : (i+1)*b.cols]
		for j, v := range bRow {
			augRow[n+j] = t * v
		}
	}
	w.ExpmTo(w.e, w.aug)
	return w.e.Slice(0, n, 0, n), w.e.Slice(0, n, n, n+m)
}
