package mat

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestSolveKnown(t *testing.T) {
	a := NewFromRows([][]float64{{2, 1}, {1, 3}})
	b := ColVec(3, 5)
	x, err := Solve(a, b)
	if err != nil {
		t.Fatal(err)
	}
	want := ColVec(0.8, 1.4)
	if !x.Equal(want, 1e-12) {
		t.Errorf("Solve: got\n%v want\n%v", x, want)
	}
}

func TestSolveMultiRHS(t *testing.T) {
	a := NewFromRows([][]float64{{4, 3}, {6, 3}})
	b := NewFromRows([][]float64{{1, 0}, {0, 1}})
	x, err := Solve(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if !a.Mul(x).Equal(Identity(2), 1e-12) {
		t.Error("A * A^-1 != I")
	}
}

func TestSingular(t *testing.T) {
	a := NewFromRows([][]float64{{1, 2}, {2, 4}})
	if _, err := Solve(a, ColVec(1, 1)); err != ErrSingular {
		t.Errorf("expected ErrSingular, got %v", err)
	}
	if Det(a) != 0 {
		t.Errorf("Det of singular = %g, want 0", Det(a))
	}
}

func TestDetKnown(t *testing.T) {
	a := NewFromRows([][]float64{{1, 2}, {3, 4}})
	almostEq(t, Det(a), -2, 1e-12, "det 2x2")
	// Permutation-heavy case exercises pivot sign tracking.
	p := NewFromRows([][]float64{{0, 1, 0}, {0, 0, 1}, {1, 0, 0}})
	almostEq(t, Det(p), 1, 1e-12, "det cyclic permutation")
	q := NewFromRows([][]float64{{0, 1}, {1, 0}})
	almostEq(t, Det(q), -1, 1e-12, "det swap")
}

func TestInverseKnown(t *testing.T) {
	a := NewFromRows([][]float64{{4, 7}, {2, 6}})
	inv, err := Inverse(a)
	if err != nil {
		t.Fatal(err)
	}
	want := NewFromRows([][]float64{{0.6, -0.7}, {-0.2, 0.4}})
	if !inv.Equal(want, 1e-12) {
		t.Errorf("Inverse: got\n%v want\n%v", inv, want)
	}
}

func TestLUDetMatchesProductRule(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	a := randomMatrix(r, 5, 5)
	b := randomMatrix(r, 5, 5)
	got := Det(a.Mul(b))
	want := Det(a) * Det(b)
	if math.Abs(got-want) > 1e-9*(1+math.Abs(want)) {
		t.Errorf("det(AB)=%g, det(A)det(B)=%g", got, want)
	}
}

// Property: for well-conditioned random A, the LU solve residual is tiny.
func TestQuickSolveResidual(t *testing.T) {
	f := func(seed int64) bool {
		rr := rand.New(rand.NewSource(seed))
		n := 1 + rr.Intn(6)
		// Diagonally dominant => well conditioned.
		a := randomMatrix(rr, n, n)
		for i := 0; i < n; i++ {
			a.Set(i, i, a.At(i, i)+float64(n)+1)
		}
		x := randomMatrix(rr, n, 1)
		b := a.Mul(x)
		got, err := Solve(a, b)
		if err != nil {
			return false
		}
		return got.Equal(x, 1e-8)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// Property: Inverse(A) * A == I for diagonally dominant A.
func TestQuickInverse(t *testing.T) {
	f := func(seed int64) bool {
		rr := rand.New(rand.NewSource(seed))
		n := 1 + rr.Intn(5)
		a := randomMatrix(rr, n, n)
		for i := 0; i < n; i++ {
			a.Set(i, i, a.At(i, i)+float64(n)+2)
		}
		inv, err := Inverse(a)
		if err != nil {
			return false
		}
		return inv.Mul(a).Equal(Identity(n), 1e-8) && a.Mul(inv).Equal(Identity(n), 1e-8)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestQRFactorization(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	for _, dims := range [][2]int{{3, 3}, {5, 3}, {6, 2}, {4, 4}} {
		a := randomMatrix(r, dims[0], dims[1])
		f := FactorQR(a)
		q, rr := f.Q(), f.R()
		if !q.Mul(rr).Equal(a, 1e-10) {
			t.Errorf("QR %v: Q*R != A", dims)
		}
		if !q.Transpose().Mul(q).Equal(Identity(dims[1]), 1e-10) {
			t.Errorf("QR %v: Q not orthonormal", dims)
		}
		// R upper triangular.
		for i := 1; i < rr.Rows(); i++ {
			for j := 0; j < i; j++ {
				if math.Abs(rr.At(i, j)) > 1e-12 {
					t.Errorf("QR %v: R(%d,%d) = %g below diagonal", dims, i, j, rr.At(i, j))
				}
			}
		}
	}
}

func TestQRLeastSquares(t *testing.T) {
	// Overdetermined fit: y = 2x + 1 with exact data must recover exactly.
	xs := []float64{0, 1, 2, 3}
	a := New(4, 2)
	b := New(4, 1)
	for i, x := range xs {
		a.Set(i, 0, x)
		a.Set(i, 1, 1)
		b.Set(i, 0, 2*x+1)
	}
	sol, err := FactorQR(a).SolveLS(b)
	if err != nil {
		t.Fatal(err)
	}
	if !sol.Equal(ColVec(2, 1), 1e-10) {
		t.Errorf("least squares: got\n%v", sol)
	}
}

func TestQRSolveLSSingular(t *testing.T) {
	a := NewFromRows([][]float64{{1, 1}, {1, 1}, {1, 1}})
	if _, err := FactorQR(a).SolveLS(ColVec(1, 2, 3)); err == nil {
		t.Error("expected error on rank-deficient LS")
	}
}
