package mat

import (
	"errors"
	"fmt"
	"math"
)

// ErrSingular is returned by factorization-based operations when the matrix
// is singular to working precision.
var ErrSingular = errors.New("mat: matrix is singular to working precision")

// LU holds an LU factorization with partial pivoting: P*A = L*U, where L is
// unit lower triangular and U is upper triangular, both packed into lu.
type LU struct {
	lu    *Matrix
	piv   []int
	signP float64 // determinant sign of the permutation
}

// Factor computes the LU factorization of a square matrix A with partial
// pivoting. It returns ErrSingular if a pivot underflows to (near) zero.
func Factor(a *Matrix) (*LU, error) {
	a.mustSquare("Factor")
	n := a.rows
	lu := a.Clone()
	piv := make([]int, n)
	for i := range piv {
		piv[i] = i
	}
	sign := 1.0
	for k := 0; k < n; k++ {
		// Partial pivoting: find the largest entry in column k at or below
		// the diagonal.
		p, maxAbs := k, math.Abs(lu.data[k*n+k])
		for i := k + 1; i < n; i++ {
			if a := math.Abs(lu.data[i*n+k]); a > maxAbs {
				p, maxAbs = i, a
			}
		}
		if maxAbs == 0 {
			return nil, ErrSingular
		}
		if p != k {
			for j := 0; j < n; j++ {
				lu.data[p*n+j], lu.data[k*n+j] = lu.data[k*n+j], lu.data[p*n+j]
			}
			piv[p], piv[k] = piv[k], piv[p]
			sign = -sign
		}
		pivot := lu.data[k*n+k]
		for i := k + 1; i < n; i++ {
			f := lu.data[i*n+k] / pivot
			lu.data[i*n+k] = f
			if f == 0 {
				continue
			}
			for j := k + 1; j < n; j++ {
				lu.data[i*n+j] -= f * lu.data[k*n+j]
			}
		}
	}
	return &LU{lu: lu, piv: piv, signP: sign}, nil
}

// Solve solves A*X = B for X using the factorization. B may have any number
// of right-hand-side columns. It panics if B has the wrong number of rows.
func (f *LU) Solve(b *Matrix) *Matrix {
	n := f.lu.rows
	if b.rows != n {
		panic(fmt.Sprintf("mat: LU.Solve rhs has %d rows, want %d", b.rows, n))
	}
	x := New(n, b.cols)
	// Apply the row permutation to B.
	for i := 0; i < n; i++ {
		copy(x.data[i*b.cols:(i+1)*b.cols], b.data[f.piv[i]*b.cols:(f.piv[i]+1)*b.cols])
	}
	// Forward substitution with unit lower triangular L.
	for k := 0; k < n; k++ {
		for i := k + 1; i < n; i++ {
			l := f.lu.data[i*n+k]
			if l == 0 {
				continue
			}
			for j := 0; j < b.cols; j++ {
				x.data[i*b.cols+j] -= l * x.data[k*b.cols+j]
			}
		}
	}
	// Back substitution with U.
	for k := n - 1; k >= 0; k-- {
		d := f.lu.data[k*n+k]
		for j := 0; j < b.cols; j++ {
			x.data[k*b.cols+j] /= d
		}
		for i := 0; i < k; i++ {
			u := f.lu.data[i*n+k]
			if u == 0 {
				continue
			}
			for j := 0; j < b.cols; j++ {
				x.data[i*b.cols+j] -= u * x.data[k*b.cols+j]
			}
		}
	}
	return x
}

// Det returns the determinant of the factored matrix.
func (f *LU) Det() float64 {
	n := f.lu.rows
	d := f.signP
	for i := 0; i < n; i++ {
		d *= f.lu.data[i*n+i]
	}
	return d
}

// Solve solves A*X = B and returns X. It is a convenience wrapper around
// Factor followed by LU.Solve.
func Solve(a, b *Matrix) (*Matrix, error) {
	f, err := Factor(a)
	if err != nil {
		return nil, err
	}
	return f.Solve(b), nil
}

// Inverse returns A^-1, or ErrSingular if A is singular.
func Inverse(a *Matrix) (*Matrix, error) {
	return Solve(a, Identity(a.rows))
}

// Det returns the determinant of a square matrix. A singular matrix yields
// zero.
func Det(a *Matrix) float64 {
	f, err := Factor(a)
	if err != nil {
		return 0
	}
	return f.Det()
}
