package mat

import (
	"errors"
	"fmt"
	"math"
)

// ErrSingular is returned by factorization-based operations when the matrix
// is singular to working precision.
var ErrSingular = errors.New("mat: matrix is singular to working precision")

// LU holds an LU factorization with partial pivoting: P*A = L*U, where L is
// unit lower triangular and U is upper triangular, both packed into lu.
type LU struct {
	lu    *Matrix
	piv   []int
	signP float64 // determinant sign of the permutation
}

// Factor computes the LU factorization of a square matrix A with partial
// pivoting. It returns ErrSingular if a pivot underflows to (near) zero.
func Factor(a *Matrix) (*LU, error) {
	a.mustSquare("Factor")
	lu := a.Clone()
	piv := make([]int, a.rows)
	sign, err := factorInPlace(lu, piv)
	if err != nil {
		return nil, err
	}
	return &LU{lu: lu, piv: piv, signP: sign}, nil
}

// factorInPlace runs the pivoted elimination on lu (which already holds a
// copy of A), filling piv and returning the permutation sign. It is the
// shared core of Factor and LUWorkspace.
func factorInPlace(lu *Matrix, piv []int) (float64, error) {
	n := lu.rows
	for i := range piv {
		piv[i] = i
	}
	sign := 1.0
	for k := 0; k < n; k++ {
		// Partial pivoting: find the largest entry in column k at or below
		// the diagonal.
		p, maxAbs := k, math.Abs(lu.data[k*n+k])
		for i := k + 1; i < n; i++ {
			if a := math.Abs(lu.data[i*n+k]); a > maxAbs {
				p, maxAbs = i, a
			}
		}
		if maxAbs == 0 {
			return 0, ErrSingular
		}
		if p != k {
			for j := 0; j < n; j++ {
				lu.data[p*n+j], lu.data[k*n+j] = lu.data[k*n+j], lu.data[p*n+j]
			}
			piv[p], piv[k] = piv[k], piv[p]
			sign = -sign
		}
		pivot := lu.data[k*n+k]
		for i := k + 1; i < n; i++ {
			f := lu.data[i*n+k] / pivot
			lu.data[i*n+k] = f
			if f == 0 {
				continue
			}
			for j := k + 1; j < n; j++ {
				lu.data[i*n+j] -= f * lu.data[k*n+j]
			}
		}
	}
	return sign, nil
}

// Solve solves A*X = B for X using the factorization. B may have any number
// of right-hand-side columns. It panics if B has the wrong number of rows.
func (f *LU) Solve(b *Matrix) *Matrix {
	n := f.lu.rows
	if b.rows != n {
		panic(fmt.Sprintf("mat: LU.Solve rhs has %d rows, want %d", b.rows, n))
	}
	x := New(n, b.cols)
	luSolveInto(x, f.lu, f.piv, b)
	return x
}

// luSolveInto performs the permuted forward/back substitution into x. It is
// the shared core of LU.Solve and LUWorkspace.
func luSolveInto(x, lu *Matrix, piv []int, b *Matrix) {
	n := lu.rows
	// Apply the row permutation to B.
	for i := 0; i < n; i++ {
		copy(x.data[i*b.cols:(i+1)*b.cols], b.data[piv[i]*b.cols:(piv[i]+1)*b.cols])
	}
	// Forward substitution with unit lower triangular L.
	for k := 0; k < n; k++ {
		for i := k + 1; i < n; i++ {
			l := lu.data[i*n+k]
			if l == 0 {
				continue
			}
			for j := 0; j < b.cols; j++ {
				x.data[i*b.cols+j] -= l * x.data[k*b.cols+j]
			}
		}
	}
	// Back substitution with U.
	for k := n - 1; k >= 0; k-- {
		d := lu.data[k*n+k]
		for j := 0; j < b.cols; j++ {
			x.data[k*b.cols+j] /= d
		}
		for i := 0; i < k; i++ {
			u := lu.data[i*n+k]
			if u == 0 {
				continue
			}
			for j := 0; j < b.cols; j++ {
				x.data[i*b.cols+j] -= u * x.data[k*b.cols+j]
			}
		}
	}
}

// LUWorkspace holds the factorization and solution buffers of repeated
// same-shape linear solves, so callers solving one system per objective
// evaluation (the holistic-feedforward gains of every candidate design)
// stop allocating LU factors. Solutions are bit-identical to Solve: the
// workspace runs factorInPlace and luSolveInto on the same values. A
// workspace is not safe for concurrent use.
type LUWorkspace struct {
	n, cols int
	lu      *Matrix
	piv     []int
	x       *Matrix
}

// NewLUWorkspace returns a workspace for solving n-by-n systems with
// rhsCols right-hand-side columns.
func NewLUWorkspace(n, rhsCols int) *LUWorkspace {
	return &LUWorkspace{n: n, cols: rhsCols, lu: New(n, n), piv: make([]int, n), x: New(n, rhsCols)}
}

// Solve solves A*X = B into the workspace's solution buffer, which is
// returned and stays valid until the next Solve call. It is bit-identical
// to the package-level Solve for matching shapes.
func (w *LUWorkspace) Solve(a, b *Matrix) (*Matrix, error) {
	a.mustSquare("LUWorkspace.Solve")
	if a.rows != w.n || b.rows != w.n || b.cols != w.cols {
		panic(fmt.Sprintf("mat: LUWorkspace holds %dx%d with %d rhs cols, got A %dx%d, B %dx%d",
			w.n, w.n, w.cols, a.rows, a.cols, b.rows, b.cols))
	}
	w.lu.Copy(a)
	if _, err := factorInPlace(w.lu, w.piv); err != nil {
		return nil, err
	}
	luSolveInto(w.x, w.lu, w.piv, b)
	return w.x, nil
}

// Det returns the determinant of the factored matrix.
func (f *LU) Det() float64 {
	n := f.lu.rows
	d := f.signP
	for i := 0; i < n; i++ {
		d *= f.lu.data[i*n+i]
	}
	return d
}

// Solve solves A*X = B and returns X. It is a convenience wrapper around
// Factor followed by LU.Solve.
func Solve(a, b *Matrix) (*Matrix, error) {
	f, err := Factor(a)
	if err != nil {
		return nil, err
	}
	return f.Solve(b), nil
}

// Inverse returns A^-1, or ErrSingular if A is singular.
func Inverse(a *Matrix) (*Matrix, error) {
	return Solve(a, Identity(a.rows))
}

// Det returns the determinant of a square matrix. A singular matrix yields
// zero.
func Det(a *Matrix) float64 {
	f, err := Factor(a)
	if err != nil {
		return 0
	}
	return f.Det()
}
