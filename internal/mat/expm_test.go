package mat

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestExpmZero(t *testing.T) {
	if !Expm(New(3, 3)).Equal(Identity(3), 1e-14) {
		t.Error("expm(0) != I")
	}
}

func TestExpmDiagonal(t *testing.T) {
	a := NewFromRows([][]float64{{1, 0}, {0, -2}})
	e := Expm(a)
	almostEq(t, e.At(0, 0), math.E, 1e-12, "expm diag e")
	almostEq(t, e.At(1, 1), math.Exp(-2), 1e-12, "expm diag e^-2")
	almostEq(t, e.At(0, 1), 0, 1e-13, "expm diag off")
}

func TestExpmNilpotent(t *testing.T) {
	// For nilpotent N with N^2=0: e^N = I + N exactly.
	n := NewFromRows([][]float64{{0, 5}, {0, 0}})
	want := NewFromRows([][]float64{{1, 5}, {0, 1}})
	if !Expm(n).Equal(want, 1e-12) {
		t.Errorf("expm nilpotent:\n%v", Expm(n))
	}
}

func TestExpmRotation(t *testing.T) {
	// e^{θJ} with J = [[0,-1],[1,0]] is a rotation by θ.
	th := 1.234
	a := NewFromRows([][]float64{{0, -th}, {th, 0}})
	e := Expm(a)
	want := NewFromRows([][]float64{
		{math.Cos(th), -math.Sin(th)},
		{math.Sin(th), math.Cos(th)},
	})
	if !e.Equal(want, 1e-12) {
		t.Errorf("expm rotation:\n%v want\n%v", e, want)
	}
}

func TestExpmLargeNormScaling(t *testing.T) {
	// Entries big enough to force several squaring steps.
	a := NewFromRows([][]float64{{0, -40}, {40, 0}})
	e := Expm(a)
	want := NewFromRows([][]float64{
		{math.Cos(40), -math.Sin(40)},
		{math.Sin(40), math.Cos(40)},
	})
	if !e.Equal(want, 1e-8) {
		t.Errorf("expm large rotation:\n%v want\n%v", e, want)
	}
}

func TestExpmInverse(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	a := randomMatrix(r, 4, 4)
	e := Expm(a)
	einv := Expm(a.Scale(-1))
	if !e.Mul(einv).Equal(Identity(4), 1e-9) {
		t.Error("expm(A)*expm(-A) != I")
	}
}

// Property: expm(A)*expm(A) == expm(2A) (A commutes with itself).
func TestQuickExpmAdditivity(t *testing.T) {
	f := func(seed int64) bool {
		rr := rand.New(rand.NewSource(seed))
		n := 1 + rr.Intn(4)
		a := randomMatrix(rr, n, n)
		lhs := Expm(a).Mul(Expm(a))
		rhs := Expm(a.Scale(2))
		return lhs.Equal(rhs, 1e-8*(1+rhs.MaxAbs()))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// Property: det(expm(A)) == exp(trace(A)).
func TestQuickExpmDetTrace(t *testing.T) {
	f := func(seed int64) bool {
		rr := rand.New(rand.NewSource(seed))
		n := 1 + rr.Intn(4)
		a := randomMatrix(rr, n, n)
		d := Det(Expm(a))
		want := math.Exp(a.Trace())
		return math.Abs(d-want) <= 1e-7*(1+math.Abs(want))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestExpmIntegralScalar(t *testing.T) {
	// Scalar system: Ad = e^{at}, Bd = (e^{at}-1)/a * b.
	a := NewFromRows([][]float64{{-2}})
	b := NewFromRows([][]float64{{3}})
	tt := 0.7
	ad, bd := ExpmIntegral(a, b, tt)
	almostEq(t, ad.At(0, 0), math.Exp(-2*tt), 1e-12, "Ad scalar")
	almostEq(t, bd.At(0, 0), (math.Exp(-2*tt)-1)/(-2)*3, 1e-12, "Bd scalar")
}

func TestExpmIntegralIntegrator(t *testing.T) {
	// Double integrator: A = [[0,1],[0,0]], B = [0,1]^T.
	// Ad = [[1,t],[0,1]], Bd = [t^2/2, t]^T.
	a := NewFromRows([][]float64{{0, 1}, {0, 0}})
	b := ColVec(0, 1)
	tt := 0.25
	ad, bd := ExpmIntegral(a, b, tt)
	wantAd := NewFromRows([][]float64{{1, tt}, {0, 1}})
	wantBd := ColVec(tt*tt/2, tt)
	if !ad.Equal(wantAd, 1e-12) {
		t.Errorf("Ad:\n%v", ad)
	}
	if !bd.Equal(wantBd, 1e-12) {
		t.Errorf("Bd:\n%v", bd)
	}
}

// Property: ExpmIntegral over t1+t2 equals the composition over t1 then t2
// (semigroup property of the ZOH discretization with constant input).
func TestQuickExpmIntegralSemigroup(t *testing.T) {
	f := func(seed int64) bool {
		rr := rand.New(rand.NewSource(seed))
		n := 1 + rr.Intn(3)
		a := randomMatrix(rr, n, n)
		b := randomMatrix(rr, n, 1)
		t1 := 0.1 + 0.4*rr.Float64()
		t2 := 0.1 + 0.4*rr.Float64()
		ad1, bd1 := ExpmIntegral(a, b, t1)
		ad2, bd2 := ExpmIntegral(a, b, t2)
		adS, bdS := ExpmIntegral(a, b, t1+t2)
		// x' = ad2*(ad1 x + bd1 u) + bd2 u must equal adS x + bdS u.
		okA := ad2.Mul(ad1).Equal(adS, 1e-8*(1+adS.MaxAbs()))
		okB := ad2.Mul(bd1).Add(bd2).Equal(bdS, 1e-8*(1+bdS.MaxAbs()))
		return okA && okB
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
