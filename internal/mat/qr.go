package mat

import (
	"fmt"
	"math"
)

// QR holds a Householder QR factorization A = Q*R with Q orthogonal and R
// upper triangular. A may be rectangular with Rows() >= Cols().
type QR struct {
	qr    *Matrix   // Householder vectors on and below the diagonal, R strictly above
	rdiag []float64 // diagonal of R
	rows  int
	cols  int
}

// FactorQR computes the Householder QR factorization of a. It panics if a
// has fewer rows than columns.
func FactorQR(a *Matrix) *QR {
	if a.rows < a.cols {
		panic(fmt.Sprintf("mat: FactorQR requires rows >= cols, got %dx%d", a.rows, a.cols))
	}
	m, n := a.rows, a.cols
	qr := a.Clone()
	rdiag := make([]float64, n)
	for k := 0; k < n; k++ {
		// Build the Householder reflector that annihilates column k below
		// the diagonal. The vector (with head 1+|x|/nrm) stays packed in
		// the column; the resulting R diagonal entry goes to rdiag.
		norm := 0.0
		for i := k; i < m; i++ {
			norm = math.Hypot(norm, qr.data[i*n+k])
		}
		if norm != 0 {
			if qr.data[k*n+k] < 0 {
				norm = -norm
			}
			for i := k; i < m; i++ {
				qr.data[i*n+k] /= norm
			}
			qr.data[k*n+k] += 1
			for j := k + 1; j < n; j++ {
				s := 0.0
				for i := k; i < m; i++ {
					s += qr.data[i*n+k] * qr.data[i*n+j]
				}
				s = -s / qr.data[k*n+k]
				for i := k; i < m; i++ {
					qr.data[i*n+j] += s * qr.data[i*n+k]
				}
			}
		}
		rdiag[k] = -norm
	}
	return &QR{qr: qr, rdiag: rdiag, rows: m, cols: n}
}

// R returns the upper-triangular factor (Cols-by-Cols).
func (f *QR) R() *Matrix {
	n := f.cols
	r := New(n, n)
	for i := 0; i < n; i++ {
		r.data[i*n+i] = f.rdiag[i]
		for j := i + 1; j < n; j++ {
			r.data[i*n+j] = f.qr.data[i*n+j]
		}
	}
	return r
}

// Q returns the thin orthogonal factor (Rows-by-Cols).
func (f *QR) Q() *Matrix {
	m, n := f.rows, f.cols
	q := New(m, n)
	for k := n - 1; k >= 0; k-- {
		q.data[k*n+k] = 1
		if f.qr.data[k*n+k] == 0 {
			continue
		}
		for j := k; j < n; j++ {
			s := 0.0
			for i := k; i < m; i++ {
				s += f.qr.data[i*n+k] * q.data[i*n+j]
			}
			s = -s / f.qr.data[k*n+k]
			for i := k; i < m; i++ {
				q.data[i*n+j] += s * f.qr.data[i*n+k]
			}
		}
	}
	return q
}

// SolveLS solves the least-squares problem min ||A*x - b||_2 using the QR
// factorization. b must have Rows() rows; the result has Cols() rows.
// It returns ErrSingular if R has a (near-)zero diagonal entry.
func (f *QR) SolveLS(b *Matrix) (*Matrix, error) {
	m, n := f.rows, f.cols
	if b.rows != m {
		panic(fmt.Sprintf("mat: SolveLS rhs has %d rows, want %d", b.rows, m))
	}
	y := b.Clone()
	// Apply Q^T to b.
	for k := 0; k < n; k++ {
		if f.qr.data[k*n+k] == 0 {
			continue
		}
		for j := 0; j < y.cols; j++ {
			s := 0.0
			for i := k; i < m; i++ {
				s += f.qr.data[i*n+k] * y.data[i*y.cols+j]
			}
			s = -s / f.qr.data[k*n+k]
			for i := k; i < m; i++ {
				y.data[i*y.cols+j] += s * f.qr.data[i*n+k]
			}
		}
	}
	// Back substitution with R.
	x := New(n, b.cols)
	for i := n - 1; i >= 0; i-- {
		d := f.rdiag[i]
		if math.Abs(d) < 1e-12*(1+f.qr.MaxAbs()) {
			return nil, ErrSingular
		}
		for j := 0; j < b.cols; j++ {
			s := y.data[i*y.cols+j]
			for k := i + 1; k < n; k++ {
				s -= f.qr.data[i*n+k] * x.data[k*b.cols+j]
			}
			x.data[i*b.cols+j] = s / d
		}
	}
	return x, nil
}
