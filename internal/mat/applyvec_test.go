package mat

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestApplyVecKnown(t *testing.T) {
	m := NewFromRows([][]float64{{1, 2}, {3, 4}, {5, 6}})
	dst := make([]float64, 3)
	m.ApplyVec(dst, []float64{1, -1})
	want := []float64{-1, -1, -1}
	for i := range want {
		if dst[i] != want[i] {
			t.Errorf("dst[%d] = %g, want %g", i, dst[i], want[i])
		}
	}
}

func TestApplyVecDimPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic on dimension mismatch")
		}
	}()
	Identity(2).ApplyVec(make([]float64, 3), []float64{1, 2})
}

// Property: ApplyVec agrees with Mul on column vectors.
func TestQuickApplyVecMatchesMul(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n, m := 1+r.Intn(5), 1+r.Intn(5)
		a := randomMatrix(r, n, m)
		src := make([]float64, m)
		for i := range src {
			src[i] = r.NormFloat64()
		}
		dst := make([]float64, n)
		a.ApplyVec(dst, src)
		want := a.Mul(ColVec(src...))
		for i := range dst {
			if diff := dst[i] - want.At(i, 0); diff > 1e-12 || diff < -1e-12 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
