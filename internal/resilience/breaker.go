package resilience

import (
	"sync"
	"time"
)

// BreakerState is the circuit breaker's observable state.
type BreakerState int

const (
	// Closed: calls flow normally; consecutive failures are counted.
	Closed BreakerState = iota
	// Open: calls are refused immediately until the cooldown elapses.
	Open
	// HalfOpen: the cooldown elapsed; exactly one probe call is admitted
	// while everything else is still refused.
	HalfOpen
)

func (s BreakerState) String() string {
	switch s {
	case Closed:
		return "closed"
	case Open:
		return "open"
	case HalfOpen:
		return "half-open"
	}
	return "unknown"
}

// BreakerStats snapshots a breaker for observability endpoints.
type BreakerStats struct {
	State    string `json:"state"`
	Opens    int64  `json:"opens"`    // closed/half-open → open transitions
	Refused  int64  `json:"refused"`  // Allow calls answered false
	Failures int64  `json:"failures"` // Failure reports (all states)
}

// Breaker is a circuit breaker over consecutive failures:
//
//	closed ──threshold consecutive failures──▶ open
//	open ──cooldown elapsed──▶ half-open (one probe admitted)
//	half-open ──probe success──▶ closed
//	half-open ──probe failure──▶ open (fresh cooldown)
//
// Callers ask Allow before an attempt and report Success/Failure after.
// All methods are safe for concurrent use; the clock is injectable so
// transition tests never sleep.
type Breaker struct {
	mu        sync.Mutex
	threshold int           // consecutive failures that open the circuit
	cooldown  time.Duration // open duration before the half-open probe
	now       func() time.Time

	state    BreakerState
	fails    int       // consecutive failures while closed
	openedAt time.Time // when the circuit last opened
	probing  bool      // the half-open probe is in flight

	opens    int64
	refused  int64
	failures int64
}

// Breaker defaults: open after DefaultBreakerThreshold consecutive
// failures, probe after DefaultBreakerCooldown.
const (
	DefaultBreakerThreshold = 5
	DefaultBreakerCooldown  = 5 * time.Second
)

// NewBreaker builds a closed breaker; threshold <= 0 and cooldown <= 0
// resolve to the defaults.
func NewBreaker(threshold int, cooldown time.Duration) *Breaker {
	if threshold <= 0 {
		threshold = DefaultBreakerThreshold
	}
	if cooldown <= 0 {
		cooldown = DefaultBreakerCooldown
	}
	return &Breaker{threshold: threshold, cooldown: cooldown, now: time.Now}
}

// SetClock replaces the breaker's clock (test hook); nil restores the real
// one.
func (b *Breaker) SetClock(now func() time.Time) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if now == nil {
		now = time.Now
	}
	b.now = now
}

// Allow reports whether a call may proceed. In the open state it flips to
// half-open once the cooldown has elapsed and admits exactly one probe;
// every refused call returns in microseconds — that is the point.
func (b *Breaker) Allow() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case Closed:
		return true
	case Open:
		if b.now().Sub(b.openedAt) >= b.cooldown {
			b.state = HalfOpen
			b.probing = true
			return true
		}
		b.refused++
		return false
	case HalfOpen:
		if !b.probing {
			b.probing = true
			return true
		}
		b.refused++
		return false
	}
	return true
}

// Success reports a completed call. It closes a half-open breaker (the
// probe succeeded) and resets the failure run.
func (b *Breaker) Success() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.state = Closed
	b.fails = 0
	b.probing = false
}

// Failure reports a failed call: it re-opens a half-open breaker
// immediately (the probe failed) and opens a closed one once the
// consecutive-failure run reaches the threshold.
func (b *Breaker) Failure() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.failures++
	switch b.state {
	case HalfOpen:
		b.open()
	case Closed:
		b.fails++
		if b.fails >= b.threshold {
			b.open()
		}
	case Open:
		// Late failure reports from calls admitted before the flip carry no
		// new information.
	}
}

// open transitions to Open; callers hold b.mu.
func (b *Breaker) open() {
	b.state = Open
	b.openedAt = b.now()
	b.fails = 0
	b.probing = false
	b.opens++
}

// State returns the current state, performing the open → half-open clock
// check so observers see "half-open" as soon as a probe would be admitted.
func (b *Breaker) State() BreakerState {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.state == Open && b.now().Sub(b.openedAt) >= b.cooldown {
		return HalfOpen
	}
	return b.state
}

// Stats snapshots the breaker counters.
func (b *Breaker) Stats() BreakerStats {
	st := b.State() // takes and releases the lock for the clock check
	b.mu.Lock()
	defer b.mu.Unlock()
	return BreakerStats{
		State:    st.String(),
		Opens:    b.opens,
		Refused:  b.refused,
		Failures: b.failures,
	}
}
