package resilience

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"net/url"
	"testing"
	"time"
)

// recordingSleep captures every delay the retry loop would wait out.
type recordingSleep struct{ delays []time.Duration }

func (r *recordingSleep) sleep(ctx context.Context, d time.Duration) {
	r.delays = append(r.delays, d)
}

func TestClassificationTable(t *testing.T) {
	for _, tc := range []struct {
		name      string
		err       error
		retryable bool
	}{
		{"nil", nil, false},
		{"plain transport", errors.New("connection refused"), true},
		{"net.OpError", &net.OpError{Op: "dial", Err: errors.New("refused")}, true},
		{"url.Error wrapping deadline", &url.Error{Op: "Get", URL: "http://x", Err: context.DeadlineExceeded}, true},
		{"io.ErrUnexpectedEOF", io.ErrUnexpectedEOF, true},
		{"caller canceled", context.Canceled, false},
		{"caller deadline", context.DeadlineExceeded, false},
		{"wrapped caller canceled", fmt.Errorf("op: %w", context.Canceled), false},
		{"status 500", &StatusError{Code: 500}, true},
		{"status 502", &StatusError{Code: 502}, true},
		{"status 503", &StatusError{Code: 503}, true},
		{"status 429", &StatusError{Code: 429}, true},
		{"status 400", &StatusError{Code: 400}, false},
		{"status 404", &StatusError{Code: 404}, false},
		{"status 409", &StatusError{Code: 409}, false},
		{"status 413", &StatusError{Code: 413}, false},
		{"wrapped status 500", fmt.Errorf("get: %w", &StatusError{Code: 500}), true},
		{"wrapped status 404", fmt.Errorf("get: %w", &StatusError{Code: 404}), false},
	} {
		if got := Retryable(tc.err); got != tc.retryable {
			t.Errorf("%s: Retryable = %v, want %v", tc.name, got, tc.retryable)
		}
	}
}

func TestNewStatusErrorRetryAfter(t *testing.T) {
	if d := NewStatusError(429, "3").RetryAfter; d != 3*time.Second {
		t.Errorf("Retry-After 3 parsed to %v", d)
	}
	for _, bad := range []string{"", "soon", "-1", "Wed, 21 Oct 2015 07:28:00 GMT"} {
		if d := NewStatusError(429, bad).RetryAfter; d != 0 {
			t.Errorf("Retry-After %q parsed to %v, want 0", bad, d)
		}
	}
}

// TestBackoffScheduleExact pins the exact jittered delay sequence of one
// seeded policy: the pre-jitter slots are the capped exponential
// (50ms, 100ms, 200ms, ... capped), and every jittered delay must land in
// [50%, 100%] of its slot. The sequence is asserted twice — deterministic
// streams must reproduce.
func TestBackoffScheduleExact(t *testing.T) {
	p := Policy{MaxAttempts: 5, BaseDelay: 50 * time.Millisecond, MaxDelay: 300 * time.Millisecond, Seed: 7}
	slots := p.Delays()
	wantSlots := []time.Duration{
		50 * time.Millisecond, 100 * time.Millisecond, 200 * time.Millisecond, 300 * time.Millisecond,
	}
	if len(slots) != len(wantSlots) {
		t.Fatalf("Delays() = %v, want %v", slots, wantSlots)
	}
	for i := range slots {
		if slots[i] != wantSlots[i] {
			t.Fatalf("Delays() = %v, want %v", slots, wantSlots)
		}
	}

	run := func() []time.Duration {
		r := NewRetryer(p, nil)
		rec := &recordingSleep{}
		r.SetSleep(rec.sleep)
		err := r.Do(context.Background(), func() error { return errors.New("transient") })
		if err == nil {
			t.Fatal("Do succeeded on an always-failing op")
		}
		return rec.delays
	}
	first := run()
	if len(first) != p.MaxAttempts-1 {
		t.Fatalf("%d delays for %d attempts", len(first), p.MaxAttempts)
	}
	for i, d := range first {
		lo, hi := wantSlots[i]/2, wantSlots[i]
		if d < lo || d > hi {
			t.Errorf("delay %d = %v outside jitter window [%v, %v]", i, d, lo, hi)
		}
	}
	second := run()
	for i := range first {
		if first[i] != second[i] {
			t.Errorf("seeded schedule not reproducible: run1[%d]=%v run2[%d]=%v", i, first[i], i, second[i])
		}
	}
}

func TestRetryAfterHintOverridesBackoff(t *testing.T) {
	r := NewRetryer(Policy{MaxAttempts: 2, BaseDelay: time.Millisecond}, nil)
	rec := &recordingSleep{}
	r.SetSleep(rec.sleep)
	r.Do(context.Background(), func() error { return NewStatusError(429, "2") })
	if len(rec.delays) != 1 || rec.delays[0] != 2*time.Second {
		t.Fatalf("delays %v, want [2s] from Retry-After", rec.delays)
	}
}

func TestDoStopsOnNonRetryable(t *testing.T) {
	r := NewRetryer(Policy{MaxAttempts: 5}, nil)
	rec := &recordingSleep{}
	r.SetSleep(rec.sleep)
	calls := 0
	err := r.Do(context.Background(), func() error { calls++; return &StatusError{Code: 404} })
	if calls != 1 || len(rec.delays) != 0 {
		t.Fatalf("non-retryable error retried: %d calls, %d sleeps", calls, len(rec.delays))
	}
	var se *StatusError
	if !errors.As(err, &se) || se.Code != 404 {
		t.Fatalf("err = %v", err)
	}
}

func TestDoSucceedsAfterRetries(t *testing.T) {
	r := NewRetryer(Policy{MaxAttempts: 4, BaseDelay: time.Millisecond}, nil)
	rec := &recordingSleep{}
	r.SetSleep(rec.sleep)
	calls := 0
	err := r.Do(context.Background(), func() error {
		calls++
		if calls < 3 {
			return &StatusError{Code: 503}
		}
		return nil
	})
	if err != nil || calls != 3 {
		t.Fatalf("err=%v calls=%d", err, calls)
	}
	st := r.Stats()
	if st.Calls != 1 || st.Retries != 2 || st.Exhausted != 0 {
		t.Fatalf("stats %+v", st)
	}
}

func TestDoHonorsContextCancel(t *testing.T) {
	r := NewRetryer(Policy{MaxAttempts: 100, BaseDelay: time.Millisecond}, nil)
	ctx, cancel := context.WithCancel(context.Background())
	calls := 0
	err := r.Do(ctx, func() error {
		calls++
		cancel()
		return errors.New("transient")
	})
	if err == nil || calls != 1 {
		t.Fatalf("cancelled Do: err=%v calls=%d", err, calls)
	}
}

func TestDoExhaustedCounts(t *testing.T) {
	r := NewRetryer(Policy{MaxAttempts: 3, BaseDelay: time.Millisecond}, nil)
	rec := &recordingSleep{}
	r.SetSleep(rec.sleep)
	r.Do(context.Background(), func() error { return errors.New("down") })
	if st := r.Stats(); st.Exhausted != 1 || st.Retries != 2 {
		t.Fatalf("stats %+v", st)
	}
}

// fakeClock drives breaker cooldowns without sleeping.
type fakeClock struct{ t time.Time }

func (c *fakeClock) now() time.Time          { return c.t }
func (c *fakeClock) advance(d time.Duration) { c.t = c.t.Add(d) }

func newTestBreaker(threshold int, cooldown time.Duration) (*Breaker, *fakeClock) {
	b := NewBreaker(threshold, cooldown)
	clk := &fakeClock{t: time.Unix(1_000_000, 0)}
	b.SetClock(clk.now)
	return b, clk
}

func TestBreakerOpensAfterThreshold(t *testing.T) {
	b, _ := newTestBreaker(3, time.Second)
	for i := 0; i < 2; i++ {
		if !b.Allow() {
			t.Fatal("closed breaker refused")
		}
		b.Failure()
		if b.State() != Closed {
			t.Fatalf("opened after %d failures, threshold 3", i+1)
		}
	}
	b.Allow()
	b.Failure()
	if b.State() != Open {
		t.Fatal("threshold reached but breaker still closed")
	}
	if b.Allow() {
		t.Fatal("open breaker admitted a call before cooldown")
	}
	if st := b.Stats(); st.Opens != 1 || st.Refused != 1 || st.State != "open" {
		t.Fatalf("stats %+v", st)
	}
}

func TestBreakerSuccessResetsFailureRun(t *testing.T) {
	b, _ := newTestBreaker(3, time.Second)
	b.Failure()
	b.Failure()
	b.Success()
	b.Failure()
	b.Failure()
	if b.State() != Closed {
		t.Fatal("non-consecutive failures opened the breaker")
	}
}

func TestBreakerHalfOpenProbeSuccessCloses(t *testing.T) {
	b, clk := newTestBreaker(1, time.Second)
	b.Failure()
	if b.State() != Open {
		t.Fatal("not open")
	}
	clk.advance(time.Second)
	if b.State() != HalfOpen {
		t.Fatal("cooldown elapsed but state not half-open")
	}
	// Exactly one probe is admitted.
	if !b.Allow() {
		t.Fatal("half-open refused the probe")
	}
	if b.Allow() {
		t.Fatal("half-open admitted a second concurrent call")
	}
	b.Success()
	if b.State() != Closed {
		t.Fatal("probe success did not close")
	}
	if !b.Allow() {
		t.Fatal("closed breaker refused")
	}
}

func TestBreakerHalfOpenProbeFailureReopens(t *testing.T) {
	b, clk := newTestBreaker(1, time.Second)
	b.Failure()
	clk.advance(time.Second)
	if !b.Allow() {
		t.Fatal("probe refused")
	}
	b.Failure()
	if b.State() != Open {
		t.Fatal("probe failure did not re-open")
	}
	if b.Allow() {
		t.Fatal("re-opened breaker admitted a call")
	}
	// A fresh cooldown applies.
	clk.advance(999 * time.Millisecond)
	if b.Allow() {
		t.Fatal("re-opened breaker admitted a call mid-cooldown")
	}
	clk.advance(time.Millisecond)
	if !b.Allow() {
		t.Fatal("second probe refused after fresh cooldown")
	}
	b.Success()
	if st := b.Stats(); st.Opens != 2 || st.State != "closed" {
		t.Fatalf("stats %+v", st)
	}
}

func TestRetryerShortCircuitsThroughOpenBreaker(t *testing.T) {
	b, _ := newTestBreaker(2, time.Minute)
	r := NewRetryer(Policy{MaxAttempts: 3, BaseDelay: time.Millisecond}, b)
	rec := &recordingSleep{}
	r.SetSleep(rec.sleep)

	calls := 0
	op := func() error { calls++; return errors.New("down") }
	// First Do: two real attempts open the breaker, the third is refused.
	err := r.Do(context.Background(), op)
	if !errors.Is(err, ErrCircuitOpen) {
		t.Fatalf("err = %v, want ErrCircuitOpen after breaker opens mid-loop", err)
	}
	if calls != 2 {
		t.Fatalf("%d attempts reached the op, want 2 (third short-circuited)", calls)
	}
	// Second Do: refused outright, op never runs.
	err = r.Do(context.Background(), op)
	if !errors.Is(err, ErrCircuitOpen) || calls != 2 {
		t.Fatalf("open breaker: err=%v calls=%d", err, calls)
	}
	if st := r.Stats(); st.ShortCircuits != 2 {
		t.Fatalf("stats %+v", st)
	}
}

func TestRetryerBreakerRecovery(t *testing.T) {
	b, clk := newTestBreaker(1, time.Second)
	r := NewRetryer(Policy{MaxAttempts: 1}, b)
	r.Do(context.Background(), func() error { return errors.New("down") })
	if b.State() != Open {
		t.Fatal("not open")
	}
	clk.advance(time.Second)
	if err := r.Do(context.Background(), func() error { return nil }); err != nil {
		t.Fatalf("half-open probe: %v", err)
	}
	if b.State() != Closed {
		t.Fatal("probe success did not close the breaker through the retryer")
	}
}

func TestJitterDecorrelatedBounds(t *testing.T) {
	base, cap := 100*time.Millisecond, time.Second
	j := NewJitter(base, cap, 42)
	prev := base
	for i := 0; i < 200; i++ {
		d := j.Next()
		hi := 3 * prev
		if hi > cap {
			hi = cap
		}
		if d < base || d > hi {
			t.Fatalf("draw %d = %v outside [%v, %v]", i, d, base, hi)
		}
		prev = d
	}
	j.Reset()
	if d := j.Next(); d > 3*base {
		t.Fatalf("post-Reset draw %v exceeds 3*base", d)
	}
}

func TestJitterDeterministicPerSeed(t *testing.T) {
	a, b := NewJitter(time.Millisecond, time.Second, 7), NewJitter(time.Millisecond, time.Second, 7)
	for i := 0; i < 50; i++ {
		if x, y := a.Next(), b.Next(); x != y {
			t.Fatalf("draw %d diverged: %v vs %v", i, x, y)
		}
	}
	c := NewJitter(time.Millisecond, time.Second, 8)
	same := true
	a.Reset()
	for i := 0; i < 50; i++ {
		if a.Next() != c.Next() {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical streams")
	}
}

func TestJitterDisabledWhenCapAtBase(t *testing.T) {
	j := NewJitter(50*time.Millisecond, 0, 1) // cap < base pins to base
	for i := 0; i < 10; i++ {
		if d := j.Next(); d != 50*time.Millisecond {
			t.Fatalf("draw %v with jitter disabled", d)
		}
	}
}
