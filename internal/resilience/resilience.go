// Package resilience is the failure-handling substrate of the cluster
// edges: a retry policy (capped exponential backoff with deterministic
// seeded jitter and retryable-error classification) and a circuit breaker
// (closed → open → half-open with a single probe), both on injectable
// clocks so every delay schedule and state transition is pinned by tests.
//
// The package encodes one decision table, shared by every HTTP edge of the
// distributed sweep fabric (internal/store/httpstore, internal/fabric,
// cmd/sweep -remote):
//
//   - Transport errors (connection refused, reset, per-op deadline) are
//     transient: the remote may be restarting, the packet may have been
//     lost. Retry with backoff.
//   - 5xx and 429 responses are transient: the remote is alive but
//     overloaded or mid-failure. Retry with backoff, honoring Retry-After
//     when the remote supplies one (load shedding in cmd/served does).
//   - Other 4xx responses are definitive: the request itself is wrong and
//     will be wrong again. Fail immediately.
//   - The caller's own context cancellation always wins: a retry loop
//     never outlives the operation it serves.
//
// Sustained failure flips the breaker open, converting each would-be call
// into an immediate ErrCircuitOpen — a dead coordinator costs microseconds
// per lookup instead of a transport timeout per lookup. After a cooldown
// the breaker admits exactly one probe (half-open); success closes it,
// failure re-opens it for another cooldown.
//
// Determinism: jitter draws from a seeded stream per call slot, never from
// global randomness, so tests pin exact backoff sequences and two runs of
// a seeded chaos scenario retry on identical schedules.
package resilience

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"net/http"
	"net/url"
	"strconv"
	"sync/atomic"
	"time"
)

// ErrCircuitOpen is returned (wrapped) by Retryer.Do when the breaker is
// open and the call was short-circuited without touching the remote.
var ErrCircuitOpen = errors.New("resilience: circuit open")

// StatusError is an HTTP response classified for retry: the status code
// decides retryability and RetryAfter carries the server's backpressure
// hint (from a Retry-After header, zero when absent).
type StatusError struct {
	Code       int
	RetryAfter time.Duration
}

func (e *StatusError) Error() string {
	return fmt.Sprintf("resilience: http status %d %s", e.Code, http.StatusText(e.Code))
}

// NewStatusError builds a StatusError from a response status and its
// Retry-After header value (seconds form only; HTTP-date forms are ignored
// — a missing hint just means default backoff).
func NewStatusError(code int, retryAfter string) *StatusError {
	e := &StatusError{Code: code}
	if retryAfter != "" {
		if secs, err := strconv.Atoi(retryAfter); err == nil && secs >= 0 {
			e.RetryAfter = time.Duration(secs) * time.Second
		}
	}
	return e
}

// Retryable reports whether err is worth retrying under the package's
// classification: transport errors yes, 5xx/429 yes, other HTTP statuses
// no, caller cancellation no.
func Retryable(err error) bool {
	if err == nil {
		return false
	}
	// A *per-attempt* deadline or cancellation arrives wrapped in a
	// url.Error by net/http: that is a transport failure of one attempt
	// (slow remote, lost packet) and retryable. It must be classified
	// before the bare context sentinels below — url.Error unwraps to them.
	var ue *url.Error
	if errors.As(err, &ue) {
		return true
	}
	// The caller gave up (or its deadline passed): retrying would race a
	// result nobody is waiting for. Do additionally checks the operation
	// context between attempts, so a caller cancellation mid-attempt stops
	// the loop even when the attempt error itself reads as transport.
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		return false
	}
	var se *StatusError
	if errors.As(err, &se) {
		return se.Code == http.StatusTooManyRequests || se.Code >= 500
	}
	// Everything else — dial errors, resets, truncated bodies, per-attempt
	// timeouts wrapped by the HTTP client — is transport-shaped: transient.
	return true
}

// retryAfterHint extracts the server's Retry-After duration from err, if
// any.
func retryAfterHint(err error) (time.Duration, bool) {
	var se *StatusError
	if errors.As(err, &se) && se.RetryAfter > 0 {
		return se.RetryAfter, true
	}
	return 0, false
}

// Policy parameterizes a retry loop. The zero value is usable and resolves
// to the documented defaults.
type Policy struct {
	// MaxAttempts is the total number of attempts, first try included
	// (default 4; 1 disables retries).
	MaxAttempts int
	// BaseDelay is the pre-jitter backoff after the first failure
	// (default 50ms).
	BaseDelay time.Duration
	// MaxDelay caps the pre-jitter exponential growth (default 2s).
	MaxDelay time.Duration
	// Multiplier is the exponential growth factor (default 2).
	Multiplier float64
	// Seed selects the deterministic jitter stream (default 1).
	Seed int64
}

func (p Policy) withDefaults() Policy {
	if p.MaxAttempts <= 0 {
		p.MaxAttempts = 4
	}
	if p.BaseDelay <= 0 {
		p.BaseDelay = 50 * time.Millisecond
	}
	if p.MaxDelay <= 0 {
		p.MaxDelay = 2 * time.Second
	}
	if p.Multiplier <= 1 {
		p.Multiplier = 2
	}
	if p.Seed == 0 {
		p.Seed = 1
	}
	return p
}

// Delays renders the policy's pre-jitter backoff schedule: the capped
// exponential delay after attempt 1, 2, ... MaxAttempts-1. Exposed so
// tests (and docs) can state the schedule in one place.
func (p Policy) Delays() []time.Duration {
	p = p.withDefaults()
	out := make([]time.Duration, 0, p.MaxAttempts-1)
	d := p.BaseDelay
	for i := 1; i < p.MaxAttempts; i++ {
		if d > p.MaxDelay {
			d = p.MaxDelay
		}
		out = append(out, d)
		d = time.Duration(float64(d) * p.Multiplier)
	}
	return out
}

// Stats snapshots a Retryer's counters.
type Stats struct {
	Calls         int64 `json:"calls"`          // Do invocations
	Retries       int64 `json:"retries"`        // attempts beyond the first
	Exhausted     int64 `json:"exhausted"`      // Do calls that failed every attempt
	ShortCircuits int64 `json:"short_circuits"` // attempts refused by an open breaker
}

// Retryer executes operations under a Policy, optionally guarded by a
// Breaker. All methods are safe for concurrent use; construct with
// NewRetryer.
type Retryer struct {
	policy Policy
	// Breaker, when non-nil, is consulted before every attempt and told
	// about every attempt's outcome; an open breaker short-circuits the
	// whole Do call with ErrCircuitOpen.
	breaker *Breaker
	// sleep is the injectable delay primitive (tests replace it to pin
	// schedules without waiting them out).
	sleep func(ctx context.Context, d time.Duration)

	calls         atomic.Int64
	retries       atomic.Int64
	exhausted     atomic.Int64
	shortCircuits atomic.Int64
}

// NewRetryer builds a Retryer from a policy and an optional breaker.
func NewRetryer(p Policy, b *Breaker) *Retryer {
	return &Retryer{policy: p.withDefaults(), breaker: b, sleep: sleepCtx}
}

// SetSleep replaces the delay primitive (test hook). Passing nil restores
// the real clock.
func (r *Retryer) SetSleep(sleep func(ctx context.Context, d time.Duration)) {
	if sleep == nil {
		sleep = sleepCtx
	}
	r.sleep = sleep
}

// Breaker returns the guarding breaker (nil when none).
func (r *Retryer) Breaker() *Breaker { return r.breaker }

// Stats snapshots the retry counters.
func (r *Retryer) Stats() Stats {
	return Stats{
		Calls:         r.calls.Load(),
		Retries:       r.retries.Load(),
		Exhausted:     r.exhausted.Load(),
		ShortCircuits: r.shortCircuits.Load(),
	}
}

func sleepCtx(ctx context.Context, d time.Duration) {
	if d <= 0 {
		return
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
	case <-t.C:
	}
}

// Do runs op under the policy: up to MaxAttempts tries, backing off
// between failures on the capped exponential schedule with seeded jitter
// (each delay is scaled into [50%, 100%] of its slot), preferring the
// server's Retry-After hint when one arrived. It returns nil on the first
// success, the last error once attempts are exhausted or the error is not
// retryable, and a wrapped ErrCircuitOpen immediately when the breaker is
// open. ctx cancellation stops the loop between attempts.
func (r *Retryer) Do(ctx context.Context, op func() error) error {
	call := r.calls.Add(1)
	// One deterministic jitter stream per Do call: the sequence depends on
	// the policy seed and the call slot, never on timing.
	rng := rand.New(rand.NewSource(r.policy.Seed + call))
	var err error
	for attempt := 0; ; attempt++ {
		if r.breaker != nil && !r.breaker.Allow() {
			r.shortCircuits.Add(1)
			if err != nil {
				return fmt.Errorf("%w (last error: %v)", ErrCircuitOpen, err)
			}
			return ErrCircuitOpen
		}
		err = op()
		if r.breaker != nil {
			// Only transient errors count against the breaker: a definitive
			// 4xx proves the remote is alive and answering — it is the
			// request that is wrong, not the circuit.
			if err != nil && Retryable(err) {
				r.breaker.Failure()
			} else {
				r.breaker.Success()
			}
		}
		if err == nil {
			return nil
		}
		if !Retryable(err) || attempt+1 >= r.policy.MaxAttempts {
			if Retryable(err) {
				r.exhausted.Add(1)
			}
			return err
		}
		if ctx.Err() != nil {
			return err
		}
		delay := r.backoff(attempt, rng)
		if hint, ok := retryAfterHint(err); ok {
			delay = hint
		}
		r.retries.Add(1)
		r.sleep(ctx, delay)
		if ctx.Err() != nil {
			return err
		}
	}
}

// backoff computes the jittered delay after the given zero-based failed
// attempt: the capped exponential slot scaled by a seeded factor in
// [0.5, 1.0) — enough spread to desynchronize a fleet, enough floor to
// keep the schedule meaningfully exponential.
func (r *Retryer) backoff(attempt int, rng *rand.Rand) time.Duration {
	d := float64(r.policy.BaseDelay)
	for i := 0; i < attempt; i++ {
		d *= r.policy.Multiplier
		if d >= float64(r.policy.MaxDelay) {
			d = float64(r.policy.MaxDelay)
			break
		}
	}
	if d > float64(r.policy.MaxDelay) {
		d = float64(r.policy.MaxDelay)
	}
	return time.Duration(d * (0.5 + 0.5*rng.Float64()))
}
