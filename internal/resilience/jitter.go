package resilience

import (
	"math/rand"
	"sync"
	"time"
)

// Jitter produces decorrelated-jitter sleep intervals for polling loops
// (the AWS "decorrelated jitter" schedule): each interval is drawn
// uniformly from [base, 3*previous], capped. A fleet of workers polling a
// coordinator on the same nominal interval desynchronizes within a few
// draws instead of thundering in lockstep, and sustained idleness backs
// off toward the cap on its own.
//
// The stream is seeded, so a worker's poll schedule is a deterministic
// function of (seed, draw index). All methods are safe for concurrent use.
type Jitter struct {
	mu   sync.Mutex
	base time.Duration
	cap  time.Duration
	prev time.Duration
	rng  *rand.Rand
}

// NewJitter builds a decorrelated-jitter source: intervals start at base
// and never exceed cap (cap <= base pins every draw to base — jitter
// disabled). Seed selects the deterministic stream.
func NewJitter(base, cap time.Duration, seed int64) *Jitter {
	if base <= 0 {
		base = 100 * time.Millisecond
	}
	if cap < base {
		cap = base
	}
	return &Jitter{base: base, cap: cap, prev: base, rng: rand.New(rand.NewSource(seed))}
}

// Next draws the next sleep interval.
func (j *Jitter) Next() time.Duration {
	j.mu.Lock()
	defer j.mu.Unlock()
	hi := 3 * j.prev
	if hi > j.cap {
		hi = j.cap
	}
	d := j.base
	if hi > j.base {
		d += time.Duration(j.rng.Int63n(int64(hi - j.base + 1)))
	}
	j.prev = d
	return d
}

// Reset drops the interval back to base — call it after useful work so the
// next idle wait starts short again.
func (j *Jitter) Reset() {
	j.mu.Lock()
	j.prev = j.base
	j.mu.Unlock()
}
