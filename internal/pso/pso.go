// Package pso implements the particle swarm optimization technique the
// paper uses for pole placement / controller-gain search (Section III,
// citing Sedighizadeh & Masehian's PSO taxonomy).
//
// It is a standard global-best PSO with inertia weight decay, velocity
// clamping, and reflecting box bounds. Runs are deterministic for a given
// seed; objective evaluations may be spread over multiple goroutines
// without affecting the result.
package pso

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"runtime"
	"sync"
)

// Problem describes a box-constrained minimization problem.
type Problem struct {
	Dim       int
	Lower     []float64 // len Dim
	Upper     []float64 // len Dim
	Objective func(x []float64) float64
}

// Validate checks the problem definition.
func (p Problem) Validate() error {
	if p.Dim <= 0 {
		return fmt.Errorf("pso: dimension %d must be positive", p.Dim)
	}
	if len(p.Lower) != p.Dim || len(p.Upper) != p.Dim {
		return fmt.Errorf("pso: bounds length mismatch (dim %d, lower %d, upper %d)", p.Dim, len(p.Lower), len(p.Upper))
	}
	for i := range p.Lower {
		if !(p.Lower[i] < p.Upper[i]) {
			return fmt.Errorf("pso: bounds [%g, %g] invalid at dimension %d", p.Lower[i], p.Upper[i], i)
		}
	}
	if p.Objective == nil {
		return errors.New("pso: nil objective")
	}
	return nil
}

// Options tunes the swarm. Zero values select sensible defaults.
type Options struct {
	Particles    int     // swarm size (default 30)
	Iterations   int     // iteration budget (default 100)
	InertiaStart float64 // w at iteration 0 (default 0.9)
	InertiaEnd   float64 // w at the final iteration (default 0.4)
	Cognitive    float64 // c1 (default 1.8)
	Social       float64 // c2 (default 1.8)
	Seed         int64   // RNG seed (default 1)
	Workers      int     // parallel objective evaluations (default GOMAXPROCS)
	Seeds        [][]float64
	// Seeds optionally injects known-good starting positions (e.g. warm
	// starts from an analytic design); each must have length Dim and is
	// clamped to the bounds.
	StallLimit int // stop early after this many non-improving iterations (default: no early stop)
}

func (o Options) withDefaults() Options {
	if o.Particles <= 0 {
		o.Particles = 30
	}
	if o.Iterations <= 0 {
		o.Iterations = 100
	}
	if o.InertiaStart == 0 {
		o.InertiaStart = 0.9
	}
	if o.InertiaEnd == 0 {
		o.InertiaEnd = 0.4
	}
	if o.Cognitive == 0 {
		o.Cognitive = 1.8
	}
	if o.Social == 0 {
		o.Social = 1.8
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	if o.Workers <= 0 {
		o.Workers = runtime.GOMAXPROCS(0)
	}
	return o
}

// Result is the outcome of a Minimize run.
type Result struct {
	X           []float64 // best position found
	Value       float64   // objective at X
	Iterations  int       // iterations performed
	Evaluations int       // objective evaluations performed
}

// Minimize runs PSO on the problem and returns the best point found.
func Minimize(p Problem, o Options) (*Result, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	o = o.withDefaults()
	rng := rand.New(rand.NewSource(o.Seed))

	n, d := o.Particles, p.Dim
	pos := make([][]float64, n)
	vel := make([][]float64, n)
	pbest := make([][]float64, n)
	pbestVal := make([]float64, n)
	vmax := make([]float64, d)
	for j := 0; j < d; j++ {
		vmax[j] = 0.5 * (p.Upper[j] - p.Lower[j])
	}
	for i := 0; i < n; i++ {
		pos[i] = make([]float64, d)
		vel[i] = make([]float64, d)
		for j := 0; j < d; j++ {
			pos[i][j] = p.Lower[j] + rng.Float64()*(p.Upper[j]-p.Lower[j])
			vel[i][j] = (2*rng.Float64() - 1) * vmax[j] * 0.1
		}
	}
	// Overwrite the first particles with the provided seeds.
	for i, s := range o.Seeds {
		if i >= n {
			break
		}
		if len(s) != d {
			return nil, fmt.Errorf("pso: seed %d has dimension %d, want %d", i, len(s), d)
		}
		for j := 0; j < d; j++ {
			pos[i][j] = clamp(s[j], p.Lower[j], p.Upper[j])
		}
	}

	evals := 0
	values := make([]float64, n)
	evaluate := func() {
		var wg sync.WaitGroup
		sem := make(chan struct{}, o.Workers)
		for i := 0; i < n; i++ {
			wg.Add(1)
			sem <- struct{}{}
			go func(i int) {
				defer wg.Done()
				defer func() { <-sem }()
				values[i] = p.Objective(pos[i])
			}(i)
		}
		wg.Wait()
		evals += n
	}

	evaluate()
	gbest := make([]float64, d)
	gbestVal := math.Inf(1)
	for i := 0; i < n; i++ {
		pbest[i] = append([]float64(nil), pos[i]...)
		pbestVal[i] = values[i]
		if values[i] < gbestVal {
			gbestVal = values[i]
			copy(gbest, pos[i])
		}
	}

	stall := 0
	iters := 0
	for it := 0; it < o.Iterations; it++ {
		iters = it + 1
		w := o.InertiaStart + (o.InertiaEnd-o.InertiaStart)*float64(it)/float64(max(1, o.Iterations-1))
		for i := 0; i < n; i++ {
			for j := 0; j < d; j++ {
				r1, r2 := rng.Float64(), rng.Float64()
				v := w*vel[i][j] +
					o.Cognitive*r1*(pbest[i][j]-pos[i][j]) +
					o.Social*r2*(gbest[j]-pos[i][j])
				v = clamp(v, -vmax[j], vmax[j])
				x := pos[i][j] + v
				// Reflect at the bounds.
				if x < p.Lower[j] {
					x = p.Lower[j] + (p.Lower[j] - x)
					v = -v
				}
				if x > p.Upper[j] {
					x = p.Upper[j] - (x - p.Upper[j])
					v = -v
				}
				pos[i][j] = clamp(x, p.Lower[j], p.Upper[j])
				vel[i][j] = v
			}
		}
		evaluate()
		improved := false
		for i := 0; i < n; i++ {
			if values[i] < pbestVal[i] {
				pbestVal[i] = values[i]
				copy(pbest[i], pos[i])
			}
			if values[i] < gbestVal {
				gbestVal = values[i]
				copy(gbest, pos[i])
				improved = true
			}
		}
		if improved {
			stall = 0
		} else {
			stall++
			if o.StallLimit > 0 && stall >= o.StallLimit {
				break
			}
		}
	}
	return &Result{X: gbest, Value: gbestVal, Iterations: iters, Evaluations: evals}, nil
}

func clamp(x, lo, hi float64) float64 {
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
