// Package pso implements the particle swarm optimization technique the
// paper uses for pole placement / controller-gain search (Section III,
// citing Sedighizadeh & Masehian's PSO taxonomy).
//
// It is a standard global-best PSO with inertia weight decay, velocity
// clamping, and reflecting box bounds. Runs are deterministic for a given
// seed; objective evaluations may be spread over multiple goroutines
// without affecting the result: particles are claimed from an atomic
// counter, every value lands in its index-addressed slot, and the
// reduction walks the slots in index order, so Minimize is bit-identical
// for any worker count.
//
// Parallel evaluation runs on a persistent worker pool created once per
// Minimize call: workers are signalled per evaluation round instead of
// being spawned per round (the pre-pool implementation created
// Particles × (Iterations+1) goroutines and a semaphore channel per round),
// and each holds its own objective instance (Problem.NewObjective) so
// per-worker scratch — compiled simulation plans' buffers, design
// workspaces — stays cache-hot across the particles a worker claims. The
// steady-state iteration performs zero heap allocations (pinned by
// TestMinimizeSteadyStateAllocs). Workers draw run permits from the
// process-wide concurrency governor (internal/parallel): a worker that gets
// no token in a round simply sits it out while the caller's goroutine
// evaluates inline, so a loaded box degrades to serial instead of
// oversubscribing.
package pso

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"runtime"
	"sync/atomic"

	"repro/internal/parallel"
)

// Problem describes a box-constrained minimization problem.
type Problem struct {
	Dim       int
	Lower     []float64 // len Dim
	Upper     []float64 // len Dim
	Objective func(x []float64) float64
	// NewObjective, when non-nil, supplies an independent objective
	// instance per pool worker (typically a closure over private evaluation
	// scratch). Every instance must compute exactly the same function as
	// Objective; Minimize calls it once per worker it starts and uses
	// Objective itself on the calling goroutine.
	NewObjective func() func(x []float64) float64
}

// Validate checks the problem definition.
func (p Problem) Validate() error {
	if p.Dim <= 0 {
		return fmt.Errorf("pso: dimension %d must be positive", p.Dim)
	}
	if len(p.Lower) != p.Dim || len(p.Upper) != p.Dim {
		return fmt.Errorf("pso: bounds length mismatch (dim %d, lower %d, upper %d)", p.Dim, len(p.Lower), len(p.Upper))
	}
	for i := range p.Lower {
		if !(p.Lower[i] < p.Upper[i]) {
			return fmt.Errorf("pso: bounds [%g, %g] invalid at dimension %d", p.Lower[i], p.Upper[i], i)
		}
	}
	if p.Objective == nil {
		return errors.New("pso: nil objective")
	}
	return nil
}

// Options tunes the swarm. Zero values select sensible defaults.
type Options struct {
	Particles    int     // swarm size (default 30)
	Iterations   int     // iteration budget (default 100)
	InertiaStart float64 // w at iteration 0 (default 0.9)
	InertiaEnd   float64 // w at the final iteration (default 0.4)
	Cognitive    float64 // c1 (default 1.8)
	Social       float64 // c2 (default 1.8)
	Seed         int64   // RNG seed (default 1)
	Workers      int     // parallel objective evaluations (default GOMAXPROCS)
	Seeds        [][]float64
	// Seeds optionally injects known-good starting positions (e.g. warm
	// starts from an analytic design); each must have length Dim and is
	// clamped to the bounds.
	StallLimit int // stop early after this many non-improving iterations (default: no early stop)
}

func (o Options) withDefaults() Options {
	if o.Particles <= 0 {
		o.Particles = 30
	}
	if o.Iterations <= 0 {
		o.Iterations = 100
	}
	if o.InertiaStart == 0 {
		o.InertiaStart = 0.9
	}
	if o.InertiaEnd == 0 {
		o.InertiaEnd = 0.4
	}
	if o.Cognitive == 0 {
		o.Cognitive = 1.8
	}
	if o.Social == 0 {
		o.Social = 1.8
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	if o.Workers <= 0 {
		o.Workers = runtime.GOMAXPROCS(0)
	}
	return o
}

// Result is the outcome of a Minimize run.
type Result struct {
	X           []float64 // best position found
	Value       float64   // objective at X
	Iterations  int       // iterations performed
	Evaluations int       // objective evaluations performed
}

// Minimize runs PSO on the problem and returns the best point found.
func Minimize(p Problem, o Options) (*Result, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	o = o.withDefaults()
	rng := rand.New(rand.NewSource(o.Seed))

	n, d := o.Particles, p.Dim
	pos := make([][]float64, n)
	vel := make([][]float64, n)
	pbest := make([][]float64, n)
	pbestVal := make([]float64, n)
	vmax := make([]float64, d)
	for j := 0; j < d; j++ {
		vmax[j] = 0.5 * (p.Upper[j] - p.Lower[j])
	}
	for i := 0; i < n; i++ {
		pos[i] = make([]float64, d)
		vel[i] = make([]float64, d)
		for j := 0; j < d; j++ {
			pos[i][j] = p.Lower[j] + rng.Float64()*(p.Upper[j]-p.Lower[j])
			vel[i][j] = (2*rng.Float64() - 1) * vmax[j] * 0.1
		}
	}
	// Overwrite the first particles with the provided seeds.
	for i, s := range o.Seeds {
		if i >= n {
			break
		}
		if len(s) != d {
			return nil, fmt.Errorf("pso: seed %d has dimension %d, want %d", i, len(s), d)
		}
		for j := 0; j < d; j++ {
			pos[i][j] = clamp(s[j], p.Lower[j], p.Upper[j])
		}
	}

	evals := 0
	values := make([]float64, n)
	pool := newEvalPool(p, o, pos, values)
	defer pool.stop()
	evaluate := func() {
		pool.run()
		evals += n
	}

	evaluate()
	gbest := make([]float64, d)
	gbestVal := math.Inf(1)
	for i := 0; i < n; i++ {
		pbest[i] = append([]float64(nil), pos[i]...)
		pbestVal[i] = values[i]
		if values[i] < gbestVal {
			gbestVal = values[i]
			copy(gbest, pos[i])
		}
	}

	stall := 0
	iters := 0
	for it := 0; it < o.Iterations; it++ {
		iters = it + 1
		w := o.InertiaStart + (o.InertiaEnd-o.InertiaStart)*float64(it)/float64(max(1, o.Iterations-1))
		for i := 0; i < n; i++ {
			for j := 0; j < d; j++ {
				r1, r2 := rng.Float64(), rng.Float64()
				v := w*vel[i][j] +
					o.Cognitive*r1*(pbest[i][j]-pos[i][j]) +
					o.Social*r2*(gbest[j]-pos[i][j])
				v = clamp(v, -vmax[j], vmax[j])
				x := pos[i][j] + v
				// Reflect at the bounds.
				if x < p.Lower[j] {
					x = p.Lower[j] + (p.Lower[j] - x)
					v = -v
				}
				if x > p.Upper[j] {
					x = p.Upper[j] - (x - p.Upper[j])
					v = -v
				}
				pos[i][j] = clamp(x, p.Lower[j], p.Upper[j])
				vel[i][j] = v
			}
		}
		evaluate()
		improved := false
		for i := 0; i < n; i++ {
			if values[i] < pbestVal[i] {
				pbestVal[i] = values[i]
				copy(pbest[i], pos[i])
			}
			if values[i] < gbestVal {
				gbestVal = values[i]
				copy(gbest, pos[i])
				improved = true
			}
		}
		if improved {
			stall = 0
		} else {
			stall++
			if o.StallLimit > 0 && stall >= o.StallLimit {
				break
			}
		}
	}
	return &Result{X: gbest, Value: gbestVal, Iterations: iters, Evaluations: evals}, nil
}

func clamp(x, lo, hi float64) float64 {
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}

// evalPool is the persistent evaluation worker pool of one Minimize run.
// The calling goroutine always participates in every round, so a round
// completes even when the governor grants no tokens; helpers are signalled
// over reused channels (one token-free struct{} send per helper per round —
// the steady-state round allocates nothing).
type evalPool struct {
	n       int
	pos     [][]float64
	values  []float64
	obj     func([]float64) float64 // the caller's instance
	next    atomic.Int64
	helpers int
	start   chan struct{}
	done    chan struct{}
	exec    *parallel.Executor
}

func newEvalPool(p Problem, o Options, pos [][]float64, values []float64) *evalPool {
	ep := &evalPool{n: len(pos), pos: pos, values: values, obj: p.Objective, exec: parallel.Default()}
	workers := o.Workers
	if workers > ep.n {
		workers = ep.n
	}
	if workers <= 1 {
		return ep // serial: no helper goroutines at all
	}
	ep.helpers = workers - 1
	ep.start = make(chan struct{}, ep.helpers)
	ep.done = make(chan struct{}, ep.helpers)
	for w := 0; w < ep.helpers; w++ {
		go func() {
			// The objective instance (and any scratch it closes over) is
			// built lazily on the first round this helper actually joins:
			// on a token-saturated box a helper that only ever sits rounds
			// out costs one idle goroutine and nothing else.
			var obj func([]float64) float64
			for range ep.start {
				// One governor token per participating helper per round:
				// with none to spare this round runs on the caller alone.
				if ep.exec.TryAcquire(1) {
					if obj == nil {
						if p.NewObjective != nil {
							obj = p.NewObjective()
						} else {
							obj = p.Objective
						}
					}
					ep.work(obj)
					ep.exec.Release(1)
				}
				ep.done <- struct{}{}
			}
		}()
	}
	return ep
}

// work claims particles until the round's counter is exhausted.
func (ep *evalPool) work(obj func([]float64) float64) {
	for {
		i := int(ep.next.Add(1)) - 1
		if i >= ep.n {
			return
		}
		ep.values[i] = obj(ep.pos[i])
	}
}

// run evaluates all particles of one round into the values slots.
func (ep *evalPool) run() {
	ep.next.Store(0)
	for w := 0; w < ep.helpers; w++ {
		ep.start <- struct{}{}
	}
	ep.work(ep.obj)
	for w := 0; w < ep.helpers; w++ {
		<-ep.done
	}
}

// stop terminates the helper goroutines.
func (ep *evalPool) stop() {
	if ep.start != nil {
		close(ep.start)
	}
}
