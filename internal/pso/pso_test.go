package pso

import (
	"math"
	"testing"
)

func sphere(x []float64) float64 {
	s := 0.0
	for _, v := range x {
		s += v * v
	}
	return s
}

func rosenbrock(x []float64) float64 {
	s := 0.0
	for i := 0; i+1 < len(x); i++ {
		a := x[i+1] - x[i]*x[i]
		b := 1 - x[i]
		s += 100*a*a + b*b
	}
	return s
}

func bounds(d int, lo, hi float64) ([]float64, []float64) {
	l := make([]float64, d)
	u := make([]float64, d)
	for i := range l {
		l[i], u[i] = lo, hi
	}
	return l, u
}

func TestValidate(t *testing.T) {
	l, u := bounds(2, -1, 1)
	good := Problem{Dim: 2, Lower: l, Upper: u, Objective: sphere}
	if err := good.Validate(); err != nil {
		t.Errorf("good problem rejected: %v", err)
	}
	cases := []Problem{
		{Dim: 0, Lower: l, Upper: u, Objective: sphere},
		{Dim: 3, Lower: l, Upper: u, Objective: sphere},
		{Dim: 2, Lower: u, Upper: l, Objective: sphere},
		{Dim: 2, Lower: l, Upper: u},
	}
	for i, c := range cases {
		if c.Validate() == nil {
			t.Errorf("case %d should fail validation", i)
		}
	}
}

func TestMinimizeSphere(t *testing.T) {
	l, u := bounds(4, -5, 5)
	res, err := Minimize(Problem{Dim: 4, Lower: l, Upper: u, Objective: sphere}, Options{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if res.Value > 1e-4 {
		t.Errorf("sphere minimum %g not reached: x=%v", res.Value, res.X)
	}
}

func TestMinimizeRosenbrock(t *testing.T) {
	l, u := bounds(2, -2, 2)
	res, err := Minimize(Problem{Dim: 2, Lower: l, Upper: u, Objective: rosenbrock},
		Options{Particles: 60, Iterations: 300, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if res.Value > 1e-2 {
		t.Errorf("rosenbrock value %g too high: x=%v", res.Value, res.X)
	}
}

func TestDeterministicForSeed(t *testing.T) {
	l, u := bounds(3, -3, 3)
	p := Problem{Dim: 3, Lower: l, Upper: u, Objective: sphere}
	r1, err := Minimize(p, Options{Seed: 42, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Minimize(p, Options{Seed: 42, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if r1.Value != r2.Value {
		t.Errorf("same seed, different results: %g vs %g", r1.Value, r2.Value)
	}
	for i := range r1.X {
		if r1.X[i] != r2.X[i] {
			t.Errorf("position %d differs: %g vs %g", i, r1.X[i], r2.X[i])
		}
	}
}

func TestSeedsWarmStart(t *testing.T) {
	// With an exact seed at the optimum, the result can never be worse.
	l, u := bounds(2, -10, 10)
	p := Problem{Dim: 2, Lower: l, Upper: u, Objective: func(x []float64) float64 {
		return sphere([]float64{x[0] - 3, x[1] + 2})
	}}
	res, err := Minimize(p, Options{Seeds: [][]float64{{3, -2}}, Iterations: 5, Particles: 5, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	if res.Value > 1e-12 {
		t.Errorf("seeded optimum lost: %g at %v", res.Value, res.X)
	}
}

func TestSeedDimensionMismatch(t *testing.T) {
	l, u := bounds(2, -1, 1)
	_, err := Minimize(Problem{Dim: 2, Lower: l, Upper: u, Objective: sphere},
		Options{Seeds: [][]float64{{1}}})
	if err == nil {
		t.Error("bad seed dimension accepted")
	}
}

func TestBoundsRespected(t *testing.T) {
	l, u := bounds(2, 1, 2) // optimum of sphere is outside the box
	res, err := Minimize(Problem{Dim: 2, Lower: l, Upper: u, Objective: sphere}, Options{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	for i, x := range res.X {
		if x < l[i]-1e-12 || x > u[i]+1e-12 {
			t.Errorf("x[%d] = %g escapes [%g,%g]", i, x, l[i], u[i])
		}
	}
	// Optimum on the corner (1,1).
	if math.Abs(res.X[0]-1) > 1e-3 || math.Abs(res.X[1]-1) > 1e-3 {
		t.Errorf("constrained optimum not at corner: %v", res.X)
	}
}

func TestStallLimitStopsEarly(t *testing.T) {
	l, u := bounds(2, -1, 1)
	res, err := Minimize(Problem{Dim: 2, Lower: l, Upper: u, Objective: func(x []float64) float64 { return 1 }},
		Options{Iterations: 500, StallLimit: 3, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.Iterations >= 500 {
		t.Errorf("stall limit ignored: ran %d iterations", res.Iterations)
	}
}

func TestEvaluationCount(t *testing.T) {
	l, u := bounds(1, -1, 1)
	res, err := Minimize(Problem{Dim: 1, Lower: l, Upper: u, Objective: sphere},
		Options{Particles: 10, Iterations: 7, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.Evaluations != 10*(7+1) {
		t.Errorf("evaluations = %d, want 80", res.Evaluations)
	}
}
