package pso

import (
	"math"
	"sync/atomic"
	"testing"

	"repro/internal/race"
)

func sphereProblem(dim int) Problem {
	lower := make([]float64, dim)
	upper := make([]float64, dim)
	for i := range lower {
		lower[i] = -5
		upper[i] = 5
	}
	return Problem{
		Dim: dim, Lower: lower, Upper: upper,
		Objective: func(x []float64) float64 {
			s := 0.0
			for _, v := range x {
				s += v * v
			}
			return s
		},
	}
}

// TestMinimizeWorkerCountBitIdentical is the index-ordered-reduction
// contract: any worker count (serial path, pool path, pool wider than the
// governor) produces the same Result bit for bit.
func TestMinimizeWorkerCountBitIdentical(t *testing.T) {
	p := sphereProblem(4)
	base, err := Minimize(p, Options{Seed: 9, Particles: 12, Iterations: 30, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 4, 64} {
		got, err := Minimize(p, Options{Seed: 9, Particles: 12, Iterations: 30, Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		if got.Value != base.Value || got.Iterations != base.Iterations || got.Evaluations != base.Evaluations {
			t.Fatalf("workers=%d: result %+v differs from serial %+v", workers, got, base)
		}
		for i := range base.X {
			if math.Float64bits(got.X[i]) != math.Float64bits(base.X[i]) {
				t.Fatalf("workers=%d: X[%d] = %x, serial %x", workers, i, got.X[i], base.X[i])
			}
		}
	}
}

// TestMinimizeNewObjectiveInstances checks that pool workers use their own
// objective instances and still reproduce the shared-objective result.
func TestMinimizeNewObjectiveInstances(t *testing.T) {
	p := sphereProblem(3)
	var instances atomic.Int64
	p.NewObjective = func() func([]float64) float64 {
		instances.Add(1)
		scratch := make([]float64, 3) // private per-instance state
		return func(x []float64) float64 {
			copy(scratch, x)
			s := 0.0
			for _, v := range scratch {
				s += v * v
			}
			return s
		}
	}
	base, err := Minimize(sphereProblem(3), Options{Seed: 5, Particles: 10, Iterations: 20, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	got, err := Minimize(p, Options{Seed: 5, Particles: 10, Iterations: 20, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if got.Value != base.Value {
		t.Fatalf("NewObjective run value %v, reference %v", got.Value, base.Value)
	}
	for i := range base.X {
		if math.Float64bits(got.X[i]) != math.Float64bits(base.X[i]) {
			t.Fatalf("X[%d] = %x, reference %x", i, got.X[i], base.X[i])
		}
	}
}

// minimizeAllocs measures the total heap allocations of one Minimize call.
func minimizeAllocs(t *testing.T, p Problem, o Options) float64 {
	t.Helper()
	return testing.AllocsPerRun(3, func() {
		if _, err := Minimize(p, o); err != nil {
			t.Fatal(err)
		}
	})
}

// TestMinimizeSteadyStateAllocs pins the pool's zero-allocation iteration:
// growing the iteration budget by 100 must not grow the allocation count at
// all — setup allocates, the steady state does not. StallLimit is defeated
// by an objective the swarm keeps improving slowly enough... instead the
// sphere converges; use a large StallLimit default (0 = no early stop) so
// all iterations run.
func TestMinimizeSteadyStateAllocs(t *testing.T) {
	if race.Enabled {
		t.Skip("race detector instrumentation allocates")
	}
	p := sphereProblem(4)
	for _, workers := range []int{1, 2} {
		short := minimizeAllocs(t, p, Options{Seed: 3, Particles: 8, Iterations: 10, Workers: workers})
		long := minimizeAllocs(t, p, Options{Seed: 3, Particles: 8, Iterations: 110, Workers: workers})
		if delta := long - short; delta != 0 {
			t.Errorf("workers=%d: %g extra allocs over 100 extra iterations (want 0)", workers, delta)
		}
	}
}
