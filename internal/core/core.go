// Package core is the paper's two-stage co-design framework:
//
//	Stage 1 (Section III): for a given schedule, derive control timing from
//	cache-aware WCETs and design a holistic controller per application that
//	maximizes its control performance under the constraints of Section II.
//
//	Stage 2 (Section IV): search the schedule space (m1, ..., mn) for the
//	schedule maximizing the weighted overall control performance
//	P_all = sum_i w_i (1 - s_i / s_i^max).
//
// A Framework owns the platform model, the per-application WCET analysis
// results, and deterministic evaluation of schedules; the search package
// drives it through EvalFunc.
package core

import (
	"fmt"
	"hash/fnv"
	"math"
	"sync"

	"repro/internal/apps"
	"repro/internal/ctrl"
	"repro/internal/engine/evalcache"
	"repro/internal/sched"
	"repro/internal/search"
	"repro/internal/wcet"
)

// Framework binds applications to a platform and evaluates schedules.
type Framework struct {
	Apps     []apps.App
	Platform wcet.Platform
	// DesignOpt is the per-application design budget template; the PSO
	// seed is overridden per (schedule, app) for determinism.
	DesignOpt ctrl.DesignOptions
	// ReportDtMax, when positive, re-evaluates the winning design of every
	// app with this (finer) dense output resolution for reporting. The
	// horizon and every sampling instant stay identical to the design
	// evaluation, so the reported settling matches the designed one; only
	// the continuous trace for figures gains resolution.
	ReportDtMax float64

	Timings     []sched.AppTiming
	WCETResults []*wcet.Result

	// cache memoizes full schedule evaluations through the shared sharded
	// cache layer (internal/engine/evalcache), so concurrent searches and
	// sweeps coalesce duplicate evaluations of the same schedule.
	cache *evalcache.Cache[*ScheduleEval]
}

// New runs the WCET analysis of every application on the platform and
// returns a ready-to-evaluate framework.
func New(applications []apps.App, plat wcet.Platform, designOpt ctrl.DesignOptions) (*Framework, error) {
	if len(applications) == 0 {
		return nil, fmt.Errorf("core: no applications")
	}
	ts, rs, err := apps.Timings(applications, plat)
	if err != nil {
		return nil, err
	}
	f := &Framework{
		Apps:        applications,
		Platform:    plat,
		DesignOpt:   designOpt,
		Timings:     ts,
		WCETResults: rs,
	}
	f.cache = evalcache.NewCache(0, f.evaluate)
	return f, nil
}

// AppResult is the stage-1 outcome for one application under a schedule.
type AppResult struct {
	Name        string
	Timing      sched.AppSchedule
	Design      *ctrl.Design
	Performance float64 // P_i = 1 - s_i/s0_i
}

// ScheduleEval is the full evaluation of one schedule.
type ScheduleEval struct {
	Schedule     sched.Schedule
	Apps         []AppResult
	Pall         float64 // Eq. (2)
	Feasible     bool    // constraints (3) and (4) plus design feasibility
	IdleFeasible bool
}

// EvaluateSchedule designs holistic controllers for every application under
// schedule s and aggregates the overall control performance. Results are
// memoized; evaluation is deterministic for a given framework.
func (f *Framework) EvaluateSchedule(s sched.Schedule) (*ScheduleEval, error) {
	ev, _, err := f.cache.Get(s)
	return ev, err
}

func (f *Framework) evaluate(s sched.Schedule) (*ScheduleEval, error) {
	ev := &ScheduleEval{Schedule: s.Clone()}
	ok, err := sched.IdleFeasible(f.Timings, s)
	if err != nil {
		return nil, err
	}
	ev.IdleFeasible = ok
	if !ok {
		ev.Feasible = false
		ev.Pall = -1
		return ev, nil
	}
	derived, err := sched.Derive(f.Timings, s)
	if err != nil {
		return nil, err
	}

	ev.Apps = make([]AppResult, len(f.Apps))
	ev.Feasible = true
	type job struct {
		i   int
		err error
	}
	var wg sync.WaitGroup
	errCh := make(chan job, len(f.Apps))
	for i := range f.Apps {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			app := f.Apps[i]
			opt := f.DesignOpt
			opt.Swarm.Seed = designSeed(s, i)
			d, err := ctrl.DesignHolistic(app.Plant, derived[i], app.Constraints(), opt)
			if err != nil {
				errCh <- job{i, err}
				return
			}
			if f.ReportDtMax > 0 {
				sim := ctrl.SimOptions{
					Horizon:    2.5 * app.SettleDeadline,
					DtMax:      f.ReportDtMax,
					InitialGap: derived[i].Gap,
				}
				if opt.Sim.Horizon > 0 {
					sim.Horizon = opt.Sim.Horizon
				}
				fine, err := ctrl.EvaluateDesign(app.Plant, d.Modes, d.Gains, app.Constraints(), sim)
				if err == nil {
					fine.Evaluations = d.Evaluations
					d = fine
				}
			}
			perf := d.Performance
			// An unstable design has infinite settling time; clamp its
			// performance so weighted sums and search gradients stay
			// finite (it is infeasible either way).
			if math.IsInf(perf, 0) || math.IsNaN(perf) || perf < -10 {
				perf = -10
			}
			ev.Apps[i] = AppResult{
				Name:        app.Name,
				Timing:      derived[i],
				Design:      d,
				Performance: perf,
			}
		}(i)
	}
	wg.Wait()
	close(errCh)
	for j := range errCh {
		if j.err != nil {
			return nil, fmt.Errorf("core: schedule %v app %s: %w", s, f.Apps[j.i].Name, j.err)
		}
	}

	ev.Pall = 0
	for i, ar := range ev.Apps {
		ev.Pall += f.Apps[i].Weight * ar.Performance
		// Constraint (3): P_i >= 0, plus stability/saturation/settling
		// feasibility from the design itself.
		if !ar.Design.Feasible || ar.Performance < 0 {
			ev.Feasible = false
		}
	}
	return ev, nil
}

// designSeed derives a deterministic PSO seed from the schedule and app
// index so evaluations are reproducible and independent.
func designSeed(s sched.Schedule, app int) int64 {
	h := fnv.New64a()
	fmt.Fprintf(h, "%v/%d", s, app)
	v := int64(h.Sum64() & 0x7fffffffffffffff)
	if v == 0 {
		v = 1
	}
	return v
}

// EvalFunc adapts the framework to the search package.
func (f *Framework) EvalFunc() search.EvalFunc {
	return func(s sched.Schedule) (search.Outcome, error) {
		ev, err := f.EvaluateSchedule(s)
		if err != nil {
			return search.Outcome{}, err
		}
		return search.Outcome{Pall: ev.Pall, Feasible: ev.Feasible}, nil
	}
}

// OptimizeHybrid runs the paper's hybrid search from the given starts.
func (f *Framework) OptimizeHybrid(starts []sched.Schedule, opt search.Options) (*search.HybridResult, error) {
	return search.Hybrid(f.EvalFunc(), f.Timings, starts, opt)
}

// OptimizeExhaustive runs the brute-force baseline over the idle-feasible
// box with burst lengths up to maxM.
func (f *Framework) OptimizeExhaustive(maxM int) (*search.ExhaustiveResult, error) {
	return search.Exhaustive(f.EvalFunc(), f.Timings, maxM)
}

// OptimizeExhaustiveParallel is OptimizeExhaustive over a bounded worker
// pool, optionally sharing the given search-level cache with other
// searches. Results are identical to the serial baseline.
func (f *Framework) OptimizeExhaustiveParallel(maxM, workers int, cache *search.Cache) (*search.ExhaustiveResult, error) {
	if cache == nil {
		cache = f.SearchCache()
	}
	return search.ExhaustiveCached(cache, f.Timings, maxM, workers)
}

// SearchCache returns a fresh search-level memoization cache backed by this
// framework's evaluator, for sharing across hybrid starts and exhaustive
// sweeps (pass it via search.Options.Cache / OptimizeExhaustiveParallel).
func (f *Framework) SearchCache() *search.Cache {
	return search.NewCache(f.EvalFunc())
}

// CachedEvaluations returns how many distinct schedules this framework has
// fully evaluated so far.
func (f *Framework) CachedEvaluations() int {
	return f.cache.Len()
}

// CacheStats reports the framework-level evaluation cache effectiveness.
func (f *Framework) CacheStats() evalcache.Stats {
	return f.cache.Stats()
}
