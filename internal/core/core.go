// Package core is the paper's two-stage co-design framework:
//
//	Stage 1 (Section III): for a given schedule, derive control timing from
//	cache-aware WCETs and design a holistic controller per application that
//	maximizes its control performance under the constraints of Section II.
//
//	Stage 2 (Section IV): search the schedule space (m1, ..., mn) for the
//	schedule maximizing the weighted overall control performance
//	P_all = sum_i w_i (1 - s_i / s_i^max).
//
// A Framework owns the platform model, the per-application WCET analysis
// results, and deterministic evaluation of schedules; the search package
// drives it through EvalFunc.
//
// Key invariant: evaluation is a pure function of (framework, point). PSO
// seeds derive from the point's canonical key and the app index, shared
// joint points delegate pointer-identically to the schedule cache, and all
// memoization (internal/engine/evalcache) is semantically invisible — which
// is what lets the engine persist evaluation outcomes (internal/store) and
// replay them bit-identically across processes.
package core

import (
	"fmt"
	"hash/fnv"
	"math"
	"sync"

	"repro/internal/apps"
	"repro/internal/ctrl"
	"repro/internal/engine/evalcache"
	"repro/internal/parallel"
	"repro/internal/sched"
	"repro/internal/search"
	"repro/internal/wcet"
)

// Framework binds applications to a platform and evaluates schedules.
type Framework struct {
	Apps     []apps.App
	Platform wcet.Platform
	// DesignOpt is the per-application design budget template; the PSO
	// seed is overridden per (schedule, app) for determinism.
	DesignOpt ctrl.DesignOptions
	// ReportDtMax, when positive, re-evaluates the winning design of every
	// app with this (finer) dense output resolution for reporting. The
	// horizon and every sampling instant stay identical to the design
	// evaluation, so the reported settling matches the designed one; only
	// the continuous trace for figures gains resolution.
	ReportDtMax float64

	Timings     []sched.AppTiming
	WCETResults []*wcet.Result

	// PartTimings is the joint co-design timing table: the shared taskset
	// plus every app's steady-state timing under each dedicated-way count
	// (ColdWCET == WarmWCET; a partition's contents survive other apps'
	// bursts). Shared entries alias Timings, so schedule-only evaluation is
	// untouched by the partitioning axis.
	PartTimings sched.PartitionTimings

	// cache memoizes full schedule evaluations through the shared sharded
	// cache layer (internal/engine/evalcache), so concurrent searches and
	// sweeps coalesce duplicate evaluations of the same schedule. jointCache
	// is its analogue for partitioned (schedule, ways) points; shared joint
	// points delegate to cache so their evaluations are bit-identical to the
	// schedule-only pipeline.
	cache      *evalcache.Cache[sched.Schedule, *ScheduleEval]
	jointCache *evalcache.Cache[sched.JointSchedule, *ScheduleEval]

	// coreViews memoizes the per-application-subset sub-frameworks of the
	// multi-core placement search (CoreView), keyed by the subset's index
	// rendering, so every core point of the same subset evaluates through
	// one cache.
	coreMu    sync.Mutex
	coreViews map[string]*Framework
}

// New runs the WCET analysis of every application on the platform and
// returns a ready-to-evaluate framework.
func New(applications []apps.App, plat wcet.Platform, designOpt ctrl.DesignOptions) (*Framework, error) {
	if len(applications) == 0 {
		return nil, fmt.Errorf("core: no applications")
	}
	ts, rs, err := apps.Timings(applications, plat)
	if err != nil {
		return nil, err
	}
	// Way partitions are a single-level axis: on hierarchy platforms the
	// joint table stays empty (the engine rejects Partitioned there), and
	// the shared-cache pipeline runs the multi-level analysis instead.
	var byWays [][]sched.AppTiming
	if !plat.Hier.Enabled() {
		byWays, err = apps.WayTimings(applications, plat)
		if err != nil {
			return nil, err
		}
	}
	pt := sched.PartitionTimings{Shared: ts, ByWays: byWays}
	f := &Framework{
		Apps:        applications,
		Platform:    plat,
		DesignOpt:   designOpt,
		Timings:     ts,
		WCETResults: rs,
		PartTimings: pt,
	}
	f.cache = evalcache.NewCache(0, f.evaluate)
	f.jointCache = evalcache.NewCache(0, f.evaluateJoint)
	return f, nil
}

// AppResult is the stage-1 outcome for one application under a schedule.
type AppResult struct {
	Name        string
	Timing      sched.AppSchedule
	Design      *ctrl.Design
	Performance float64 // P_i = 1 - s_i/s0_i
}

// ScheduleEval is the full evaluation of one schedule.
type ScheduleEval struct {
	Schedule     sched.Schedule
	Ways         sched.Ways // dedicated ways per app (nil = shared cache)
	Apps         []AppResult
	Pall         float64 // Eq. (2)
	Feasible     bool    // constraints (3) and (4) plus design feasibility
	IdleFeasible bool
}

// EvaluateSchedule designs holistic controllers for every application under
// schedule s and aggregates the overall control performance. Results are
// memoized; evaluation is deterministic for a given framework.
func (f *Framework) EvaluateSchedule(s sched.Schedule) (*ScheduleEval, error) {
	ev, _, err := f.cache.Get(s)
	return ev, err
}

func (f *Framework) evaluate(s sched.Schedule) (*ScheduleEval, error) {
	return f.evaluateWith(sched.JointSchedule{M: s}, f.Timings)
}

// evaluateJoint is the joint-cache evaluator for partitioned points; shared
// points never reach it (EvaluateJoint routes them through the schedule
// cache so their evaluation is bit-identical to the schedule-only pipeline).
func (f *Framework) evaluateJoint(j sched.JointSchedule) (*ScheduleEval, error) {
	timings, err := f.PartTimings.Timings(j)
	if err != nil {
		return nil, err
	}
	return f.evaluateWith(j, timings)
}

// evaluateWith runs stage 1 under the timing vector of one joint point. The
// per-app PSO seeds derive from the point's canonical key; a shared point's
// key equals its plain schedule key, keeping schedule-only evaluations
// reproducible across both entry paths.
func (f *Framework) evaluateWith(j sched.JointSchedule, timings []sched.AppTiming) (*ScheduleEval, error) {
	s := j.M
	ev := &ScheduleEval{Schedule: s.Clone(), Ways: j.W.Clone()}
	ok, err := sched.IdleFeasible(timings, s)
	if err != nil {
		return nil, err
	}
	ev.IdleFeasible = ok
	if !ok {
		ev.Feasible = false
		ev.Pall = -1
		return ev, nil
	}
	derived, err := sched.Derive(timings, s)
	if err != nil {
		return nil, err
	}

	ev.Apps = make([]AppResult, len(f.Apps))
	ev.Feasible = true
	// The per-application designs fan out over the process-wide concurrency
	// governor; each design is an index-addressed slot and the error
	// reduction below walks app order, so results are identical for any
	// token availability.
	errs := make([]error, len(f.Apps))
	parallel.Default().ForEach(len(f.Apps), 0, func(i int) {
		app := f.Apps[i]
		opt := f.DesignOpt
		opt.Swarm.Seed = designSeed(j, i)
		d, err := ctrl.DesignHolistic(app.Plant, derived[i], app.Constraints(), opt)
		if err != nil {
			errs[i] = err
			return
		}
		if f.ReportDtMax > 0 {
			sim := ctrl.SimOptions{
				Horizon:    2.5 * app.SettleDeadline,
				DtMax:      f.ReportDtMax,
				InitialGap: derived[i].Gap,
			}
			if opt.Sim.Horizon > 0 {
				sim.Horizon = opt.Sim.Horizon
			}
			fine, err := ctrl.EvaluateDesign(app.Plant, d.Modes, d.Gains, app.Constraints(), sim)
			if err == nil {
				fine.Evaluations = d.Evaluations
				d = fine
			}
		}
		perf := d.Performance
		// An unstable design has infinite settling time; clamp its
		// performance so weighted sums and search gradients stay
		// finite (it is infeasible either way).
		if math.IsInf(perf, 0) || math.IsNaN(perf) || perf < -10 {
			perf = -10
		}
		ev.Apps[i] = AppResult{
			Name:        app.Name,
			Timing:      derived[i],
			Design:      d,
			Performance: perf,
		}
	})
	for i, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("core: schedule %v app %s: %w", s, f.Apps[i].Name, err)
		}
	}

	ev.Pall = 0
	for i, ar := range ev.Apps {
		ev.Pall += f.Apps[i].Weight * ar.Performance
		// Constraint (3): P_i >= 0, plus stability/saturation/settling
		// feasibility from the design itself.
		if !ar.Design.Feasible || ar.Performance < 0 {
			ev.Feasible = false
		}
	}
	return ev, nil
}

// designSeed derives a deterministic PSO seed from the joint point's
// canonical key and the app index so evaluations are reproducible and
// independent. A shared point's key equals its plain schedule rendering, so
// the seeds — and hence every design — of the schedule-only pipeline are
// unchanged by the partitioning axis.
func designSeed(j sched.JointSchedule, app int) int64 {
	h := fnv.New64a()
	fmt.Fprintf(h, "%s/%d", j.Key(), app)
	v := int64(h.Sum64() & 0x7fffffffffffffff)
	if v == 0 {
		v = 1
	}
	return v
}

// EvaluateJoint evaluates one point of the joint cache-partition + schedule
// co-design space. Shared points (empty Ways) route through the schedule
// cache, so their results are pointer-identical — and therefore
// bit-identical — to EvaluateSchedule's; partitioned points design against
// the steady-state timings of their way allocation.
func (f *Framework) EvaluateJoint(j sched.JointSchedule) (*ScheduleEval, error) {
	if j.Shared() {
		return f.EvaluateSchedule(j.M)
	}
	if !j.W.Valid(len(f.Apps), f.Platform.Cache.Ways) {
		return nil, fmt.Errorf("core: partition %v invalid for %d apps on a %d-way cache",
			j.W, len(f.Apps), f.Platform.Cache.Ways)
	}
	ev, _, err := f.jointCache.Get(j)
	return ev, err
}

// EvalFunc adapts the framework to the search package.
func (f *Framework) EvalFunc() search.EvalFunc {
	return func(s sched.Schedule) (search.Outcome, error) {
		ev, err := f.EvaluateSchedule(s)
		if err != nil {
			return search.Outcome{}, err
		}
		return search.Outcome{Pall: ev.Pall, Feasible: ev.Feasible}, nil
	}
}

// JointEvalFunc adapts the framework to the joint searchers.
func (f *Framework) JointEvalFunc() search.JointEvalFunc {
	return func(j sched.JointSchedule) (search.Outcome, error) {
		ev, err := f.EvaluateJoint(j)
		if err != nil {
			return search.Outcome{}, err
		}
		return search.Outcome{Pall: ev.Pall, Feasible: ev.Feasible}, nil
	}
}

// OptimizeJointHybrid runs the joint co-design ascent from the given starts.
func (f *Framework) OptimizeJointHybrid(starts []sched.JointSchedule, opt search.JointOptions) (*search.JointHybridResult, error) {
	return search.JointHybrid(f.JointEvalFunc(), f.PartTimings, starts, opt)
}

// OptimizeJointExhaustive runs the brute-force joint baseline over the
// feasible (schedule x partition) box, optionally sharing a joint cache.
func (f *Framework) OptimizeJointExhaustive(maxM, workers int, cache *search.JointCache) (*search.JointExhaustiveResult, error) {
	if cache == nil {
		cache = f.JointSearchCache()
	}
	return search.JointExhaustiveCached(cache, f.PartTimings, maxM, workers)
}

// JointSearchCache returns a fresh joint-point memoization cache backed by
// this framework's evaluator.
func (f *Framework) JointSearchCache() *search.JointCache {
	return search.NewJointCache(f.JointEvalFunc())
}

// OptimizeHybrid runs the paper's hybrid search from the given starts.
func (f *Framework) OptimizeHybrid(starts []sched.Schedule, opt search.Options) (*search.HybridResult, error) {
	return search.Hybrid(f.EvalFunc(), f.Timings, starts, opt)
}

// OptimizeExhaustive runs the brute-force baseline over the idle-feasible
// box with burst lengths up to maxM.
func (f *Framework) OptimizeExhaustive(maxM int) (*search.ExhaustiveResult, error) {
	return search.Exhaustive(f.EvalFunc(), f.Timings, maxM)
}

// OptimizeExhaustiveParallel is OptimizeExhaustive over a bounded worker
// pool, optionally sharing the given search-level cache with other
// searches. Results are identical to the serial baseline.
func (f *Framework) OptimizeExhaustiveParallel(maxM, workers int, cache *search.Cache) (*search.ExhaustiveResult, error) {
	if cache == nil {
		cache = f.SearchCache()
	}
	return search.ExhaustiveCached(cache, f.Timings, maxM, workers)
}

// SearchCache returns a fresh search-level memoization cache backed by this
// framework's evaluator, for sharing across hybrid starts and exhaustive
// sweeps (pass it via search.Options.Cache / OptimizeExhaustiveParallel).
func (f *Framework) SearchCache() *search.Cache {
	return search.NewCache(f.EvalFunc())
}

// CachedEvaluations returns how many distinct schedules this framework has
// fully evaluated so far.
func (f *Framework) CachedEvaluations() int {
	return f.cache.Len()
}

// CacheStats reports the framework-level evaluation cache effectiveness.
func (f *Framework) CacheStats() evalcache.Stats {
	return f.cache.Stats()
}
