package core

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/apps"
	"repro/internal/sched"
)

// Multicore implements the paper's Section VI remark that the framework
// "can be naturally extended to a multi-core architecture, where each core
// has its own cache": applications are partitioned onto cores, every core
// runs an independent periodic schedule against its private cache, and the
// overall performance is the weighted sum across cores.

// CoreAssignment maps each application index to a core.
type CoreAssignment []int

// Valid checks the assignment references cores 0..nCores-1 and that every
// core hosts at least one application.
func (ca CoreAssignment) Valid(nApps, nCores int) error {
	if len(ca) != nApps {
		return fmt.Errorf("core: assignment for %d apps, want %d", len(ca), nApps)
	}
	used := make([]bool, nCores)
	for i, c := range ca {
		if c < 0 || c >= nCores {
			return fmt.Errorf("core: app %d assigned to core %d of %d", i, c, nCores)
		}
		used[c] = true
	}
	for c, ok := range used {
		if !ok {
			return fmt.Errorf("core: core %d hosts no application", c)
		}
	}
	return nil
}

// MulticoreResult is the outcome of a multi-core co-design.
type MulticoreResult struct {
	Assignment CoreAssignment
	// PerCore holds, for every core, the best schedule over that core's
	// applications and its evaluation.
	PerCore []*ScheduleEval
	// Schedules are the per-core optimal schedules (indexed by core, over
	// that core's applications in global order).
	Schedules []sched.Schedule
	Pall      float64
	Feasible  bool
}

// OptimizeMulticore partitions the framework's applications per the
// assignment onto nCores cores (each with the full platform cache private
// to it), exhaustively optimizes each core's schedule up to maxM, and
// aggregates the weighted overall performance. Weights keep their global
// values, so Pall is comparable with the single-core numbers.
func (f *Framework) OptimizeMulticore(assign CoreAssignment, nCores, maxM int) (*MulticoreResult, error) {
	if err := assign.Valid(len(f.Apps), nCores); err != nil {
		return nil, err
	}
	res := &MulticoreResult{
		Assignment: append(CoreAssignment(nil), assign...),
		PerCore:    make([]*ScheduleEval, nCores),
		Schedules:  make([]sched.Schedule, nCores),
		Feasible:   true,
	}
	for c := 0; c < nCores; c++ {
		var coreApps []apps.App
		for i, a := range f.Apps {
			if assign[i] == c {
				coreApps = append(coreApps, a)
			}
		}
		sub, err := New(coreApps, f.Platform, f.DesignOpt)
		if err != nil {
			return nil, err
		}
		sub.ReportDtMax = f.ReportDtMax
		best, err := sub.OptimizeExhaustive(maxM)
		if err != nil {
			return nil, err
		}
		if !best.FoundBest {
			res.Feasible = false
			res.Pall = math.Inf(-1)
			return res, nil
		}
		ev, err := sub.EvaluateSchedule(best.Best)
		if err != nil {
			return nil, err
		}
		res.PerCore[c] = ev
		res.Schedules[c] = best.Best
		res.Pall += ev.Pall
		if !ev.Feasible {
			res.Feasible = false
		}
	}
	return res, nil
}

// BalancedAssignment returns a simple load-balancing heuristic: apps are
// sorted by cold WCET (descending) and greedily placed on the least-loaded
// core. It is the default partition for the multi-core extension.
func BalancedAssignment(timings []sched.AppTiming, nCores int) CoreAssignment {
	type item struct {
		idx  int
		load float64
	}
	items := make([]item, len(timings))
	for i, tm := range timings {
		items[i] = item{idx: i, load: tm.ColdWCET}
	}
	sort.Slice(items, func(a, b int) bool { return items[a].load > items[b].load })
	loads := make([]float64, nCores)
	out := make(CoreAssignment, len(timings))
	for _, it := range items {
		c := 0
		for k := 1; k < nCores; k++ {
			if loads[k] < loads[c] {
				c = k
			}
		}
		out[it.idx] = c
		loads[c] += it.load
	}
	return out
}
