package core

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/apps"
	"repro/internal/engine/evalcache"
	"repro/internal/sched"
	"repro/internal/search"
	"repro/internal/wcet"
)

// Multicore implements the paper's Section VI remark that the framework
// "can be naturally extended to a multi-core architecture, where each core
// has its own cache": applications are partitioned onto cores, every core
// runs an independent periodic schedule against its private cache, and the
// overall performance is the weighted sum across cores. The placement axis
// composes with the joint cache-partition + schedule co-design (PR 8): each
// core may further split its private cache among its applications, and
// OptimizeMulticoreCoDesign searches placements, partitions, and schedules
// together through internal/search.

// CoreAssignment maps each application index to a core.
type CoreAssignment []int

// Valid checks the core count is positive, the assignment references cores
// 0..nCores-1, and every core hosts at least one application.
func (ca CoreAssignment) Valid(nApps, nCores int) error {
	if nCores < 1 {
		return fmt.Errorf("core: %d cores, want at least 1", nCores)
	}
	if len(ca) != nApps {
		return fmt.Errorf("core: assignment for %d apps, want %d", len(ca), nApps)
	}
	used := make([]bool, nCores)
	for i, c := range ca {
		if c < 0 || c >= nCores {
			return fmt.Errorf("core: app %d assigned to core %d of %d", i, c, nCores)
		}
		used[c] = true
	}
	for c, ok := range used {
		if !ok {
			return fmt.Errorf("core: core %d hosts no application", c)
		}
	}
	return nil
}

// MulticoreResult is the outcome of a fixed-placement multi-core
// optimization.
type MulticoreResult struct {
	Assignment CoreAssignment
	// PerCore holds, for every core, the best schedule over that core's
	// applications and its evaluation. When a core's search finds no
	// feasible schedule its entry is the round-robin evaluation (itself
	// infeasible), never nil.
	PerCore []*ScheduleEval
	// Schedules are the per-core schedules backing PerCore (indexed by
	// core, over that core's applications in global order).
	Schedules []sched.Schedule
	Pall      float64
	Feasible  bool
}

// OptimizeMulticore partitions the framework's applications per the
// assignment onto nCores cores (each with the full platform cache private
// to it), exhaustively optimizes each core's schedule up to maxM, and
// aggregates the weighted overall performance. Weights keep their global
// values, so Pall is comparable with the single-core numbers. Every core is
// optimized even when an earlier one proves infeasible, so PerCore and
// Schedules never hold nil entries.
func (f *Framework) OptimizeMulticore(assign CoreAssignment, nCores, maxM int) (*MulticoreResult, error) {
	if err := assign.Valid(len(f.Apps), nCores); err != nil {
		return nil, err
	}
	res := &MulticoreResult{
		Assignment: append(CoreAssignment(nil), assign...),
		PerCore:    make([]*ScheduleEval, nCores),
		Schedules:  make([]sched.Schedule, nCores),
		Feasible:   true,
	}
	infeasibleCore := false
	for c := 0; c < nCores; c++ {
		var coreApps []apps.App
		for i, a := range f.Apps {
			if assign[i] == c {
				coreApps = append(coreApps, a)
			}
		}
		sub, err := New(coreApps, f.Platform, f.DesignOpt)
		if err != nil {
			return nil, err
		}
		sub.ReportDtMax = f.ReportDtMax
		best, err := sub.OptimizeExhaustive(maxM)
		if err != nil {
			return nil, err
		}
		schedule := best.Best
		if !best.FoundBest {
			// No feasible schedule on this core: record the round-robin
			// evaluation (infeasible by construction) so callers ranging
			// over PerCore never hit a nil entry, and keep optimizing the
			// remaining cores.
			infeasibleCore = true
			schedule = sched.RoundRobin(len(coreApps))
		}
		ev, err := sub.EvaluateSchedule(schedule)
		if err != nil {
			return nil, err
		}
		res.PerCore[c] = ev
		res.Schedules[c] = schedule
		res.Pall += ev.Pall
		if !ev.Feasible {
			res.Feasible = false
		}
	}
	if infeasibleCore {
		res.Feasible = false
		res.Pall = math.Inf(-1)
	}
	return res, nil
}

// BalancedAssignment returns a simple load-balancing heuristic: apps are
// sorted by cold WCET (descending, ties kept in index order) and greedily
// placed on the least-loaded core. It is the default placement seed for the
// multi-core extension.
func BalancedAssignment(timings []sched.AppTiming, nCores int) (CoreAssignment, error) {
	if nCores < 1 {
		return nil, fmt.Errorf("core: balanced assignment over %d cores", nCores)
	}
	if nCores > len(timings) {
		return nil, fmt.Errorf("core: balanced assignment of %d apps over %d cores leaves cores empty",
			len(timings), nCores)
	}
	return greedyAssignment(loads(timings, func(tm sched.AppTiming) float64 { return tm.ColdWCET }), nCores), nil
}

// SensitivityAssignment orders applications by cache sensitivity — how much
// their steady-state WCET improves from owning one way to owning the full
// cache (falling back to cold-minus-warm on the shared taskset when no
// per-way table exists) — and greedily spreads the most sensitive apps
// across the least-loaded cores. Cache-hungry applications then share a
// core with insensitive ones, leaving more ways for the partitions that
// profit from them; it complements BalancedAssignment as a placement seed.
func SensitivityAssignment(pt sched.PartitionTimings, nCores int) (CoreAssignment, error) {
	n := len(pt.Shared)
	if nCores < 1 {
		return nil, fmt.Errorf("core: sensitivity assignment over %d cores", nCores)
	}
	if nCores > n {
		return nil, fmt.Errorf("core: sensitivity assignment of %d apps over %d cores leaves cores empty",
			n, nCores)
	}
	sens := make([]float64, n)
	for i := 0; i < n; i++ {
		if len(pt.ByWays) > 0 {
			sens[i] = pt.ByWays[0][i].WarmWCET - pt.ByWays[len(pt.ByWays)-1][i].WarmWCET
		} else {
			sens[i] = pt.Shared[i].ColdWCET - pt.Shared[i].WarmWCET
		}
	}
	items := make([]loadItem, n)
	for i, s := range sens {
		items[i] = loadItem{idx: i, load: s}
	}
	return greedyAssignment(items, nCores), nil
}

type loadItem struct {
	idx  int
	load float64
}

func loads(timings []sched.AppTiming, f func(sched.AppTiming) float64) []loadItem {
	items := make([]loadItem, len(timings))
	for i, tm := range timings {
		items[i] = loadItem{idx: i, load: f(tm)}
	}
	return items
}

// greedyAssignment sorts descending by load (stable, so equal loads keep
// index order and the result is deterministic) and places each item on the
// least-loaded core; load ties break to the core hosting fewer apps, then
// to the lowest index. The count tiebreak guarantees every core is used
// when there are at least as many apps as cores — even under degenerate
// all-equal loads (e.g. zero cache sensitivity on a 1-way platform).
func greedyAssignment(items []loadItem, nCores int) CoreAssignment {
	sorted := append([]loadItem(nil), items...)
	sort.SliceStable(sorted, func(a, b int) bool { return sorted[a].load > sorted[b].load })
	coreLoad := make([]float64, nCores)
	coreApps := make([]int, nCores)
	out := make(CoreAssignment, len(items))
	for _, it := range sorted {
		c := 0
		for k := 1; k < nCores; k++ {
			if coreLoad[k] < coreLoad[c] ||
				(coreLoad[k] == coreLoad[c] && coreApps[k] < coreApps[c]) {
				c = k
			}
		}
		out[it.idx] = c
		coreLoad[c] += it.load
		coreApps[c]++
	}
	return out
}

// PlacementSeeds returns the heuristic core assignments used to seed the
// placement search: the load-balanced and the cache-sensitivity orderings.
// Assignments the heuristics cannot produce (e.g. more cores than apps) are
// simply absent; the searchers validate what remains.
func (f *Framework) PlacementSeeds(nCores int) [][]int {
	var seeds [][]int
	if ba, err := BalancedAssignment(f.Timings, nCores); err == nil {
		seeds = append(seeds, []int(ba))
	}
	if sa, err := SensitivityAssignment(f.PartTimings, nCores); err == nil {
		seeds = append(seeds, []int(sa))
	}
	return seeds
}

// CoreView returns the sub-framework of the given application subset
// (strictly ascending global indices): the same platform and design budget
// over that core's applications, with timing tables sliced from the parent
// — no WCET re-analysis. Views are memoized per subset, so every evaluation
// of the same core point hits one cache, and the view's evaluations are
// pure functions of (subset, point) exactly like the parent's.
func (f *Framework) CoreView(idx []int) (*Framework, error) {
	sub, err := search.SubPartition(f.PartTimings, idx)
	if err != nil {
		return nil, err
	}
	key := fmt.Sprint(idx)
	f.coreMu.Lock()
	defer f.coreMu.Unlock()
	if f.coreViews == nil {
		f.coreViews = make(map[string]*Framework)
	}
	if v, ok := f.coreViews[key]; ok {
		return v, nil
	}
	v := &Framework{
		Platform:    f.Platform,
		DesignOpt:   f.DesignOpt,
		ReportDtMax: f.ReportDtMax,
		PartTimings: sub,
		Timings:     sub.Shared,
		Apps:        make([]apps.App, len(idx)),
		WCETResults: make([]*wcet.Result, len(idx)),
	}
	for k, i := range idx {
		v.Apps[k] = f.Apps[i]
		v.WCETResults[k] = f.WCETResults[i]
	}
	v.cache = evalcache.NewCache(0, v.evaluate)
	v.jointCache = evalcache.NewCache(0, v.evaluateJoint)
	f.coreViews[key] = v
	return v, nil
}

// MulticoreEvalFunc adapts the framework to the placement searchers: a core
// point evaluates its joint (schedule, ways) point on the CoreView of its
// application subset — the core's private cache is the full platform cache.
func (f *Framework) MulticoreEvalFunc() search.CoreEvalFunc {
	return func(p search.CorePoint) (search.Outcome, error) {
		view, err := f.CoreView(p.Apps)
		if err != nil {
			return search.Outcome{}, err
		}
		ev, err := view.EvaluateJoint(p.Point)
		if err != nil {
			return search.Outcome{}, err
		}
		return search.Outcome{Pall: ev.Pall, Feasible: ev.Feasible}, nil
	}
}

// MulticoreSearchCache returns a fresh core-point memoization cache backed
// by this framework's evaluator.
func (f *Framework) MulticoreSearchCache() *search.MulticoreCache {
	return search.NewMulticoreCache(f.MulticoreEvalFunc())
}

// OptimizeMulticoreCoDesign runs the full placement x partition x schedule
// co-design over nCores cores: every canonical application-to-core
// assignment (or the heuristic seeds when the placement space overflows
// opt.MaxAssignments), each core's private cache split among its
// applications, each split's feasible schedules. When opt.Seeds is nil the
// heuristic placements (PlacementSeeds) are used; pass a non-nil cache to
// share evaluations across calls. A non-nil opt.Bounder selects the
// branch-and-bound searchers — exact, identical optimum, fewer evaluations.
func (f *Framework) OptimizeMulticoreCoDesign(nCores int, opt search.MulticoreOptions, cache *search.MulticoreCache) (*search.MulticoreResult, error) {
	if cache == nil {
		cache = f.MulticoreSearchCache()
	}
	if opt.Seeds == nil {
		opt.Seeds = f.PlacementSeeds(nCores)
	}
	if opt.Bounder != nil {
		return search.MulticoreBranchBound(cache, f.PartTimings, nCores, opt)
	}
	return search.MulticoreExhaustive(cache, f.PartTimings, nCores, opt)
}
