package core

import (
	"math"
	"testing"

	"repro/internal/apps"
	"repro/internal/ctrl"
	"repro/internal/sched"
	"repro/internal/search"
	"repro/internal/wcet"
)

func tinyBudget() ctrl.DesignOptions {
	var opt ctrl.DesignOptions
	opt.Swarm.Particles = 8
	opt.Swarm.Iterations = 8
	return opt
}

func newTestFramework(t *testing.T) *Framework {
	t.Helper()
	fw, err := New(apps.CaseStudy(), wcet.PaperPlatform(), tinyBudget())
	if err != nil {
		t.Fatal(err)
	}
	return fw
}

func TestNewRunsWCETAnalysis(t *testing.T) {
	fw := newTestFramework(t)
	if len(fw.Timings) != 3 || len(fw.WCETResults) != 3 {
		t.Fatal("timings not populated")
	}
	// Table I numbers must be visible through the framework.
	if math.Abs(fw.Timings[0].ColdWCET-907.55e-6) > 1e-12 {
		t.Errorf("C1 cold WCET %g", fw.Timings[0].ColdWCET)
	}
	if fw.WCETResults[2].ReusedLines != 104 {
		t.Errorf("C3 reused lines %d", fw.WCETResults[2].ReusedLines)
	}
}

func TestNewRejectsEmpty(t *testing.T) {
	if _, err := New(nil, wcet.PaperPlatform(), tinyBudget()); err == nil {
		t.Error("empty app list accepted")
	}
}

func TestEvaluateScheduleShape(t *testing.T) {
	fw := newTestFramework(t)
	ev, err := fw.EvaluateSchedule(sched.RoundRobin(3))
	if err != nil {
		t.Fatal(err)
	}
	if len(ev.Apps) != 3 {
		t.Fatalf("apps: %d", len(ev.Apps))
	}
	if !ev.IdleFeasible {
		t.Error("round robin must be idle feasible")
	}
	// P_all is the weighted sum of per-app performances (Eq. 2).
	want := 0.0
	for i, ar := range ev.Apps {
		want += fw.Apps[i].Weight * ar.Performance
	}
	if math.Abs(ev.Pall-want) > 1e-12 {
		t.Errorf("Pall = %g, want weighted sum %g", ev.Pall, want)
	}
	for _, ar := range ev.Apps {
		if ar.Design == nil || ar.Design.Trajectory == nil {
			t.Fatalf("app %s missing design artifacts", ar.Name)
		}
		if len(ar.Timing.Periods) != 1 {
			t.Errorf("app %s: %d periods under round robin", ar.Name, len(ar.Timing.Periods))
		}
	}
}

func TestEvaluateScheduleMemoized(t *testing.T) {
	fw := newTestFramework(t)
	s := sched.Schedule{2, 1, 1}
	ev1, err := fw.EvaluateSchedule(s)
	if err != nil {
		t.Fatal(err)
	}
	ev2, err := fw.EvaluateSchedule(s)
	if err != nil {
		t.Fatal(err)
	}
	if ev1 != ev2 {
		t.Error("second evaluation must return the cached object")
	}
	if fw.CachedEvaluations() != 1 {
		t.Errorf("cache size %d", fw.CachedEvaluations())
	}
}

func TestEvaluateIdleInfeasible(t *testing.T) {
	fw := newTestFramework(t)
	ev, err := fw.EvaluateSchedule(sched.Schedule{1, 30, 30})
	if err != nil {
		t.Fatal(err)
	}
	if ev.IdleFeasible || ev.Feasible {
		t.Error("starving schedule must be infeasible")
	}
	if ev.Pall >= 0 {
		t.Errorf("infeasible Pall = %g", ev.Pall)
	}
	if len(ev.Apps) != 0 {
		t.Error("idle-infeasible schedules must not run designs")
	}
}

func TestEvalFuncAdapter(t *testing.T) {
	fw := newTestFramework(t)
	out, err := fw.EvalFunc()(sched.RoundRobin(3))
	if err != nil {
		t.Fatal(err)
	}
	ev, _ := fw.EvaluateSchedule(sched.RoundRobin(3))
	if out.Pall != ev.Pall {
		t.Error("adapter result mismatch")
	}
}

func TestDesignSeedDeterministicAndDistinct(t *testing.T) {
	s1 := designSeed(sched.SharedPoint(sched.Schedule{1, 2, 3}), 0)
	s2 := designSeed(sched.SharedPoint(sched.Schedule{1, 2, 3}), 0)
	s3 := designSeed(sched.SharedPoint(sched.Schedule{1, 2, 3}), 1)
	s4 := designSeed(sched.SharedPoint(sched.Schedule{3, 2, 1}), 0)
	if s1 != s2 {
		t.Error("seed not deterministic")
	}
	if s1 == s3 || s1 == s4 {
		t.Error("seeds must differ across apps and schedules")
	}
	if s1 <= 0 {
		t.Error("seed must be positive")
	}
}

func TestEvaluationDeterministic(t *testing.T) {
	// Two separate frameworks with the same budget must agree exactly.
	fw1 := newTestFramework(t)
	fw2 := newTestFramework(t)
	s := sched.Schedule{2, 2, 2}
	ev1, err := fw1.EvaluateSchedule(s)
	if err != nil {
		t.Fatal(err)
	}
	ev2, err := fw2.EvaluateSchedule(s)
	if err != nil {
		t.Fatal(err)
	}
	if ev1.Pall != ev2.Pall {
		t.Errorf("non-deterministic evaluation: %g vs %g", ev1.Pall, ev2.Pall)
	}
	for i := range ev1.Apps {
		if ev1.Apps[i].Design.SettlingTime != ev2.Apps[i].Design.SettlingTime {
			t.Errorf("app %d settling differs", i)
		}
	}
}

func TestOptimizeHybridSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("hybrid optimization is slow for -short")
	}
	fw := newTestFramework(t)
	res, err := fw.OptimizeHybrid([]sched.Schedule{{1, 1, 1}}, search.Options{MaxM: 4, MaxSteps: 4})
	if err != nil {
		t.Fatal(err)
	}
	if !res.FoundBest {
		t.Error("hybrid search found no feasible schedule")
	}
	if ok, _ := sched.IdleFeasible(fw.Timings, res.Best); !ok {
		t.Errorf("best %v violates idle constraint", res.Best)
	}
}

func TestReportGridKeepsSampledSettling(t *testing.T) {
	// Refining the dense output grid must not change the sampled settling
	// measurement (the sampling instants are schedule-determined).
	fwCoarse, err := New(apps.CaseStudy(), wcet.PaperPlatform(), tinyBudget())
	if err != nil {
		t.Fatal(err)
	}
	fwFine, err := New(apps.CaseStudy(), wcet.PaperPlatform(), tinyBudget())
	if err != nil {
		t.Fatal(err)
	}
	fwFine.ReportDtMax = 10e-6
	s := sched.Schedule{1, 1, 1}
	evC, err := fwCoarse.EvaluateSchedule(s)
	if err != nil {
		t.Fatal(err)
	}
	evF, err := fwFine.EvaluateSchedule(s)
	if err != nil {
		t.Fatal(err)
	}
	for i := range evC.Apps {
		a, b := evC.Apps[i].Design.SettlingTime, evF.Apps[i].Design.SettlingTime
		if math.Abs(a-b) > 1e-9 {
			t.Errorf("app %d: settling %g (design grid) vs %g (report grid)", i, a, b)
		}
	}
}
