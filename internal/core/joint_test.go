package core

import (
	"math"
	"testing"

	"repro/internal/apps"
	"repro/internal/cachesim"
	"repro/internal/ctrl"
	"repro/internal/sched"
	"repro/internal/wcet"
)

func tinyOpts() ctrl.DesignOptions {
	var opt ctrl.DesignOptions
	opt.Swarm.Particles = 4
	opt.Swarm.Iterations = 5
	return opt
}

func fourWayPlatform() wcet.Platform {
	return wcet.Platform{ClockHz: 20e6, Cache: cachesim.Config{
		Lines: 512, LineSize: 16, Ways: 4, Policy: cachesim.LRU, HitCycles: 1, MissCycles: 100,
	}}
}

// EvaluateJoint on a shared point must return the very same memoized result
// as EvaluateSchedule — the partitioning axis cannot even re-run the
// schedule-only pipeline.
func TestEvaluateJointSharedDelegates(t *testing.T) {
	fw, err := New(apps.CaseStudy(), wcet.PaperPlatform(), tinyOpts())
	if err != nil {
		t.Fatal(err)
	}
	m := sched.Schedule{2, 1, 1}
	plain, err := fw.EvaluateSchedule(m)
	if err != nil {
		t.Fatal(err)
	}
	joint, err := fw.EvaluateJoint(sched.SharedPoint(m))
	if err != nil {
		t.Fatal(err)
	}
	if plain != joint {
		t.Error("shared joint evaluation did not delegate to the schedule cache")
	}
	if fw.CachedEvaluations() != 1 {
		t.Errorf("schedule cache holds %d entries, want 1", fw.CachedEvaluations())
	}
}

func TestEvaluateJointPartitioned(t *testing.T) {
	fw, err := New(apps.CaseStudy(), fourWayPlatform(), tinyOpts())
	if err != nil {
		t.Fatal(err)
	}
	if fw.PartTimings.TotalWays() != 4 {
		t.Fatalf("partition table covers %d ways", fw.PartTimings.TotalWays())
	}
	j := sched.JointSchedule{M: sched.Schedule{1, 1, 1}, W: sched.Ways{2, 1, 1}}
	ev, err := fw.EvaluateJoint(j)
	if err != nil {
		t.Fatal(err)
	}
	if !ev.Ways.Equal(j.W) || !ev.Schedule.Equal(j.M) {
		t.Errorf("eval carries %v / %v, want %v", ev.Schedule, ev.Ways, j)
	}
	if !ev.IdleFeasible {
		t.Error("round-robin partitioned point idle-infeasible")
	}
	// Timings used must be the steady-state partition timings.
	for i, ar := range ev.Apps {
		want := fw.PartTimings.ByWays[j.W[i]-1][i]
		if len(ar.Timing.WCETs) == 0 || math.Abs(ar.Timing.WCETs[0]-want.ColdWCET) > 1e-15 {
			t.Errorf("app %d designed against WCET %v, want %v", i, ar.Timing.WCETs, want.ColdWCET)
		}
	}
	// Memoized: a second request returns the identical pointer.
	again, err := fw.EvaluateJoint(j.Clone())
	if err != nil {
		t.Fatal(err)
	}
	if again != ev {
		t.Error("joint evaluation not memoized")
	}
	// Over-budget partitions are rejected loudly.
	if _, err := fw.EvaluateJoint(sched.JointSchedule{M: sched.Schedule{1, 1, 1}, W: sched.Ways{3, 1, 1}}); err == nil {
		t.Error("over-budget joint point accepted")
	}
}

// The joint searchers run end to end on the framework evaluator, and the
// shared subspace of the joint exhaustive matches OptimizeExhaustive bit
// for bit.
func TestOptimizeJointExhaustiveSharedSubspace(t *testing.T) {
	fw, err := New(apps.CaseStudy()[:2], wcet.PaperPlatform(), tinyOpts())
	if err != nil {
		t.Fatal(err)
	}
	joint, err := fw.OptimizeJointExhaustive(3, 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	plain, err := fw.OptimizeExhaustive(3)
	if err != nil {
		t.Fatal(err)
	}
	if !joint.FoundShared || !plain.FoundBest {
		t.Fatalf("found: joint shared=%v plain=%v", joint.FoundShared, plain.FoundBest)
	}
	if !joint.BestShared.M.Equal(plain.Best) ||
		math.Float64bits(joint.BestSharedValue) != math.Float64bits(plain.BestValue) {
		t.Errorf("joint shared optimum %v (%v) != schedule-only optimum %v (%v)",
			joint.BestShared, joint.BestSharedValue, plain.Best, plain.BestValue)
	}
	// 1-way platform: the whole joint box is the shared box.
	if joint.Evaluated != plain.Evaluated || !joint.Best.Shared() {
		t.Errorf("joint box %d (best %v), plain box %d", joint.Evaluated, joint.Best, plain.Evaluated)
	}
}
