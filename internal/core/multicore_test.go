package core

import (
	"testing"

	"repro/internal/apps"
	"repro/internal/sched"
	"repro/internal/wcet"
)

func TestCoreAssignmentValid(t *testing.T) {
	if err := (CoreAssignment{0, 1, 0}).Valid(3, 2); err != nil {
		t.Errorf("valid assignment rejected: %v", err)
	}
	cases := []struct {
		ca     CoreAssignment
		nApps  int
		nCores int
	}{
		{CoreAssignment{0, 1}, 3, 2},    // wrong length
		{CoreAssignment{0, 2, 0}, 3, 2}, // core out of range
		{CoreAssignment{0, 0, 0}, 3, 2}, // core 1 empty
	}
	for i, c := range cases {
		if c.ca.Valid(c.nApps, c.nCores) == nil {
			t.Errorf("case %d should be invalid", i)
		}
	}
}

func TestBalancedAssignment(t *testing.T) {
	timings := []sched.AppTiming{
		{Name: "a", ColdWCET: 900e-6, WarmWCET: 400e-6},
		{Name: "b", ColdWCET: 600e-6, WarmWCET: 200e-6},
		{Name: "c", ColdWCET: 700e-6, WarmWCET: 250e-6},
	}
	ca := BalancedAssignment(timings, 2)
	if err := ca.Valid(3, 2); err != nil {
		t.Fatalf("balanced assignment invalid: %v", err)
	}
	// Largest app alone, the two smaller together: loads 900 vs 1300.
	if ca[0] == ca[1] || ca[0] == ca[2] {
		t.Errorf("heaviest app should be isolated: %v", ca)
	}
}

func TestOptimizeMulticore(t *testing.T) {
	if testing.Short() {
		t.Skip("multicore optimization is slow for -short")
	}
	fw := newTestFramework(t)
	assign := BalancedAssignment(fw.Timings, 2)
	res, err := fw.OptimizeMulticore(assign, 2, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.PerCore) != 2 || len(res.Schedules) != 2 {
		t.Fatal("per-core results missing")
	}
	for c, ev := range res.PerCore {
		if ev == nil {
			t.Fatalf("core %d missing evaluation", c)
		}
	}
	// A core with fewer apps has a shorter schedule period, so per-app
	// performance should not degrade versus single core sharing: the
	// multi-core Pall must be at least the single-core round-robin Pall.
	single, err := fw.EvaluateSchedule(sched.RoundRobin(3))
	if err != nil {
		t.Fatal(err)
	}
	if res.Pall < single.Pall-0.05 {
		t.Errorf("multicore Pall %.4f unexpectedly below single-core %.4f", res.Pall, single.Pall)
	}
}

func TestOptimizeMulticoreRejectsBadAssignment(t *testing.T) {
	fw, err := New(apps.CaseStudy(), wcet.PaperPlatform(), tinyBudget())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := fw.OptimizeMulticore(CoreAssignment{0, 0, 0}, 2, 3); err == nil {
		t.Error("assignment with empty core accepted")
	}
}
