package core

import (
	"math"
	"testing"

	"repro/internal/apps"
	"repro/internal/sched"
	"repro/internal/search"
	"repro/internal/wcet"
)

func TestCoreAssignmentValid(t *testing.T) {
	if err := (CoreAssignment{0, 1, 0}).Valid(3, 2); err != nil {
		t.Errorf("valid assignment rejected: %v", err)
	}
	cases := []struct {
		ca     CoreAssignment
		nApps  int
		nCores int
	}{
		{CoreAssignment{0, 1}, 3, 2},    // wrong length
		{CoreAssignment{0, 2, 0}, 3, 2}, // core out of range
		{CoreAssignment{0, 0, 0}, 3, 2}, // core 1 empty
		{CoreAssignment{}, 0, 0},        // zero cores must not pass vacuously
		{CoreAssignment{0, 0}, 2, -1},   // negative core count
	}
	for i, c := range cases {
		if c.ca.Valid(c.nApps, c.nCores) == nil {
			t.Errorf("case %d should be invalid", i)
		}
	}
}

func TestBalancedAssignment(t *testing.T) {
	timings := []sched.AppTiming{
		{Name: "a", ColdWCET: 900e-6, WarmWCET: 400e-6},
		{Name: "b", ColdWCET: 600e-6, WarmWCET: 200e-6},
		{Name: "c", ColdWCET: 700e-6, WarmWCET: 250e-6},
	}
	ca, err := BalancedAssignment(timings, 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := ca.Valid(3, 2); err != nil {
		t.Fatalf("balanced assignment invalid: %v", err)
	}
	// Largest app alone, the two smaller together: loads 900 vs 1300.
	if ca[0] == ca[1] || ca[0] == ca[2] {
		t.Errorf("heaviest app should be isolated: %v", ca)
	}
	// Error contract: core counts the apps cannot fill are rejected rather
	// than silently producing an assignment that fails Valid.
	for _, bad := range []struct {
		nCores int
	}{{0}, {-3}, {4}, {100}} {
		if _, err := BalancedAssignment(timings, bad.nCores); err == nil {
			t.Errorf("BalancedAssignment(3 apps, %d cores) accepted", bad.nCores)
		}
	}
}

func TestSensitivityAssignment(t *testing.T) {
	// App 0 and 2 are cache-hungry (steady WCET collapses with ways), app 1
	// is flat: the greedy spread must place the two sensitive apps on
	// different cores.
	pt := sched.PartitionTimings{
		Shared: []sched.AppTiming{
			{Name: "a", ColdWCET: 900e-6, WarmWCET: 300e-6},
			{Name: "b", ColdWCET: 500e-6, WarmWCET: 480e-6},
			{Name: "c", ColdWCET: 800e-6, WarmWCET: 350e-6},
		},
		ByWays: [][]sched.AppTiming{
			{{WarmWCET: 900e-6}, {WarmWCET: 500e-6}, {WarmWCET: 800e-6}},
			{{WarmWCET: 300e-6}, {WarmWCET: 490e-6}, {WarmWCET: 400e-6}},
		},
	}
	ca, err := SensitivityAssignment(pt, 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := ca.Valid(3, 2); err != nil {
		t.Fatalf("sensitivity assignment invalid: %v", err)
	}
	if ca[0] == ca[2] {
		t.Errorf("both cache-sensitive apps on one core: %v", ca)
	}
	if _, err := SensitivityAssignment(pt, 0); err == nil {
		t.Error("0 cores accepted")
	}
	if _, err := SensitivityAssignment(pt, 4); err == nil {
		t.Error("more cores than apps accepted")
	}
	// Fallback path: no per-way table, sensitivity = cold - warm.
	flat := sched.PartitionTimings{Shared: pt.Shared}
	if ca, err := SensitivityAssignment(flat, 2); err != nil || ca.Valid(3, 2) != nil {
		t.Errorf("shared-only fallback failed: %v %v", ca, err)
	}
}

func TestOptimizeMulticore(t *testing.T) {
	if testing.Short() {
		t.Skip("multicore optimization is slow for -short")
	}
	fw := newTestFramework(t)
	assign, err := BalancedAssignment(fw.Timings, 2)
	if err != nil {
		t.Fatal(err)
	}
	res, err := fw.OptimizeMulticore(assign, 2, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.PerCore) != 2 || len(res.Schedules) != 2 {
		t.Fatal("per-core results missing")
	}
	for c, ev := range res.PerCore {
		if ev == nil {
			t.Fatalf("core %d missing evaluation", c)
		}
	}
	// A core with fewer apps has a shorter schedule period, so per-app
	// performance should not degrade versus single core sharing: the
	// multi-core Pall must be at least the single-core round-robin Pall.
	single, err := fw.EvaluateSchedule(sched.RoundRobin(3))
	if err != nil {
		t.Fatal(err)
	}
	if res.Pall < single.Pall-0.05 {
		t.Errorf("multicore Pall %.4f unexpectedly below single-core %.4f", res.Pall, single.Pall)
	}
}

func TestOptimizeMulticoreRejectsBadAssignment(t *testing.T) {
	fw, err := New(apps.CaseStudy(), wcet.PaperPlatform(), tinyBudget())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := fw.OptimizeMulticore(CoreAssignment{0, 0, 0}, 2, 3); err == nil {
		t.Error("assignment with empty core accepted")
	}
	if _, err := fw.OptimizeMulticore(CoreAssignment{}, 0, 3); err == nil {
		t.Error("0 cores accepted")
	}
}

// TestOptimizeMulticoreInfeasibleFillsAllCores is the regression test for
// the early-return bug: when a core finds no feasible schedule the result
// must still carry a non-nil evaluation for every core (the round-robin
// fallback), not nil tails after the first infeasible core.
func TestOptimizeMulticoreInfeasibleFillsAllCores(t *testing.T) {
	applications := apps.CaseStudy()
	for i := range applications {
		applications[i].MaxIdle = 1e-9 // no schedule can meet this idle budget
	}
	fw, err := New(applications, wcet.PaperPlatform(), tinyBudget())
	if err != nil {
		t.Fatal(err)
	}
	res, err := fw.OptimizeMulticore(CoreAssignment{0, 1, 0}, 2, 3)
	if err != nil {
		t.Fatal(err)
	}
	if res.Feasible {
		t.Error("infeasible taskset reported feasible")
	}
	if !math.IsInf(res.Pall, -1) {
		t.Errorf("Pall = %v, want -Inf", res.Pall)
	}
	if len(res.PerCore) != 2 || len(res.Schedules) != 2 {
		t.Fatalf("result shape: %d evals, %d schedules", len(res.PerCore), len(res.Schedules))
	}
	for c := range res.PerCore {
		if res.PerCore[c] == nil {
			t.Errorf("core %d evaluation is nil", c)
		}
		if res.Schedules[c] == nil {
			t.Errorf("core %d schedule is nil", c)
		}
	}
}

func TestCoreView(t *testing.T) {
	fw := newTestFramework(t)
	view, err := fw.CoreView([]int{0, 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(view.Apps) != 2 || view.Apps[1].Name != fw.Apps[2].Name {
		t.Fatalf("view apps %v", view.Apps)
	}
	if view.Timings[1] != fw.Timings[2] {
		t.Error("view timings not sliced from parent")
	}
	if view.WCETResults[0] != fw.WCETResults[0] {
		t.Error("view WCET results not shared with parent")
	}
	if view.PartTimings.TotalWays() != fw.PartTimings.TotalWays() {
		t.Error("view does not own the full cache")
	}
	again, err := fw.CoreView([]int{0, 2})
	if err != nil {
		t.Fatal(err)
	}
	if again != view {
		t.Error("core views not memoized")
	}
	if _, err := fw.CoreView([]int{2, 0}); err == nil {
		t.Error("descending subset accepted")
	}
	if _, err := fw.CoreView(nil); err == nil {
		t.Error("empty subset accepted")
	}
}

// TestOptimizeMulticoreCoDesign pins the design-objective placement search:
// branch-and-bound (with the always-admissible weight bound) and the
// exhaustive placement search agree bit for bit, and the co-design optimum
// dominates the fixed-placement, no-partition OptimizeMulticore on the same
// core count.
func TestOptimizeMulticoreCoDesign(t *testing.T) {
	if testing.Short() {
		t.Skip("multicore co-design is slow for -short")
	}
	fw := newTestFramework(t)
	weights := make([]float64, len(fw.Apps))
	for i, a := range fw.Apps {
		weights[i] = a.Weight
	}
	opt := search.MulticoreOptions{MaxM: 2}
	ex, err := fw.OptimizeMulticoreCoDesign(2, opt, nil)
	if err != nil {
		t.Fatal(err)
	}
	opt.Bounder = search.TrivialBounder(weights)
	bb, err := fw.OptimizeMulticoreCoDesign(2, opt, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !ex.FoundBest || !bb.FoundBest {
		t.Fatalf("searches incomplete: ex %v bb %v", ex.FoundBest, bb.FoundBest)
	}
	if math.Float64bits(ex.BestValue) != math.Float64bits(bb.BestValue) {
		t.Errorf("branch-and-bound %v != exhaustive %v", bb.BestValue, ex.BestValue)
	}
	assign, err := BalancedAssignment(fw.Timings, 2)
	if err != nil {
		t.Fatal(err)
	}
	fixed, err := fw.OptimizeMulticore(assign, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	if fixed.Feasible && ex.BestValue < fixed.Pall-1e-9 {
		t.Errorf("co-design optimum %v below fixed-placement %v", ex.BestValue, fixed.Pall)
	}
}
