package fabric

import (
	"bytes"
	"encoding/json"
	"errors"
	"math/rand"
	"os"
	"path/filepath"
	"testing"
)

// specVariant returns a distinct valid JobSpec per index, for journals that
// need more than one job.
func specVariant(i int) JobSpec {
	return JobSpec{N: 3 + i%4, Seed: int64(i), Shards: 1 + i%3}
}

func mustAppend(t *testing.T, j *Journal, recs ...Record) {
	t.Helper()
	for _, rec := range recs {
		if err := j.Append(rec); err != nil {
			t.Fatal(err)
		}
	}
}

// recordsEqual compares record slices structurally (Spec is a pointer, so
// == is useless and reflect would compare pointer targets anyway; JSON is
// the journal's own canonical form).
func recordsEqual(a, b []Record) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		aj, _ := json.Marshal(a[i])
		bj, _ := json.Marshal(b[i])
		if !bytes.Equal(aj, bj) {
			return false
		}
	}
	return true
}

func TestJournalAppendReplayRoundTrip(t *testing.T) {
	dir := t.TempDir()
	j, err := OpenJournal(dir, JournalOptions{})
	if err != nil {
		t.Fatal(err)
	}
	spec := specVariant(0)
	recs := []Record{
		{Op: OpSubmit, Spec: &spec},
		{Op: OpComplete, Job: spec.ID(), Shard: 0},
		{Op: OpComplete, Job: spec.ID(), Shard: 2},
	}
	mustAppend(t, j, recs...)
	if st := j.Stats(); st.Appends != 3 || st.Fsyncs < 3 {
		t.Fatalf("stats after 3 synced appends: %+v", st)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	j2, err := OpenJournal(dir, JournalOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	if got := j2.Replayed(); !recordsEqual(got, recs) {
		t.Fatalf("replay mismatch:\n got %+v\nwant %+v", got, recs)
	}
	if st := j2.Stats(); st.LogRecords != 3 || st.SnapshotRecords != 0 || st.TornBytes != 0 {
		t.Fatalf("replay stats %+v", st)
	}
}

func TestJournalTornTailTruncatedAndWritable(t *testing.T) {
	dir := t.TempDir()
	j, err := OpenJournal(dir, JournalOptions{})
	if err != nil {
		t.Fatal(err)
	}
	spec := specVariant(1)
	recs := []Record{
		{Op: OpSubmit, Spec: &spec},
		{Op: OpComplete, Job: spec.ID(), Shard: 1},
	}
	mustAppend(t, j, recs...)
	j.Close()

	logPath := filepath.Join(dir, "journal.log")
	whole, err := os.ReadFile(logPath)
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name string
		tail []byte
	}{
		{"half-frame", whole[:9]}, // length prefix + torn payload
		{"bad-length", []byte{0xff, 0xff, 0xff, 0xff, 1, 2, 3, 4}},
		{"bad-crc", append(append([]byte{4, 0, 0, 0}, 0xde, 0xad, 0xbe, 0xef), []byte("true")...)},
		{"garbage", []byte("\x00\x01partial record bytes")},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if err := os.WriteFile(logPath, append(append([]byte{}, whole...), tc.tail...), 0o644); err != nil {
				t.Fatal(err)
			}
			j2, err := OpenJournal(dir, JournalOptions{})
			if err != nil {
				t.Fatalf("torn tail failed open: %v", err)
			}
			if got := j2.Replayed(); !recordsEqual(got, recs) {
				t.Fatalf("torn replay: got %d record(s), want the %d whole ones", len(got), len(recs))
			}
			if st := j2.Stats(); st.TornBytes != int64(len(tc.tail)) {
				t.Fatalf("TornBytes = %d, want %d", st.TornBytes, len(tc.tail))
			}
			// The tail was truncated away: a new append frames cleanly and the
			// next open sees whole records only.
			extra := Record{Op: OpComplete, Job: spec.ID(), Shard: 0}
			mustAppend(t, j2, extra)
			j2.Close()
			j3, err := OpenJournal(dir, JournalOptions{})
			if err != nil {
				t.Fatal(err)
			}
			defer j3.Close()
			if got := j3.Replayed(); !recordsEqual(got, append(append([]Record{}, recs...), extra)) {
				t.Fatalf("post-truncation append lost: %+v", got)
			}
			// Restore the pristine log for the next case.
			j3.Close()
			if err := os.WriteFile(logPath, whole, 0o644); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestJournalSnapshotCorruptionIsFatal(t *testing.T) {
	dir := t.TempDir()
	j, err := OpenJournal(dir, JournalOptions{})
	if err != nil {
		t.Fatal(err)
	}
	spec := specVariant(2)
	mustAppend(t, j, Record{Op: OpSubmit, Spec: &spec})
	if err := j.Compact([]Record{{Op: OpSubmit, Spec: &spec}}); err != nil {
		t.Fatal(err)
	}
	j.Close()

	snapPath := filepath.Join(dir, "snapshot.log")
	data, err := os.ReadFile(snapPath)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-2] ^= 0xff // flip a payload byte: crc must catch it
	if err := os.WriteFile(snapPath, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenJournal(dir, JournalOptions{}); err == nil {
		t.Fatal("corrupt snapshot opened silently; base state would be lost")
	}
}

func TestJournalCompactionPreservesState(t *testing.T) {
	dir := t.TempDir()
	j, err := OpenJournal(dir, JournalOptions{Sync: SyncNever, CompactEvery: 4})
	if err != nil {
		t.Fatal(err)
	}
	m := NewManager()
	if _, err := m.Recover(j); err != nil {
		t.Fatal(err)
	}
	spec := JobSpec{N: 6, Seed: 7, Shards: 3}
	id, created, err := m.Submit(spec)
	if err != nil || !created {
		t.Fatalf("submit: id=%s created=%v err=%v", id, created, err)
	}
	for shard := 0; shard < 3; shard++ {
		if err := m.Complete(id, shard, "w"); err != nil {
			t.Fatal(err)
		}
	}
	// 1 submit + 3 completes = 4 appends ≥ CompactEvery: the journal must
	// have compacted (state now in the snapshot, log reset).
	if st := j.Stats(); st.Compactions != 1 {
		t.Fatalf("Compactions = %d after %d appends with CompactEvery=4, want 1", st.Compactions, st.Appends)
	}
	j.Close()

	j2, err := OpenJournal(dir, JournalOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	if st := j2.Stats(); st.SnapshotRecords != 4 || st.LogRecords != 0 {
		t.Fatalf("post-compaction open: %+v, want 4 snapshot records + empty log", st)
	}
	m2 := NewManager()
	rst, err := m2.Recover(j2)
	if err != nil {
		t.Fatal(err)
	}
	if rst.Jobs != 1 || rst.DoneShards != 3 {
		t.Fatalf("recovered %+v, want 1 job + 3 done shards", rst)
	}
	jst, ok := m2.Status(id)
	if !ok || !jst.Complete {
		t.Fatalf("recovered job status: ok=%v %+v", ok, jst)
	}
}

func TestManagerJournalWriteAheadSemantics(t *testing.T) {
	dir := t.TempDir()
	j, err := OpenJournal(dir, JournalOptions{})
	if err != nil {
		t.Fatal(err)
	}
	m := NewManager()
	if _, err := m.Recover(j); err != nil {
		t.Fatal(err)
	}
	spec := JobSpec{N: 4, Seed: 9, Shards: 2}
	id, _, err := m.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	if _, again, err := m.Submit(spec); err != nil || again {
		t.Fatalf("idempotent re-submit: created=%v err=%v", again, err)
	}
	if err := m.Complete(id, 0, "w1"); err != nil {
		t.Fatal(err)
	}
	appends := j.Stats().Appends
	// Duplicate transitions append nothing: a retried Complete for a done
	// shard and a re-Submit of a live job are both satisfied from memory.
	if err := m.Complete(id, 0, "w2"); err != nil {
		t.Fatal(err)
	}
	if _, _, err := m.Submit(spec); err != nil {
		t.Fatal(err)
	}
	if got := j.Stats().Appends; got != appends {
		t.Fatalf("duplicate transitions appended %d record(s)", got-appends)
	}
	// Journal failure refuses the transition and maps onto ErrJournal.
	j.Close() // appends now fail on the closed file
	if err := m.Complete(id, 1, "w1"); !errors.Is(err, ErrJournal) {
		t.Fatalf("complete on dead journal: %v, want ErrJournal", err)
	}
	// The refused transition was not applied.
	st, ok := m.Status(id)
	if !ok || st.Done != 1 {
		t.Fatalf("refused completion leaked into state: %+v", st)
	}
}

// TestJournalReplayProperty drives random Submit/Complete interleavings
// through a journal, tears the log at a random byte, and requires replay to
// produce exactly the surviving whole-record prefix — the property the
// torn-tail tolerance promises.
func TestJournalReplayProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(20260807))
	for trial := 0; trial < 40; trial++ {
		dir := t.TempDir()
		j, err := OpenJournal(dir, JournalOptions{Sync: SyncNever})
		if err != nil {
			t.Fatal(err)
		}
		var submitted []JobSpec
		var appended []Record
		for i, n := 0, 3+rng.Intn(10); i < n; i++ {
			if len(submitted) == 0 || rng.Intn(2) == 0 {
				spec := specVariant(rng.Intn(8)).normalized()
				submitted = append(submitted, spec)
				appended = append(appended, Record{Op: OpSubmit, Spec: &spec})
			} else {
				spec := submitted[rng.Intn(len(submitted))]
				appended = append(appended, Record{
					Op: OpComplete, Job: spec.ID(), Shard: rng.Intn(spec.Shards),
				})
			}
			mustAppend(t, j, appended[len(appended)-1])
		}
		j.Close()

		logPath := filepath.Join(dir, "journal.log")
		data, err := os.ReadFile(logPath)
		if err != nil {
			t.Fatal(err)
		}
		cut := rng.Intn(len(data) + 1)
		if err := os.WriteFile(logPath, data[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		j2, err := OpenJournal(dir, JournalOptions{})
		if err != nil {
			t.Fatalf("trial %d: open torn journal: %v", trial, err)
		}
		got := j2.Replayed()
		j2.Close()
		if !recordsEqual(got, appended[:len(got)]) {
			t.Fatalf("trial %d: replay is not a prefix: got %+v of %+v", trial, got, appended)
		}
		if cut == len(data) && len(got) != len(appended) {
			t.Fatalf("trial %d: untorn journal lost records: %d of %d", trial, len(got), len(appended))
		}
	}
}

// FuzzJournalReplay fuzzes the same prefix property with arbitrary op
// sequences and cut points, plus hostile log bytes via the write path.
func FuzzJournalReplay(f *testing.F) {
	f.Add([]byte{0, 1, 2, 3}, uint16(10))
	f.Add([]byte{7}, uint16(0))
	f.Add([]byte{0, 0, 255, 254, 9, 9, 9}, uint16(65535))
	f.Fuzz(func(t *testing.T, ops []byte, cut uint16) {
		if len(ops) > 32 {
			ops = ops[:32]
		}
		dir := t.TempDir()
		j, err := OpenJournal(dir, JournalOptions{Sync: SyncNever})
		if err != nil {
			t.Fatal(err)
		}
		var submitted []JobSpec
		var appended []Record
		for _, b := range ops {
			var rec Record
			if len(submitted) == 0 || b%2 == 0 {
				spec := specVariant(int(b / 2)).normalized()
				submitted = append(submitted, spec)
				rec = Record{Op: OpSubmit, Spec: &spec}
			} else {
				spec := submitted[int(b)%len(submitted)]
				rec = Record{Op: OpComplete, Job: spec.ID(), Shard: int(b) % spec.Shards}
			}
			if err := j.Append(rec); err != nil {
				t.Fatal(err)
			}
			appended = append(appended, rec)
		}
		j.Close()

		logPath := filepath.Join(dir, "journal.log")
		data, err := os.ReadFile(logPath)
		if err != nil {
			t.Fatal(err)
		}
		at := int(cut) % (len(data) + 1)
		if err := os.WriteFile(logPath, data[:at], 0o644); err != nil {
			t.Fatal(err)
		}
		j2, err := OpenJournal(dir, JournalOptions{})
		if err != nil {
			t.Fatalf("open torn journal: %v", err)
		}
		got := j2.Replayed()
		j2.Close()
		if len(got) > len(appended) {
			t.Fatalf("replay invented records: %d > %d", len(got), len(appended))
		}
		if !recordsEqual(got, appended[:len(got)]) {
			t.Fatalf("replay is not an exact prefix (%d of %d records)", len(got), len(appended))
		}
		if at == len(data) && len(got) != len(appended) {
			t.Fatalf("untorn journal lost records: %d of %d", len(got), len(appended))
		}
		// A recovered Manager must accept whatever prefix survived.
		m := NewManager()
		if _, err := m.Recover(j2); err != nil {
			t.Fatalf("recover from torn prefix: %v", err)
		}
	})
}

// TestJournalRejectsEmptyDirAndBadDir pins Open's error paths.
func TestJournalRejectsEmptyDirAndBadDir(t *testing.T) {
	if _, err := OpenJournal("", JournalOptions{}); err == nil {
		t.Fatal("empty journal dir accepted")
	}
	file := filepath.Join(t.TempDir(), "plain")
	if err := os.WriteFile(file, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenJournal(filepath.Join(file, "sub"), JournalOptions{}); err == nil {
		t.Fatal("journal dir under a plain file accepted")
	}
}

// TestJournalSyncPolicies smoke-tests that both policies persist records
// across clean close/reopen (only SyncAlways promises power-loss safety,
// which a unit test cannot stage; process-death safety it can).
func TestJournalSyncPolicies(t *testing.T) {
	for _, policy := range []SyncPolicy{SyncAlways, SyncNever} {
		dir := t.TempDir()
		j, err := OpenJournal(dir, JournalOptions{Sync: policy})
		if err != nil {
			t.Fatal(err)
		}
		spec := specVariant(3)
		mustAppend(t, j, Record{Op: OpSubmit, Spec: &spec})
		fsyncs := j.Stats().Fsyncs
		if policy == SyncAlways && fsyncs != 1 {
			t.Fatalf("SyncAlways: %d fsyncs after 1 append, want 1", fsyncs)
		}
		if policy == SyncNever && fsyncs != 0 {
			t.Fatalf("SyncNever: %d fsyncs after 1 append, want 0", fsyncs)
		}
		j.Close()
		j2, err := OpenJournal(dir, JournalOptions{Sync: policy})
		if err != nil {
			t.Fatal(err)
		}
		if got := j2.Replayed(); len(got) != 1 {
			t.Fatalf("policy %v: %d record(s) replayed, want 1", policy, len(got))
		}
		j2.Close()
	}
}
