package fabric

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/engine"
	"repro/internal/resilience"
)

// fastClient returns a protocol client with millisecond backoff so
// exhaustion tests don't wait out real schedules.
func fastClient(baseURL string) *Client {
	return NewClientWithOptions(baseURL, ClientOptions{
		Policy: resilience.Policy{MaxAttempts: 4, BaseDelay: time.Millisecond, MaxDelay: 4 * time.Millisecond},
	})
}

// TestClientRetriesTransient500s pins the protocol client's retry loop:
// two 500s followed by a real coordinator answer make Submit succeed, with
// the retries visible in the stats.
func TestClientRetriesTransient500s(t *testing.T) {
	m := NewManager()
	inner := Handler(m)
	var calls atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) <= 2 {
			http.Error(w, "transient", http.StatusInternalServerError)
			return
		}
		inner.ServeHTTP(w, r)
	}))
	defer srv.Close()

	cl := fastClient(srv.URL)
	jobID, err := cl.Submit(clusterSpec)
	if err != nil {
		t.Fatalf("Submit through two 500s: %v", err)
	}
	if jobID == "" {
		t.Fatal("empty job ID")
	}
	if st := cl.Retryer().Stats(); st.Retries != 2 {
		t.Fatalf("retry stats %+v, want 2 retries", st)
	}
}

// TestClientProtocolVerdictsAreDefinitive pins the classification at the
// fabric edge: a 409 heartbeat answer surfaces as ErrLeaseLost from a
// single request — never retried, never counted against the breaker.
func TestClientProtocolVerdictsAreDefinitive(t *testing.T) {
	m := NewManager()
	srv := httptest.NewServer(Handler(m))
	defer srv.Close()

	cl := fastClient(srv.URL)
	if _, err := cl.Submit(clusterSpec); err != nil {
		t.Fatal(err)
	}
	err := cl.Heartbeat(Lease{Job: "nope", Shard: 0}, "w", time.Second)
	if !errors.Is(err, ErrUnknownJob) {
		t.Fatalf("heartbeat on unknown job: %v, want ErrUnknownJob", err)
	}
	lease, ok, err := cl.Acquire("", "w1", MinTTL)
	if err != nil || !ok {
		t.Fatalf("acquire: %v ok=%v", err, ok)
	}
	if err := cl.Heartbeat(lease, "thief", MinTTL); !errors.Is(err, ErrLeaseLost) {
		t.Fatalf("heartbeat as non-owner: %v, want ErrLeaseLost", err)
	}
	if st := cl.Retryer().Stats(); st.Retries != 0 {
		t.Fatalf("definitive verdicts were retried: %+v", st)
	}
	if cl.Breaker().State() != resilience.Closed {
		t.Fatal("definitive verdicts tripped the breaker")
	}
}

// TestDrainWorkerRetriesFailedJobListing is the regression test for the
// drain-exit bug: a worker in drain mode whose "is everything complete?"
// job listing fails must NOT report a clean drain — the failure counts
// against the drain error budget like any other coordinator failure, and
// sustained failure surfaces as an error.
func TestDrainWorkerRetriesFailedJobListing(t *testing.T) {
	var listings atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		switch {
		case r.Method == http.MethodPost && strings.HasSuffix(r.URL.Path, "/acquire"):
			w.WriteHeader(http.StatusNoContent) // no leasable work
		case r.Method == http.MethodGet && strings.HasSuffix(r.URL.Path, "/jobs"):
			listings.Add(1)
			http.Error(w, "listing down", http.StatusInternalServerError)
		default:
			http.NotFound(w, r)
		}
	}))
	defer srv.Close()

	w := &Worker{
		Coordinator: srv.URL, Name: "drainer", TTL: MinTTL, Poll: 5 * time.Millisecond,
		Drain: true, drainErrLimit: 2,
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	stats, err := w.Run(ctx)
	if err == nil {
		t.Fatal("drain worker reported a clean drain while the job listing was failing")
	}
	if ctx.Err() != nil {
		t.Fatalf("worker did not give up on its own: %v", err)
	}
	if stats.Shards != 0 {
		t.Fatalf("stats %+v", stats)
	}
	// The client retries each listing internally, so the worker's two
	// budgeted attempts are a lower bound on requests observed.
	if n := listings.Load(); n < 2 {
		t.Fatalf("job listing hit %d time(s); want the worker to retry it", n)
	}
}

// TestDrainWorkerSurvivesTransientListingFailure is the healthy half of
// the drain fix: a listing that fails once and then answers "all complete"
// still ends in a clean drain instead of an error (or a premature one).
func TestDrainWorkerSurvivesTransientListingFailure(t *testing.T) {
	var listings atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		switch {
		case r.Method == http.MethodPost && strings.HasSuffix(r.URL.Path, "/acquire"):
			w.WriteHeader(http.StatusNoContent)
		case r.Method == http.MethodGet && strings.HasSuffix(r.URL.Path, "/jobs"):
			// The worker's client retries 500s internally (4 attempts per
			// listing), so fail the entire first listing call, then heal.
			if listings.Add(1) <= 4 {
				http.Error(w, "transient", http.StatusInternalServerError)
				return
			}
			w.Header().Set("Content-Type", "application/json")
			w.Write([]byte(`{"jobs":[]}`))
		default:
			http.NotFound(w, r)
		}
	}))
	defer srv.Close()

	w := &Worker{
		Coordinator: srv.URL, Name: "drainer", TTL: MinTTL, Poll: 5 * time.Millisecond,
		Drain: true, drainErrLimit: 5,
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if _, err := w.Run(ctx); err != nil {
		t.Fatalf("drain after transient listing failure: %v", err)
	}
	if n := listings.Load(); n < 5 {
		t.Fatalf("listing hit %d time(s); want the first call retried and a second call to succeed", n)
	}
}

// TestWorkerAbandonsLostLease pins the partition bound: a heartbeat
// answered 409 (another worker owns the shard) abandons the shard between
// scenarios — counted in LeasesLost — instead of burning through the whole
// range, and the worker still drains the job to completion via later
// leases.
func TestWorkerAbandonsLostLease(t *testing.T) {
	c := newCluster(t)
	// Forge one lost lease: the first heartbeat is answered 409 regardless
	// of the manager's actual lease table — what a worker sees after a
	// partition long enough for its shard to be stolen — and later
	// heartbeats flow normally so the re-stolen lease can finish. Scenario
	// checkpoints land in the shared store either way, so the second lease
	// resumes past everything the first one computed.
	var forged atomic.Bool
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/shards/heartbeat", func(w http.ResponseWriter, r *http.Request) {
		if forged.CompareAndSwap(false, true) {
			w.Header().Set("Content-Type", "application/json")
			w.WriteHeader(http.StatusConflict)
			w.Write([]byte(`{"error":"fabric: lease lost"}`))
			return
		}
		c.srv.Config.Handler.ServeHTTP(w, r)
	})
	mux.Handle("/", c.srv.Config.Handler)
	srv := httptest.NewServer(mux)
	defer srv.Close()

	cl := NewClient(srv.URL, nil)
	jobID, err := cl.Submit(JobSpec{N: 6, Seed: 42, Shards: 1})
	if err != nil {
		t.Fatal(err)
	}
	w := &Worker{
		Coordinator: srv.URL, Name: "partitioned",
		TTL: 150 * time.Millisecond, Poll: 20 * time.Millisecond,
		Throttle: 30 * time.Millisecond, Drain: true,
	}
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	stats, err := w.Run(ctx)
	if err != nil {
		t.Fatalf("worker: %v", err)
	}
	if stats.LeasesLost == 0 {
		t.Fatalf("stats %+v: no lease recorded as lost despite 409 heartbeats", stats)
	}
	awaitComplete(t, cl, jobID, 5*time.Second)
}

// TestWorkerSurvivesScenarioPanic pins panic isolation: a scenario whose
// kernel panics costs one shard attempt (retried on a later lease), never
// the worker process, and the panic is counted.
func TestWorkerSurvivesScenarioPanic(t *testing.T) {
	c := newCluster(t)
	cl := NewClient(c.srv.URL, nil)
	jobID, err := cl.Submit(JobSpec{N: 6, Seed: 42, Shards: 1})
	if err != nil {
		t.Fatal(err)
	}
	var fired atomic.Bool
	w := &Worker{
		Coordinator: c.srv.URL, Name: "panicky", TTL: time.Second,
		Poll: 10 * time.Millisecond, Drain: true,
		runFn: func(s engine.Scenario, rc engine.RunConfig) (*engine.Result, error) {
			if fired.CompareAndSwap(false, true) {
				panic("injected kernel fault")
			}
			return engine.RunWith(s, rc)
		},
	}
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	stats, err := w.Run(ctx)
	if err != nil {
		t.Fatalf("worker died: %v", err)
	}
	if stats.Panics != 1 {
		t.Fatalf("stats %+v, want exactly the one injected panic", stats)
	}
	if stats.Shards == 0 {
		t.Fatalf("stats %+v: job never completed after the panic", stats)
	}
	awaitComplete(t, cl, jobID, 5*time.Second)
}
