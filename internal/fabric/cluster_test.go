package fabric

import (
	"context"
	"encoding/json"
	"errors"
	"math"
	"net"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/engine"
	"repro/internal/store"
	"repro/internal/store/httpstore"
)

// clusterSpec mirrors the cmd/sweep golden arguments (-n 6 -seed 42
// -exhaustive) so these tests exercise the exact sweep the repo's
// bit-identity goldens pin, split three ways.
var clusterSpec = JobSpec{N: 6, Seed: 42, Exhaustive: true, Shards: 3}

// coordinatorHandler is the coordinator wiring cmd/served mounts: the lease
// protocol and the HTTP store endpoints over one shared disk store.
func coordinatorHandler(m *Manager, st store.Backend) http.Handler {
	mux := http.NewServeMux()
	mux.Handle("/v1/shards/", Handler(m))
	mux.Handle("/v1/store/", httpstore.Handler(st))
	return mux
}

type cluster struct {
	srv *httptest.Server
	mgr *Manager
	st  *store.Store
	dir string
}

func newCluster(t *testing.T) *cluster {
	t.Helper()
	dir := t.TempDir()
	st, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	m := NewManager()
	srv := httptest.NewServer(coordinatorHandler(m, st))
	t.Cleanup(srv.Close)
	return &cluster{srv: srv, mgr: m, st: st, dir: dir}
}

// reportSummary flattens the report-visible fields of a result, mirroring
// the engine's cold/warm/resume equality checks. DiskHits is deliberately
// absent: it is the one counter allowed to differ between store tiers (and
// between which worker happened to compute a scenario).
type reportSummary struct {
	Name      string
	Seed      int64
	AppCount  int
	Best      string
	ValueBits uint64
	Found     bool
	Evaluated int
	Hits      int64
	Misses    int64
	ExhBest   string
	ExhBits   uint64
	ExhEval   int
	ExhFeas   int
}

func summarizeResult(t *testing.T, r *engine.Result) reportSummary {
	t.Helper()
	if r == nil {
		t.Fatal("nil result in assembled sweep")
	}
	s := reportSummary{
		Name:      r.Name,
		Seed:      r.Seed,
		AppCount:  r.AppCount,
		ValueBits: math.Float64bits(r.BestValue),
		Found:     r.FoundBest,
		Evaluated: r.Evaluated,
		Hits:      r.CacheStats.Hits,
		Misses:    r.CacheStats.Misses,
	}
	if r.FoundBest {
		s.Best = r.Best.String()
	}
	if ex := r.Exhaustive; ex != nil {
		s.ExhBest = ex.Best.String()
		s.ExhBits = math.Float64bits(ex.BestValue)
		s.ExhEval = ex.Evaluated
		s.ExhFeas = ex.Feasible
	}
	return s
}

func mustMatch(t *testing.T, label string, got, want []*engine.Result) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d results, want %d", label, len(got), len(want))
	}
	for i := range got {
		g, w := summarizeResult(t, got[i]), summarizeResult(t, want[i])
		if g != w {
			t.Fatalf("%s: scenario %d diverged:\n got %+v\nwant %+v", label, i, g, w)
		}
	}
}

// baseline runs the spec's grid fully in memory, single process — the
// reference every distributed assembly must match bit for bit.
func baseline(t *testing.T, spec JobSpec) ([]engine.Scenario, []*engine.Result) {
	t.Helper()
	grid, err := spec.Grid()
	if err != nil {
		t.Fatal(err)
	}
	scenarios, err := grid.Scenarios()
	if err != nil {
		t.Fatal(err)
	}
	want, err := engine.Sweep(engine.Config{Workers: 2}, scenarios)
	if err != nil {
		t.Fatal(err)
	}
	return scenarios, want
}

// assemble renders the job the way cmd/sweep -remote does: a resume-mode
// sweep whose store is the coordinator's HTTP backend.
func assemble(t *testing.T, baseURL string, scenarios []engine.Scenario) []*engine.Result {
	t.Helper()
	got, err := engine.Sweep(engine.Config{
		Workers: 2,
		Store:   httpstore.New(baseURL, nil),
		Resume:  true,
	}, scenarios)
	if err != nil {
		t.Fatal(err)
	}
	return got
}

func awaitComplete(t *testing.T, cl *Client, jobID string, timeout time.Duration) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for {
		st, err := cl.Status(jobID)
		if err == nil && st.Complete {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s not complete after %v (last status %+v, err %v)", jobID, timeout, st, err)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func TestClusterThreeWorkersBitIdentical(t *testing.T) {
	scenarios, want := baseline(t, clusterSpec)
	c := newCluster(t)
	cl := NewClient(c.srv.URL, nil)
	jobID, err := cl.Submit(clusterSpec)
	if err != nil {
		t.Fatal(err)
	}

	var (
		wg     sync.WaitGroup
		mu     sync.Mutex
		shards int
		ran    int
	)
	for _, name := range []string{"w1", "w2", "w3"} {
		wg.Add(1)
		go func(name string) {
			defer wg.Done()
			w := &Worker{Coordinator: c.srv.URL, Name: name, TTL: 2 * time.Second, Drain: true}
			stats, err := w.Run(context.Background())
			if err != nil {
				t.Errorf("worker %s: %v", name, err)
			}
			mu.Lock()
			shards += stats.Shards
			ran += stats.Scenarios
			mu.Unlock()
		}(name)
	}
	wg.Wait()
	if shards != 3 || ran != clusterSpec.N {
		t.Fatalf("cluster ran %d shard(s), %d scenario(s); want 3, %d", shards, ran, clusterSpec.N)
	}
	awaitComplete(t, cl, jobID, time.Second)

	got := assemble(t, c.srv.URL, scenarios)
	for _, r := range got {
		if !r.Resumed {
			t.Fatalf("scenario %s recomputed during assembly; want checkpoint resume", r.Name)
		}
	}
	mustMatch(t, "3-worker distributed vs single-process", got, want)

	// A checkpoint record corrupted at rest reads as a miss through the HTTP
	// backend: re-assembly recomputes exactly that scenario and the output
	// stays bit-identical.
	if n := corruptOneCheckpoint(t, c.dir); n != 1 {
		t.Fatalf("corrupted %d checkpoint records, want 1", n)
	}
	healed := assemble(t, c.srv.URL, scenarios)
	recomputed := 0
	for _, r := range healed {
		if !r.Resumed {
			recomputed++
		}
	}
	if recomputed != 1 {
		t.Fatalf("%d scenario(s) recomputed after corrupting one record, want 1", recomputed)
	}
	mustMatch(t, "assembly over corrupt record vs single-process", healed, want)
}

// corruptOneCheckpoint overwrites the first (path-ordered) per-scenario
// checkpoint record under dir with garbage and reports how many it hit.
func corruptOneCheckpoint(t *testing.T, dir string) int {
	t.Helper()
	var paths []string
	err := filepath.WalkDir(dir, func(path string, d os.DirEntry, err error) error {
		if err != nil || d.IsDir() || !strings.HasSuffix(path, ".json") {
			return err
		}
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		var env struct {
			Key string `json:"key"`
		}
		if json.Unmarshal(data, &env) == nil && strings.HasPrefix(env.Key, "r/") {
			paths = append(paths, path)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) == 0 {
		t.Fatal("no checkpoint records found to corrupt")
	}
	sort.Strings(paths)
	if err := os.WriteFile(paths[0], []byte("{ not a record"), 0o644); err != nil {
		t.Fatal(err)
	}
	return 1
}

func TestClusterWorkerKilledMidShardHeals(t *testing.T) {
	scenarios, want := baseline(t, clusterSpec)
	c := newCluster(t)
	cl := NewClient(c.srv.URL, nil)
	jobID, err := cl.Submit(clusterSpec)
	if err != nil {
		t.Fatal(err)
	}

	// The victim leases shard 0 on a short TTL, checkpoints only the first
	// scenario of its range, and dies: no heartbeat, no Complete.
	victimTTL := MinTTL
	lease, ok, err := cl.Acquire(jobID, "victim", victimTTL)
	if err != nil || !ok || lease.Shard != 0 {
		t.Fatalf("victim acquire: lease=%+v ok=%v err=%v", lease, ok, err)
	}
	lo, hi := engine.ShardRange(lease.Shard, lease.Shards, len(scenarios))
	if hi-lo < 2 {
		t.Fatalf("shard 0 spans [%d, %d); test needs at least 2 scenarios to die between", lo, hi)
	}
	backend := httpstore.New(c.srv.URL, nil)
	if _, err := engine.RunWith(scenarios[lo], engine.RunConfig{Store: backend, Resume: true}); err != nil {
		t.Fatal(err)
	}

	// The lease must expire before anyone can steal the orphaned shard.
	expiryDeadline := time.Now().Add(5 * time.Second)
	for {
		st, err := cl.Status(jobID)
		if err == nil && st.Shards[0].State == "expired" {
			break
		}
		if time.Now().After(expiryDeadline) {
			t.Fatalf("victim lease never expired: %+v", st)
		}
		time.Sleep(10 * time.Millisecond)
	}

	// One surviving worker drains the job: it steals the expired shard,
	// resumes past the victim's checkpointed scenario, and finishes the rest.
	w := &Worker{Coordinator: c.srv.URL, Name: "survivor", TTL: time.Second, Drain: true}
	stats, err := w.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if stats.Shards != 3 {
		t.Fatalf("survivor completed %d shard(s), want all 3", stats.Shards)
	}
	awaitComplete(t, cl, jobID, time.Second)

	got := assemble(t, c.srv.URL, scenarios)
	mustMatch(t, "kill-mid-shard distributed vs single-process", got, want)
}

func TestClusterCoordinatorRestartWithLiveWorkers(t *testing.T) {
	scenarios, want := baseline(t, clusterSpec)

	dir := t.TempDir()
	st, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	baseURL := "http://" + addr
	srvA := &http.Server{Handler: coordinatorHandler(NewManager(), st)}
	go srvA.Serve(ln)

	cl := NewClient(baseURL, nil)
	jobID, err := cl.Submit(clusterSpec)
	if err != nil {
		t.Fatal(err)
	}

	// A persistent (non-drain) worker throttled enough that the job is still
	// mid-flight when the coordinator dies under it.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	workerDone := make(chan error, 1)
	go func() {
		w := &Worker{
			Coordinator: baseURL, Name: "steady",
			TTL: 500 * time.Millisecond, Poll: 50 * time.Millisecond,
			Throttle: 30 * time.Millisecond,
		}
		_, err := w.Run(ctx)
		workerDone <- err
	}()

	// Wait for real progress, then kill coordinator A mid-job.
	progressDeadline := time.Now().Add(30 * time.Second)
	for {
		jst, err := cl.Status(jobID)
		if err == nil && jst.Done >= 1 {
			break
		}
		if time.Now().After(progressDeadline) {
			t.Fatalf("no shard completed before restart (err %v)", err)
		}
		time.Sleep(10 * time.Millisecond)
	}
	srvA.Close()

	// Coordinator B: fresh (empty) lease table, same disk store, same
	// address. The worker has been retrying its polls the whole time.
	var ln2 net.Listener
	rebindDeadline := time.Now().Add(5 * time.Second)
	for {
		ln2, err = net.Listen("tcp", addr)
		if err == nil {
			break
		}
		if time.Now().After(rebindDeadline) {
			t.Fatalf("rebind %s: %v", addr, err)
		}
		time.Sleep(20 * time.Millisecond)
	}
	srvB := &http.Server{Handler: coordinatorHandler(NewManager(), st)}
	go srvB.Serve(ln2)
	defer srvB.Close()

	// Re-submitting the same spec lands on the same content-hashed job ID;
	// shards the dead coordinator had marked done are re-leased, but every
	// checkpointed scenario resumes from the store instead of recomputing.
	// The first attempts may ride a stale keep-alive connection to the dead
	// coordinator — drivers retry, so the test does too.
	var jobID2 string
	resubmitDeadline := time.Now().Add(5 * time.Second)
	for {
		jobID2, err = cl.Submit(clusterSpec)
		if err == nil {
			break
		}
		if time.Now().After(resubmitDeadline) {
			t.Fatalf("re-submit after restart: %v", err)
		}
		time.Sleep(20 * time.Millisecond)
	}
	if jobID2 != jobID {
		t.Fatalf("job ID changed across coordinator restart: %q vs %q", jobID2, jobID)
	}
	awaitComplete(t, cl, jobID, 30*time.Second)

	cancel()
	if err := <-workerDone; !errors.Is(err, context.Canceled) {
		t.Fatalf("worker exit: %v, want context.Canceled", err)
	}

	got := assemble(t, baseURL, scenarios)
	mustMatch(t, "coordinator-restart distributed vs single-process", got, want)
}
