package fabric

import (
	"context"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/chaos"
	"repro/internal/store"
	"repro/internal/store/httpstore"
)

// TestClusterChaosMatrix drives the full distributed sweep through a matrix
// of seeded store-plane fault regimes — sustained 500s, corrupted read
// payloads, added latency with background flakiness, and a mid-run
// blackhole burst where the store stops answering at all — and requires the
// assembled results to stay bit-identical to the single-process baseline in
// every cell. The store is the only plane injected here: every store fault
// must degrade to a retry, a recompute, or a dropped best-effort write, so
// the lease protocol keeps converging and the numbers cannot drift.
// (Control-plane faults have dedicated tests: the worker resilience suite
// and the cmd/sweep chaos golden.)
func TestClusterChaosMatrix(t *testing.T) {
	scenarios, want := baseline(t, clusterSpec)
	cases := []struct {
		name string
		cfg  chaos.Config
		// armAfter > 0 blackholes the next burst requests (aborted with no
		// response) once the store plane has served armAfter of them —
		// mid-run, while workers are inside their shards.
		armAfter int64
		burst    int
	}{
		{name: "errors-30pct", cfg: chaos.Config{Seed: 101, ErrRate: 0.3}},
		{name: "corrupt-reads-20pct", cfg: chaos.Config{Seed: 102, CorruptRate: 0.2}},
		{name: "slow-and-flaky", cfg: chaos.Config{Seed: 103, ErrRate: 0.1, Latency: 2 * time.Millisecond}},
		{name: "blackhole-burst", cfg: chaos.Config{Seed: 104, ErrRate: 0.1}, armAfter: 20, burst: 50},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			t.Parallel()
			st, err := store.Open(t.TempDir())
			if err != nil {
				t.Fatal(err)
			}
			mw := chaos.NewMiddleware(httpstore.Handler(st), tc.cfg)
			storePlane := http.Handler(mw)
			if tc.armAfter > 0 {
				var ops atomic.Int64
				var armed atomic.Bool
				storePlane = http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
					if ops.Add(1) == tc.armAfter && armed.CompareAndSwap(false, true) {
						mw.Blackhole(tc.burst)
					}
					mw.ServeHTTP(w, r)
				})
			}
			mux := http.NewServeMux()
			mux.Handle("/v1/shards/", Handler(NewManager()))
			mux.Handle("/v1/store/", storePlane)
			srv := httptest.NewServer(mux)
			defer srv.Close()

			cl := NewClient(srv.URL, nil)
			jobID, err := cl.Submit(clusterSpec)
			if err != nil {
				t.Fatal(err)
			}
			var wg sync.WaitGroup
			for _, name := range []string{tc.name + "-a", tc.name + "-b"} {
				wg.Add(1)
				go func(name string) {
					defer wg.Done()
					w := &Worker{Coordinator: srv.URL, Name: name, TTL: time.Second, Drain: true}
					if _, err := w.Run(context.Background()); err != nil {
						t.Errorf("worker %s: %v", name, err)
					}
				}(name)
			}
			wg.Wait()
			awaitComplete(t, cl, jobID, 10*time.Second)

			// Assembly reads through the same chaotic store plane: failed or
			// mangled checkpoint reads degrade to recomputing that scenario.
			got := assemble(t, srv.URL, scenarios)
			mustMatch(t, tc.name+" vs single-process", got, want)

			s := mw.Stats()
			if s.Ops == 0 {
				t.Fatal("chaos middleware saw no traffic")
			}
			if tc.cfg.ErrRate > 0 && s.Errors == 0 {
				t.Fatalf("chaos stats %+v: ErrRate %v never fired", s, tc.cfg.ErrRate)
			}
			if tc.cfg.CorruptRate > 0 && s.Corruptions == 0 {
				t.Fatalf("chaos stats %+v: CorruptRate %v never fired", s, tc.cfg.CorruptRate)
			}
			if tc.armAfter > 0 && s.Blackholed == 0 {
				t.Fatalf("chaos stats %+v: blackhole burst never fired", s)
			}
		})
	}
}
