package fabric

import (
	"encoding/json"
	"errors"
	"strings"
	"testing"
	"time"

	"repro/internal/sched"
)

// fakeClock drives a Manager deterministically through lease expiry.
type fakeClock struct{ t time.Time }

func (c *fakeClock) now() time.Time          { return c.t }
func (c *fakeClock) advance(d time.Duration) { c.t = c.t.Add(d) }
func newTestManager() (*Manager, *fakeClock) {
	m := NewManager()
	clk := &fakeClock{t: time.Unix(1_000_000, 0)}
	m.now = clk.now
	return m, clk
}

func TestSubmitIdempotentAndValidated(t *testing.T) {
	m, _ := newTestManager()
	spec := JobSpec{N: 6, Seed: 42, Shards: 3}
	id, created, err := m.Submit(spec)
	if err != nil || !created {
		t.Fatalf("first Submit: id=%q created=%v err=%v", id, created, err)
	}
	id2, created2, err := m.Submit(spec)
	if err != nil || created2 || id2 != id {
		t.Fatalf("re-Submit not idempotent: id=%q created=%v err=%v", id2, created2, err)
	}
	// Defaults normalize into the identity: naming them explicitly is the
	// same job (the CLI fills flag defaults in, other drivers may not).
	id3, created3, _ := m.Submit(JobSpec{
		N: 6, Seed: 42, Shards: 3, Apps: 3, MaxM: 6, Starts: 2,
		Tol: 0.01, Platforms: 1, Objective: "timing", Budget: "quick",
	})
	if created3 || id3 != id {
		t.Fatalf("normalized spec got a fresh job: %q vs %q", id3, id)
	}

	for _, bad := range []JobSpec{
		{N: 0},
		{N: MaxScenarios + 1},
		{N: 5, MaxM: MaxMaxM + 1},
		{N: 5, Apps: MaxApps + 1},
		{N: 5, Starts: MaxStarts + 1},
		{N: 5, Shards: MaxShards + 1},
		{N: 5, Objective: "psychic"},
		{N: 5, Budget: "xl"},
		{N: 5, Platforms: 99},
		{N: 5, Tol: -1},
	} {
		if _, _, err := m.Submit(bad); err == nil {
			t.Errorf("Submit(%+v) accepted", bad)
		}
	}
}

func TestShardsClampedToScenarios(t *testing.T) {
	m, _ := newTestManager()
	id, _, err := m.Submit(JobSpec{N: 2, Seed: 1, Shards: 10})
	if err != nil {
		t.Fatal(err)
	}
	st, _ := m.Status(id)
	if len(st.Shards) != 2 {
		t.Fatalf("10 shards over 2 scenarios not clamped: %d", len(st.Shards))
	}
	if st.Shards[0].Lo != 0 || st.Shards[0].Hi != 1 || st.Shards[1].Lo != 1 || st.Shards[1].Hi != 2 {
		t.Fatalf("shard ranges wrong: %+v", st.Shards)
	}
}

func TestLeaseLifecycle(t *testing.T) {
	m, clk := newTestManager()
	id, _, _ := m.Submit(JobSpec{N: 6, Seed: 42, Shards: 3})

	l1, ok := m.Acquire("", "w1", time.Second)
	if !ok || l1.Job != id || l1.Shard != 0 || l1.Shards != 3 {
		t.Fatalf("first acquire: %+v ok=%v", l1, ok)
	}
	l2, ok := m.Acquire(id, "w2", time.Second)
	if !ok || l2.Shard != 1 {
		t.Fatalf("second acquire: %+v ok=%v", l2, ok)
	}
	l3, ok := m.Acquire(id, "w3", time.Second)
	if !ok || l3.Shard != 2 {
		t.Fatalf("third acquire: %+v ok=%v", l3, ok)
	}
	if _, ok := m.Acquire(id, "w4", time.Second); ok {
		t.Fatal("fourth acquire granted a shard on a fully leased job")
	}

	// Heartbeats extend only the owner's lease.
	if err := m.Heartbeat(id, 0, "w1", time.Second); err != nil {
		t.Fatalf("owner heartbeat: %v", err)
	}
	if err := m.Heartbeat(id, 0, "w2", time.Second); !errors.Is(err, ErrLeaseLost) {
		t.Fatalf("foreign heartbeat error %v, want ErrLeaseLost", err)
	}
	if err := m.Heartbeat("job-nope", 0, "w1", time.Second); !errors.Is(err, ErrUnknownJob) {
		t.Fatalf("unknown-job heartbeat error %v", err)
	}

	if err := m.Complete(id, 0, "w1"); err != nil {
		t.Fatal(err)
	}
	if err := m.Complete(id, 0, "w1"); err != nil {
		t.Fatalf("idempotent complete: %v", err)
	}
	st, _ := m.Status(id)
	if st.Done != 1 || st.Leased != 2 || st.Complete {
		t.Fatalf("status after one complete: %+v", st)
	}

	// A done shard is never re-leased.
	if l, ok := m.Acquire(id, "w4", time.Second); ok && l.Shard == 0 {
		t.Fatal("done shard re-leased")
	}
	_ = clk
}

func TestExpiredLeaseIsStolen(t *testing.T) {
	m, clk := newTestManager()
	id, _, _ := m.Submit(JobSpec{N: 4, Seed: 7, Shards: 2})
	l1, _ := m.Acquire(id, "w1", time.Second)
	m.Acquire(id, "w2", time.Second)

	// Not yet expired: nothing to steal.
	if _, ok := m.Acquire(id, "thief", time.Second); ok {
		t.Fatal("unexpired lease stolen")
	}
	clk.advance(1500 * time.Millisecond)
	st, _ := m.Status(id)
	if st.Shards[0].State != "expired" {
		t.Fatalf("expired lease renders %q", st.Shards[0].State)
	}
	stolen, ok := m.Acquire(id, "thief", time.Second)
	if !ok || stolen.Shard != l1.Shard {
		t.Fatalf("steal acquired %+v ok=%v, want shard %d", stolen, ok, l1.Shard)
	}
	// The dead worker's heartbeat now fails...
	if err := m.Heartbeat(id, l1.Shard, "w1", time.Second); !errors.Is(err, ErrLeaseLost) {
		t.Fatalf("stolen-lease heartbeat error %v, want ErrLeaseLost", err)
	}
	// ...but its Complete is still accepted: it finished the range, the
	// records are in the store, and determinism makes the thief's duplicate
	// run byte-identical.
	if err := m.Complete(id, l1.Shard, "w1"); err != nil {
		t.Fatalf("complete from superseded worker rejected: %v", err)
	}
}

func TestSlowOwnerMayRenewPastExpiry(t *testing.T) {
	m, clk := newTestManager()
	id, _, _ := m.Submit(JobSpec{N: 2, Seed: 1, Shards: 1})
	m.Acquire(id, "w1", time.Second)
	clk.advance(2 * time.Second)
	// Expired but not yet stolen: the owner was slow, not dead.
	if err := m.Heartbeat(id, 0, "w1", time.Second); err != nil {
		t.Fatalf("slow owner renewal rejected: %v", err)
	}
	if _, ok := m.Acquire(id, "thief", time.Second); ok {
		t.Fatal("renewed lease stolen")
	}
}

func TestAcquireScansJobsInSubmissionOrder(t *testing.T) {
	m, _ := newTestManager()
	idA, _, _ := m.Submit(JobSpec{N: 1, Seed: 1})
	idB, _, _ := m.Submit(JobSpec{N: 1, Seed: 2})
	l, ok := m.Acquire("", "w", time.Second)
	if !ok || l.Job != idA {
		t.Fatalf("acquire-any started at %q, want first job %q", l.Job, idA)
	}
	l, ok = m.Acquire("", "w", time.Second)
	if !ok || l.Job != idB {
		t.Fatalf("second acquire-any got %q, want %q", l.Job, idB)
	}
	if len(m.Jobs()) != 2 {
		t.Fatalf("Jobs() = %d entries", len(m.Jobs()))
	}
}

func TestGridMatchesLocalSweepDefaults(t *testing.T) {
	// The spec→grid mapping must equal what cmd/sweep builds for the same
	// flags, or distributed store keys would diverge from local ones.
	spec := JobSpec{N: 6, Seed: 42, Exhaustive: true, Shards: 3}
	grid, err := spec.Grid()
	if err != nil {
		t.Fatal(err)
	}
	if grid.N != 6 || grid.Seed != 42 || !grid.Exhaustive || grid.Workers != 0 {
		t.Fatalf("grid %+v", grid)
	}
	scen, err := grid.Scenarios()
	if err != nil {
		t.Fatal(err)
	}
	if len(scen) != 6 || scen[0].Name != "s000" || scen[5].Seed != 47 {
		t.Fatalf("scenarios %+v", scen[0])
	}
	if _, err := (JobSpec{N: 1, Objective: "psychic"}).Grid(); err == nil {
		t.Fatal("bad objective expanded to a grid")
	}
}

// TestJobSpecAxisIdentity pins the job-identity contract of the arrival
// and hierarchy axes: legacy specs serialize without any axis key (so
// their content-hashed IDs are exactly what they were before the axes
// existed), inactive-axis parameters are ignored, and active-axis defaults
// resolve so spelled-out and omitted defaults are the same job.
func TestJobSpecAxisIdentity(t *testing.T) {
	legacy := JobSpec{N: 6, Seed: 42, Shards: 3}
	data, err := json.Marshal(legacy.normalized())
	if err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"jitter", "arrival_seed", "arrival_cycles", "l2_lines", "l2_ways", "l2_hit", "l2_exclusive"} {
		if strings.Contains(string(data), key) {
			t.Errorf("legacy spec serializes axis key %q: %s", key, data)
		}
	}

	// Inactive axes: the grid ignores their parameters, so they must not
	// split job identity.
	noise := legacy
	noise.ArrivalSeed, noise.ArrivalCycles = 9, 16
	noise.L2Ways, noise.L2Hit, noise.L2Exclusive = 8, 20, true
	if noise.ID() != legacy.ID() {
		t.Error("inactive-axis parameters changed the job ID")
	}

	// Active axes: defaults resolve, so omitted and spelled-out defaults
	// are one job — and the axis genuinely forks identity.
	jit := legacy
	jit.Jitter = 0.1
	spelled := jit
	spelled.ArrivalCycles = sched.DefaultArrivalCycles
	if jit.ID() != spelled.ID() {
		t.Error("default arrival cycles split the job ID")
	}
	if jit.ID() == legacy.ID() {
		t.Error("jitter did not fork the job ID")
	}
	l2 := legacy
	l2.L2Lines = 512
	l2spelled := l2
	l2spelled.L2Ways, l2spelled.L2Hit = 4, 10
	if l2.ID() != l2spelled.ID() {
		t.Error("default L2 geometry split the job ID")
	}
	if l2.ID() == legacy.ID() {
		t.Error("L2 overlay did not fork the job ID")
	}

	for _, bad := range []JobSpec{
		{N: 2, Jitter: 1.0},
		{N: 2, Jitter: -0.1},
		{N: 2, Jitter: 0.1, ArrivalCycles: 1},
		{N: 2, Jitter: 0.1, ArrivalCycles: MaxArrivalCycles + 1},
		{N: 2, L2Lines: MaxL2Lines + 1},
		{N: 2, L2Lines: 512, L2Ways: MaxL2Ways + 1},
		{N: 2, L2Lines: 512, L2Hit: -1},
	} {
		if err := bad.Validate(); err == nil {
			t.Errorf("spec %+v validated", bad)
		}
	}

	// And the axis fields must actually reach the grid.
	grid, err := (JobSpec{N: 2, Jitter: 0.1, ArrivalSeed: 5, L2Lines: 512, L2Exclusive: true}).Grid()
	if err != nil {
		t.Fatal(err)
	}
	if grid.Jitter != 0.1 || grid.ArrivalSeed != 5 || grid.ArrivalCycles != sched.DefaultArrivalCycles ||
		grid.L2Lines != 512 || grid.L2Ways != 4 || grid.L2Hit != 10 || !grid.L2Exclusive {
		t.Errorf("grid %+v lost axis fields", grid)
	}
}
