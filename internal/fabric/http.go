package fabric

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"

	"repro/internal/resilience"
)

// Wire bodies of the lease protocol. TTLs travel in milliseconds; zero
// means DefaultTTL.
type acquireRequest struct {
	Job    string `json:"job,omitempty"` // empty: any job
	Worker string `json:"worker"`
	TTLMS  int64  `json:"ttl_ms,omitempty"`
}

type shardRequest struct {
	Job    string `json:"job"`
	Shard  int    `json:"shard"`
	Worker string `json:"worker"`
	TTLMS  int64  `json:"ttl_ms,omitempty"`
}

type submitResponse struct {
	Job     string `json:"job"`
	Shards  int    `json:"shards"`
	Created bool   `json:"created"`
}

// Handler mounts the lease protocol:
//
//	POST /v1/shards/jobs       submit a JobSpec → {job, shards, created}
//	GET  /v1/shards/jobs       list job statuses
//	GET  /v1/shards/jobs/{id}  one job status
//	POST /v1/shards/acquire    lease a shard → Lease, or 204 when none
//	POST /v1/shards/heartbeat  renew a lease (409 when lost)
//	POST /v1/shards/complete   mark a shard done
func Handler(m *Manager) http.Handler {
	mux := http.NewServeMux()
	writeJSON := func(w http.ResponseWriter, code int, v any) {
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(code)
		json.NewEncoder(w).Encode(v)
	}
	writeErr := func(w http.ResponseWriter, code int, err error) {
		writeJSON(w, code, map[string]string{"error": err.Error()})
	}
	decode := func(w http.ResponseWriter, r *http.Request, v any) bool {
		if err := json.NewDecoder(io.LimitReader(r.Body, 1<<20)).Decode(v); err != nil {
			writeErr(w, http.StatusBadRequest, fmt.Errorf("bad JSON body: %w", err))
			return false
		}
		return true
	}
	errCode := func(err error) int {
		switch {
		case errors.Is(err, ErrUnknownJob):
			return http.StatusNotFound
		case errors.Is(err, ErrLeaseLost):
			return http.StatusConflict
		case errors.Is(err, ErrJournal):
			// A journal append failed: the transition was refused, nothing
			// was applied. 5xx so retrying clients treat it as transient —
			// a stalled disk heals, a full one pages the operator.
			return http.StatusInternalServerError
		}
		return http.StatusBadRequest
	}

	mux.HandleFunc("POST /v1/shards/jobs", func(w http.ResponseWriter, r *http.Request) {
		var spec JobSpec
		if !decode(w, r, &spec) {
			return
		}
		id, created, err := m.Submit(spec)
		if err != nil {
			writeErr(w, http.StatusBadRequest, err)
			return
		}
		st, _ := m.Status(id)
		writeJSON(w, http.StatusOK, submitResponse{Job: id, Shards: len(st.Shards), Created: created})
	})
	mux.HandleFunc("GET /v1/shards/jobs", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]any{"jobs": m.Jobs()})
	})
	mux.HandleFunc("GET /v1/shards/jobs/{id}", func(w http.ResponseWriter, r *http.Request) {
		st, ok := m.Status(r.PathValue("id"))
		if !ok {
			writeErr(w, http.StatusNotFound, ErrUnknownJob)
			return
		}
		writeJSON(w, http.StatusOK, st)
	})
	mux.HandleFunc("POST /v1/shards/acquire", func(w http.ResponseWriter, r *http.Request) {
		var req acquireRequest
		if !decode(w, r, &req) {
			return
		}
		if req.Worker == "" {
			writeErr(w, http.StatusBadRequest, fmt.Errorf("fabric: worker name required"))
			return
		}
		lease, ok := m.Acquire(req.Job, req.Worker, time.Duration(req.TTLMS)*time.Millisecond)
		if !ok {
			w.WriteHeader(http.StatusNoContent)
			return
		}
		writeJSON(w, http.StatusOK, lease)
	})
	mux.HandleFunc("POST /v1/shards/heartbeat", func(w http.ResponseWriter, r *http.Request) {
		var req shardRequest
		if !decode(w, r, &req) {
			return
		}
		if err := m.Heartbeat(req.Job, req.Shard, req.Worker, time.Duration(req.TTLMS)*time.Millisecond); err != nil {
			writeErr(w, errCode(err), err)
			return
		}
		w.WriteHeader(http.StatusNoContent)
	})
	mux.HandleFunc("POST /v1/shards/complete", func(w http.ResponseWriter, r *http.Request) {
		var req shardRequest
		if !decode(w, r, &req) {
			return
		}
		if err := m.Complete(req.Job, req.Shard, req.Worker); err != nil {
			writeErr(w, errCode(err), err)
			return
		}
		w.WriteHeader(http.StatusNoContent)
	})
	return mux
}

// DefaultOpTimeout is the per-attempt deadline of one protocol call when
// ClientOptions leaves OpTimeout zero. Lease traffic is tiny JSON bodies;
// an attempt slower than this is a dead coordinator, and the retry budget
// absorbs restarts.
const DefaultOpTimeout = 5 * time.Second

// ClientOptions configures a protocol client's resilience envelope. The
// zero value of every field resolves to a sane default.
type ClientOptions struct {
	// HTTPClient issues the requests; nil uses a default client with no
	// client-wide timeout (deadlines are per-operation).
	HTTPClient *http.Client
	// OpTimeout is the per-attempt deadline of one protocol call
	// (0 = DefaultOpTimeout, negative = no deadline).
	OpTimeout time.Duration
	// Policy is the retry policy for transient failures (zero value =
	// resilience defaults).
	Policy resilience.Policy
	// Breaker guards the coordinator edge; nil installs a default breaker.
	Breaker *resilience.Breaker
}

// protocolError carries a manager sentinel together with its HTTP status
// classification: errors.Is still matches ErrUnknownJob/ErrLeaseLost for
// callers, while the retry layer sees a definitive 4xx StatusError and
// neither retries it nor counts it against the breaker.
type protocolError struct {
	sentinel error
	status   *resilience.StatusError
}

func (e *protocolError) Error() string   { return e.sentinel.Error() }
func (e *protocolError) Unwrap() []error { return []error{e.sentinel, e.status} }

// Client speaks the lease protocol against a coordinator. Transient
// failures (transport errors, 5xx, 429) are retried on a seeded-jitter
// backoff schedule under per-operation deadlines, and a circuit breaker
// fails calls fast while the coordinator is down. Protocol verdicts —
// ErrUnknownJob (404), ErrLeaseLost (409) — are definitive: returned
// immediately, never retried, never counted against the breaker. The zero
// value is unusable; construct with NewClient or NewClientWithOptions.
type Client struct {
	base      string
	hc        *http.Client
	opTimeout time.Duration
	retry     *resilience.Retryer
}

// NewClient returns a protocol client for the coordinator at baseURL with
// the default resilience envelope. httpClient may be nil for a default.
func NewClient(baseURL string, httpClient *http.Client) *Client {
	return NewClientWithOptions(baseURL, ClientOptions{HTTPClient: httpClient})
}

// NewClientWithOptions returns a protocol client with an explicit
// resilience envelope.
func NewClientWithOptions(baseURL string, o ClientOptions) *Client {
	if o.HTTPClient == nil {
		o.HTTPClient = &http.Client{}
	}
	if o.OpTimeout == 0 {
		o.OpTimeout = DefaultOpTimeout
	}
	if o.Breaker == nil {
		o.Breaker = resilience.NewBreaker(0, 0)
	}
	return &Client{
		base:      strings.TrimRight(baseURL, "/"),
		hc:        o.HTTPClient,
		opTimeout: o.OpTimeout,
		retry:     resilience.NewRetryer(o.Policy, o.Breaker),
	}
}

// Retryer exposes the client's retry loop (tests replace its sleep to pin
// schedules without waiting them out).
func (c *Client) Retryer() *resilience.Retryer { return c.retry }

// Breaker exposes the circuit breaker guarding this client's coordinator
// edge.
func (c *Client) Breaker() *resilience.Breaker { return c.retry.Breaker() }

// opCtx builds one attempt's deadline context.
func (c *Client) opCtx() (context.Context, context.CancelFunc) {
	if c.opTimeout > 0 {
		return context.WithTimeout(context.Background(), c.opTimeout)
	}
	return context.Background(), func() {}
}

// post sends body as JSON and decodes a JSON response into out (when
// non-nil and the status has a body), retrying transient failures.
// Protocol statuses are mapped back to the manager's sentinel errors.
func (c *Client) post(path string, body, out any) (int, error) {
	data, err := json.Marshal(body)
	if err != nil {
		return 0, err
	}
	var code int
	err = c.retry.Do(context.Background(), func() error {
		code = 0
		ctx, cancel := c.opCtx()
		defer cancel()
		req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.base+path, bytes.NewReader(data))
		if err != nil {
			return err
		}
		req.Header.Set("Content-Type", "application/json")
		resp, err := c.hc.Do(req)
		if err != nil {
			return err
		}
		defer resp.Body.Close()
		code = resp.StatusCode
		switch resp.StatusCode {
		case http.StatusOK:
			if out != nil {
				return json.NewDecoder(resp.Body).Decode(out)
			}
		case http.StatusNoContent:
		case http.StatusNotFound:
			io.Copy(io.Discard, resp.Body)
			return &protocolError{sentinel: ErrUnknownJob, status: resilience.NewStatusError(resp.StatusCode, "")}
		case http.StatusConflict:
			io.Copy(io.Discard, resp.Body)
			return &protocolError{sentinel: ErrLeaseLost, status: resilience.NewStatusError(resp.StatusCode, "")}
		default:
			var e struct {
				Error string `json:"error"`
			}
			json.NewDecoder(resp.Body).Decode(&e)
			if e.Error == "" {
				e.Error = resp.Status
			}
			return fmt.Errorf("fabric: %s: %s: %w", path, e.Error,
				resilience.NewStatusError(resp.StatusCode, resp.Header.Get("Retry-After")))
		}
		io.Copy(io.Discard, resp.Body)
		return nil
	})
	return code, err
}

// get fetches path and decodes the 200 JSON body into out, retrying
// transient failures.
func (c *Client) get(path string, out any) error {
	return c.retry.Do(context.Background(), func() error {
		ctx, cancel := c.opCtx()
		defer cancel()
		req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+path, nil)
		if err != nil {
			return err
		}
		resp, err := c.hc.Do(req)
		if err != nil {
			return err
		}
		defer resp.Body.Close()
		switch resp.StatusCode {
		case http.StatusOK:
			return json.NewDecoder(resp.Body).Decode(out)
		case http.StatusNotFound:
			io.Copy(io.Discard, resp.Body)
			return &protocolError{sentinel: ErrUnknownJob, status: resilience.NewStatusError(resp.StatusCode, "")}
		}
		io.Copy(io.Discard, resp.Body)
		return fmt.Errorf("fabric: %s: %s: %w", path, resp.Status,
			resilience.NewStatusError(resp.StatusCode, resp.Header.Get("Retry-After")))
	})
}

// Submit registers spec and returns its job ID. Safe to retry: job IDs are
// content-hashed, so a resubmission after a lost response is idempotent.
func (c *Client) Submit(spec JobSpec) (string, error) {
	var resp submitResponse
	if _, err := c.post("/v1/shards/jobs", spec, &resp); err != nil {
		return "", err
	}
	return resp.Job, nil
}

// Jobs fetches every job's snapshot in submission order.
func (c *Client) Jobs() ([]JobStatus, error) {
	var body struct {
		Jobs []JobStatus `json:"jobs"`
	}
	if err := c.get("/v1/shards/jobs", &body); err != nil {
		return nil, err
	}
	return body.Jobs, nil
}

// Status fetches one job's snapshot.
func (c *Client) Status(jobID string) (JobStatus, error) {
	var st JobStatus
	if err := c.get("/v1/shards/jobs/"+jobID, &st); err != nil {
		return JobStatus{}, err
	}
	return st, nil
}

// Acquire leases a shard of jobID ("" = any job). ok=false means the
// coordinator currently has no available work. Safe to retry: a lease
// granted on an attempt whose response was lost simply waits out its TTL
// and is re-stolen.
func (c *Client) Acquire(jobID, worker string, ttl time.Duration) (Lease, bool, error) {
	var lease Lease
	code, err := c.post("/v1/shards/acquire",
		acquireRequest{Job: jobID, Worker: worker, TTLMS: ttl.Milliseconds()}, &lease)
	if err != nil {
		return Lease{}, false, err
	}
	return lease, code == http.StatusOK, nil
}

// Heartbeat renews a lease; ErrLeaseLost means the shard was stolen or
// finished elsewhere and the worker should abandon it.
func (c *Client) Heartbeat(l Lease, worker string, ttl time.Duration) error {
	_, err := c.post("/v1/shards/heartbeat",
		shardRequest{Job: l.Job, Shard: l.Shard, Worker: worker, TTLMS: ttl.Milliseconds()}, nil)
	return err
}

// Complete marks the leased shard done (idempotent server-side).
func (c *Client) Complete(l Lease, worker string) error {
	_, err := c.post("/v1/shards/complete",
		shardRequest{Job: l.Job, Shard: l.Shard, Worker: worker}, nil)
	return err
}
