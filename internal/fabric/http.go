package fabric

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"
)

// Wire bodies of the lease protocol. TTLs travel in milliseconds; zero
// means DefaultTTL.
type acquireRequest struct {
	Job    string `json:"job,omitempty"` // empty: any job
	Worker string `json:"worker"`
	TTLMS  int64  `json:"ttl_ms,omitempty"`
}

type shardRequest struct {
	Job    string `json:"job"`
	Shard  int    `json:"shard"`
	Worker string `json:"worker"`
	TTLMS  int64  `json:"ttl_ms,omitempty"`
}

type submitResponse struct {
	Job     string `json:"job"`
	Shards  int    `json:"shards"`
	Created bool   `json:"created"`
}

// Handler mounts the lease protocol:
//
//	POST /v1/shards/jobs       submit a JobSpec → {job, shards, created}
//	GET  /v1/shards/jobs       list job statuses
//	GET  /v1/shards/jobs/{id}  one job status
//	POST /v1/shards/acquire    lease a shard → Lease, or 204 when none
//	POST /v1/shards/heartbeat  renew a lease (409 when lost)
//	POST /v1/shards/complete   mark a shard done
func Handler(m *Manager) http.Handler {
	mux := http.NewServeMux()
	writeJSON := func(w http.ResponseWriter, code int, v any) {
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(code)
		json.NewEncoder(w).Encode(v)
	}
	writeErr := func(w http.ResponseWriter, code int, err error) {
		writeJSON(w, code, map[string]string{"error": err.Error()})
	}
	decode := func(w http.ResponseWriter, r *http.Request, v any) bool {
		if err := json.NewDecoder(io.LimitReader(r.Body, 1<<20)).Decode(v); err != nil {
			writeErr(w, http.StatusBadRequest, fmt.Errorf("bad JSON body: %w", err))
			return false
		}
		return true
	}
	errCode := func(err error) int {
		switch {
		case errors.Is(err, ErrUnknownJob):
			return http.StatusNotFound
		case errors.Is(err, ErrLeaseLost):
			return http.StatusConflict
		}
		return http.StatusBadRequest
	}

	mux.HandleFunc("POST /v1/shards/jobs", func(w http.ResponseWriter, r *http.Request) {
		var spec JobSpec
		if !decode(w, r, &spec) {
			return
		}
		id, created, err := m.Submit(spec)
		if err != nil {
			writeErr(w, http.StatusBadRequest, err)
			return
		}
		st, _ := m.Status(id)
		writeJSON(w, http.StatusOK, submitResponse{Job: id, Shards: len(st.Shards), Created: created})
	})
	mux.HandleFunc("GET /v1/shards/jobs", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]any{"jobs": m.Jobs()})
	})
	mux.HandleFunc("GET /v1/shards/jobs/{id}", func(w http.ResponseWriter, r *http.Request) {
		st, ok := m.Status(r.PathValue("id"))
		if !ok {
			writeErr(w, http.StatusNotFound, ErrUnknownJob)
			return
		}
		writeJSON(w, http.StatusOK, st)
	})
	mux.HandleFunc("POST /v1/shards/acquire", func(w http.ResponseWriter, r *http.Request) {
		var req acquireRequest
		if !decode(w, r, &req) {
			return
		}
		if req.Worker == "" {
			writeErr(w, http.StatusBadRequest, fmt.Errorf("fabric: worker name required"))
			return
		}
		lease, ok := m.Acquire(req.Job, req.Worker, time.Duration(req.TTLMS)*time.Millisecond)
		if !ok {
			w.WriteHeader(http.StatusNoContent)
			return
		}
		writeJSON(w, http.StatusOK, lease)
	})
	mux.HandleFunc("POST /v1/shards/heartbeat", func(w http.ResponseWriter, r *http.Request) {
		var req shardRequest
		if !decode(w, r, &req) {
			return
		}
		if err := m.Heartbeat(req.Job, req.Shard, req.Worker, time.Duration(req.TTLMS)*time.Millisecond); err != nil {
			writeErr(w, errCode(err), err)
			return
		}
		w.WriteHeader(http.StatusNoContent)
	})
	mux.HandleFunc("POST /v1/shards/complete", func(w http.ResponseWriter, r *http.Request) {
		var req shardRequest
		if !decode(w, r, &req) {
			return
		}
		if err := m.Complete(req.Job, req.Shard, req.Worker); err != nil {
			writeErr(w, errCode(err), err)
			return
		}
		w.WriteHeader(http.StatusNoContent)
	})
	return mux
}

// Client speaks the lease protocol against a coordinator. The zero value is
// unusable; construct with NewClient.
type Client struct {
	base string
	hc   *http.Client
}

// NewClient returns a protocol client for the coordinator at baseURL.
// httpClient may be nil for a default with a conservative timeout.
func NewClient(baseURL string, httpClient *http.Client) *Client {
	if httpClient == nil {
		httpClient = &http.Client{Timeout: 30 * time.Second}
	}
	return &Client{base: strings.TrimRight(baseURL, "/"), hc: httpClient}
}

// post sends body as JSON and decodes a JSON response into out (when
// non-nil and the status has a body). Protocol statuses are mapped back to
// the manager's sentinel errors.
func (c *Client) post(path string, body, out any) (int, error) {
	data, err := json.Marshal(body)
	if err != nil {
		return 0, err
	}
	resp, err := c.hc.Post(c.base+path, "application/json", bytes.NewReader(data))
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	switch resp.StatusCode {
	case http.StatusOK:
		if out != nil {
			return resp.StatusCode, json.NewDecoder(resp.Body).Decode(out)
		}
	case http.StatusNoContent:
	case http.StatusNotFound:
		return resp.StatusCode, ErrUnknownJob
	case http.StatusConflict:
		return resp.StatusCode, ErrLeaseLost
	default:
		var e struct {
			Error string `json:"error"`
		}
		json.NewDecoder(resp.Body).Decode(&e)
		if e.Error == "" {
			e.Error = resp.Status
		}
		return resp.StatusCode, fmt.Errorf("fabric: %s: %s", path, e.Error)
	}
	io.Copy(io.Discard, resp.Body)
	return resp.StatusCode, nil
}

// Submit registers spec and returns its job ID (idempotent).
func (c *Client) Submit(spec JobSpec) (string, error) {
	var resp submitResponse
	if _, err := c.post("/v1/shards/jobs", spec, &resp); err != nil {
		return "", err
	}
	return resp.Job, nil
}

// Jobs fetches every job's snapshot in submission order.
func (c *Client) Jobs() ([]JobStatus, error) {
	resp, err := c.hc.Get(c.base + "/v1/shards/jobs")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("fabric: jobs: %s", resp.Status)
	}
	var body struct {
		Jobs []JobStatus `json:"jobs"`
	}
	return body.Jobs, json.NewDecoder(resp.Body).Decode(&body)
}

// Status fetches one job's snapshot.
func (c *Client) Status(jobID string) (JobStatus, error) {
	resp, err := c.hc.Get(c.base + "/v1/shards/jobs/" + jobID)
	if err != nil {
		return JobStatus{}, err
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusNotFound {
		return JobStatus{}, ErrUnknownJob
	}
	if resp.StatusCode != http.StatusOK {
		return JobStatus{}, fmt.Errorf("fabric: status: %s", resp.Status)
	}
	var st JobStatus
	return st, json.NewDecoder(resp.Body).Decode(&st)
}

// Acquire leases a shard of jobID ("" = any job). ok=false means the
// coordinator currently has no available work.
func (c *Client) Acquire(jobID, worker string, ttl time.Duration) (Lease, bool, error) {
	var lease Lease
	code, err := c.post("/v1/shards/acquire",
		acquireRequest{Job: jobID, Worker: worker, TTLMS: ttl.Milliseconds()}, &lease)
	if err != nil {
		return Lease{}, false, err
	}
	return lease, code == http.StatusOK, nil
}

// Heartbeat renews a lease; ErrLeaseLost means the shard was stolen or
// finished elsewhere and the worker should abandon it.
func (c *Client) Heartbeat(l Lease, worker string, ttl time.Duration) error {
	_, err := c.post("/v1/shards/heartbeat",
		shardRequest{Job: l.Job, Shard: l.Shard, Worker: worker, TTLMS: ttl.Milliseconds()}, nil)
	return err
}

// Complete marks the leased shard done.
func (c *Client) Complete(l Lease, worker string) error {
	_, err := c.post("/v1/shards/complete",
		shardRequest{Job: l.Job, Shard: l.Shard, Worker: worker}, nil)
	return err
}
