package fabric

import (
	"context"
	"net/http/httptest"
	"runtime"
	"testing"
	"time"

	"repro/internal/chaos"
	"repro/internal/engine"
	"repro/internal/store"
	"repro/internal/store/httpstore"
)

// newJournaledCluster is newCluster with a journal-attached manager; the
// journal directory outlives the server so a "restarted coordinator" can
// reopen it.
func newJournaledCluster(t *testing.T, st *store.Store, journalDir string) (*httptest.Server, *Manager) {
	t.Helper()
	j, err := OpenJournal(journalDir, JournalOptions{})
	if err != nil {
		t.Fatal(err)
	}
	m := NewManager()
	if _, err := m.Recover(j); err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(coordinatorHandler(m, st))
	return srv, m
}

// TestJournaledCoordinatorCrashRestart is the in-process half of the
// crash-recovery matrix: a coordinator that journaled one submit and one
// complete dies (server gone, journal file handle dropped, lease table
// lost); its replacement replays the journal and — without any
// resubmission — already knows the job and the done shard. A drain worker
// then finishes exactly the two remaining shards and the assembled report
// is bit-identical to the single-process baseline.
func TestJournaledCoordinatorCrashRestart(t *testing.T) {
	scenarios, want := baseline(t, clusterSpec)
	storeDir, journalDir := t.TempDir(), t.TempDir()
	st, err := store.Open(storeDir)
	if err != nil {
		t.Fatal(err)
	}
	srvA, mA := newJournaledCluster(t, st, journalDir)
	clA := NewClient(srvA.URL, nil)
	jobID, err := clA.Submit(clusterSpec)
	if err != nil {
		t.Fatal(err)
	}

	// Complete shard 0 by hand: lease it, run its scenarios into the shared
	// store, report it done — the Complete lands in the journal.
	lease, ok, err := clA.Acquire(jobID, "w-pre", time.Second)
	if err != nil || !ok || lease.Shard != 0 {
		t.Fatalf("acquire: lease=%+v ok=%v err=%v", lease, ok, err)
	}
	backend := httpstore.New(srvA.URL, nil)
	lo, hi := engine.ShardRange(lease.Shard, lease.Shards, len(scenarios))
	for i := lo; i < hi; i++ {
		if _, err := engine.RunWith(scenarios[i], engine.RunConfig{Store: backend, Resume: true}); err != nil {
			t.Fatal(err)
		}
	}
	if err := clA.Complete(lease, "w-pre"); err != nil {
		t.Fatal(err)
	}

	// Crash: the server dies and the journal handle dies with it.
	srvA.Close()
	mA.Journal().Close()

	// The replacement recovers purely from the journal.
	jB, err := OpenJournal(journalDir, JournalOptions{})
	if err != nil {
		t.Fatal(err)
	}
	mB := NewManager()
	rst, err := mB.Recover(jB)
	if err != nil {
		t.Fatal(err)
	}
	if rst.Jobs != 1 || rst.DoneShards != 1 {
		t.Fatalf("recovered %+v, want 1 job + 1 done shard", rst)
	}
	srvB := httptest.NewServer(coordinatorHandler(mB, st))
	t.Cleanup(srvB.Close)
	t.Cleanup(func() { jB.Close() })

	// No resubmission: the job is simply there, shard 0 already done.
	clB := NewClient(srvB.URL, nil)
	jst, err := clB.Status(jobID)
	if err != nil {
		t.Fatalf("status on recovered coordinator without resubmit: %v", err)
	}
	if jst.Done != 1 || jst.Shards[0].State != "done" {
		t.Fatalf("recovered status %+v, want shard 0 done", jst)
	}

	// A drain worker finishes the job: exactly the 2 shards the journal did
	// not record as done — the recovered done-shard is never re-leased.
	w := &Worker{Coordinator: srvB.URL, Name: "w-post", TTL: time.Second, Drain: true}
	stats, err := w.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if stats.Shards != 2 {
		t.Fatalf("post-recovery worker completed %d shard(s), want exactly 2 (no re-execution of the journaled-done shard)", stats.Shards)
	}
	awaitComplete(t, clB, jobID, time.Second)
	mustMatch(t, "journaled crash-restart vs single-process", assemble(t, srvB.URL, scenarios), want)
}

// TestWorkerPreCompleteCrashHeals stages the second crash schedule: a
// worker finishes publishing every record of its shard and dies before
// calling Complete. The lease expires, a survivor steals the shard, resumes
// straight through the checkpoints, and the report stays bit-identical.
func TestWorkerPreCompleteCrashHeals(t *testing.T) {
	scenarios, want := baseline(t, clusterSpec)
	c := newCluster(t)
	cl := NewClient(c.srv.URL, nil)
	jobID, err := cl.Submit(clusterSpec)
	if err != nil {
		t.Fatal(err)
	}

	// The victim dies at the first pre-complete point. Goexit models the
	// process death faithfully inside one process: the worker goroutine
	// stops on the spot and Complete is never sent.
	chaos.Arm(&chaos.CrashPlan{
		Point: chaos.CrashWorkerPreComplete,
		After: 1,
		Kill:  func() { runtime.Goexit() },
	})
	t.Cleanup(func() { chaos.Arm(nil) })
	victimDone := make(chan struct{})
	go func() {
		defer close(victimDone)
		w := &Worker{Coordinator: c.srv.URL, Name: "victim", TTL: MinTTL, Drain: true}
		w.Run(context.Background())
	}()
	select {
	case <-victimDone:
	case <-time.After(30 * time.Second):
		t.Fatal("victim never reached the pre-complete crash point")
	}
	chaos.Arm(nil)

	// Its shard is leased-but-never-completed; after the TTL it is stolen.
	jst, err := cl.Status(jobID)
	if err != nil {
		t.Fatal(err)
	}
	if jst.Done != 0 {
		t.Fatalf("victim completed %d shard(s) despite the crash point", jst.Done)
	}
	w := &Worker{Coordinator: c.srv.URL, Name: "survivor", TTL: time.Second, Drain: true}
	stats, err := w.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if stats.Shards != 3 {
		t.Fatalf("survivor completed %d shard(s), want all 3", stats.Shards)
	}
	awaitComplete(t, cl, jobID, time.Second)
	mustMatch(t, "worker pre-complete crash vs single-process", assemble(t, c.srv.URL, scenarios), want)
}
