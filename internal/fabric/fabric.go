// Package fabric is the distributed sweep fabric: the coordination layer
// that turns the single-process sharded sweep (engine.Config.ShardIndex/
// ShardCount) into a coordinator/worker cluster. A coordinator (cmd/served)
// registers sweep jobs, splits each into contiguous shard ranges, and
// leases shards to workers over a small HTTP protocol (/v1/shards/*);
// workers (served -worker) run their leased range scenario by scenario,
// publishing every evaluation outcome and per-scenario checkpoint into the
// coordinator's shared store through the HTTP store backend
// (internal/store/httpstore), and heartbeat their lease while they work.
//
// The lease state machine per shard:
//
//	pending ──acquire──▶ leased(worker, expires) ──complete──▶ done
//	   ▲                      │
//	   └──────(ttl expires; next acquire steals the shard)◀───┘
//
// Fault tolerance falls out of two properties rather than consensus:
//
//   - Every evaluation is deterministic and every store write is an atomic
//     whole record, so two workers racing the same shard — after a steal,
//     a heartbeat lost to a partition, or a duplicated completion — write
//     byte-identical records. Duplicated work wastes cycles, never
//     correctness, which is why Complete is idempotent and accepted even
//     from a worker whose lease was stolen (its records are already in the
//     store).
//   - The store is the only durable state. Lease state is in-memory: a
//     coordinator restart forgets jobs, but re-submitting the same spec
//     yields the same job ID (content-hashed) and every scenario already
//     checkpointed resumes from the store instead of recomputing, so a
//     restarted cluster heals forward. Workers treat coordinator downtime
//     as a cold store plus retried polls.
//
// Results are assembled by anyone with store access: a resume-mode sweep
// (engine.Sweep with Resume and the shared store, e.g. cmd/sweep -remote)
// loads every checkpoint and renders output bit-identical to a
// single-process run — the cold ≡ warm ≡ kill+resume ≡ sharded guarantee
// extended to ≡ distributed.
package fabric

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"sort"
	"sync"
	"time"

	"repro/internal/engine"
	"repro/internal/exp"
	"repro/internal/sched"
)

// Request bounds for one job, mirroring cmd/served's per-request caps: the
// coordinator is long-lived and a single submitted spec must not be able to
// take the cluster down.
const (
	MaxScenarios = 10000 // n per job
	MaxApps      = 8     // apps per scenario (box grows as maxm^apps)
	MaxMaxM      = 12    // burst-length cap
	MaxStarts    = 16    // hybrid starts per scenario
	MaxShards    = 64    // shard leases per job

	MaxArrivalCycles = 4096  // sporadic timeline length (events = cycles x apps)
	MaxL2Lines       = 65536 // L2 overlay size
	MaxL2Ways        = 64    // L2 overlay associativity
)

// Lease TTL clamps: a worker may ask for any TTL, but the coordinator keeps
// it inside sane bounds so a typo cannot pin a shard forever or thrash it.
const (
	DefaultTTL = 10 * time.Second
	MinTTL     = 100 * time.Millisecond
	MaxTTL     = 10 * time.Minute
)

// Protocol errors surfaced by the manager (and mapped onto HTTP statuses by
// the handler: ErrUnknownJob → 404, ErrLeaseLost → 409, ErrJournal → 500 so
// retrying clients treat a stalled disk as transient).
var (
	ErrUnknownJob = errors.New("fabric: unknown job")
	ErrLeaseLost  = errors.New("fabric: lease lost")
	ErrJournal    = errors.New("fabric: journal write failed")
)

// JobSpec declares one distributed sweep: the randomized-grid parameters of
// engine.Grid in their wire form (objective and budget by name, exactly the
// vocabulary cmd/sweep and /v1/sweep use) plus the shard count to split it
// into. The zero values of the optional fields mean "engine default", so a
// spec maps onto the same Grid a local CLI run would build — which is what
// keeps distributed store keys identical to local ones.
type JobSpec struct {
	N          int     `json:"n"`
	Apps       int     `json:"apps,omitempty"`
	Seed       int64   `json:"seed"`
	MaxM       int     `json:"maxm,omitempty"`
	Starts     int     `json:"starts,omitempty"`
	Tol        float64 `json:"tol,omitempty"`
	Objective  string  `json:"objective,omitempty"` // "timing" (default) | "design"
	Budget     string  `json:"budget,omitempty"`    // design budget name (default "quick")
	Platforms  int     `json:"platforms,omitempty"`
	Exhaustive bool    `json:"exhaustive,omitempty"`

	// Arrival axis (engine.Grid's sporadic-release fields). All omitempty:
	// a legacy spec that never heard of the axis serializes — and hashes —
	// exactly as before.
	Jitter        float64 `json:"jitter,omitempty"`
	ArrivalSeed   int64   `json:"arrival_seed,omitempty"`
	ArrivalCycles int     `json:"arrival_cycles,omitempty"`

	// Hierarchy axis (engine.Grid's L2-overlay fields), same contract.
	L2Lines     int  `json:"l2_lines,omitempty"`
	L2Ways      int  `json:"l2_ways,omitempty"`
	L2Hit       int  `json:"l2_hit,omitempty"`
	L2Exclusive bool `json:"l2_exclusive,omitempty"`

	// Shards is the number of contiguous scenario ranges the job is leased
	// out as (clamped to N at submission; 0 = one shard).
	Shards int `json:"shards"`
}

// normalized returns the spec with defaults resolved, the form that is
// hashed into the job ID and returned to workers. Every zero value resolves
// to the engine's documented default (Scenario.withDefaults), so a spec
// that spells the defaults out and one that omits them expand to the same
// scenarios — and therefore must be the same job.
func (s JobSpec) normalized() JobSpec {
	if s.Apps == 0 {
		s.Apps = 3
	}
	if s.MaxM == 0 {
		s.MaxM = 6
	}
	if s.Starts == 0 {
		s.Starts = 2
	}
	if s.Tol == 0 {
		s.Tol = 0.01
	}
	if s.Platforms == 0 {
		s.Platforms = 1
	}
	if s.Objective == "" {
		s.Objective = "timing"
	}
	if s.Budget == "" {
		s.Budget = "quick"
	}
	if s.Shards < 1 {
		s.Shards = 1
	}
	if s.Shards > s.N {
		s.Shards = s.N
	}
	// Axis fields: resolve defaults when the axis is active, clear them when
	// it is not — the grid ignores inactive-axis parameters, so specs that
	// differ only in them expand to the same scenarios and must share an ID.
	if s.Jitter > 0 {
		if s.ArrivalCycles == 0 {
			s.ArrivalCycles = sched.DefaultArrivalCycles
		}
	} else {
		s.Jitter, s.ArrivalSeed, s.ArrivalCycles = 0, 0, 0
	}
	if s.L2Lines > 0 {
		if s.L2Ways == 0 {
			s.L2Ways = 4
		}
		if s.L2Hit == 0 {
			s.L2Hit = 10
		}
	} else {
		s.L2Lines, s.L2Ways, s.L2Hit, s.L2Exclusive = 0, 0, 0, false
	}
	return s
}

// Validate bounds-checks the spec against the job caps.
func (s JobSpec) Validate() error {
	if s.N < 1 || s.N > MaxScenarios {
		return fmt.Errorf("fabric: n must be in [1, %d]", MaxScenarios)
	}
	for _, b := range []struct {
		name string
		val  int
		max  int
	}{
		{"apps", s.Apps, MaxApps},
		{"maxm", s.MaxM, MaxMaxM},
		{"starts", s.Starts, MaxStarts},
	} {
		if b.val < 0 || b.val > b.max {
			return fmt.Errorf("fabric: %s must be in [0, %d] (0 = default)", b.name, b.max)
		}
	}
	if s.Shards < 0 || s.Shards > MaxShards {
		return fmt.Errorf("fabric: shards must be in [0, %d] (0 = 1)", MaxShards)
	}
	if s.Tol < 0 || math.IsInf(s.Tol, 1) || math.IsNaN(s.Tol) {
		return fmt.Errorf("fabric: tol must be finite and non-negative (0 = default)")
	}
	switch s.Objective {
	case "", "timing", "design":
	default:
		return fmt.Errorf("fabric: unknown objective %q", s.Objective)
	}
	switch s.Budget {
	case "", "tiny", "quick", "paper", "deep":
	default:
		return fmt.Errorf("fabric: unknown budget %q", s.Budget)
	}
	if max := len(engine.PlatformVariants()); s.Platforms < 0 || s.Platforms > max {
		return fmt.Errorf("fabric: platforms must be in [0, %d]", max)
	}
	if s.Jitter < 0 || s.Jitter >= 1 || math.IsNaN(s.Jitter) {
		return fmt.Errorf("fabric: jitter must be in [0, 1)")
	}
	if s.ArrivalCycles < 0 || s.ArrivalCycles == 1 || s.ArrivalCycles > MaxArrivalCycles {
		return fmt.Errorf("fabric: arrival_cycles must be 0 (default) or in [2, %d]", MaxArrivalCycles)
	}
	if s.L2Lines < 0 || s.L2Lines > MaxL2Lines {
		return fmt.Errorf("fabric: l2_lines must be in [0, %d]", MaxL2Lines)
	}
	if s.L2Ways < 0 || s.L2Ways > MaxL2Ways {
		return fmt.Errorf("fabric: l2_ways must be in [0, %d] (0 = default)", MaxL2Ways)
	}
	if s.L2Hit < 0 {
		return fmt.Errorf("fabric: l2_hit must be non-negative (0 = default)")
	}
	return nil
}

// Grid expands the spec into the engine.Grid every participant — workers
// running shards, assemblers resuming results — derives scenarios from.
// Equal specs produce equal grids, hence equal scenario tasksets, hence
// equal content-hashed store keys on every machine.
func (s JobSpec) Grid() (engine.Grid, error) {
	s = s.normalized()
	var obj engine.Objective
	switch s.Objective {
	case "timing":
		obj = engine.ObjectiveTiming
	case "design":
		obj = engine.ObjectiveDesign
	default:
		return engine.Grid{}, fmt.Errorf("fabric: unknown objective %q", s.Objective)
	}
	return engine.Grid{
		N: s.N, Apps: s.Apps, Seed: s.Seed, MaxM: s.MaxM,
		Starts: s.Starts, Tol: s.Tol, Objective: obj,
		Budget: exp.Budget(s.Budget), Platforms: s.Platforms,
		Exhaustive: s.Exhaustive,
		Jitter:     s.Jitter, ArrivalSeed: s.ArrivalSeed, ArrivalCycles: s.ArrivalCycles,
		L2Lines: s.L2Lines, L2Ways: s.L2Ways, L2Hit: s.L2Hit, L2Exclusive: s.L2Exclusive,
	}, nil
}

// ID returns the job's content-derived identity: a hash of the normalized
// spec. Re-submitting a spec — by a retrying driver, or after a coordinator
// restart wiped the in-memory job table — lands on the same job, so store
// records and job identity stay aligned across failures.
func (s JobSpec) ID() string {
	data, _ := json.Marshal(s.normalized())
	sum := sha256.Sum256(data)
	return "job-" + hex.EncodeToString(sum[:])[:16]
}

type shardState int

const (
	shardPending shardState = iota
	shardLeased
	shardDone
)

type shardSlot struct {
	state   shardState
	worker  string
	expires time.Time
}

type job struct {
	spec    JobSpec
	shards  []shardSlot
	created time.Time
	seq     int // submission order, for deterministic acquire scans
}

// Lease is one granted shard: which contiguous range of which job the
// worker now owns, and for how long before the shard becomes stealable.
type Lease struct {
	Job    string  `json:"job"`
	Shard  int     `json:"shard"`
	Shards int     `json:"shards"`
	Spec   JobSpec `json:"spec"`
	TTLMS  int64   `json:"ttl_ms"`
}

// ShardInfo is the observable state of one shard in a job status report.
type ShardInfo struct {
	Index       int    `json:"index"`
	Lo          int    `json:"lo"` // half-open scenario range [lo, hi)
	Hi          int    `json:"hi"`
	State       string `json:"state"` // pending | leased | expired | done
	Worker      string `json:"worker,omitempty"`
	ExpiresInMS int64  `json:"expires_in_ms,omitempty"`
}

// JobStatus is the snapshot returned by Status and the jobs listing.
type JobStatus struct {
	Job      string      `json:"job"`
	Spec     JobSpec     `json:"spec"`
	Shards   []ShardInfo `json:"shards"`
	Pending  int         `json:"pending"`
	Leased   int         `json:"leased"`
	Done     int         `json:"done"`
	Complete bool        `json:"complete"`
}

// Manager is the coordinator's lease table. All methods are safe for
// concurrent use. Results always live in the shared store; the table itself
// is in-memory unless a Journal is attached (Recover), in which case the
// two durable transitions — a job exists (Submit), a shard's records are
// all in the store (Complete) — are write-ahead logged and survive a
// coordinator crash. Leases stay soft state either way: a restarted
// coordinator replays leased shards as pending and workers re-acquire them
// through TTL-expiry stealing.
type Manager struct {
	mu      sync.Mutex
	jobs    map[string]*job
	seq     int
	now     func() time.Time // injectable clock for lease-expiry tests
	journal *Journal         // nil = volatile manager
}

// NewManager returns an empty lease table on the real clock.
func NewManager() *Manager {
	return &Manager{jobs: make(map[string]*job), now: time.Now}
}

// Submit registers a job (idempotently: the same normalized spec maps to
// the same ID, and an existing job is returned rather than reset, so a
// retried submission cannot orphan live leases).
func (m *Manager) Submit(spec JobSpec) (id string, created bool, err error) {
	if err := spec.Validate(); err != nil {
		return "", false, err
	}
	spec = spec.normalized()
	id = spec.ID()
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, ok := m.jobs[id]; ok {
		return id, false, nil
	}
	// Write-ahead: the record must be durable before the job exists, or a
	// crash could lose a job the driver was told about. On journal failure
	// the submission is refused (retryable) rather than accepted volatile.
	if err := m.journalLocked(Record{Op: OpSubmit, Spec: &spec}); err != nil {
		return "", false, err
	}
	m.seq++
	m.jobs[id] = &job{
		spec:    spec,
		shards:  make([]shardSlot, spec.Shards),
		created: m.now(),
		seq:     m.seq,
	}
	m.maybeCompactLocked()
	return id, true, nil
}

// journalLocked appends one record to the attached journal, if any, mapping
// failures onto the retryable ErrJournal sentinel. Callers hold m.mu.
func (m *Manager) journalLocked(rec Record) error {
	if m.journal == nil {
		return nil
	}
	if err := m.journal.Append(rec); err != nil {
		return fmt.Errorf("%w: %v", ErrJournal, err)
	}
	return nil
}

// maybeCompactLocked rewrites the journal's snapshot when its append budget
// is spent: one submit record per job plus one complete per done shard, in
// submission order — exactly the state replay must rebuild. Compaction
// failure is deliberately swallowed (the counter records it): the log still
// holds every record, so durability is unaffected, only log length.
// Callers hold m.mu.
func (m *Manager) maybeCompactLocked() {
	if m.journal == nil || !m.journal.ShouldCompact() {
		return
	}
	var recs []Record
	for _, id := range m.scanOrder("") {
		j := m.jobs[id]
		spec := j.spec
		recs = append(recs, Record{Op: OpSubmit, Spec: &spec})
		for i := range j.shards {
			if j.shards[i].state == shardDone {
				recs = append(recs, Record{Op: OpComplete, Job: id, Shard: i})
			}
		}
	}
	m.journal.Compact(recs)
}

// RecoverStats summarizes one journal replay.
type RecoverStats struct {
	Records    int `json:"records"`     // journal records replayed
	Jobs       int `json:"jobs"`        // jobs recovered
	DoneShards int `json:"done_shards"` // shards recovered as done
	Skipped    int `json:"skipped"`     // stale/invalid records ignored
}

// Recover replays a freshly opened journal into the manager and attaches it
// for subsequent write-ahead logging. It must be called before the manager
// serves traffic (typically on a NewManager; the readiness probe gates
// /v1/shards until it returns). Replay is idempotent and forgiving the same
// way the live operations are: a duplicate submit lands on the existing
// job, a complete for an unknown job or out-of-range shard — possible only
// if compaction dropped state a stale log re-asserts — is counted as
// skipped rather than fatal.
func (m *Manager) Recover(j *Journal) (RecoverStats, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	var st RecoverStats
	for _, rec := range j.Replayed() {
		st.Records++
		switch rec.Op {
		case OpSubmit:
			if rec.Spec == nil {
				st.Skipped++
				continue
			}
			spec := rec.Spec.normalized()
			id := spec.ID()
			if _, ok := m.jobs[id]; ok {
				st.Skipped++
				continue
			}
			m.seq++
			m.jobs[id] = &job{
				spec:    spec,
				shards:  make([]shardSlot, spec.Shards),
				created: m.now(),
				seq:     m.seq,
			}
			st.Jobs++
		case OpComplete:
			jb, ok := m.jobs[rec.Job]
			if !ok || rec.Shard < 0 || rec.Shard >= len(jb.shards) {
				st.Skipped++
				continue
			}
			if jb.shards[rec.Shard].state == shardDone {
				st.Skipped++
				continue
			}
			jb.shards[rec.Shard] = shardSlot{state: shardDone}
			st.DoneShards++
		default:
			st.Skipped++
		}
	}
	j.DropReplayed()
	m.journal = j
	return st, nil
}

// Journal returns the attached journal, nil for a volatile manager.
func (m *Manager) Journal() *Journal {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.journal
}

func clampTTL(ttl time.Duration) time.Duration {
	switch {
	case ttl <= 0:
		return DefaultTTL
	case ttl < MinTTL:
		return MinTTL
	case ttl > MaxTTL:
		return MaxTTL
	}
	return ttl
}

// Acquire grants worker the first available shard: a pending one, or a
// leased one whose TTL has expired (work stealing — the previous owner is
// presumed dead; if it is merely slow, its duplicate work is harmless by
// determinism). jobID restricts the scan to one job; empty scans all jobs
// in submission order. ok=false means no work is currently available.
func (m *Manager) Acquire(jobID, worker string, ttl time.Duration) (Lease, bool) {
	ttl = clampTTL(ttl)
	m.mu.Lock()
	defer m.mu.Unlock()
	now := m.now()
	for _, id := range m.scanOrder(jobID) {
		j := m.jobs[id]
		for i := range j.shards {
			sl := &j.shards[i]
			available := sl.state == shardPending ||
				(sl.state == shardLeased && now.After(sl.expires))
			if !available {
				continue
			}
			sl.state = shardLeased
			sl.worker = worker
			sl.expires = now.Add(ttl)
			return Lease{
				Job: id, Shard: i, Shards: len(j.shards),
				Spec: j.spec, TTLMS: ttl.Milliseconds(),
			}, true
		}
	}
	return Lease{}, false
}

// scanOrder returns job IDs in deterministic submission order (or just the
// one requested). Callers hold m.mu.
func (m *Manager) scanOrder(jobID string) []string {
	if jobID != "" {
		if _, ok := m.jobs[jobID]; !ok {
			return nil
		}
		return []string{jobID}
	}
	ids := make([]string, 0, len(m.jobs))
	for id := range m.jobs {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(a, b int) bool { return m.jobs[ids[a]].seq < m.jobs[ids[b]].seq })
	return ids
}

// Heartbeat extends worker's lease on a shard. A worker that still owns the
// lease may renew even past expiry (it was slow, not dead, and nobody has
// stolen the shard yet); a shard that is done, re-pending, or owned by
// another worker reports ErrLeaseLost — the worker should abandon the shard
// (its completed records are already safe in the store).
func (m *Manager) Heartbeat(jobID string, shard int, worker string, ttl time.Duration) error {
	ttl = clampTTL(ttl)
	m.mu.Lock()
	defer m.mu.Unlock()
	j, ok := m.jobs[jobID]
	if !ok {
		return ErrUnknownJob
	}
	if shard < 0 || shard >= len(j.shards) {
		return fmt.Errorf("fabric: shard %d outside [0, %d)", shard, len(j.shards))
	}
	sl := &j.shards[shard]
	if sl.state != shardLeased || sl.worker != worker {
		return ErrLeaseLost
	}
	sl.expires = m.now().Add(ttl)
	return nil
}

// Complete marks a shard done. It is idempotent and deliberately accepted
// from any worker, even one whose lease was stolen: reaching Complete means
// the worker finished the range and every record is already in the store,
// and records are deterministic, so "done" is true no matter who else is
// (re)computing it.
func (m *Manager) Complete(jobID string, shard int, worker string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	j, ok := m.jobs[jobID]
	if !ok {
		return ErrUnknownJob
	}
	if shard < 0 || shard >= len(j.shards) {
		return fmt.Errorf("fabric: shard %d outside [0, %d)", shard, len(j.shards))
	}
	if j.shards[shard].state == shardDone {
		// Already durable — a retried or duplicated completion must not
		// journal a second record (a retry loop against a full disk would
		// otherwise grow the log while failing).
		return nil
	}
	if err := m.journalLocked(Record{Op: OpComplete, Job: jobID, Shard: shard}); err != nil {
		return err
	}
	j.shards[shard] = shardSlot{state: shardDone}
	m.maybeCompactLocked()
	return nil
}

// Status snapshots one job.
func (m *Manager) Status(jobID string) (JobStatus, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	j, ok := m.jobs[jobID]
	if !ok {
		return JobStatus{}, false
	}
	return m.status(jobID, j), true
}

// Jobs snapshots every job in submission order.
func (m *Manager) Jobs() []JobStatus {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]JobStatus, 0, len(m.jobs))
	for _, id := range m.scanOrder("") {
		out = append(out, m.status(id, m.jobs[id]))
	}
	return out
}

// status renders a job snapshot; callers hold m.mu.
func (m *Manager) status(id string, j *job) JobStatus {
	now := m.now()
	st := JobStatus{Job: id, Spec: j.spec, Shards: make([]ShardInfo, len(j.shards))}
	for i, sl := range j.shards {
		lo, hi := engine.ShardRange(i, len(j.shards), j.spec.N)
		info := ShardInfo{Index: i, Lo: lo, Hi: hi}
		switch sl.state {
		case shardPending:
			info.State = "pending"
			st.Pending++
		case shardLeased:
			info.State = "leased"
			info.Worker = sl.worker
			if rem := sl.expires.Sub(now); rem > 0 {
				info.ExpiresInMS = rem.Milliseconds()
			} else {
				info.State = "expired" // stealable on next acquire
			}
			st.Leased++
		case shardDone:
			info.State = "done"
			st.Done++
		}
		st.Shards[i] = info
	}
	st.Complete = st.Done == len(j.shards)
	return st
}
