package fabric

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"

	"repro/internal/chaos"
)

// Journal is the coordinator's durability log: an append-only,
// length-prefixed, per-record-checksummed file of Manager state transitions
// plus a snapshot file for compaction. A Manager attached to a journal
// (Manager.Recover) survives process death: reopening the journal replays
// every Submit and Complete back into a fresh Manager, so a restarted
// coordinator knows its jobs and which shards are already done.
//
// Only the two durable transitions are journaled — Submit (a job exists)
// and Complete (a shard's records are all in the store). Leases are
// deliberately soft state: a recovered coordinator replays leased shards as
// pending and workers re-acquire them through the existing TTL-expiry
// stealing, which keeps journal writes O(jobs + done shards) instead of
// O(heartbeats) and loses nothing — duplicated shard work is already
// harmless by determinism.
//
// On-disk format, shared by the log (journal.log) and the snapshot
// (snapshot.log):
//
//	record := lenLE32 | crc32(payload)LE32 | payload(JSON Record)
//
// The log is replayed torn-tail-tolerantly: a crash mid-append leaves a
// short or checksum-failing tail, replay stops at the last whole record and
// Open truncates the tail so new appends frame cleanly. The snapshot is
// written whole via temp+rename, so it is either the previous complete
// snapshot or the new one; a record-level fault inside it means real disk
// corruption and fails Open loudly (the log cannot repair a hole in its own
// base state).
//
// Compaction (Compact) rewrites current state as a fresh snapshot, fsyncs
// it into place, then truncates the log. A crash between those two steps is
// safe: replay applies the snapshot and then re-applies the stale log
// records on top, and both record kinds are idempotent.
type Journal struct {
	dir    string
	policy SyncPolicy

	// compactEvery asks the owner (Manager) to compact after this many
	// appends since the last compaction; 0 never asks.
	compactEvery int64

	mu           sync.Mutex
	log          *os.File
	off          int64 // end of the last whole record; writes land here
	sinceCompact int64
	replayed     []Record

	appends      atomic.Int64
	fsyncs       atomic.Int64
	compactions  atomic.Int64
	compactErrs  atomic.Int64
	snapshotRecs atomic.Int64
	logRecs      atomic.Int64
	tornBytes    atomic.Int64
}

// SyncPolicy selects when the journal fsyncs its log.
type SyncPolicy int

const (
	// SyncAlways fsyncs after every append: a record acknowledged to the
	// caller survives power loss, at one fsync per state transition. The
	// default, and what the crash-recovery guarantees assume.
	SyncAlways SyncPolicy = iota
	// SyncNever leaves flushing to the OS: appends survive process death
	// (SIGKILL, panic) but a machine crash may tear the tail — which replay
	// tolerates, trading the last few transitions for write latency.
	SyncNever
)

// JournalOptions configures OpenJournal. The zero value is SyncAlways with
// manual-only compaction.
type JournalOptions struct {
	Sync SyncPolicy
	// CompactEvery makes ShouldCompact report true after this many appends
	// since the last compaction (0 = only explicit Compact calls).
	CompactEvery int64
}

// OpKind names a journaled Manager transition.
type OpKind string

const (
	OpSubmit   OpKind = "submit"
	OpComplete OpKind = "complete"
)

// Record is one journaled state transition (and the snapshot element: a
// snapshot is just the minimal record sequence that rebuilds current
// state).
type Record struct {
	Op    OpKind   `json:"op"`
	Spec  *JobSpec `json:"spec,omitempty"`  // OpSubmit: the normalized spec
	Job   string   `json:"job,omitempty"`   // OpComplete: content-hashed job ID
	Shard int      `json:"shard,omitempty"` // OpComplete: shard index
}

// JournalStats snapshots the journal's counters for observability
// (/statsz).
type JournalStats struct {
	Appends         int64 `json:"appends"`
	Fsyncs          int64 `json:"fsyncs"`
	Compactions     int64 `json:"compactions"`
	CompactErrors   int64 `json:"compact_errors"`
	SnapshotRecords int64 `json:"snapshot_records"` // replayed from the snapshot at open
	LogRecords      int64 `json:"log_records"`      // replayed from the log at open
	TornBytes       int64 `json:"torn_bytes"`       // tail truncated at open
}

const (
	journalLogName  = "journal.log"
	journalSnapName = "snapshot.log"
	// maxRecordLen bounds one framed record; anything larger is framing
	// garbage (a JobSpec is a few hundred bytes), treated like a torn tail.
	maxRecordLen = 1 << 20
)

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// OpenJournal opens (creating if necessary) the journal in dir and replays
// it: snapshot first, then the log, truncating any torn tail. The replayed
// records are consumed by Manager.Recover via Replayed.
func OpenJournal(dir string, o JournalOptions) (*Journal, error) {
	if dir == "" {
		return nil, fmt.Errorf("fabric: empty journal directory")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("fabric: journal: %w", err)
	}
	j := &Journal{dir: dir, policy: o.Sync, compactEvery: o.CompactEvery}

	snapRecs, _, torn, err := readFrames(filepath.Join(dir, journalSnapName))
	if err != nil {
		return nil, fmt.Errorf("fabric: journal snapshot: %w", err)
	}
	if torn > 0 {
		// The snapshot is written atomically; a bad record inside it is disk
		// corruption, not a crash artifact — refuse to silently drop base
		// state the log can no longer rebuild.
		return nil, fmt.Errorf("fabric: journal snapshot %s corrupt after %d record(s)",
			filepath.Join(dir, journalSnapName), len(snapRecs))
	}
	logPath := filepath.Join(dir, journalLogName)
	logRecs, good, torn, err := readFrames(logPath)
	if err != nil {
		return nil, fmt.Errorf("fabric: journal log: %w", err)
	}
	f, err := os.OpenFile(logPath, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, fmt.Errorf("fabric: journal log: %w", err)
	}
	if torn > 0 {
		// Drop the torn tail so the next append starts a clean frame.
		if err := f.Truncate(good); err != nil {
			f.Close()
			return nil, fmt.Errorf("fabric: journal log truncate: %w", err)
		}
	}
	if _, err := f.Seek(good, 0); err != nil {
		f.Close()
		return nil, fmt.Errorf("fabric: journal log seek: %w", err)
	}
	j.log = f
	j.off = good
	j.replayed = append(snapRecs, logRecs...)
	j.sinceCompact = int64(len(logRecs))
	j.snapshotRecs.Store(int64(len(snapRecs)))
	j.logRecs.Store(int64(len(logRecs)))
	j.tornBytes.Store(torn)
	return j, nil
}

// readFrames parses a framed record file. It returns the records up to the
// first incomplete or checksum-failing frame, the byte offset of the end of
// the last good record, and how many trailing bytes were abandoned. A
// missing file is zero records.
func readFrames(path string) (recs []Record, good int64, torn int64, err error) {
	data, err := os.ReadFile(path)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, 0, 0, nil
		}
		return nil, 0, 0, err
	}
	off := 0
	for {
		rest := data[off:]
		if len(rest) == 0 {
			return recs, int64(off), 0, nil
		}
		if len(rest) < 8 {
			break
		}
		n := binary.LittleEndian.Uint32(rest[:4])
		if n == 0 || n > maxRecordLen || len(rest) < int(8+n) {
			break
		}
		payload := rest[8 : 8+n]
		if binary.LittleEndian.Uint32(rest[4:8]) != crc32.Checksum(payload, crcTable) {
			break
		}
		var rec Record
		if json.Unmarshal(payload, &rec) != nil {
			break
		}
		recs = append(recs, rec)
		off += int(8 + n)
	}
	return recs, int64(off), int64(len(data) - off), nil
}

// frame renders one record in the on-disk framing.
func frame(rec Record) ([]byte, error) {
	payload, err := json.Marshal(rec)
	if err != nil {
		return nil, err
	}
	if len(payload) > maxRecordLen {
		return nil, fmt.Errorf("fabric: journal record too large (%d bytes)", len(payload))
	}
	buf := make([]byte, 8+len(payload))
	binary.LittleEndian.PutUint32(buf[:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(buf[4:8], crc32.Checksum(payload, crcTable))
	copy(buf[8:], payload)
	return buf, nil
}

// Append writes one record to the log, fsyncing per the policy. On any
// write failure the log is rolled back to the last whole record, so a
// failed append never leaves a frame that would silently truncate later
// successful ones at replay.
func (j *Journal) Append(rec Record) error {
	buf, err := frame(rec)
	if err != nil {
		return err
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if _, err := j.log.Write(buf); err != nil {
		j.log.Truncate(j.off)
		j.log.Seek(j.off, 0)
		return fmt.Errorf("fabric: journal append: %w", err)
	}
	if j.policy == SyncAlways {
		if err := j.log.Sync(); err != nil {
			j.log.Truncate(j.off)
			j.log.Seek(j.off, 0)
			return fmt.Errorf("fabric: journal fsync: %w", err)
		}
		j.fsyncs.Add(1)
	}
	j.off += int64(len(buf))
	j.sinceCompact++
	j.appends.Add(1)
	// The crash point fires with the record durable but unacknowledged —
	// the schedule the recovery guarantees are pinned against.
	chaos.MaybeCrash(chaos.CrashJournalAppend)
	return nil
}

// ShouldCompact reports whether the configured append budget since the last
// compaction is spent. The owner (Manager) decides when to act on it, since
// only it can render a consistent snapshot.
func (j *Journal) ShouldCompact() bool {
	if j.compactEvery <= 0 {
		return false
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.sinceCompact >= j.compactEvery
}

// Compact replaces the snapshot with recs — the minimal record sequence
// rebuilding current state — and truncates the log. The snapshot lands via
// temp + fsync + rename (+ directory fsync), so a crash at any point leaves
// either the old snapshot plus the old log, or the new snapshot with the
// old log idempotently re-applied on top of it, or the new snapshot alone:
// all replay to the same state.
func (j *Journal) Compact(recs []Record) error {
	var buf bytes.Buffer
	for _, rec := range recs {
		b, err := frame(rec)
		if err != nil {
			j.compactErrs.Add(1)
			return err
		}
		buf.Write(b)
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if err := j.writeSnapshotLocked(buf.Bytes()); err != nil {
		j.compactErrs.Add(1)
		return err
	}
	if err := j.log.Truncate(0); err != nil {
		j.compactErrs.Add(1)
		return fmt.Errorf("fabric: journal compact truncate: %w", err)
	}
	if _, err := j.log.Seek(0, 0); err != nil {
		j.compactErrs.Add(1)
		return fmt.Errorf("fabric: journal compact seek: %w", err)
	}
	j.off = 0
	j.sinceCompact = 0
	j.compactions.Add(1)
	return nil
}

// writeSnapshotLocked atomically replaces the snapshot file.
func (j *Journal) writeSnapshotLocked(data []byte) error {
	tmp, err := os.CreateTemp(j.dir, ".snap-*")
	if err != nil {
		return fmt.Errorf("fabric: journal snapshot: %w", err)
	}
	_, werr := tmp.Write(data)
	serr := tmp.Sync()
	j.fsyncs.Add(1)
	cerr := tmp.Close()
	if werr != nil || serr != nil || cerr != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("fabric: journal snapshot write: w=%v s=%v c=%v", werr, serr, cerr)
	}
	if err := os.Rename(tmp.Name(), filepath.Join(j.dir, journalSnapName)); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("fabric: journal snapshot rename: %w", err)
	}
	// Make the rename itself durable; best-effort (not all filesystems
	// support directory fsync).
	if d, err := os.Open(j.dir); err == nil {
		if d.Sync() == nil {
			j.fsyncs.Add(1)
		}
		d.Close()
	}
	return nil
}

// Replayed returns the records recovered at open: the snapshot's followed
// by the log's. Manager.Recover consumes them once; the slice is released
// afterwards via DropReplayed.
func (j *Journal) Replayed() []Record {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.replayed
}

// DropReplayed releases the replay buffer once recovery has consumed it.
func (j *Journal) DropReplayed() {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.replayed = nil
}

// Dir returns the journal directory.
func (j *Journal) Dir() string { return j.dir }

// Close releases the log file handle. A closed journal must not be
// appended to.
func (j *Journal) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.log.Close()
}

// Stats snapshots the journal counters.
func (j *Journal) Stats() JournalStats {
	return JournalStats{
		Appends:         j.appends.Load(),
		Fsyncs:          j.fsyncs.Load(),
		Compactions:     j.compactions.Load(),
		CompactErrors:   j.compactErrs.Load(),
		SnapshotRecords: j.snapshotRecs.Load(),
		LogRecords:      j.logRecs.Load(),
		TornBytes:       j.tornBytes.Load(),
	}
}
