package fabric

import (
	"context"
	"errors"
	"fmt"
	"hash/fnv"
	"io"
	"net/http"
	"time"

	"repro/internal/chaos"
	"repro/internal/engine"
	"repro/internal/resilience"
	"repro/internal/store/httpstore"
)

// Worker is one cluster compute process: it leases shards from a
// coordinator, runs each leased scenario range through the sweep engine
// with the coordinator's store mounted as its persistent tier (every
// outcome and checkpoint published over HTTP), heartbeats while working,
// and marks shards complete. cmd/served's -worker mode wraps exactly this.
//
// A worker holds no durable state: killing it mid-shard loses nothing but
// the lease TTL — finished scenarios are already checkpointed in the shared
// store, and whichever worker steals the expired lease resumes past them.
//
// Failure posture: lease calls and store traffic retry transient failures
// with backoff (the protocol client's envelope), idle polls are spread by
// decorrelated jitter seeded from the worker's name so a fleet never
// thunders in lockstep, a heartbeat that learns another worker owns the
// shard abandons it between scenarios (bounding duplicated work to the one
// scenario in flight), and a panicking scenario is caught — the shard is
// abandoned for another worker to retry, the process survives.
type Worker struct {
	Coordinator string        // coordinator base URL (required)
	Name        string        // lease owner identity (required)
	TTL         time.Duration // requested lease TTL (0 = DefaultTTL)
	Poll        time.Duration // idle/retry poll interval, pre-jitter (0 = TTL/2)
	Drain       bool          // exit cleanly when the coordinator has no work
	Throttle    time.Duration // optional pause between scenarios (rate-limits a shared box)

	// HTTPClient is shared by the lease client and the store backend; nil
	// uses defaults.
	HTTPClient *http.Client
	// Log receives one progress line per lease event; nil is silent.
	Log io.Writer

	// drainErrLimit bounds consecutive coordinator failures in Drain mode
	// before giving up (0 = default 10). Without Drain a worker retries
	// forever — coordinator downtime is expected during restarts.
	drainErrLimit int
	// runFn replaces engine.RunWith (test hook for fault paths the real
	// kernels cannot produce on demand, e.g. a panicking scenario).
	runFn func(engine.Scenario, engine.RunConfig) (*engine.Result, error)
}

// WorkerStats summarizes one Run.
type WorkerStats struct {
	Shards     int // shards completed
	Scenarios  int // scenarios this worker ran (or resumed) itself
	LeasesLost int // shards abandoned after a heartbeat learned another owner
	Panics     int // scenarios that panicked and were isolated
}

// errShardLost marks a shard abandoned mid-range because the lease moved to
// another worker.
var errShardLost = fmt.Errorf("fabric: shard abandoned: %w", ErrLeaseLost)

func (w *Worker) logf(format string, args ...any) {
	if w.Log != nil {
		fmt.Fprintf(w.Log, format+"\n", args...)
	}
}

// sleep pauses for d or until ctx is cancelled.
func sleep(ctx context.Context, d time.Duration) {
	if d <= 0 {
		return
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
	case <-t.C:
	}
}

// nameSeed folds a worker name into a deterministic per-worker seed for
// jitter and retry streams, so two workers never share a schedule but each
// worker's own schedule is reproducible.
func nameSeed(name string) int64 {
	h := fnv.New64a()
	h.Write([]byte(name))
	seed := int64(h.Sum64())
	if seed == 0 {
		seed = 1
	}
	return seed
}

// Run executes the lease loop until ctx is cancelled (returning ctx.Err())
// or, with Drain set, until the coordinator reports no available work
// (returning nil). Transport errors are retried — a worker outlives
// coordinator restarts — except that Drain mode gives up after a run of
// consecutive failures, whether the failing call is the acquire or the
// job listing that decides "drained".
func (w *Worker) Run(ctx context.Context) (WorkerStats, error) {
	var stats WorkerStats
	if w.Coordinator == "" || w.Name == "" {
		return stats, fmt.Errorf("fabric: worker needs Coordinator and Name")
	}
	ttl := clampTTL(w.TTL)
	poll := w.Poll
	if poll <= 0 {
		poll = ttl / 2
	}
	errLimit := w.drainErrLimit
	if errLimit <= 0 {
		errLimit = 10
	}
	seed := nameSeed(w.Name)
	// Idle waits draw from a decorrelated-jitter schedule: nominally poll,
	// stretching toward 3x under sustained idleness, reset by useful work.
	jit := resilience.NewJitter(poll, 3*poll, seed)
	cl := NewClientWithOptions(w.Coordinator, ClientOptions{
		HTTPClient: w.HTTPClient,
		Policy:     resilience.Policy{Seed: seed},
	})
	backend := httpstore.NewWithOptions(w.Coordinator, httpstore.Options{
		HTTPClient: w.HTTPClient,
		Policy:     resilience.Policy{Seed: seed},
	})

	consecutiveErrs := 0
	for {
		if ctx.Err() != nil {
			return stats, ctx.Err()
		}
		lease, ok, err := cl.Acquire("", w.Name, ttl)
		if err != nil {
			consecutiveErrs++
			w.logf("worker %s: acquire: %v", w.Name, err)
			if w.Drain && consecutiveErrs >= errLimit {
				return stats, fmt.Errorf("fabric: worker %s: coordinator unreachable: %w", w.Name, err)
			}
			sleep(ctx, jit.Next())
			continue
		}
		if !ok {
			// No leasable shard. In Drain mode that is not yet "done": an
			// incomplete job may be waiting out a dead worker's lease TTL, and
			// this worker must stay to steal it. Exit only when a successful
			// job listing shows every job complete — a failed listing is a
			// coordinator failure like any other, counted against the drain
			// error budget and retried, never mistaken for "drained".
			if w.Drain {
				jobs, jerr := cl.Jobs()
				if jerr != nil {
					consecutiveErrs++
					w.logf("worker %s: jobs: %v", w.Name, jerr)
					if consecutiveErrs >= errLimit {
						return stats, fmt.Errorf("fabric: worker %s: coordinator unreachable: %w", w.Name, jerr)
					}
					sleep(ctx, jit.Next())
					continue
				}
				consecutiveErrs = 0
				open := false
				for _, j := range jobs {
					if !j.Complete {
						open = true
						break
					}
				}
				if !open {
					return stats, nil
				}
			}
			consecutiveErrs = 0
			sleep(ctx, jit.Next())
			continue
		}
		consecutiveErrs = 0
		jit.Reset()
		ran, err := w.runShard(ctx, cl, backend, lease, ttl)
		stats.Scenarios += ran
		if err != nil {
			if ctx.Err() != nil {
				return stats, ctx.Err()
			}
			if errors.Is(err, ErrLeaseLost) {
				// Another worker owns the shard now; its scenarios are in good
				// hands. Go straight back to acquiring — this is contention,
				// not failure, and needs no backoff.
				stats.LeasesLost++
				w.logf("worker %s: %s shard %d/%d lost to another owner after %d scenario(s)",
					w.Name, lease.Job, lease.Shard, lease.Shards, ran)
				continue
			}
			// Abandon the shard: the lease expires and another worker (or a
			// later pass of this one) steals and retries it. Scenarios that
			// finished before the error are checkpointed and will resume.
			var pe *panicError
			if errors.As(err, &pe) {
				stats.Panics++
			}
			w.logf("worker %s: %s shard %d/%d failed after %d scenario(s): %v",
				w.Name, lease.Job, lease.Shard, lease.Shards, ran, err)
			sleep(ctx, jit.Next()) // a poisoned shard must not hot-loop
			continue
		}
		// Crash point: every record of the range is published, the lease
		// table has not heard. Recovery must re-lease and resume the shard,
		// not lose it.
		chaos.MaybeCrash(chaos.CrashWorkerPreComplete)
		if err := cl.Complete(lease, w.Name); err != nil {
			// The records are durable either way; completion is advisory.
			w.logf("worker %s: complete %s shard %d: %v", w.Name, lease.Job, lease.Shard, err)
		} else {
			stats.Shards++
			w.logf("worker %s: completed %s shard %d/%d (%d scenario(s))",
				w.Name, lease.Job, lease.Shard, lease.Shards, ran)
		}
	}
}

// panicError marks a scenario that panicked instead of returning.
type panicError struct {
	scenario int
	val      any
}

func (e *panicError) Error() string {
	return fmt.Sprintf("scenario %d panicked: %v", e.scenario, e.val)
}

// runScenario executes one scenario with panic isolation: a deterministic
// panic in the simulation kernels takes down the shard attempt, never the
// worker process.
func (w *Worker) runScenario(scenario engine.Scenario, backend *httpstore.Client, index int) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = &panicError{scenario: index, val: r}
		}
	}()
	run := w.runFn
	if run == nil {
		run = engine.RunWith
	}
	if _, err := run(scenario, engine.RunConfig{Store: backend, Resume: true}); err != nil {
		return fmt.Errorf("scenario %d: %w", index, err)
	}
	return nil
}

// runShard executes the leased scenario range one scenario at a time —
// scenario granularity is what makes kills cheap (at most one scenario of
// work is lost) and cancellation prompt. Resume is always on: scenarios
// another worker already checkpointed load from the shared store instead of
// recomputing. A background heartbeat keeps the lease alive across long
// scenarios; a heartbeat answered with ErrLeaseLost (the shard was stolen
// or finished elsewhere) cancels the shard between scenarios, so a
// partitioned worker duplicates at most the one scenario it had in flight.
func (w *Worker) runShard(ctx context.Context, cl *Client, backend *httpstore.Client, lease Lease, ttl time.Duration) (int, error) {
	grid, err := lease.Spec.Grid()
	if err != nil {
		return 0, err
	}
	scenarios, err := grid.Scenarios()
	if err != nil {
		return 0, err
	}
	lo, hi := engine.ShardRange(lease.Shard, lease.Shards, len(scenarios))
	w.logf("worker %s: leased %s shard %d/%d (scenarios [%d, %d))",
		w.Name, lease.Job, lease.Shard, lease.Shards, lo, hi)

	shardCtx, stopShard := context.WithCancel(ctx)
	defer stopShard()
	lost := make(chan struct{})
	go func() {
		t := time.NewTicker(ttl / 3)
		defer t.Stop()
		for {
			select {
			case <-shardCtx.Done():
				return
			case <-t.C:
				if err := cl.Heartbeat(lease, w.Name, ttl); err != nil {
					w.logf("worker %s: heartbeat %s shard %d: %v", w.Name, lease.Job, lease.Shard, err)
					if errors.Is(err, ErrLeaseLost) {
						close(lost)
						stopShard()
						return
					}
					// Transient heartbeat failure (already retried by the
					// client): keep computing. Finishing is still correct even
					// if the lease lapses, just possibly duplicated.
				}
			}
		}
	}()

	ran := 0
	for i := lo; i < hi; i++ {
		if shardCtx.Err() != nil {
			select {
			case <-lost:
				return ran, errShardLost
			default:
				return ran, ctx.Err()
			}
		}
		if err := w.runScenario(scenarios[i], backend, i); err != nil {
			return ran, err
		}
		ran++
		sleep(shardCtx, w.Throttle)
	}
	return ran, nil
}
