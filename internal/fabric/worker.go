package fabric

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"time"

	"repro/internal/engine"
	"repro/internal/store/httpstore"
)

// Worker is one cluster compute process: it leases shards from a
// coordinator, runs each leased scenario range through the sweep engine
// with the coordinator's store mounted as its persistent tier (every
// outcome and checkpoint published over HTTP), heartbeats while working,
// and marks shards complete. cmd/served's -worker mode wraps exactly this.
//
// A worker holds no durable state: killing it mid-shard loses nothing but
// the lease TTL — finished scenarios are already checkpointed in the shared
// store, and whichever worker steals the expired lease resumes past them.
type Worker struct {
	Coordinator string        // coordinator base URL (required)
	Name        string        // lease owner identity (required)
	TTL         time.Duration // requested lease TTL (0 = DefaultTTL)
	Poll        time.Duration // idle/retry poll interval (0 = TTL/2)
	Drain       bool          // exit cleanly when the coordinator has no work
	Throttle    time.Duration // optional pause between scenarios (rate-limits a shared box)

	// HTTPClient is shared by the lease client and the store backend; nil
	// uses defaults.
	HTTPClient *http.Client
	// Log receives one progress line per lease event; nil is silent.
	Log io.Writer

	// drainErrLimit bounds consecutive coordinator failures in Drain mode
	// before giving up (0 = default 10). Without Drain a worker retries
	// forever — coordinator downtime is expected during restarts.
	drainErrLimit int
}

// WorkerStats summarizes one Run.
type WorkerStats struct {
	Shards    int // shards completed
	Scenarios int // scenarios this worker ran (or resumed) itself
}

func (w *Worker) logf(format string, args ...any) {
	if w.Log != nil {
		fmt.Fprintf(w.Log, format+"\n", args...)
	}
}

// sleep pauses for d or until ctx is cancelled.
func sleep(ctx context.Context, d time.Duration) {
	if d <= 0 {
		return
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
	case <-t.C:
	}
}

// Run executes the lease loop until ctx is cancelled (returning ctx.Err())
// or, with Drain set, until the coordinator reports no available work
// (returning nil). Transport errors are retried — a worker outlives
// coordinator restarts — except that Drain mode gives up after a run of
// consecutive failures.
func (w *Worker) Run(ctx context.Context) (WorkerStats, error) {
	var stats WorkerStats
	if w.Coordinator == "" || w.Name == "" {
		return stats, fmt.Errorf("fabric: worker needs Coordinator and Name")
	}
	ttl := clampTTL(w.TTL)
	poll := w.Poll
	if poll <= 0 {
		poll = ttl / 2
	}
	errLimit := w.drainErrLimit
	if errLimit <= 0 {
		errLimit = 10
	}
	cl := NewClient(w.Coordinator, w.HTTPClient)
	backend := httpstore.New(w.Coordinator, w.HTTPClient)

	consecutiveErrs := 0
	for {
		if ctx.Err() != nil {
			return stats, ctx.Err()
		}
		lease, ok, err := cl.Acquire("", w.Name, ttl)
		if err != nil {
			consecutiveErrs++
			w.logf("worker %s: acquire: %v", w.Name, err)
			if w.Drain && consecutiveErrs >= errLimit {
				return stats, fmt.Errorf("fabric: worker %s: coordinator unreachable: %w", w.Name, err)
			}
			sleep(ctx, poll)
			continue
		}
		consecutiveErrs = 0
		if !ok {
			// No leasable shard. In Drain mode that is not yet "done": an
			// incomplete job may be waiting out a dead worker's lease TTL, and
			// this worker must stay to steal it. Exit only when every job is
			// complete (or the job listing itself fails — no basis to wait).
			if w.Drain {
				jobs, err := cl.Jobs()
				open := false
				for _, j := range jobs {
					if !j.Complete {
						open = true
						break
					}
				}
				if err != nil || !open {
					return stats, nil
				}
			}
			sleep(ctx, poll)
			continue
		}
		ran, err := w.runShard(ctx, cl, backend, lease, ttl)
		stats.Scenarios += ran
		if err != nil {
			// Abandon the shard: the lease expires and another worker (or a
			// later pass of this one) steals and retries it. Scenarios that
			// finished before the error are checkpointed and will resume.
			w.logf("worker %s: %s shard %d/%d failed after %d scenario(s): %v",
				w.Name, lease.Job, lease.Shard, lease.Shards, ran, err)
			if ctx.Err() != nil {
				return stats, ctx.Err()
			}
			sleep(ctx, poll) // a poisoned shard must not hot-loop
			continue
		}
		if err := cl.Complete(lease, w.Name); err != nil {
			// The records are durable either way; completion is advisory.
			w.logf("worker %s: complete %s shard %d: %v", w.Name, lease.Job, lease.Shard, err)
		} else {
			stats.Shards++
			w.logf("worker %s: completed %s shard %d/%d (%d scenario(s))",
				w.Name, lease.Job, lease.Shard, lease.Shards, ran)
		}
	}
}

// runShard executes the leased scenario range one scenario at a time —
// scenario granularity is what makes kills cheap (at most one scenario of
// work is lost) and cancellation prompt. Resume is always on: scenarios
// another worker already checkpointed load from the shared store instead of
// recomputing. A background heartbeat keeps the lease alive across long
// scenarios; losing it does not abort the shard (finishing is still
// correct, just possibly duplicated).
func (w *Worker) runShard(ctx context.Context, cl *Client, backend *httpstore.Client, lease Lease, ttl time.Duration) (int, error) {
	grid, err := lease.Spec.Grid()
	if err != nil {
		return 0, err
	}
	scenarios, err := grid.Scenarios()
	if err != nil {
		return 0, err
	}
	lo, hi := engine.ShardRange(lease.Shard, lease.Shards, len(scenarios))
	w.logf("worker %s: leased %s shard %d/%d (scenarios [%d, %d))",
		w.Name, lease.Job, lease.Shard, lease.Shards, lo, hi)

	hbCtx, stopHB := context.WithCancel(ctx)
	defer stopHB()
	go func() {
		t := time.NewTicker(ttl / 3)
		defer t.Stop()
		for {
			select {
			case <-hbCtx.Done():
				return
			case <-t.C:
				if err := cl.Heartbeat(lease, w.Name, ttl); err != nil {
					w.logf("worker %s: heartbeat %s shard %d: %v", w.Name, lease.Job, lease.Shard, err)
				}
			}
		}
	}()

	ran := 0
	for i := lo; i < hi; i++ {
		if err := ctx.Err(); err != nil {
			return ran, err
		}
		if _, err := engine.RunWith(scenarios[i], engine.RunConfig{Store: backend, Resume: true}); err != nil {
			return ran, fmt.Errorf("scenario %d: %w", i, err)
		}
		ran++
		sleep(ctx, w.Throttle)
	}
	return ran, nil
}
