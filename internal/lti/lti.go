// Package lti models the linear time-invariant feedback-control plants of
// the paper: continuous-time SISO state-space systems, their zero-order-hold
// discretizations (including the delayed-input discretization needed when
// the sensing-to-actuation delay is shorter than the sampling period), and
// response/settling-time measurement.
//
// Conventions follow Section II-A of the paper: dynamics
// x[k+1] = A x[k] + B u[k], output y[k] = C x[k], state fully measurable.
package lti

import (
	"errors"
	"fmt"

	"repro/internal/mat"
)

// System is a continuous-time SISO LTI plant dx/dt = A x + B u, y = C x.
type System struct {
	A *mat.Matrix // l-by-l state matrix
	B *mat.Matrix // l-by-1 input matrix
	C *mat.Matrix // 1-by-l output matrix
}

// NewSystem validates dimensions and returns a continuous-time system.
func NewSystem(a, b, c *mat.Matrix) (*System, error) {
	l := a.Rows()
	if a.Cols() != l {
		return nil, fmt.Errorf("lti: A must be square, got %dx%d", a.Rows(), a.Cols())
	}
	if b.Rows() != l || b.Cols() != 1 {
		return nil, fmt.Errorf("lti: B must be %dx1, got %dx%d", l, b.Rows(), b.Cols())
	}
	if c.Rows() != 1 || c.Cols() != l {
		return nil, fmt.Errorf("lti: C must be 1x%d, got %dx%d", l, c.Rows(), c.Cols())
	}
	return &System{A: a, B: b, C: c}, nil
}

// MustSystem is NewSystem that panics on error, for static plant tables.
func MustSystem(a, b, c *mat.Matrix) *System {
	s, err := NewSystem(a, b, c)
	if err != nil {
		panic(err)
	}
	return s
}

// Order returns the number of states l.
func (s *System) Order() int { return s.A.Rows() }

// Ctrb returns the controllability matrix [B AB ... A^(l-1)B] (l-by-l for
// SISO systems).
func Ctrb(a, b *mat.Matrix) *mat.Matrix {
	l := a.Rows()
	ctrb := mat.New(l, l*b.Cols())
	col := b.Clone()
	for k := 0; k < l; k++ {
		ctrb.SetSlice(0, k*b.Cols(), col)
		col = a.Mul(col)
	}
	return ctrb
}

// IsControllable reports whether (A, B) is controllable, i.e. the
// controllability matrix is full rank. For the SISO systems used here the
// matrix is square, so a determinant test suffices (with a scale-aware
// threshold).
func IsControllable(a, b *mat.Matrix) bool {
	ct := Ctrb(a, b)
	d := mat.Det(ct)
	scale := ct.InfNorm()
	if scale == 0 {
		return false
	}
	// Normalize: |det| relative to norm^l guards against false negatives
	// from badly scaled (but controllable) systems.
	l := float64(a.Rows())
	ref := 1.0
	for i := 0.0; i < l; i++ {
		ref *= scale
	}
	return d != 0 && abs(d) > 1e-12*ref
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

// StableCT reports whether the continuous-time system matrix is Hurwitz
// (all eigenvalue real parts strictly negative).
func StableCT(a *mat.Matrix) (bool, error) {
	eigs, err := mat.Eigenvalues(a)
	if err != nil {
		return false, err
	}
	for _, e := range eigs {
		if real(e) >= 0 {
			return false, nil
		}
	}
	return true, nil
}

// StableDT reports whether a discrete-time system matrix is Schur (spectral
// radius strictly less than one).
func StableDT(a *mat.Matrix) (bool, error) {
	r, err := mat.SpectralRadius(a)
	if err != nil {
		return false, err
	}
	return r < 1, nil
}

// Discrete is a standard ZOH discretization of a System at period h:
// x[k+1] = Ad x[k] + Bd u[k], y = C x.
type Discrete struct {
	Ad *mat.Matrix
	Bd *mat.Matrix
	C  *mat.Matrix
	H  float64 // sampling period in seconds
}

// ErrNonPositivePeriod is returned when a discretization is requested with
// h <= 0 or a delay outside [0, h].
var ErrNonPositivePeriod = errors.New("lti: sampling period must be positive and delay within [0, h]")

// Discretize returns the exact ZOH discretization of s at period h.
func Discretize(s *System, h float64) (*Discrete, error) {
	if h <= 0 {
		return nil, ErrNonPositivePeriod
	}
	ad, bd := mat.ExpmIntegral(s.A, s.B, h)
	return &Discrete{Ad: ad, Bd: bd, C: s.C.Clone(), H: h}, nil
}

// DelayedDiscrete is the discretization of one sampling interval of length H
// during which the control input switches once: the previously computed
// input uPrev is applied on [0, H-Tau') ... precisely, the input computed
// from the sample at the interval start is actuated Tau seconds into the
// interval (the sensing-to-actuation delay), with the held previous input
// applied before that:
//
//	x[k+1] = Ad x[k] + BPrev u[k-1] + BCur u[k]
//
// With Tau == H (delay equal to the period, the case for back-to-back tasks
// in a burst) BCur is zero and the new input only takes effect in the next
// interval.
type DelayedDiscrete struct {
	Ad    *mat.Matrix
	BPrev *mat.Matrix
	BCur  *mat.Matrix
	C     *mat.Matrix
	H     float64 // sampling period (s)
	Tau   float64 // sensing-to-actuation delay (s), 0 <= Tau <= H
}

// DiscretizeDelayed returns the delayed-input discretization of s over one
// interval of length h with sensing-to-actuation delay tau in [0, h].
//
// Derivation (paper Eq. (12)): the state at the end of the interval is
//
//	x(h) = e^{Ah} x(0) + e^{A(h-tau)} Γ(tau) u_prev + Γ(h-tau) u_cur
//
// with Γ(t) = ∫₀ᵗ e^{As} ds · B, since u_prev is held on [0,tau) and u_cur
// on [tau,h).
func DiscretizeDelayed(s *System, h, tau float64) (*DelayedDiscrete, error) {
	if h <= 0 || tau < 0 || tau > h+1e-15 {
		return nil, ErrNonPositivePeriod
	}
	if tau > h {
		tau = h
	}
	ad, _ := mat.ExpmIntegral(s.A, s.B, h)
	l := s.Order()
	var bPrev, bCur *mat.Matrix
	switch {
	case tau == 0:
		// Input computed instantly: classic ZOH.
		_, g := mat.ExpmIntegral(s.A, s.B, h)
		bPrev = mat.Zeros(l, 1)
		bCur = g
	case tau >= h:
		// New input only effective from the next interval.
		_, g := mat.ExpmIntegral(s.A, s.B, h)
		bPrev = g
		bCur = mat.Zeros(l, 1)
	default:
		eRest, gTail := mat.ExpmIntegral(s.A, s.B, h-tau) // e^{A(h-tau)}, Γ(h-tau)
		_, gHead := mat.ExpmIntegral(s.A, s.B, tau)       // Γ(tau)
		bPrev = eRest.Mul(gHead)
		bCur = gTail
	}
	return &DelayedDiscrete{Ad: ad, BPrev: bPrev, BCur: bCur, C: s.C.Clone(), H: h, Tau: tau}, nil
}

// BTotal returns BPrev + BCur, which equals the plain ZOH input matrix Γ(H)
// and governs the DC gain of the interval.
func (d *DelayedDiscrete) BTotal() *mat.Matrix { return d.BPrev.Add(d.BCur) }
