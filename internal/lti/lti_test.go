package lti

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/mat"
)

// doubleIntegrator returns the standard double-integrator plant.
func doubleIntegrator() *System {
	return MustSystem(
		mat.NewFromRows([][]float64{{0, 1}, {0, 0}}),
		mat.ColVec(0, 1),
		mat.RowVec(1, 0),
	)
}

// stableFirstOrder returns dx/dt = -a x + a u (DC gain 1, time constant 1/a).
func stableFirstOrder(a float64) *System {
	return MustSystem(
		mat.NewFromRows([][]float64{{-a}}),
		mat.ColVec(a),
		mat.RowVec(1),
	)
}

func TestNewSystemValidation(t *testing.T) {
	a := mat.Identity(2)
	b := mat.ColVec(1, 0)
	c := mat.RowVec(1, 0)
	if _, err := NewSystem(a, b, c); err != nil {
		t.Fatalf("valid system rejected: %v", err)
	}
	if _, err := NewSystem(mat.New(2, 3), b, c); err == nil {
		t.Error("non-square A accepted")
	}
	if _, err := NewSystem(a, mat.ColVec(1), c); err == nil {
		t.Error("wrong-size B accepted")
	}
	if _, err := NewSystem(a, b, mat.RowVec(1)); err == nil {
		t.Error("wrong-size C accepted")
	}
}

func TestCtrbDoubleIntegrator(t *testing.T) {
	s := doubleIntegrator()
	ct := Ctrb(s.A, s.B)
	want := mat.NewFromRows([][]float64{{0, 1}, {1, 0}})
	if !ct.Equal(want, 0) {
		t.Errorf("Ctrb:\n%v", ct)
	}
	if !IsControllable(s.A, s.B) {
		t.Error("double integrator must be controllable")
	}
}

func TestNotControllable(t *testing.T) {
	// Second state disconnected from the input.
	a := mat.NewFromRows([][]float64{{-1, 0}, {0, -2}})
	b := mat.ColVec(1, 0)
	if IsControllable(a, b) {
		t.Error("disconnected mode reported controllable")
	}
}

func TestStability(t *testing.T) {
	stable, err := StableCT(mat.NewFromRows([][]float64{{-1, 0}, {0, -3}}))
	if err != nil || !stable {
		t.Errorf("Hurwitz matrix reported unstable: %v %v", stable, err)
	}
	stable, err = StableCT(mat.NewFromRows([][]float64{{0, 1}, {0, 0}}))
	if err != nil || stable {
		t.Error("double integrator is not asymptotically stable")
	}
	stable, err = StableDT(mat.NewFromRows([][]float64{{0.5, 1}, {0, -0.9}}))
	if err != nil || !stable {
		t.Error("Schur matrix reported unstable")
	}
	stable, err = StableDT(mat.Identity(2))
	if err != nil || stable {
		t.Error("identity is not Schur stable")
	}
}

func TestDiscretizeFirstOrder(t *testing.T) {
	a := 3.0
	s := stableFirstOrder(a)
	h := 0.2
	d, err := Discretize(s, h)
	if err != nil {
		t.Fatal(err)
	}
	wantAd := math.Exp(-a * h)
	wantBd := 1 - math.Exp(-a*h) // DC gain 1
	if math.Abs(d.Ad.At(0, 0)-wantAd) > 1e-12 {
		t.Errorf("Ad = %g, want %g", d.Ad.At(0, 0), wantAd)
	}
	if math.Abs(d.Bd.At(0, 0)-wantBd) > 1e-12 {
		t.Errorf("Bd = %g, want %g", d.Bd.At(0, 0), wantBd)
	}
}

func TestDiscretizeRejectsBadPeriod(t *testing.T) {
	s := stableFirstOrder(1)
	if _, err := Discretize(s, 0); err == nil {
		t.Error("h=0 accepted")
	}
	if _, err := DiscretizeDelayed(s, 0.1, -0.01); err == nil {
		t.Error("negative delay accepted")
	}
	if _, err := DiscretizeDelayed(s, 0.1, 0.2); err == nil {
		t.Error("delay > h accepted")
	}
}

func TestDelayedDiscretizationLimits(t *testing.T) {
	s := doubleIntegrator()
	h := 0.1
	zoh, err := Discretize(s, h)
	if err != nil {
		t.Fatal(err)
	}
	// tau = 0: all input weight on BCur, equals ZOH.
	d0, err := DiscretizeDelayed(s, h, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !d0.BCur.Equal(zoh.Bd, 1e-12) || d0.BPrev.MaxAbs() > 1e-14 {
		t.Error("tau=0 must reduce to plain ZOH")
	}
	// tau = h: all input weight on BPrev.
	dh, err := DiscretizeDelayed(s, h, h)
	if err != nil {
		t.Fatal(err)
	}
	if !dh.BPrev.Equal(zoh.Bd, 1e-12) || dh.BCur.MaxAbs() > 1e-14 {
		t.Error("tau=h must push all weight to the held input")
	}
}

func TestDelayedBTotalEqualsZOH(t *testing.T) {
	// For any tau, BPrev + BCur == Γ(h): same DC behavior.
	s := doubleIntegrator()
	h := 0.25
	zoh, _ := Discretize(s, h)
	for _, tau := range []float64{0, 0.05, 0.125, 0.2, 0.25} {
		d, err := DiscretizeDelayed(s, h, tau)
		if err != nil {
			t.Fatal(err)
		}
		if !d.BTotal().Equal(zoh.Bd, 1e-12) {
			t.Errorf("tau=%g: BPrev+BCur != Γ(h)", tau)
		}
		if !d.Ad.Equal(zoh.Ad, 1e-12) {
			t.Errorf("tau=%g: Ad mismatch", tau)
		}
	}
}

func TestDelayedDiscretizationAnalytic(t *testing.T) {
	// First-order system: closed forms for BPrev and BCur.
	a := 2.0
	s := stableFirstOrder(a)
	h, tau := 0.3, 0.1
	d, err := DiscretizeDelayed(s, h, tau)
	if err != nil {
		t.Fatal(err)
	}
	gamma := func(t float64) float64 { return 1 - math.Exp(-a*t) } // ∫e^{-as}a ds
	wantPrev := math.Exp(-a*(h-tau)) * gamma(tau)
	wantCur := gamma(h - tau)
	if math.Abs(d.BPrev.At(0, 0)-wantPrev) > 1e-12 {
		t.Errorf("BPrev = %g, want %g", d.BPrev.At(0, 0), wantPrev)
	}
	if math.Abs(d.BCur.At(0, 0)-wantCur) > 1e-12 {
		t.Errorf("BCur = %g, want %g", d.BCur.At(0, 0), wantCur)
	}
}

// Property: splitting an interval at the delay point and composing two exact
// ZOH discretizations reproduces the delayed discretization.
func TestQuickDelayedComposition(t *testing.T) {
	f := func(seed int64) bool {
		rr := rand.New(rand.NewSource(seed))
		n := 1 + rr.Intn(3)
		a := mat.New(n, n)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				a.Set(i, j, rr.NormFloat64())
			}
		}
		b := mat.New(n, 1)
		for i := 0; i < n; i++ {
			b.Set(i, 0, rr.NormFloat64())
		}
		c := mat.New(1, n)
		c.Set(0, 0, 1)
		s := MustSystem(a, b, c)
		h := 0.05 + 0.3*rr.Float64()
		tau := h * rr.Float64()
		d, err := DiscretizeDelayed(s, h, tau)
		if err != nil {
			return false
		}
		// Propagate x over [0,tau) with uPrev, then [tau,h) with uCur.
		ad1, bd1 := mat.ExpmIntegral(a, b, tau)
		ad2, bd2 := mat.ExpmIntegral(a, b, h-tau)
		// x(h) = ad2*(ad1 x + bd1 uPrev) + bd2 uCur
		okA := ad2.Mul(ad1).Equal(d.Ad, 1e-8*(1+d.Ad.MaxAbs()))
		okP := ad2.Mul(bd1).Equal(d.BPrev, 1e-8*(1+d.BPrev.MaxAbs()+1))
		okC := bd2.Equal(d.BCur, 1e-8*(1+d.BCur.MaxAbs()+1))
		return okA && okP && okC
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestSettlingTime(t *testing.T) {
	traj := []Sample{
		{0, 0}, {1, 0.5}, {2, 0.9}, {3, 1.05}, {4, 0.99}, {5, 1.01}, {6, 1.0},
	}
	st, ok := SettlingTime(traj, 1, 0.02)
	if !ok || st != 4 {
		t.Errorf("settling time = %g, %v; want 4, true", st, ok)
	}
}

func TestSettlingTimeNever(t *testing.T) {
	traj := []Sample{{0, 0}, {1, 2}, {2, 0}, {3, 2}}
	st, ok := SettlingTime(traj, 1, 0.02)
	if ok {
		t.Errorf("oscillating trajectory settled at %g", st)
	}
	if st != 3 {
		t.Errorf("unsettled time should be horizon end, got %g", st)
	}
}

func TestSettlingTimeLeavesBand(t *testing.T) {
	// Enters the band then leaves: settling counts from the final entry.
	traj := []Sample{{0, 1.0}, {1, 1.0}, {2, 1.5}, {3, 1.0}, {4, 1.0}}
	st, ok := SettlingTime(traj, 1, 0.02)
	if !ok || st != 3 {
		t.Errorf("settling after excursion = %g, %v; want 3, true", st, ok)
	}
}

func TestSettlingTimeEmpty(t *testing.T) {
	if _, ok := SettlingTime(nil, 1, 0.02); ok {
		t.Error("empty trajectory must not settle")
	}
}

func TestSettlingImmediate(t *testing.T) {
	traj := []Sample{{0, 1.0}, {1, 1.0}}
	st, ok := SettlingTime(traj, 1, 0.02)
	if !ok || st != 0 {
		t.Errorf("immediate settle = %g, %v", st, ok)
	}
}

func TestAnalyzeStep(t *testing.T) {
	traj := []Sample{{0, 0}, {1, 1.3}, {2, 1.0}, {3, 1.0}}
	info := AnalyzeStep(traj, []float64{0.5, -2, 0.1}, 1, 0.02)
	if info.PeakOutput != 1.3 {
		t.Errorf("peak output = %g", info.PeakOutput)
	}
	if info.PeakInput != 2 {
		t.Errorf("peak input = %g", info.PeakInput)
	}
	if !info.Settled || info.SettlingTime != 2 {
		t.Errorf("settling = %g, %v", info.SettlingTime, info.Settled)
	}
}

func TestMaxAbsInput(t *testing.T) {
	if MaxAbsInput(nil) != 0 {
		t.Error("empty input max should be 0")
	}
	if MaxAbsInput([]float64{1, -3, 2}) != 3 {
		t.Error("wrong max abs")
	}
}
