package lti

import "math"

// Sample is one point of a sampled output trajectory.
type Sample struct {
	T float64 // time in seconds
	Y float64 // system output
}

// SettlingBand is the default ±2 % band around the reference used by the
// paper ("reach and stay in a closed region around r, e.g. 0.98r to 1.02r").
const SettlingBand = 0.02

// SettlingTime returns the earliest sample time after which the output
// remains inside the band [r-δ, r+δ] with δ = band*|r| for the remainder of
// the trajectory, and true. If the trajectory never settles (or leaves the
// band again before the horizon ends), it returns the horizon end and
// false.
//
// The trajectory must be time-ordered. An empty trajectory never settles.
// For r == 0 the band degenerates; callers should track a non-zero
// reference, matching the paper's experiments.
func SettlingTime(traj []Sample, r, band float64) (float64, bool) {
	if len(traj) == 0 {
		return math.Inf(1), false
	}
	delta := band * math.Abs(r)
	settleIdx := -1
	for i, s := range traj {
		if math.Abs(s.Y-r) <= delta {
			if settleIdx < 0 {
				settleIdx = i
			}
		} else {
			settleIdx = -1
		}
	}
	if settleIdx < 0 {
		return traj[len(traj)-1].T, false
	}
	return traj[settleIdx].T, true
}

// SettlingTimeSeries is SettlingTime over parallel time/output slices
// instead of []Sample. It exists for callers that already hold the
// trajectory as separate slices (ctrl.Trajectory), so settling analysis does
// not have to materialize a fresh []Sample per evaluation. The two slices
// must have equal length; behavior matches SettlingTime exactly.
func SettlingTimeSeries(times, outputs []float64, r, band float64) (float64, bool) {
	if len(times) == 0 {
		return math.Inf(1), false
	}
	delta := band * math.Abs(r)
	settleIdx := -1
	for i, y := range outputs {
		if math.Abs(y-r) <= delta {
			if settleIdx < 0 {
				settleIdx = i
			}
		} else {
			settleIdx = -1
		}
	}
	if settleIdx < 0 {
		return times[len(times)-1], false
	}
	return times[settleIdx], true
}

// MaxAbsInput returns the largest |u| over an input trajectory; it is used
// to check the saturation constraint u[k] <= Umax.
func MaxAbsInput(u []float64) float64 {
	max := 0.0
	for _, v := range u {
		if a := math.Abs(v); a > max {
			max = a
		}
	}
	return max
}

// StepInfo summarizes a step response: settling time, whether it settled,
// peak output (for overshoot inspection), and peak |input|.
type StepInfo struct {
	SettlingTime float64
	Settled      bool
	PeakOutput   float64
	PeakInput    float64
}

// AnalyzeStep computes StepInfo for an output trajectory, reference r, and
// the applied input sequence.
func AnalyzeStep(traj []Sample, u []float64, r, band float64) StepInfo {
	st, ok := SettlingTime(traj, r, band)
	peak := math.Inf(-1)
	for _, s := range traj {
		if s.Y > peak {
			peak = s.Y
		}
	}
	return StepInfo{
		SettlingTime: st,
		Settled:      ok,
		PeakOutput:   peak,
		PeakInput:    MaxAbsInput(u),
	}
}

// AnalyzeStepSeries is AnalyzeStep over parallel time/output slices, with no
// intermediate []Sample allocation. times and outputs must have equal
// length; results match AnalyzeStep on the zipped trajectory exactly.
func AnalyzeStepSeries(times, outputs, u []float64, r, band float64) StepInfo {
	st, ok := SettlingTimeSeries(times, outputs, r, band)
	peak := math.Inf(-1)
	for _, y := range outputs {
		if y > peak {
			peak = y
		}
	}
	return StepInfo{
		SettlingTime: st,
		Settled:      ok,
		PeakOutput:   peak,
		PeakInput:    MaxAbsInput(u),
	}
}
