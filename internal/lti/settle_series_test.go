package lti

import (
	"math/rand"
	"testing"
)

// TestSeriesMatchesSamples fuzzes random trajectories and requires the
// slice-based analysis to agree bit-for-bit with the []Sample one: the
// controller evaluation path switched to the series variants and the golden
// tables must not move.
func TestSeriesMatchesSamples(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for trial := 0; trial < 200; trial++ {
		n := r.Intn(40)
		traj := make([]Sample, n)
		times := make([]float64, n)
		outputs := make([]float64, n)
		u := make([]float64, n)
		tcur := 0.0
		for i := 0; i < n; i++ {
			tcur += r.Float64()
			y := 1 + 0.1*r.NormFloat64()
			traj[i] = Sample{T: tcur, Y: y}
			times[i], outputs[i] = tcur, y
			u[i] = r.NormFloat64()
		}
		ref := 1.0
		band := 0.05 * r.Float64()

		st1, ok1 := SettlingTime(traj, ref, band)
		st2, ok2 := SettlingTimeSeries(times, outputs, ref, band)
		if st1 != st2 || ok1 != ok2 {
			t.Fatalf("trial %d: SettlingTime (%v,%v) != Series (%v,%v)", trial, st1, ok1, st2, ok2)
		}

		i1 := AnalyzeStep(traj, u, ref, band)
		i2 := AnalyzeStepSeries(times, outputs, u, ref, band)
		if i1 != i2 {
			t.Fatalf("trial %d: AnalyzeStep %+v != Series %+v", trial, i1, i2)
		}
	}
}

// TestAnalyzeStepSeriesAllocs pins the series path at zero allocations.
func TestAnalyzeStepSeriesAllocs(t *testing.T) {
	times := []float64{0, 1, 2, 3}
	outputs := []float64{0, 0.5, 1.0, 1.0}
	u := []float64{1, 2, 1, 0}
	allocs := testing.AllocsPerRun(100, func() {
		AnalyzeStepSeries(times, outputs, u, 1, 0.02)
	})
	if allocs != 0 {
		t.Errorf("AnalyzeStepSeries allocates %v per run, want 0", allocs)
	}
}
