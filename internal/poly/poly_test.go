package poly

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"repro/internal/mat"
)

func TestEvalHorner(t *testing.T) {
	p := New(1, -2, 3) // 1 - 2x + 3x^2
	if got := p.Eval(2); got != 9 {
		t.Errorf("Eval(2) = %g, want 9", got)
	}
	if got := p.Eval(0); got != 1 {
		t.Errorf("Eval(0) = %g, want 1", got)
	}
	if got := New().Eval(5); got != 0 {
		t.Errorf("empty poly Eval = %g", got)
	}
}

func TestEvalC(t *testing.T) {
	p := New(1, 0, 1) // 1 + x^2, roots ±i
	if v := p.EvalC(complex(0, 1)); real(v) != 0 || imag(v) != 0 {
		t.Errorf("EvalC(i) = %v, want 0", v)
	}
}

func TestDegreeAndTrim(t *testing.T) {
	if New(1, 2, 0, 0).Degree() != 1 {
		t.Error("trailing zeros should be trimmed")
	}
	if New(5).Degree() != 0 {
		t.Error("constant degree")
	}
}

func TestMulAddScale(t *testing.T) {
	p := New(1, 1)  // 1+x
	q := New(-1, 1) // -1+x
	prod := p.Mul(q)
	want := New(-1, 0, 1) // x^2-1
	for i := range want {
		if math.Abs(prod[i]-want[i]) > 1e-15 {
			t.Errorf("Mul: got %v want %v", prod, want)
		}
	}
	sum := p.Add(q)
	if sum.Degree() != 1 || sum[0] != 0 || sum[1] != 2 {
		t.Errorf("Add: got %v", sum)
	}
	if s := p.Scale(3); s[0] != 3 || s[1] != 3 {
		t.Errorf("Scale: got %v", s)
	}
}

func TestDerivative(t *testing.T) {
	p := New(1, 2, 3) // 1+2x+3x^2 -> 2+6x
	d := p.Derivative()
	if d.Degree() != 1 || d[0] != 2 || d[1] != 6 {
		t.Errorf("Derivative: got %v", d)
	}
	if c := New(7).Derivative(); c.Degree() != 0 || c[0] != 0 {
		t.Errorf("constant derivative: %v", c)
	}
}

func TestFromRootsReal(t *testing.T) {
	p, err := FromRoots([]complex128{1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	// (x-1)(x-2)(x-3) = x^3 - 6x^2 + 11x - 6
	want := []float64{-6, 11, -6, 1}
	for i, w := range want {
		if math.Abs(p[i]-w) > 1e-12 {
			t.Errorf("FromRoots coeff %d = %g, want %g", i, p[i], w)
		}
	}
}

func TestFromRootsConjugatePair(t *testing.T) {
	p, err := FromRoots([]complex128{complex(0.5, 0.3), complex(0.5, -0.3)})
	if err != nil {
		t.Fatal(err)
	}
	// (x-(0.5+0.3i))(x-(0.5-0.3i)) = x^2 - x + 0.34
	want := []float64{0.34, -1, 1}
	for i, w := range want {
		if math.Abs(p[i]-w) > 1e-12 {
			t.Errorf("coeff %d = %g, want %g", i, p[i], w)
		}
	}
}

func TestFromRootsUnpairedComplexFails(t *testing.T) {
	if _, err := FromRoots([]complex128{complex(0, 1)}); err == nil {
		t.Error("unpaired complex root must error")
	}
}

func TestCompanionRoundTrip(t *testing.T) {
	p := New(-6, 11, -6, 1)
	roots, err := p.Roots()
	if err != nil {
		t.Fatal(err)
	}
	got := []float64{real(roots[0]), real(roots[1]), real(roots[2])}
	sort.Float64s(got)
	for i, w := range []float64{1, 2, 3} {
		if math.Abs(got[i]-w) > 1e-8 {
			t.Errorf("root %d = %g, want %g", i, got[i], w)
		}
	}
}

func TestCompanionNonMonic(t *testing.T) {
	// 2x^2 - 2 has roots ±1 after normalization.
	roots, err := New(-2, 0, 2).Roots()
	if err != nil {
		t.Fatal(err)
	}
	mags := []float64{real(roots[0]), real(roots[1])}
	sort.Float64s(mags)
	if math.Abs(mags[0]+1) > 1e-10 || math.Abs(mags[1]-1) > 1e-10 {
		t.Errorf("roots: %v", roots)
	}
}

func TestRootsOfConstant(t *testing.T) {
	r, err := New(5).Roots()
	if err != nil || r != nil {
		t.Errorf("constant roots: %v, %v", r, err)
	}
}

func TestCharPolyKnown(t *testing.T) {
	a := mat.NewFromRows([][]float64{{2, 1}, {0, 3}})
	p := CharPoly(a)
	// (x-2)(x-3) = x^2 -5x + 6
	want := []float64{6, -5, 1}
	for i, w := range want {
		if math.Abs(p[i]-w) > 1e-12 {
			t.Errorf("charpoly coeff %d = %g, want %g", i, p[i], w)
		}
	}
}

func TestEvalMatCayleyHamilton(t *testing.T) {
	// A matrix satisfies its own characteristic polynomial.
	r := rand.New(rand.NewSource(21))
	for trial := 0; trial < 5; trial++ {
		n := 2 + r.Intn(4)
		a := mat.New(n, n)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				a.Set(i, j, r.NormFloat64())
			}
		}
		p := CharPoly(a)
		z := p.EvalMat(a)
		if z.MaxAbs() > 1e-8*(1+math.Pow(a.InfNorm(), float64(n))) {
			t.Errorf("Cayley–Hamilton residual %g at n=%d", z.MaxAbs(), n)
		}
	}
}

// Property: FromRoots followed by Roots recovers the root multiset.
func TestQuickFromRootsRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		rr := rand.New(rand.NewSource(seed))
		n := 1 + rr.Intn(4)
		roots := make([]complex128, n)
		for i := range roots {
			roots[i] = complex(rr.NormFloat64(), 0)
		}
		p, err := FromRoots(roots)
		if err != nil {
			return false
		}
		got, err := p.Roots()
		if err != nil {
			return false
		}
		want := make([]float64, n)
		for i, r := range roots {
			want[i] = real(r)
		}
		gotR := make([]float64, n)
		for i, g := range got {
			if math.Abs(imag(g)) > 1e-5 {
				return false
			}
			gotR[i] = real(g)
		}
		sort.Float64s(want)
		sort.Float64s(gotR)
		for i := range want {
			if math.Abs(want[i]-gotR[i]) > 1e-4*(1+math.Abs(want[i])) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// Property: CharPoly roots match Eigenvalues of the same matrix.
func TestQuickCharPolyMatchesEig(t *testing.T) {
	f := func(seed int64) bool {
		rr := rand.New(rand.NewSource(seed))
		n := 2 + rr.Intn(3)
		a := mat.New(n, n)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				a.Set(i, j, rr.NormFloat64())
			}
		}
		pr, err := CharPoly(a).Roots()
		if err != nil {
			return false
		}
		ev, err := mat.Eigenvalues(a)
		if err != nil {
			return false
		}
		mat.SortEigenvalues(pr)
		mat.SortEigenvalues(ev)
		for i := range pr {
			d := pr[i] - ev[i]
			if math.Hypot(real(d), imag(d)) > 1e-4*(1+math.Hypot(real(ev[i]), imag(ev[i]))) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestStringFormats(t *testing.T) {
	if s := New(1, -2, 3).String(); s == "" {
		t.Error("String empty")
	}
	if s := New(0).String(); s != "0" {
		t.Errorf("zero poly String = %q", s)
	}
}
