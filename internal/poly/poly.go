// Package poly implements real polynomial arithmetic used by the
// pole-placement machinery: construction from complex root sets,
// evaluation at scalars and matrices, characteristic polynomials, and root
// finding through companion matrices.
package poly

import (
	"fmt"
	"math"
	"math/cmplx"

	"repro/internal/mat"
)

// Poly is a real polynomial stored with ascending coefficients:
// p[0] + p[1]*x + p[2]*x^2 + ...
type Poly []float64

// New returns a polynomial with the given ascending coefficients, trimmed
// of trailing (highest-degree) zeros.
func New(coeffs ...float64) Poly {
	p := Poly(append([]float64(nil), coeffs...))
	return p.trim()
}

func (p Poly) trim() Poly {
	n := len(p)
	for n > 1 && p[n-1] == 0 {
		n--
	}
	return p[:n]
}

// Degree returns the degree of p (0 for constants, including the zero
// polynomial).
func (p Poly) Degree() int {
	if len(p) == 0 {
		return 0
	}
	return len(p) - 1
}

// Eval evaluates p at x using Horner's rule.
func (p Poly) Eval(x float64) float64 {
	if len(p) == 0 {
		return 0
	}
	v := p[len(p)-1]
	for i := len(p) - 2; i >= 0; i-- {
		v = v*x + p[i]
	}
	return v
}

// EvalC evaluates p at a complex point using Horner's rule.
func (p Poly) EvalC(x complex128) complex128 {
	if len(p) == 0 {
		return 0
	}
	v := complex(p[len(p)-1], 0)
	for i := len(p) - 2; i >= 0; i-- {
		v = v*x + complex(p[i], 0)
	}
	return v
}

// EvalMat evaluates the matrix polynomial p(A) using Horner's rule.
func (p Poly) EvalMat(a *mat.Matrix) *mat.Matrix {
	n := a.Rows()
	if len(p) == 0 {
		return mat.Zeros(n, n)
	}
	v := mat.Identity(n).Scale(p[len(p)-1])
	for i := len(p) - 2; i >= 0; i-- {
		v = a.Mul(v).Add(mat.Identity(n).Scale(p[i]))
	}
	return v
}

// Mul returns the product p*q.
func (p Poly) Mul(q Poly) Poly {
	if len(p) == 0 || len(q) == 0 {
		return Poly{0}
	}
	out := make(Poly, len(p)+len(q)-1)
	for i, a := range p {
		if a == 0 {
			continue
		}
		for j, b := range q {
			out[i+j] += a * b
		}
	}
	return out.trim()
}

// Add returns the sum p+q.
func (p Poly) Add(q Poly) Poly {
	n := len(p)
	if len(q) > n {
		n = len(q)
	}
	out := make(Poly, n)
	copy(out, p)
	for i, b := range q {
		out[i] += b
	}
	return out.trim()
}

// Scale returns s*p.
func (p Poly) Scale(s float64) Poly {
	out := make(Poly, len(p))
	for i, a := range p {
		out[i] = s * a
	}
	return out.trim()
}

// Derivative returns dp/dx.
func (p Poly) Derivative() Poly {
	if len(p) <= 1 {
		return Poly{0}
	}
	out := make(Poly, len(p)-1)
	for i := 1; i < len(p); i++ {
		out[i-1] = float64(i) * p[i]
	}
	return out.trim()
}

// String renders the polynomial in conventional descending-power notation.
func (p Poly) String() string {
	if len(p) == 0 {
		return "0"
	}
	s := ""
	for i := len(p) - 1; i >= 0; i-- {
		if p[i] == 0 && len(p) > 1 {
			continue
		}
		if s != "" {
			if p[i] >= 0 {
				s += " + "
			} else {
				s += " - "
			}
			s += fmt.Sprintf("%g", math.Abs(p[i]))
		} else {
			s += fmt.Sprintf("%g", p[i])
		}
		switch {
		case i == 1:
			s += "*x"
		case i > 1:
			s += fmt.Sprintf("*x^%d", i)
		}
	}
	if s == "" {
		s = "0"
	}
	return s
}

// FromRoots returns the monic polynomial whose roots are the given complex
// values. Complex roots must occur in conjugate pairs (within tolerance) so
// the result has real coefficients; FromRoots returns an error otherwise.
func FromRoots(roots []complex128) (Poly, error) {
	// Multiply out in complex arithmetic, then validate realness.
	coeffs := []complex128{1}
	for _, r := range roots {
		next := make([]complex128, len(coeffs)+1)
		for i, c := range coeffs {
			next[i+1] += c
			next[i] -= c * r
		}
		coeffs = next
	}
	out := make(Poly, len(coeffs))
	scale := 0.0
	for _, c := range coeffs {
		if m := cmplx.Abs(c); m > scale {
			scale = m
		}
	}
	if scale == 0 {
		scale = 1
	}
	for i, c := range coeffs {
		if math.Abs(imag(c)) > 1e-8*scale {
			return nil, fmt.Errorf("poly: roots are not closed under conjugation (coeff %d has imaginary part %g)", i, imag(c))
		}
		out[i] = real(c)
	}
	return out, nil
}

// Companion returns the companion matrix of a monic polynomial of degree
// >= 1. If p is not monic it is normalized first. It panics on degree 0.
func (p Poly) Companion() *mat.Matrix {
	q := p.trim()
	n := q.Degree()
	if n < 1 {
		panic("poly: Companion of a constant polynomial")
	}
	lead := q[n]
	c := mat.New(n, n)
	for i := 1; i < n; i++ {
		c.Set(i, i-1, 1)
	}
	for i := 0; i < n; i++ {
		c.Set(i, n-1, -q[i]/lead)
	}
	return c
}

// Roots returns all complex roots of p, computed as the eigenvalues of the
// companion matrix. Constants have no roots.
func (p Poly) Roots() ([]complex128, error) {
	q := p.trim()
	if q.Degree() < 1 {
		return nil, nil
	}
	return mat.Eigenvalues(q.Companion())
}

// CharPoly returns the characteristic polynomial det(xI - A) of a square
// matrix using the Faddeev–LeVerrier recursion. The result is monic with
// degree equal to the matrix dimension.
func CharPoly(a *mat.Matrix) Poly {
	n := a.Rows()
	if a.Cols() != n {
		panic("poly: CharPoly requires a square matrix")
	}
	// Faddeev–LeVerrier: M_0 = I, c_n = 1;
	// M_k = A*M_{k-1} + c_{n-k+1}*I,  c_{n-k} = -trace(A*M_{k-1}... ) / k
	coeffs := make(Poly, n+1)
	coeffs[n] = 1
	m := mat.Identity(n)
	for k := 1; k <= n; k++ {
		am := a.Mul(m)
		c := -am.Trace() / float64(k)
		coeffs[n-k] = c
		m = am.Add(mat.Identity(n).Scale(c))
	}
	return coeffs
}
