package engine

import (
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/apps"
	"repro/internal/ctrl"
	"repro/internal/sched"
	"repro/internal/search"
)

func timingScenarios() []Scenario {
	platforms := PlatformVariants()
	scns := make([]Scenario, 8)
	for i := range scns {
		scns[i] = Scenario{
			Seed:       int64(100 + i),
			NumApps:    2 + i%3,
			Platform:   platforms[i%len(platforms)],
			MaxM:       5,
			Starts:     2,
			Exhaustive: true,
			Workers:    2,
		}
	}
	return scns
}

// TestSweepParallelMatchesSerial is the determinism guarantee: a sweep over
// a worker pool must reproduce the serial run exactly — schedules, values,
// paths, evaluation counts, and cache statistics. Run under -race in CI.
func TestSweepParallelMatchesSerial(t *testing.T) {
	scns := timingScenarios()
	serial, err := Sweep(Config{Workers: 1}, scns)
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := Sweep(Config{Workers: 8}, scns)
	if err != nil {
		t.Fatal(err)
	}
	if len(serial) != len(parallel) {
		t.Fatalf("result counts differ: %d vs %d", len(serial), len(parallel))
	}
	for i := range serial {
		if !reflect.DeepEqual(serial[i], parallel[i]) {
			t.Errorf("scenario %d (%s): parallel result differs from serial\nserial:   %+v\nparallel: %+v",
				i, scns[i].Name, serial[i], parallel[i])
		}
	}
}

func TestRunIsReproducible(t *testing.T) {
	scn := Scenario{Seed: 7, NumApps: 3, Exhaustive: true}
	a, err := Run(scn)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(scn)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Errorf("same scenario produced different results:\n%+v\n%+v", a, b)
	}
	if !a.FoundBest {
		t.Error("no feasible schedule found for the default scenario")
	}
	if a.Evaluated <= 0 || a.Evaluated != int(a.CacheStats.Misses) {
		t.Errorf("evaluated=%d misses=%d", a.Evaluated, a.CacheStats.Misses)
	}
}

func TestRunExhaustiveAgreesWithHybridBox(t *testing.T) {
	res, err := Run(Scenario{Seed: 11, Exhaustive: true, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if res.Exhaustive == nil || res.Exhaustive.Evaluated == 0 {
		t.Fatal("exhaustive pass missing")
	}
	// The overall best must be the exhaustive (global) optimum.
	if res.Exhaustive.FoundBest && res.BestValue < res.Exhaustive.BestValue {
		t.Errorf("result best %v (%.4f) below exhaustive best %v (%.4f)",
			res.Best, res.BestValue, res.Exhaustive.Best, res.Exhaustive.BestValue)
	}
	// Hybrid walks ran through the same cache, so total distinct
	// evaluations can never exceed hybrid-visited plus the feasible box.
	if res.Evaluated > res.Exhaustive.Evaluated+res.Hybrid.TotalEvaluations {
		t.Errorf("evaluated %d exceeds box %d + hybrid %d",
			res.Evaluated, res.Exhaustive.Evaluated, res.Hybrid.TotalEvaluations)
	}
	// And the shared cache must have produced at least one hit (the
	// exhaustive pass revisits every schedule the hybrid walks touched).
	if res.CacheStats.Hits == 0 {
		t.Error("shared cache recorded no hits")
	}
}

func TestSharedCacheDeduplicatesAcrossStarts(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	timings, weights, err := RandomTaskset(rng, Scenario{NumApps: 3})
	if err != nil {
		t.Fatal(err)
	}
	eval := TimingEval(timings, weights)
	// Overlapping starts guarantee revisits across walks.
	starts := []sched.Schedule{{1, 1, 1}, {2, 1, 1}, {1, 2, 1}, {1, 1, 2}}

	private, err := search.Hybrid(eval, timings, starts, search.Options{MaxM: 5})
	if err != nil {
		t.Fatal(err)
	}
	shared, err := search.Hybrid(eval, timings, starts, search.Options{MaxM: 5, Cache: search.NewCache(eval)})
	if err != nil {
		t.Fatal(err)
	}
	if shared.TotalEvaluations >= private.TotalEvaluations {
		t.Errorf("shared cache did not reduce evaluations: %d (shared) vs %d (private)",
			shared.TotalEvaluations, private.TotalEvaluations)
	}
	if !shared.Best.Equal(private.Best) {
		t.Errorf("best differs: shared %v vs private %v", shared.Best, private.Best)
	}
}

func TestTimingEvalProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	timings, weights, err := RandomTaskset(rng, Scenario{NumApps: 4})
	if err != nil {
		t.Fatal(err)
	}
	eval := TimingEval(timings, weights)
	rr := sched.RoundRobin(4)
	out, err := eval(rr)
	if err != nil {
		t.Fatal(err)
	}
	if !out.Feasible {
		t.Errorf("round robin must be feasible for generated tasksets: %+v", out)
	}
	again, err := eval(rr)
	if err != nil || again != out {
		t.Errorf("timing eval not deterministic: %+v vs %+v (err %v)", out, again, err)
	}
	// An idle-infeasible schedule must be flagged infeasible.
	huge := sched.Schedule{50, 1, 1, 1}
	if ok, _ := sched.IdleFeasible(timings, huge); !ok {
		out, err := eval(huge)
		if err != nil {
			t.Fatal(err)
		}
		if out.Feasible {
			t.Error("idle-infeasible schedule scored feasible")
		}
	}
}

func TestRandomTasksetDeterminism(t *testing.T) {
	a, wa, err := RandomTaskset(rand.New(rand.NewSource(42)), Scenario{NumApps: 3})
	if err != nil {
		t.Fatal(err)
	}
	b, wb, err := RandomTaskset(rand.New(rand.NewSource(42)), Scenario{NumApps: 3})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) || !reflect.DeepEqual(wa, wb) {
		t.Error("same seed produced different tasksets")
	}
	sum := 0.0
	for _, w := range wa {
		sum += w
	}
	if sum < 0.999 || sum > 1.001 {
		t.Errorf("weights sum to %g, want 1", sum)
	}
	for _, tm := range a {
		if err := tm.Validate(); err != nil {
			t.Errorf("generated timing invalid: %v", err)
		}
		if tm.MaxIdle <= 0 {
			t.Errorf("app %s has no idle budget", tm.Name)
		}
	}
}

func TestRandomStartsAreFeasible(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	timings, _, err := RandomTaskset(rng, Scenario{NumApps: 3})
	if err != nil {
		t.Fatal(err)
	}
	starts := RandomStarts(rng, timings, 5, 6)
	if len(starts) != 5 {
		t.Fatalf("starts: %d", len(starts))
	}
	for _, s := range starts {
		ok, err := sched.IdleFeasible(timings, s)
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			t.Errorf("start %v infeasible", s)
		}
	}
}

func TestRunDesignObjectiveCaseStudy(t *testing.T) {
	if testing.Short() {
		t.Skip("design objective is slow for -short")
	}
	var budget ctrl.DesignOptions
	budget.Swarm.Particles = 6
	budget.Swarm.Iterations = 6
	res, err := Run(Scenario{
		Seed:      1,
		Apps:      apps.CaseStudy(),
		Objective: ObjectiveDesign,
		Budget:    budget,
		MaxM:      4,
		StartList: []sched.Schedule{{1, 1, 1}, {2, 1, 1}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Framework == nil {
		t.Fatal("design objective must expose its framework")
	}
	if !res.FoundBest {
		t.Error("case study found no feasible schedule")
	}
	if res.Weights[0] != 0.4 || res.Weights[2] != 0.2 {
		t.Errorf("weights not taken from apps: %v", res.Weights)
	}
	if res.CacheStats.Hits == 0 {
		t.Error("overlapping starts must hit the shared cache")
	}
}

func TestPlatformVariantsSane(t *testing.T) {
	vs := PlatformVariants()
	if len(vs) < 3 {
		t.Fatalf("variants: %d", len(vs))
	}
	for i, p := range vs {
		if err := p.Cache.Validate(); err != nil {
			t.Errorf("variant %d invalid: %v", i, err)
		}
	}
	if vs[0].Cache.Ways != 1 || vs[1].Cache.Ways != 2 {
		t.Error("expected paper baseline then 2-way variant")
	}
}
