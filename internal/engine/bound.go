package engine

import (
	"math"

	"repro/internal/sched"
	"repro/internal/search"
)

// timingBounder is the admissible per-application bound of the
// ObjectiveTiming objective, used by the branch-and-bound searchers
// (search.JointBranchBound, search.MulticoreBranchBound).
//
// Admissibility argument, term by term against timingScore:
//
//   - Constrained apps (MaxIdle > 0): the app's contribution
//     w_i (1 - (hbar + hmax) / (2 t_idle)) is nonincreasing in the gap —
//     DerivedHyperPeriod and DerivedMaxPeriod are nondecreasing in it, and
//     bitwise so, because they are sums/maxima of terms monotone in the gap
//     and IEEE rounding is monotone. AppAt evaluates the *exact* closed form
//     at the minimal gap any completion of the prefix can produce, so it
//     upper-bounds (bitwise) the term at every completion's true gap.
//   - Unconstrained apps (MaxIdle <= 0): timingScore normalizes by the
//     hyperperiod itself, giving 1 - (hbar + hmax)/(2 hyper) with
//     hbar = hyper/m and hmax >= hyper/m ... <= 1 - 1/m; the 1e-9 slack
//     absorbs the floating-point rounding of the real term.
//
// Terms are accumulated by the searchers in application order — the same
// order timingScore sums in — so per-term admissibility survives rounding
// of the accumulation too.
type timingBounder struct {
	pt      sched.PartitionTimings
	weights []float64
	maxM    int
}

// TimingBounder returns the tight admissible bound for ObjectiveTiming over
// the joint timing table: branch-and-bound with it is pinned to reproduce
// the exhaustive optimum bit for bit (see internal/search tests and the
// internal/exp golden platforms) while cutting most of the box.
func TimingBounder(pt sched.PartitionTimings, weights []float64, maxM int) search.Bounder {
	return timingBounder{pt: pt, weights: weights, maxM: maxM}
}

func (b timingBounder) timing(i, w int) sched.AppTiming {
	if w == 0 {
		return b.pt.Shared[i]
	}
	return b.pt.ByWays[w-1][i]
}

func (b timingBounder) AppAt(i, w, m int, minGap float64) float64 {
	a := b.timing(i, w)
	if a.MaxIdle > 0 {
		hyper := sched.DerivedHyperPeriod(a, m, minGap)
		hbar := hyper / float64(m)
		p := 1 - (hbar+sched.DerivedMaxPeriod(a, m, minGap))/(2*a.MaxIdle)
		return b.weights[i] * p
	}
	return b.weights[i] * (1 - 1/float64(m) + 1e-9)
}

func (b timingBounder) AppBest(i, w int) float64 {
	best := math.Inf(-1)
	for m := 1; m <= b.maxM; m++ {
		if v := b.AppAt(i, w, m, 0); v > best {
			best = v
		}
	}
	return best
}

// MulticoreTimingEval is JointTimingEval over the placement axis: a core
// point scores its joint (schedule, ways) point on the timing sub-table of
// its application subset, with the apps' global weights, so per-core values
// sum to a P_all comparable with the single-core numbers.
func MulticoreTimingEval(pt sched.PartitionTimings, weights []float64) search.CoreEvalFunc {
	return func(p search.CorePoint) (search.Outcome, error) {
		sub, err := search.SubPartition(pt, p.Apps)
		if err != nil {
			return search.Outcome{}, err
		}
		if !p.Point.W.Valid(sub.Apps(), sub.TotalWays()) {
			return search.Outcome{Pall: -1, Feasible: false}, nil
		}
		timings, err := sub.Timings(p.Point)
		if err != nil {
			return search.Outcome{}, err
		}
		w := make([]float64, len(p.Apps))
		for k, i := range p.Apps {
			w[k] = weights[i]
		}
		return timingScore(timings, w, p.Point.M)
	}
}
