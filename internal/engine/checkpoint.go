package engine

import (
	"encoding/json"
	"math"

	"repro/internal/engine/evalcache"
	"repro/internal/sched"
	"repro/internal/search"
)

// ResultRecord is the persistent checkpoint of one completed scenario: the
// serializable summary a resumed sweep needs to reproduce its reports
// bit-identically without re-running the search. Objective values are
// stored as IEEE-754 bit patterns (the *_bits fields) so a resumed run
// renders exactly the digits the original run did; the plain float fields
// exist for humans inspecting store files.
//
// A record is written only after its scenario completed successfully and
// lands in the store atomically, so a killed sweep leaves either a
// complete, loadable record or none — never a partial one. The record key
// (see resultKey) hashes the full evaluation space plus every search
// parameter, so a record can never be replayed into a run it does not
// match; bump resultSchema when this struct changes incompatibly.
type ResultRecord struct {
	Name string `json:"name"`
	Seed int64  `json:"seed"`
	Apps int    `json:"apps"`

	Best          []int   `json:"best,omitempty"`
	Ways          []int   `json:"ways,omitempty"`
	BestValueBits uint64  `json:"best_value_bits"`
	BestValue     float64 `json:"best_value"`
	FoundBest     bool    `json:"found_best"`
	Partitioned   bool    `json:"partitioned,omitempty"`

	Evaluated int   `json:"evaluated"`
	Hits      int64 `json:"hits"`
	Misses    int64 `json:"misses"`
	DiskHits  int64 `json:"disk_hits,omitempty"`

	Exhaustive *ExhaustiveRecord `json:"exhaustive,omitempty"`

	// Multi-core placement outcome and its uniform-split baseline
	// (Scenario.Cores > 1 only).
	Multicore        *MulticoreRecord `json:"multicore,omitempty"`
	MulticoreUniform *MulticoreRecord `json:"multicore_uniform,omitempty"`
}

// ExhaustiveRecord summarizes the exhaustive (or joint-exhaustive)
// baseline of a checkpointed scenario.
type ExhaustiveRecord struct {
	Evaluated     int    `json:"evaluated"`
	Feasible      int    `json:"feasible"`
	Best          []int  `json:"best,omitempty"`
	Ways          []int  `json:"ways,omitempty"`
	BestValueBits uint64 `json:"best_value_bits"`
	FoundBest     bool   `json:"found_best"`

	// Shared-subspace optimum (joint scenarios only).
	SharedBest      []int  `json:"shared_best,omitempty"`
	SharedValueBits uint64 `json:"shared_value_bits"`
	FoundShared     bool   `json:"found_shared,omitempty"`

	// Pruned counts branch-and-bound cuts (Scenario.BranchBound only; the
	// optimum is pinned identical either way).
	Pruned int `json:"pruned,omitempty"`
}

// MulticoreRecord is the persistent summary of one placement search
// (search.MulticoreResult).
type MulticoreRecord struct {
	Cores      int          `json:"cores"`
	Assignment []int        `json:"assignment,omitempty"`
	PerCore    []CoreRecord `json:"per_core,omitempty"`

	BestValueBits uint64  `json:"best_value_bits"`
	BestValue     float64 `json:"best_value"`
	FoundBest     bool    `json:"found_best"`

	Assignments       int  `json:"assignments"`
	AssignmentsPruned int  `json:"assignments_pruned,omitempty"`
	SubtreesPruned    int  `json:"subtrees_pruned,omitempty"`
	Subsets           int  `json:"subsets"`
	Evaluated         int  `json:"evaluated"`
	Feasible          int  `json:"feasible"`
	Enumerated        bool `json:"enumerated"`
}

// CoreRecord is one core's solution inside a MulticoreRecord.
type CoreRecord struct {
	Apps      []int   `json:"apps"`
	M         []int   `json:"m,omitempty"`
	Ways      []int   `json:"ways,omitempty"`
	ValueBits uint64  `json:"value_bits"`
	Value     float64 `json:"value"`
}

// jsonFloat guards the human-readable duplicate of a *_bits field:
// encoding/json rejects IEEE infinities (the no-feasible-schedule best is
// -Inf), which would silently abort the whole checkpoint write. The bits
// field stays exact; readers reconstruct from it alone.
func jsonFloat(v float64) float64 {
	if math.IsInf(v, 0) || math.IsNaN(v) {
		return 0
	}
	return v
}

// toMulticoreRecord extracts the persistent summary of a placement search.
func toMulticoreRecord(mc *search.MulticoreResult) *MulticoreRecord {
	rec := &MulticoreRecord{
		Cores:             mc.Cores,
		BestValueBits:     math.Float64bits(mc.BestValue),
		BestValue:         jsonFloat(mc.BestValue),
		FoundBest:         mc.FoundBest,
		Assignments:       mc.Assignments,
		AssignmentsPruned: mc.AssignmentsPruned,
		SubtreesPruned:    mc.SubtreesPruned,
		Subsets:           mc.Subsets,
		Evaluated:         mc.Evaluated,
		Feasible:          mc.Feasible,
		Enumerated:        mc.Enumerated,
	}
	if mc.FoundBest {
		rec.Assignment = append([]int(nil), mc.Assignment...)
		rec.PerCore = make([]CoreRecord, len(mc.PerCore))
		for c, sol := range mc.PerCore {
			rec.PerCore[c] = CoreRecord{
				Apps:      append([]int(nil), sol.Apps...),
				M:         []int(sol.Point.M.Clone()),
				Ways:      []int(sol.Point.W.Clone()),
				ValueBits: math.Float64bits(sol.Value),
				Value:     jsonFloat(sol.Value),
			}
		}
	}
	return rec
}

// fromMulticoreRecord rebuilds the placement-search summary bit-exactly.
func fromMulticoreRecord(rec *MulticoreRecord) *search.MulticoreResult {
	mc := &search.MulticoreResult{
		Cores:             rec.Cores,
		BestValue:         math.Float64frombits(rec.BestValueBits),
		FoundBest:         rec.FoundBest,
		Assignments:       rec.Assignments,
		AssignmentsPruned: rec.AssignmentsPruned,
		SubtreesPruned:    rec.SubtreesPruned,
		Subsets:           rec.Subsets,
		Evaluated:         rec.Evaluated,
		Feasible:          rec.Feasible,
		Enumerated:        rec.Enumerated,
	}
	if rec.FoundBest {
		mc.Assignment = append([]int(nil), rec.Assignment...)
		mc.PerCore = make([]search.CoreSolution, len(rec.PerCore))
		for c, cr := range rec.PerCore {
			mc.PerCore[c] = search.CoreSolution{
				Apps: append([]int(nil), cr.Apps...),
				Point: sched.JointSchedule{
					M: sched.Schedule(cr.M).Clone(),
					W: sched.Ways(cr.Ways).Clone(),
				},
				Value: math.Float64frombits(cr.ValueBits),
				Found: true,
			}
		}
	}
	return mc
}

// toRecord extracts the persistent summary of a completed result.
func toRecord(res *Result) *ResultRecord {
	rec := &ResultRecord{
		Name:          res.Name,
		Seed:          res.Seed,
		Apps:          res.AppCount,
		BestValueBits: math.Float64bits(res.BestValue),
		BestValue:     jsonFloat(res.BestValue),
		FoundBest:     res.FoundBest,
		Evaluated:     res.Evaluated,
		Hits:          res.CacheStats.Hits,
		Misses:        res.CacheStats.Misses,
		DiskHits:      res.CacheStats.DiskHits,
	}
	if res.FoundBest {
		rec.Best = []int(res.Best.Clone())
	}
	if res.JointHybrid != nil || res.JointExhaustive != nil {
		rec.Partitioned = true
		rec.Ways = []int(res.BestJoint.W.Clone())
	}
	if ex := res.Exhaustive; ex != nil {
		rec.Exhaustive = &ExhaustiveRecord{
			Evaluated:     ex.Evaluated,
			Feasible:      ex.Feasible,
			BestValueBits: math.Float64bits(ex.BestValue),
			FoundBest:     ex.FoundBest,
		}
		if ex.FoundBest {
			rec.Exhaustive.Best = []int(ex.Best.Clone())
		}
	}
	if ex := res.JointExhaustive; ex != nil {
		rec.Exhaustive = &ExhaustiveRecord{
			Evaluated:       ex.Evaluated,
			Feasible:        ex.Feasible,
			BestValueBits:   math.Float64bits(ex.BestValue),
			FoundBest:       ex.FoundBest,
			SharedValueBits: math.Float64bits(ex.BestSharedValue),
			FoundShared:     ex.FoundShared,
			Pruned:          res.JointPruned,
		}
		if ex.FoundBest {
			rec.Exhaustive.Best = []int(ex.Best.M.Clone())
			rec.Exhaustive.Ways = []int(ex.Best.W.Clone())
		}
		if ex.FoundShared {
			rec.Exhaustive.SharedBest = []int(ex.BestShared.M.Clone())
		}
	}
	if res.Multicore != nil {
		rec.Multicore = toMulticoreRecord(res.Multicore)
	}
	if res.MulticoreUniform != nil {
		rec.MulticoreUniform = toMulticoreRecord(res.MulticoreUniform)
	}
	return rec
}

// fromRecord rebuilds the summary Result of a checkpointed scenario. The
// reconstruction carries everything the sweep reports consume (best point,
// objective value, evaluation and cache counters, exhaustive summary);
// per-walk traces (Hybrid) and the stage-1 Framework are not persisted, so
// they stay nil — consumers needing them re-run the scenario without a
// resume store. Name and Seed come from the current scenario, not the
// record, so relabeled grids resume cleanly.
func fromRecord(scn Scenario, rec *ResultRecord) *Result {
	res := &Result{
		Name:      scn.Name,
		Seed:      scn.Seed,
		AppCount:  rec.Apps,
		BestValue: math.Float64frombits(rec.BestValueBits),
		FoundBest: rec.FoundBest,
		Evaluated: rec.Evaluated,
		Resumed:   true,
		CacheStats: evalcache.Stats{
			Hits:     rec.Hits,
			Misses:   rec.Misses,
			DiskHits: rec.DiskHits,
		},
	}
	if rec.FoundBest {
		res.Best = sched.Schedule(rec.Best).Clone()
	}
	if rec.Partitioned {
		res.BestJoint = sched.JointSchedule{M: res.Best.Clone(), W: sched.Ways(rec.Ways).Clone()}
	}
	if ex := rec.Exhaustive; ex != nil {
		if rec.Partitioned {
			jres := &search.JointExhaustiveResult{
				Evaluated:       ex.Evaluated,
				Feasible:        ex.Feasible,
				BestValue:       math.Float64frombits(ex.BestValueBits),
				FoundBest:       ex.FoundBest,
				BestSharedValue: math.Float64frombits(ex.SharedValueBits),
				FoundShared:     ex.FoundShared,
			}
			if ex.FoundBest {
				jres.Best = sched.JointSchedule{
					M: sched.Schedule(ex.Best).Clone(),
					W: sched.Ways(ex.Ways).Clone(),
				}
			}
			if ex.FoundShared {
				jres.BestShared = sched.JointSchedule{M: sched.Schedule(ex.SharedBest).Clone()}
			}
			res.JointExhaustive = jres
			res.JointPruned = ex.Pruned
		} else {
			res.Exhaustive = &search.ExhaustiveResult{
				Evaluated: ex.Evaluated,
				Feasible:  ex.Feasible,
				BestValue: math.Float64frombits(ex.BestValueBits),
				FoundBest: ex.FoundBest,
			}
			if ex.FoundBest {
				res.Exhaustive.Best = sched.Schedule(ex.Best).Clone()
			}
		}
	}
	if rec.Multicore != nil {
		res.Multicore = fromMulticoreRecord(rec.Multicore)
	}
	if rec.MulticoreUniform != nil {
		res.MulticoreUniform = fromMulticoreRecord(rec.MulticoreUniform)
	}
	return res
}

// loadRecord fetches and decodes the checkpoint record for key, treating
// any decode failure as a miss (the scenario simply re-runs).
func loadRecord(backend evalcache.Backend, key string) (*ResultRecord, bool) {
	data, ok := backend.Get(key)
	if !ok {
		return nil, false
	}
	var rec ResultRecord
	if err := json.Unmarshal(data, &rec); err != nil {
		return nil, false
	}
	return &rec, true
}

// saveRecord persists the checkpoint record (best-effort, like every store
// write).
func saveRecord(backend evalcache.Backend, key string, res *Result) {
	data, err := json.Marshal(toRecord(res))
	if err != nil {
		return
	}
	backend.Put(key, data)
}
