package engine

import (
	"math"
	"reflect"
	"testing"

	"repro/internal/apps"
	"repro/internal/store"
)

// multicoreScenario is the canonical engine-level multicore fixture: the
// case study on the 4-way partitionable platform, full placement co-design
// over 2 cores with the retained exhaustive searchers.
func multicoreScenario() Scenario {
	return Scenario{
		Name: "mc", Seed: 1, Apps: apps.CaseStudy(), Platform: fourWayPlatform(),
		Objective: ObjectiveTiming, Exhaustive: true, MaxM: 6, Cores: 2,
	}
}

func TestMulticoreScenario(t *testing.T) {
	res, err := Run(multicoreScenario())
	if err != nil {
		t.Fatal(err)
	}
	mc := res.Multicore
	if mc == nil || res.MulticoreUniform == nil {
		t.Fatalf("multicore results missing: %v / %v", mc, res.MulticoreUniform)
	}
	if !mc.FoundBest || !mc.Enumerated {
		t.Fatalf("placement search incomplete: %+v", mc)
	}
	if mc.Cores != 2 || len(mc.PerCore) != 2 {
		t.Fatalf("core count: %+v", mc)
	}
	// Cores > 1 implies the joint axis, so the single-core comparison
	// baseline is present.
	if res.JointExhaustive == nil || !res.JointExhaustive.FoundBest {
		t.Fatal("single-core joint baseline missing")
	}
	// Each core has a private cache and strictly fewer gap contributors, so
	// the placement optimum must dominate the single-core joint optimum.
	if mc.BestValue < res.JointExhaustive.BestValue {
		t.Errorf("multicore optimum %.6f below single-core joint optimum %.6f",
			mc.BestValue, res.JointExhaustive.BestValue)
	}
	// The uniform split explores a subspace of the co-design box.
	if res.MulticoreUniform.BestValue > mc.BestValue {
		t.Errorf("uniform-split optimum %.6f exceeds co-design optimum %.6f",
			res.MulticoreUniform.BestValue, mc.BestValue)
	}
	// Evaluated aggregates the joint and core-point caches.
	if res.Evaluated <= res.JointExhaustive.Evaluated {
		t.Errorf("Evaluated %d does not include core-point evaluations", res.Evaluated)
	}
}

// TestMulticoreBranchBoundPinned is the engine-level equality pin: the
// branch-and-bound scenario must reproduce the plain exhaustive scenario's
// optima — single-core joint and placement — bit for bit, with strictly
// fewer evaluations recorded.
func TestMulticoreBranchBoundPinned(t *testing.T) {
	plain, err := Run(multicoreScenario())
	if err != nil {
		t.Fatal(err)
	}
	scn := multicoreScenario()
	scn.BranchBound = true
	bb, err := Run(scn)
	if err != nil {
		t.Fatal(err)
	}

	pex, bex := plain.JointExhaustive, bb.JointExhaustive
	if math.Float64bits(pex.BestValue) != math.Float64bits(bex.BestValue) || !bex.Best.Equal(pex.Best) {
		t.Errorf("joint optimum: bb %v (%v) != exhaustive %v (%v)",
			bex.Best, bex.BestValue, pex.Best, pex.BestValue)
	}
	if math.Float64bits(pex.BestSharedValue) != math.Float64bits(bex.BestSharedValue) ||
		!bex.BestShared.Equal(pex.BestShared) {
		t.Error("shared-subspace optimum differs under branch-and-bound")
	}
	if bex.Evaluated >= pex.Evaluated || bb.JointPruned == 0 {
		t.Errorf("joint branch-and-bound evaluated %d of %d (pruned %d): no cuts fired",
			bex.Evaluated, pex.Evaluated, bb.JointPruned)
	}

	pmc, bmc := plain.Multicore, bb.Multicore
	if math.Float64bits(pmc.BestValue) != math.Float64bits(bmc.BestValue) ||
		!reflect.DeepEqual(pmc.Assignment, bmc.Assignment) ||
		!reflect.DeepEqual(pmc.PerCore, bmc.PerCore) {
		t.Errorf("placement optimum differs:\nbb %+v\nex %+v", bmc, pmc)
	}
	if bmc.Evaluated > pmc.Evaluated {
		t.Errorf("placement branch-and-bound evaluated %d > %d", bmc.Evaluated, pmc.Evaluated)
	}
	if bmc.Evaluated == pmc.Evaluated && bmc.AssignmentsPruned == 0 && bmc.SubtreesPruned == 0 {
		t.Error("placement branch-and-bound pruned nothing")
	}
	// The uniform baseline takes the same restricted-enumeration path in
	// both modes.
	if math.Float64bits(plain.MulticoreUniform.BestValue) != math.Float64bits(bb.MulticoreUniform.BestValue) {
		t.Error("uniform baseline differs between modes")
	}
}

// TestMulticoreSweepParallelMatchesSerial pins the multicore co-design
// bit-identical at any worker count (run under -race in CI): serial and
// parallel sweeps over Cores > 1 scenarios must produce deeply equal
// results, branch-and-bound included.
func TestMulticoreSweepParallelMatchesSerial(t *testing.T) {
	scns := make([]Scenario, 4)
	for i := range scns {
		scns[i] = Scenario{
			Seed:        int64(700 + i),
			NumApps:     3,
			Platform:    fourWayPlatform(),
			MaxM:        4,
			Cores:       2 + i%2,
			Exhaustive:  true,
			BranchBound: i%2 == 0,
			Workers:     2,
		}
	}
	serial, err := Sweep(Config{Workers: 1}, scns)
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := Sweep(Config{Workers: 6}, scns)
	if err != nil {
		t.Fatal(err)
	}
	for i := range serial {
		if !reflect.DeepEqual(serial[i], parallel[i]) {
			t.Errorf("scenario %d: parallel multicore result differs from serial", i)
		}
	}
}

// TestMulticoreCheckpointRoundTrip: a resumed multicore scenario must
// reproduce the placement results bit-identically from its checkpoint
// record.
func TestMulticoreCheckpointRoundTrip(t *testing.T) {
	scn := multicoreScenario()
	scn.BranchBound = true
	dir := t.TempDir()
	st, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	cold, err := RunWith(scn, RunConfig{Store: st})
	if err != nil {
		t.Fatal(err)
	}
	st2, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	resumed, err := RunWith(scn, RunConfig{Store: st2, Resume: true})
	if err != nil {
		t.Fatal(err)
	}
	if !resumed.Resumed {
		t.Fatal("scenario did not resume from its checkpoint record")
	}
	if !reflect.DeepEqual(resumed.Multicore, cold.Multicore) {
		t.Errorf("resumed placement result differs:\ncold    %+v\nresumed %+v", cold.Multicore, resumed.Multicore)
	}
	if !reflect.DeepEqual(resumed.MulticoreUniform, cold.MulticoreUniform) {
		t.Error("resumed uniform baseline differs")
	}
	if resumed.JointPruned != cold.JointPruned {
		t.Errorf("resumed JointPruned %d != %d", resumed.JointPruned, cold.JointPruned)
	}
	if math.Float64bits(resumed.BestValue) != math.Float64bits(cold.BestValue) {
		t.Error("resumed best value not bit-identical")
	}
}
