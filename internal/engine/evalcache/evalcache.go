// Package evalcache provides a sharded, mutex-striped memoization cache for
// expensive schedule evaluations. It is the shared caching layer of the
// sweep engine (see internal/engine and README.md): exhaustive and hybrid
// searches wrap their EvalFunc in a Cache so the holistic-design evaluation
// of any schedule (m1, ..., mn) runs at most once per cache, no matter how
// many walks, starts, or workers request it concurrently.
//
// The cache is generic over both the key and the evaluation result type so
// it can back the search layer (sched.Schedule -> search.Outcome), the
// framework layer (sched.Schedule -> *core.ScheduleEval), and the joint
// cache-partition co-design layer (sched.JointSchedule -> outcome) without
// import cycles. Any key type exposing a canonical Key() string works.
package evalcache

import (
	"fmt"
	"hash/maphash"
	"sync"
	"sync/atomic"
)

// Keyed is the key contract: Key returns a canonical string identity for
// the evaluation input (equal inputs must render equal keys, distinct
// inputs distinct keys). sched.Schedule and sched.JointSchedule implement
// it.
type Keyed interface {
	Key() string
}

// DefaultShards is the shard count used when NewCache is given n <= 0.
// Sixteen stripes keep lock contention negligible for the worker-pool sizes
// the engine uses while staying cheap to allocate per scenario.
const DefaultShards = 16

// entry is one memoized evaluation. The first requester of a key creates
// the entry and evaluates; later requesters block on done, so duplicate
// concurrent evaluations of the same schedule never run.
type entry[V any] struct {
	done chan struct{}
	val  V
	err  error
}

type shard[V any] struct {
	mu sync.Mutex
	m  map[string]*entry[V]
}

// Cache memoizes a key-addressed evaluation function across shards.
type Cache[K Keyed, V any] struct {
	eval   func(K) (V, error)
	shards []shard[V]
	seed   maphash.Seed

	hits   atomic.Int64
	misses atomic.Int64
}

// NewCache wraps eval in a cache with the given shard count (DefaultShards
// when n <= 0).
func NewCache[K Keyed, V any](n int, eval func(K) (V, error)) *Cache[K, V] {
	if n <= 0 {
		n = DefaultShards
	}
	c := &Cache[K, V]{eval: eval, shards: make([]shard[V], n), seed: maphash.MakeSeed()}
	for i := range c.shards {
		c.shards[i].m = make(map[string]*entry[V])
	}
	return c
}

func (c *Cache[K, V]) shardFor(key string) *shard[V] {
	return &c.shards[maphash.String(c.seed, key)%uint64(len(c.shards))]
}

// Get returns the memoized evaluation of s, computing it on first request.
// Concurrent requests for the same key coalesce: exactly one computes,
// the rest wait. An evaluation error is memoized like a value so a failing
// input is not retried within one cache lifetime.
//
// The boolean reports whether this call executed the evaluation (a miss);
// callers use it to attribute distinct-evaluation counts to the walk that
// actually paid for the evaluation.
func (c *Cache[K, V]) Get(s K) (V, bool, error) {
	key := s.Key()
	sh := c.shardFor(key)
	sh.mu.Lock()
	if e, ok := sh.m[key]; ok {
		sh.mu.Unlock()
		<-e.done
		c.hits.Add(1)
		return e.val, false, e.err
	}
	e := &entry[V]{done: make(chan struct{})}
	sh.m[key] = e
	sh.mu.Unlock()

	c.misses.Add(1)
	// Close done even if the evaluator panics: otherwise the entry would
	// wedge every future waiter on this key. A panicking evaluation is
	// memoized as an error so coalesced waiters fail loudly instead of
	// receiving a zero value.
	finished := false
	defer func() {
		if !finished {
			e.err = fmt.Errorf("evalcache: evaluation of %s panicked", key)
		}
		close(e.done)
	}()
	e.val, e.err = c.eval(s)
	finished = true
	return e.val, true, e.err
}

// Len returns the number of distinct keys evaluated (or in flight).
func (c *Cache[K, V]) Len() int {
	n := 0
	for i := range c.shards {
		c.shards[i].mu.Lock()
		n += len(c.shards[i].m)
		c.shards[i].mu.Unlock()
	}
	return n
}

// Stats is a point-in-time snapshot of cache effectiveness.
type Stats struct {
	Hits   int64
	Misses int64
}

// Lookups returns the total number of Get calls observed.
func (s Stats) Lookups() int64 { return s.Hits + s.Misses }

// HitRate returns hits / lookups, or 0 when the cache was never used.
func (s Stats) HitRate() float64 {
	if l := s.Lookups(); l > 0 {
		return float64(s.Hits) / float64(l)
	}
	return 0
}

// Stats snapshots the hit/miss counters.
func (c *Cache[K, V]) Stats() Stats {
	return Stats{Hits: c.hits.Load(), Misses: c.misses.Load()}
}
