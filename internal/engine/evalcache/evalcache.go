// Package evalcache provides a sharded, mutex-striped memoization cache for
// expensive schedule evaluations. It is the shared caching layer of the
// sweep engine (see internal/engine and README.md): exhaustive and hybrid
// searches wrap their EvalFunc in a Cache so the holistic-design evaluation
// of any schedule (m1, ..., mn) runs at most once per cache, no matter how
// many walks, starts, or workers request it concurrently.
//
// The cache is generic over both the key and the evaluation result type so
// it can back the search layer (sched.Schedule -> search.Outcome), the
// framework layer (sched.Schedule -> *core.ScheduleEval), and the joint
// cache-partition co-design layer (sched.JointSchedule -> outcome) without
// import cycles. Any key type exposing a canonical Key() string works.
//
// A cache optionally carries a second, persistent tier (NewTiered): on a
// memory miss the Backend — in production internal/store's disk store — is
// consulted before the evaluator runs, and freshly executed results are
// written back. The key invariant of the tiered mode is that it is
// invisible to result values and to evaluation attribution: the boolean
// returned by Get reports "this call materialized the entry in memory"
// whether the entry came from the disk tier or from executing the
// evaluator, so search walks charge evaluations identically on a cold and
// on a warm store, and a sweep's reported tables are bit-identical across
// cold-store, warm-store, and resumed runs. A backend record that fails to
// decode is treated as a miss and recomputed, never served.
package evalcache

import (
	"fmt"
	"hash/maphash"
	"sync"
	"sync/atomic"
)

// Keyed is the key contract: Key returns a canonical string identity for
// the evaluation input (equal inputs must render equal keys, distinct
// inputs distinct keys). sched.Schedule and sched.JointSchedule implement
// it.
type Keyed interface {
	Key() string
}

// DefaultShards is the shard count used when NewCache is given n <= 0.
// Sixteen stripes keep lock contention negligible for the worker-pool sizes
// the engine uses while staying cheap to allocate per scenario.
const DefaultShards = 16

// Backend is the optional persistent second tier of a Cache: a key/value
// byte store consulted on memory misses and written back after executions.
// internal/store.Store implements it. Both methods must be safe for
// concurrent use; Get returning ok=false for any reason (absent, corrupt,
// stale) simply routes the request to the evaluator, and Put is
// best-effort.
type Backend interface {
	Get(key string) ([]byte, bool)
	Put(key string, payload []byte)
}

// Codec serializes cache values for the persistent tier. Encode/Decode
// must round-trip exactly (bit-identical values), or warm-store runs would
// diverge from cold ones; store float64s by their IEEE-754 bits when in
// doubt. An Encode error skips persistence for that value; a Decode error
// falls back to re-execution.
type Codec[V any] struct {
	Encode func(V) ([]byte, error)
	Decode func([]byte) (V, error)
}

// entry is one memoized evaluation. The first requester of a key creates
// the entry and evaluates; later requesters block on done, so duplicate
// concurrent evaluations of the same schedule never run.
type entry[V any] struct {
	done chan struct{}
	val  V
	err  error
}

type shard[V any] struct {
	mu sync.Mutex
	m  map[string]*entry[V]
}

// Cache memoizes a key-addressed evaluation function across shards.
type Cache[K Keyed, V any] struct {
	eval   func(K) (V, error)
	shards []shard[V]
	seed   maphash.Seed

	// Persistent tier (nil backend = memory-only). namespace prefixes every
	// backend key so independent evaluation spaces (different tasksets,
	// platforms, objectives, budgets) sharing one store never collide.
	backend   Backend
	namespace string
	codec     Codec[V]

	hits     atomic.Int64
	misses   atomic.Int64
	diskHits atomic.Int64
}

// NewCache wraps eval in a memory-only cache with the given shard count
// (DefaultShards when n <= 0).
func NewCache[K Keyed, V any](n int, eval func(K) (V, error)) *Cache[K, V] {
	if n <= 0 {
		n = DefaultShards
	}
	c := &Cache[K, V]{eval: eval, shards: make([]shard[V], n), seed: maphash.MakeSeed()}
	for i := range c.shards {
		c.shards[i].m = make(map[string]*entry[V])
	}
	return c
}

// NewTiered wraps eval in a two-tier cache: memory in front of the given
// persistent backend, with every backend key prefixed by namespace and
// values serialized through codec. A nil backend degrades to NewCache.
func NewTiered[K Keyed, V any](n int, eval func(K) (V, error), b Backend, namespace string, codec Codec[V]) *Cache[K, V] {
	c := NewCache(n, eval)
	c.backend = b
	c.namespace = namespace
	c.codec = codec
	return c
}

func (c *Cache[K, V]) shardFor(key string) *shard[V] {
	return &c.shards[maphash.String(c.seed, key)%uint64(len(c.shards))]
}

// Get returns the memoized evaluation of s, computing it on first request.
// Concurrent requests for the same key coalesce: exactly one computes,
// the rest wait. An evaluation error is memoized like a value so a failing
// input is not retried within one cache lifetime.
//
// The boolean reports whether this call materialized the entry (a memory
// miss) — by executing the evaluator or by loading the persistent tier;
// callers use it to attribute distinct-evaluation counts to the walk that
// paid for the evaluation. Counting a disk load exactly like an execution
// is what keeps per-walk counts, and hence all reported tables,
// bit-identical between cold-store and warm-store runs.
func (c *Cache[K, V]) Get(s K) (V, bool, error) {
	key := s.Key()
	sh := c.shardFor(key)
	sh.mu.Lock()
	if e, ok := sh.m[key]; ok {
		sh.mu.Unlock()
		<-e.done
		c.hits.Add(1)
		return e.val, false, e.err
	}
	e := &entry[V]{done: make(chan struct{})}
	sh.m[key] = e
	sh.mu.Unlock()

	c.misses.Add(1)
	// Close done even if the evaluator panics: otherwise the entry would
	// wedge every future waiter on this key. A panicking evaluation is
	// memoized as an error so coalesced waiters fail loudly instead of
	// receiving a zero value.
	finished := false
	defer func() {
		if !finished {
			e.err = fmt.Errorf("evalcache: evaluation of %s panicked", key)
		}
		close(e.done)
	}()
	if c.backend != nil {
		if data, ok := c.backend.Get(c.namespace + key); ok {
			if v, err := c.codec.Decode(data); err == nil {
				c.diskHits.Add(1)
				e.val = v
				finished = true
				return e.val, true, nil
			}
			// Undecodable record (stale payload schema, corruption the
			// envelope check could not catch): recompute and overwrite.
		}
	}
	e.val, e.err = c.eval(s)
	finished = true
	if e.err == nil && c.backend != nil {
		if data, err := c.codec.Encode(e.val); err == nil {
			c.backend.Put(c.namespace+key, data)
		}
	}
	return e.val, true, e.err
}

// Len returns the number of distinct keys evaluated (or in flight).
func (c *Cache[K, V]) Len() int {
	n := 0
	for i := range c.shards {
		c.shards[i].mu.Lock()
		n += len(c.shards[i].m)
		c.shards[i].mu.Unlock()
	}
	return n
}

// Stats is a point-in-time snapshot of cache effectiveness. Hits and
// Misses describe the memory tier, so they are independent of whether a
// persistent tier is attached or warm; DiskHits counts the subset of
// Misses that the persistent tier satisfied without executing the
// evaluator.
type Stats struct {
	Hits     int64
	Misses   int64
	DiskHits int64
}

// Lookups returns the total number of Get calls observed.
func (s Stats) Lookups() int64 { return s.Hits + s.Misses }

// Executions returns the number of lookups that ran the evaluator: memory
// misses not satisfied by the persistent tier.
func (s Stats) Executions() int64 { return s.Misses - s.DiskHits }

// HitRate returns memory hits / lookups, or 0 when the cache was never
// used. It is stable across cold- and warm-store runs by construction.
func (s Stats) HitRate() float64 {
	if l := s.Lookups(); l > 0 {
		return float64(s.Hits) / float64(l)
	}
	return 0
}

// Stats snapshots the hit/miss counters.
func (c *Cache[K, V]) Stats() Stats {
	return Stats{Hits: c.hits.Load(), Misses: c.misses.Load(), DiskHits: c.diskHits.Load()}
}
