package evalcache

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/sched"
)

func TestGetMemoizes(t *testing.T) {
	var evals atomic.Int64
	c := NewCache(4, func(s sched.Schedule) (int, error) {
		evals.Add(1)
		return s[0] * 10, nil
	})
	s := sched.Schedule{3, 1}
	v, executed, err := c.Get(s)
	if err != nil || v != 30 || !executed {
		t.Fatalf("first get: v=%d executed=%v err=%v", v, executed, err)
	}
	v, executed, err = c.Get(s)
	if err != nil || v != 30 || executed {
		t.Fatalf("second get: v=%d executed=%v err=%v", v, executed, err)
	}
	if n := evals.Load(); n != 1 {
		t.Errorf("eval ran %d times, want 1", n)
	}
	st := c.Stats()
	if st.Hits != 1 || st.Misses != 1 {
		t.Errorf("stats = %+v, want 1 hit / 1 miss", st)
	}
	if st.HitRate() != 0.5 || st.Lookups() != 2 {
		t.Errorf("hit rate %v lookups %d", st.HitRate(), st.Lookups())
	}
}

func TestConcurrentGetsCoalesce(t *testing.T) {
	var evals atomic.Int64
	gate := make(chan struct{})
	c := NewCache(0, func(s sched.Schedule) (string, error) {
		evals.Add(1)
		<-gate // hold every requester until all goroutines are queued
		return s.Key(), nil
	})
	const workers = 32
	var wg sync.WaitGroup
	executions := make([]bool, workers)
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			v, executed, err := c.Get(sched.Schedule{2, 2, 2})
			if err != nil || v != "(2, 2, 2)" {
				t.Errorf("worker %d: v=%q err=%v", i, v, err)
			}
			executions[i] = executed
		}(i)
	}
	close(gate)
	wg.Wait()
	if n := evals.Load(); n != 1 {
		t.Errorf("eval ran %d times under contention, want 1", n)
	}
	executed := 0
	for _, e := range executions {
		if e {
			executed++
		}
	}
	if executed != 1 {
		t.Errorf("%d workers report executing the eval, want exactly 1", executed)
	}
	if st := c.Stats(); st.Misses != 1 || st.Hits != workers-1 {
		t.Errorf("stats = %+v, want 1 miss / %d hits", st, workers-1)
	}
}

func TestErrorsAreMemoized(t *testing.T) {
	var evals atomic.Int64
	boom := errors.New("boom")
	c := NewCache(2, func(s sched.Schedule) (int, error) {
		evals.Add(1)
		return 0, boom
	})
	for i := 0; i < 3; i++ {
		if _, _, err := c.Get(sched.Schedule{1}); !errors.Is(err, boom) {
			t.Fatalf("get %d: err = %v", i, err)
		}
	}
	if n := evals.Load(); n != 1 {
		t.Errorf("failing eval ran %d times, want 1", n)
	}
}

func TestPanickingEvalDoesNotWedgeWaiters(t *testing.T) {
	c := NewCache(2, func(s sched.Schedule) (int, error) {
		panic("boom")
	})
	func() {
		defer func() {
			if recover() == nil {
				t.Error("panic did not propagate to the executing caller")
			}
		}()
		c.Get(sched.Schedule{1, 1})
	}()
	// A later requester must not block forever; it gets a memoized error.
	done := make(chan error, 1)
	go func() {
		_, _, err := c.Get(sched.Schedule{1, 1})
		done <- err
	}()
	select {
	case err := <-done:
		if err == nil {
			t.Error("waiter after panic got nil error")
		}
	case <-time.After(2 * time.Second):
		t.Fatal("waiter wedged on panicked entry")
	}
}

func TestLenCountsDistinctKeys(t *testing.T) {
	c := NewCache(8, func(s sched.Schedule) (int, error) { return 0, nil })
	for i := 1; i <= 5; i++ {
		for rep := 0; rep < 3; rep++ {
			if _, _, err := c.Get(sched.Schedule{i, 1}); err != nil {
				t.Fatal(err)
			}
		}
	}
	if c.Len() != 5 {
		t.Errorf("len = %d, want 5", c.Len())
	}
}

func TestManyKeysAcrossShards(t *testing.T) {
	var evals atomic.Int64
	c := NewCache(16, func(s sched.Schedule) (string, error) {
		evals.Add(1)
		return s.Key(), nil
	})
	const keys = 200
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < keys; i++ {
				s := sched.Schedule{i%10 + 1, i/10 + 1}
				v, _, err := c.Get(s)
				if err != nil || v != s.Key() {
					t.Errorf("key %v: v=%q err=%v", s, v, err)
					return
				}
			}
		}()
	}
	wg.Wait()
	distinct := 0
	seen := map[string]bool{}
	for i := 0; i < keys; i++ {
		k := fmt.Sprint(i%10+1, i/10+1)
		if !seen[k] {
			seen[k] = true
			distinct++
		}
	}
	if int(evals.Load()) != distinct || c.Len() != distinct {
		t.Errorf("evals=%d len=%d, want %d distinct", evals.Load(), c.Len(), distinct)
	}
}
