package evalcache

import (
	"encoding/json"
	"fmt"
	"sync"
	"testing"
)

type tkey string

func (k tkey) Key() string { return string(k) }

// memBackend is an in-memory Backend with fault injection.
type memBackend struct {
	mu      sync.Mutex
	m       map[string][]byte
	gets    int
	puts    int
	garbage bool // serve undecodable payloads
}

func newMemBackend() *memBackend { return &memBackend{m: map[string][]byte{}} }

func (b *memBackend) Get(key string) ([]byte, bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.gets++
	if b.garbage {
		return []byte("not json"), true
	}
	data, ok := b.m[key]
	return data, ok
}

func (b *memBackend) Put(key string, payload []byte) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.puts++
	b.m[key] = append([]byte(nil), payload...)
}

func intCodec() Codec[int] {
	return Codec[int]{
		Encode: func(v int) ([]byte, error) { return json.Marshal(v) },
		Decode: func(data []byte) (int, error) {
			var v int
			err := json.Unmarshal(data, &v)
			return v, err
		},
	}
}

func TestTieredWritesThroughAndLoads(t *testing.T) {
	backend := newMemBackend()
	execs := 0
	eval := func(k tkey) (int, error) { execs++; return len(k), nil }

	warm := NewTiered(0, eval, backend, "ns/", intCodec())
	v, charged, err := warm.Get(tkey("abc"))
	if err != nil || v != 3 || !charged {
		t.Fatalf("cold Get = (%d, %v, %v)", v, charged, err)
	}
	if execs != 1 {
		t.Fatalf("execs = %d, want 1", execs)
	}
	if _, ok := backend.m["ns/abc"]; !ok {
		t.Fatalf("backend not written through; keys %v", backend.m)
	}

	// A second cache instance sharing the backend simulates a new process
	// on a warm store: the value loads without executing the evaluator,
	// but the lookup is still charged like an execution so evaluation
	// attribution is identical cold and warm.
	second := NewTiered(0, eval, backend, "ns/", intCodec())
	v, charged, err = second.Get(tkey("abc"))
	if err != nil || v != 3 {
		t.Fatalf("warm Get = (%d, %v)", v, err)
	}
	if !charged {
		t.Fatal("disk-tier load was not charged; warm runs would attribute differently than cold")
	}
	if execs != 1 {
		t.Fatalf("warm Get executed the evaluator (execs = %d)", execs)
	}
	st := second.Stats()
	if st.DiskHits != 1 || st.Misses != 1 || st.Hits != 0 || st.Executions() != 0 {
		t.Fatalf("warm stats %+v", st)
	}
	// Memory hit on repeat; disk untouched.
	gets := backend.gets
	if _, charged, _ := second.Get(tkey("abc")); charged {
		t.Fatal("memory hit reported as charged")
	}
	if backend.gets != gets {
		t.Fatal("memory hit consulted the backend")
	}
}

func TestTieredNamespaceSeparation(t *testing.T) {
	backend := newMemBackend()
	eval := func(k tkey) (int, error) { return 1, nil }
	a := NewTiered(0, eval, backend, "a/", intCodec())
	b := NewTiered(0, eval, backend, "b/", intCodec())
	a.Get(tkey("k"))
	b.Get(tkey("k"))
	if len(backend.m) != 2 {
		t.Fatalf("namespaces collided: backend keys %v", backend.m)
	}
}

func TestTieredUndecodableRecordRecomputes(t *testing.T) {
	backend := newMemBackend()
	backend.garbage = true
	execs := 0
	c := NewTiered(0, func(k tkey) (int, error) { execs++; return 7, nil }, backend, "ns/", intCodec())
	v, charged, err := c.Get(tkey("x"))
	if err != nil || v != 7 || !charged {
		t.Fatalf("Get over garbage backend = (%d, %v, %v)", v, charged, err)
	}
	if execs != 1 {
		t.Fatalf("garbage record did not degrade to recompute (execs = %d)", execs)
	}
	if st := c.Stats(); st.DiskHits != 0 {
		t.Fatalf("garbage record counted as disk hit: %+v", st)
	}
}

func TestTieredErrorsNotPersisted(t *testing.T) {
	backend := newMemBackend()
	c := NewTiered(0, func(k tkey) (int, error) { return 0, fmt.Errorf("boom") }, backend, "ns/", intCodec())
	if _, _, err := c.Get(tkey("x")); err == nil {
		t.Fatal("expected error")
	}
	if backend.puts != 0 {
		t.Fatal("failed evaluation was persisted")
	}
}

func TestTieredNilBackendIsMemoryOnly(t *testing.T) {
	execs := 0
	c := NewTiered(0, func(k tkey) (int, error) { execs++; return 1, nil }, nil, "ns/", intCodec())
	c.Get(tkey("x"))
	c.Get(tkey("x"))
	if execs != 1 {
		t.Fatalf("execs = %d, want 1", execs)
	}
	if st := c.Stats(); st.DiskHits != 0 || st.Hits != 1 || st.Misses != 1 {
		t.Fatalf("stats %+v", st)
	}
}

func TestTieredConcurrentColdGetsCoalesceOntoBackend(t *testing.T) {
	backend := newMemBackend()
	execs := 0
	block := make(chan struct{})
	c := NewTiered(0, func(k tkey) (int, error) { execs++; <-block; return 2, nil }, backend, "ns/", intCodec())
	const n = 8
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if v, _, err := c.Get(tkey("k")); err != nil || v != 2 {
				t.Errorf("Get = (%d, %v)", v, err)
			}
		}()
	}
	close(block)
	wg.Wait()
	if execs != 1 {
		t.Fatalf("coalescing failed: execs = %d", execs)
	}
	if backend.gets != 1 || backend.puts != 1 {
		t.Fatalf("backend traffic gets=%d puts=%d, want 1/1 (singleflight onto the store)", backend.gets, backend.puts)
	}
}
