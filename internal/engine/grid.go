package engine

import (
	"fmt"

	"repro/internal/cachesim"
	"repro/internal/ctrl"
	"repro/internal/sched"
)

// Grid is a declarative randomized-sweep specification: n scenarios with
// consecutive seeds cycling over a prefix of the cache-platform variants.
// It is the single scenario-construction path shared by cmd/sweep and the
// HTTP design service (cmd/served), so a sweep requested over HTTP hits
// exactly the same store keys as the same sweep run from the command line.
type Grid struct {
	N       int   // number of scenarios (>= 1)
	Apps    int   // applications per scenario (default 3)
	Seed    int64 // base seed; scenario i uses Seed+i
	MaxM    int   // burst-length cap (default 6)
	Starts  int   // random hybrid starts per scenario (default 2)
	Tol     float64
	Workers int // intra-scenario workers for the exhaustive pass

	Objective  Objective
	Budget     ctrl.DesignOptions // design budget for ObjectiveDesign
	Platforms  int                // platform variants to cycle through (1..len(PlatformVariants))
	Exhaustive bool

	// Arrival axis: Jitter > 0 switches every scenario to sporadic releases
	// with that bounded jitter fraction, seeded by ArrivalSeed and simulated
	// over ArrivalCycles schedule periods (0 = sched.DefaultArrivalCycles).
	Jitter        float64
	ArrivalSeed   int64
	ArrivalCycles int

	// Hierarchy axis: L2Lines > 0 overlays an L2 cache on every scenario's
	// platform variant. Line size and memory cost come from the variant's L1;
	// L2Ways defaults to 4 and L2Hit to 10 cycles. L2Exclusive selects the
	// victim-cache mode.
	L2Lines     int
	L2Ways      int
	L2Hit       int
	L2Exclusive bool
}

// Scenarios expands the grid into its scenario list. Scenario i is named
// s%03d and seeded Seed+i, on platform variant i mod Platforms.
func (g Grid) Scenarios() ([]Scenario, error) {
	if g.N < 1 {
		return nil, fmt.Errorf("engine: grid needs at least 1 scenario")
	}
	variants := PlatformVariants()
	if g.Platforms == 0 {
		g.Platforms = 1
	}
	if g.Platforms < 1 || g.Platforms > len(variants) {
		return nil, fmt.Errorf("engine: grid platforms must be in [1, %d]", len(variants))
	}
	// Axis parameters are validated here rather than left to the scenario,
	// because the grid's activation rule (> 0) would silently swallow a
	// negative value as "periodic" / "single-level".
	if !(g.Jitter >= 0 && g.Jitter < 1) { // negated so NaN fails too
		return nil, fmt.Errorf("engine: grid jitter %g outside [0, 1)", g.Jitter)
	}
	if g.L2Lines < 0 || g.L2Ways < 0 || g.L2Hit < 0 {
		return nil, fmt.Errorf("engine: grid L2 geometry cannot be negative")
	}
	plats := variants[:g.Platforms]
	if g.Workers == 0 {
		g.Workers = 2
	}
	var arrival sched.Arrival
	if g.Jitter > 0 {
		arrival = sched.Arrival{
			Model:  sched.ArrivalSporadic,
			Jitter: g.Jitter,
			Seed:   g.ArrivalSeed,
			Cycles: g.ArrivalCycles,
		}
	}
	scenarios := make([]Scenario, g.N)
	for i := range scenarios {
		plat := plats[i%len(plats)]
		if g.L2Lines > 0 {
			ways := g.L2Ways
			if ways == 0 {
				ways = 4
			}
			hit := g.L2Hit
			if hit == 0 {
				hit = 10
			}
			plat.Hier = cachesim.Hierarchy{
				L2: cachesim.Config{
					Lines:      g.L2Lines,
					LineSize:   plat.Cache.LineSize,
					Ways:       ways,
					Policy:     cachesim.LRU,
					HitCycles:  hit,
					MissCycles: plat.Cache.MissCycles,
				},
				Exclusive: g.L2Exclusive,
			}
			if err := plat.Hier.Validate(plat.Cache); err != nil {
				return nil, fmt.Errorf("engine: grid L2 overlay: %w", err)
			}
		}
		scenarios[i] = Scenario{
			Name:       fmt.Sprintf("s%03d", i),
			Seed:       g.Seed + int64(i),
			NumApps:    g.Apps,
			Platform:   plat,
			Arrival:    arrival,
			MaxM:       g.MaxM,
			Starts:     g.Starts,
			Tolerance:  g.Tol,
			Objective:  g.Objective,
			Budget:     g.Budget,
			Exhaustive: g.Exhaustive,
			Workers:    g.Workers,
		}
	}
	return scenarios, nil
}
