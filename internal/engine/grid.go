package engine

import (
	"fmt"

	"repro/internal/ctrl"
)

// Grid is a declarative randomized-sweep specification: n scenarios with
// consecutive seeds cycling over a prefix of the cache-platform variants.
// It is the single scenario-construction path shared by cmd/sweep and the
// HTTP design service (cmd/served), so a sweep requested over HTTP hits
// exactly the same store keys as the same sweep run from the command line.
type Grid struct {
	N       int   // number of scenarios (>= 1)
	Apps    int   // applications per scenario (default 3)
	Seed    int64 // base seed; scenario i uses Seed+i
	MaxM    int   // burst-length cap (default 6)
	Starts  int   // random hybrid starts per scenario (default 2)
	Tol     float64
	Workers int // intra-scenario workers for the exhaustive pass

	Objective  Objective
	Budget     ctrl.DesignOptions // design budget for ObjectiveDesign
	Platforms  int                // platform variants to cycle through (1..len(PlatformVariants))
	Exhaustive bool
}

// Scenarios expands the grid into its scenario list. Scenario i is named
// s%03d and seeded Seed+i, on platform variant i mod Platforms.
func (g Grid) Scenarios() ([]Scenario, error) {
	if g.N < 1 {
		return nil, fmt.Errorf("engine: grid needs at least 1 scenario")
	}
	variants := PlatformVariants()
	if g.Platforms == 0 {
		g.Platforms = 1
	}
	if g.Platforms < 1 || g.Platforms > len(variants) {
		return nil, fmt.Errorf("engine: grid platforms must be in [1, %d]", len(variants))
	}
	plats := variants[:g.Platforms]
	if g.Workers == 0 {
		g.Workers = 2
	}
	scenarios := make([]Scenario, g.N)
	for i := range scenarios {
		scenarios[i] = Scenario{
			Name:       fmt.Sprintf("s%03d", i),
			Seed:       g.Seed + int64(i),
			NumApps:    g.Apps,
			Platform:   plats[i%len(plats)],
			MaxM:       g.MaxM,
			Starts:     g.Starts,
			Tolerance:  g.Tol,
			Objective:  g.Objective,
			Budget:     g.Budget,
			Exhaustive: g.Exhaustive,
			Workers:    g.Workers,
		}
	}
	return scenarios, nil
}
