package engine

import (
	"math/rand"
	"reflect"
	"strings"
	"testing"

	"repro/internal/sched"
	"repro/internal/store"
)

// sporadicScenarios builds a small timing sweep under the given arrival
// model, cycling every platform variant (including the L1+L2 hierarchy).
func sporadicScenarios(arr sched.Arrival) []Scenario {
	platforms := PlatformVariants()
	scns := make([]Scenario, 6)
	for i := range scns {
		scns[i] = Scenario{
			Seed:       int64(300 + i),
			NumApps:    2 + i%3,
			Platform:   platforms[i%len(platforms)],
			Arrival:    arr,
			MaxM:       4,
			Starts:     2,
			Exhaustive: true,
			Workers:    2,
		}
	}
	return scns
}

// TestSporadicZeroJitterMatchesPeriodic is the metamorphic pin on the
// arrival axis: requesting sporadic arrivals with zero jitter must
// reproduce the periodic engine bit-identically — every objective value,
// checkpoint record, and sweep report — at multiple worker counts (run
// under -race in CI). The engine normalizes that case back to the periodic
// evaluator, so no float accumulation from the event loop can leak in.
func TestSporadicZeroJitterMatchesPeriodic(t *testing.T) {
	periodic, err := Sweep(Config{Workers: 1}, sporadicScenarios(sched.Arrival{}))
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 4} {
		zeroJitter := sporadicScenarios(sched.Arrival{Model: sched.ArrivalSporadic, Seed: 99})
		got, err := Sweep(Config{Workers: workers}, zeroJitter)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, periodic) {
			t.Fatalf("workers=%d: zero-jitter sporadic sweep differs from periodic", workers)
		}
	}

	// Checkpoints: records written by a periodic sweep must be found (and
	// resumed from) by the zero-jitter sporadic sweep — same result keys.
	dir := t.TempDir()
	st, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Sweep(Config{Workers: 2, Store: st}, sporadicScenarios(sched.Arrival{})); err != nil {
		t.Fatal(err)
	}
	st2, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	resumed, err := Sweep(Config{Workers: 2, Store: st2, Resume: true},
		sporadicScenarios(sched.Arrival{Model: sched.ArrivalSporadic}))
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range resumed {
		if !r.Resumed {
			t.Errorf("scenario %d recomputed: zero-jitter sporadic missed the periodic checkpoint", i)
		}
		if s, p := summarize(t, r), summarize(t, periodic[i]); s != p {
			t.Errorf("scenario %d resumed summary differs:\n got %+v\nwant %+v", i, s, p)
		}
	}
}

// TestSporadicSweepParallelMatchesSerial extends the determinism guarantee
// to jittered arrivals: the heap-driven timeline is seeded, so parallel,
// serial, and store-resumed sweeps all agree bit-for-bit.
func TestSporadicSweepParallelMatchesSerial(t *testing.T) {
	arr := sched.Arrival{Model: sched.ArrivalSporadic, Jitter: 0.2, Seed: 7, Cycles: 32}
	serial, err := Sweep(Config{Workers: 1}, sporadicScenarios(arr))
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := Sweep(Config{Workers: 8}, sporadicScenarios(arr))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(serial, parallel) {
		t.Fatal("parallel sporadic sweep differs from serial")
	}
	// Jitter must actually change results relative to periodic on at least
	// one scenario — otherwise the axis is dead.
	periodic, err := Sweep(Config{Workers: 1}, sporadicScenarios(sched.Arrival{}))
	if err != nil {
		t.Fatal(err)
	}
	changed := false
	for i := range serial {
		if serial[i].BestValue != periodic[i].BestValue {
			changed = true
		}
	}
	if !changed {
		t.Error("0.2 jitter left every scenario's best value untouched")
	}

	dir := t.TempDir()
	st, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Sweep(Config{Workers: 2, Store: st}, sporadicScenarios(arr)); err != nil {
		t.Fatal(err)
	}
	st2, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	resumed, err := Sweep(Config{Workers: 2, Store: st2, Resume: true}, sporadicScenarios(arr))
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range resumed {
		if !r.Resumed {
			t.Errorf("scenario %d recomputed on resume", i)
		}
		if s, p := summarize(t, r), summarize(t, serial[i]); s != p {
			t.Errorf("scenario %d resumed summary differs:\n got %+v\nwant %+v", i, s, p)
		}
	}
}

// TestScenarioAxisRejections: invalid axis combinations fail loudly at
// scenario validation, not deep inside an evaluator.
func TestScenarioAxisRejections(t *testing.T) {
	hier := PlatformVariants()[2]
	if !hier.Hier.Enabled() {
		t.Fatal("variant 2 is expected to carry the L1+L2 hierarchy")
	}
	sporadic := sched.Arrival{Model: sched.ArrivalSporadic, Jitter: 0.1}
	cases := []struct {
		name string
		scn  Scenario
		want string
	}{
		{"partitioned hierarchy", Scenario{Seed: 1, Partitioned: true, Platform: hier}, "separate platform axes"},
		{"sporadic partitioned", Scenario{Seed: 1, Partitioned: true, Arrival: sporadic}, "sporadic arrivals"},
		{"sporadic multicore", Scenario{Seed: 1, Cores: 2, Arrival: sporadic}, "sporadic arrivals"},
		{"sporadic design", Scenario{Seed: 1, Objective: ObjectiveDesign, Arrival: sporadic}, "ObjectiveTiming only"},
		{"bad jitter", Scenario{Seed: 1, Arrival: sched.Arrival{Model: sched.ArrivalSporadic, Jitter: 1.5}}, "jitter"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Run(tc.scn)
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("err = %v, want substring %q", err, tc.want)
			}
		})
	}
}

// TestGridAxisOverlay: the grid's arrival and hierarchy fields reach every
// scenario with defaults resolved, and out-of-range axis values are
// rejected instead of silently deactivating the axis.
func TestGridAxisOverlay(t *testing.T) {
	g := Grid{N: 4, Platforms: 2, Jitter: 0.2, ArrivalSeed: 5, ArrivalCycles: 16,
		L2Lines: 512, L2Exclusive: true}
	scns, err := g.Scenarios()
	if err != nil {
		t.Fatal(err)
	}
	for i, scn := range scns {
		if scn.Arrival.Model != sched.ArrivalSporadic || scn.Arrival.Jitter != 0.2 ||
			scn.Arrival.Seed != 5 || scn.Arrival.Cycles != 16 {
			t.Errorf("scenario %d arrival %+v", i, scn.Arrival)
		}
		h := scn.Platform.Hier
		if !h.Enabled() || !h.Exclusive || h.L2.Lines != 512 || h.L2.Ways != 4 ||
			h.L2.HitCycles != 10 || h.L2.LineSize != scn.Platform.Cache.LineSize ||
			h.L2.MissCycles != scn.Platform.Cache.MissCycles {
			t.Errorf("scenario %d hierarchy %+v", i, h)
		}
		if err := h.Validate(scn.Platform.Cache); err != nil {
			t.Errorf("scenario %d hierarchy invalid: %v", i, err)
		}
	}
	for _, bad := range []Grid{
		{N: 2, Jitter: -0.1},
		{N: 2, Jitter: 1},
		{N: 2, L2Lines: -4},
		{N: 2, L2Lines: 512, L2Hit: -1},
	} {
		if _, err := bad.Scenarios(); err == nil {
			t.Errorf("grid %+v expanded", bad)
		}
	}
}

// TestEvalNamespaceVersioning pins the signature-key scheme of the new
// axes: hierarchy and arrival configurations are hashed only when active,
// so legacy scenarios keep their namespaces byte-for-byte, while enabling
// either axis (or changing its parameters) moves to a fresh namespace.
func TestEvalNamespaceVersioning(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	base := Scenario{NumApps: 3}.withDefaults()
	timings, weights, err := RandomTaskset(rng, base)
	if err != nil {
		t.Fatal(err)
	}
	res := &Result{Timings: timings, Weights: weights}

	legacy := evalNamespace(base, res)

	// Zero-value hierarchy and periodic (or normalized zero-jitter
	// sporadic) arrivals write nothing: same namespace as legacy.
	zeroJitter := base
	zeroJitter.Arrival = sched.Arrival{Model: sched.ArrivalSporadic}
	zeroJitter = zeroJitter.withDefaults()
	if got := evalNamespace(zeroJitter, res); got != legacy {
		t.Errorf("zero-jitter sporadic namespace %s differs from legacy %s", got, legacy)
	}

	hier := base
	hier.Platform = PlatformVariants()[2]
	hierNS := evalNamespace(hier, res)
	if hierNS == legacy {
		t.Error("hierarchy platform shares the single-level namespace")
	}
	excl := hier
	excl.Platform.Hier.Exclusive = true
	if got := evalNamespace(excl, res); got == hierNS {
		t.Error("exclusive and inclusive hierarchies share a namespace")
	}

	spor := base
	spor.Arrival = sched.Arrival{Model: sched.ArrivalSporadic, Jitter: 0.1, Seed: 7}
	spor = spor.withDefaults()
	sporNS := evalNamespace(spor, res)
	if sporNS == legacy {
		t.Error("sporadic arrivals share the periodic namespace")
	}
	seeded := spor
	seeded.Arrival.Seed = 8
	if got := evalNamespace(seeded, res); got == sporNS {
		t.Error("different arrival seeds share a namespace")
	}

	// The legacy byte stream itself is pinned over a hand-written taskset:
	// if this hash moves, every store in the wild silently recomputes.
	// Bump evalSchema deliberately or not at all.
	fixed := &Result{
		Timings: []sched.AppTiming{
			{Name: "C1", ColdWCET: 300e-6, WarmWCET: 200e-6, MaxIdle: 3e-3},
			{Name: "C2", ColdWCET: 400e-6, WarmWCET: 250e-6, MaxIdle: 4e-3},
		},
		Weights: []float64{0.5, 0.5},
	}
	pinScn := Scenario{NumApps: 2}.withDefaults()
	const pinned = "o/a2cbcec057473493354d50c694b1dcc7/"
	if got := evalNamespace(pinScn, fixed); got != pinned {
		t.Errorf("legacy namespace moved: %s, pinned %s", got, pinned)
	}
}
