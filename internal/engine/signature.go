package engine

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"io"
	"math"

	"repro/internal/lti"
	"repro/internal/mat"
	"repro/internal/sched"
)

// Signature versioning: evalSchema namespaces persisted evaluation outcomes
// (search.Outcome records), resultSchema namespaces persisted per-scenario
// checkpoint records (ResultRecord). Bump the one whose payload semantics
// change incompatibly; old records then address different keys and are
// recomputed rather than misread.
// evalSchema stays at v1 across the multi-core extension: core-point keys
// are a compatible extension of the key space (their "c[...]|" prefix can
// never collide with schedule or joint keys), so single-core outcomes in
// existing stores remain valid and shareable. resultSchema is at v2 because
// PR 8 added the Cores/BranchBound axes (and the Multicore record payload)
// to the checkpoint.
const (
	evalSchema   = "eval/v1"
	resultSchema = "result/v2"
)

// sigWriter accumulates the content hash of an evaluation space. All
// floating-point inputs are written as their IEEE-754 bit patterns, so two
// scenarios share a signature exactly when every number that can influence
// an evaluation is bit-identical.
type sigWriter struct {
	h io.Writer
}

func (w sigWriter) str(s string)  { fmt.Fprintf(w.h, "%d:%s|", len(s), s) }
func (w sigWriter) num(v int64)   { fmt.Fprintf(w.h, "%d|", v) }
func (w sigWriter) f64(v float64) { fmt.Fprintf(w.h, "%016x|", math.Float64bits(v)) }
func (w sigWriter) flag(b bool)   { fmt.Fprintf(w.h, "%v|", b) }

func (w sigWriter) ints(vs []int) {
	w.num(int64(len(vs)))
	for _, v := range vs {
		w.num(int64(v))
	}
}

func (w sigWriter) matrix(m *mat.Matrix) {
	if m == nil {
		w.num(-1)
		return
	}
	w.num(int64(m.Rows()))
	w.num(int64(m.Cols()))
	for i := 0; i < m.Rows(); i++ {
		for j := 0; j < m.Cols(); j++ {
			w.f64(m.At(i, j))
		}
	}
}

func (w sigWriter) timings(ts []sched.AppTiming) {
	w.num(int64(len(ts)))
	for _, t := range ts {
		w.str(t.Name)
		w.f64(t.ColdWCET)
		w.f64(t.WarmWCET)
		w.f64(t.MaxIdle)
	}
}

// writeEvalSpace hashes everything the outcome of one schedule (or joint
// point) evaluation depends on: the objective, the platform, the derived
// taskset timings and weights (which fingerprint the programs through
// their WCETs), the partition timing table when the joint axis is active,
// and — for the full-design objective — the design budget and the plant
// dynamics and constraints of every application. Search parameters (maxM,
// tolerance, starts) deliberately stay out: an outcome is a property of
// the point, so runs with different search settings share evaluations.
//
// scn must already have defaults applied, and res must carry the resolved
// taskset (Timings/Weights, plus PartTimings when partitioned).
func writeEvalSpace(w sigWriter, scn Scenario, res *Result) {
	w.str(evalSchema)
	w.str(scn.Objective.String())
	w.flag(scn.Partitioned)

	p := scn.Platform
	w.f64(p.ClockHz)
	w.num(int64(p.Cache.Lines))
	w.num(int64(p.Cache.LineSize))
	w.num(int64(p.Cache.Ways))
	w.num(int64(p.Cache.Policy))
	w.num(int64(p.Cache.HitCycles))
	w.num(int64(p.Cache.MissCycles))

	// Hierarchy and arrival axes are hashed only when active, behind
	// versioned markers: scenarios that don't use them keep the exact byte
	// stream (and hence namespaces) they had before the axes existed, so
	// legacy stores stay valid without a schema bump.
	if p.Hier.Enabled() {
		w.str("hier/v1")
		w.num(int64(p.Hier.L2.Lines))
		w.num(int64(p.Hier.L2.LineSize))
		w.num(int64(p.Hier.L2.Ways))
		w.num(int64(p.Hier.L2.Policy))
		w.num(int64(p.Hier.L2.HitCycles))
		w.num(int64(p.Hier.L2.MissCycles))
		w.flag(p.Hier.Exclusive)
	}
	if scn.Arrival.Sporadic() {
		w.str("arr/v1")
		w.f64(scn.Arrival.Jitter)
		w.num(scn.Arrival.Seed)
		w.num(int64(scn.Arrival.Cycles))
	}

	w.timings(res.Timings)
	w.num(int64(len(res.Weights)))
	for _, wt := range res.Weights {
		w.f64(wt)
	}
	if scn.Partitioned {
		w.num(int64(len(res.PartTimings.ByWays)))
		for _, col := range res.PartTimings.ByWays {
			w.timings(col)
		}
	}

	if scn.Objective == ObjectiveDesign {
		b := scn.Budget
		w.num(int64(b.Swarm.Particles))
		w.num(int64(b.Swarm.Iterations))
		w.f64(b.Swarm.InertiaStart)
		w.f64(b.Swarm.InertiaEnd)
		w.f64(b.Swarm.Cognitive)
		w.f64(b.Swarm.Social)
		w.num(int64(b.Swarm.StallLimit))
		w.f64(b.Sim.Horizon)
		w.f64(b.Sim.DtMax)
		w.f64(b.GainScale)
		w.num(int64(len(b.WarmStartRadii)))
		for _, r := range b.WarmStartRadii {
			w.f64(r)
		}
		w.flag(b.PerModeFeedforward)

		// The framework's applications: plant dynamics and evaluation
		// constraints per app, resolved whether the scenario named them
		// explicitly or drew them from the case-study pool.
		var list []appFingerprint
		if res.Framework != nil {
			for _, a := range res.Framework.Apps {
				list = append(list, appFingerprint{
					Name: a.Name, Plant: a.Plant,
					SettleDeadline: a.SettleDeadline, Ref: a.Ref, UMax: a.UMax,
				})
			}
		}
		w.num(int64(len(list)))
		for _, a := range list {
			w.str(a.Name)
			w.f64(a.SettleDeadline)
			w.f64(a.Ref)
			w.f64(a.UMax)
			if a.Plant != nil {
				w.matrix(a.Plant.A)
				w.matrix(a.Plant.B)
				w.matrix(a.Plant.C)
			} else {
				w.num(-1)
			}
		}
	}
}

type appFingerprint struct {
	Name                      string
	Plant                     *lti.System
	SettleDeadline, Ref, UMax float64
}

// EvalNamespace returns the persistent-store namespace of the scenario's
// evaluation space: outcomes stored under it are valid for any run whose
// taskset, platform, objective, and (for design) budget and plants hash
// identically, regardless of search settings or scenario naming.
func evalNamespace(scn Scenario, res *Result) string {
	h := sha256.New()
	writeEvalSpace(sigWriter{h}, scn, res)
	return "o/" + hex.EncodeToString(h.Sum(nil))[:32] + "/"
}

// resultKey returns the persistent-store key of the scenario's checkpoint
// record. It extends the evaluation-space hash with every search parameter
// that shapes the result: the burst cap, the acceptance tolerance, the
// resolved start points, and whether the exhaustive baseline ran. The
// scenario's Name and Seed are deliberately excluded — they are
// presentation, and two scenarios drawing bit-identical tasksets from
// different seeds genuinely share their result.
func resultKey(scn Scenario, res *Result, starts []sched.Schedule) string {
	h := sha256.New()
	w := sigWriter{h}
	w.str(resultSchema)
	writeEvalSpace(w, scn, res)
	w.num(int64(scn.MaxM))
	w.f64(scn.Tolerance)
	w.flag(scn.Exhaustive)
	w.num(int64(scn.Cores))
	w.flag(scn.BranchBound)
	w.num(int64(len(starts)))
	for _, s := range starts {
		w.ints(s)
	}
	return "r/" + hex.EncodeToString(h.Sum(nil))[:32]
}
