package engine

import "testing"

func TestGridScenarios(t *testing.T) {
	g := Grid{N: 5, Apps: 4, Seed: 10, MaxM: 7, Starts: 3, Tol: 0.02, Platforms: 2, Exhaustive: true}
	scenarios, err := g.Scenarios()
	if err != nil {
		t.Fatal(err)
	}
	if len(scenarios) != 5 {
		t.Fatalf("len = %d", len(scenarios))
	}
	variants := PlatformVariants()
	for i, s := range scenarios {
		if s.Seed != 10+int64(i) || s.NumApps != 4 || s.MaxM != 7 || !s.Exhaustive {
			t.Fatalf("scenario %d fields wrong: %+v", i, s)
		}
		if s.Platform.Cache.Ways != variants[i%2].Cache.Ways {
			t.Fatalf("scenario %d platform cycling wrong", i)
		}
	}
	if scenarios[0].Name != "s000" || scenarios[4].Name != "s004" {
		t.Fatalf("names wrong: %s, %s", scenarios[0].Name, scenarios[4].Name)
	}
}

func TestGridValidation(t *testing.T) {
	if _, err := (Grid{N: 0}).Scenarios(); err == nil {
		t.Error("N=0 accepted")
	}
	if _, err := (Grid{N: 1, Platforms: 99}).Scenarios(); err == nil {
		t.Error("platforms=99 accepted")
	}
}

// TestGridMatchesCLIExpansion pins that the grid expansion feeding both
// cmd/sweep and cmd/served produces runnable, deterministic scenarios.
func TestGridMatchesCLIExpansion(t *testing.T) {
	g := Grid{N: 2, Seed: 3}
	scenarios, err := g.Scenarios()
	if err != nil {
		t.Fatal(err)
	}
	a, err := Sweep(Config{}, scenarios)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Sweep(Config{Workers: 2}, scenarios)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i].BestValue != b[i].BestValue || a[i].Best.String() != b[i].Best.String() {
			t.Fatalf("grid scenarios not deterministic at %d", i)
		}
	}
}
