package engine

import (
	"fmt"
	"math"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/sched"
	"repro/internal/store"
)

// storeGrid is a small randomized timing sweep used by the persistence
// tests; exhaustive is on so checkpoint records carry baseline summaries.
func storeGrid(n int) []Scenario {
	scenarios := make([]Scenario, n)
	for i := range scenarios {
		scenarios[i] = Scenario{
			Name:       fmt.Sprintf("s%03d", i),
			Seed:       int64(100 + i),
			Exhaustive: true,
		}
	}
	return scenarios
}

// summary flattens the report-visible fields of a result for equality
// checks across cold/warm/resumed runs. DiskHits is deliberately absent:
// it is the one counter allowed to differ between tiers.
type summary struct {
	Name      string
	Seed      int64
	AppCount  int
	Best      string
	ValueBits uint64
	Found     bool
	Evaluated int
	Hits      int64
	Misses    int64
	ExhBest   string
	ExhBits   uint64
	ExhEval   int
	ExhFeas   int
}

func summarize(t *testing.T, r *Result) summary {
	t.Helper()
	if r == nil {
		t.Fatal("nil result in completed sweep")
	}
	s := summary{
		Name:      r.Name,
		Seed:      r.Seed,
		AppCount:  r.AppCount,
		ValueBits: math.Float64bits(r.BestValue),
		Found:     r.FoundBest,
		Evaluated: r.Evaluated,
		Hits:      r.CacheStats.Hits,
		Misses:    r.CacheStats.Misses,
	}
	if r.FoundBest {
		s.Best = r.Best.String()
	}
	if ex := r.Exhaustive; ex != nil {
		s.ExhBest = ex.Best.String()
		s.ExhBits = math.Float64bits(ex.BestValue)
		s.ExhEval = ex.Evaluated
		s.ExhFeas = ex.Feasible
	}
	if ex := r.JointExhaustive; ex != nil {
		s.ExhBest = ex.Best.String()
		s.ExhBits = math.Float64bits(ex.BestValue)
		s.ExhEval = ex.Evaluated
		s.ExhFeas = ex.Feasible
	}
	return s
}

func mustEqual(t *testing.T, label string, got, want []*Result) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d results, want %d", label, len(got), len(want))
	}
	for i := range got {
		g, w := summarize(t, got[i]), summarize(t, want[i])
		if g != w {
			t.Fatalf("%s: scenario %d diverged:\n got %+v\nwant %+v", label, i, g, w)
		}
	}
}

func TestSweepColdWarmResumeBitIdentical(t *testing.T) {
	scenarios := storeGrid(4)
	baseline, err := Sweep(Config{Workers: 2}, scenarios)
	if err != nil {
		t.Fatal(err)
	}

	dir := t.TempDir()
	st, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	cold, err := Sweep(Config{Workers: 2, Store: st}, scenarios)
	if err != nil {
		t.Fatal(err)
	}
	mustEqual(t, "cold vs memory-only", cold, baseline)
	for _, r := range cold {
		if r.CacheStats.DiskHits != 0 {
			t.Fatalf("cold run reported disk hits: %+v", r.CacheStats)
		}
		if r.Resumed {
			t.Fatal("cold run flagged Resumed")
		}
	}

	// Warm store, fresh process (new Store handle), no resume: every
	// evaluation loads from disk but all reports stay bit-identical.
	st2, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	warm, err := Sweep(Config{Workers: 2, Store: st2}, scenarios)
	if err != nil {
		t.Fatal(err)
	}
	mustEqual(t, "warm vs cold", warm, cold)
	diskHits := int64(0)
	for _, r := range warm {
		diskHits += r.CacheStats.DiskHits
	}
	if diskHits == 0 {
		t.Fatal("warm run hit the disk tier zero times")
	}

	// Resume: whole scenarios load from checkpoint records.
	st3, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	resumed, err := Sweep(Config{Workers: 2, Store: st3, Resume: true}, scenarios)
	if err != nil {
		t.Fatal(err)
	}
	mustEqual(t, "resumed vs cold", resumed, cold)
	for _, r := range resumed {
		if !r.Resumed {
			t.Fatalf("scenario %s did not resume from its checkpoint", r.Name)
		}
		if r.Timings == nil || r.Weights == nil {
			t.Fatalf("resumed scenario %s lost its taskset graft", r.Name)
		}
	}
	if st3.Stats().Hits == 0 {
		t.Fatal("resume run read no records")
	}
}

func TestSweepShardsAssembleBitIdentical(t *testing.T) {
	scenarios := storeGrid(5)
	full, err := Sweep(Config{Workers: 1}, scenarios)
	if err != nil {
		t.Fatal(err)
	}

	dir := t.TempDir()
	// Three "processes" each run one contiguous shard.
	covered := 0
	for shard := 0; shard < 3; shard++ {
		st, err := store.Open(dir)
		if err != nil {
			t.Fatal(err)
		}
		part, err := Sweep(Config{Workers: 2, Store: st, ShardIndex: shard, ShardCount: 3}, scenarios)
		if err != nil {
			t.Fatal(err)
		}
		cfg := Config{ShardIndex: shard, ShardCount: 3}
		lo, hi := cfg.shardRange(len(scenarios))
		for i, r := range part {
			if i >= lo && i < hi {
				if r == nil {
					t.Fatalf("shard %d left own scenario %d nil", shard, i)
				}
				covered++
			}
		}
	}
	if covered != len(scenarios) {
		t.Fatalf("shards covered %d scenarios, want %d", covered, len(scenarios))
	}

	// A final resume assembles the whole grid from records alone.
	st, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	assembled, err := Sweep(Config{Workers: 2, Store: st, Resume: true}, scenarios)
	if err != nil {
		t.Fatal(err)
	}
	mustEqual(t, "assembled vs full", assembled, full)
}

func TestSweepShardLeavesOthersPending(t *testing.T) {
	scenarios := storeGrid(4)
	st, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	part, err := Sweep(Config{Store: st, ShardIndex: 0, ShardCount: 2}, scenarios)
	if err != nil {
		t.Fatal(err)
	}
	if part[0] == nil || part[1] == nil {
		t.Fatal("own shard scenarios missing")
	}
	if part[2] != nil || part[3] != nil {
		t.Fatal("foreign shard scenarios were computed")
	}
	if _, err := Sweep(Config{Store: st, ShardIndex: 5, ShardCount: 2}, scenarios); err == nil {
		t.Fatal("out-of-range shard index accepted")
	}
}

// TestSweepResumeSkipsRecomputation pins the resume contract: after a
// completed run, resuming executes zero evaluations.
func TestSweepResumeSkipsRecomputation(t *testing.T) {
	scenarios := storeGrid(3)
	dir := t.TempDir()
	st, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Sweep(Config{Store: st}, scenarios); err != nil {
		t.Fatal(err)
	}
	st2, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	resumed, err := Sweep(Config{Store: st2, Resume: true}, scenarios)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range resumed {
		if !r.Resumed {
			t.Fatalf("scenario %s re-ran", r.Name)
		}
	}
	// Only checkpoint-record reads: no outcome traffic at all.
	if gets, hits := st2.Stats().Gets, st2.Stats().Hits; gets != hits || gets != int64(len(scenarios)) {
		t.Fatalf("resume store traffic gets=%d hits=%d, want %d record loads only", gets, hits, len(scenarios))
	}
}

// TestSweepCorruptRecordRecomputes pins the corruption contract end to
// end: damaging a checkpoint record and an outcome record degrades to
// recomputation with identical results, never a panic or a wrong answer.
func TestSweepCorruptRecordRecomputes(t *testing.T) {
	scenarios := storeGrid(2)
	dir := t.TempDir()
	st, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	cold, err := Sweep(Config{Store: st}, scenarios)
	if err != nil {
		t.Fatal(err)
	}
	// Truncate every record on disk.
	err = filepath.WalkDir(dir, func(path string, d os.DirEntry, walkErr error) error {
		if walkErr != nil || d.IsDir() {
			return walkErr
		}
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		return os.WriteFile(path, data[:len(data)/3], 0o644)
	})
	if err != nil {
		t.Fatal(err)
	}
	st2, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	healed, err := Sweep(Config{Store: st2, Resume: true}, scenarios)
	if err != nil {
		t.Fatal(err)
	}
	mustEqual(t, "healed vs cold", healed, cold)
	for _, r := range healed {
		if r.Resumed {
			t.Fatal("corrupt checkpoint still resumed")
		}
	}
	if st2.Stats().Corrupt == 0 {
		t.Fatal("corruption went uncounted")
	}
}

// TestEvalNamespaceSeparates pins that scenarios with different evaluation
// spaces never share store keys, while identical ones do.
func TestEvalNamespaceSeparates(t *testing.T) {
	base := Scenario{Seed: 7}.withDefaults()
	res := func(scn Scenario) *Result {
		r, err := Run(scn)
		if err != nil {
			t.Fatal(err)
		}
		return r
	}
	nsA := evalNamespace(base, res(base))

	same := Scenario{Seed: 7}.withDefaults()
	if got := evalNamespace(same, res(same)); got != nsA {
		t.Fatalf("identical scenarios hash differently: %s vs %s", got, nsA)
	}

	otherSeed := Scenario{Seed: 8}.withDefaults()
	if got := evalNamespace(otherSeed, res(otherSeed)); got == nsA {
		t.Fatal("different tasksets share a namespace")
	}

	// Search parameters must NOT change the namespace (outcomes are
	// properties of points), but they must change the checkpoint key.
	starts := []sched.Schedule{{1, 1, 1}}
	narrow := Scenario{Seed: 7, StartList: starts}.withDefaults()
	rNarrow := res(narrow)
	wide := Scenario{Seed: 7, MaxM: 9, StartList: starts}.withDefaults()
	rWide := res(wide)
	if got := evalNamespace(wide, rWide); got != nsA {
		t.Fatal("maxM changed the evaluation namespace")
	}
	if resultKey(narrow, rNarrow, starts) == resultKey(wide, rWide, starts) {
		t.Fatal("maxM did not change the checkpoint key")
	}
}
