// Package engine is the concurrent scenario-sweep subsystem: it evaluates
// batches of scheduling scenarios (randomized N-app tasksets on
// configurable cache platforms, or the paper's fixed case study) over the
// process-wide concurrency governor (internal/parallel), with every
// expensive schedule evaluation deduplicated through the sharded
// memoization cache of internal/engine/evalcache.
//
// Determinism is a hard guarantee: a scenario's entire computation is a pure
// function of its Scenario value (all randomness flows from Scenario.Seed
// through a private rand.Rand, and hybrid walks sharing a cache run
// sequentially), so sweeping with any worker count produces results
// bit-identical to a serial run. engine_test.go asserts this under -race.
//
// Sweeps are optionally persistent and resumable (Config.Store/Resume,
// internal/store): every evaluation cache gains a disk-backed second tier
// keyed by a content hash of the scenario's evaluation space, and each
// completed scenario checkpoints a summary record so a killed sweep — or a
// grid split across processes by contiguous index shards
// (Config.ShardIndex/ShardCount) — resumes bit-identically, skipping
// finished work. Determinism extends across the store: cold-store,
// warm-store, and resumed runs render identical reports.
//
// Consumers: cmd/sweep drives randomized sweeps from the command line,
// cmd/served serves them over HTTP, and internal/exp regenerates the
// paper's Tables II/III/IV through the engine (see README.md and
// docs/ARCHITECTURE.md for the package map).
package engine

import (
	"fmt"
	"math/rand"

	"repro/internal/apps"
	"repro/internal/cachesim"
	"repro/internal/core"
	"repro/internal/ctrl"
	"repro/internal/engine/evalcache"
	"repro/internal/parallel"
	"repro/internal/program"
	"repro/internal/sched"
	"repro/internal/search"
	"repro/internal/wcet"
)

// Objective selects how a scenario scores schedules.
type Objective int

const (
	// ObjectiveTiming scores schedules with a cheap closed-form proxy
	// computed from the derived control timing alone (no plants, no
	// controller design): each app contributes
	// P_i = 1 - (h_bar_i + h_max_i) / (2 t_idle_i), rewarding short mean
	// and worst-case sampling periods. It keeps the paper's tension —
	// longer own bursts amortize the cold start, but stretch every other
	// application's gap — while evaluating in microseconds, so sweeps over
	// thousands of scenarios stay fast.
	ObjectiveTiming Objective = iota
	// ObjectiveDesign runs the paper's full stage-1 pipeline per schedule:
	// holistic controller design of every application through
	// core.Framework (expensive; use small ctrl.DesignOptions budgets for
	// large sweeps).
	ObjectiveDesign
)

func (o Objective) String() string {
	switch o {
	case ObjectiveTiming:
		return "timing"
	case ObjectiveDesign:
		return "design"
	default:
		return fmt.Sprintf("Objective(%d)", int(o))
	}
}

// Scenario describes one sweep unit: a taskset, a platform, and a schedule
// search over it. The zero value plus a Seed is a valid randomized
// three-app scenario on the paper platform.
type Scenario struct {
	Name string // label for reports (default "s<Seed>")
	Seed int64  // root of all scenario randomness

	// Taskset. When Apps is non-empty those applications are used verbatim
	// (e.g. the paper case study); otherwise NumApps random programs are
	// drawn from internal/program/random.go with Spec and analyzed on
	// Platform, and per-app idle budgets and weights are drawn from Seed.
	Apps    []apps.App
	NumApps int                // default 3
	Spec    program.RandomSpec // shape of random programs (zero = defaults)

	Platform wcet.Platform // zero value = wcet.PaperPlatform()

	// Search.
	MaxM      int              // burst-length cap (default 6)
	Starts    int              // random hybrid starts (default 2)
	StartList []sched.Schedule // explicit starts, overriding Starts

	Tolerance  float64 // hybrid acceptance tolerance (default 0.01)
	Exhaustive bool    // also run the exhaustive baseline
	Workers    int     // intra-scenario workers for the exhaustive pass (default 1)

	// Partitioned adds the cache-partition axis: the scenario searches the
	// joint (m_i, w_i) space — burst counts plus dedicated ways per app —
	// instead of schedules alone. The joint space contains the shared
	// subspace, so the joint optimum always dominates the schedule-only
	// one; on single-way platforms the spaces coincide. Results land in the
	// Joint* fields of Result.
	Partitioned bool

	// Cores > 1 adds the placement axis on top of the joint co-design
	// (implying Partitioned): applications are assigned to Cores cores,
	// each with a private cache of the platform's geometry, and the
	// placement x partition x schedule space is searched through
	// internal/search's multicore searchers. The single-core joint results
	// stay in the Joint* fields for comparison; the placement outcome lands
	// in Result.Multicore (plus the uniform-split baseline in
	// Result.MulticoreUniform).
	Cores int

	// BranchBound runs the exact branch-and-bound searchers instead of the
	// plain enumerations for the exhaustive passes: identical optima
	// (pinned bit for bit by internal/search and internal/exp), fewer
	// evaluations. For ObjectiveTiming the tight TimingBounder is used; for
	// ObjectiveDesign the objective-agnostic weight bound.
	BranchBound bool

	// Arrival selects the burst release model. The zero value is the
	// paper's periodic model; a sporadic model with nonzero jitter scores
	// schedules against the heap-driven event timeline
	// (sched.SporadicTimeline) instead of the closed-form burst gap.
	// Sporadic with zero jitter is normalized back to the zero value, so
	// it is bit-identical to — and shares every store key with — the
	// periodic path. Sporadic arrivals support ObjectiveTiming on the
	// shared cache only (no Partitioned, no Cores > 1).
	Arrival sched.Arrival

	Objective Objective
	Budget    ctrl.DesignOptions // design budget for ObjectiveDesign
}

func (s Scenario) withDefaults() Scenario {
	if s.Name == "" {
		s.Name = fmt.Sprintf("s%d", s.Seed)
	}
	if s.NumApps <= 0 {
		s.NumApps = 3
	}
	if s.Platform.ClockHz == 0 {
		s.Platform = wcet.PaperPlatform()
	}
	if s.MaxM <= 0 {
		s.MaxM = 6
	}
	if s.Starts <= 0 {
		s.Starts = 2
	}
	if s.Tolerance == 0 {
		s.Tolerance = 0.01
	}
	if s.Workers <= 0 {
		s.Workers = 1
	}
	if s.Cores <= 0 {
		s.Cores = 1
	}
	if s.Cores > 1 {
		s.Partitioned = true
	}
	// A sporadic model that cannot deviate from the periodic one (zero
	// jitter) is the periodic model: normalizing it here makes the
	// metamorphic guarantee structural — evaluation, checkpoints, and
	// store keys are those of the periodic scenario, bit for bit. A truly
	// sporadic scenario resolves its cycle count so signatures hash the
	// value the timeline actually uses.
	if s.Arrival.Model == sched.ArrivalSporadic && s.Arrival.Jitter == 0 {
		s.Arrival = sched.Arrival{}
	}
	if s.Arrival.Sporadic() {
		s.Arrival = s.Arrival.WithDefaults()
	}
	return s
}

// Result is the structured outcome of one scenario.
type Result struct {
	Name string
	Seed int64

	// AppCount is the taskset size; unlike len(Timings) it survives the
	// checkpoint round-trip, so reports key on it.
	AppCount int
	// Resumed reports that the summary fields were loaded from a
	// checkpoint record instead of recomputed; per-walk traces (Hybrid,
	// JointHybrid) are not persisted and stay nil on resumed results.
	Resumed bool

	Timings []sched.AppTiming // the (possibly generated) taskset
	Weights []float64         // per-app objective weights, summing to 1

	Best      sched.Schedule // best feasible schedule found
	BestValue float64        // its P_all
	FoundBest bool

	Evaluated  int             // distinct schedules whose evaluation executed
	CacheStats evalcache.Stats // search-level cache effectiveness

	Hybrid     *search.HybridResult
	Exhaustive *search.ExhaustiveResult // nil unless Scenario.Exhaustive

	// Joint co-design outcome (Scenario.Partitioned only). Best/BestValue
	// above mirror BestJoint.M/BestJointValue so schedule-consuming code
	// keeps working; BestJoint carries the winning partition.
	BestJoint       sched.JointSchedule
	JointHybrid     *search.JointHybridResult
	JointExhaustive *search.JointExhaustiveResult // nil unless Scenario.Exhaustive
	// JointPruned counts the subtrees the branch-and-bound exhaustive pass
	// cut (Scenario.BranchBound only; 0 for the plain enumeration).
	JointPruned int
	PartTimings sched.PartitionTimings // the joint timing table searched

	// Multi-core placement outcome (Scenario.Cores > 1 only): the placement
	// x partition x schedule co-design optimum, and the uniform-split
	// baseline restricted to even per-core way splits.
	Multicore        *search.MulticoreResult
	MulticoreUniform *search.MulticoreResult

	// Framework is the stage-1 evaluator behind ObjectiveDesign scenarios
	// (nil for ObjectiveTiming); exp uses it to regenerate Tables II/III
	// from the winning schedule.
	Framework *core.Framework
}

// RunConfig attaches the optional persistence layer to a scenario run.
// The zero value runs fully in memory.
type RunConfig struct {
	// Store, when non-nil, is the persistent tier (internal/store) shared
	// by the scenario's evaluation caches — every executed outcome is
	// written back, and outcomes already on disk are loaded instead of
	// re-executed — and the home of the scenario's checkpoint record.
	Store evalcache.Backend
	// Resume short-circuits the whole scenario when its checkpoint record
	// exists in Store, returning the recorded summary bit-identically.
	Resume bool

	// loadOnly restricts the run to the resume check: build the taskset,
	// load the checkpoint record if present, and return (nil, nil) instead
	// of searching when it is absent. Sweep uses it to render scenarios
	// that belong to other shards.
	loadOnly bool
}

// Run executes one scenario fully in memory. It is deterministic: equal
// Scenario values yield equal Results (modulo pointer identity),
// regardless of how many other scenarios run concurrently.
func Run(scn Scenario) (*Result, error) {
	return RunWith(scn, RunConfig{})
}

// RunWith executes one scenario with an optional persistent store behind
// the evaluation caches. Results are bit-identical across a cold store, a
// warm store, and a checkpoint resume: disk-tier loads are charged to
// walks exactly like executions (see evalcache.Cache.Get), and checkpoint
// records store objective values by their IEEE-754 bits.
func RunWith(scn Scenario, rc RunConfig) (*Result, error) {
	scn = scn.withDefaults()
	if err := scn.Arrival.Validate(); err != nil {
		return nil, fmt.Errorf("engine: scenario %s: %w", scn.Name, err)
	}
	if scn.Arrival.Sporadic() {
		switch {
		case scn.Objective != ObjectiveTiming:
			return nil, fmt.Errorf("engine: scenario %s: sporadic arrivals support ObjectiveTiming only", scn.Name)
		case scn.Partitioned || scn.Cores > 1:
			return nil, fmt.Errorf("engine: scenario %s: sporadic arrivals do not combine with cache partitions or multi-core", scn.Name)
		}
	}
	if scn.Partitioned && scn.Platform.Hier.Enabled() {
		return nil, fmt.Errorf("engine: scenario %s: cache partitions and hierarchies are separate platform axes", scn.Name)
	}
	rng := rand.New(rand.NewSource(scn.Seed))

	res := &Result{Name: scn.Name, Seed: scn.Seed}

	var (
		eval      search.EvalFunc
		jointEval search.JointEvalFunc // set when scn.Partitioned
	)
	switch scn.Objective {
	case ObjectiveDesign:
		applications := scn.Apps
		if len(applications) == 0 {
			var err error
			applications, err = RandomApps(rng, scn)
			if err != nil {
				return nil, err
			}
		}
		fw, err := core.New(applications, scn.Platform, scn.Budget)
		if err != nil {
			return nil, err
		}
		res.Framework = fw
		res.Timings = fw.Timings
		res.Weights = make([]float64, len(applications))
		for i, a := range applications {
			res.Weights[i] = a.Weight
		}
		eval = fw.EvalFunc()
		if scn.Partitioned {
			res.PartTimings = fw.PartTimings
			jointEval = fw.JointEvalFunc()
		}
	case ObjectiveTiming:
		var err error
		if len(scn.Apps) > 0 {
			if scn.Partitioned {
				res.PartTimings, err = apps.PartitionTimings(scn.Apps, scn.Platform)
				if err != nil {
					return nil, err
				}
				res.Timings = res.PartTimings.Shared
			} else {
				res.Timings, _, err = apps.Timings(scn.Apps, scn.Platform)
				if err != nil {
					return nil, err
				}
			}
			res.Weights = make([]float64, len(scn.Apps))
			for i, a := range scn.Apps {
				res.Weights[i] = a.Weight
			}
		} else if scn.Partitioned {
			res.PartTimings, res.Weights, err = RandomPartitionTaskset(rng, scn)
			if err != nil {
				return nil, err
			}
			res.Timings = res.PartTimings.Shared
		} else {
			res.Timings, res.Weights, err = RandomTaskset(rng, scn)
			if err != nil {
				return nil, err
			}
		}
		if scn.Arrival.Sporadic() {
			eval = SporadicTimingEval(res.Timings, res.Weights, scn.Arrival)
		} else {
			eval = TimingEval(res.Timings, res.Weights)
		}
		if scn.Partitioned {
			jointEval = JointTimingEval(res.PartTimings, res.Weights)
		}
	default:
		return nil, fmt.Errorf("engine: unknown objective %v", scn.Objective)
	}

	res.AppCount = len(res.Timings)

	starts := scn.StartList
	if len(starts) == 0 {
		starts = RandomStarts(rng, res.Timings, scn.Starts, scn.MaxM)
	}
	if len(starts) == 0 {
		return nil, fmt.Errorf("engine: scenario %s: no idle-feasible start found", scn.Name)
	}

	// Persistence: the evaluation namespace and the checkpoint key are
	// content hashes of the resolved taskset and search parameters, so they
	// are only computable here, after taskset generation. A checkpoint hit
	// returns the recorded summary grafted onto the freshly built taskset
	// (timings, weights, framework are deterministic and cheap relative to
	// the search they replace).
	var ns, ckptKey string
	if rc.Store != nil {
		ns = evalNamespace(scn, res)
		ckptKey = resultKey(scn, res, starts)
		if rc.Resume || rc.loadOnly {
			if rec, ok := loadRecord(rc.Store, ckptKey); ok {
				loaded := fromRecord(scn, rec)
				loaded.Timings = res.Timings
				loaded.Weights = res.Weights
				loaded.PartTimings = res.PartTimings
				loaded.Framework = res.Framework
				loaded.AppCount = res.AppCount
				return loaded, nil
			}
		}
	}
	if rc.loadOnly {
		return nil, nil
	}

	if scn.Partitioned {
		err := runJoint(scn, res, jointEval, starts, rc.Store, ns)
		if err == nil && rc.Store != nil {
			saveRecord(rc.Store, ckptKey, res)
		}
		return res, err
	}

	// One search-level cache spans the hybrid walks and the exhaustive
	// pass. For ObjectiveDesign the framework underneath additionally
	// memoizes full *ScheduleEval results (shared with table regeneration);
	// this outer layer stores only the small Outcome per schedule and is
	// what provides deterministic per-walk evaluation attribution and the
	// hit/miss statistics reported in Result. With a store attached it
	// grows the persistent second tier.
	cache := search.NewTieredCache(eval, rc.Store, ns)
	hy, err := search.Hybrid(eval, res.Timings, starts, search.Options{
		Tolerance: scn.Tolerance,
		MaxM:      scn.MaxM,
		Cache:     cache,
	})
	if err != nil {
		return nil, fmt.Errorf("engine: scenario %s: hybrid: %w", scn.Name, err)
	}
	res.Hybrid = hy
	res.Best, res.BestValue, res.FoundBest = hy.Best, hy.BestValue, hy.FoundBest

	if scn.Exhaustive {
		ex, err := search.ExhaustiveCached(cache, res.Timings, scn.MaxM, scn.Workers)
		if err != nil {
			return nil, fmt.Errorf("engine: scenario %s: exhaustive: %w", scn.Name, err)
		}
		res.Exhaustive = ex
		if ex.FoundBest && (!res.FoundBest || ex.BestValue > res.BestValue) {
			res.Best, res.BestValue, res.FoundBest = ex.Best, ex.BestValue, true
		}
	}

	res.Evaluated = cache.Len()
	res.CacheStats = cache.Stats()
	if rc.Store != nil {
		saveRecord(rc.Store, ckptKey, res)
	}
	return res, nil
}

// runJoint is the Partitioned arm of Run: one joint cache spans the joint
// hybrid walks and (optionally) the exhaustive joint baseline. With a
// store attached the cache gains the persistent tier under the scenario's
// evaluation namespace. For Cores > 1 it additionally runs the placement
// co-design (and its uniform-split baseline) over a core-point cache
// sharing the same namespace — core-point keys carry a "c[...]|" prefix no
// single-core key can produce.
func runJoint(scn Scenario, res *Result, eval search.JointEvalFunc, starts []sched.Schedule, backend evalcache.Backend, ns string) error {
	// The admissible bound behind every branch-and-bound pass of this
	// scenario: the tight timing closed form for ObjectiveTiming, the
	// objective-agnostic weight bound (P_i <= 1) for ObjectiveDesign.
	var bounder search.Bounder
	if scn.BranchBound {
		if scn.Objective == ObjectiveTiming {
			bounder = TimingBounder(res.PartTimings, res.Weights, scn.MaxM)
		} else {
			bounder = search.TrivialBounder(res.Weights)
		}
	}

	jointStarts := JointStarts(res.PartTimings, starts)
	cache := search.NewTieredJointCache(eval, backend, ns)
	hy, err := search.JointHybrid(eval, res.PartTimings, jointStarts, search.JointOptions{
		Tolerance: scn.Tolerance,
		MaxM:      scn.MaxM,
		Cache:     cache,
	})
	if err != nil {
		return fmt.Errorf("engine: scenario %s: joint hybrid: %w", scn.Name, err)
	}
	res.JointHybrid = hy
	res.BestJoint, res.BestValue, res.FoundBest = hy.Best, hy.BestValue, hy.FoundBest

	if scn.Exhaustive {
		var ex *search.JointExhaustiveResult
		if scn.BranchBound {
			bb, err := search.JointBranchBound(cache, res.PartTimings, bounder, scn.MaxM)
			if err != nil {
				return fmt.Errorf("engine: scenario %s: joint branch-and-bound: %w", scn.Name, err)
			}
			ex = &bb.JointExhaustiveResult
			res.JointPruned = bb.Pruned
		} else {
			ex, err = search.JointExhaustiveCached(cache, res.PartTimings, scn.MaxM, scn.Workers)
			if err != nil {
				return fmt.Errorf("engine: scenario %s: joint exhaustive: %w", scn.Name, err)
			}
		}
		res.JointExhaustive = ex
		if ex.FoundBest && (!res.FoundBest || ex.BestValue > res.BestValue) {
			res.BestJoint, res.BestValue, res.FoundBest = ex.Best, ex.BestValue, true
		}
	}

	res.Best = res.BestJoint.M
	res.Evaluated = cache.Len()
	res.CacheStats = cache.Stats()

	if scn.Cores > 1 {
		if err := runMulticore(scn, res, bounder, backend, ns); err != nil {
			return err
		}
	}
	return nil
}

// runMulticore is the Cores > 1 arm: the placement x partition x schedule
// co-design plus its uniform-split baseline, both over one core-point cache
// so the baseline reuses every evaluation the co-design already made.
func runMulticore(scn Scenario, res *Result, bounder search.Bounder, backend evalcache.Backend, ns string) error {
	var coreEval search.CoreEvalFunc
	if scn.Objective == ObjectiveDesign {
		coreEval = res.Framework.MulticoreEvalFunc()
	} else {
		coreEval = MulticoreTimingEval(res.PartTimings, res.Weights)
	}
	mcCache := search.NewTieredMulticoreCache(coreEval, backend, ns)

	mopt := search.MulticoreOptions{
		MaxM:  scn.MaxM,
		Seeds: placementSeeds(res, scn.Cores),
	}
	var (
		mc  *search.MulticoreResult
		err error
	)
	if scn.BranchBound {
		mopt.Bounder = bounder
		mc, err = search.MulticoreBranchBound(mcCache, res.PartTimings, scn.Cores, mopt)
	} else {
		mc, err = search.MulticoreExhaustive(mcCache, res.PartTimings, scn.Cores, mopt)
	}
	if err != nil {
		return fmt.Errorf("engine: scenario %s: multicore co-design: %w", scn.Name, err)
	}
	res.Multicore = mc

	uopt := mopt
	uopt.Bounder = nil
	uopt.Uniform = true
	uni, err := search.MulticoreExhaustive(mcCache, res.PartTimings, scn.Cores, uopt)
	if err != nil {
		return fmt.Errorf("engine: scenario %s: multicore uniform baseline: %w", scn.Name, err)
	}
	res.MulticoreUniform = uni

	res.Evaluated += mcCache.Len()
	st := mcCache.Stats()
	res.CacheStats.Hits += st.Hits
	res.CacheStats.Misses += st.Misses
	res.CacheStats.DiskHits += st.DiskHits
	return nil
}

// placementSeeds returns the heuristic core assignments seeding the
// placement search: load-balanced and cache-sensitivity-ordered. Both are
// mandatory coverage when the canonical placement enumeration overflows.
func placementSeeds(res *Result, nCores int) [][]int {
	var seeds [][]int
	if ba, err := core.BalancedAssignment(res.Timings, nCores); err == nil {
		seeds = append(seeds, []int(ba))
	}
	if sa, err := core.SensitivityAssignment(res.PartTimings, nCores); err == nil {
		seeds = append(seeds, []int(sa))
	}
	return seeds
}

// JointStarts lifts schedule starts into the joint space: every start as a
// shared-cache point, plus — when the platform has enough ways to partition
// at all — a partitioned twin with an even way split (falling back to
// round-robin under the even split when the twin's schedule is infeasible
// at the partition's timings).
func JointStarts(pt sched.PartitionTimings, starts []sched.Schedule) []sched.JointSchedule {
	out := make([]sched.JointSchedule, 0, 2*len(starts))
	for _, m := range starts {
		out = append(out, sched.SharedPoint(m))
	}
	even := sched.EvenWays(pt.Apps(), pt.TotalWays())
	if even == nil {
		return out
	}
	// Dedupe the partitioned twins: duplicate schedule starts, and every
	// infeasible twin falling back to the same round-robin point, would
	// otherwise spawn phantom zero-evaluation walks.
	seen := map[string]bool{}
	for _, m := range starts {
		j := sched.JointSchedule{M: m.Clone(), W: even.Clone()}
		if ok, err := pt.Feasible(j); err != nil || !ok {
			j = sched.JointSchedule{M: sched.RoundRobin(pt.Apps()), W: even.Clone()}
			if ok, err := pt.Feasible(j); err != nil || !ok {
				continue
			}
		}
		if !seen[j.Key()] {
			seen[j.Key()] = true
			out = append(out, j)
		}
	}
	return out
}

// Config tunes a sweep.
type Config struct {
	// Workers bounds scenario-level concurrency (default 1 = serial).
	Workers int

	// Store, when non-nil, persists evaluation outcomes and per-scenario
	// checkpoint records (see RunConfig.Store).
	Store evalcache.Backend
	// Resume skips scenarios whose checkpoint record is already in Store,
	// loading the recorded summary instead of recomputing it.
	Resume bool
	// ShardIndex/ShardCount split the scenario list by contiguous index
	// range so independent processes can divide one grid: shard k of n
	// runs scenarios [k*len/n, (k+1)*len/n). ShardCount <= 1 disables
	// sharding. Scenarios outside this process's shard are loaded from
	// Store when Resume is set and their record exists, and are returned
	// as nil entries otherwise (pending: another shard owns them).
	ShardIndex, ShardCount int
}

// shardRange returns this process's half-open scenario-index range.
func (c Config) shardRange(n int) (lo, hi int) {
	return ShardRange(c.ShardIndex, c.ShardCount, n)
}

// ShardRange returns the half-open scenario-index range [lo, hi) owned by
// shard index of count over an n-scenario grid: the same contiguous split
// Config.ShardIndex/ShardCount uses. It is exported so the distributed
// fabric's lease workers (internal/fabric) carve a leased shard into
// exactly the scenario range a local `-shard index/count` run would own —
// the bit-identical shard-assembly guarantee extends to the cluster only
// because both sides share this one function. count <= 1 means unsharded.
func ShardRange(index, count, n int) (lo, hi int) {
	if count <= 1 {
		return 0, n
	}
	return index * n / count, (index + 1) * n / count
}

// Sweep runs every scenario over the process-wide concurrency governor
// (internal/parallel) and returns results in scenario order: Config.Workers
// caps this sweep's share of the executor, scenarios land in
// index-addressed slots, and the error reduction walks them in index order.
// Because each scenario is deterministic and self-contained, the returned
// slice is identical for any worker count and any governor load — and, with
// a Store attached, across cold-store, warm-store, and resumed runs; the
// first scenario error (in scenario order) aborts the sweep. Entries are
// nil only for scenarios owned by another shard whose record is not (yet)
// in the store.
func Sweep(cfg Config, scenarios []Scenario) ([]*Result, error) {
	workers := cfg.Workers
	if workers < 1 {
		workers = 1
	}
	if cfg.ShardCount > 1 && (cfg.ShardIndex < 0 || cfg.ShardIndex >= cfg.ShardCount) {
		return nil, fmt.Errorf("engine: shard index %d outside [0, %d)", cfg.ShardIndex, cfg.ShardCount)
	}
	lo, hi := cfg.shardRange(len(scenarios))
	results := make([]*Result, len(scenarios))
	errs := make([]error, len(scenarios))
	parallel.Default().ForEach(len(scenarios), workers, func(i int) {
		rc := RunConfig{Store: cfg.Store, Resume: cfg.Resume}
		if i < lo || i >= hi {
			// Another shard owns this scenario; render it from its record
			// if one exists, else leave it pending.
			if cfg.Store == nil {
				return
			}
			rc.loadOnly = true
		}
		results[i], errs[i] = RunWith(scenarios[i], rc)
	})
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return results, nil
}

// timingScore is the ObjectiveTiming closed-form score of one schedule
// under one timing vector; TimingEval and JointTimingEval both run through
// it, so a shared joint point scores bit-identically to its plain schedule.
// It evaluates the derived periods through sched's closed-form helpers
// (identical summation order, so identical bits) instead of materializing
// Derive's slices: this score runs once per point of every enumerated box,
// and the allocation-free path is what lets timing sweeps saturate the
// worker pool instead of the allocator.
func timingScore(timings []sched.AppTiming, weights []float64, s sched.Schedule) (search.Outcome, error) {
	ok, err := sched.IdleFeasible(timings, s)
	if err != nil {
		return search.Outcome{}, err
	}
	if !ok {
		return search.Outcome{Pall: -1, Feasible: false}, nil
	}
	pall := 0.0
	feasible := true
	for i, a := range timings {
		gap := sched.BurstGap(timings, s, i)
		hyper := sched.DerivedHyperPeriod(a, s[i], gap)
		limit := a.MaxIdle
		if limit <= 0 {
			// Unconstrained app: normalize against the schedule period
			// so the score stays bounded.
			limit = hyper
		}
		hbar := hyper / float64(s[i])
		p := 1 - (hbar+sched.DerivedMaxPeriod(a, s[i], gap))/(2*limit)
		if p < 0 {
			feasible = false
		}
		pall += weights[i] * p
	}
	return search.Outcome{Pall: pall, Feasible: feasible}, nil
}

// TimingEval builds the ObjectiveTiming evaluator over a fixed taskset: a
// deterministic closed-form score from the derived timing parameters alone.
func TimingEval(timings []sched.AppTiming, weights []float64) search.EvalFunc {
	return func(s sched.Schedule) (search.Outcome, error) {
		return timingScore(timings, weights, s)
	}
}

// sporadicScore is timingScore over the heap-driven sporadic timeline:
// the same P_i = 1 - (h_bar + h_max) / (2 t_idle) closed form, but with
// the mean and worst sampling periods measured from the simulated jittered
// timeline instead of derived from the periodic burst gap. Schedules whose
// periodic derivation is already idle-infeasible are rejected up front
// (jitter only delays releases, it never shortens periods); a schedule
// whose *observed* worst period overruns the idle budget scores as
// infeasible too.
func sporadicScore(timings []sched.AppTiming, weights []float64, arr sched.Arrival, s sched.Schedule) (search.Outcome, error) {
	ok, err := sched.IdleFeasible(timings, s)
	if err != nil {
		return search.Outcome{}, err
	}
	if !ok {
		return search.Outcome{Pall: -1, Feasible: false}, nil
	}
	events, err := sched.SporadicTimeline(timings, s, arr)
	if err != nil {
		return search.Outcome{}, err
	}
	stats := sched.SporadicStats(timings, s, events)
	pall := 0.0
	feasible := true
	for i, a := range timings {
		limit := a.MaxIdle
		if limit <= 0 {
			// Unconstrained app: normalize against the empirical schedule
			// period, mirroring timingScore's hyper-period fallback.
			limit = stats[i].MeanPeriod * float64(s[i])
		} else if stats[i].MaxPeriod > a.MaxIdle+1e-12 {
			feasible = false
		}
		p := 1 - (stats[i].MeanPeriod+stats[i].MaxPeriod)/(2*limit)
		if p < 0 {
			feasible = false
		}
		pall += weights[i] * p
	}
	return search.Outcome{Pall: pall, Feasible: feasible}, nil
}

// SporadicTimingEval builds the ObjectiveTiming evaluator under a sporadic
// arrival model: deterministic for fixed (timings, weights, arr), like
// every other evaluator.
func SporadicTimingEval(timings []sched.AppTiming, weights []float64, arr sched.Arrival) search.EvalFunc {
	return func(s sched.Schedule) (search.Outcome, error) {
		return sporadicScore(timings, weights, arr, s)
	}
}

// JointTimingEval is TimingEval over the joint co-design space: the score
// of a point is the timing score of its schedule under the timing vector of
// its way allocation (partition contents survive other apps' bursts, so
// partitioned bursts have no cold start). Points whose partition exceeds
// the way budget are infeasible.
func JointTimingEval(pt sched.PartitionTimings, weights []float64) search.JointEvalFunc {
	return func(j sched.JointSchedule) (search.Outcome, error) {
		if !j.W.Valid(pt.Apps(), pt.TotalWays()) {
			return search.Outcome{Pall: -1, Feasible: false}, nil
		}
		timings, err := pt.Timings(j)
		if err != nil {
			return search.Outcome{}, err
		}
		return timingScore(timings, weights, j.M)
	}
}

// RandomTaskset draws a scenario's randomized taskset: NumApps random
// programs analyzed on the scenario platform, idle budgets that keep
// round-robin feasible while binding at moderate burst lengths, and
// normalized random weights. All draws come from rng, in a fixed order.
func RandomTaskset(rng *rand.Rand, scn Scenario) ([]sched.AppTiming, []float64, error) {
	timings, _, weights, err := randomTaskset(rng, scn)
	return timings, weights, err
}

// randomTaskset is RandomTaskset returning the drawn programs as well, so
// the partitioned variant can extend the analysis without extra rng draws.
func randomTaskset(rng *rand.Rand, scn Scenario) ([]sched.AppTiming, []*program.Program, []float64, error) {
	scn = scn.withDefaults()
	timings := make([]sched.AppTiming, scn.NumApps)
	programs := make([]*program.Program, scn.NumApps)
	for i := range timings {
		p := program.Random(rng, scn.Spec)
		res, err := wcet.Analyze(p, scn.Platform)
		if err != nil {
			return nil, nil, nil, fmt.Errorf("engine: random program %d: %w", i, err)
		}
		programs[i] = p
		timings[i] = sched.AppTiming{
			Name:     fmt.Sprintf("R%d", i+1),
			ColdWCET: scn.Platform.CyclesToSeconds(res.ColdCycles),
			WarmWCET: scn.Platform.CyclesToSeconds(res.WarmCycles),
		}
	}
	// Idle budgets: at least the round-robin period (so m = (1,...,1) is
	// always feasible) times a random headroom factor that lets bursts of a
	// few tasks through but binds well before the box edge.
	rr := sched.PeriodLength(timings, sched.RoundRobin(scn.NumApps))
	for i := range timings {
		timings[i].MaxIdle = rr * (1.2 + 2.8*rng.Float64())
	}
	weights := make([]float64, scn.NumApps)
	total := 0.0
	for i := range weights {
		weights[i] = 0.5 + rng.Float64()
		total += weights[i]
	}
	for i := range weights {
		weights[i] /= total
	}
	return timings, programs, weights, nil
}

// RandomPartitionTaskset draws the same randomized taskset as RandomTaskset
// (identical rng consumption, so the shared timings match bit for bit) and
// additionally analyzes every program under each dedicated-way count,
// returning the joint co-design timing table.
func RandomPartitionTaskset(rng *rand.Rand, scn Scenario) (sched.PartitionTimings, []float64, error) {
	scn = scn.withDefaults()
	timings, programs, weights, err := randomTaskset(rng, scn)
	if err != nil {
		return sched.PartitionTimings{}, nil, err
	}
	pt := sched.PartitionTimings{
		Shared: timings,
		ByWays: make([][]sched.AppTiming, scn.Platform.Cache.Ways),
	}
	for w := range pt.ByWays {
		pt.ByWays[w] = make([]sched.AppTiming, scn.NumApps)
	}
	for i, p := range programs {
		col, err := wcet.SteadyWayTimings(p, scn.Platform, timings[i].Name, timings[i].MaxIdle)
		if err != nil {
			return sched.PartitionTimings{}, nil, fmt.Errorf("engine: random program %d: %w", i, err)
		}
		for w := range col {
			pt.ByWays[w][i] = col[w]
		}
	}
	return pt, weights, nil
}

// RandomApps builds a randomized taskset for ObjectiveDesign scenarios:
// random control programs paired with the case-study plants (cycled), with
// idle budgets and weights drawn like RandomTaskset's.
func RandomApps(rng *rand.Rand, scn Scenario) ([]apps.App, error) {
	scn = scn.withDefaults()
	pool := apps.CaseStudy()
	out := make([]apps.App, scn.NumApps)
	timings := make([]sched.AppTiming, scn.NumApps)
	for i := range out {
		base := pool[i%len(pool)]
		prog := program.Random(rng, scn.Spec)
		res, err := wcet.Analyze(prog, scn.Platform)
		if err != nil {
			return nil, fmt.Errorf("engine: random program %d: %w", i, err)
		}
		out[i] = apps.App{
			Name:           fmt.Sprintf("R%d", i+1),
			Plant:          base.Plant,
			Program:        prog,
			SettleDeadline: base.SettleDeadline,
			Ref:            base.Ref,
			UMax:           base.UMax,
		}
		timings[i] = sched.AppTiming{
			Name:     out[i].Name,
			ColdWCET: scn.Platform.CyclesToSeconds(res.ColdCycles),
			WarmWCET: scn.Platform.CyclesToSeconds(res.WarmCycles),
		}
	}
	rr := sched.PeriodLength(timings, sched.RoundRobin(scn.NumApps))
	for i := range out {
		out[i].MaxIdle = rr * (1.2 + 2.8*rng.Float64())
	}
	total := 0.0
	for i := range out {
		out[i].Weight = 0.5 + rng.Float64()
		total += out[i].Weight
	}
	for i := range out {
		out[i].Weight /= total
	}
	return out, nil
}

// RandomStarts draws n idle-feasible start schedules by random upward walks
// from round robin. Starts may repeat for tightly constrained tasksets; the
// schedule-level cache makes duplicates cheap.
func RandomStarts(rng *rand.Rand, timings []sched.AppTiming, n, maxM int) []sched.Schedule {
	apps := len(timings)
	var out []sched.Schedule
	for k := 0; k < n; k++ {
		s := sched.RoundRobin(apps)
		for tries := 0; tries < 3*apps; tries++ {
			i := rng.Intn(apps)
			s[i]++
			if s[i] > maxM {
				s[i]--
				continue
			}
			if ok, err := sched.IdleFeasible(timings, s); err != nil || !ok {
				s[i]--
			}
		}
		out = append(out, s)
	}
	return out
}

// PlatformVariants returns a spread of cache platforms for multi-platform
// sweeps: the paper's direct-mapped baseline, a two-way set-associative
// variant, a two-level L1+L2 hierarchy over the baseline, and a half-size
// cache. (A FIFO variant used to sit in the hierarchy's slot; the must
// analysis is LRU-only and now rejects it, see wcet.Analyze.)
func PlatformVariants() []wcet.Platform {
	paper := wcet.PaperPlatform()

	twoWayLRU := paper
	twoWayLRU.Cache.Ways = 2

	l1l2 := paper
	l1l2.Hier = cachesim.Hierarchy{L2: cachesim.Config{
		Lines:      512,
		LineSize:   paper.Cache.LineSize,
		Ways:       4,
		Policy:     cachesim.LRU,
		HitCycles:  10,
		MissCycles: paper.Cache.MissCycles,
	}}

	half := paper
	half.Cache.Lines = paper.Cache.Lines / 2

	return []wcet.Platform{paper, twoWayLRU, l1l2, half}
}
