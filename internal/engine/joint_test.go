package engine

import (
	"math"
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/apps"
	"repro/internal/cachesim"
	"repro/internal/sched"
	"repro/internal/wcet"
)

func fourWayPlatform() wcet.Platform {
	return wcet.Platform{ClockHz: 20e6, Cache: cachesim.Config{
		Lines: 512, LineSize: 16, Ways: 4, Policy: cachesim.LRU, HitCycles: 1, MissCycles: 100,
	}}
}

// TestJointDisabledBitIdentical is the partitioning-off guarantee: on a
// platform with no partitionable ways (the paper's direct-mapped cache) the
// joint scenario degenerates to the shared subspace, and its optimum —
// schedule and value bits — must match the plain schedule-only scenario's.
func TestJointDisabledBitIdentical(t *testing.T) {
	base := Scenario{
		Name: "guard", Seed: 1, Apps: apps.CaseStudy(),
		Platform: wcet.PaperPlatform(), Objective: ObjectiveTiming,
		Exhaustive: true, MaxM: 6,
	}
	legacy, err := Run(base)
	if err != nil {
		t.Fatal(err)
	}
	joint := base
	joint.Partitioned = true
	jres, err := Run(joint)
	if err != nil {
		t.Fatal(err)
	}
	if !jres.BestJoint.Shared() {
		t.Fatalf("joint best %v is partitioned on a 1-way cache", jres.BestJoint)
	}
	if !jres.Best.Equal(legacy.Best) {
		t.Errorf("best schedule: joint %v, legacy %v", jres.Best, legacy.Best)
	}
	if math.Float64bits(jres.BestValue) != math.Float64bits(legacy.BestValue) {
		t.Errorf("best value not bit-identical: joint %v, legacy %v", jres.BestValue, legacy.BestValue)
	}
	// The shared timing tasksets must agree exactly too.
	if !reflect.DeepEqual(jres.Timings, legacy.Timings) || !reflect.DeepEqual(jres.Weights, legacy.Weights) {
		t.Error("joint scenario drew a different taskset than the legacy scenario")
	}
	// And the exhaustive passes agree: every joint point is a shared one.
	if jres.JointExhaustive.Evaluated != legacy.Exhaustive.Evaluated {
		t.Errorf("box sizes differ: joint %d, legacy %d",
			jres.JointExhaustive.Evaluated, legacy.Exhaustive.Evaluated)
	}
	if math.Float64bits(jres.JointExhaustive.BestSharedValue) != math.Float64bits(legacy.Exhaustive.BestValue) {
		t.Error("shared-subspace optimum not bit-identical to the legacy exhaustive optimum")
	}
}

// TestJointBeatsSharedOnPartitionablePlatform: on the 4-way 512-line
// variant the joint optimum must strictly beat the schedule-only optimum
// for the case study (the partitioned case-study acceptance property,
// engine-level).
func TestJointBeatsSharedOnPartitionablePlatform(t *testing.T) {
	res, err := Run(Scenario{
		Name: "4way", Seed: 1, Apps: apps.CaseStudy(), Platform: fourWayPlatform(),
		Objective: ObjectiveTiming, Partitioned: true, Exhaustive: true, MaxM: 6,
	})
	if err != nil {
		t.Fatal(err)
	}
	ex := res.JointExhaustive
	if ex == nil || !ex.FoundBest || !ex.FoundShared {
		t.Fatalf("exhaustive joint pass incomplete: %+v", ex)
	}
	if ex.Best.Shared() {
		t.Errorf("joint optimum %v is unpartitioned", ex.Best)
	}
	if ex.BestValue <= ex.BestSharedValue {
		t.Errorf("joint optimum %.4f does not beat schedule-only optimum %.4f",
			ex.BestValue, ex.BestSharedValue)
	}
	if !res.BestJoint.Equal(ex.Best) || !res.Best.Equal(ex.Best.M) {
		t.Errorf("result best %v / %v out of sync with exhaustive %v", res.BestJoint, res.Best, ex.Best)
	}
}

// TestRandomPartitionTasksetMatchesRandomTaskset: the partitioned draw must
// consume the rng identically, so the shared taskset and weights are bit
// for bit the ones RandomTaskset produces — the scenario axis cannot
// perturb unpartitioned sweeps.
func TestRandomPartitionTasksetMatchesRandomTaskset(t *testing.T) {
	scn := Scenario{Seed: 42, NumApps: 3, Platform: fourWayPlatform()}
	timings, weights, err := RandomTaskset(rand.New(rand.NewSource(99)), scn)
	if err != nil {
		t.Fatal(err)
	}
	pt, pweights, err := RandomPartitionTaskset(rand.New(rand.NewSource(99)), scn)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(pt.Shared, timings) || !reflect.DeepEqual(pweights, weights) {
		t.Errorf("partitioned draw diverged:\nshared  %+v\nlegacy  %+v", pt.Shared, timings)
	}
	if pt.TotalWays() != 4 {
		t.Fatalf("table covers %d ways", pt.TotalWays())
	}
	if err := pt.Validate(); err != nil {
		t.Fatal(err)
	}
	full := pt.ByWays[3]
	for i := range full {
		if full[i].ColdWCET != full[i].WarmWCET {
			t.Errorf("app %d: partitioned timing not steady state", i)
		}
		// Owning the whole cache must reproduce the shared warm bound.
		if math.Abs(full[i].WarmWCET-timings[i].WarmWCET) > 1e-15 {
			t.Errorf("app %d: full-ways warm %.3g != shared warm %.3g",
				i, full[i].WarmWCET, timings[i].WarmWCET)
		}
	}
}

// TestJointSweepParallelMatchesSerial extends the engine's determinism
// guarantee to the partitioned axis (run under -race in CI).
func TestJointSweepParallelMatchesSerial(t *testing.T) {
	platforms := []wcet.Platform{wcet.PaperPlatform(), fourWayPlatform()}
	scns := make([]Scenario, 6)
	for i := range scns {
		scns[i] = Scenario{
			Seed:        int64(300 + i),
			NumApps:     2 + i%2,
			Platform:    platforms[i%2],
			MaxM:        4,
			Partitioned: true,
			Exhaustive:  i%2 == 0,
			Workers:     2,
		}
	}
	serial, err := Sweep(Config{Workers: 1}, scns)
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := Sweep(Config{Workers: 6}, scns)
	if err != nil {
		t.Fatal(err)
	}
	for i := range serial {
		if !reflect.DeepEqual(serial[i], parallel[i]) {
			t.Errorf("scenario %d: parallel joint result differs from serial", i)
		}
	}
}

// TestJointStarts covers the start-lifting rules: shared starts always
// carry over; partitioned twins appear only when the platform has enough
// ways, falling back to round robin when the twin is infeasible.
func TestJointStarts(t *testing.T) {
	mk := func(cold, warm, idle float64) sched.AppTiming {
		return sched.AppTiming{Name: "A", ColdWCET: cold, WarmWCET: warm, MaxIdle: idle}
	}
	pt := sched.PartitionTimings{
		Shared: []sched.AppTiming{mk(10e-6, 4e-6, 200e-6), mk(8e-6, 3e-6, 200e-6)},
		ByWays: [][]sched.AppTiming{
			{mk(9e-6, 9e-6, 200e-6), mk(7e-6, 7e-6, 200e-6)},
			{mk(5e-6, 5e-6, 200e-6), mk(4e-6, 4e-6, 200e-6)},
		},
	}
	starts := JointStarts(pt, []sched.Schedule{{2, 2}})
	if len(starts) != 2 {
		t.Fatalf("starts = %v", starts)
	}
	if !starts[0].Shared() || !starts[0].M.Equal(sched.Schedule{2, 2}) {
		t.Errorf("first start %v not the shared lift", starts[0])
	}
	if starts[1].Shared() || !starts[1].W.Equal(sched.Ways{1, 1}) {
		t.Errorf("second start %v not the even-partition twin", starts[1])
	}

	// Single-way platform: no partitioned starts at all.
	pt1 := sched.PartitionTimings{Shared: pt.Shared, ByWays: pt.ByWays[:1]}
	starts = JointStarts(pt1, []sched.Schedule{{1, 1}})
	if len(starts) != 1 || !starts[0].Shared() {
		t.Errorf("single-way starts = %v", starts)
	}
}
