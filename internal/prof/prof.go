// Package prof wires the standard pprof profilers into the CLI commands:
// one call starts an optional CPU profile and arranges an optional heap
// profile at stop, so every command exposes -cpuprofile/-memprofile with
// identical semantics.
package prof

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// Start begins CPU profiling to cpuPath and returns a stop function that
// finishes the CPU profile and writes an allocation profile to memPath.
// Either path may be empty to disable that profile. The stop function is
// idempotent: it performs its work once and returns the same result on
// repeated calls, so callers can both defer it (for early error returns)
// and invoke it explicitly to check the error.
func Start(cpuPath, memPath string) (stop func() error, err error) {
	var cpuFile *os.File
	if cpuPath != "" {
		cpuFile, err = os.Create(cpuPath)
		if err != nil {
			return nil, fmt.Errorf("prof: create cpu profile: %w", err)
		}
		if err := pprof.StartCPUProfile(cpuFile); err != nil {
			cpuFile.Close()
			return nil, fmt.Errorf("prof: start cpu profile: %w", err)
		}
	}
	done := false
	var stopErr error
	return func() error {
		if done {
			return stopErr
		}
		done = true
		if cpuFile != nil {
			pprof.StopCPUProfile()
			if err := cpuFile.Close(); err != nil && stopErr == nil {
				stopErr = fmt.Errorf("prof: close cpu profile: %w", err)
			}
		}
		if memPath != "" {
			f, err := os.Create(memPath)
			if err != nil {
				if stopErr == nil {
					stopErr = fmt.Errorf("prof: create mem profile: %w", err)
				}
				return stopErr
			}
			runtime.GC() // get up-to-date allocation statistics
			if err := pprof.WriteHeapProfile(f); err != nil && stopErr == nil {
				stopErr = fmt.Errorf("prof: write mem profile: %w", err)
			}
			if err := f.Close(); err != nil && stopErr == nil {
				stopErr = fmt.Errorf("prof: close mem profile: %w", err)
			}
		}
		return stopErr
	}, nil
}
