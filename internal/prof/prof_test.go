package prof

import (
	"os"
	"path/filepath"
	"testing"
)

func TestStartDisabled(t *testing.T) {
	stop, err := Start("", "")
	if err != nil {
		t.Fatal(err)
	}
	if err := stop(); err != nil {
		t.Fatal(err)
	}
	if err := stop(); err != nil {
		t.Fatal("second stop must be a no-op, got", err)
	}
}

func TestStartWritesProfiles(t *testing.T) {
	dir := t.TempDir()
	cpu := filepath.Join(dir, "cpu.out")
	mem := filepath.Join(dir, "mem.out")
	stop, err := Start(cpu, mem)
	if err != nil {
		t.Fatal(err)
	}
	// Generate a little work so the profiles are non-trivial.
	s := 0
	for i := 0; i < 1e6; i++ {
		s += i
	}
	_ = s
	if err := stop(); err != nil {
		t.Fatal(err)
	}
	for _, p := range []string{cpu, mem} {
		st, err := os.Stat(p)
		if err != nil {
			t.Fatalf("profile %s missing: %v", p, err)
		}
		if st.Size() == 0 {
			t.Errorf("profile %s is empty", p)
		}
	}
	if err := stop(); err != nil {
		t.Error("repeated stop must return the cached result, got", err)
	}
}

func TestStartBadCPUPath(t *testing.T) {
	if _, err := Start(filepath.Join(t.TempDir(), "no", "such", "dir", "cpu"), ""); err == nil {
		t.Error("unwritable cpu path must error")
	}
}
