package chaos

import (
	"bytes"
	"net/http"
)

// Middleware wraps an http.Handler with seeded fault injection: per the
// Config, requests are delayed, answered with a 500, or — while a
// Blackhole budget is armed — aborted without any response (the client
// sees a transport error, exactly like a partition or a process that died
// mid-request). CorruptRate mangles response bodies of otherwise
// successful requests, exercising client-side corruption detection.
//
// All methods are safe for concurrent use. The fault stream is consumed in
// request-arrival order, so single-client tests are exactly reproducible.
type Middleware struct {
	next http.Handler
	*injector
}

// NewMiddleware wraps next with seeded fault injection.
func NewMiddleware(next http.Handler, cfg Config) *Middleware {
	return &Middleware{next: next, injector: newInjector(cfg)}
}

func (m *Middleware) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	m.delay()
	fail, corrupt, blackholed := m.decide()
	if fail {
		if blackholed {
			// Abort the connection without writing a response: net/http
			// recognizes ErrAbortHandler and drops the connection, so the
			// client observes EOF/reset — a transport error, not a status.
			panic(http.ErrAbortHandler)
		}
		http.Error(w, "chaos: injected failure", http.StatusInternalServerError)
		return
	}
	if !corrupt {
		m.next.ServeHTTP(w, r)
		return
	}
	// Serve the real response with its body mangled. Buffer it so the
	// corruption flips a mid-payload byte regardless of how the inner
	// handler chunked its writes.
	rec := &bufferingWriter{header: make(http.Header), code: http.StatusOK}
	m.next.ServeHTTP(rec, r)
	m.corruptions.Add(1)
	for k, vs := range rec.header {
		for _, v := range vs {
			w.Header().Add(k, v)
		}
	}
	w.WriteHeader(rec.code)
	w.Write(mangle(rec.body.Bytes()))
}

// bufferingWriter captures a response for post-hoc corruption.
type bufferingWriter struct {
	header http.Header
	code   int
	body   bytes.Buffer
	wrote  bool
}

func (b *bufferingWriter) Header() http.Header { return b.header }

func (b *bufferingWriter) WriteHeader(code int) {
	if !b.wrote {
		b.code = code
		b.wrote = true
	}
}

func (b *bufferingWriter) Write(p []byte) (int, error) {
	b.wrote = true
	return b.body.Write(p)
}
