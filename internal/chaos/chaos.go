// Package chaos is seeded-deterministic fault injection for the cluster
// tests: a store.Backend wrapper and an HTTP middleware that fail, delay,
// blackhole, or corrupt a configurable fraction of the traffic flowing
// through them.
//
// Both injectors draw every decision from one seeded stream, so a chaos
// run is a pure function of (seed, request order) — the cluster chaos
// matrix can assert exact outcomes ("the sweep report is bit-identical to
// the golden despite 30% store 500s") instead of flaky probabilistic ones,
// and a failing schedule reproduces from its seed.
//
// The injected faults mirror the real failure modes of the fabric's edges:
//
//   - Error: the remote answers but unhappily (HTTP 500 / a backend miss).
//   - Latency: the remote is slow — retry budgets and deadlines must absorb it.
//   - Blackhole: the connection dies without a response (middleware) or
//     every op fails (backend) for the next N operations — what a partition
//     or a dead coordinator looks like; this is what opens breakers.
//   - Corrupt: the payload arrives mangled — the store contract says it
//     must read as a miss, never as a wrong record.
package chaos

import (
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/store"
)

// Config parameterizes an injector. The zero value injects nothing.
type Config struct {
	// Seed selects the deterministic fault stream (0 resolves to 1).
	Seed int64
	// ErrRate in [0, 1] is the fraction of operations that fail (HTTP 500
	// from the middleware; a miss/dropped write from the backend).
	ErrRate float64
	// CorruptRate in [0, 1] is the fraction of successful reads whose
	// payload is mangled before delivery.
	CorruptRate float64
	// Latency is added to every operation, before the fault decision.
	Latency time.Duration
}

// Stats counts the faults an injector actually dealt.
type Stats struct {
	Ops         int64 `json:"ops"`
	Errors      int64 `json:"errors"`
	Corruptions int64 `json:"corruptions"`
	Blackholed  int64 `json:"blackholed"`
}

// injector is the shared seeded decision core of both fault surfaces.
type injector struct {
	cfg Config

	mu  sync.Mutex
	rng *rand.Rand

	blackhole atomic.Int64 // operations left to blackhole

	ops         atomic.Int64
	errors      atomic.Int64
	corruptions atomic.Int64
	blackholed  atomic.Int64
}

func newInjector(cfg Config) *injector {
	seed := cfg.Seed
	if seed == 0 {
		seed = 1
	}
	return &injector{cfg: cfg, rng: rand.New(rand.NewSource(seed))}
}

// decide draws one operation's fate from the seeded stream. The two draws
// happen unconditionally so the stream position depends only on the
// operation index, not on the configured rates.
func (in *injector) decide() (fail, corrupt, blackholed bool) {
	in.ops.Add(1)
	for {
		n := in.blackhole.Load()
		if n <= 0 {
			break
		}
		if in.blackhole.CompareAndSwap(n, n-1) {
			in.blackholed.Add(1)
			return true, false, true // blackholed ops don't consume the rng stream
		}
	}
	in.mu.Lock()
	f, c := in.rng.Float64(), in.rng.Float64()
	in.mu.Unlock()
	fail = f < in.cfg.ErrRate
	corrupt = c < in.cfg.CorruptRate
	if fail {
		in.errors.Add(1)
	}
	return fail, corrupt, false
}

func (in *injector) delay() {
	if in.cfg.Latency > 0 {
		time.Sleep(in.cfg.Latency)
	}
}

// Blackhole makes the next n operations fail unconditionally (connection
// abort in the middleware, hard failure in the backend) — a seeded way to
// stage "the coordinator just died" at an exact point in the schedule.
func (in *injector) Blackhole(n int) { in.blackhole.Store(int64(n)) }

// Stats snapshots the injected-fault counters.
func (in *injector) Stats() Stats {
	return Stats{
		Ops:         in.ops.Load(),
		Errors:      in.errors.Load(),
		Corruptions: in.corruptions.Load(),
		Blackholed:  in.blackholed.Load(),
	}
}

// mangle corrupts a payload copy without changing its length: the first
// byte is flipped — which reliably breaks JSON framing, a mid-string flip
// could still parse — and so is a middle byte, for payloads whose parsers
// skip leading garbage.
func mangle(data []byte) []byte {
	if len(data) == 0 {
		return data
	}
	out := make([]byte, len(data))
	copy(out, data)
	out[0] ^= 0xff
	out[len(out)/2] ^= 0xff
	return out
}

// Backend wraps a store.Backend with fault injection. Injected faults obey
// the store contract — a failed or corrupted Get reads as a miss (the
// mangled payload is still delivered when the underlying record was JSON,
// exercising the caller's corruption detection), a failed Put is silently
// dropped — so a chaos-wrapped backend is indistinguishable from flaky
// hardware.
type Backend struct {
	inner store.Backend
	*injector
}

// NewBackend wraps inner with seeded fault injection.
func NewBackend(inner store.Backend, cfg Config) *Backend {
	return &Backend{inner: inner, injector: newInjector(cfg)}
}

// Get injects latency, failure (miss), and payload corruption around the
// inner Get.
func (b *Backend) Get(key string) ([]byte, bool) {
	b.delay()
	fail, corrupt, _ := b.decide()
	if fail {
		return nil, false
	}
	data, ok := b.inner.Get(key)
	if !ok {
		return nil, false
	}
	if corrupt {
		b.corruptions.Add(1)
		return mangle(data), true
	}
	return data, true
}

// Put injects latency and write-drop faults around the inner Put.
func (b *Backend) Put(key string, payload []byte) {
	b.delay()
	if fail, _, _ := b.decide(); fail {
		return // dropped: the record never lands
	}
	b.inner.Put(key, payload)
}

// Stats passes through the inner backend's traffic counters (the injector
// keeps its own under Backend.Stats via the embedded injector — callers
// wanting fault counts use ChaosStats).
func (b *Backend) Stats() store.Stats { return b.inner.Stats() }

// ChaosStats snapshots the injected-fault counters (named to avoid
// colliding with the store.Backend Stats method).
func (b *Backend) ChaosStats() Stats { return b.injector.Stats() }
