package chaos

import (
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"

	"repro/internal/store"
)

// memBackend is a trivial in-memory store.Backend for wrapping.
type memBackend struct {
	mu   sync.Mutex
	m    map[string][]byte
	gets int64
	puts int64
}

func newMemBackend() *memBackend { return &memBackend{m: make(map[string][]byte)} }

func (b *memBackend) Get(key string) ([]byte, bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.gets++
	v, ok := b.m[key]
	return v, ok
}

func (b *memBackend) Put(key string, payload []byte) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.puts++
	b.m[key] = append([]byte(nil), payload...)
}

func (b *memBackend) Stats() store.Stats {
	b.mu.Lock()
	defer b.mu.Unlock()
	return store.Stats{Gets: b.gets, Puts: b.puts}
}

func TestBackendDeterministicFaultSchedule(t *testing.T) {
	// Two identically seeded wrappers over identical traffic inject
	// identical fault schedules.
	run := func() []bool {
		inner := newMemBackend()
		inner.Put("k", []byte(`"v"`)) // seeded directly: the record must exist
		be := NewBackend(inner, Config{Seed: 99, ErrRate: 0.5})
		outcomes := make([]bool, 0, 40)
		for i := 0; i < 40; i++ {
			_, ok := be.Get("k")
			outcomes = append(outcomes, ok)
		}
		return outcomes
	}
	a, b := run(), run()
	failed := 0
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("op %d diverged across identically seeded runs", i)
		}
		if !a[i] {
			failed++
		}
	}
	if failed == 0 || failed == len(a) {
		t.Fatalf("ErrRate 0.5 injected %d/%d failures; want a mix", failed, len(a))
	}
}

func TestBackendDroppedPutNeverLands(t *testing.T) {
	inner := newMemBackend()
	be := NewBackend(inner, Config{Seed: 1, ErrRate: 1})
	be.Put("k", []byte("v"))
	if _, ok := inner.Get("k"); ok {
		t.Fatal("ErrRate 1 Put landed in the inner backend")
	}
	if st := be.ChaosStats(); st.Errors != 1 || st.Ops != 1 {
		t.Fatalf("stats %+v", st)
	}
}

func TestBackendCorruptionMangles(t *testing.T) {
	inner := newMemBackend()
	payload, _ := json.Marshal(map[string]string{"key": "value", "pad": "0123456789"})
	inner.Put("k", payload)
	be := NewBackend(inner, Config{Seed: 1, CorruptRate: 1})
	data, ok := be.Get("k")
	if !ok {
		t.Fatal("corrupt read should still deliver (mangled) data")
	}
	var v map[string]string
	if json.Unmarshal(data, &v) == nil {
		t.Fatalf("mangled payload still parses: %q", data)
	}
	// The inner record is untouched — corruption happens on the wire copy.
	orig, _ := inner.Get("k")
	if json.Unmarshal(orig, &v) != nil {
		t.Fatal("corruption leaked into the inner backend")
	}
	if st := be.ChaosStats(); st.Corruptions != 1 {
		t.Fatalf("stats %+v", st)
	}
}

func TestBackendBlackholeBudget(t *testing.T) {
	inner := newMemBackend()
	inner.Put("k", []byte("v"))
	be := NewBackend(inner, Config{Seed: 1})
	be.Blackhole(3)
	for i := 0; i < 3; i++ {
		if _, ok := be.Get("k"); ok {
			t.Fatalf("blackholed op %d succeeded", i)
		}
	}
	if _, ok := be.Get("k"); !ok {
		t.Fatal("op after blackhole budget drained still failed")
	}
	if st := be.ChaosStats(); st.Blackholed != 3 {
		t.Fatalf("stats %+v", st)
	}
}

func TestBackendZeroConfigIsTransparent(t *testing.T) {
	inner := newMemBackend()
	be := NewBackend(inner, Config{})
	be.Put("k", []byte("v"))
	if data, ok := be.Get("k"); !ok || string(data) != "v" {
		t.Fatalf("zero-config wrapper altered traffic: %q %v", data, ok)
	}
	if st := be.Stats(); st.Gets != 1 || st.Puts != 1 {
		t.Fatalf("inner stats not passed through: %+v", st)
	}
}

func TestMiddlewareInjects500s(t *testing.T) {
	inner := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte("ok"))
	})
	srv := httptest.NewServer(NewMiddleware(inner, Config{Seed: 5, ErrRate: 0.5}))
	defer srv.Close()
	codes := map[int]int{}
	for i := 0; i < 40; i++ {
		resp, err := http.Get(srv.URL)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		codes[resp.StatusCode]++
	}
	if codes[http.StatusOK] == 0 || codes[http.StatusInternalServerError] == 0 {
		t.Fatalf("ErrRate 0.5 produced %v; want both 200s and 500s", codes)
	}
}

func TestMiddlewareBlackholeAbortsConnection(t *testing.T) {
	inner := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte("ok"))
	})
	mw := NewMiddleware(inner, Config{Seed: 1})
	srv := httptest.NewServer(mw)
	defer srv.Close()
	mw.Blackhole(2)
	for i := 0; i < 2; i++ {
		resp, err := http.Get(srv.URL)
		if err == nil {
			resp.Body.Close()
			t.Fatalf("blackholed request %d got a response (status %d)", i, resp.StatusCode)
		}
		var ue interface{ Unwrap() error }
		if !errors.As(err, &ue) {
			t.Fatalf("blackholed request error %T: %v", err, err)
		}
	}
	resp, err := http.Get(srv.URL)
	if err != nil {
		t.Fatalf("request after blackhole budget: %v", err)
	}
	defer resp.Body.Close()
	if body, _ := io.ReadAll(resp.Body); string(body) != "ok" {
		t.Fatalf("post-blackhole body %q", body)
	}
	if st := mw.Stats(); st.Blackholed != 2 {
		t.Fatalf("stats %+v", st)
	}
}

func TestMiddlewareCorruptsBody(t *testing.T) {
	payload, _ := json.Marshal(map[string]string{"key": "value", "pad": "0123456789"})
	inner := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		w.Write(payload)
	})
	srv := httptest.NewServer(NewMiddleware(inner, Config{Seed: 1, CorruptRate: 1}))
	defer srv.Close()
	resp, err := http.Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Fatalf("headers not preserved through corruption: %q", ct)
	}
	body, _ := io.ReadAll(resp.Body)
	if len(body) != len(payload) {
		t.Fatalf("corruption changed length: %d vs %d", len(body), len(payload))
	}
	var v map[string]string
	if json.Unmarshal(body, &v) == nil {
		t.Fatalf("mangled body still parses: %q", body)
	}
}
