package chaos

import (
	"fmt"
	"os"
	"strconv"
	"strings"
	"sync/atomic"
)

// Crash points instrumented in the cluster binaries. A CrashPlan names one
// of these and a hit count; the process dies (SIGKILL, no cleanup, no
// deferred writes) the moment the named point is reached for the N-th time.
// Together with the seeded fault injectors this turns "what if the process
// dies right here" from a flaky race into an exact, replayable schedule:
// the crash-recovery matrix stages a coordinator death at a precise journal
// offset and a worker death in the window between publishing its records
// and reporting its shard complete.
const (
	// CrashJournalAppend fires after a coordinator journal record has been
	// appended (and fsynced, under the always policy) but before the state
	// transition is acknowledged to the caller — the record is durable, the
	// response is lost.
	CrashJournalAppend = "journal-append"
	// CrashWorkerPreComplete fires after a worker has finished (and
	// published) every scenario of its leased shard but before it calls
	// Complete — the store holds all the records, the lease table never
	// learns.
	CrashWorkerPreComplete = "worker-pre-complete"
)

// CrashEnv is the environment variable ArmFromEnv reads: "<point>:<n>"
// (e.g. "journal-append:2" — die at the second journal append). Multi-
// process tests set it on a child; an empty or unset value arms nothing.
const CrashEnv = "CHAOS_CRASH"

// CrashPlan schedules one deterministic process crash: the After-th Hit of
// Point calls Kill (default: SIGKILL the own process). Hits of other points
// and all hits after the crash fired are free.
type CrashPlan struct {
	Point string
	After int64  // 1-based: crash on the After-th Hit of Point
	Kill  func() // test hook; nil means SIGKILL self and never return

	hits atomic.Int64
}

// Hit records one pass through the named crash point and crashes the
// process when the plan's schedule says so. A nil plan never fires.
func (p *CrashPlan) Hit(point string) {
	if p == nil || point != p.Point {
		return
	}
	if p.hits.Add(1) != p.After {
		return
	}
	if p.Kill != nil {
		p.Kill()
		return
	}
	killSelf()
}

// Hits reports how many times the plan's point has been reached.
func (p *CrashPlan) Hits() int64 { return p.hits.Load() }

// killSelf delivers an uncatchable SIGKILL to the own process: no deferred
// functions, no flushes — exactly the death the durability layer must
// survive. The trailing select covers the delivery window so instrumented
// code can treat Hit as not returning once the plan fires.
func killSelf() {
	proc, err := os.FindProcess(os.Getpid())
	if err == nil {
		proc.Kill()
	}
	select {}
}

// armed is the process-global plan MaybeCrash consults. Instrumentation
// points stay zero-cost (one atomic load) while nothing is armed.
var armed atomic.Pointer[CrashPlan]

// Arm installs the process-global crash plan; nil disarms. Tests that arm a
// plan must disarm it on cleanup.
func Arm(p *CrashPlan) { armed.Store(p) }

// MaybeCrash is the instrumentation hook: it forwards the point to the
// armed plan, if any. Production code calls this unconditionally.
func MaybeCrash(point string) { armed.Load().Hit(point) }

// ArmFromEnv parses CrashEnv and arms the plan it describes, returning it
// (nil when the variable is unset). The binaries call this at startup so a
// test harness can stage crashes in child processes without special flags.
func ArmFromEnv() (*CrashPlan, error) {
	spec := os.Getenv(CrashEnv)
	if spec == "" {
		return nil, nil
	}
	point, nstr, ok := strings.Cut(spec, ":")
	if !ok || point == "" {
		return nil, fmt.Errorf("chaos: %s=%q: want \"<point>:<n>\"", CrashEnv, spec)
	}
	n, err := strconv.ParseInt(nstr, 10, 64)
	if err != nil || n < 1 {
		return nil, fmt.Errorf("chaos: %s=%q: hit count must be a positive integer", CrashEnv, spec)
	}
	p := &CrashPlan{Point: point, After: n}
	Arm(p)
	return p, nil
}
