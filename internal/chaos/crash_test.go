package chaos

import (
	"os"
	"testing"
)

func TestCrashPlanFiresOnExactHit(t *testing.T) {
	fired := 0
	p := &CrashPlan{Point: "p", After: 3, Kill: func() { fired++ }}
	for i := 0; i < 5; i++ {
		p.Hit("other") // foreign points never count
	}
	for i := 0; i < 5; i++ {
		p.Hit("p")
	}
	if fired != 1 {
		t.Fatalf("Kill fired %d times across 5 hits of After=3, want exactly 1", fired)
	}
	if p.Hits() != 5 {
		t.Fatalf("Hits = %d, want 5", p.Hits())
	}
}

func TestMaybeCrashUnarmedAndArmed(t *testing.T) {
	Arm(nil)
	MaybeCrash("p") // unarmed: must be a no-op, not a nil deref

	fired := 0
	Arm(&CrashPlan{Point: "p", After: 1, Kill: func() { fired++ }})
	t.Cleanup(func() { Arm(nil) })
	MaybeCrash("q")
	if fired != 0 {
		t.Fatal("foreign point fired the plan")
	}
	MaybeCrash("p")
	if fired != 1 {
		t.Fatalf("armed plan fired %d times, want 1", fired)
	}
}

func TestArmFromEnv(t *testing.T) {
	t.Cleanup(func() { Arm(nil) })
	cases := []struct {
		spec  string
		point string
		after int64
		ok    bool
	}{
		{"", "", 0, true}, // unset: nothing armed, no error
		{"journal-append:2", CrashJournalAppend, 2, true},
		{"worker-pre-complete:1", CrashWorkerPreComplete, 1, true},
		{"no-count", "", 0, false},
		{":3", "", 0, false},
		{"p:0", "", 0, false},
		{"p:-1", "", 0, false},
		{"p:x", "", 0, false},
	}
	for _, tc := range cases {
		t.Run(tc.spec, func(t *testing.T) {
			os.Setenv(CrashEnv, tc.spec)
			defer os.Unsetenv(CrashEnv)
			p, err := ArmFromEnv()
			if !tc.ok {
				if err == nil {
					t.Fatalf("ArmFromEnv(%q) accepted a bad spec", tc.spec)
				}
				return
			}
			if err != nil {
				t.Fatalf("ArmFromEnv(%q): %v", tc.spec, err)
			}
			if tc.spec == "" {
				if p != nil {
					t.Fatal("unset env armed a plan")
				}
				return
			}
			if p == nil || p.Point != tc.point || p.After != tc.after {
				t.Fatalf("ArmFromEnv(%q) = %+v, want point %q after %d", tc.spec, p, tc.point, tc.after)
			}
			if armed.Load() != p {
				t.Fatal("ArmFromEnv did not install the plan globally")
			}
		})
	}
}
