package cachesim

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestConfigValidate(t *testing.T) {
	if err := PaperConfig().Validate(); err != nil {
		t.Fatalf("paper config invalid: %v", err)
	}
	bad := []Config{
		{Lines: 0, LineSize: 16, Ways: 1, HitCycles: 1, MissCycles: 100},
		{Lines: 128, LineSize: 15, Ways: 1, HitCycles: 1, MissCycles: 100},
		{Lines: 128, LineSize: 16, Ways: 3, HitCycles: 1, MissCycles: 100},
		{Lines: 128, LineSize: 16, Ways: 1, HitCycles: 0, MissCycles: 100},
		{Lines: 128, LineSize: 16, Ways: 1, HitCycles: 10, MissCycles: 5},
		{Lines: 8, LineSize: 16, Ways: 8, Policy: PLRU, HitCycles: 1, MissCycles: 100}, // ok actually
	}
	for i, c := range bad[:5] {
		if err := c.Validate(); err == nil {
			t.Errorf("config %d should be invalid: %+v", i, c)
		}
	}
	if err := bad[5].Validate(); err != nil {
		t.Errorf("PLRU power-of-two ways should validate: %v", err)
	}
	nonPow2 := Config{Lines: 12, LineSize: 16, Ways: 3, Policy: PLRU, HitCycles: 1, MissCycles: 100}
	if err := nonPow2.Validate(); err == nil {
		t.Error("PLRU with 3 ways should be invalid")
	}
}

func TestGeometry(t *testing.T) {
	cfg := PaperConfig()
	if cfg.Sets() != 128 || cfg.SizeBytes() != 2048 {
		t.Errorf("sets=%d size=%d", cfg.Sets(), cfg.SizeBytes())
	}
	if cfg.LineIndex(0x20) != 2 {
		t.Errorf("LineIndex(0x20) = %d", cfg.LineIndex(0x20))
	}
	// 2048-byte stride aliases to the same set in a direct-mapped cache.
	if cfg.SetIndex(0x100) != cfg.SetIndex(0x100+2048) {
		t.Error("2KB-apart addresses must alias")
	}
	if cfg.SetIndex(0x100) == cfg.SetIndex(0x110) {
		t.Error("adjacent lines must not alias")
	}
}

func TestColdMissThenHit(t *testing.T) {
	c := MustNew(PaperConfig())
	hit, cyc := c.Access(0x1000)
	if hit || cyc != 100 {
		t.Errorf("first access: hit=%v cyc=%d", hit, cyc)
	}
	hit, cyc = c.Access(0x1004) // same line
	if !hit || cyc != 1 {
		t.Errorf("same-line access: hit=%v cyc=%d", hit, cyc)
	}
	st := c.Stats()
	if st.Accesses != 2 || st.Hits != 1 || st.Misses != 1 || st.Cycles != 101 {
		t.Errorf("stats: %+v", st)
	}
}

func TestDirectMappedConflict(t *testing.T) {
	c := MustNew(PaperConfig())
	a := uint32(0x0)
	b := a + 2048 // same set, different tag
	c.Access(a)
	if hit, _ := c.Access(b); hit {
		t.Error("conflicting line should miss")
	}
	if hit, _ := c.Access(a); hit {
		t.Error("original line should have been evicted")
	}
}

func TestSetAssociativeAvoidsConflict(t *testing.T) {
	cfg := PaperConfig()
	cfg.Ways = 2
	c := MustNew(cfg)
	a := uint32(0x0)
	b := a + uint32(cfg.Sets()*cfg.LineSize) // same set in the 2-way cache
	c.Access(a)
	c.Access(b)
	if hit, _ := c.Access(a); !hit {
		t.Error("2-way cache should retain both conflicting lines")
	}
}

func TestLRUEviction(t *testing.T) {
	cfg := Config{Lines: 4, LineSize: 16, Ways: 2, Policy: LRU, HitCycles: 1, MissCycles: 10}
	c := MustNew(cfg)
	stride := uint32(cfg.Sets() * cfg.LineSize) // same-set stride
	a, b, d := uint32(0), stride, 2*stride
	c.Access(a)
	c.Access(b)
	c.Access(a) // refresh a; b becomes LRU
	c.Access(d) // evicts b
	if hit, _ := c.Access(a); !hit {
		t.Error("a should still be cached (was MRU)")
	}
	if hit, _ := c.Access(b); hit {
		t.Error("b should have been evicted (was LRU)")
	}
}

func TestFIFOEviction(t *testing.T) {
	cfg := Config{Lines: 4, LineSize: 16, Ways: 2, Policy: FIFO, HitCycles: 1, MissCycles: 10}
	c := MustNew(cfg)
	stride := uint32(cfg.Sets() * cfg.LineSize)
	a, b, d := uint32(0), stride, 2*stride
	c.Access(a)
	c.Access(b)
	c.Access(a) // hit does NOT refresh under FIFO
	c.Access(d) // evicts a (oldest insertion)
	if hit, _ := c.Access(b); !hit {
		t.Error("b should still be cached under FIFO")
	}
	if hit, _ := c.Access(a); hit {
		t.Error("a should have been evicted under FIFO")
	}
}

func TestPLRUTwoWayMatchesLRU(t *testing.T) {
	// For 2 ways PLRU degenerates to true LRU: replay a random same-set
	// trace on both and compare hit sequences.
	cfgL := Config{Lines: 8, LineSize: 16, Ways: 2, Policy: LRU, HitCycles: 1, MissCycles: 10}
	cfgP := cfgL
	cfgP.Policy = PLRU
	cl, cp := MustNew(cfgL), MustNew(cfgP)
	r := rand.New(rand.NewSource(42))
	stride := uint32(cfgL.Sets() * cfgL.LineSize)
	for i := 0; i < 200; i++ {
		addr := uint32(r.Intn(4)) * stride
		h1, _ := cl.Access(addr)
		h2, _ := cp.Access(addr)
		if h1 != h2 {
			t.Fatalf("step %d: LRU hit=%v PLRU hit=%v", i, h1, h2)
		}
	}
}

func TestPLRUFourWay(t *testing.T) {
	cfg := Config{Lines: 4, LineSize: 16, Ways: 4, Policy: PLRU, HitCycles: 1, MissCycles: 10}
	c := MustNew(cfg)
	stride := uint32(cfg.Sets() * cfg.LineSize)
	// Fill all four ways; then access a fifth line and check that some
	// line was evicted but the most recently touched survives.
	for i := 0; i < 4; i++ {
		c.Access(uint32(i) * stride)
	}
	c.Access(3 * stride) // touch way holding line 3
	c.Access(4 * stride) // evict a pseudo-LRU victim
	if hit, _ := c.Access(3 * stride); !hit {
		t.Error("most recently used line must survive PLRU eviction")
	}
}

func TestFlushAndClone(t *testing.T) {
	c := MustNew(PaperConfig())
	c.Access(0x40)
	cl := c.Clone()
	if !cl.Contains(0x40) {
		t.Error("clone must carry contents")
	}
	cl.Access(0x80)
	if c.Contains(0x80) {
		t.Error("clone must not alias original")
	}
	c.Flush()
	if c.Contains(0x40) {
		t.Error("flush must clear contents")
	}
	if c.Stats().Accesses != 1 {
		t.Error("flush must preserve stats")
	}
}

func TestContainsDoesNotTouch(t *testing.T) {
	cfg := Config{Lines: 2, LineSize: 16, Ways: 2, Policy: LRU, HitCycles: 1, MissCycles: 10}
	c := MustNew(cfg)
	stride := uint32(cfg.Sets() * cfg.LineSize)
	c.Access(0)
	c.Access(stride)
	// Contains(0) must not refresh line 0's recency.
	c.Contains(0)
	c.Access(2 * stride) // evicts LRU, which must still be line 0
	if c.Contains(0) {
		t.Error("Contains must not update LRU state")
	}
}

func TestAccessRun(t *testing.T) {
	c := MustNew(PaperConfig())
	hit, cyc := c.AccessRun(0x100, 5)
	if hit || cyc != 100+4 {
		t.Errorf("cold run: hit=%v cyc=%d, want false 104", hit, cyc)
	}
	hit, cyc = c.AccessRun(0x100, 5)
	if !hit || cyc != 5 {
		t.Errorf("warm run: hit=%v cyc=%d, want true 5", hit, cyc)
	}
	if c.Stats().Accesses != 10 {
		t.Errorf("accesses = %d, want 10", c.Stats().Accesses)
	}
	if _, cyc := c.AccessRun(0x200, 0); cyc != 0 {
		t.Error("zero-fetch run must be free")
	}
}

func TestSnapshot(t *testing.T) {
	c := MustNew(PaperConfig())
	c.Access(0x0)
	c.Access(0x10)
	snap := c.Snapshot()
	if len(snap) != 2 || !snap[0] || !snap[1] {
		t.Errorf("snapshot: %v", snap)
	}
}

func TestStatsAddAndHitRate(t *testing.T) {
	var s Stats
	s.Add(Stats{Accesses: 10, Hits: 7, Misses: 3, Cycles: 307})
	s.Add(Stats{Accesses: 10, Hits: 3, Misses: 7, Cycles: 703})
	if s.Accesses != 20 || s.Hits != 10 || s.Cycles != 1010 {
		t.Errorf("merged stats: %+v", s)
	}
	if s.HitRate() != 0.5 {
		t.Errorf("hit rate = %g", s.HitRate())
	}
	if (Stats{}).HitRate() != 0 {
		t.Error("empty hit rate must be 0")
	}
}

func TestPolicyString(t *testing.T) {
	if LRU.String() != "LRU" || FIFO.String() != "FIFO" || PLRU.String() != "PLRU" {
		t.Error("policy names wrong")
	}
	if Policy(9).String() == "" {
		t.Error("unknown policy must render")
	}
}

// Property: cycle accounting is exact: cycles = hits*HitCycles + misses*MissCycles.
func TestQuickCycleAccounting(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		cfg := Config{Lines: 16, LineSize: 16, Ways: 1 << r.Intn(3), Policy: Policy(r.Intn(3)), HitCycles: 1, MissCycles: 10}
		if cfg.Validate() != nil {
			return true
		}
		c := MustNew(cfg)
		for i := 0; i < 300; i++ {
			c.Access(uint32(r.Intn(64)) * 16)
		}
		s := c.Stats()
		return s.Cycles == int64(s.Hits*cfg.HitCycles+s.Misses*cfg.MissCycles) &&
			s.Accesses == s.Hits+s.Misses
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// Property: a working set no larger than one set's ways never misses after
// the first pass, regardless of policy.
func TestQuickSmallWorkingSetAlwaysHits(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		cfg := Config{Lines: 32, LineSize: 16, Ways: 4, Policy: Policy(r.Intn(3)), HitCycles: 1, MissCycles: 10}
		c := MustNew(cfg)
		// 4 lines all mapping to different sets: trivially retained.
		addrs := []uint32{0x00, 0x10, 0x20, 0x30}
		for _, a := range addrs {
			c.Access(a)
		}
		c.ResetStats()
		for i := 0; i < 100; i++ {
			c.Access(addrs[r.Intn(len(addrs))])
		}
		return c.Stats().Misses == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}
