// Package cachesim implements the on-chip instruction-cache model of the
// paper's platform: a parameterized set-associative cache with configurable
// replacement policy and hit/miss cycle costs (the paper's configuration is
// 128 lines of 16 bytes, direct-mapped semantics, 1-cycle hits and 100-cycle
// misses on an Infineon XC23xxB-class microcontroller at 20 MHz).
//
// The simulator is exact and deterministic: the WCET layer replays
// worst-case instruction-fetch traces through it to obtain cold-cache WCETs
// and cache-reuse timings.
package cachesim

import (
	"fmt"
	"math/bits"
)

// Policy selects the replacement policy of a set-associative cache.
type Policy int

const (
	// LRU evicts the least-recently-used way.
	LRU Policy = iota
	// FIFO evicts ways in insertion order regardless of later hits.
	FIFO
	// PLRU uses a tree-based pseudo-LRU (ways must be a power of two).
	PLRU
)

// String returns the policy name.
func (p Policy) String() string {
	switch p {
	case LRU:
		return "LRU"
	case FIFO:
		return "FIFO"
	case PLRU:
		return "PLRU"
	}
	return fmt.Sprintf("Policy(%d)", int(p))
}

// Config describes a cache geometry and its timing.
type Config struct {
	Lines      int    // total number of cache lines (e.g. 128)
	LineSize   int    // bytes per line, a power of two (e.g. 16)
	Ways       int    // associativity; 1 means direct-mapped
	Policy     Policy // replacement policy (ignored for direct-mapped)
	HitCycles  int    // cycles for a fetch that hits (e.g. 1)
	MissCycles int    // cycles for a fetch that misses (e.g. 100)
}

// PaperConfig returns the cache configuration of the paper's experimental
// section: 128 lines x 16 bytes, direct-mapped, 1-cycle hit, 100-cycle miss.
func PaperConfig() Config {
	return Config{Lines: 128, LineSize: 16, Ways: 1, Policy: LRU, HitCycles: 1, MissCycles: 100}
}

// Validate checks structural constraints on the configuration.
func (c Config) Validate() error {
	switch {
	case c.Lines <= 0:
		return fmt.Errorf("cachesim: Lines must be positive, got %d", c.Lines)
	case c.LineSize <= 0 || bits.OnesCount(uint(c.LineSize)) != 1:
		return fmt.Errorf("cachesim: LineSize must be a positive power of two, got %d", c.LineSize)
	case c.Ways <= 0 || c.Lines%c.Ways != 0:
		return fmt.Errorf("cachesim: Ways (%d) must be positive and divide Lines (%d)", c.Ways, c.Lines)
	case c.Policy == PLRU && bits.OnesCount(uint(c.Ways)) != 1:
		return fmt.Errorf("cachesim: PLRU requires power-of-two ways, got %d", c.Ways)
	case c.HitCycles <= 0 || c.MissCycles < c.HitCycles:
		return fmt.Errorf("cachesim: need 0 < HitCycles (%d) <= MissCycles (%d)", c.HitCycles, c.MissCycles)
	}
	return nil
}

// Sets returns the number of cache sets.
func (c Config) Sets() int { return c.Lines / c.Ways }

// Geometry is the precomputed address arithmetic of a cache configuration:
// the line/set/tag split with the divisions hoisted out (shift/mask when the
// counts are powers of two, which the paper platform's are). Both the
// concrete cache and the WCET must-analysis derive it once per instance so
// their access paths stay division-free and cannot diverge.
type Geometry struct {
	NumSets   uint32
	lineShift uint   // log2(LineSize); LineSize is validated a power of two
	setsPow2  bool   // set count is a power of two: mask/shift apply
	setMask   uint32 // NumSets-1 when setsPow2
	setShift  uint   // log2(NumSets) when setsPow2
}

// Geometry precomputes the address split for a validated configuration.
func (c Config) Geometry() Geometry {
	g := Geometry{
		NumSets:   uint32(c.Sets()),
		lineShift: uint(bits.TrailingZeros(uint(c.LineSize))),
	}
	if bits.OnesCount(uint(g.NumSets)) == 1 {
		g.setsPow2 = true
		g.setMask = g.NumSets - 1
		g.setShift = uint(bits.TrailingZeros(uint(g.NumSets)))
	}
	return g
}

// Line returns the memory line number containing addr.
func (g Geometry) Line(addr uint32) uint32 { return addr >> g.lineShift }

// Set returns the cache set a memory line maps to.
func (g Geometry) Set(line uint32) int {
	if g.setsPow2 {
		return int(line & g.setMask)
	}
	return int(line % g.NumSets)
}

// Tag returns the tag of a memory line.
func (g Geometry) Tag(line uint32) uint32 {
	if g.setsPow2 {
		return line >> g.setShift
	}
	return line / g.NumSets
}

// Locate splits addr into its memory line, cache set, and tag.
func (g Geometry) Locate(addr uint32) (line uint32, set int, tag uint32) {
	line = addr >> g.lineShift
	return line, g.Set(line), g.Tag(line)
}

// SizeBytes returns the cache capacity in bytes.
func (c Config) SizeBytes() int { return c.Lines * c.LineSize }

// LineIndex returns the memory line number containing addr.
func (c Config) LineIndex(addr uint32) uint32 { return addr / uint32(c.LineSize) }

// SetIndex returns the cache set that the memory line at addr maps to.
func (c Config) SetIndex(addr uint32) int { return int(c.LineIndex(addr)) % c.Sets() }

// Stats accumulates access counts and the cycle total of a simulation.
type Stats struct {
	Accesses int
	Hits     int
	Misses   int
	Cycles   int64
}

// Add merges other into s.
func (s *Stats) Add(other Stats) {
	s.Accesses += other.Accesses
	s.Hits += other.Hits
	s.Misses += other.Misses
	s.Cycles += other.Cycles
}

// HitRate returns Hits/Accesses, or 0 for an empty run.
func (s Stats) HitRate() float64 {
	if s.Accesses == 0 {
		return 0
	}
	return float64(s.Hits) / float64(s.Accesses)
}

type way struct {
	valid bool
	tag   uint32
	order int64 // recency (LRU) or insertion (FIFO) stamp
}

// Cache is a concrete simulated cache instance.
type Cache struct {
	cfg   Config
	sets  [][]way
	plru  []uint64 // per-set PLRU tree bits
	clock int64
	stats Stats

	// geom hoists the address arithmetic out of Config so the access path
	// performs no divisions (cfg.Sets() costs a divide per call and the
	// line/set/tag split two more).
	geom Geometry
}

// New constructs an empty cache for the given configuration.
func New(cfg Config) (*Cache, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	c := &Cache{cfg: cfg}
	c.sets = make([][]way, cfg.Sets())
	for i := range c.sets {
		c.sets[i] = make([]way, cfg.Ways)
	}
	c.plru = make([]uint64, cfg.Sets())
	c.geom = cfg.Geometry()
	return c, nil
}

// locate splits addr into its memory line, cache set, and tag using the
// precomputed geometry.
func (c *Cache) locate(addr uint32) (line uint32, set int, tag uint32) {
	return c.geom.Locate(addr)
}

// MustNew is New that panics on configuration errors; for tests and static
// platform tables.
func MustNew(cfg Config) *Cache {
	c, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return c
}

// Config returns the cache configuration.
func (c *Cache) Config() Config { return c.cfg }

// Stats returns the accumulated statistics since construction or the last
// ResetStats.
func (c *Cache) Stats() Stats { return c.stats }

// ResetStats zeroes the statistics without touching cache contents.
func (c *Cache) ResetStats() { c.stats = Stats{} }

// Flush invalidates all cache contents (cold cache) and keeps statistics.
func (c *Cache) Flush() {
	for i := range c.sets {
		for j := range c.sets[i] {
			c.sets[i][j] = way{}
		}
		c.plru[i] = 0
	}
}

// Clone returns a deep copy of the cache including contents, replacement
// state, and statistics.
func (c *Cache) Clone() *Cache {
	n := &Cache{cfg: c.cfg, clock: c.clock, stats: c.stats, geom: c.geom}
	n.sets = make([][]way, len(c.sets))
	for i := range c.sets {
		n.sets[i] = append([]way(nil), c.sets[i]...)
	}
	n.plru = append([]uint64(nil), c.plru...)
	return n
}

// Contains reports whether the line containing addr is currently cached,
// without updating replacement state or statistics.
func (c *Cache) Contains(addr uint32) bool {
	_, set, tag := c.locate(addr)
	for _, w := range c.sets[set] {
		if w.valid && w.tag == tag {
			return true
		}
	}
	return false
}

// Access simulates one instruction fetch from addr, updating contents,
// replacement state and statistics. It returns true on a hit and the cycle
// cost of the access.
func (c *Cache) Access(addr uint32) (hit bool, cycles int) {
	_, set, tag := c.locate(addr)
	c.clock++
	ws := c.sets[set]
	for i := range ws {
		if ws[i].valid && ws[i].tag == tag {
			c.touch(set, i)
			c.stats.Accesses++
			c.stats.Hits++
			c.stats.Cycles += int64(c.cfg.HitCycles)
			return true, c.cfg.HitCycles
		}
	}
	// Miss: fill into the victim way.
	v := c.victim(set)
	ws[v] = way{valid: true, tag: tag, order: c.clock}
	c.touch(set, v)
	c.stats.Accesses++
	c.stats.Misses++
	c.stats.Cycles += int64(c.cfg.MissCycles)
	return false, c.cfg.MissCycles
}

// AccessRun simulates n back-to-back instruction fetches that all fall into
// the single cache line containing addr: the first fetch may miss (filling
// the line), the remaining n-1 fetches hit. It returns the total cycles.
func (c *Cache) AccessRun(addr uint32, n int) (hitFirst bool, cycles int) {
	if n <= 0 {
		return true, 0
	}
	hit, cyc := c.Access(addr)
	rest := (n - 1) * c.cfg.HitCycles
	c.stats.Accesses += n - 1
	c.stats.Hits += n - 1
	c.stats.Cycles += int64(rest)
	return hit, cyc + rest
}

// touch updates replacement metadata after an access to way i of set.
func (c *Cache) touch(set, i int) {
	switch c.cfg.Policy {
	case LRU:
		c.sets[set][i].order = c.clock
	case FIFO:
		// Insertion order only; nothing on hit.
	case PLRU:
		// Flip tree bits on the path to way i to point away from it.
		ways := c.cfg.Ways
		node := 0
		for span := ways; span > 1; span /= 2 {
			half := span / 2
			goRight := i%span >= half
			if goRight {
				c.plru[set] &^= 1 << uint(node) // 0 = next victim on the left
				node = 2*node + 2
			} else {
				c.plru[set] |= 1 << uint(node) // 1 = next victim on the right
				node = 2*node + 1
			}
		}
	}
}

// victim selects the way to evict in set (or an invalid way if present).
func (c *Cache) victim(set int) int {
	ws := c.sets[set]
	for i := range ws {
		if !ws[i].valid {
			return i
		}
	}
	switch c.cfg.Policy {
	case PLRU:
		ways := c.cfg.Ways
		node, lo, span := 0, 0, ways
		for span > 1 {
			half := span / 2
			if c.plru[set]&(1<<uint(node)) != 0 {
				lo += half
				node = 2*node + 2
			} else {
				node = 2*node + 1
			}
			span = half
		}
		return lo
	default: // LRU and FIFO both evict the smallest order stamp.
		v, min := 0, ws[0].order
		for i := 1; i < len(ws); i++ {
			if ws[i].order < min {
				v, min = i, ws[i].order
			}
		}
		return v
	}
}

// Snapshot returns the set of cached memory-line indices, for test
// assertions and analysis cross-checks.
func (c *Cache) Snapshot() map[uint32]bool {
	out := make(map[uint32]bool)
	for set, ws := range c.sets {
		for _, w := range ws {
			if w.valid {
				out[w.tag*c.geom.NumSets+uint32(set)] = true
			}
		}
	}
	return out
}
