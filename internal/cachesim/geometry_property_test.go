package cachesim

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

// Property: for randomized power-of-two geometries, the shift/mask address
// decomposition of Geometry equals the naive div/mod reference on arbitrary
// addresses, and the three accessors agree with Locate.
func TestQuickGeometryMatchesDivModReference(t *testing.T) {
	f := func(seed int64, addrs []uint32) bool {
		r := rand.New(rand.NewSource(seed))
		cfg := Config{
			Lines:      1 << (3 + r.Intn(8)), // 8 .. 1024
			LineSize:   1 << (2 + r.Intn(5)), // 4 .. 64
			Ways:       1 << r.Intn(3),       // 1, 2, 4
			Policy:     Policy(r.Intn(2)),    // LRU or FIFO
			HitCycles:  1,
			MissCycles: 100,
		}
		if cfg.Lines%cfg.Ways != 0 {
			return true // skip invalid combinations (Lines >= 8 >= Ways here, so none)
		}
		if err := cfg.Validate(); err != nil {
			return false
		}
		g := cfg.Geometry()
		addrs = append(addrs, 0, 1, ^uint32(0), uint32(cfg.SizeBytes()), uint32(cfg.SizeBytes())-1)
		for _, addr := range addrs {
			// Naive reference: pure integer division and modulo.
			line := addr / uint32(cfg.LineSize)
			set := int(line % uint32(cfg.Sets()))
			tag := line / uint32(cfg.Sets())

			gl, gs, gt := g.Locate(addr)
			if gl != line || gs != set || gt != tag {
				return false
			}
			if g.Line(addr) != line || g.Set(line) != set || g.Tag(line) != tag {
				return false
			}
			// The decomposition must be invertible: (tag, set) recover the line.
			if tag*uint32(cfg.Sets())+uint32(set) != line {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: non-power-of-two set counts still decompose correctly through
// the div/mod fallback path (setsPow2 == false).
func TestQuickGeometryNonPow2Sets(t *testing.T) {
	f := func(seed int64, addrs []uint32) bool {
		r := rand.New(rand.NewSource(seed))
		sets := 3 + r.Intn(61)
		if sets&(sets-1) == 0 {
			sets++ // force a non-power-of-two set count
		}
		cfg := Config{
			Lines: sets, LineSize: 16, Ways: 1, Policy: LRU, HitCycles: 1, MissCycles: 100,
		}
		if err := cfg.Validate(); err != nil {
			return false
		}
		g := cfg.Geometry()
		for _, addr := range addrs {
			line := addr / uint32(cfg.LineSize)
			if g.Set(line) != int(line%uint32(sets)) || g.Tag(line) != line/uint32(sets) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// The constructor must reject non-power-of-two counts where the geometry
// depends on them, with an error naming the offending field.
func TestNewRejectsNonPowerOfTwoCounts(t *testing.T) {
	base := PaperConfig()

	lineSize := base
	lineSize.LineSize = 24
	if _, err := New(lineSize); err == nil || !strings.Contains(err.Error(), "LineSize") {
		t.Errorf("LineSize=24: err = %v, want a LineSize power-of-two error", err)
	}

	plru := base
	plru.Lines = 96
	plru.Ways = 3
	plru.Policy = PLRU
	if _, err := New(plru); err == nil || !strings.Contains(err.Error(), "PLRU") {
		t.Errorf("PLRU ways=3: err = %v, want a PLRU power-of-two error", err)
	}
}
