package cachesim

import (
	"testing"

	"repro/internal/race"
)

// TestAccessZeroAllocs pins the cache access path at zero allocations per
// fetch: WCET trace replays issue millions of accesses and any per-access
// garbage would dominate the analysis cost.
func TestAccessZeroAllocs(t *testing.T) {
	if race.Enabled {
		t.Skip("allocation counts differ under the race detector")
	}
	for _, cfg := range []Config{
		PaperConfig(),
		{Lines: 96, LineSize: 32, Ways: 3, Policy: FIFO, HitCycles: 1, MissCycles: 50}, // non-power-of-two sets
		{Lines: 128, LineSize: 16, Ways: 4, Policy: PLRU, HitCycles: 1, MissCycles: 100},
	} {
		c := MustNew(cfg)
		addr := uint32(0)
		allocs := testing.AllocsPerRun(1000, func() {
			c.Access(addr)
			addr += 16
		})
		if allocs != 0 {
			t.Errorf("%v/%d-way: Access allocates %v per run, want 0", cfg.Policy, cfg.Ways, allocs)
		}
		run := MustNew(cfg)
		allocs = testing.AllocsPerRun(1000, func() {
			run.AccessRun(addr, 7)
			addr += 16
		})
		if allocs != 0 {
			t.Errorf("%v/%d-way: AccessRun allocates %v per run, want 0", cfg.Policy, cfg.Ways, allocs)
		}
		if allocs := testing.AllocsPerRun(1000, func() { c.Contains(addr) }); allocs != 0 {
			t.Errorf("%v/%d-way: Contains allocates %v per run, want 0", cfg.Policy, cfg.Ways, allocs)
		}
	}
}

// TestLocateMatchesConfig cross-checks the precomputed geometry split
// against the Config arithmetic for both power-of-two and non-power-of-two
// set counts.
func TestLocateMatchesConfig(t *testing.T) {
	for _, cfg := range []Config{
		PaperConfig(), // 128 sets: power of two
		{Lines: 96, LineSize: 32, Ways: 3, Policy: LRU, HitCycles: 1, MissCycles: 50}, // 32 sets from 96/3
		{Lines: 48, LineSize: 16, Ways: 4, Policy: LRU, HitCycles: 1, MissCycles: 50}, // 12 sets: not a power of two
	} {
		c := MustNew(cfg)
		for _, addr := range []uint32{0, 1, 15, 16, 17, 255, 4096, 65535, 1 << 20, 0xFFFFFFF0} {
			line, set, tag := c.locate(addr)
			wantLine := cfg.LineIndex(addr)
			wantSet := cfg.SetIndex(addr)
			wantTag := wantLine / uint32(cfg.Sets())
			if line != wantLine || set != wantSet || tag != wantTag {
				t.Errorf("cfg %+v addr %#x: locate = (%d,%d,%d), want (%d,%d,%d)",
					cfg, addr, line, set, tag, wantLine, wantSet, wantTag)
			}
		}
	}
}
