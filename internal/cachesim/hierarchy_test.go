package cachesim

import (
	"math/rand"
	"testing"
)

func testL1() Config {
	return Config{Lines: 8, LineSize: 16, Ways: 2, Policy: LRU, HitCycles: 1, MissCycles: 100}
}

func testL2() Config {
	return Config{Lines: 32, LineSize: 16, Ways: 4, Policy: LRU, HitCycles: 10, MissCycles: 100}
}

func TestHierarchyValidate(t *testing.T) {
	l1 := testL1()
	if err := (Hierarchy{}).Validate(l1); err != nil {
		t.Errorf("disabled hierarchy rejected: %v", err)
	}
	if err := (Hierarchy{L2: testL2()}).Validate(l1); err != nil {
		t.Errorf("valid hierarchy rejected: %v", err)
	}
	bad := map[string]Hierarchy{
		"line size":     {L2: Config{Lines: 32, LineSize: 32, Ways: 4, HitCycles: 10, MissCycles: 100}},
		"hit too cheap": {L2: Config{Lines: 32, LineSize: 16, Ways: 4, HitCycles: 1, MissCycles: 100}},
		"hit above mem": {L2: Config{Lines: 32, LineSize: 16, Ways: 4, HitCycles: 101, MissCycles: 101}},
		"memory cost":   {L2: Config{Lines: 32, LineSize: 16, Ways: 4, HitCycles: 10, MissCycles: 200}},
		"bad geometry":  {L2: Config{Lines: 30, LineSize: 16, Ways: 4, HitCycles: 10, MissCycles: 100}},
	}
	// "hit too cheap" must be cheaper than the L1 hit to trip the bound.
	h := bad["hit too cheap"]
	h.L2.HitCycles = 0
	bad["hit too cheap"] = h
	for name, h := range bad {
		if err := h.Validate(l1); err == nil {
			t.Errorf("%s hierarchy accepted", name)
		}
	}
	if _, err := NewHier(l1, Hierarchy{}); err == nil {
		t.Error("NewHier accepted a disabled hierarchy")
	}
}

func TestHierInclusiveBasics(t *testing.T) {
	c := MustNewHier(testL1(), Hierarchy{L2: testL2()})
	if lvl, cyc := c.Access(0); lvl != 3 || cyc != 100 {
		t.Fatalf("cold access: level %d, %d cycles", lvl, cyc)
	}
	if !c.ContainsL1(0) || !c.ContainsL2(0) {
		t.Fatal("inclusive fill must land in both levels")
	}
	if lvl, cyc := c.Access(0); lvl != 1 || cyc != 1 {
		t.Fatalf("L1 hit: level %d, %d cycles", lvl, cyc)
	}
	// Two more lines mapping to set 0 of the 2-way L1 (4 sets, 16B lines:
	// stride 64) evict line 0 from the L1; the L2 (8 sets) still holds it.
	c.Access(64)
	c.Access(128)
	if c.ContainsL1(0) {
		t.Fatal("line 0 should have been evicted from the 2-way L1")
	}
	if !c.ContainsL2(0) {
		t.Fatal("mostly-inclusive L2 must retain the L1-evicted line")
	}
	if lvl, cyc := c.Access(0); lvl != 2 || cyc != 10 {
		t.Fatalf("L2 hit: level %d, %d cycles", lvl, cyc)
	}
	st := c.Stats()
	if st.Accesses != 5 || st.Misses != 3 || st.Hits != 2 {
		t.Fatalf("stats: %+v", st)
	}
}

func TestHierExclusiveVictimMovement(t *testing.T) {
	c := MustNewHier(testL1(), Hierarchy{L2: testL2(), Exclusive: true})
	c.Access(0)
	if c.ContainsL2(0) {
		t.Fatal("exclusive memory fill must not land in the L2")
	}
	// Evict line 0 from L1 set 0: it must demote into the L2.
	c.Access(64)
	c.Access(128)
	if c.ContainsL1(0) {
		t.Fatal("line 0 should have been evicted from the 2-way L1")
	}
	if !c.ContainsL2(0) {
		t.Fatal("exclusive L1 victim must demote into the L2")
	}
	// Touching it again promotes it back and removes the L2 copy.
	if lvl, cyc := c.Access(0); lvl != 2 || cyc != 10 {
		t.Fatalf("L2 hit: level %d, %d cycles", lvl, cyc)
	}
	if !c.ContainsL1(0) || c.ContainsL2(0) {
		t.Fatal("exclusive promotion must move the line, not copy it")
	}
}

// TestHierDegeneratesToSingleLevel: with the L2 hit costing exactly the
// memory latency, the hierarchy's cycle accounting is indistinguishable
// from the single-level cache, access for access, on random streams — the
// simulator half of the degenerate-L2 equivalence the WCET layer pins.
func TestHierDegeneratesToSingleLevel(t *testing.T) {
	l1 := testL1()
	l2 := testL2()
	l2.HitCycles = l1.MissCycles
	for _, excl := range []bool{false, true} {
		single := MustNew(l1)
		hier := MustNewHier(l1, Hierarchy{L2: l2, Exclusive: excl})
		rng := rand.New(rand.NewSource(7))
		for i := 0; i < 5000; i++ {
			addr := uint32(rng.Intn(64)) * 16
			_, want := single.Access(addr)
			_, got := hier.Access(addr)
			if got != want {
				t.Fatalf("exclusive=%v access %d (addr %#x): hier %d cycles, single %d", excl, i, addr, got, want)
			}
		}
	}
}

// TestHierExclusiveDisjoint: the victim-cache arrangement never holds a
// line in both levels.
func TestHierExclusiveDisjoint(t *testing.T) {
	c := MustNewHier(testL1(), Hierarchy{L2: testL2(), Exclusive: true})
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 5000; i++ {
		addr := uint32(rng.Intn(96)) * 16
		c.Access(addr)
		if c.ContainsL1(addr) && c.ContainsL2(addr) {
			t.Fatalf("access %d: line %#x in both levels of an exclusive hierarchy", i, addr)
		}
	}
}

func TestHierCloneIsDeep(t *testing.T) {
	c := MustNewHier(testL1(), Hierarchy{L2: testL2()})
	c.Access(0)
	cl := c.Clone()
	cl.Access(64)
	cl.Access(128)
	if !c.ContainsL1(0) {
		t.Fatal("mutating the clone leaked into the original")
	}
	if cl.Stats().Accesses != 3 || c.Stats().Accesses != 1 {
		t.Fatalf("stats: clone %+v, original %+v", cl.Stats(), c.Stats())
	}
}

func TestHierAccessRun(t *testing.T) {
	c := MustNewHier(testL1(), Hierarchy{L2: testL2()})
	if cyc := c.AccessRun(0, 4); cyc != 100+3*1 {
		t.Fatalf("cold run of 4 fetches: %d cycles", cyc)
	}
	if cyc := c.AccessRun(0, 4); cyc != 4*1 {
		t.Fatalf("warm run of 4 fetches: %d cycles", cyc)
	}
	if cyc := c.AccessRun(0, 0); cyc != 0 {
		t.Fatalf("empty run: %d cycles", cyc)
	}
}
