// Way partitioning: a shared set-associative cache split column-wise, each
// application owning a fixed subset of the ways of every set. Fills and
// evictions of one application are confined to its own ways, so applications
// cannot evict each other — the isolation mechanism behind the joint
// cache-partition + schedule co-design (Sun et al., PAPERS.md).
//
// Two views are provided and cross-checked against each other:
//
//  1. Config.Restrict(ways): the private-cache view of one partition — the
//     same set count with associativity reduced to the owned way count —
//     which the WCET must-analysis runs on (internal/wcet), and
//  2. PartitionedCache: a concrete simulation of the shared structure with
//     per-way-mask replacement, which partition_test.go proves equivalent
//     to independent Restrict caches access for access.
package cachesim

import (
	"fmt"
	"math/bits"
)

// WayMask selects a subset of the ways of every set; bit i selects way i.
type WayMask uint64

// Count returns the number of ways the mask selects.
func (m WayMask) Count() int { return bits.OnesCount64(uint64(m)) }

// Partition assigns disjoint way masks of one shared cache to applications:
// entry i is the way mask application i owns.
type Partition []WayMask

// ContiguousPartition builds the canonical partition giving application i
// counts[i] consecutive ways, allocated left to right. Counts must be
// positive and sum to at most cfg.Ways.
func ContiguousPartition(cfg Config, counts []int) (Partition, error) {
	p := make(Partition, len(counts))
	next := 0
	for i, w := range counts {
		if w < 1 {
			return nil, fmt.Errorf("cachesim: partition way count %d for app %d must be at least 1", w, i)
		}
		p[i] = ((WayMask(1) << w) - 1) << next
		next += w
	}
	if next > cfg.Ways {
		return nil, fmt.Errorf("cachesim: partition uses %d ways, cache has %d", next, cfg.Ways)
	}
	return p, nil
}

// Validate checks the partition against the cache configuration: every mask
// must be non-empty, lie within the cache's ways, and be pairwise disjoint.
func (p Partition) Validate(cfg Config) error {
	if len(p) == 0 {
		return fmt.Errorf("cachesim: empty partition")
	}
	all := WayMask(1)<<cfg.Ways - 1
	var used WayMask
	for i, m := range p {
		switch {
		case m == 0:
			return fmt.Errorf("cachesim: partition app %d owns no ways", i)
		case m&^all != 0:
			return fmt.Errorf("cachesim: partition app %d mask %#x exceeds %d ways", i, uint64(m), cfg.Ways)
		case m&used != 0:
			return fmt.Errorf("cachesim: partition app %d mask %#x overlaps an earlier app", i, uint64(m))
		}
		used |= m
	}
	return nil
}

// Restrict returns the private-cache view of an application owning `ways`
// dedicated ways of this cache: the set count (and hence the address
// mapping) is unchanged, the associativity drops to the owned way count.
// Hit and miss timing carry over from the shared cache.
func (c Config) Restrict(ways int) (Config, error) {
	if ways < 1 || ways > c.Ways {
		return Config{}, fmt.Errorf("cachesim: restrict to %d ways of a %d-way cache", ways, c.Ways)
	}
	r := c
	r.Ways = ways
	r.Lines = c.Sets() * ways
	if err := r.Validate(); err != nil {
		return Config{}, err
	}
	return r, nil
}

// PartitionedCache simulates a shared set-associative cache whose ways are
// statically partitioned between applications: an access by application i
// may hit any of its own ways but fills and evicts only within its mask, so
// inter-application eviction is impossible by construction.
//
// Replacement within a mask is LRU or FIFO over the owned ways (PLRU's tree
// does not decompose over arbitrary way subsets and is rejected).
type PartitionedCache struct {
	cfg   Config
	part  Partition
	geom  Geometry
	sets  [][]way
	clock int64
	stats []Stats // per application
}

// NewPartitioned constructs an empty partitioned cache.
func NewPartitioned(cfg Config, part Partition) (*PartitionedCache, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if cfg.Policy == PLRU {
		return nil, fmt.Errorf("cachesim: PLRU does not support way partitioning (tree bits span the whole set); use LRU or FIFO")
	}
	if err := part.Validate(cfg); err != nil {
		return nil, err
	}
	c := &PartitionedCache{
		cfg:   cfg,
		part:  append(Partition(nil), part...),
		geom:  cfg.Geometry(),
		sets:  make([][]way, cfg.Sets()),
		stats: make([]Stats, len(part)),
	}
	for i := range c.sets {
		c.sets[i] = make([]way, cfg.Ways)
	}
	return c, nil
}

// Config returns the shared cache configuration.
func (c *PartitionedCache) Config() Config { return c.cfg }

// Partition returns the way assignment.
func (c *PartitionedCache) Partition() Partition { return append(Partition(nil), c.part...) }

// Stats returns the accumulated statistics of one application.
func (c *PartitionedCache) Stats(app int) Stats { return c.stats[app] }

// Access simulates one instruction fetch from addr by application app,
// updating contents, replacement state, and that application's statistics.
// It returns true on a hit and the cycle cost of the access.
func (c *PartitionedCache) Access(app int, addr uint32) (hit bool, cycles int) {
	mask := c.part[app]
	_, set, tag := c.geom.Locate(addr)
	c.clock++
	ws := c.sets[set]
	for i := range ws {
		if mask&(1<<i) == 0 {
			continue
		}
		if ws[i].valid && ws[i].tag == tag {
			if c.cfg.Policy == LRU {
				ws[i].order = c.clock
			}
			c.stats[app].Accesses++
			c.stats[app].Hits++
			c.stats[app].Cycles += int64(c.cfg.HitCycles)
			return true, c.cfg.HitCycles
		}
	}
	// Miss: fill into the victim way of the application's own mask.
	v := c.victim(set, mask)
	ws[v] = way{valid: true, tag: tag, order: c.clock}
	c.stats[app].Accesses++
	c.stats[app].Misses++
	c.stats[app].Cycles += int64(c.cfg.MissCycles)
	return false, c.cfg.MissCycles
}

// victim selects the way to evict within mask (an invalid owned way first,
// else the owned way with the smallest order stamp — LRU and FIFO alike).
func (c *PartitionedCache) victim(set int, mask WayMask) int {
	ws := c.sets[set]
	v, min := -1, int64(0)
	for i := range ws {
		if mask&(1<<i) == 0 {
			continue
		}
		if !ws[i].valid {
			return i
		}
		if v < 0 || ws[i].order < min {
			v, min = i, ws[i].order
		}
	}
	return v
}
