// Two-level cache hierarchies: an L1 (the existing Config) backed by a
// unified L2, in one of two arrangements:
//
//   - inclusive (mostly-inclusive, the default): a memory miss fills both
//     levels, an L2 hit refreshes the L2 recency and fills the L1, and no
//     back-invalidation is performed — L2 evictions leave the L1 copy alone,
//     the arrangement of most real L2s; and
//   - exclusive (victim cache): the levels hold disjoint contents — an L2
//     hit promotes the line into the L1 and removes it from the L2, and
//     every valid line the L1 evicts is demoted into the L2.
//
// Timing: an L1 hit costs the L1's HitCycles, an L1 miss that hits the L2
// costs the L2's HitCycles, and a miss in both levels costs the L1's
// MissCycles (the memory latency). The WCET layer (internal/wcet) runs a
// multi-level must-analysis against this model and cross-checks it with the
// exact HierCache simulation below, exactly like the single-level pair.
package cachesim

import "fmt"

// Hierarchy configures the optional second cache level of a platform. The
// zero value disables it, leaving the single-level model unchanged.
type Hierarchy struct {
	// L2 is the second-level geometry and timing: L2.HitCycles is the cost
	// of an access that misses the L1 and hits the L2, and L2.MissCycles
	// must equal the L1's MissCycles (there is one memory behind the
	// hierarchy).
	L2 Config
	// Exclusive selects the victim-cache arrangement; false is inclusive.
	Exclusive bool
}

// Enabled reports whether a second level is configured at all.
func (h Hierarchy) Enabled() bool { return h.L2.Lines > 0 }

// Validate checks the hierarchy against the first-level configuration it
// extends. A disabled hierarchy is always valid.
func (h Hierarchy) Validate(l1 Config) error {
	if !h.Enabled() {
		return nil
	}
	if err := l1.Validate(); err != nil {
		return err
	}
	if err := h.L2.Validate(); err != nil {
		return err
	}
	switch {
	case h.L2.LineSize != l1.LineSize:
		return fmt.Errorf("cachesim: hierarchy line sizes differ: L1 %d, L2 %d", l1.LineSize, h.L2.LineSize)
	case h.L2.HitCycles < l1.HitCycles || h.L2.HitCycles > l1.MissCycles:
		return fmt.Errorf("cachesim: L2 hit cost %d outside [L1 hit %d, memory miss %d]",
			h.L2.HitCycles, l1.HitCycles, l1.MissCycles)
	case h.L2.MissCycles != l1.MissCycles:
		return fmt.Errorf("cachesim: L2 miss cost %d must equal the memory cost %d (one memory behind the hierarchy)",
			h.L2.MissCycles, l1.MissCycles)
	}
	return nil
}

// The hierarchy simulator needs three primitives the public single-level API
// composes differently: a probe that refreshes recency without filling, a
// fill that reports the victim it displaced, and an invalidation. They bump
// the replacement clock like Access but leave the per-cache Stats alone —
// HierCache accounts accesses once, at the hierarchy level.

// lookupTouch probes for addr's line and refreshes replacement state on a
// hit, without filling on a miss.
func (c *Cache) lookupTouch(addr uint32) bool {
	_, set, tag := c.locate(addr)
	c.clock++
	ws := c.sets[set]
	for i := range ws {
		if ws[i].valid && ws[i].tag == tag {
			c.touch(set, i)
			return true
		}
	}
	return false
}

// fill inserts addr's line (which must not be present), returning the valid
// line it evicted, if any.
func (c *Cache) fill(addr uint32) (evictedLine uint32, evicted bool) {
	_, set, tag := c.locate(addr)
	c.clock++
	v := c.victim(set)
	old := c.sets[set][v]
	if old.valid {
		evictedLine, evicted = old.tag*c.geom.NumSets+uint32(set), true
	}
	c.sets[set][v] = way{valid: true, tag: tag, order: c.clock}
	c.touch(set, v)
	return evictedLine, evicted
}

// drop invalidates addr's line if present, leaving replacement state of the
// other ways untouched.
func (c *Cache) drop(addr uint32) bool {
	_, set, tag := c.locate(addr)
	ws := c.sets[set]
	for i := range ws {
		if ws[i].valid && ws[i].tag == tag {
			ws[i] = way{}
			return true
		}
	}
	return false
}

// lineAddr returns a representative address inside a memory line, for
// re-entering the lookup path with a victim line number.
func (c *Cache) lineAddr(line uint32) uint32 { return line << c.geom.lineShift }

// HierCache is a concrete two-level cache instance: the exact simulator the
// multi-level WCET bounds are cross-checked against.
type HierCache struct {
	l1, l2 *Cache
	excl   bool
	l2hit  int
	stats  Stats
}

// NewHier constructs an empty two-level cache. The hierarchy must be
// enabled and valid for the given L1 configuration.
func NewHier(l1 Config, h Hierarchy) (*HierCache, error) {
	if !h.Enabled() {
		return nil, fmt.Errorf("cachesim: hierarchy is disabled (no L2 lines)")
	}
	if err := h.Validate(l1); err != nil {
		return nil, err
	}
	c1, err := New(l1)
	if err != nil {
		return nil, err
	}
	c2, err := New(h.L2)
	if err != nil {
		return nil, err
	}
	return &HierCache{l1: c1, l2: c2, excl: h.Exclusive, l2hit: h.L2.HitCycles}, nil
}

// MustNewHier is NewHier that panics on configuration errors.
func MustNewHier(l1 Config, h Hierarchy) *HierCache {
	c, err := NewHier(l1, h)
	if err != nil {
		panic(err)
	}
	return c
}

// Clone returns a deep copy of both levels and the statistics.
func (c *HierCache) Clone() *HierCache {
	return &HierCache{l1: c.l1.Clone(), l2: c.l2.Clone(), excl: c.excl, l2hit: c.l2hit, stats: c.stats}
}

// Stats returns the hierarchy-level statistics: Hits counts accesses served
// by either level, Misses those that went to memory.
func (c *HierCache) Stats() Stats { return c.stats }

// ContainsL1 reports whether addr's line currently sits in the first level.
func (c *HierCache) ContainsL1(addr uint32) bool { return c.l1.Contains(addr) }

// ContainsL2 reports whether addr's line currently sits in the second level.
func (c *HierCache) ContainsL2(addr uint32) bool { return c.l2.Contains(addr) }

// Access simulates one instruction fetch: level is 1 for an L1 hit, 2 for
// an L2 hit, and 3 for a memory access, with the corresponding cycle cost.
func (c *HierCache) Access(addr uint32) (level, cycles int) {
	c.stats.Accesses++
	if c.l1.lookupTouch(addr) {
		c.stats.Hits++
		cycles = c.l1.cfg.HitCycles
		c.stats.Cycles += int64(cycles)
		return 1, cycles
	}
	if c.excl {
		level, cycles = c.accessExclusive(addr)
	} else {
		level, cycles = c.accessInclusive(addr)
	}
	if level == 2 {
		c.stats.Hits++
	} else {
		c.stats.Misses++
	}
	c.stats.Cycles += int64(cycles)
	return level, cycles
}

// accessInclusive handles an L1 miss in the mostly-inclusive arrangement:
// an L2 hit refreshes the L2 and fills the L1; a memory miss fills both
// levels. Neither fill back-invalidates the other level.
func (c *HierCache) accessInclusive(addr uint32) (level, cycles int) {
	if c.l2.lookupTouch(addr) {
		c.l1.fill(addr)
		return 2, c.l2hit
	}
	c.l1.fill(addr)
	c.l2.fill(addr)
	return 3, c.l1.cfg.MissCycles
}

// accessExclusive handles an L1 miss in the victim-cache arrangement: an L2
// hit promotes the line into the L1 and removes it from the L2, a memory
// miss fills the L1 only, and in both cases a valid line the L1 evicted is
// demoted into the L2.
func (c *HierCache) accessExclusive(addr uint32) (level, cycles int) {
	level, cycles = 3, c.l1.cfg.MissCycles
	if c.l2.Contains(addr) {
		c.l2.drop(addr)
		level, cycles = 2, c.l2hit
	}
	if victim, ok := c.l1.fill(addr); ok {
		c.l2.fill(c.l2.lineAddr(victim))
	}
	return level, cycles
}

// AccessRun simulates n back-to-back fetches falling into addr's single
// line: the first fetch probes the hierarchy, the remaining n-1 hit the L1.
func (c *HierCache) AccessRun(addr uint32, n int) (cycles int) {
	if n <= 0 {
		return 0
	}
	_, cyc := c.Access(addr)
	rest := (n - 1) * c.l1.cfg.HitCycles
	c.stats.Accesses += n - 1
	c.stats.Hits += n - 1
	c.stats.Cycles += int64(rest)
	return cyc + rest
}
