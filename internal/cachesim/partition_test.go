package cachesim

import (
	"math/rand"
	"strings"
	"testing"
)

func fourWay() Config {
	return Config{Lines: 64, LineSize: 16, Ways: 4, Policy: LRU, HitCycles: 1, MissCycles: 100}
}

func TestContiguousPartition(t *testing.T) {
	p, err := ContiguousPartition(fourWay(), []int{2, 1, 1})
	if err != nil {
		t.Fatal(err)
	}
	want := Partition{0b0011, 0b0100, 0b1000}
	for i := range want {
		if p[i] != want[i] {
			t.Errorf("mask %d = %#b, want %#b", i, p[i], want[i])
		}
	}
	if err := p.Validate(fourWay()); err != nil {
		t.Errorf("valid partition rejected: %v", err)
	}

	if _, err := ContiguousPartition(fourWay(), []int{2, 2, 1}); err == nil {
		t.Error("over-budget partition accepted")
	}
	if _, err := ContiguousPartition(fourWay(), []int{2, 0, 1}); err == nil {
		t.Error("zero-way app accepted")
	}
}

func TestPartitionValidateRejects(t *testing.T) {
	cfg := fourWay()
	for name, p := range map[string]Partition{
		"empty":       {},
		"no ways":     {0b0011, 0},
		"overlap":     {0b0011, 0b0110},
		"out of ways": {0b10000, 0b0001},
	} {
		if err := p.Validate(cfg); err == nil {
			t.Errorf("%s partition accepted", name)
		}
	}
}

func TestRestrict(t *testing.T) {
	cfg := fourWay()
	r, err := cfg.Restrict(2)
	if err != nil {
		t.Fatal(err)
	}
	if r.Sets() != cfg.Sets() {
		t.Errorf("restricted set count %d != %d", r.Sets(), cfg.Sets())
	}
	if r.Ways != 2 || r.Lines != cfg.Sets()*2 {
		t.Errorf("restricted geometry = %d ways x %d lines", r.Ways, r.Lines)
	}
	// The address mapping is unchanged: same set and tag for any address.
	g, rg := cfg.Geometry(), r.Geometry()
	for _, addr := range []uint32{0, 16, 4096, 123456} {
		l1, s1, t1 := g.Locate(addr)
		l2, s2, t2 := rg.Locate(addr)
		if l1 != l2 || s1 != s2 || t1 != t2 {
			t.Errorf("addr %#x: locate (%d,%d,%d) vs restricted (%d,%d,%d)", addr, l1, s1, t1, l2, s2, t2)
		}
	}
	for _, bad := range []int{0, -1, 5} {
		if _, err := cfg.Restrict(bad); err == nil {
			t.Errorf("Restrict(%d) accepted", bad)
		}
	}
}

func TestNewPartitionedRejectsPLRU(t *testing.T) {
	cfg := fourWay()
	cfg.Policy = PLRU
	p, _ := ContiguousPartition(fourWay(), []int{2, 2})
	_, err := NewPartitioned(cfg, p)
	if err == nil || !strings.Contains(err.Error(), "PLRU") {
		t.Errorf("PLRU partitioned cache: err = %v", err)
	}
}

// TestPartitionedIsolation: traffic of one application never changes
// another's hit/miss outcome — each app's stream through the shared
// partitioned cache behaves exactly like a private cache with the
// restricted geometry (same sets, its own way count). This is the
// equivalence the partition-aware WCET analysis relies on.
func TestPartitionedIsolation(t *testing.T) {
	for _, policy := range []Policy{LRU, FIFO} {
		for seed := int64(0); seed < 30; seed++ {
			r := rand.New(rand.NewSource(seed))
			cfg := Config{
				Lines:      32 << r.Intn(3), // 32, 64, 128
				LineSize:   16,
				Ways:       4 << r.Intn(2), // 4, 8
				Policy:     policy,
				HitCycles:  1,
				MissCycles: 100,
			}
			nApps := 2 + r.Intn(2)
			counts := make([]int, nApps)
			budget := cfg.Ways
			for i := range counts {
				max := budget - (nApps - 1 - i)
				counts[i] = 1 + r.Intn(max)
				budget -= counts[i]
			}
			part, err := ContiguousPartition(cfg, counts)
			if err != nil {
				t.Fatal(err)
			}
			shared, err := NewPartitioned(cfg, part)
			if err != nil {
				t.Fatal(err)
			}
			private := make([]*Cache, nApps)
			for i := range private {
				rcfg, err := cfg.Restrict(counts[i])
				if err != nil {
					t.Fatal(err)
				}
				private[i] = MustNew(rcfg)
			}
			// Random interleaving of per-app address streams over a span
			// wider than the cache, so conflicts are plentiful.
			span := uint32(cfg.Lines * cfg.LineSize * 3)
			for step := 0; step < 3000; step++ {
				app := r.Intn(nApps)
				addr := uint32(r.Intn(int(span))) &^ uint32(cfg.LineSize-1)
				hitShared, cycShared := shared.Access(app, addr)
				hitPriv, cycPriv := private[app].Access(addr)
				if hitShared != hitPriv || cycShared != cycPriv {
					t.Fatalf("policy %v seed %d step %d app %d addr %#x: shared (%v,%d) vs private (%v,%d)",
						policy, seed, step, app, addr, hitShared, cycShared, hitPriv, cycPriv)
				}
			}
			for i := range private {
				if shared.Stats(i) != private[i].Stats() {
					t.Fatalf("policy %v seed %d app %d stats: shared %+v vs private %+v",
						policy, seed, i, shared.Stats(i), private[i].Stats())
				}
			}
		}
	}
}
