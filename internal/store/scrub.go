package store

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"
)

// ScrubReport classifies every file a Scrub walk visited. The read path
// already degrades all of these to misses one record at a time; Scrub
// exists so an operator can learn the store's health in one pass — and,
// with repair, restore it — instead of discovering rot as a slow stream of
// recomputations.
type ScrubReport struct {
	Scanned          int `json:"scanned"`           // record files visited
	OK               int `json:"ok"`                // valid records (v1 or checksum-verified v2)
	LegacyV1         int `json:"legacy_v1"`         // subset of OK still in the pre-checksum envelope
	Corrupt          int `json:"corrupt"`           // unparsable, bad version, or filed under the wrong address
	ChecksumMismatch int `json:"checksum_mismatch"` // v2 payload no longer hashes to its sum
	OrphanedTemps    int `json:"orphaned_temps"`    // .tmp-* older than TempMaxAge
	Quarantined      int `json:"quarantined"`       // bad records moved aside (repair mode)
	TempsRemoved     int `json:"temps_removed"`     // orphaned temps deleted (repair mode)
}

// Bad reports how many problems the walk found (quarantining or removing
// them in repair mode does not make them un-found).
func (r ScrubReport) Bad() int {
	return r.Corrupt + r.ChecksumMismatch + r.OrphanedTemps
}

// String renders the report as a one-line operator summary.
func (r ScrubReport) String() string {
	s := fmt.Sprintf("scanned %d: %d ok (%d legacy v1), %d corrupt, %d checksum-mismatch, %d orphaned temp(s)",
		r.Scanned, r.OK, r.LegacyV1, r.Corrupt, r.ChecksumMismatch, r.OrphanedTemps)
	if r.Quarantined > 0 || r.TempsRemoved > 0 {
		s += fmt.Sprintf("; repaired: %d quarantined, %d temp(s) removed", r.Quarantined, r.TempsRemoved)
	}
	return s
}

// Scrub walks every record in the store and classifies it: ok (a valid v1
// or checksum-verified v2 envelope under its correct content address),
// corrupt (unparsable, unknown version, empty key, or filed under a name
// that is not its key's hash), checksum-mismatch (a v2 payload whose bytes
// no longer hash to the recorded sum), or an orphaned write-temporary older
// than TempMaxAge. With repair, bad records are quarantined — moved to
// <root>/quarantine/<shard>-<file>, out of the read path but preserved for
// postmortem — and orphaned temps are deleted. Quarantining is always safe:
// records are deterministic and recomputable, so the worst cost of a false
// positive is one recomputation.
//
// Scrub is an offline/admin operation (O(records), reads every file); the
// serving path never calls it. It is safe to run against a live store:
// every mutation is a whole-file rename or remove, exactly the granularity
// concurrent readers already tolerate.
func (s *Store) Scrub(repair bool) (ScrubReport, error) {
	var rep ScrubReport
	now := time.Now()
	entries, err := os.ReadDir(s.root)
	if err != nil {
		return rep, fmt.Errorf("store: scrub: %w", err)
	}
	for _, e := range entries {
		if !e.IsDir() || e.Name() == quarantineDir {
			continue
		}
		shard := filepath.Join(s.root, e.Name())
		files, err := os.ReadDir(shard)
		if err != nil {
			continue
		}
		for _, f := range files {
			name := f.Name()
			path := filepath.Join(shard, name)
			switch {
			case strings.HasPrefix(name, ".tmp-"):
				info, err := f.Info()
				if err != nil || now.Sub(info.ModTime()) <= TempMaxAge {
					continue // possibly a live writer's in-flight temp
				}
				rep.OrphanedTemps++
				if repair && os.Remove(path) == nil {
					rep.TempsRemoved++
				}
			case filepath.Ext(name) == ".json":
				rep.Scanned++
				verdict := classify(path, name)
				switch verdict {
				case recordOK:
					rep.OK++
				case recordLegacy:
					rep.OK++
					rep.LegacyV1++
				case recordCorrupt:
					rep.Corrupt++
				case recordSumMismatch:
					rep.ChecksumMismatch++
				}
				if repair && (verdict == recordCorrupt || verdict == recordSumMismatch) {
					if s.quarantine(e.Name(), name) {
						rep.Quarantined++
					}
				}
			}
		}
	}
	return rep, nil
}

type recordVerdict int

const (
	recordOK recordVerdict = iota
	recordLegacy
	recordCorrupt
	recordSumMismatch
)

// classify applies the full read-path validation to one record file, plus
// the one check Get cannot make (it starts from a key): that the file lives
// under its own key's content address.
func classify(path, name string) recordVerdict {
	data, err := os.ReadFile(path)
	if err != nil {
		return recordCorrupt
	}
	var env envelope
	if err := json.Unmarshal(data, &env); err != nil || env.Key == "" {
		return recordCorrupt
	}
	sum := sha256.Sum256([]byte(env.Key))
	if name != hex.EncodeToString(sum[:])+".json" {
		return recordCorrupt // moved or renamed into another record's address
	}
	switch env.V {
	case legacyVersion:
		return recordLegacy
	case Version:
		if payloadSum(env.Payload) != env.Sum {
			return recordSumMismatch
		}
		return recordOK
	default:
		return recordCorrupt
	}
}

// quarantine moves one bad record out of the read path, keeping the shard
// prefix in the new name so distinct shards cannot collide.
func (s *Store) quarantine(shard, name string) bool {
	qdir := filepath.Join(s.root, quarantineDir)
	if err := os.MkdirAll(qdir, 0o755); err != nil {
		return false
	}
	if err := os.Rename(filepath.Join(s.root, shard, name), filepath.Join(qdir, shard+"-"+name)); err != nil {
		return false
	}
	s.records.Add(-1)
	return true
}
