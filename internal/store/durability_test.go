package store

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// writeV1Record plants a record exactly as the pre-checksum release wrote
// it: json.Marshal of the envelope without a sum (which also HTML-escapes
// the payload, as Marshal always did).
func writeV1Record(t *testing.T, s *Store, key string, payload []byte) {
	t.Helper()
	env := struct {
		V       int             `json:"v"`
		Key     string          `json:"key"`
		Payload json.RawMessage `json:"payload"`
	}{V: legacyVersion, Key: key, Payload: payload}
	data, err := json.Marshal(env)
	if err != nil {
		t.Fatal(err)
	}
	path := recordPath(t, s, key)
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
}

// TestV1StoreReadsBackBitIdentical pins the acceptance criterion that a
// store directory written by the previous release stays readable under the
// v2 code: every v1 record — including one whose payload carries the
// HTML-escapable characters Marshal used to rewrite — reads back exactly
// the bytes the v1 Get would have returned, with no corruption counted.
func TestV1StoreReadsBackBitIdentical(t *testing.T) {
	dir := t.TempDir()
	old, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	records := map[string][]byte{
		"plain":   []byte(`{"x":1}`),
		"escaped": []byte(`{"html":"<a href=\"x\">&amp;</a>","cmp":"a<b>c"}`),
		"nested":  []byte(`{"deep":{"arr":[1,2,3],"s":"v"}}`),
	}
	for key, payload := range records {
		writeV1Record(t, old, key, payload)
	}

	s, err := Open(dir) // fresh handle, v2 code, same directory
	if err != nil {
		t.Fatal(err)
	}
	for key := range records {
		// What the v1 reader would have served: the envelope's raw payload.
		var env envelope
		data, err := os.ReadFile(recordPath(t, s, key))
		if err != nil {
			t.Fatal(err)
		}
		if err := json.Unmarshal(data, &env); err != nil {
			t.Fatal(err)
		}
		got, ok := s.Get(key)
		if !ok {
			t.Fatalf("v1 record %q reads as a miss under v2", key)
		}
		if !bytes.Equal(got, env.Payload) {
			t.Fatalf("v1 record %q not bit-identical:\n got %s\nwant %s", key, got, env.Payload)
		}
	}
	if st := s.Stats(); st.Corrupt != 0 {
		t.Fatalf("v1 readback counted %d corrupt record(s)", st.Corrupt)
	}
}

// TestV2ChecksumSurvivesHTMLEscapableBytes pins the byte discipline of the
// v2 write path: < > & and friends in the payload must round-trip with a
// valid checksum, which only works if the bytes hashed, the bytes stored,
// and the bytes re-read are the same bytes.
func TestV2ChecksumSurvivesHTMLEscapableBytes(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	payload := []byte(`{"html":"<script>1&2</script>","u":"<"}`)
	s.Put("hostile", payload)
	got, ok := s.Get("hostile")
	if !ok {
		t.Fatal("v2 record with HTML-escapable payload reads as a miss (checksum broke)")
	}
	var want bytes.Buffer
	if err := json.Compact(&want, payload); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want.Bytes()) {
		t.Fatalf("payload changed across round-trip:\n got %s\nwant %s", got, want.Bytes())
	}
	if st := s.Stats(); st.Corrupt != 0 {
		t.Fatalf("round-trip counted %d corrupt record(s)", st.Corrupt)
	}
}

// TestChecksumMismatchReadsAsMiss pins the new detection: a v2 payload
// altered in place — still perfectly valid JSON, the corruption the v1
// envelope could not see — reads as a miss and counts as corrupt.
func TestChecksumMismatchReadsAsMiss(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	key := "bitrot"
	s.Put(key, []byte(`{"x":1111}`))
	path := recordPath(t, s, key)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	flipped := bytes.Replace(data, []byte("1111"), []byte("1121"), 1)
	if bytes.Equal(flipped, data) {
		t.Fatal("test bug: payload digits not found to flip")
	}
	if err := os.WriteFile(path, flipped, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Get(key); ok {
		t.Fatal("bit-flipped (but valid-JSON) payload served as a hit")
	}
	if st := s.Stats(); st.Corrupt != 1 {
		t.Fatalf("Corrupt = %d, want 1", st.Corrupt)
	}
	// Degrade contract: recompute-and-overwrite heals.
	s.Put(key, []byte(`{"x":1111}`))
	if got, ok := s.Get(key); !ok || !bytes.Equal(got, []byte(`{"x":1111}`)) {
		t.Fatalf("re-Put did not heal: ok=%v payload=%s", ok, got)
	}
}

// TestPutErrorLoggedOncePerHandle pins the satellite fix for "counted but
// never surfaced": an unwritable shard path logs exactly one diagnostic per
// handle while every failure still counts. Root runs ignore permission
// bits, so the unwritable path is a plain file squatting where the shard
// directory must go — MkdirAll fails with ENOTDIR for any uid.
func TestPutErrorLoggedOncePerHandle(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	var logs []string
	s.logf = func(format string, args ...any) {
		logs = append(logs, fmt.Sprintf(format, args...))
	}
	key := "blocked-key"
	shardDir := filepath.Dir(recordPath(t, s, key))
	if err := os.WriteFile(shardDir, []byte("squatter"), 0o644); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		s.Put(key, []byte(`{"x":1}`))
	}
	if st := s.Stats(); st.PutErrors != 5 {
		t.Fatalf("PutErrors = %d, want 5", st.PutErrors)
	}
	if len(logs) != 1 {
		t.Fatalf("logged %d line(s) for 5 failed puts, want exactly 1: %q", len(logs), logs)
	}
	if !strings.Contains(logs[0], key) {
		t.Fatalf("put-error log does not name the key: %q", logs[0])
	}
	// Reads on the same blocked path are plain misses, not log spam.
	if _, ok := s.Get(key); ok {
		t.Fatal("Get through a blocked shard path hit")
	}
	if len(logs) != 1 {
		t.Fatalf("Get added log lines: %q", logs)
	}
}

// TestOpenRecordsTempRemovalCount pins the satellite stat: the sweep's
// removal count lands in Stats.TempsRemoved instead of being dropped.
func TestOpenRecordsTempRemovalCount(t *testing.T) {
	dir := t.TempDir()
	seed, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	seed.Put("anchor", []byte(`{"x":1}`))
	shard := filepath.Dir(recordPath(t, seed, "anchor"))
	for i := 0; i < 3; i++ {
		stale := filepath.Join(shard, fmt.Sprintf(".tmp-stale-%d", i))
		if err := os.WriteFile(stale, []byte("partial"), 0o644); err != nil {
			t.Fatal(err)
		}
		old := time.Now().Add(-2 * TempMaxAge)
		if err := os.Chtimes(stale, old, old); err != nil {
			t.Fatal(err)
		}
	}
	fresh := filepath.Join(shard, ".tmp-fresh")
	if err := os.WriteFile(fresh, []byte("partial"), 0o644); err != nil {
		t.Fatal(err)
	}

	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if st := s.Stats(); st.TempsRemoved != 3 {
		t.Fatalf("TempsRemoved = %d, want 3 (stats %+v)", st.TempsRemoved, st)
	}
	if _, err := os.Stat(fresh); err != nil {
		t.Fatalf("fresh temp removed: %v", err)
	}
}

// TestSyncPutsCountsFsyncs pins the opt-in durability mode: records still
// round-trip and the fsync work is visible in Stats.
func TestSyncPutsCountsFsyncs(t *testing.T) {
	s, err := OpenWithOptions(t.TempDir(), Options{SyncPuts: true})
	if err != nil {
		t.Fatal(err)
	}
	s.Put("durable", []byte(`{"x":1}`))
	if got, ok := s.Get("durable"); !ok || !bytes.Equal(got, []byte(`{"x":1}`)) {
		t.Fatalf("sync-put round trip: ok=%v payload=%s", ok, got)
	}
	// One file fsync + one directory fsync per fresh put (directory sync may
	// be unsupported on exotic filesystems; require at least the file's).
	if st := s.Stats(); st.Fsyncs < 1 || st.Fsyncs > 2 {
		t.Fatalf("Fsyncs = %d after one sync put, want 1 or 2", st.Fsyncs)
	}
}

// scrubFixture builds a store containing every class Scrub distinguishes
// and returns it with the planted keys.
func scrubFixture(t *testing.T) (s *Store, goodKey, v1Key, rotKey, wrongAddr string) {
	t.Helper()
	dir := t.TempDir()
	var err error
	s, err = Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	goodKey, v1Key, rotKey = "good", "legacy", "rot"
	s.Put(goodKey, []byte(`{"x":1}`))
	writeV1Record(t, s, v1Key, []byte(`{"x":2}`))

	// Checksum mismatch: valid v2 frame, payload altered in place.
	s.Put(rotKey, []byte(`{"x":3333}`))
	rotPath := recordPath(t, s, rotKey)
	data, err := os.ReadFile(rotPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(rotPath, bytes.Replace(data, []byte("3333"), []byte("3433"), 1), 0o644); err != nil {
		t.Fatal(err)
	}

	// Corrupt: a parse-proof file squatting at a plausible record address.
	wrongAddr = filepath.Join(s.Root(), "ab")
	if err := os.MkdirAll(wrongAddr, 0o755); err != nil {
		t.Fatal(err)
	}
	wrongAddr = filepath.Join(wrongAddr, strings.Repeat("ab", 32)+".json")
	if err := os.WriteFile(wrongAddr, []byte("{ not a record"), 0o644); err != nil {
		t.Fatal(err)
	}

	// One orphaned temp (stale) and one in-flight temp (fresh).
	shard := filepath.Dir(recordPath(t, s, goodKey))
	stale := filepath.Join(shard, ".tmp-orphan")
	if err := os.WriteFile(stale, []byte("partial"), 0o644); err != nil {
		t.Fatal(err)
	}
	old := time.Now().Add(-2 * TempMaxAge)
	if err := os.Chtimes(stale, old, old); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(shard, ".tmp-live"), []byte("partial"), 0o644); err != nil {
		t.Fatal(err)
	}
	return s, goodKey, v1Key, rotKey, wrongAddr
}

func TestScrubClassifies(t *testing.T) {
	s, _, _, _, _ := scrubFixture(t)
	rep, err := s.Scrub(false)
	if err != nil {
		t.Fatal(err)
	}
	want := ScrubReport{Scanned: 4, OK: 2, LegacyV1: 1, Corrupt: 1, ChecksumMismatch: 1, OrphanedTemps: 1}
	if rep != want {
		t.Fatalf("dry-run report %+v, want %+v", rep, want)
	}
	if rep.Bad() != 3 {
		t.Fatalf("Bad() = %d, want 3", rep.Bad())
	}
	// Dry run mutates nothing: a second walk sees the same picture.
	again, err := s.Scrub(false)
	if err != nil {
		t.Fatal(err)
	}
	if again != rep {
		t.Fatalf("second dry run diverged: %+v vs %+v", again, rep)
	}
}

func TestScrubRepairQuarantines(t *testing.T) {
	s, goodKey, v1Key, rotKey, wrongAddr := scrubFixture(t)
	before := s.ApproxLen()
	rep, err := s.Scrub(true)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Quarantined != 2 || rep.TempsRemoved != 1 {
		t.Fatalf("repair report %+v, want 2 quarantined + 1 temp removed", rep)
	}
	// Bad records are out of the read path but preserved for postmortem.
	if _, err := os.Stat(wrongAddr); !os.IsNotExist(err) {
		t.Fatalf("corrupt record still at its address: %v", err)
	}
	qdir := filepath.Join(s.Root(), quarantineDir)
	entries, err := os.ReadDir(qdir)
	if err != nil || len(entries) != 2 {
		t.Fatalf("quarantine holds %d file(s) (err %v), want 2", len(entries), err)
	}
	if _, ok := s.Get(rotKey); ok {
		t.Fatal("quarantined record served as a hit")
	}
	// Healthy records and the counter survive the repair.
	if _, ok := s.Get(goodKey); !ok {
		t.Fatal("good record lost to repair")
	}
	if _, ok := s.Get(v1Key); !ok {
		t.Fatal("legacy record lost to repair")
	}
	if got := s.ApproxLen(); got != before-2 {
		t.Fatalf("ApproxLen = %d after quarantining 2, want %d", got, before-2)
	}
	// Len walks the real directories: the two healthy records remain and the
	// quarantine directory is invisible to it.
	if got := s.Len(); got != 2 {
		t.Fatalf("Len = %d after repair, want 2", got)
	}
	// The store is now clean: only the fresh in-flight temp remains, and it
	// is nobody's problem.
	clean, err := s.Scrub(false)
	if err != nil {
		t.Fatal(err)
	}
	if clean.Bad() != 0 {
		t.Fatalf("store still dirty after repair: %+v", clean)
	}
	// A later Open must neither count quarantined records nor trip on them:
	// its walk agrees with Len, quarantine excluded.
	reopened, err := Open(s.Root())
	if err != nil {
		t.Fatal(err)
	}
	if got := reopened.ApproxLen(); got != 2 {
		t.Fatalf("reopened ApproxLen = %d, want 2 (quarantine leaked into the walk?)", got)
	}
}
