package httpstore

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/store"
)

// Both ends of the fabric speak store.Backend.
var (
	_ store.Backend = (*Client)(nil)
	_ store.Backend = (*store.Store)(nil)
)

// testBackend mounts a disk store behind the HTTP handler and returns a
// client for it plus the underlying store for corruption surgery.
func testBackend(t *testing.T) (*Client, *store.Store) {
	t.Helper()
	st, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	hs := httptest.NewServer(Handler(st))
	t.Cleanup(hs.Close)
	return New(hs.URL, nil), st
}

// TestRoundTripRealKeys pins the escaping contract with the key shapes the
// pipeline actually generates: hashed namespaces with literal '/'
// separators, canonical schedule renderings with spaces/parens/commas, the
// joint '|w[...]' suffix, and a hostile '%' / encoded-slash key.
func TestRoundTripRealKeys(t *testing.T) {
	cl, _ := testBackend(t)
	keys := []string{
		"o/0123456789abcdef0123456789abcdef/(3, 2, 3)",
		"o/0123456789abcdef0123456789abcdef/(3, 2, 3)|w[2 1 1]",
		"r/fedcba9876543210fedcba9876543210",
		"served/design/v1/b=tiny|(1, 1, 1)",
		"served/table/v1/IV|b=tiny|m=4|tol=3f847ae147ae147b",
		"odd % key/with%2Fencoded/and spaces",
	}
	for i, key := range keys {
		payload := []byte(fmt.Sprintf(`{"i":%d}`, i))
		if _, ok := cl.Get(key); ok {
			t.Fatalf("Get(%q) before Put reported a hit", key)
		}
		cl.Put(key, payload)
		got, ok := cl.Get(key)
		if !ok || !bytes.Equal(got, payload) {
			t.Fatalf("round trip %q: ok=%v payload=%s", key, ok, got)
		}
	}
	// Distinct keys must not alias through escaping.
	for i, key := range keys {
		got, ok := cl.Get(key)
		if !ok || !bytes.Equal(got, []byte(fmt.Sprintf(`{"i":%d}`, i))) {
			t.Fatalf("key %q aliased: payload=%s", key, got)
		}
	}
	st := cl.Stats()
	if st.PutErrors != 0 || st.Corrupt != 0 {
		t.Fatalf("clean round trips recorded failures: %+v", st)
	}
	if st.Hits != int64(2*len(keys)) {
		t.Fatalf("hits = %d, want %d", st.Hits, 2*len(keys))
	}
}

// recordPath locates a key's file inside the coordinator's disk store.
func recordPath(st *store.Store, key string) string {
	sum := sha256.Sum256([]byte(key))
	h := hex.EncodeToString(sum[:])
	return filepath.Join(st.Root(), h[:2], h+".json")
}

// TestCorruptRecordReadsAsMissOverHTTP reruns the disk store's corruption
// table through the HTTP backend: every damaged record must read as a plain
// miss at the worker, never as a wrong payload, and a re-Put through the
// client heals it — the cluster-wide version of the store's degrade
// contract.
func TestCorruptRecordReadsAsMissOverHTTP(t *testing.T) {
	cases := []struct {
		name    string
		corrupt func(t *testing.T, path, key string)
	}{
		{"garbage", func(t *testing.T, path, key string) {
			if err := os.WriteFile(path, []byte("\x00\xffnot json at all"), 0o644); err != nil {
				t.Fatal(err)
			}
		}},
		{"truncated", func(t *testing.T, path, key string) {
			data, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(path, data[:len(data)/2], 0o644); err != nil {
				t.Fatal(err)
			}
		}},
		{"empty", func(t *testing.T, path, key string) {
			if err := os.WriteFile(path, nil, 0o644); err != nil {
				t.Fatal(err)
			}
		}},
		{"version-mismatch", func(t *testing.T, path, key string) {
			rec := fmt.Sprintf(`{"v":%d,"key":%q,"payload":{"x":1}}`, store.Version+1, key)
			if err := os.WriteFile(path, []byte(rec), 0o644); err != nil {
				t.Fatal(err)
			}
		}},
		{"key-mismatch", func(t *testing.T, path, key string) {
			rec := fmt.Sprintf(`{"v":%d,"key":"some-other-key","payload":{"x":1}}`, store.Version)
			if err := os.WriteFile(path, []byte(rec), 0o644); err != nil {
				t.Fatal(err)
			}
		}},
		{"deleted", func(t *testing.T, path, key string) {
			if err := os.Remove(path); err != nil {
				t.Fatal(err)
			}
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cl, st := testBackend(t)
			key := "o/deadbeef/victim-" + tc.name
			cl.Put(key, []byte(`{"x":1}`))
			tc.corrupt(t, recordPath(st, key), key)
			if data, ok := cl.Get(key); ok {
				t.Fatalf("corrupt record served over HTTP as a hit: %s", data)
			}
			cl.Put(key, []byte(`{"x":2}`))
			got, ok := cl.Get(key)
			if !ok || !bytes.Equal(got, []byte(`{"x":2}`)) {
				t.Fatalf("re-Put did not heal over HTTP: ok=%v payload=%s", ok, got)
			}
		})
	}
}

// TestUnreachableCoordinatorDegrades pins the offline contract: with no
// coordinator listening, every Get is a miss and every Put a counted
// error — no panics, no wedging, the worker just runs cold.
func TestUnreachableCoordinatorDegrades(t *testing.T) {
	hs := httptest.NewServer(Handler(nil))
	hs.Close() // immediately: nothing is listening
	cl := New(hs.URL, nil)
	if _, ok := cl.Get("any"); ok {
		t.Fatal("Get against a dead coordinator reported a hit")
	}
	cl.Put("any", []byte(`{"x":1}`))
	st := cl.Stats()
	if st.Hits != 0 || st.PutErrors != 1 {
		t.Fatalf("dead-coordinator stats %+v, want 0 hits and 1 put error", st)
	}
}

// TestNoStoreConfigured pins the 503 path: a coordinator running without
// -store refuses store traffic explicitly, and the client degrades to
// miss/put-error.
func TestNoStoreConfigured(t *testing.T) {
	hs := httptest.NewServer(Handler(nil))
	defer hs.Close()
	cl := New(hs.URL, nil)
	if _, ok := cl.Get("k"); ok {
		t.Fatal("storeless coordinator served a hit")
	}
	cl.Put("k", []byte(`{"x":1}`))
	st := cl.Stats()
	if st.PutErrors != 1 {
		t.Fatalf("storeless Put not counted as error: %+v", st)
	}
	if st.Corrupt != 1 {
		t.Fatalf("storeless Get (503) not counted distinct from 404: %+v", st)
	}
}

// TestHandlerRejectsBadWrites pins the server-side input guards.
func TestHandlerRejectsBadWrites(t *testing.T) {
	cl, st := testBackend(t)
	cl.Put("empty-payload", nil)
	if s := cl.Stats(); s.PutErrors != 1 {
		t.Fatalf("empty payload accepted: %+v", s)
	}
	if st.Len() != 0 {
		t.Fatalf("bad write reached the disk store: %d records", st.Len())
	}
}
