// Package httpstore is the remote arm of the pluggable store backend
// (store.Backend): a client that speaks a coordinator's /v1/store/{key}
// endpoints, and the matching HTTP handler the coordinator mounts in front
// of its local disk store. Together they let a sweep worker's persistent
// tier live on another machine — every evaluation outcome and scenario
// checkpoint a worker writes lands in the coordinator's content-addressed
// store, and warm records answer over the wire instead of recomputing.
//
// The client preserves the store contract exactly:
//
//   - Reads never fail the caller. A connection error, a non-200 status, a
//     coordinator without a store (503), or a record the coordinator's disk
//     store rejected as corrupt (404 — corruption is detected server-side
//     by the versioned key-carrying envelope) all read as a miss.
//   - Writes are best-effort and atomic: the payload travels whole in one
//     PUT body, and the coordinator's disk store does its usual temp+rename
//     write, so racing workers — which, evaluations being deterministic,
//     carry identical payloads — can only race complete records.
//
// On top of that contract sits the resilience layer (internal/resilience):
// every Get/Put runs under a per-operation deadline (no client-wide 30s
// timeout — a hung coordinator costs one OpTimeout per attempt, bounded by
// the retry budget), transient failures (transport errors, 5xx, 429) are
// retried on a seeded-jitter backoff schedule, and a circuit breaker turns
// sustained failure into immediate misses: with the breaker open, a Get
// against a dead coordinator returns in microseconds instead of stalling
// the sweep's hot path, and a half-open probe re-admits traffic once the
// coordinator recovers. A definitive 404 is a healthy answer — it is never
// retried and never trips the breaker.
//
// Keys travel in the URL path, percent-escaped per segment so the literal
// '/' separators of the store's namespaces survive routing while every
// other byte (spaces, parens, '%') round-trips exactly.
package httpstore

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strings"
	"sync/atomic"
	"time"

	"repro/internal/resilience"
	"repro/internal/store"
)

// pathPrefix is the route both ends agree on; Handler strips it, Client
// prepends it.
const pathPrefix = "/v1/store/"

// maxPayload bounds one record body on the server side. Records are small
// JSON envelopes (checkpoints, outcomes, rendered tables); anything near
// this limit is a broken or hostile client.
const maxPayload = 8 << 20

// DefaultOpTimeout is the per-attempt deadline of one Get/Put when Options
// leaves OpTimeout zero. Store traffic is small records on a fast link; an
// attempt that takes longer is a dead or wedged coordinator, and the retry
// budget (not a long timeout) absorbs restarts.
const DefaultOpTimeout = 5 * time.Second

// errBadPayload marks a response that arrived with an unusable body (empty
// or over maxPayload) — response-level corruption, counted in
// Stats.Corrupt.
var errBadPayload = errors.New("httpstore: empty or oversized payload")

// escapeKey renders a store key as a URL path suffix: each '/'-separated
// segment is percent-escaped independently, keeping the separators literal
// so the route still looks like the key ("o/<hash>/(3, 2, 3)").
func escapeKey(key string) string {
	segs := strings.Split(key, "/")
	for i, s := range segs {
		segs[i] = url.PathEscape(s)
	}
	return strings.Join(segs, "/")
}

// Options configures a Client's resilience envelope. The zero value of
// every field resolves to a sane default.
type Options struct {
	// HTTPClient issues the requests; nil uses a default client with no
	// client-wide timeout (deadlines are per-operation).
	HTTPClient *http.Client
	// OpTimeout is the per-attempt deadline of one Get/Put
	// (0 = DefaultOpTimeout, negative = no deadline).
	OpTimeout time.Duration
	// Policy is the retry policy for transient failures (zero value =
	// resilience defaults: 4 attempts, 50ms..2s backoff).
	Policy resilience.Policy
	// Breaker guards the coordinator edge; nil installs a default breaker
	// (open after 5 consecutive transient failures, 5s cooldown). Tests
	// inject one on a fake clock.
	Breaker *resilience.Breaker
}

// ResilienceStats snapshots the client's retry and breaker counters for
// observability endpoints (/statsz).
type ResilienceStats struct {
	Retry   resilience.Stats        `json:"retry"`
	Breaker resilience.BreakerStats `json:"breaker"`
}

// Client is a store.Backend whose records live behind a coordinator's
// /v1/store endpoints. All methods are safe for concurrent use. The zero
// value is not usable; construct with New or NewWithOptions.
type Client struct {
	base      string // coordinator base URL, no trailing slash
	hc        *http.Client
	opTimeout time.Duration
	retry     *resilience.Retryer

	gets      atomic.Int64
	hits      atomic.Int64
	puts      atomic.Int64
	corrupt   atomic.Int64 // responses that arrived but were unusable
	putErrors atomic.Int64
}

// New returns a client for the coordinator at baseURL (e.g.
// "http://coordinator:8080") with the default resilience envelope.
// httpClient may be nil for a default.
func New(baseURL string, httpClient *http.Client) *Client {
	return NewWithOptions(baseURL, Options{HTTPClient: httpClient})
}

// NewWithOptions returns a client with an explicit resilience envelope.
func NewWithOptions(baseURL string, o Options) *Client {
	if o.HTTPClient == nil {
		o.HTTPClient = &http.Client{}
	}
	if o.OpTimeout == 0 {
		o.OpTimeout = DefaultOpTimeout
	}
	if o.Breaker == nil {
		o.Breaker = resilience.NewBreaker(0, 0)
	}
	return &Client{
		base:      strings.TrimRight(baseURL, "/"),
		hc:        o.HTTPClient,
		opTimeout: o.OpTimeout,
		retry:     resilience.NewRetryer(o.Policy, o.Breaker),
	}
}

// Base returns the coordinator base URL the client was built with.
func (c *Client) Base() string { return c.base }

// Retryer exposes the client's retry loop (tests replace its sleep to pin
// schedules without waiting them out).
func (c *Client) Retryer() *resilience.Retryer { return c.retry }

// Breaker exposes the circuit breaker guarding this client's coordinator
// edge.
func (c *Client) Breaker() *resilience.Breaker { return c.retry.Breaker() }

func (c *Client) keyURL(key string) string {
	return c.base + pathPrefix + escapeKey(key)
}

// opCtx builds one attempt's deadline context.
func (c *Client) opCtx() (context.Context, context.CancelFunc) {
	if c.opTimeout > 0 {
		return context.WithTimeout(context.Background(), c.opTimeout)
	}
	return context.Background(), func() {}
}

// Get fetches the payload stored under key. Any failure — transport error,
// non-200 status, oversized or unreadable body — reads as a miss, so a
// worker cut off from its coordinator keeps computing correctly, just
// colder. Transient failures are retried with backoff; with the breaker
// open the miss is immediate (no network round-trip at all).
func (c *Client) Get(key string) ([]byte, bool) {
	c.gets.Add(1)
	var data []byte
	found := false
	err := c.retry.Do(context.Background(), func() error {
		data, found = nil, false
		ctx, cancel := c.opCtx()
		defer cancel()
		req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.keyURL(key), nil)
		if err != nil {
			return err
		}
		resp, err := c.hc.Do(req)
		if err != nil {
			return err
		}
		defer resp.Body.Close()
		switch resp.StatusCode {
		case http.StatusOK:
		case http.StatusNotFound:
			// A definitive miss from a healthy coordinator: not an error,
			// not retryable, not a breaker failure.
			io.Copy(io.Discard, resp.Body)
			return nil
		default:
			io.Copy(io.Discard, resp.Body)
			return resilience.NewStatusError(resp.StatusCode, resp.Header.Get("Retry-After"))
		}
		body, err := io.ReadAll(io.LimitReader(resp.Body, maxPayload+1))
		if err != nil {
			return fmt.Errorf("httpstore: read body: %w", err)
		}
		if len(body) == 0 || len(body) > maxPayload {
			return errBadPayload
		}
		data, found = body, true
		return nil
	})
	if err != nil {
		if isResponseFailure(err) {
			c.corrupt.Add(1) // the endpoint answered but misbehaved
		}
		return nil, false
	}
	if !found {
		return nil, false
	}
	c.hits.Add(1)
	return data, true
}

// Put uploads payload under key, best-effort: every failure — after the
// retry budget, or immediately with the breaker open — is counted in
// Stats.PutErrors and swallowed, exactly like a disk-store write error.
func (c *Client) Put(key string, payload []byte) {
	c.puts.Add(1)
	err := c.retry.Do(context.Background(), func() error {
		ctx, cancel := c.opCtx()
		defer cancel()
		req, err := http.NewRequestWithContext(ctx, http.MethodPut, c.keyURL(key), bytes.NewReader(payload))
		if err != nil {
			return err
		}
		req.Header.Set("Content-Type", "application/json")
		resp, err := c.hc.Do(req)
		if err != nil {
			return err
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusNoContent && resp.StatusCode != http.StatusOK {
			return resilience.NewStatusError(resp.StatusCode, resp.Header.Get("Retry-After"))
		}
		return nil
	})
	if err != nil {
		c.putErrors.Add(1)
	}
}

// isResponseFailure distinguishes "the endpoint answered but misbehaved"
// (counted as corruption, like the old non-404 accounting) from pure
// transport failure or a breaker short-circuit (plain misses).
func isResponseFailure(err error) bool {
	if errors.Is(err, resilience.ErrCircuitOpen) {
		return false
	}
	var se *resilience.StatusError
	return errors.As(err, &se) || errors.Is(err, errBadPayload)
}

// Stats snapshots the client-side traffic counters; Corrupt counts
// responses that arrived but could not be used (server errors, oversized
// bodies) — plain 404 misses, transport failures, and breaker
// short-circuits are not corruption.
func (c *Client) Stats() store.Stats {
	return store.Stats{
		Gets:      c.gets.Load(),
		Hits:      c.hits.Load(),
		Puts:      c.puts.Load(),
		Corrupt:   c.corrupt.Load(),
		PutErrors: c.putErrors.Load(),
	}
}

// Resilience snapshots the retry and breaker counters.
func (c *Client) Resilience() ResilienceStats {
	return ResilienceStats{
		Retry:   c.retry.Stats(),
		Breaker: c.retry.Breaker().Stats(),
	}
}

// Handler serves a backend over the /v1/store/{key...} routes the Client
// speaks: GET answers 200 with the raw payload or 404 for any miss
// (including server-side corruption — the disk store already refuses to
// serve bad records), PUT stores the body and answers 204. A nil backend
// (coordinator started without -store) answers 503 so workers degrade to
// local recomputation instead of silently thinking records persisted.
func Handler(be store.Backend) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET "+pathPrefix+"{key...}", func(w http.ResponseWriter, r *http.Request) {
		if be == nil {
			http.Error(w, "no store configured", http.StatusServiceUnavailable)
			return
		}
		key := r.PathValue("key")
		data, ok := be.Get(key)
		if !ok {
			http.NotFound(w, r)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		w.Write(data)
	})
	mux.HandleFunc("PUT "+pathPrefix+"{key...}", func(w http.ResponseWriter, r *http.Request) {
		if be == nil {
			http.Error(w, "no store configured", http.StatusServiceUnavailable)
			return
		}
		key := r.PathValue("key")
		data, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxPayload))
		if err != nil {
			http.Error(w, "payload too large or unreadable", http.StatusBadRequest)
			return
		}
		if key == "" || len(data) == 0 {
			http.Error(w, "empty key or payload", http.StatusBadRequest)
			return
		}
		be.Put(key, data)
		w.WriteHeader(http.StatusNoContent)
	})
	return mux
}
