// Package httpstore is the remote arm of the pluggable store backend
// (store.Backend): a client that speaks a coordinator's /v1/store/{key}
// endpoints, and the matching HTTP handler the coordinator mounts in front
// of its local disk store. Together they let a sweep worker's persistent
// tier live on another machine — every evaluation outcome and scenario
// checkpoint a worker writes lands in the coordinator's content-addressed
// store, and warm records answer over the wire instead of recomputing.
//
// The client preserves the store contract exactly:
//
//   - Reads never fail the caller. A connection error, a non-200 status, a
//     coordinator without a store (503), or a record the coordinator's disk
//     store rejected as corrupt (404 — corruption is detected server-side
//     by the versioned key-carrying envelope) all read as a miss.
//   - Writes are best-effort and atomic: the payload travels whole in one
//     PUT body, and the coordinator's disk store does its usual temp+rename
//     write, so racing workers — which, evaluations being deterministic,
//     carry identical payloads — can only race complete records.
//
// Keys travel in the URL path, percent-escaped per segment so the literal
// '/' separators of the store's namespaces survive routing while every
// other byte (spaces, parens, '%') round-trips exactly.
package httpstore

import (
	"bytes"
	"io"
	"net/http"
	"net/url"
	"strings"
	"sync/atomic"
	"time"

	"repro/internal/store"
)

// pathPrefix is the route both ends agree on; Handler strips it, Client
// prepends it.
const pathPrefix = "/v1/store/"

// maxPayload bounds one record body on the server side. Records are small
// JSON envelopes (checkpoints, outcomes, rendered tables); anything near
// this limit is a broken or hostile client.
const maxPayload = 8 << 20

// escapeKey renders a store key as a URL path suffix: each '/'-separated
// segment is percent-escaped independently, keeping the separators literal
// so the route still looks like the key ("o/<hash>/(3, 2, 3)").
func escapeKey(key string) string {
	segs := strings.Split(key, "/")
	for i, s := range segs {
		segs[i] = url.PathEscape(s)
	}
	return strings.Join(segs, "/")
}

// Client is a store.Backend whose records live behind a coordinator's
// /v1/store endpoints. All methods are safe for concurrent use. The zero
// value is not usable; construct with New.
type Client struct {
	base string // coordinator base URL, no trailing slash
	hc   *http.Client

	gets      atomic.Int64
	hits      atomic.Int64
	puts      atomic.Int64
	corrupt   atomic.Int64 // responses that arrived but were unusable
	putErrors atomic.Int64
}

// New returns a client for the coordinator at baseURL (e.g.
// "http://coordinator:8080"). httpClient may be nil for a default with a
// conservative timeout — the backend contract demands that a hung
// coordinator degrade to misses, not wedge the sweep.
func New(baseURL string, httpClient *http.Client) *Client {
	if httpClient == nil {
		httpClient = &http.Client{Timeout: 30 * time.Second}
	}
	return &Client{base: strings.TrimRight(baseURL, "/"), hc: httpClient}
}

// Base returns the coordinator base URL the client was built with.
func (c *Client) Base() string { return c.base }

func (c *Client) keyURL(key string) string {
	return c.base + pathPrefix + escapeKey(key)
}

// Get fetches the payload stored under key. Any failure — transport error,
// non-200 status, oversized or unreadable body — reads as a miss, so a
// worker cut off from its coordinator keeps computing correctly, just
// colder.
func (c *Client) Get(key string) ([]byte, bool) {
	c.gets.Add(1)
	resp, err := c.hc.Get(c.keyURL(key))
	if err != nil {
		return nil, false
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, resp.Body)
		if resp.StatusCode != http.StatusNotFound {
			c.corrupt.Add(1) // the endpoint exists but misbehaved
		}
		return nil, false
	}
	data, err := io.ReadAll(io.LimitReader(resp.Body, maxPayload+1))
	if err != nil || len(data) == 0 || len(data) > maxPayload {
		c.corrupt.Add(1)
		return nil, false
	}
	c.hits.Add(1)
	return data, true
}

// Put uploads payload under key, best-effort: every failure is counted in
// Stats.PutErrors and swallowed, exactly like a disk-store write error.
func (c *Client) Put(key string, payload []byte) {
	c.puts.Add(1)
	req, err := http.NewRequest(http.MethodPut, c.keyURL(key), bytes.NewReader(payload))
	if err != nil {
		c.putErrors.Add(1)
		return
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := c.hc.Do(req)
	if err != nil {
		c.putErrors.Add(1)
		return
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusNoContent && resp.StatusCode != http.StatusOK {
		c.putErrors.Add(1)
	}
}

// Stats snapshots the client-side traffic counters; Corrupt counts
// responses that arrived but could not be used (server errors, oversized
// bodies) — plain 404 misses and transport failures are not corruption.
func (c *Client) Stats() store.Stats {
	return store.Stats{
		Gets:      c.gets.Load(),
		Hits:      c.hits.Load(),
		Puts:      c.puts.Load(),
		Corrupt:   c.corrupt.Load(),
		PutErrors: c.putErrors.Load(),
	}
}

// Handler serves a backend over the /v1/store/{key...} routes the Client
// speaks: GET answers 200 with the raw payload or 404 for any miss
// (including server-side corruption — the disk store already refuses to
// serve bad records), PUT stores the body and answers 204. A nil backend
// (coordinator started without -store) answers 503 so workers degrade to
// local recomputation instead of silently thinking records persisted.
func Handler(be store.Backend) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET "+pathPrefix+"{key...}", func(w http.ResponseWriter, r *http.Request) {
		if be == nil {
			http.Error(w, "no store configured", http.StatusServiceUnavailable)
			return
		}
		key := r.PathValue("key")
		data, ok := be.Get(key)
		if !ok {
			http.NotFound(w, r)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		w.Write(data)
	})
	mux.HandleFunc("PUT "+pathPrefix+"{key...}", func(w http.ResponseWriter, r *http.Request) {
		if be == nil {
			http.Error(w, "no store configured", http.StatusServiceUnavailable)
			return
		}
		key := r.PathValue("key")
		data, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxPayload))
		if err != nil {
			http.Error(w, "payload too large or unreadable", http.StatusBadRequest)
			return
		}
		if key == "" || len(data) == 0 {
			http.Error(w, "empty key or payload", http.StatusBadRequest)
			return
		}
		be.Put(key, data)
		w.WriteHeader(http.StatusNoContent)
	})
	return mux
}
