package httpstore

import (
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/chaos"
	"repro/internal/resilience"
	"repro/internal/store"
)

// fastOptions returns an Options with millisecond backoff so retry tests
// don't wait out real schedules.
func fastOptions() Options {
	return Options{
		Policy: resilience.Policy{MaxAttempts: 4, BaseDelay: time.Millisecond, MaxDelay: 4 * time.Millisecond},
	}
}

// TestGetRetriesTransient500s pins the retry loop: a store endpoint that
// 500s twice and then answers yields a hit, not a miss, with the retries
// counted.
func TestGetRetriesTransient500s(t *testing.T) {
	st, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	st.Put("k", []byte(`{"x":1}`))
	var calls atomic.Int64
	inner := Handler(st)
	hs := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) <= 2 {
			http.Error(w, "transient", http.StatusInternalServerError)
			return
		}
		inner.ServeHTTP(w, r)
	}))
	defer hs.Close()

	cl := NewWithOptions(hs.URL, fastOptions())
	data, ok := cl.Get("k")
	if !ok || string(data) != `{"x":1}` {
		t.Fatalf("Get through two 500s: ok=%v data=%s", ok, data)
	}
	if s := cl.Stats(); s.Hits != 1 || s.Corrupt != 0 {
		t.Fatalf("stats %+v", s)
	}
	if rs := cl.Resilience(); rs.Retry.Retries != 2 {
		t.Fatalf("resilience %+v, want 2 retries", rs)
	}
}

// TestPutRetriesThenLands pins the write path: transient 500s on PUT are
// retried until the record lands, with no put error counted.
func TestPutRetriesThenLands(t *testing.T) {
	st, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	var calls atomic.Int64
	inner := Handler(st)
	hs := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) <= 2 {
			http.Error(w, "transient", http.StatusInternalServerError)
			return
		}
		inner.ServeHTTP(w, r)
	}))
	defer hs.Close()

	cl := NewWithOptions(hs.URL, fastOptions())
	cl.Put("k", []byte(`{"x":1}`))
	if s := cl.Stats(); s.PutErrors != 0 {
		t.Fatalf("stats %+v", s)
	}
	if data, ok := st.Get("k"); !ok || string(data) != `{"x":1}` {
		t.Fatalf("record did not land: ok=%v data=%s", ok, data)
	}
}

// TestGet404NeverRetries pins the definitive-miss path: a 404 is a healthy
// answer, returned immediately without burning the retry budget or
// touching the breaker.
func TestGet404NeverRetries(t *testing.T) {
	var calls atomic.Int64
	hs := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		http.NotFound(w, r)
	}))
	defer hs.Close()
	cl := NewWithOptions(hs.URL, fastOptions())
	if _, ok := cl.Get("missing"); ok {
		t.Fatal("404 read as a hit")
	}
	if n := calls.Load(); n != 1 {
		t.Fatalf("404 retried: %d requests", n)
	}
	if cl.Breaker().State() != resilience.Closed {
		t.Fatal("404 tripped the breaker")
	}
	if s := cl.Stats(); s.Corrupt != 0 {
		t.Fatalf("404 counted as corruption: %+v", s)
	}
}

// TestBreakerOpenFailsFastNoStalls is the acceptance pin for degraded
// reads: once sustained failure opens the breaker, Gets return misses
// without any network round-trip — microseconds, not transport timeouts —
// and a fake-clock cooldown plus a healthy coordinator recovers the client
// through the half-open probe.
func TestBreakerOpenFailsFastNoStalls(t *testing.T) {
	st, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	st.Put("k", []byte(`{"x":1}`))
	inner := Handler(st)
	mw := chaos.NewMiddleware(inner, chaos.Config{Seed: 1})
	hs := httptest.NewServer(mw)
	defer hs.Close()

	clk := struct{ t atomic.Int64 }{}
	clk.t.Store(time.Unix(1_000_000, 0).UnixNano())
	now := func() time.Time { return time.Unix(0, clk.t.Load()) }
	br := resilience.NewBreaker(3, 5*time.Second)
	br.SetClock(now)
	cl := NewWithOptions(hs.URL, Options{
		Policy:  resilience.Policy{MaxAttempts: 1}, // isolate the breaker's behavior
		Breaker: br,
	})

	// Healthy first: a hit flows.
	if _, ok := cl.Get("k"); !ok {
		t.Fatal("healthy Get missed")
	}

	// Blackhole the coordinator: the next ops die on transport errors and
	// open the breaker after 3 consecutive failures.
	mw.Blackhole(1 << 30)
	for i := 0; i < 3; i++ {
		if _, ok := cl.Get("k"); ok {
			t.Fatal("blackholed Get reported a hit")
		}
	}
	if got := br.State(); got != resilience.Open {
		t.Fatalf("breaker %v after 3 transport failures, want open", got)
	}

	// Open breaker: misses are immediate short-circuits. No request reaches
	// the (blackholed) middleware, and the op returns far faster than any
	// transport timeout could.
	before := mw.Stats().Ops
	start := time.Now()
	const shortCircuited = 50
	for i := 0; i < shortCircuited; i++ {
		if _, ok := cl.Get("k"); ok {
			t.Fatal("open-breaker Get reported a hit")
		}
	}
	elapsed := time.Since(start)
	if after := mw.Stats().Ops; after != before {
		t.Fatalf("open breaker still sent %d requests", after-before)
	}
	if avg := elapsed / shortCircuited; avg > 5*time.Millisecond {
		t.Fatalf("open-breaker miss averaged %v, want microseconds", avg)
	}
	if rs := cl.Resilience(); rs.Retry.ShortCircuits != shortCircuited {
		t.Fatalf("resilience %+v, want %d short circuits", rs, shortCircuited)
	}

	// Heal the coordinator and advance the fake clock past the cooldown:
	// the half-open probe goes through and closes the breaker.
	mw.Blackhole(0)
	clk.t.Add(int64(5 * time.Second))
	if data, ok := cl.Get("k"); !ok || string(data) != `{"x":1}` {
		t.Fatalf("post-recovery Get: ok=%v data=%s", ok, data)
	}
	if got := br.State(); got != resilience.Closed {
		t.Fatalf("breaker %v after successful probe, want closed", got)
	}
}

// TestBreakerHalfOpenProbeFailureStaysOpen drives the unhappy probe path
// over a real socket: cooldown elapses, the probe dies on the still-dead
// coordinator, and the breaker re-opens for a fresh cooldown.
func TestBreakerHalfOpenProbeFailureStaysOpen(t *testing.T) {
	hs := httptest.NewServer(Handler(nil))
	hs.Close() // dead from the start

	clk := struct{ t atomic.Int64 }{}
	clk.t.Store(time.Unix(1_000_000, 0).UnixNano())
	br := resilience.NewBreaker(1, time.Second)
	br.SetClock(func() time.Time { return time.Unix(0, clk.t.Load()) })
	cl := NewWithOptions(hs.URL, Options{
		Policy:  resilience.Policy{MaxAttempts: 1},
		Breaker: br,
	})

	cl.Get("k") // transport failure opens the breaker (threshold 1)
	if br.State() != resilience.Open {
		t.Fatal("not open")
	}
	clk.t.Add(int64(time.Second))
	cl.Get("k") // half-open probe fails against the dead socket
	if br.State() != resilience.Open {
		t.Fatal("failed probe did not re-open")
	}
	gets := cl.Stats().Gets
	cl.Get("k") // still open: short-circuit
	if rs := cl.Resilience(); rs.Retry.ShortCircuits == 0 {
		t.Fatalf("no short circuit after failed probe: %+v (gets %d)", rs, gets)
	}
}

// TestPerOpTimeoutReplacesClientWide pins the deadline shape: a coordinator
// that hangs longer than OpTimeout costs one OpTimeout per attempt, not a
// 30-second client-wide stall, and the hang is retried as transient.
func TestPerOpTimeoutReplacesClientWide(t *testing.T) {
	release := make(chan struct{})
	defer close(release)
	var calls atomic.Int64
	hs := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		select {
		case <-release:
		case <-r.Context().Done():
		}
	}))
	defer hs.Close()

	cl := NewWithOptions(hs.URL, Options{
		OpTimeout: 20 * time.Millisecond,
		Policy:    resilience.Policy{MaxAttempts: 2, BaseDelay: time.Millisecond, MaxDelay: 2 * time.Millisecond},
	})
	start := time.Now()
	_, ok := cl.Get("k")
	elapsed := time.Since(start)
	if ok {
		t.Fatal("hung Get reported a hit")
	}
	if calls.Load() != 2 {
		t.Fatalf("hung Get made %d attempts, want 2 (timeout is per-op, retried)", calls.Load())
	}
	if elapsed > 2*time.Second {
		t.Fatalf("hung Get took %v; per-op deadlines should bound it tightly", elapsed)
	}
}

// TestOperationContextUnaffectedByRetries sanity-checks that Do's internal
// background context never cancels user-visible behavior: a healthy
// backend round-trips normally through the resilient client.
func TestOperationContextUnaffectedByRetries(t *testing.T) {
	cl, _ := testBackend(t)
	cl.Put("k", []byte(`{"ok":true}`))
	if data, ok := cl.Get("k"); !ok || string(data) != `{"ok":true}` {
		t.Fatalf("round trip: ok=%v data=%s", ok, data)
	}
	if rs := cl.Resilience(); rs.Retry.Retries != 0 || rs.Breaker.State != "closed" {
		t.Fatalf("healthy traffic produced resilience noise: %+v", rs)
	}
}
