// Package store is the persistent result tier of the evaluation pipeline:
// a content-addressed, disk-backed key/value store for the deterministic
// evaluation records produced by the sweep engine (timing, full-design, and
// joint cache-partition outcomes, plus per-scenario checkpoint records and
// rendered tables).
//
// Every record is addressed by the same canonical string keys the in-memory
// evalcache layer uses (schedule and joint-point keys prefixed by an
// evaluation-signature namespace, see internal/engine), hashed to a sharded
// directory layout: root/<hh>/<sha256(key)>.json where hh is the first hash
// byte. Records are versioned JSON envelopes carrying the full key, so a
// hash collision, a stale schema, or a corrupt file is detected on read.
//
// Key invariants:
//
//   - Reads never fail the caller: a missing, truncated, garbled,
//     version-mismatched, or key-mismatched record reads as a miss and the
//     caller recomputes. Corruption is counted (Stats.Corrupt), never
//     served and never fatal.
//   - Writes are atomic: records are written to a temp file in the target
//     shard directory and renamed into place, so concurrent writers — even
//     separate processes sharing one store directory — can only race
//     whole records, and every evaluation is deterministic, so racing
//     writers write identical payloads. A reader sees either a complete
//     record or none.
//   - The store is strictly a cache of recomputable results: deleting any
//     file (or the whole root) is always safe.
package store

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync/atomic"
	"time"
)

// Version is the record-envelope schema version. Bump it whenever the
// envelope layout or the semantics of stored payloads change incompatibly;
// old records then read as misses and are recomputed.
const Version = 1

// TempMaxAge is how old an orphaned write-temporary (.tmp-*) must be before
// Open garbage-collects it. A temp file younger than this may belong to an
// in-flight Put of a live process sharing the directory and is left alone;
// an older one was leaked by a process that died between CreateTemp and
// Rename and is safe to delete (the record it was carrying either landed
// under its final name or will be recomputed).
const TempMaxAge = time.Hour

// Backend is the pluggable store contract of the distributed sweep fabric:
// a key/value byte store with best-effort writes, miss-on-any-failure
// reads, and traffic counters. The disk Store implements it locally;
// internal/store/httpstore implements it against a remote coordinator's
// /v1/store/{key} endpoints, so a worker's persistent tier can live on
// another machine. It is a superset of evalcache.Backend — any Backend
// plugs directly into the two-tier evaluation caches and the engine's
// checkpoint layer.
type Backend interface {
	// Get returns the payload stored under key. ok=false for any reason —
	// absent, corrupt, unreachable — routes the caller to recomputation.
	Get(key string) ([]byte, bool)
	// Put persists payload under key, best-effort: failures are counted,
	// never surfaced.
	Put(key string, payload []byte)
	// Stats snapshots the traffic counters.
	Stats() Stats
}

// envelope is the on-disk record frame. Payload is the caller's JSON,
// stored verbatim; Key lets Get reject hash collisions and files that were
// moved or corrupted into another record's address.
type envelope struct {
	V       int             `json:"v"`
	Key     string          `json:"key"`
	Payload json.RawMessage `json:"payload"`
}

// Stats counts store traffic. Hits+misses refer to Get calls; Corrupt
// counts records that existed but were rejected (bad JSON, wrong version,
// wrong key); PutErrors counts best-effort writes that failed.
type Stats struct {
	Gets      int64 `json:"gets"`
	Hits      int64 `json:"hits"`
	Puts      int64 `json:"puts"`
	Corrupt   int64 `json:"corrupt"`
	PutErrors int64 `json:"put_errors"`
}

// Store is a disk-backed Backend (see Backend and
// internal/engine/evalcache.Backend). All methods are safe for concurrent
// use by multiple goroutines and multiple processes sharing one root
// directory.
type Store struct {
	root string

	gets      atomic.Int64
	hits      atomic.Int64
	puts      atomic.Int64
	corrupt   atomic.Int64
	putErrors atomic.Int64

	// records approximates the number of record files on disk: seeded by
	// Open's single startup walk, incremented by Puts that create a new
	// file. Cross-process races and failed renames can drift it by a few
	// records; it exists so observability endpoints never pay Len's
	// O(records) walk on a hot path.
	records atomic.Int64
}

// Open creates (if necessary) and opens a store rooted at dir. Opening
// performs one maintenance walk over the shard directories: it counts the
// existing records (seeding ApproxLen) and sweeps write-temporaries older
// than TempMaxAge that a crashed writer leaked between CreateTemp and
// Rename. Fresh temporaries — possibly an in-flight Put of another live
// process — are left untouched.
func Open(dir string) (*Store, error) {
	if dir == "" {
		return nil, fmt.Errorf("store: empty directory")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	s := &Store{root: dir}
	s.records.Store(s.sweep(time.Now()))
	return s, nil
}

// sweep is Open's maintenance walk: it returns the record count and removes
// stale temporaries (older than TempMaxAge relative to now). All I/O is
// best-effort — an unreadable directory or file simply contributes nothing.
func (s *Store) sweep(now time.Time) int64 {
	n := int64(0)
	entries, err := os.ReadDir(s.root)
	if err != nil {
		return 0
	}
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		files, err := os.ReadDir(filepath.Join(s.root, e.Name()))
		if err != nil {
			continue
		}
		for _, f := range files {
			switch {
			case filepath.Ext(f.Name()) == ".json":
				n++
			case strings.HasPrefix(f.Name(), ".tmp-"):
				info, err := f.Info()
				if err != nil {
					continue
				}
				if now.Sub(info.ModTime()) > TempMaxAge {
					os.Remove(filepath.Join(s.root, e.Name(), f.Name()))
				}
			}
		}
	}
	return n
}

// Root returns the store's root directory.
func (s *Store) Root() string { return s.root }

// path maps a key to its content address: shard directory named by the
// first hash byte, file named by the full hash.
func (s *Store) path(key string) (dir, file string) {
	sum := sha256.Sum256([]byte(key))
	h := hex.EncodeToString(sum[:])
	dir = filepath.Join(s.root, h[:2])
	return dir, filepath.Join(dir, h+".json")
}

// Get returns the payload stored under key. Any failure to produce a valid
// record — absent file, unreadable file, malformed envelope, version or key
// mismatch — reads as a miss; the caller recomputes and may re-Put.
func (s *Store) Get(key string) ([]byte, bool) {
	s.gets.Add(1)
	_, file := s.path(key)
	data, err := os.ReadFile(file)
	if err != nil {
		return nil, false // absent (or unreadable): plain miss
	}
	var env envelope
	if err := json.Unmarshal(data, &env); err != nil || env.V != Version || env.Key != key {
		s.corrupt.Add(1)
		return nil, false
	}
	s.hits.Add(1)
	return env.Payload, true
}

// Put persists payload under key. Writes are best-effort: persistence
// failures are counted in Stats.PutErrors but never surfaced, because the
// store is an optimization layer and the caller already holds the computed
// value. The write is atomic (temp file + rename), so concurrent Puts of
// the same key — which, evaluations being deterministic, carry identical
// payloads — cannot interleave partial records.
func (s *Store) Put(key string, payload []byte) {
	s.puts.Add(1)
	env := envelope{V: Version, Key: key, Payload: json.RawMessage(payload)}
	data, err := json.Marshal(env)
	if err != nil {
		s.putErrors.Add(1)
		return
	}
	dir, file := s.path(key)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		s.putErrors.Add(1)
		return
	}
	tmp, err := os.CreateTemp(dir, ".tmp-*")
	if err != nil {
		s.putErrors.Add(1)
		return
	}
	_, werr := tmp.Write(data)
	cerr := tmp.Close()
	if werr != nil || cerr != nil {
		os.Remove(tmp.Name())
		s.putErrors.Add(1)
		return
	}
	// Overwrites keep the record count flat; only a rename that creates the
	// file increments it. Two processes racing the same fresh key can both
	// observe "new" and drift the approximation by one — acceptable for an
	// observability counter, and they wrote identical records either way.
	_, statErr := os.Stat(file)
	created := os.IsNotExist(statErr)
	if err := os.Rename(tmp.Name(), file); err != nil {
		os.Remove(tmp.Name())
		s.putErrors.Add(1)
		return
	}
	if created {
		s.records.Add(1)
	}
}

// ApproxLen returns the approximate number of records on disk: the count
// seeded by Open's startup walk plus the file-creating Puts of this handle.
// It is O(1), suitable for polling observability endpoints (/statsz);
// writes by other processes after Open are not reflected. Len is the exact,
// O(records) offline variant.
func (s *Store) ApproxLen() int64 { return s.records.Load() }

// Len walks the store and returns the exact number of record files on
// disk. It is an offline helper (O(records), two directory levels): the
// serving path must never call it — cmd/served polls ApproxLen instead, so
// a warm store cannot turn /statsz into a self-inflicted directory scan.
func (s *Store) Len() int {
	n := 0
	entries, err := os.ReadDir(s.root)
	if err != nil {
		return 0
	}
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		files, err := os.ReadDir(filepath.Join(s.root, e.Name()))
		if err != nil {
			continue
		}
		for _, f := range files {
			if filepath.Ext(f.Name()) == ".json" {
				n++
			}
		}
	}
	return n
}

// Stats snapshots the traffic counters.
func (s *Store) Stats() Stats {
	return Stats{
		Gets:      s.gets.Load(),
		Hits:      s.hits.Load(),
		Puts:      s.puts.Load(),
		Corrupt:   s.corrupt.Load(),
		PutErrors: s.putErrors.Load(),
	}
}
