// Package store is the persistent result tier of the evaluation pipeline:
// a content-addressed, disk-backed key/value store for the deterministic
// evaluation records produced by the sweep engine (timing, full-design, and
// joint cache-partition outcomes, plus per-scenario checkpoint records and
// rendered tables).
//
// Every record is addressed by the same canonical string keys the in-memory
// evalcache layer uses (schedule and joint-point keys prefixed by an
// evaluation-signature namespace, see internal/engine), hashed to a sharded
// directory layout: root/<hh>/<sha256(key)>.json where hh is the first hash
// byte. Records are versioned JSON envelopes carrying the full key, so a
// hash collision, a stale schema, or a corrupt file is detected on read.
//
// Key invariants:
//
//   - Reads never fail the caller: a missing, truncated, garbled,
//     version-mismatched, or key-mismatched record reads as a miss and the
//     caller recomputes. Corruption is counted (Stats.Corrupt), never
//     served and never fatal.
//   - Writes are atomic: records are written to a temp file in the target
//     shard directory and renamed into place, so concurrent writers — even
//     separate processes sharing one store directory — can only race
//     whole records, and every evaluation is deterministic, so racing
//     writers write identical payloads. A reader sees either a complete
//     record or none.
//   - The store is strictly a cache of recomputable results: deleting any
//     file (or the whole root) is always safe.
package store

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"strings"
	"sync/atomic"
	"time"
)

// Version is the record-envelope schema version written by Put. v2 adds a
// sha256 payload checksum so a bit-flip that still parses as JSON cannot be
// served as a valid record. The v1 read path is retained — checksums were
// additive, v1 payloads are otherwise identical — so store directories
// written before the bump stay readable bit-for-bit instead of reading as
// misses.
const (
	Version       = 2
	legacyVersion = 1
)

// quarantineDir is the shard-level directory Scrub's repair mode moves bad
// records into. Its name can never collide with a shard directory (those
// are two hex digits), and every walk skips it.
const quarantineDir = "quarantine"

// TempMaxAge is how old an orphaned write-temporary (.tmp-*) must be before
// Open garbage-collects it. A temp file younger than this may belong to an
// in-flight Put of a live process sharing the directory and is left alone;
// an older one was leaked by a process that died between CreateTemp and
// Rename and is safe to delete (the record it was carrying either landed
// under its final name or will be recomputed).
const TempMaxAge = time.Hour

// Backend is the pluggable store contract of the distributed sweep fabric:
// a key/value byte store with best-effort writes, miss-on-any-failure
// reads, and traffic counters. The disk Store implements it locally;
// internal/store/httpstore implements it against a remote coordinator's
// /v1/store/{key} endpoints, so a worker's persistent tier can live on
// another machine. It is a superset of evalcache.Backend — any Backend
// plugs directly into the two-tier evaluation caches and the engine's
// checkpoint layer.
type Backend interface {
	// Get returns the payload stored under key. ok=false for any reason —
	// absent, corrupt, unreachable — routes the caller to recomputation.
	Get(key string) ([]byte, bool)
	// Put persists payload under key, best-effort: failures are counted,
	// never surfaced.
	Put(key string, payload []byte)
	// Stats snapshots the traffic counters.
	Stats() Stats
}

// envelope is the on-disk record frame. Payload is the caller's JSON in
// compact form; Key lets Get reject hash collisions and files that were
// moved or corrupted into another record's address; Sum (v2) is the hex
// sha256 of the exact payload bytes, so Get can reject a payload whose bits
// rotted but still parse as JSON. v1 envelopes have no Sum.
type envelope struct {
	V       int             `json:"v"`
	Key     string          `json:"key"`
	Sum     string          `json:"sum,omitempty"`
	Payload json.RawMessage `json:"payload"`
}

// payloadSum is the v2 checksum: hex sha256 over the payload bytes exactly
// as they sit inside the envelope (compact JSON).
func payloadSum(payload []byte) string {
	sum := sha256.Sum256(payload)
	return hex.EncodeToString(sum[:])
}

// Stats counts store traffic. Hits+misses refer to Get calls; Corrupt
// counts records that existed but were rejected (bad JSON, wrong version,
// wrong key, checksum mismatch); PutErrors counts best-effort writes that
// failed; TempsRemoved counts the orphaned write-temporaries Open's sweep
// garbage-collected; Fsyncs counts the fsync calls of a SyncPuts store.
type Stats struct {
	Gets         int64 `json:"gets"`
	Hits         int64 `json:"hits"`
	Puts         int64 `json:"puts"`
	Corrupt      int64 `json:"corrupt"`
	PutErrors    int64 `json:"put_errors"`
	TempsRemoved int64 `json:"temps_removed"`
	Fsyncs       int64 `json:"fsyncs"`
}

// Store is a disk-backed Backend (see Backend and
// internal/engine/evalcache.Backend). All methods are safe for concurrent
// use by multiple goroutines and multiple processes sharing one root
// directory.
type Store struct {
	root     string
	syncPuts bool
	logf     func(format string, args ...any) // put-error reporter, injectable in tests

	gets      atomic.Int64
	hits      atomic.Int64
	puts      atomic.Int64
	corrupt   atomic.Int64
	putErrors atomic.Int64

	tempsRemoved atomic.Int64
	fsyncs       atomic.Int64

	// errLogged latches after the first logged put error so a read-only or
	// full disk produces one diagnostic line per handle, not one per write.
	errLogged atomic.Bool

	// records approximates the number of record files on disk: seeded by
	// Open's single startup walk, incremented by Puts that create a new
	// file. Cross-process races and failed renames can drift it by a few
	// records; it exists so observability endpoints never pay Len's
	// O(records) walk on a hot path.
	records atomic.Int64
}

// Options tunes OpenWithOptions beyond the defaults Open uses.
type Options struct {
	// SyncPuts makes every Put fsync the record before renaming it into
	// place (and fsync the shard directory after): a record visible under
	// its final name survives power loss, at roughly one disk flush per
	// write. Off by default — the store is a cache of recomputable results,
	// and the atomic rename already guarantees no torn records; turn it on
	// when recomputation is expensive enough that machine crashes must not
	// shed warm state.
	SyncPuts bool
}

// Open creates (if necessary) and opens a store rooted at dir with default
// options. Opening performs one maintenance walk over the shard
// directories: it counts the existing records (seeding ApproxLen) and
// sweeps write-temporaries older than TempMaxAge that a crashed writer
// leaked between CreateTemp and Rename. Fresh temporaries — possibly an
// in-flight Put of another live process — are left untouched.
func Open(dir string) (*Store, error) {
	return OpenWithOptions(dir, Options{})
}

// OpenWithOptions is Open with explicit Options.
func OpenWithOptions(dir string, o Options) (*Store, error) {
	if dir == "" {
		return nil, fmt.Errorf("store: empty directory")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	s := &Store{root: dir, syncPuts: o.SyncPuts, logf: log.Printf}
	n, removed := s.sweep(time.Now())
	s.records.Store(n)
	s.tempsRemoved.Store(removed)
	return s, nil
}

// sweep is Open's maintenance walk: it returns the record count and the
// number of stale temporaries (older than TempMaxAge relative to now) it
// removed. All I/O is best-effort — an unreadable directory or file simply
// contributes nothing.
func (s *Store) sweep(now time.Time) (records, removed int64) {
	entries, err := os.ReadDir(s.root)
	if err != nil {
		return 0, 0
	}
	for _, e := range entries {
		if !e.IsDir() || e.Name() == quarantineDir {
			continue
		}
		files, err := os.ReadDir(filepath.Join(s.root, e.Name()))
		if err != nil {
			continue
		}
		for _, f := range files {
			switch {
			case filepath.Ext(f.Name()) == ".json":
				records++
			case strings.HasPrefix(f.Name(), ".tmp-"):
				info, err := f.Info()
				if err != nil {
					continue
				}
				if now.Sub(info.ModTime()) > TempMaxAge {
					if os.Remove(filepath.Join(s.root, e.Name(), f.Name())) == nil {
						removed++
					}
				}
			}
		}
	}
	return records, removed
}

// Root returns the store's root directory.
func (s *Store) Root() string { return s.root }

// path maps a key to its content address: shard directory named by the
// first hash byte, file named by the full hash.
func (s *Store) path(key string) (dir, file string) {
	sum := sha256.Sum256([]byte(key))
	h := hex.EncodeToString(sum[:])
	dir = filepath.Join(s.root, h[:2])
	return dir, filepath.Join(dir, h+".json")
}

// Get returns the payload stored under key. Any failure to produce a valid
// record — absent file, unreadable file, malformed envelope, version or key
// mismatch, payload checksum mismatch — reads as a miss; the caller
// recomputes and may re-Put. Both envelope versions are served: v1 on
// parse + key checks alone (it carries no checksum), v2 only when the
// payload hashes to its recorded sum.
func (s *Store) Get(key string) ([]byte, bool) {
	s.gets.Add(1)
	_, file := s.path(key)
	data, err := os.ReadFile(file)
	if err != nil {
		return nil, false // absent (or unreadable): plain miss
	}
	var env envelope
	if err := json.Unmarshal(data, &env); err != nil || env.Key != key {
		s.corrupt.Add(1)
		return nil, false
	}
	switch env.V {
	case legacyVersion:
		// Pre-checksum record: trust the frame checks, exactly as before.
	case Version:
		if payloadSum(env.Payload) != env.Sum {
			s.corrupt.Add(1)
			return nil, false
		}
	default:
		s.corrupt.Add(1)
		return nil, false
	}
	s.hits.Add(1)
	return env.Payload, true
}

// putError counts one failed best-effort write, logging the first failure a
// handle sees: PutErrors alone has proven too quiet — a read-only or full
// disk silently degraded the store into pure recomputation.
func (s *Store) putError(key string, err error) {
	s.putErrors.Add(1)
	if s.errLogged.CompareAndSwap(false, true) && s.logf != nil {
		s.logf("store: put %q failed (first failure on this handle; later ones only counted): %v", key, err)
	}
}

// Put persists payload under key. Writes are best-effort: persistence
// failures are counted in Stats.PutErrors (and the first one per handle is
// logged) but never surfaced, because the store is an optimization layer
// and the caller already holds the computed value. The write is atomic
// (temp file + rename), so concurrent Puts of the same key — which,
// evaluations being deterministic, carry identical payloads — cannot
// interleave partial records.
func (s *Store) Put(key string, payload []byte) {
	s.puts.Add(1)
	// Compact the payload first and checksum the compacted bytes: those are
	// exactly the bytes the envelope embeds (the encoder below does not
	// re-escape them) and exactly the bytes a future Get unmarshals and
	// re-hashes. Hashing the caller's uncompacted form instead would make
	// the checksum depend on formatting that is not stored.
	var compact bytes.Buffer
	if err := json.Compact(&compact, payload); err != nil {
		s.putError(key, fmt.Errorf("payload not valid JSON: %w", err))
		return
	}
	env := envelope{
		V:       Version,
		Key:     key,
		Sum:     payloadSum(compact.Bytes()),
		Payload: json.RawMessage(compact.Bytes()),
	}
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	// No HTML escaping: Marshal would rewrite <, > and & inside the payload
	// into \u-escapes, storing bytes that no longer hash to Sum.
	enc.SetEscapeHTML(false)
	if err := enc.Encode(env); err != nil {
		s.putError(key, err)
		return
	}
	dir, file := s.path(key)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		s.putError(key, err)
		return
	}
	tmp, err := os.CreateTemp(dir, ".tmp-*")
	if err != nil {
		s.putError(key, err)
		return
	}
	_, werr := tmp.Write(buf.Bytes())
	var serr error
	if s.syncPuts && werr == nil {
		// Flush record bytes before the rename publishes the name; the
		// directory fsync after the rename makes the name itself durable.
		serr = tmp.Sync()
		if serr == nil {
			s.fsyncs.Add(1)
		}
	}
	cerr := tmp.Close()
	if werr != nil || serr != nil || cerr != nil {
		os.Remove(tmp.Name())
		s.putError(key, fmt.Errorf("write temp: w=%v s=%v c=%v", werr, serr, cerr))
		return
	}
	// Overwrites keep the record count flat; only a rename that creates the
	// file increments it. Two processes racing the same fresh key can both
	// observe "new" and drift the approximation by one — acceptable for an
	// observability counter, and they wrote identical records either way.
	_, statErr := os.Stat(file)
	created := os.IsNotExist(statErr)
	if err := os.Rename(tmp.Name(), file); err != nil {
		os.Remove(tmp.Name())
		s.putError(key, err)
		return
	}
	if created {
		s.records.Add(1)
	}
	if s.syncPuts {
		if d, err := os.Open(dir); err == nil {
			if d.Sync() == nil {
				s.fsyncs.Add(1)
			}
			d.Close()
		}
	}
}

// ApproxLen returns the approximate number of records on disk: the count
// seeded by Open's startup walk plus the file-creating Puts of this handle.
// It is O(1), suitable for polling observability endpoints (/statsz);
// writes by other processes after Open are not reflected. Len is the exact,
// O(records) offline variant.
func (s *Store) ApproxLen() int64 { return s.records.Load() }

// Len walks the store and returns the exact number of record files on
// disk. It is an offline helper (O(records), two directory levels): the
// serving path must never call it — cmd/served polls ApproxLen instead, so
// a warm store cannot turn /statsz into a self-inflicted directory scan.
func (s *Store) Len() int {
	n := 0
	entries, err := os.ReadDir(s.root)
	if err != nil {
		return 0
	}
	for _, e := range entries {
		if !e.IsDir() || e.Name() == quarantineDir {
			continue
		}
		files, err := os.ReadDir(filepath.Join(s.root, e.Name()))
		if err != nil {
			continue
		}
		for _, f := range files {
			if filepath.Ext(f.Name()) == ".json" {
				n++
			}
		}
	}
	return n
}

// Stats snapshots the traffic counters.
func (s *Store) Stats() Stats {
	return Stats{
		Gets:         s.gets.Load(),
		Hits:         s.hits.Load(),
		Puts:         s.puts.Load(),
		Corrupt:      s.corrupt.Load(),
		PutErrors:    s.putErrors.Load(),
		TempsRemoved: s.tempsRemoved.Load(),
		Fsyncs:       s.fsyncs.Load(),
	}
}
