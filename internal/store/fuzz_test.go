package store

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

// FuzzEnvelopeDecode throws hostile on-disk bytes at the read path: Get
// must never panic, anything invalid must read as a miss, and anything it
// does accept must survive a re-Put/re-Get round trip. Seeds cover the two
// live envelope versions, truncation, and binary garbage; the committed
// corpus under testdata/fuzz extends them with coverage-found shapes.
func FuzzEnvelopeDecode(f *testing.F) {
	const key = "fuzz-key"
	f.Add([]byte(`{"v":1,"key":"fuzz-key","payload":{"x":1}}`))
	f.Add([]byte(`{"v":2,"key":"fuzz-key","sum":"deadbeef","payload":{"x":1}}`))
	f.Add([]byte(`{"v":2,"key":"fuzz-key","sum":"`))
	f.Add([]byte("\x00\xff\xfe garbage"))
	f.Add([]byte(`{"v":9,"key":"fuzz-key","payload":[1,2,`))
	// A checksum-valid v2 record, exactly as Put writes it.
	{
		payload := []byte(`{"x":1}`)
		env := envelope{V: Version, Key: key, Sum: payloadSum(payload), Payload: payload}
		var buf bytes.Buffer
		enc := json.NewEncoder(&buf)
		enc.SetEscapeHTML(false)
		if err := enc.Encode(env); err != nil {
			f.Fatal(err)
		}
		f.Add(buf.Bytes())
	}

	f.Fuzz(func(t *testing.T, data []byte) {
		s, err := Open(t.TempDir())
		if err != nil {
			t.Fatal(err)
		}
		path := recordPath(t, s, key)
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		got, ok := s.Get(key) // must not panic, whatever the bytes
		if !ok {
			// Invalid reads as a miss; the degrade contract also promises a
			// recompute-and-overwrite heals the address.
			s.Put(key, []byte(`{"healed":true}`))
			if healed, ok := s.Get(key); !ok || !bytes.Equal(healed, []byte(`{"healed":true}`)) {
				t.Fatalf("re-Put did not heal a rejected record: ok=%v payload=%s", ok, healed)
			}
			return
		}
		// Accepted payloads round-trip: what Get served, Put can persist and
		// Get serves again, bit-identical modulo JSON compaction. An empty
		// payload (a legal v1 envelope with the field absent) is the one
		// accepted shape Put cannot re-store — nothing to round-trip.
		if len(got) == 0 {
			return
		}
		s.Put(key, got)
		again, ok := s.Get(key)
		if !ok {
			t.Fatalf("accepted payload %q failed to re-Put", got)
		}
		var want bytes.Buffer
		if err := json.Compact(&want, got); err != nil {
			t.Fatalf("Get served a non-JSON payload %q: %v", got, err)
		}
		if !bytes.Equal(again, want.Bytes()) {
			t.Fatalf("round trip changed payload:\n got %s\nwant %s", again, want.Bytes())
		}
	})
}
