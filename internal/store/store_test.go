package store

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"
)

func TestRoundTrip(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Get("absent"); ok {
		t.Fatal("Get of absent key reported a hit")
	}
	payload := []byte(`{"pall_bits":123,"feasible":true}`)
	s.Put("k1", payload)
	got, ok := s.Get("k1")
	if !ok {
		t.Fatal("Get after Put missed")
	}
	if !bytes.Equal(got, payload) {
		t.Fatalf("payload mismatch: got %s want %s", got, payload)
	}
	st := s.Stats()
	if st.Hits != 1 || st.Gets != 2 || st.Puts != 1 || st.Corrupt != 0 || st.PutErrors != 0 {
		t.Fatalf("unexpected stats %+v", st)
	}
	if s.Len() != 1 {
		t.Fatalf("Len = %d, want 1", s.Len())
	}
}

func TestShardedLayout(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	key := "layout-key"
	s.Put(key, []byte(`1`))
	sum := sha256.Sum256([]byte(key))
	h := hex.EncodeToString(sum[:])
	want := filepath.Join(dir, h[:2], h+".json")
	if _, err := os.Stat(want); err != nil {
		t.Fatalf("record not at content address %s: %v", want, err)
	}
}

// recordPath locates the on-disk file of a key for corruption tests.
func recordPath(t *testing.T, s *Store, key string) string {
	t.Helper()
	sum := sha256.Sum256([]byte(key))
	h := hex.EncodeToString(sum[:])
	return filepath.Join(s.Root(), h[:2], h+".json")
}

func TestCorruptionReadsAsMiss(t *testing.T) {
	cases := []struct {
		name    string
		corrupt func(t *testing.T, path, key string)
	}{
		{"garbage", func(t *testing.T, path, key string) {
			if err := os.WriteFile(path, []byte("\x00\xffnot json at all"), 0o644); err != nil {
				t.Fatal(err)
			}
		}},
		{"truncated", func(t *testing.T, path, key string) {
			data, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(path, data[:len(data)/2], 0o644); err != nil {
				t.Fatal(err)
			}
		}},
		{"empty", func(t *testing.T, path, key string) {
			if err := os.WriteFile(path, nil, 0o644); err != nil {
				t.Fatal(err)
			}
		}},
		{"version-mismatch", func(t *testing.T, path, key string) {
			rec := fmt.Sprintf(`{"v":%d,"key":%q,"payload":{"x":1}}`, Version+1, key)
			if err := os.WriteFile(path, []byte(rec), 0o644); err != nil {
				t.Fatal(err)
			}
		}},
		{"key-mismatch", func(t *testing.T, path, key string) {
			rec := fmt.Sprintf(`{"v":%d,"key":"some-other-key","payload":{"x":1}}`, Version)
			if err := os.WriteFile(path, []byte(rec), 0o644); err != nil {
				t.Fatal(err)
			}
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s, err := Open(t.TempDir())
			if err != nil {
				t.Fatal(err)
			}
			key := "victim-" + tc.name
			s.Put(key, []byte(`{"x":1}`))
			tc.corrupt(t, recordPath(t, s, key), key)
			if _, ok := s.Get(key); ok {
				t.Fatal("corrupt record served as a hit")
			}
			if st := s.Stats(); st.Corrupt != 1 {
				t.Fatalf("Corrupt = %d, want 1 (stats %+v)", st.Corrupt, st)
			}
			// The degrade path: recompute and overwrite heals the record.
			s.Put(key, []byte(`{"x":2}`))
			got, ok := s.Get(key)
			if !ok || !bytes.Equal(got, []byte(`{"x":2}`)) {
				t.Fatalf("re-Put did not heal the record: ok=%v payload=%s", ok, got)
			}
		})
	}
}

func TestConcurrentWriters(t *testing.T) {
	dir := t.TempDir()
	// Two independent Store handles on one directory emulate separate
	// processes (e.g. two sweep shards) sharing a store.
	a, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	const (
		writers = 8
		keys    = 32
	)
	payload := func(k int) []byte { return []byte(fmt.Sprintf(`{"k":%d}`, k)) }
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		st := a
		if w%2 == 1 {
			st = b
		}
		wg.Add(1)
		go func(st *Store, w int) {
			defer wg.Done()
			for k := 0; k < keys; k++ {
				// Deterministic evaluations: every writer of a key writes
				// the same payload, like racing sweep shards would.
				st.Put(fmt.Sprintf("key-%d", k), payload(k))
				if data, ok := st.Get(fmt.Sprintf("key-%d", k)); ok {
					if !bytes.Equal(data, payload(k)) {
						t.Errorf("writer %d read torn/foreign record for key-%d: %s", w, k, data)
					}
				}
			}
		}(st, w)
	}
	wg.Wait()
	for k := 0; k < keys; k++ {
		data, ok := a.Get(fmt.Sprintf("key-%d", k))
		if !ok || !bytes.Equal(data, payload(k)) {
			t.Fatalf("key-%d not intact after concurrent writers: ok=%v payload=%s", k, ok, data)
		}
	}
	if st := a.Stats(); st.Corrupt != 0 {
		t.Fatalf("concurrent writers produced %d corrupt reads", st.Corrupt)
	}
	// No stray temp files left behind.
	err = filepath.WalkDir(dir, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() && filepath.Ext(path) != ".json" {
			t.Errorf("stray non-record file %s", path)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestOpenSweepsStaleTemps pins the crash-leak repair: a temp file orphaned
// by a writer that died between CreateTemp and Rename is removed by the
// next Open once it ages past TempMaxAge, while a fresh temp — possibly an
// in-flight Put of a live sibling process — survives, as do real records.
func TestOpenSweepsStaleTemps(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	s.Put("kept-key", []byte(`{"x":1}`))
	shard := filepath.Dir(recordPath(t, s, "kept-key"))

	stale := filepath.Join(shard, ".tmp-orphan")
	if err := os.WriteFile(stale, []byte("partial"), 0o644); err != nil {
		t.Fatal(err)
	}
	old := time.Now().Add(-2 * TempMaxAge)
	if err := os.Chtimes(stale, old, old); err != nil {
		t.Fatal(err)
	}
	fresh := filepath.Join(shard, ".tmp-inflight")
	if err := os.WriteFile(fresh, []byte("partial"), 0o644); err != nil {
		t.Fatal(err)
	}

	if _, err := Open(dir); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(stale); !os.IsNotExist(err) {
		t.Errorf("stale temp survived Open: stat err %v", err)
	}
	if _, err := os.Stat(fresh); err != nil {
		t.Errorf("fresh temp removed by Open: %v", err)
	}
	if _, err := os.Stat(recordPath(t, s, "kept-key")); err != nil {
		t.Errorf("record removed by Open: %v", err)
	}
}

// TestApproxLen pins the cheap record counter: seeded by Open's walk,
// incremented only by file-creating Puts, flat across overwrites, and in
// agreement with the exact Len for a single-writer store.
func TestApproxLen(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if got := s.ApproxLen(); got != 0 {
		t.Fatalf("fresh store ApproxLen = %d, want 0", got)
	}
	for i := 0; i < 5; i++ {
		s.Put(fmt.Sprintf("key-%d", i), []byte(`{"x":1}`))
	}
	s.Put("key-0", []byte(`{"x":2}`)) // overwrite: no growth
	if got := s.ApproxLen(); got != 5 {
		t.Fatalf("ApproxLen = %d after 5 distinct Puts + 1 overwrite, want 5", got)
	}
	if exact := s.Len(); int64(exact) != s.ApproxLen() {
		t.Fatalf("ApproxLen %d disagrees with Len %d", s.ApproxLen(), exact)
	}
	// A second handle on the same directory seeds from the startup walk.
	warm, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if got := warm.ApproxLen(); got != 5 {
		t.Fatalf("warm ApproxLen = %d, want 5", got)
	}
}

func TestOpenValidation(t *testing.T) {
	if _, err := Open(""); err == nil {
		t.Fatal("Open(\"\") succeeded")
	}
	// A root that cannot be created must fail loudly (Open is the one
	// store operation allowed to error).
	file := filepath.Join(t.TempDir(), "plain-file")
	if err := os.WriteFile(file, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(filepath.Join(file, "sub")); err == nil {
		t.Fatal("Open under a plain file succeeded")
	}
}
