package program

import "math/rand"

// RandomSpec bounds the shape of randomly generated programs.
type RandomSpec struct {
	MaxDepth    int // nesting depth of loops/branches (default 3)
	MaxSeqLen   int // children per sequence (default 4)
	MaxLines    int // straight-line run length (default 6)
	MaxLoop     int // loop bound (default 5)
	MaxFetches  int // fetches per line (default 8)
	LineSize    int // line size in bytes (default 16)
	AddressSpan int // number of distinct line slots to draw addresses from (default 64)
}

func (s RandomSpec) withDefaults() RandomSpec {
	if s.MaxDepth <= 0 {
		s.MaxDepth = 3
	}
	if s.MaxSeqLen <= 0 {
		s.MaxSeqLen = 4
	}
	if s.MaxLines <= 0 {
		s.MaxLines = 6
	}
	if s.MaxLoop <= 0 {
		s.MaxLoop = 5
	}
	if s.MaxFetches <= 0 {
		s.MaxFetches = 8
	}
	if s.LineSize <= 0 {
		s.LineSize = 16
	}
	if s.AddressSpan <= 0 {
		s.AddressSpan = 64
	}
	return s
}

// Random generates a structurally valid random program, for fuzz-style
// property tests of the WCET engine (e.g. "the guaranteed bound dominates
// every concrete simulation").
func Random(r *rand.Rand, spec RandomSpec) *Program {
	spec = spec.withDefaults()
	return &Program{
		Name: "random",
		Root: randomNode(r, spec, spec.MaxDepth),
	}
}

func randomLine(r *rand.Rand, spec RandomSpec) Line {
	return Line{
		Addr:    uint32(r.Intn(spec.AddressSpan)) * uint32(spec.LineSize),
		Fetches: 1 + r.Intn(spec.MaxFetches),
	}
}

func randomNode(r *rand.Rand, spec RandomSpec, depth int) Node {
	if depth <= 0 {
		return randomStraight(r, spec)
	}
	switch r.Intn(4) {
	case 0:
		return randomStraight(r, spec)
	case 1:
		return Loop{Body: randomNode(r, spec, depth-1), Count: 1 + r.Intn(spec.MaxLoop)}
	case 2:
		b := Branch{Then: randomNode(r, spec, depth-1)}
		if r.Intn(2) == 0 {
			b.Else = randomNode(r, spec, depth-1)
		}
		return b
	default:
		n := 1 + r.Intn(spec.MaxSeqLen)
		seq := make(Seq, n)
		for i := range seq {
			seq[i] = randomNode(r, spec, depth-1)
		}
		return seq
	}
}

func randomStraight(r *rand.Rand, spec RandomSpec) Node {
	n := 1 + r.Intn(spec.MaxLines)
	seq := make(Seq, n)
	for i := range seq {
		seq[i] = randomLine(r, spec)
	}
	return seq
}
