package program

import (
	"testing"
)

func simpleProgram() *Program {
	return &Program{
		Name: "simple",
		Root: Seq{
			Line{Addr: 0x00, Fetches: 4},
			Loop{Body: Seq{Line{Addr: 0x10, Fetches: 8}, Line{Addr: 0x20, Fetches: 8}}, Count: 3},
			Branch{
				Then: Line{Addr: 0x30, Fetches: 4},
				Else: Line{Addr: 0x40, Fetches: 2},
			},
			Line{Addr: 0x50, Fetches: 6},
		},
	}
}

func TestValidateAccepts(t *testing.T) {
	if err := simpleProgram().Validate(16); err != nil {
		t.Fatalf("valid program rejected: %v", err)
	}
}

func TestValidateRejects(t *testing.T) {
	cases := []struct {
		name string
		p    *Program
	}{
		{"nil root", &Program{Name: "x"}},
		{"zero fetches", &Program{Name: "x", Root: Line{Addr: 0, Fetches: 0}}},
		{"unaligned", &Program{Name: "x", Root: Line{Addr: 0x8, Fetches: 1}}},
		{"bad loop bound", &Program{Name: "x", Root: Loop{Body: Line{Addr: 0, Fetches: 1}, Count: 0}}},
		{"nil loop body", &Program{Name: "x", Root: Loop{Count: 3}}},
		{"empty branch", &Program{Name: "x", Root: Branch{}}},
	}
	for _, c := range cases {
		if err := c.p.Validate(16); err == nil {
			t.Errorf("%s: expected validation error", c.name)
		}
	}
}

func TestLines(t *testing.T) {
	lines := simpleProgram().Lines()
	want := []uint32{0x00, 0x10, 0x20, 0x30, 0x40, 0x50}
	if len(lines) != len(want) {
		t.Fatalf("lines: %v", lines)
	}
	for i, w := range want {
		if lines[i] != w {
			t.Errorf("lines[%d] = %#x, want %#x", i, lines[i], w)
		}
	}
}

func TestCodeBytes(t *testing.T) {
	if got := simpleProgram().CodeBytes(16); got != 6*16 {
		t.Errorf("CodeBytes = %d, want 96", got)
	}
}

func TestTraceThenChooser(t *testing.T) {
	tr := simpleProgram().Trace(nil)
	// 1 + 3*2 + 1 (then) + 1 = 9 accesses
	if len(tr) != 9 {
		t.Fatalf("trace length = %d, want 9; %v", len(tr), tr)
	}
	if tr[1].Addr != 0x10 || tr[2].Addr != 0x20 || tr[3].Addr != 0x10 {
		t.Error("loop not unrolled in order")
	}
	if tr[7].Addr != 0x30 {
		t.Errorf("then-arm not taken: %#x", tr[7].Addr)
	}
}

func TestTraceElseChooser(t *testing.T) {
	tr := simpleProgram().Trace(func(Branch) bool { return false })
	if tr[7].Addr != 0x40 {
		t.Errorf("else-arm not taken: %#x", tr[7].Addr)
	}
}

func TestTraceNilElse(t *testing.T) {
	p := &Program{Name: "x", Root: Branch{Then: Line{Addr: 0, Fetches: 1}}}
	tr := p.Trace(func(Branch) bool { return false })
	if len(tr) != 0 {
		t.Errorf("nil else arm should produce empty trace, got %v", tr)
	}
}

func TestMaxFetches(t *testing.T) {
	// 4 + 3*(8+8) + max(4,2) + 6 = 62
	if got := simpleProgram().MaxFetches(); got != 62 {
		t.Errorf("MaxFetches = %d, want 62", got)
	}
}

func TestBranchCount(t *testing.T) {
	if simpleProgram().BranchCount() != 1 {
		t.Error("BranchCount wrong")
	}
	nested := &Program{Name: "n", Root: Branch{
		Then: Branch{Then: Line{Addr: 0, Fetches: 1}},
		Else: Line{Addr: 16, Fetches: 1},
	}}
	if nested.BranchCount() != 2 {
		t.Error("nested BranchCount wrong")
	}
}

func TestContiguousLines(t *testing.T) {
	s := ContiguousLines(0x100, 3, 8, 16)
	if len(s) != 3 {
		t.Fatalf("len = %d", len(s))
	}
	for i, n := range s {
		l := n.(Line)
		if l.Addr != 0x100+uint32(i*16) || l.Fetches != 8 {
			t.Errorf("line %d: %+v", i, l)
		}
	}
}

func TestValidateZeroLineSizeSkipsAlignment(t *testing.T) {
	p := &Program{Name: "x", Root: Line{Addr: 0x8, Fetches: 1}}
	if err := p.Validate(0); err != nil {
		t.Errorf("lineSize=0 should skip alignment check: %v", err)
	}
}
