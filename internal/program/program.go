// Package program models the control programs whose instruction streams the
// WCET analysis executes against the cache model: a structured control-flow
// graph over cache-line-granular code blocks placed at flash addresses.
//
// The paper's analysis only needs worst-case instruction-fetch traces and
// per-path block footprints; a structured CFG (sequence / branch / counted
// loop) is exactly expressive enough for that while keeping loop bounds
// explicit, as WCET tools require.
package program

import (
	"fmt"
	"sort"
)

// Node is one element of a structured control-flow graph. The concrete
// types are Line, Seq, Loop, and Branch.
type Node interface {
	node()
}

// Line is one cache line's worth of straight-line code: Fetches instruction
// fetches, all falling inside the line that starts at Addr. Addr must be
// line-aligned with respect to the platform cache configuration.
type Line struct {
	Addr    uint32
	Fetches int
}

// Seq executes its children in order.
type Seq []Node

// Loop executes Body exactly Count times; Count is the loop bound used by
// the worst-case analysis.
type Loop struct {
	Body  Node
	Count int
}

// Branch executes either Then or Else; the worst-case analysis considers
// both. Else may be nil (an if without else).
type Branch struct {
	Then Node
	Else Node
}

func (Line) node()   {}
func (Seq) node()    {}
func (Loop) node()   {}
func (Branch) node() {}

// Program is a named control program: a CFG rooted at Root.
type Program struct {
	Name string
	Root Node
}

// Validate checks structural soundness: positive fetch counts, positive
// loop bounds, line-aligned addresses for the given line size, and that
// every Line's fetches fit plausibly in one line (at least one fetch).
func (p *Program) Validate(lineSize int) error {
	if p.Root == nil {
		return fmt.Errorf("program %q: nil root", p.Name)
	}
	return walk(p.Root, func(n Node) error {
		switch v := n.(type) {
		case Line:
			if v.Fetches <= 0 {
				return fmt.Errorf("program %q: line 0x%x has %d fetches", p.Name, v.Addr, v.Fetches)
			}
			if lineSize > 0 && v.Addr%uint32(lineSize) != 0 {
				return fmt.Errorf("program %q: line address 0x%x not aligned to %d", p.Name, v.Addr, lineSize)
			}
		case Loop:
			if v.Count <= 0 {
				return fmt.Errorf("program %q: loop bound %d must be positive", p.Name, v.Count)
			}
			if v.Body == nil {
				return fmt.Errorf("program %q: loop with nil body", p.Name)
			}
		case Branch:
			if v.Then == nil && v.Else == nil {
				return fmt.Errorf("program %q: branch with two nil arms", p.Name)
			}
		}
		return nil
	})
}

// walk visits every node of the CFG once (loops are not unrolled).
func walk(n Node, f func(Node) error) error {
	if n == nil {
		return nil
	}
	if err := f(n); err != nil {
		return err
	}
	switch v := n.(type) {
	case Seq:
		for _, c := range v {
			if err := walk(c, f); err != nil {
				return err
			}
		}
	case Loop:
		return walk(v.Body, f)
	case Branch:
		if err := walk(v.Then, f); err != nil {
			return err
		}
		return walk(v.Else, f)
	}
	return nil
}

// Lines returns the distinct line addresses referenced anywhere in the
// program, sorted ascending.
func (p *Program) Lines() []uint32 {
	seen := make(map[uint32]bool)
	walk(p.Root, func(n Node) error {
		if l, ok := n.(Line); ok {
			seen[l.Addr] = true
		}
		return nil
	})
	out := make([]uint32, 0, len(seen))
	for a := range seen {
		out = append(out, a)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// CodeBytes returns the program footprint in bytes: distinct lines times
// the line size.
func (p *Program) CodeBytes(lineSize int) int {
	return len(p.Lines()) * lineSize
}

// Access is one element of an instruction-fetch trace: Fetches consecutive
// fetches inside the line at Addr.
type Access struct {
	Addr    uint32
	Fetches int
}

// PathChooser decides which arm of a Branch a trace takes. It is called
// with the branch and must return true for Then, false for Else.
type PathChooser func(b Branch) bool

// ThenChooser always takes the Then arm; it is the deterministic tie-break
// used when both arms have equal worst-case cost.
func ThenChooser(Branch) bool { return true }

// Trace flattens the program into a linear fetch trace (loops unrolled to
// their bounds) using chooser at every branch. A nil chooser takes Then.
func (p *Program) Trace(chooser PathChooser) []Access {
	if chooser == nil {
		chooser = ThenChooser
	}
	var out []Access
	var emit func(n Node)
	emit = func(n Node) {
		switch v := n.(type) {
		case nil:
		case Line:
			out = append(out, Access{Addr: v.Addr, Fetches: v.Fetches})
		case Seq:
			for _, c := range v {
				emit(c)
			}
		case Loop:
			for i := 0; i < v.Count; i++ {
				emit(v.Body)
			}
		case Branch:
			if chooser(v) {
				if v.Then != nil {
					emit(v.Then)
				}
			} else if v.Else != nil {
				emit(v.Else)
			}
		}
	}
	emit(p.Root)
	return out
}

// BranchCount returns the number of Branch nodes in the program.
func (p *Program) BranchCount() int {
	n := 0
	walk(p.Root, func(nd Node) error {
		if _, ok := nd.(Branch); ok {
			n++
		}
		return nil
	})
	return n
}

// MaxFetches returns the total instruction fetches along the structurally
// longest path (loops at their bounds, branches taking the arm with more
// fetches). This is a cache-oblivious upper-bound skeleton used by tests.
func (p *Program) MaxFetches() int {
	var count func(n Node) int
	count = func(n Node) int {
		switch v := n.(type) {
		case nil:
			return 0
		case Line:
			return v.Fetches
		case Seq:
			s := 0
			for _, c := range v {
				s += count(c)
			}
			return s
		case Loop:
			return v.Count * count(v.Body)
		case Branch:
			t, e := count(v.Then), count(v.Else)
			if t >= e {
				return t
			}
			return e
		}
		return 0
	}
	return count(p.Root)
}

// ContiguousLines builds a Seq of n one-line nodes starting at addr, each
// with the given fetch count. It is the basic building block for synthetic
// straight-line code sections.
func ContiguousLines(addr uint32, n, fetches, lineSize int) Seq {
	s := make(Seq, n)
	for i := 0; i < n; i++ {
		s[i] = Line{Addr: addr + uint32(i*lineSize), Fetches: fetches}
	}
	return s
}
