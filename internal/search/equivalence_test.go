package search

import (
	"math"
	"sync/atomic"
	"testing"

	"repro/internal/sched"
)

// TestHybridSharedCacheEquivalence: a multi-start hybrid search through one
// shared evaluation cache must return the same best schedule and value —
// bit for bit — and the same per-run paths as the same search with private
// per-start caches. Only the evaluation accounting may differ (a schedule
// two walks both visit executes once under a shared cache, twice under
// private ones). CI runs this under -race, which also exercises the
// parallel private-cache arm against the sequential shared-cache arm.
func TestHybridSharedCacheEquivalence(t *testing.T) {
	apps := testApps()
	starts := []sched.Schedule{{4, 2, 2}, {1, 2, 1}, {1, 1, 1}, {2, 3, 2}}

	// A lumpy but deterministic objective: several local structure changes
	// so the walks overlap without being trivial.
	var sharedExecs, privateExecs atomic.Int64
	mkEval := func(counter *atomic.Int64) EvalFunc {
		return func(s sched.Schedule) (Outcome, error) {
			counter.Add(1)
			v := 0.0
			for i := range s {
				d := float64(s[i] - 2 - i%2)
				v -= 0.07 * d * d
				v += 0.01 * float64(s[i]*s[(i+1)%len(s)]%5)
			}
			return Outcome{Pall: v, Feasible: v > -2}, nil
		}
	}

	sharedEval := mkEval(&sharedExecs)
	cache := NewCache(sharedEval)
	shared, err := Hybrid(sharedEval, apps, starts, Options{Cache: cache, MaxM: 6})
	if err != nil {
		t.Fatal(err)
	}
	private, err := Hybrid(mkEval(&privateExecs), apps, starts, Options{MaxM: 6})
	if err != nil {
		t.Fatal(err)
	}

	if !shared.FoundBest || !private.FoundBest {
		t.Fatalf("found: shared=%v private=%v", shared.FoundBest, private.FoundBest)
	}
	if !shared.Best.Equal(private.Best) {
		t.Errorf("best schedule: shared %v, private %v", shared.Best, private.Best)
	}
	if math.Float64bits(shared.BestValue) != math.Float64bits(private.BestValue) {
		t.Errorf("best value: shared %v, private %v (must be bit-identical)", shared.BestValue, private.BestValue)
	}
	for i := range shared.Runs {
		sr, pr := shared.Runs[i], private.Runs[i]
		if len(sr.Path) != len(pr.Path) {
			t.Fatalf("run %d: path lengths %d vs %d", i, len(sr.Path), len(pr.Path))
		}
		for k := range sr.Path {
			if !sr.Path[k].Equal(pr.Path[k]) {
				t.Errorf("run %d step %d: shared %v, private %v", i, k, sr.Path[k], pr.Path[k])
			}
		}
		if !sr.Best.Equal(pr.Best) || math.Float64bits(sr.BestValue) != math.Float64bits(pr.BestValue) {
			t.Errorf("run %d best: shared %v (%v), private %v (%v)", i, sr.Best, sr.BestValue, pr.Best, pr.BestValue)
		}
	}

	// The accounting is where the two modes are allowed to differ — and the
	// shared cache must actually deduplicate across these overlapping walks.
	if sharedExecs.Load() != int64(shared.TotalEvaluations) {
		t.Errorf("shared mode executed %d evals but attributed %d", sharedExecs.Load(), shared.TotalEvaluations)
	}
	if privateExecs.Load() != int64(private.TotalEvaluations) {
		t.Errorf("private mode executed %d evals but attributed %d", privateExecs.Load(), private.TotalEvaluations)
	}
	if shared.TotalEvaluations >= private.TotalEvaluations {
		t.Errorf("shared cache did not deduplicate: %d shared vs %d private evaluations",
			shared.TotalEvaluations, private.TotalEvaluations)
	}
}
