// Branch-and-bound over the joint cache-partition + schedule box.
//
// JointBranchBound explores exactly the box JointExhaustiveCached enumerates
// — the shared subspace first, then every partition in EnumeratePartitions
// order with its schedules in EnumerateFeasible order — but walks it as a
// depth-first tree and cuts subtrees an admissible upper bound proves cannot
// beat the incumbent. Because the exhaustive baseline updates its best with
// a strict ">", and a subtree is cut only when its bound is <= the incumbent
// (so no point inside could have updated), the branch-and-bound optimum is
// the *identical* point, bit for bit — with strictly fewer evaluations
// whenever any cut fires. internal/exp pins this equality on every golden
// platform.
//
// The bound is the paper-shaped decomposition P_all = sum_i w_i P_i: each
// application's weighted objective is bounded independently — assigned
// dimensions at their fixed (m_i, w_i) under the smallest gap any completion
// of the prefix can produce, free dimensions by their best case over the
// remaining choices — and the terms are accumulated in application order,
// exactly like the objective itself, so floating-point rounding cannot make
// the bound dip below a completion's true value (rounding is monotone).
package search

import (
	"fmt"
	"math"

	"repro/internal/sched"
)

// Bounder supplies admissible (never underestimating) per-application upper
// bounds on the weighted objective contribution w_i * P_i. Implementations
// must guarantee, for every feasible completion of a search prefix:
//
//   - AppAt(i, w, m, minGap) >= w_i * P_i whenever application i runs bursts
//     of length m on w dedicated ways (w == 0: the shared cache) and its gap
//     is at least minGap — gaps only grow as free dimensions are fixed;
//   - AppBest(i, w) >= AppAt(i, w, m, g) for every burst length m in the
//     search box and every gap g >= 0.
//
// engine.TimingBounder implements the tight closed-form bound for
// ObjectiveTiming; TrivialBounder is the objective-agnostic fallback.
type Bounder interface {
	AppAt(i, w, m int, minGap float64) float64
	AppBest(i, w int) float64
}

// trivialBounder bounds every application by its weight: P_i <= 1 by
// construction (performance cannot exceed the reference), so w_i is always
// admissible. It prunes only boxes whose incumbent already reaches the
// weight sum — essentially never — but it is valid for any objective,
// making branch-and-bound safe as a drop-in exact baseline.
type trivialBounder struct{ weights []float64 }

func (b trivialBounder) AppAt(i, w, m int, minGap float64) float64 { return b.weights[i] }
func (b trivialBounder) AppBest(i, w int) float64                  { return b.weights[i] }

// TrivialBounder returns the objective-agnostic admissible bound w_i * 1
// per application (P_i <= 1 for every objective in this repo).
func TrivialBounder(weights []float64) Bounder { return trivialBounder{weights} }

// JointBranchBoundResult is a JointExhaustiveResult computed by
// branch-and-bound: Evaluated counts the feasible points actually visited
// (<= the exhaustive box size, strictly smaller when Pruned > 0), and the
// Best/BestShared fields are bit-identical to the exhaustive baseline's.
type JointBranchBoundResult struct {
	JointExhaustiveResult
	// Pruned counts the subtrees cut by the admissible bound (cuts by
	// infeasibility of a schedule prefix are not counted: the exhaustive
	// baseline never evaluates infeasible points either, so only bound
	// cuts reduce Evaluated relative to it).
	Pruned int
}

// bbState carries one branch-and-bound traversal. The search is serial by
// design: depth-first order is what guarantees the incumbent — and with it
// every cut decision and the evaluation count — is deterministic.
type bbState struct {
	cache *JointCache
	pt    sched.PartitionTimings
	bound Bounder
	maxM  int
	n     int
	total int // total ways
	res   *JointBranchBoundResult

	shared  bool
	ways    sched.Ways        // nil during the shared phase
	timings []sched.AppTiming // current regime's timing vector
	cur     sched.Schedule
	bl      []float64 // scratch: minimal burst length per app for the prefix

	// Admissible per-app bound tables: appBest[i][w] = AppBest(i, w)
	// (w == 0: shared), wayBestUpTo[i][w] = max over 1..w of appBest[i][.]
	// — the free-dimension bound under a remaining-ways budget.
	appBest     [][]float64
	wayBestUpTo [][]float64
}

// JointBranchBound is the branch-and-bound exact baseline over the joint
// box: identical optimum (and shared-subspace optimum) to
// JointExhaustiveCached on the same cache, visiting only the points the
// admissible bound cannot rule out. The traversal is serial; evaluations
// still route through the (possibly tiered) cache, so hybrid walks and
// persistent stores share them as usual.
func JointBranchBound(cache *JointCache, pt sched.PartitionTimings, bound Bounder, maxM int) (*JointBranchBoundResult, error) {
	if err := pt.Validate(); err != nil {
		return nil, err
	}
	if bound == nil {
		return nil, fmt.Errorf("search: branch-and-bound requires a Bounder")
	}
	if maxM < 1 {
		return nil, fmt.Errorf("search: branch-and-bound maxM %d < 1", maxM)
	}
	n := pt.Apps()
	s := &bbState{
		cache: cache,
		pt:    pt,
		bound: bound,
		maxM:  maxM,
		n:     n,
		total: pt.TotalWays(),
		res: &JointBranchBoundResult{
			JointExhaustiveResult: JointExhaustiveResult{
				BestValue:       math.Inf(-1),
				BestSharedValue: math.Inf(-1),
			},
		},
		cur: make(sched.Schedule, n),
		bl:  make([]float64, n),
	}
	s.appBest = make([][]float64, n)
	s.wayBestUpTo = make([][]float64, n)
	for i := 0; i < n; i++ {
		s.appBest[i] = make([]float64, s.total+1)
		s.wayBestUpTo[i] = make([]float64, s.total+1)
		for w := 0; w <= s.total; w++ {
			s.appBest[i][w] = bound.AppBest(i, w)
		}
		s.wayBestUpTo[i][0] = math.Inf(-1) // no budget: no partition exists
		for w := 1; w <= s.total; w++ {
			s.wayBestUpTo[i][w] = s.wayBestUpTo[i][w-1]
			if s.appBest[i][w] > s.wayBestUpTo[i][w] {
				s.wayBestUpTo[i][w] = s.appBest[i][w]
			}
		}
	}

	// Phase 1: the shared subspace, exactly EnumerateFeasible(pt.Shared)'s
	// box. The incumbent during this phase is the shared incumbent, so cuts
	// can never lose the shared-subspace optimum either.
	s.shared = true
	s.timings = pt.Shared
	if err := s.schedDFS(0); err != nil {
		return nil, err
	}

	// Phase 2: every partition, in EnumeratePartitions order.
	s.shared = false
	if s.total >= n {
		s.ways = make(sched.Ways, n)
		s.timings = make([]sched.AppTiming, n)
		if err := s.waysDFS(0, 0); err != nil {
			return nil, err
		}
	}
	return s.res, nil
}

// wayOf returns the current regime's way count of application i (0 =
// shared cache).
func (s *bbState) wayOf(i int) int {
	if s.ways == nil {
		return 0
	}
	return s.ways[i]
}

// waysDFS fixes the partition one application at a time, mirroring
// sched.EnumeratePartitions' recursion (w_i >= 1, at least one way left per
// remaining application). Each prefix is bounded before descending.
func (s *bbState) waysDFS(i, used int) error {
	if i == s.n {
		for k := 0; k < s.n; k++ {
			s.timings[k] = s.pt.ByWays[s.ways[k]-1][k]
		}
		return s.schedDFS(0)
	}
	if s.cutWays(i, used) {
		s.res.Pruned++
		return nil
	}
	for w := 1; used+w+(s.n-1-i) <= s.total; w++ {
		s.ways[i] = w
		if err := s.waysDFS(i+1, used+w); err != nil {
			return err
		}
	}
	return nil
}

// cutWays reports whether the partition prefix ways[0..k-1] (using `used`
// ways) can be cut: assigned applications are bounded at their fixed way
// count over any schedule, free ones by their best case over the way budget
// they could still receive.
func (s *bbState) cutWays(k, used int) bool {
	if !s.res.FoundBest {
		return false
	}
	free := s.n - k
	cap := s.total - used - (free - 1) // per-app maximum: others take >= 1 each
	ub := 0.0
	for i := 0; i < s.n; i++ {
		if i < k {
			ub += s.appBest[i][s.ways[i]]
		} else {
			ub += s.wayBestUpTo[i][cap]
		}
	}
	return ub <= s.res.BestValue
}

// schedDFS fixes burst lengths one application at a time in the odometer
// order of sched.EnumerateFeasible (m from 1 to maxM per dimension, last
// dimension fastest == depth-first preorder). Every node — including the
// leaf — is first checked for an infeasibility cut, then a bound cut.
func (s *bbState) schedDFS(d int) error {
	infeasible, bounded := s.cutSched(d)
	if infeasible {
		return nil
	}
	if bounded {
		s.res.Pruned++
		return nil
	}
	if d == s.n {
		return s.visitLeaf()
	}
	for m := 1; m <= s.maxM; m++ {
		s.cur[d] = m
		if err := s.schedDFS(d + 1); err != nil {
			return err
		}
	}
	return nil
}

// cutSched checks the schedule prefix cur[0..d-1]. The infeasibility cut:
// an assigned application whose longest derived period already exceeds its
// idle budget at the minimal gap (free applications at m=1) stays
// infeasible for every completion, because gaps only grow with burst
// lengths and the derived maximum period is monotone in the gap — both
// bitwise, since IEEE rounding is monotone and the sums run in the same
// index order as sched.BurstGap. At d == n the minimal gap is the exact
// gap, so the cut coincides with sched.IdleFeasible's predicate. The bound
// cut compares the admissible upper bound against the incumbent.
func (s *bbState) cutSched(d int) (infeasible, bounded bool) {
	for k := 0; k < s.n; k++ {
		m := 1
		if k < d {
			m = s.cur[k]
		}
		s.bl[k] = sched.BurstLength(s.timings[k], m)
	}
	for i := 0; i < d; i++ {
		a := s.timings[i]
		if a.MaxIdle <= 0 {
			continue
		}
		gap := 0.0
		for k := 0; k < s.n; k++ {
			if k != i {
				gap += s.bl[k]
			}
		}
		if sched.DerivedMaxPeriod(a, s.cur[i], gap) > a.MaxIdle+1e-12 {
			return true, false
		}
	}
	if !s.res.FoundBest {
		return false, false
	}
	// The bound accumulates weighted per-app terms in application order,
	// mirroring the objective's own summation, so term-wise admissibility
	// survives rounding.
	ub := 0.0
	for i := 0; i < s.n; i++ {
		if i < d {
			gap := 0.0
			for k := 0; k < s.n; k++ {
				if k != i {
					gap += s.bl[k]
				}
			}
			ub += s.bound.AppAt(i, s.wayOf(i), s.cur[i], gap)
		} else {
			ub += s.appBest[i][s.wayOf(i)]
		}
	}
	return false, ub <= s.res.BestValue
}

// visitLeaf evaluates one surviving point. The infeasibility cut at d == n
// already established idle feasibility, so every visited leaf is a point
// the exhaustive enumeration would have listed; counting and best-updates
// match JointExhaustiveCached's reduction exactly.
func (s *bbState) visitLeaf() error {
	j := sched.JointSchedule{M: s.cur.Clone(), W: s.ways.Clone()}
	out, _, err := s.cache.Get(j)
	if err != nil {
		return err
	}
	r := &s.res.JointExhaustiveResult
	r.Evaluated++
	if !out.Feasible {
		return nil
	}
	r.Feasible++
	if out.Pall > r.BestValue {
		r.BestValue = out.Pall
		r.Best = j.Clone()
		r.FoundBest = true
	}
	if s.shared && out.Pall > r.BestSharedValue {
		r.BestSharedValue = out.Pall
		r.BestShared = j.Clone()
		r.FoundShared = true
	}
	return nil
}
