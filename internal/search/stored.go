package search

import (
	"encoding/json"
	"fmt"
	"math"

	"repro/internal/engine/evalcache"
)

// outcomeRecord is the persistent form of an Outcome. Pall is stored twice:
// PallBits carries the exact IEEE-754 bits (a JSON uint64 round-trips
// exactly, so warm-store runs reproduce cold-store values bit for bit) and
// Pall is the human-readable rendering for people inspecting store files.
type outcomeRecord struct {
	PallBits uint64  `json:"pall_bits"`
	Pall     float64 `json:"pall"`
	Feasible bool    `json:"feasible"`
}

// OutcomeCodec serializes search Outcomes for the persistent cache tier,
// preserving Pall bit-exactly.
func OutcomeCodec() evalcache.Codec[Outcome] {
	return evalcache.Codec[Outcome]{
		Encode: func(o Outcome) ([]byte, error) {
			return json.Marshal(outcomeRecord{
				PallBits: math.Float64bits(o.Pall),
				Pall:     o.Pall,
				Feasible: o.Feasible,
			})
		},
		Decode: func(data []byte) (Outcome, error) {
			var r outcomeRecord
			if err := json.Unmarshal(data, &r); err != nil {
				return Outcome{}, fmt.Errorf("search: outcome record: %w", err)
			}
			return Outcome{Pall: math.Float64frombits(r.PallBits), Feasible: r.Feasible}, nil
		},
	}
}

// NewTieredCache is NewCache with a persistent second tier: outcomes are
// stored in backend under namespace-prefixed schedule keys, so a later
// process (or a concurrent shard) sharing the same backend skips
// re-executing evaluations. A nil backend degrades to NewCache.
func NewTieredCache(eval EvalFunc, backend evalcache.Backend, namespace string) *Cache {
	return evalcache.NewTiered(0, eval, backend, namespace, OutcomeCodec())
}

// NewTieredJointCache is NewTieredCache for the joint co-design space.
// Joint keys of shared points equal their plain schedule keys by design
// (sched.JointSchedule.Key), and a shared point's outcome equals the plain
// schedule outcome by construction, so namespaces may be shared between
// the two cache kinds without risk of serving a wrong record.
func NewTieredJointCache(eval JointEvalFunc, backend evalcache.Backend, namespace string) *JointCache {
	return evalcache.NewTiered(0, eval, backend, namespace, OutcomeCodec())
}

// NewTieredMulticoreCache is NewTieredCache for the multi-core co-design
// space. Core-point keys carry their application-subset prefix ("c[0 2]|"),
// which no schedule or joint key can produce, so a multicore cache can
// share its namespace with the single-core caches of the same evaluation
// space without risk of serving a wrong record.
func NewTieredMulticoreCache(eval CoreEvalFunc, backend evalcache.Backend, namespace string) *MulticoreCache {
	return evalcache.NewTiered(0, eval, backend, namespace, OutcomeCodec())
}
