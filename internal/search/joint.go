// Joint cache-partition + schedule co-design search (the Sun-et-al.
// extension of the paper's stage 2): the searchers below walk the joint box
// of burst counts (m1..mn) and way partitions (w1..wn), reusing the same
// evalcache keying as the schedule-only searchers — shared points key
// exactly like plain schedules, partitioned points append their partition.
//
// JointExhaustive additionally tracks the optimum of the shared subspace,
// which is by construction the schedule-only optimum, so callers can report
// how much the partitioning axis buys on top of the paper's search.
package search

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/engine/evalcache"
	"repro/internal/parallel"
	"repro/internal/sched"
)

// JointEvalFunc evaluates the overall control performance of a feasible
// joint point.
type JointEvalFunc func(j sched.JointSchedule) (Outcome, error)

// JointCache memoizes joint-point evaluations; see evalcache for semantics.
type JointCache = evalcache.Cache[sched.JointSchedule, Outcome]

// NewJointCache wraps eval in a sharded memoization cache suitable for
// sharing across hybrid starts and exhaustive sweeps.
func NewJointCache(eval JointEvalFunc) *JointCache {
	return evalcache.NewCache(0, eval)
}

// JointOptions tunes the joint hybrid search; fields mirror Options.
type JointOptions struct {
	Tolerance float64
	MaxSteps  int
	MaxM      int
	Cache     *JointCache
}

func (o JointOptions) withDefaults() JointOptions {
	if o.MaxSteps <= 0 {
		o.MaxSteps = 64
	}
	if o.MaxM <= 0 {
		o.MaxM = 16
	}
	return o
}

// JointRunStats describes one joint hybrid-search walk.
type JointRunStats struct {
	Start       sched.JointSchedule
	Path        []sched.JointSchedule
	Best        sched.JointSchedule
	BestValue   float64
	FoundBest   bool
	Evaluations int
}

// JointHybridResult aggregates all walks of a multi-start joint search.
type JointHybridResult struct {
	Runs             []JointRunStats
	Best             sched.JointSchedule
	BestValue        float64
	FoundBest        bool
	TotalEvaluations int
	CacheStats       evalcache.Stats
}

// JointHybrid runs the discrete ascent over the joint box from every start.
// The walk's moves are the schedule steps m_i +- 1 of the schedule-only
// search plus, on partitioned points, the partition steps w_i +- 1 (within
// the way budget) and the transfers (w_i + 1, w_j - 1) that move one way
// between applications at a fixed budget. As in Hybrid, a shared cache runs
// the walks sequentially for deterministic evaluation attribution; without
// one the walks run in parallel with private caches.
func JointHybrid(eval JointEvalFunc, pt sched.PartitionTimings, starts []sched.JointSchedule, opt JointOptions) (*JointHybridResult, error) {
	if len(starts) == 0 {
		return nil, fmt.Errorf("search: no start points")
	}
	opt = opt.withDefaults()
	res := &JointHybridResult{BestValue: math.Inf(-1)}
	res.Runs = make([]JointRunStats, len(starts))
	var caches []*JointCache
	if opt.Cache != nil {
		for i, start := range starts {
			stats, err := jointWalk(opt.Cache, pt, start.Clone(), opt)
			if err != nil {
				return nil, err
			}
			res.Runs[i] = *stats
		}
	} else {
		caches = make([]*JointCache, len(starts))
		errs := make([]error, len(starts))
		for i := range starts {
			caches[i] = NewJointCache(eval)
		}
		parallel.Default().ForEach(len(starts), 0, func(i int) {
			stats, err := jointWalk(caches[i], pt, starts[i].Clone(), opt)
			if err != nil {
				errs[i] = err
				return
			}
			res.Runs[i] = *stats
		})
		for _, err := range errs {
			if err != nil {
				return nil, err
			}
		}
	}
	for _, r := range res.Runs {
		if r.FoundBest && r.BestValue > res.BestValue {
			res.BestValue = r.BestValue
			res.Best = r.Best.Clone()
			res.FoundBest = true
		}
	}
	for _, r := range res.Runs {
		res.TotalEvaluations += r.Evaluations
	}
	if opt.Cache != nil {
		res.CacheStats = opt.Cache.Stats()
	} else {
		for i := range res.Runs {
			st := caches[i].Stats()
			res.CacheStats.Hits += st.Hits
			res.CacheStats.Misses += st.Misses
		}
	}
	return res, nil
}

// jointNeighbors appends every in-box neighbor of cur to dst: schedule
// steps, and for partitioned points the partition steps and transfers.
func jointNeighbors(cur sched.JointSchedule, maxM, totalWays int, dst []sched.JointSchedule) []sched.JointSchedule {
	n := len(cur.M)
	for i := 0; i < n; i++ {
		for _, d := range []int{+1, -1} {
			m := cur.M[i] + d
			if m < 1 || m > maxM {
				continue
			}
			nb := cur.Clone()
			nb.M[i] = m
			dst = append(dst, nb)
		}
	}
	if cur.Shared() {
		return dst
	}
	for i := 0; i < n; i++ {
		if cur.W[i]+1 <= totalWays {
			nb := cur.Clone()
			nb.W[i]++
			dst = append(dst, nb)
		}
		if cur.W[i]-1 >= 1 {
			nb := cur.Clone()
			nb.W[i]--
			dst = append(dst, nb)
		}
		for k := 0; k < n; k++ {
			if k == i || cur.W[k] <= 1 {
				continue
			}
			nb := cur.Clone()
			nb.W[i]++
			nb.W[k]--
			dst = append(dst, nb)
		}
	}
	return dst
}

// jointWalk is one ascent walk over the joint box.
func jointWalk(cache *JointCache, pt sched.PartitionTimings, start sched.JointSchedule, opt JointOptions) (*JointRunStats, error) {
	n := pt.Apps()
	if !start.M.Valid(n) {
		return nil, fmt.Errorf("search: joint start %v invalid for %d apps", start, n)
	}
	if ok, err := pt.Feasible(start); err != nil {
		return nil, err
	} else if !ok {
		return nil, fmt.Errorf("search: joint start %v infeasible", start)
	}
	stats := &JointRunStats{Start: start.Clone(), BestValue: math.Inf(-1)}
	visited := map[string]bool{start.Key(): true}

	get := func(j sched.JointSchedule) (Outcome, error) {
		out, executed, err := cache.Get(j)
		if executed {
			stats.Evaluations++
		}
		return out, err
	}

	cur := start.Clone()
	curOut, err := get(cur)
	if err != nil {
		return nil, err
	}
	stats.Path = append(stats.Path, cur.Clone())
	note := func(j sched.JointSchedule, o Outcome) {
		if o.Feasible && o.Pall > stats.BestValue {
			stats.BestValue = o.Pall
			stats.Best = j.Clone()
			stats.FoundBest = true
		}
	}
	note(cur, curOut)

	var neighbors []sched.JointSchedule
	for step := 0; step < opt.MaxSteps; step++ {
		type move struct {
			j    sched.JointSchedule
			gain float64
			out  Outcome
		}
		var candidates []move
		neighbors = jointNeighbors(cur, opt.MaxM, pt.TotalWays(), neighbors[:0])
		for _, nb := range neighbors {
			if visited[nb.Key()] {
				continue
			}
			if ok, err := pt.Feasible(nb); err != nil {
				return nil, err
			} else if !ok {
				continue
			}
			out, err := get(nb)
			if err != nil {
				return nil, err
			}
			note(nb, out)
			candidates = append(candidates, move{j: nb, gain: out.Pall - curOut.Pall, out: out})
		}
		if len(candidates) == 0 {
			break
		}
		sort.SliceStable(candidates, func(a, b int) bool { return candidates[a].gain > candidates[b].gain })
		best := candidates[0]
		if best.gain <= -opt.Tolerance {
			break
		}
		cur = best.j
		curOut = best.out
		visited[cur.Key()] = true
		stats.Path = append(stats.Path, cur.Clone())
	}
	return stats, nil
}

// JointExhaustiveResult is the outcome of the brute-force joint baseline.
type JointExhaustiveResult struct {
	Evaluated int // joint points evaluated (feasible box)
	Feasible  int // of those, points satisfying all constraints
	Best      sched.JointSchedule
	BestValue float64
	FoundBest bool

	// The shared-subspace optimum is exactly the schedule-only optimum of
	// the paper's search; comparing it against Best isolates the gain of
	// the partitioning axis.
	BestShared      sched.JointSchedule
	BestSharedValue float64
	FoundShared     bool
}

// JointExhaustive evaluates every feasible joint point with burst lengths
// in [1, maxM] and every way partition, returning the best overall and the
// best shared-subspace point.
func JointExhaustive(eval JointEvalFunc, pt sched.PartitionTimings, maxM int) (*JointExhaustiveResult, error) {
	return JointExhaustiveCached(NewJointCache(eval), pt, maxM, 1)
}

// JointExhaustiveCached is JointExhaustive through a (possibly shared)
// memoization cache over the process-wide concurrency governor; workers
// caps this search's share of the executor. Results are identical to the
// serial baseline for any worker count: outcomes land in enumeration order
// and the reduction walks them in that order.
func JointExhaustiveCached(cache *JointCache, pt sched.PartitionTimings, maxM, workers int) (*JointExhaustiveResult, error) {
	list, err := sched.EnumerateJointFeasible(pt, maxM)
	if err != nil {
		return nil, err
	}
	if workers < 1 {
		workers = 1
	}
	outcomes := make([]Outcome, len(list))
	errs := make([]error, len(list))
	parallel.Default().ForEach(len(list), workers, func(i int) {
		outcomes[i], _, errs[i] = cache.Get(list[i])
	})
	res := &JointExhaustiveResult{BestValue: math.Inf(-1), BestSharedValue: math.Inf(-1)}
	for i, j := range list {
		if errs[i] != nil {
			return nil, errs[i]
		}
		out := outcomes[i]
		res.Evaluated++
		if !out.Feasible {
			continue
		}
		res.Feasible++
		if out.Pall > res.BestValue {
			res.BestValue = out.Pall
			res.Best = j.Clone()
			res.FoundBest = true
		}
		if j.Shared() && out.Pall > res.BestSharedValue {
			res.BestSharedValue = out.Pall
			res.BestShared = j.Clone()
			res.FoundShared = true
		}
	}
	return res, nil
}
