package search

import (
	"math"
	"sync"
	"testing"

	"repro/internal/sched"
)

func TestOutcomeCodecBitExactRoundTrip(t *testing.T) {
	codec := OutcomeCodec()
	cases := []Outcome{
		{Pall: 0.123456789123456789, Feasible: true},
		{Pall: -1, Feasible: false},
		{Pall: math.Nextafter(0.5, 1), Feasible: true},
		{Pall: math.Copysign(0, -1), Feasible: false}, // -0.0 must survive
	}
	for _, o := range cases {
		data, err := codec.Encode(o)
		if err != nil {
			t.Fatalf("encode %+v: %v", o, err)
		}
		got, err := codec.Decode(data)
		if err != nil {
			t.Fatalf("decode %s: %v", data, err)
		}
		if math.Float64bits(got.Pall) != math.Float64bits(o.Pall) || got.Feasible != o.Feasible {
			t.Fatalf("round trip %+v -> %+v (bits %x vs %x)", o, got,
				math.Float64bits(o.Pall), math.Float64bits(got.Pall))
		}
	}
	if _, err := codec.Decode([]byte("not json")); err == nil {
		t.Fatal("garbage decoded")
	}
}

// kvBackend is a minimal in-memory backend for tier tests.
type kvBackend struct {
	mu sync.Mutex
	m  map[string][]byte
}

func (b *kvBackend) Get(key string) ([]byte, bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	v, ok := b.m[key]
	return v, ok
}

func (b *kvBackend) Put(key string, payload []byte) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.m[key] = append([]byte(nil), payload...)
}

func TestTieredCachesShareOutcomesAcrossInstances(t *testing.T) {
	backend := &kvBackend{m: map[string][]byte{}}
	execs := 0
	eval := func(s sched.Schedule) (Outcome, error) {
		execs++
		return Outcome{Pall: 0.25 * float64(s[0]), Feasible: true}, nil
	}
	a := NewTieredCache(eval, backend, "ns/")
	if _, charged, err := a.Get(sched.Schedule{2, 1}); err != nil || !charged {
		t.Fatal("cold get failed")
	}
	b := NewTieredCache(eval, backend, "ns/")
	out, charged, err := b.Get(sched.Schedule{2, 1})
	if err != nil || !charged || out.Pall != 0.5 {
		t.Fatalf("warm get = (%+v, %v, %v)", out, charged, err)
	}
	if execs != 1 {
		t.Fatalf("execs = %d, want 1 (second instance must load from backend)", execs)
	}

	jexecs := 0
	jeval := func(j sched.JointSchedule) (Outcome, error) {
		jexecs++
		return Outcome{Pall: 1, Feasible: true}, nil
	}
	j := sched.JointSchedule{M: sched.Schedule{1, 1}, W: sched.Ways{1, 1}}
	jc := NewTieredJointCache(jeval, backend, "jns/")
	jc.Get(j)
	jc2 := NewTieredJointCache(jeval, backend, "jns/")
	jc2.Get(j)
	if jexecs != 1 {
		t.Fatalf("joint execs = %d, want 1", jexecs)
	}
}
