// Package search implements the paper's second stage (Section IV): finding
// the schedule (m1, ..., mn) that maximizes the overall control performance.
//
// Two searchers are provided:
//
//   - Exhaustive: evaluates every idle-feasible schedule in the box, the
//     brute-force baseline the paper compares against (76 schedules in its
//     case study), and
//   - Hybrid: the paper's SQP-inspired discrete ascent. Per dimension it
//     fits a 1-D quadratic model through the two neighbors (which for step
//     size 1 reduces to comparing the neighbor values), moves one step
//     along the best feasible direction, tolerates slightly worsening
//     moves (the simulated-annealing flavor), and supports parallel
//     multi-start.
//
// Both searchers run on top of the sharded memoization cache of
// internal/engine/evalcache. By default every hybrid walk gets a private
// cache so per-run evaluation counts stay comparable with the paper's (9
// and 18 evaluations for its two starts); passing a shared cache through
// Options.Cache deduplicates evaluations across starts and across searches,
// which is how the sweep engine (internal/engine) runs multi-start search.
// NewTieredCache/NewTieredJointCache add the persistent disk tier
// (internal/store) underneath, preserving per-walk attribution exactly, so
// searches over a warm store report the same counts as cold ones.
//
// Evaluation counting mirrors the paper's efficiency metric: the number of
// distinct schedules whose (expensive) control-performance evaluation was
// actually executed.
package search

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/engine/evalcache"
	"repro/internal/parallel"
	"repro/internal/sched"
)

// Outcome is the result of evaluating one schedule.
type Outcome struct {
	Pall     float64 // overall control performance (Eq. 2)
	Feasible bool    // all per-app constraints hold (Eq. 3: P_i >= 0, plus design feasibility)
}

// EvalFunc evaluates the overall control performance of an idle-feasible
// schedule. It is the expensive stage-1 operation (holistic design of every
// application).
type EvalFunc func(s sched.Schedule) (Outcome, error)

// Cache is the schedule-evaluation memoization cache used by both
// searchers; see evalcache for semantics.
type Cache = evalcache.Cache[sched.Schedule, Outcome]

// NewCache wraps eval in a sharded memoization cache suitable for sharing
// across hybrid starts and exhaustive sweeps.
func NewCache(eval EvalFunc) *Cache {
	return evalcache.NewCache(0, eval)
}

// Options tunes the hybrid search.
type Options struct {
	// Tolerance accepts non-improving moves whose objective loss is at
	// most this much (the simulated-annealing feature of Section IV).
	Tolerance float64
	// MaxSteps bounds the walk length per start (default 64).
	MaxSteps int
	// MaxM caps the per-dimension burst length of the search box
	// (default 16); the idle-time constraint usually binds first.
	MaxM int
	// Cache, when non-nil, is shared by every walk of the search (and by
	// anything else holding the same cache), so no schedule is evaluated
	// twice across starts. When nil, each walk keeps a private cache and
	// per-run evaluation counts match the paper's accounting.
	Cache *Cache
}

func (o Options) withDefaults() Options {
	if o.MaxSteps <= 0 {
		o.MaxSteps = 64
	}
	if o.MaxM <= 0 {
		o.MaxM = 16
	}
	return o
}

// RunStats describes one hybrid-search walk.
type RunStats struct {
	Start       sched.Schedule
	Path        []sched.Schedule // accepted points, in order (including start)
	Best        sched.Schedule   // best feasible point seen
	BestValue   float64
	FoundBest   bool // false when no feasible point was seen
	Evaluations int  // distinct schedule evaluations executed by this walk
}

// HybridResult aggregates all walks of a multi-start hybrid search.
type HybridResult struct {
	Runs      []RunStats
	Best      sched.Schedule
	BestValue float64
	FoundBest bool
	// TotalEvaluations is the number of schedule evaluations the walks of
	// this search actually executed: the paper's efficiency metric summed
	// over runs. With a shared cache an overlapping schedule is executed —
	// and counted — once, by the first walk to request it; with private
	// per-start caches a schedule revisited by k walks is executed k
	// times, so the total shrinks when a cache is shared.
	TotalEvaluations int
	// CacheStats reports hit/miss counters of the cache the search used
	// (the shared one when Options.Cache was set).
	CacheStats evalcache.Stats
}

// Hybrid runs the discrete gradient ascent from every start. Without a
// shared cache the walks run in parallel, each with a private cache (the
// paper's accounting). With Options.Cache set the walks run sequentially in
// start order, so which walk pays for each overlapping evaluation — and
// therefore every per-run count — is deterministic; outer layers (the sweep
// engine) parallelize across searches instead.
func Hybrid(eval EvalFunc, apps []sched.AppTiming, starts []sched.Schedule, opt Options) (*HybridResult, error) {
	if len(starts) == 0 {
		return nil, fmt.Errorf("search: no start points")
	}
	opt = opt.withDefaults()
	res := &HybridResult{BestValue: math.Inf(-1)}
	res.Runs = make([]RunStats, len(starts))
	var caches []*Cache
	if opt.Cache != nil {
		for i, start := range starts {
			stats, err := hybridWalk(opt.Cache, apps, start.Clone(), opt)
			if err != nil {
				return nil, err
			}
			res.Runs[i] = *stats
		}
	} else {
		caches = make([]*Cache, len(starts))
		errs := make([]error, len(starts))
		for i := range starts {
			caches[i] = NewCache(eval)
		}
		parallel.Default().ForEach(len(starts), 0, func(i int) {
			stats, err := hybridWalk(caches[i], apps, starts[i].Clone(), opt)
			if err != nil {
				errs[i] = err
				return
			}
			res.Runs[i] = *stats
		})
		for _, err := range errs {
			if err != nil {
				return nil, err
			}
		}
	}
	for _, r := range res.Runs {
		if r.FoundBest && r.BestValue > res.BestValue {
			res.BestValue = r.BestValue
			res.Best = r.Best.Clone()
			res.FoundBest = true
		}
	}
	for _, r := range res.Runs {
		res.TotalEvaluations += r.Evaluations
	}
	if opt.Cache != nil {
		res.CacheStats = opt.Cache.Stats()
	} else {
		for i := range res.Runs {
			st := caches[i].Stats()
			res.CacheStats.Hits += st.Hits
			res.CacheStats.Misses += st.Misses
		}
	}
	return res, nil
}

// hybridWalk is one gradient-ascent walk with tolerance acceptance.
func hybridWalk(cache *Cache, apps []sched.AppTiming, start sched.Schedule, opt Options) (*RunStats, error) {
	n := len(apps)
	if !start.Valid(n) {
		return nil, fmt.Errorf("search: start %v invalid for %d apps", start, n)
	}
	if ok, err := sched.IdleFeasible(apps, start); err != nil {
		return nil, err
	} else if !ok {
		return nil, fmt.Errorf("search: start %v violates the idle-time constraint", start)
	}
	stats := &RunStats{Start: start.Clone(), BestValue: math.Inf(-1)}
	visited := map[string]bool{start.Key(): true}

	get := func(s sched.Schedule) (Outcome, error) {
		out, executed, err := cache.Get(s)
		if executed {
			stats.Evaluations++
		}
		return out, err
	}

	cur := start.Clone()
	curOut, err := get(cur)
	if err != nil {
		return nil, err
	}
	stats.Path = append(stats.Path, cur.Clone())
	note := func(s sched.Schedule, o Outcome) {
		if o.Feasible && o.Pall > stats.BestValue {
			stats.BestValue = o.Pall
			stats.Best = s.Clone()
			stats.FoundBest = true
		}
	}
	note(cur, curOut)

	for step := 0; step < opt.MaxSteps; step++ {
		// Build the per-dimension 1-D models: for step size 1 the best
		// move along dimension i is simply the better feasible neighbor.
		type move struct {
			s    sched.Schedule
			gain float64
			out  Outcome
		}
		var candidates []move
		for i := 0; i < n; i++ {
			for _, d := range []int{+1, -1} {
				nb := cur.Clone()
				nb[i] += d
				if nb[i] < 1 || nb[i] > opt.MaxM || visited[nb.Key()] {
					continue
				}
				if ok, err := sched.IdleFeasible(apps, nb); err != nil {
					return nil, err
				} else if !ok {
					continue
				}
				out, err := get(nb)
				if err != nil {
					return nil, err
				}
				note(nb, out)
				candidates = append(candidates, move{s: nb, gain: out.Pall - curOut.Pall, out: out})
			}
		}
		if len(candidates) == 0 {
			break
		}
		// Steepest feasible direction; directions are pre-sorted so the
		// fallback "second best direction and so on" of the paper is the
		// next array element.
		sort.Slice(candidates, func(a, b int) bool { return candidates[a].gain > candidates[b].gain })
		best := candidates[0]
		if best.gain <= -opt.Tolerance {
			break // no move within tolerance: local optimum reached
		}
		cur = best.s
		curOut = best.out
		visited[cur.Key()] = true
		stats.Path = append(stats.Path, cur.Clone())
	}
	return stats, nil
}

// ExhaustiveResult is the outcome of the brute-force baseline.
type ExhaustiveResult struct {
	Evaluated   int // schedules evaluated (idle-feasible ones)
	Feasible    int // of those, schedules satisfying all constraints
	Best        sched.Schedule
	BestValue   float64
	FoundBest   bool
	All         []sched.Schedule // every evaluated schedule
	AllOutcomes []Outcome        // outcome per evaluated schedule
}

// Exhaustive evaluates every idle-feasible schedule with burst lengths in
// [1, maxM] and returns the best feasible one.
func Exhaustive(eval EvalFunc, apps []sched.AppTiming, maxM int) (*ExhaustiveResult, error) {
	return ExhaustiveCached(NewCache(eval), apps, maxM, 1)
}

// ExhaustiveCached is Exhaustive running through a (possibly shared)
// memoization cache over the process-wide concurrency governor
// (internal/parallel); workers caps this search's share of the executor.
// Results are identical to the serial baseline for any worker count: the
// feasible box is enumerated first, outcomes land in enumeration order,
// and the reduction below walks them in that order.
func ExhaustiveCached(cache *Cache, apps []sched.AppTiming, maxM, workers int) (*ExhaustiveResult, error) {
	list, err := sched.EnumerateFeasible(apps, maxM)
	if err != nil {
		return nil, err
	}
	if workers < 1 {
		workers = 1
	}
	outcomes := make([]Outcome, len(list))
	errs := make([]error, len(list))
	parallel.Default().ForEach(len(list), workers, func(i int) {
		outcomes[i], _, errs[i] = cache.Get(list[i])
	})
	res := &ExhaustiveResult{BestValue: math.Inf(-1)}
	for i, s := range list {
		if errs[i] != nil {
			return nil, errs[i]
		}
		out := outcomes[i]
		res.Evaluated++
		res.All = append(res.All, s)
		res.AllOutcomes = append(res.AllOutcomes, out)
		if out.Feasible {
			res.Feasible++
			if out.Pall > res.BestValue {
				res.BestValue = out.Pall
				res.Best = s.Clone()
				res.FoundBest = true
			}
		}
	}
	return res, nil
}
