package search

import (
	"math"
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/sched"
)

func testCoreEval(pt sched.PartitionTimings, weights []float64) CoreEvalFunc {
	return func(p CorePoint) (Outcome, error) {
		sub, err := SubPartition(pt, p.Apps)
		if err != nil {
			return Outcome{}, err
		}
		w := make([]float64, len(p.Apps))
		for k, i := range p.Apps {
			w[k] = weights[i]
		}
		return testJointEval(sub, w)(p.Point)
	}
}

func TestCorePointKey(t *testing.T) {
	p := CorePoint{Apps: []int{0, 2}, Point: sched.JointSchedule{M: sched.Schedule{1, 3}, W: sched.Ways{2, 1}}}
	if got, want := p.Key(), "c[0 2]|(1, 3)|w[2 1]"; got != want {
		t.Errorf("key %q, want %q", got, want)
	}
	shared := CorePoint{Apps: []int{1}, Point: sched.JointSchedule{M: sched.Schedule{2}}}
	if got, want := shared.Key(), "c[1]|(2)"; got != want {
		t.Errorf("shared key %q, want %q", got, want)
	}
}

func TestCanonicalAssignment(t *testing.T) {
	got, err := CanonicalAssignment([]int{1, 0, 1}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if want := []int{0, 1, 0}; !reflect.DeepEqual(got, want) {
		t.Errorf("canonical = %v, want %v", got, want)
	}
	for _, bad := range []struct {
		a      []int
		nCores int
	}{
		{[]int{0, 0, 0}, 2}, // core 1 empty
		{[]int{0, 2, 1}, 2}, // core index out of range
		{[]int{0, 1}, 0},    // no cores
		{nil, 1},            // no apps
	} {
		if _, err := CanonicalAssignment(bad.a, bad.nCores); err == nil {
			t.Errorf("CanonicalAssignment(%v, %d) accepted", bad.a, bad.nCores)
		}
	}
}

func TestCanonicalAssignmentsCount(t *testing.T) {
	// Stirling numbers of the second kind: S(3,2)=3, S(4,2)=7, S(4,3)=6.
	for _, tc := range []struct{ n, c, want int }{
		{3, 1, 1}, {3, 2, 3}, {3, 3, 1}, {4, 2, 7}, {4, 3, 6},
	} {
		got, complete := canonicalAssignments(tc.n, tc.c, 2000)
		if !complete || len(got) != tc.want {
			t.Errorf("canonicalAssignments(%d, %d) = %d placements (complete %v), want %d",
				tc.n, tc.c, len(got), complete, tc.want)
		}
		for _, a := range got {
			if _, err := CanonicalAssignment(a, tc.c); err != nil {
				t.Errorf("enumerated assignment %v not canonical-valid: %v", a, err)
			}
		}
	}
	if _, complete := canonicalAssignments(4, 2, 3); complete {
		t.Error("limit 3 not reported as overflow for 7 placements")
	}
}

func TestSubPartitionValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	pt, _ := genTable(rng, 3, 2)
	if _, err := SubPartition(pt, nil); err == nil {
		t.Error("empty subset accepted")
	}
	if _, err := SubPartition(pt, []int{0, 3}); err == nil {
		t.Error("out-of-range subset accepted")
	}
	if _, err := SubPartition(pt, []int{1, 0}); err == nil {
		t.Error("descending subset accepted")
	}
	sub, err := SubPartition(pt, []int{0, 2})
	if err != nil {
		t.Fatal(err)
	}
	if sub.Apps() != 2 || sub.TotalWays() != pt.TotalWays() {
		t.Errorf("sub shape %d apps / %d ways", sub.Apps(), sub.TotalWays())
	}
	if sub.Shared[1] != pt.Shared[2] || sub.ByWays[1][0] != pt.ByWays[1][0] {
		t.Error("sub entries not picked from parent")
	}
}

// TestMulticoreBranchBoundMatchesExhaustive pins the placement-level
// equality: branch-and-bound must select the identical assignment,
// per-core points, and value bits as the exhaustive placement search, with
// no more evaluations.
func TestMulticoreBranchBoundMatchesExhaustive(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	prunedSomewhere := false
	for trial := 0; trial < 12; trial++ {
		n := 3 + trial%2
		ways := 1 + trial%4
		cores := 2 + trial%2
		if cores > n {
			cores = n
		}
		maxM := 3 + trial%2
		pt, weights := genTable(rng, n, ways)
		opt := MulticoreOptions{MaxM: maxM, Bounder: testBounder{pt, weights, maxM}}

		ex, err := MulticoreExhaustive(NewMulticoreCache(testCoreEval(pt, weights)), pt, cores, opt)
		if err != nil {
			t.Fatalf("trial %d: exhaustive: %v", trial, err)
		}
		bb, err := MulticoreBranchBound(NewMulticoreCache(testCoreEval(pt, weights)), pt, cores, opt)
		if err != nil {
			t.Fatalf("trial %d: branch-and-bound: %v", trial, err)
		}
		if bb.FoundBest != ex.FoundBest || !reflect.DeepEqual(bb.Assignment, ex.Assignment) {
			t.Errorf("trial %d: assignment %v (found %v) != exhaustive %v (found %v)",
				trial, bb.Assignment, bb.FoundBest, ex.Assignment, ex.FoundBest)
		}
		if math.Float64bits(bb.BestValue) != math.Float64bits(ex.BestValue) {
			t.Errorf("trial %d: value %v != exhaustive %v", trial, bb.BestValue, ex.BestValue)
		}
		if !reflect.DeepEqual(bb.PerCore, ex.PerCore) {
			t.Errorf("trial %d: per-core solutions differ:\nbb %+v\nex %+v", trial, bb.PerCore, ex.PerCore)
		}
		if bb.Evaluated > ex.Evaluated {
			t.Errorf("trial %d: evaluated %d > exhaustive %d", trial, bb.Evaluated, ex.Evaluated)
		}
		if bb.Evaluated < ex.Evaluated || bb.AssignmentsPruned > 0 {
			prunedSomewhere = true
		}
		if !ex.Enumerated || ex.Assignments == 0 {
			t.Errorf("trial %d: exhaustive did not enumerate placements: %+v", trial, ex)
		}
	}
	if !prunedSomewhere {
		t.Error("no trial pruned anything at the placement or subtree level")
	}
}

// TestMulticoreUniformRestriction: the uniform-split search explores a
// subspace of the co-design box, so its optimum can never exceed the free
// search's, and every winning per-core partition is the even split (or
// shared).
func TestMulticoreUniformRestriction(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	pt, weights := genTable(rng, 3, 4)
	opt := MulticoreOptions{MaxM: 4, Bounder: testBounder{pt, weights, 4}}
	free, err := MulticoreBranchBound(NewMulticoreCache(testCoreEval(pt, weights)), pt, 2, opt)
	if err != nil {
		t.Fatal(err)
	}
	uopt := opt
	uopt.Uniform = true
	uni, err := MulticoreExhaustive(NewMulticoreCache(testCoreEval(pt, weights)), pt, 2, uopt)
	if err != nil {
		t.Fatal(err)
	}
	if !free.FoundBest || !uni.FoundBest {
		t.Fatalf("searches incomplete: free %v, uniform %v", free.FoundBest, uni.FoundBest)
	}
	if uni.BestValue > free.BestValue {
		t.Errorf("uniform optimum %v exceeds co-design optimum %v", uni.BestValue, free.BestValue)
	}
	for c, sol := range uni.PerCore {
		if sol.Point.Shared() {
			continue
		}
		even := sched.EvenWays(len(sol.Apps), pt.TotalWays())
		if !sol.Point.W.Equal(even) {
			t.Errorf("core %d: uniform winner %v is not the even split %v", c, sol.Point, even)
		}
	}
}

// TestMulticoreSeedsOnly: when the canonical enumeration overflows
// MaxAssignments the search falls back to the seeds, reporting Enumerated
// false; with no seeds it errors.
func TestMulticoreSeedsOnly(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	pt, weights := genTable(rng, 4, 2)
	opt := MulticoreOptions{MaxM: 3, MaxAssignments: 2, Seeds: [][]int{{0, 0, 1, 1}, {0, 1, 0, 1}}}
	res, err := MulticoreExhaustive(NewMulticoreCache(testCoreEval(pt, weights)), pt, 2, opt)
	if err != nil {
		t.Fatal(err)
	}
	if res.Enumerated {
		t.Error("overflowed enumeration reported as complete")
	}
	if res.Assignments != 2 {
		t.Errorf("searched %d placements, want the 2 seeds", res.Assignments)
	}
	opt.Seeds = nil
	if _, err := MulticoreExhaustive(NewMulticoreCache(testCoreEval(pt, weights)), pt, 2, opt); err == nil {
		t.Error("overflow with no seeds accepted")
	}
}

// TestMulticoreValidation covers the error contract of the placement
// searchers.
func TestMulticoreValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	pt, weights := genTable(rng, 3, 2)
	cache := NewMulticoreCache(testCoreEval(pt, weights))
	if _, err := MulticoreExhaustive(cache, pt, 0, MulticoreOptions{MaxM: 3}); err == nil {
		t.Error("0 cores accepted")
	}
	if _, err := MulticoreExhaustive(cache, pt, 4, MulticoreOptions{MaxM: 3}); err == nil {
		t.Error("more cores than apps accepted")
	}
	if _, err := MulticoreExhaustive(cache, pt, 2, MulticoreOptions{}); err == nil {
		t.Error("maxM 0 accepted")
	}
	if _, err := MulticoreBranchBound(cache, pt, 2, MulticoreOptions{MaxM: 3}); err == nil {
		t.Error("nil bounder accepted by branch-and-bound")
	}
	if _, err := MulticoreExhaustive(cache, pt, 2, MulticoreOptions{MaxM: 3, Seeds: [][]int{{0, 0, 0}}}); err == nil {
		t.Error("seed leaving a core empty accepted")
	}
}

// TestMulticoreMoreCoresNeverWorse: on these tasksets the 2-core co-design
// must dominate the single-core joint optimum — each core gets a private
// cache and shorter gaps.
func TestMulticoreMoreCoresNeverWorse(t *testing.T) {
	rng := rand.New(rand.NewSource(29))
	pt, weights := genTable(rng, 3, 4)
	maxM := 4
	single, err := JointExhaustiveCached(NewJointCache(testJointEval(pt, weights)), pt, maxM, 1)
	if err != nil {
		t.Fatal(err)
	}
	opt := MulticoreOptions{MaxM: maxM, Bounder: testBounder{pt, weights, maxM}}
	multi, err := MulticoreBranchBound(NewMulticoreCache(testCoreEval(pt, weights)), pt, 2, opt)
	if err != nil {
		t.Fatal(err)
	}
	if !single.FoundBest || !multi.FoundBest {
		t.Fatalf("searches incomplete: single %v, multi %v", single.FoundBest, multi.FoundBest)
	}
	if multi.BestValue < single.BestValue {
		t.Errorf("2-core optimum %v below single-core joint optimum %v", multi.BestValue, single.BestValue)
	}
}
