package search

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/sched"
)

// testTimingScore mirrors engine.timingScore: the closed-form proxy
// objective P_i = 1 - (hbar_i + hmax_i) / (2 t_idle_i), accumulated in
// application order. The search tests replicate it locally (search cannot
// import engine) so the branch-and-bound equality pin runs against the
// same objective shape the engine sweeps use.
func testTimingScore(timings []sched.AppTiming, weights []float64, s sched.Schedule) (Outcome, error) {
	ok, err := sched.IdleFeasible(timings, s)
	if err != nil {
		return Outcome{}, err
	}
	if !ok {
		return Outcome{Pall: -1, Feasible: false}, nil
	}
	pall := 0.0
	feasible := true
	for i, a := range timings {
		gap := sched.BurstGap(timings, s, i)
		hyper := sched.DerivedHyperPeriod(a, s[i], gap)
		limit := a.MaxIdle
		if limit <= 0 {
			limit = hyper
		}
		hbar := hyper / float64(s[i])
		p := 1 - (hbar+sched.DerivedMaxPeriod(a, s[i], gap))/(2*limit)
		if p < 0 {
			feasible = false
		}
		pall += weights[i] * p
	}
	return Outcome{Pall: pall, Feasible: feasible}, nil
}

func testJointEval(pt sched.PartitionTimings, weights []float64) JointEvalFunc {
	return func(j sched.JointSchedule) (Outcome, error) {
		if !j.W.Valid(pt.Apps(), pt.TotalWays()) {
			return Outcome{Pall: -1, Feasible: false}, nil
		}
		timings, err := pt.Timings(j)
		if err != nil {
			return Outcome{}, err
		}
		return testTimingScore(timings, weights, j.M)
	}
}

// testBounder is the timing-objective admissible bound (the search-side
// twin of engine.TimingBounder): assigned dimensions are scored with the
// exact closed form at the minimal gap (the objective is monotone
// nonincreasing in the gap), unconstrained applications by the gap-free
// bound 1 - 1/m plus slack.
type testBounder struct {
	pt      sched.PartitionTimings
	weights []float64
	maxM    int
}

func (b testBounder) timing(i, w int) sched.AppTiming {
	if w == 0 {
		return b.pt.Shared[i]
	}
	return b.pt.ByWays[w-1][i]
}

func (b testBounder) AppAt(i, w, m int, minGap float64) float64 {
	a := b.timing(i, w)
	if a.MaxIdle > 0 {
		hyper := sched.DerivedHyperPeriod(a, m, minGap)
		hbar := hyper / float64(m)
		p := 1 - (hbar+sched.DerivedMaxPeriod(a, m, minGap))/(2*a.MaxIdle)
		return b.weights[i] * p
	}
	return b.weights[i] * (1 - 1/float64(m) + 1e-9)
}

func (b testBounder) AppBest(i, w int) float64 {
	best := math.Inf(-1)
	for m := 1; m <= b.maxM; m++ {
		if v := b.AppAt(i, w, m, 0); v > best {
			best = v
		}
	}
	return best
}

// genTable draws a pseudo-random partition-timing table: warm <= cold
// shared timings, idle budgets keeping round robin feasible, and per-way
// steady-state timings interpolating from the 1-way to the full-cache warm
// bound.
func genTable(rng *rand.Rand, n, ways int) (sched.PartitionTimings, []float64) {
	pt := sched.PartitionTimings{
		Shared: make([]sched.AppTiming, n),
		ByWays: make([][]sched.AppTiming, ways),
	}
	for i := 0; i < n; i++ {
		cold := (1 + 9*rng.Float64()) * 1e-5
		warm := cold * (0.3 + 0.6*rng.Float64())
		pt.Shared[i] = sched.AppTiming{Name: "T", ColdWCET: cold, WarmWCET: warm}
	}
	rr := sched.PeriodLength(pt.Shared, sched.RoundRobin(n))
	for i := range pt.Shared {
		pt.Shared[i].MaxIdle = rr * (1.2 + 2.5*rng.Float64())
	}
	for w := 0; w < ways; w++ {
		pt.ByWays[w] = make([]sched.AppTiming, n)
		for i := 0; i < n; i++ {
			a := pt.Shared[i]
			frac := float64(ways-w-1) / float64(ways)
			steady := a.WarmWCET + (a.ColdWCET-a.WarmWCET)*frac
			pt.ByWays[w][i] = sched.AppTiming{Name: a.Name, ColdWCET: steady, WarmWCET: steady, MaxIdle: a.MaxIdle}
		}
	}
	weights := make([]float64, n)
	total := 0.0
	for i := range weights {
		weights[i] = 0.5 + rng.Float64()
		total += weights[i]
	}
	for i := range weights {
		weights[i] /= total
	}
	return pt, weights
}

// TestJointBranchBoundMatchesExhaustive is the package-level equality pin:
// over a spread of pseudo-random joint boxes the branch-and-bound search
// must return the exhaustive baseline's optimum — point, value bits, and
// shared-subspace optimum — while never evaluating more points.
func TestJointBranchBoundMatchesExhaustive(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	prunedSomewhere := false
	for trial := 0; trial < 25; trial++ {
		n := 2 + trial%3
		ways := 1 + trial%5
		maxM := 3 + trial%3
		pt, weights := genTable(rng, n, ways)
		eval := testJointEval(pt, weights)

		ex, err := JointExhaustiveCached(NewJointCache(eval), pt, maxM, 1)
		if err != nil {
			t.Fatalf("trial %d: exhaustive: %v", trial, err)
		}
		bb, err := JointBranchBound(NewJointCache(eval), pt, testBounder{pt, weights, maxM}, maxM)
		if err != nil {
			t.Fatalf("trial %d: branch-and-bound: %v", trial, err)
		}
		if bb.FoundBest != ex.FoundBest || !bb.Best.Equal(ex.Best) {
			t.Errorf("trial %d: best %v (found %v) != exhaustive %v (found %v)",
				trial, bb.Best, bb.FoundBest, ex.Best, ex.FoundBest)
		}
		if math.Float64bits(bb.BestValue) != math.Float64bits(ex.BestValue) {
			t.Errorf("trial %d: best value %v != exhaustive %v", trial, bb.BestValue, ex.BestValue)
		}
		if bb.FoundShared != ex.FoundShared || !bb.BestShared.Equal(ex.BestShared) ||
			math.Float64bits(bb.BestSharedValue) != math.Float64bits(ex.BestSharedValue) {
			t.Errorf("trial %d: shared optimum %v (%v) != exhaustive %v (%v)",
				trial, bb.BestShared, bb.BestSharedValue, ex.BestShared, ex.BestSharedValue)
		}
		if bb.Evaluated > ex.Evaluated {
			t.Errorf("trial %d: branch-and-bound evaluated %d > exhaustive %d", trial, bb.Evaluated, ex.Evaluated)
		}
		if bb.Pruned > 0 {
			prunedSomewhere = true
			if bb.Evaluated >= ex.Evaluated {
				t.Errorf("trial %d: pruned %d subtrees but evaluated %d of %d points",
					trial, bb.Pruned, bb.Evaluated, ex.Evaluated)
			}
		}
	}
	if !prunedSomewhere {
		t.Error("no trial pruned anything: the bound is vacuous for this spread")
	}
}

// TestJointBranchBoundTrivialBounder: with the objective-agnostic weight
// bound no subtree can be cut (the incumbent never reaches the weight sum
// for these tasksets), so branch-and-bound degenerates to the exhaustive
// walk — identical optimum and identical evaluation count.
func TestJointBranchBoundTrivialBounder(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	pt, weights := genTable(rng, 3, 3)
	eval := testJointEval(pt, weights)
	ex, err := JointExhaustiveCached(NewJointCache(eval), pt, 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	bb, err := JointBranchBound(NewJointCache(eval), pt, TrivialBounder(weights), 4)
	if err != nil {
		t.Fatal(err)
	}
	if !bb.Best.Equal(ex.Best) || math.Float64bits(bb.BestValue) != math.Float64bits(ex.BestValue) {
		t.Errorf("trivial-bound optimum %v (%v) != exhaustive %v (%v)", bb.Best, bb.BestValue, ex.Best, ex.BestValue)
	}
	if bb.Evaluated != ex.Evaluated || bb.Feasible != ex.Feasible {
		t.Errorf("trivial bound changed the walk: evaluated %d/%d, feasible %d/%d",
			bb.Evaluated, ex.Evaluated, bb.Feasible, ex.Feasible)
	}
	if bb.Pruned != 0 {
		t.Errorf("trivial bound pruned %d subtrees", bb.Pruned)
	}
}

// TestJointBranchBoundValidation covers the error contract.
func TestJointBranchBoundValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	pt, weights := genTable(rng, 2, 2)
	if _, err := JointBranchBound(NewJointCache(testJointEval(pt, weights)), pt, nil, 4); err == nil {
		t.Error("nil bounder accepted")
	}
	if _, err := JointBranchBound(NewJointCache(testJointEval(pt, weights)), pt, TrivialBounder(weights), 0); err == nil {
		t.Error("maxM 0 accepted")
	}
	if _, err := JointBranchBound(NewJointCache(testJointEval(pt, weights)), sched.PartitionTimings{}, TrivialBounder(weights), 4); err == nil {
		t.Error("empty timing table accepted")
	}
}
