package search

import (
	"math"
	"reflect"
	"testing"

	"repro/internal/sched"
)

// TestExhaustiveCachedWorkerCountBitIdentical pins the index-ordered
// reduction of the governor-backed exhaustive search: any worker cap yields
// the serial result bit for bit, including the full outcome list.
func TestExhaustiveCachedWorkerCountBitIdentical(t *testing.T) {
	apps := []sched.AppTiming{
		{Name: "A", ColdWCET: 60e-6, WarmWCET: 35e-6, MaxIdle: 700e-6},
		{Name: "B", ColdWCET: 40e-6, WarmWCET: 22e-6, MaxIdle: 600e-6},
		{Name: "C", ColdWCET: 80e-6, WarmWCET: 50e-6, MaxIdle: 900e-6},
	}
	eval := func(s sched.Schedule) (Outcome, error) {
		// A cheap deterministic score with full float dynamics.
		p := 0.0
		for i, m := range s {
			p += math.Sin(float64(m)*1.7 + float64(i))
		}
		return Outcome{Pall: p, Feasible: p > 0}, nil
	}
	base, err := ExhaustiveCached(NewCache(eval), apps, 5, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 8, 64} {
		got, err := ExhaustiveCached(NewCache(eval), apps, 5, workers)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, base) {
			t.Fatalf("workers=%d: result differs from serial", workers)
		}
	}
}
