// Multi-core placement x partition x schedule co-design search.
//
// The paper's Section VI remark gives every core its own private cache, so
// once a task-to-core assignment is fixed the cores are independent: the
// overall P_all is the sum of per-core optima, and a core's optimum depends
// only on *which* applications it hosts. The searchers below exploit that
// decomposition — placements are enumerated canonically (set partitions
// into exactly nCores blocks, killing core-relabeling symmetry), every
// distinct application subset is solved once through the joint searchers of
// this package, and solved subsets are shared across placements.
//
// MulticoreExhaustive is the retained brute-force baseline;
// MulticoreBranchBound prunes whole placements with the same admissible
// per-application bounds JointBranchBound uses inside each core, and is
// pinned to find the identical optimum (internal/exp golden platforms).
package search

import (
	"fmt"
	"math"
	"strconv"
	"strings"

	"repro/internal/engine/evalcache"
	"repro/internal/sched"
)

// CorePoint is one joint point of one core: the ascending global indices of
// the applications placed on that core, plus a joint (schedule, ways) point
// over them — in that order — against the core's private cache.
type CorePoint struct {
	Apps  []int
	Point sched.JointSchedule
}

// appsKey renders a global application subset as "c[i1 i2 ...]".
func appsKey(apps []int) string {
	var b strings.Builder
	b.Grow(4 + 3*len(apps))
	b.WriteString("c[")
	for i, a := range apps {
		if i > 0 {
			b.WriteByte(' ')
		}
		b.WriteString(strconv.Itoa(a))
	}
	b.WriteByte(']')
	return b.String()
}

// Key returns the canonical memoization key: the subset prefix keeps
// records of different placements distinct, so a multicore cache can share
// a store namespace with the schedule and joint caches (no single-core key
// starts with "c[").
func (p CorePoint) Key() string { return appsKey(p.Apps) + "|" + p.Point.Key() }

// String renders the point as "c[i1 i2]:(m1, m2)x[w1 w2]".
func (p CorePoint) String() string { return appsKey(p.Apps) + ":" + p.Point.String() }

// CoreEvalFunc evaluates the weighted control performance of one core's
// joint point (weights keep their global values, so per-core values sum to
// a P_all comparable with single-core numbers).
type CoreEvalFunc func(p CorePoint) (Outcome, error)

// MulticoreCache memoizes core-point evaluations; see evalcache for
// semantics.
type MulticoreCache = evalcache.Cache[CorePoint, Outcome]

// NewMulticoreCache wraps eval in a sharded memoization cache.
func NewMulticoreCache(eval CoreEvalFunc) *MulticoreCache {
	return evalcache.NewCache(0, eval)
}

// SubPartition restricts a partition-timing table to the applications in
// idx (strictly ascending global indices): the timing view of a core that
// hosts exactly those applications on a private cache of the platform's
// geometry. Rows alias the parent table.
func SubPartition(pt sched.PartitionTimings, idx []int) (sched.PartitionTimings, error) {
	if len(idx) == 0 {
		return sched.PartitionTimings{}, fmt.Errorf("search: empty application subset")
	}
	n := pt.Apps()
	for k, i := range idx {
		if i < 0 || i >= n {
			return sched.PartitionTimings{}, fmt.Errorf("search: subset app %d outside [0, %d)", i, n)
		}
		if k > 0 && idx[k-1] >= i {
			return sched.PartitionTimings{}, fmt.Errorf("search: subset %v not strictly ascending", idx)
		}
	}
	sub := sched.PartitionTimings{
		Shared: make([]sched.AppTiming, len(idx)),
		ByWays: make([][]sched.AppTiming, len(pt.ByWays)),
	}
	for k, i := range idx {
		sub.Shared[k] = pt.Shared[i]
	}
	for w, row := range pt.ByWays {
		sub.ByWays[w] = make([]sched.AppTiming, len(idx))
		for k, i := range idx {
			sub.ByWays[w][k] = row[i]
		}
	}
	return sub, nil
}

// subBounder restricts a Bounder to an application subset: local index k is
// global application idx[k], so per-core branch-and-bound reuses the global
// bound tables (weights keep their global values).
type subBounder struct {
	b   Bounder
	idx []int
}

func (s subBounder) AppAt(i, w, m int, minGap float64) float64 {
	return s.b.AppAt(s.idx[i], w, m, minGap)
}
func (s subBounder) AppBest(i, w int) float64 { return s.b.AppBest(s.idx[i], w) }

// CanonicalAssignment relabels an assignment's cores by first appearance
// (application 0's core becomes 0, the next new core 1, ...), validates
// every entry against nCores, and requires every core to host at least one
// application. Two assignments that differ only by a core permutation
// canonicalize identically, which is what lets the placement searchers
// deduplicate seeds against the canonical enumeration.
func CanonicalAssignment(a []int, nCores int) ([]int, error) {
	if nCores < 1 {
		return nil, fmt.Errorf("search: %d cores", nCores)
	}
	if len(a) == 0 {
		return nil, fmt.Errorf("search: empty assignment")
	}
	relabel := make(map[int]int, nCores)
	out := make([]int, len(a))
	for i, c := range a {
		if c < 0 || c >= nCores {
			return nil, fmt.Errorf("search: app %d assigned to core %d of %d", i, c, nCores)
		}
		n, ok := relabel[c]
		if !ok {
			n = len(relabel)
			relabel[c] = n
		}
		out[i] = n
	}
	if len(relabel) != nCores {
		return nil, fmt.Errorf("search: assignment %v uses %d of %d cores", a, len(relabel), nCores)
	}
	return out, nil
}

// canonicalAssignments enumerates every canonical assignment of nApps
// applications onto exactly nCores cores — restricted-growth strings, in
// lexicographic order — up to limit entries. When the space is larger than
// limit it returns (nil, false) and callers fall back to heuristic seeds.
func canonicalAssignments(nApps, nCores, limit int) ([][]int, bool) {
	if nCores < 1 || nCores > nApps {
		return nil, true
	}
	var out [][]int
	cur := make([]int, nApps)
	overflow := false
	var rec func(i, maxUsed int)
	rec = func(i, maxUsed int) {
		if overflow {
			return
		}
		// Remaining applications must still be able to populate the unused
		// cores.
		if nCores-1-maxUsed > nApps-i {
			return
		}
		if i == nApps {
			if maxUsed == nCores-1 {
				if len(out) >= limit {
					overflow = true
					return
				}
				out = append(out, append([]int(nil), cur...))
			}
			return
		}
		hi := maxUsed + 1
		if hi > nCores-1 {
			hi = nCores - 1
		}
		for c := 0; c <= hi; c++ {
			cur[i] = c
			nm := maxUsed
			if c > nm {
				nm = c
			}
			rec(i+1, nm)
		}
	}
	rec(0, -1)
	if overflow {
		return nil, false
	}
	return out, true
}

// assignmentSubsets splits a canonical assignment into per-core application
// subsets (ascending within each core, cores in canonical label order).
func assignmentSubsets(a []int, nCores int) [][]int {
	subsets := make([][]int, nCores)
	for i, c := range a {
		subsets[c] = append(subsets[c], i)
	}
	return subsets
}

// MulticoreOptions tunes the placement searchers.
type MulticoreOptions struct {
	// MaxM caps per-core burst lengths (required, >= 1).
	MaxM int
	// Bounder supplies the admissible per-application bounds
	// MulticoreBranchBound prunes with (required there, ignored by
	// MulticoreExhaustive).
	Bounder Bounder
	// Seeds are placement heuristics (app -> core) searched first, in
	// order, after canonicalization and deduplication. They are mandatory
	// coverage: when the canonical enumeration exceeds MaxAssignments only
	// the seeds are searched.
	Seeds [][]int
	// MaxAssignments caps the canonical placement enumeration (default
	// 2000). Beyond it the search is heuristic (Enumerated = false).
	MaxAssignments int
	// Uniform restricts every core to the uniform way split: the shared
	// subspace plus the single even partition of the core's private cache
	// over its applications — the "uniform partitioning" baseline of the
	// sensitivity-vs-uniform comparison.
	Uniform bool
}

func (o MulticoreOptions) withDefaults() MulticoreOptions {
	if o.MaxAssignments <= 0 {
		o.MaxAssignments = 2000
	}
	return o
}

// CoreSolution is the optimum of one core under one placement.
type CoreSolution struct {
	Apps  []int
	Point sched.JointSchedule
	Value float64
	Found bool
}

// MulticoreResult is the outcome of a placement search.
type MulticoreResult struct {
	Cores      int
	Assignment []int // winning canonical assignment (app -> core)
	PerCore    []CoreSolution
	BestValue  float64 // sum of per-core optima, in core order
	FoundBest  bool

	Assignments       int  // placements examined (after dedup)
	AssignmentsPruned int  // placements cut by the bound before any solve
	SubtreesPruned    int  // bound cuts inside per-core branch-and-bound
	Subsets           int  // distinct application subsets solved
	Evaluated         int  // core points visited across all subset solves
	Feasible          int  // of those, constraint-feasible
	Enumerated        bool // full canonical enumeration was searched
}

// coreSolve memoizes one subset's search outcome.
type coreSolve struct {
	sol       CoreSolution
	evaluated int
	feasible  int
	pruned    int
}

// MulticoreExhaustive is the brute-force placement baseline: every
// canonical assignment (or the seeds, when the space exceeds
// MaxAssignments), every core solved by the exhaustive joint search. It is
// retained as the equality pin for MulticoreBranchBound.
func MulticoreExhaustive(cache *MulticoreCache, pt sched.PartitionTimings, nCores int, opt MulticoreOptions) (*MulticoreResult, error) {
	return multicoreSearch(cache, pt, nCores, opt, false)
}

// MulticoreBranchBound is the placement search with admissible pruning: the
// per-application bounds cut whole placements (before solving any core) and
// subtrees inside each core's joint box. The traversal order and tie
// handling equal MulticoreExhaustive's, so the optimum — assignment,
// per-core points, and value bits — is identical, with Evaluated strictly
// smaller whenever any cut fires.
func MulticoreBranchBound(cache *MulticoreCache, pt sched.PartitionTimings, nCores int, opt MulticoreOptions) (*MulticoreResult, error) {
	if opt.Bounder == nil {
		return nil, fmt.Errorf("search: multicore branch-and-bound requires a Bounder")
	}
	return multicoreSearch(cache, pt, nCores, opt, true)
}

func multicoreSearch(cache *MulticoreCache, pt sched.PartitionTimings, nCores int, opt MulticoreOptions, useBB bool) (*MulticoreResult, error) {
	if err := pt.Validate(); err != nil {
		return nil, err
	}
	n := pt.Apps()
	if nCores < 1 {
		return nil, fmt.Errorf("search: %d cores", nCores)
	}
	if nCores > n {
		return nil, fmt.Errorf("search: %d cores exceed %d applications", nCores, n)
	}
	opt = opt.withDefaults()
	if opt.MaxM < 1 {
		return nil, fmt.Errorf("search: multicore maxM %d < 1", opt.MaxM)
	}

	// Placement order: seeds first (canonicalized, deduplicated, in the
	// given order), then the canonical enumeration. Both searchers share
	// this order, so strict-">" argmax selection is pinned between them.
	var order [][]int
	seen := map[string]bool{}
	push := func(a []int) {
		k := fmt.Sprint(a)
		if !seen[k] {
			seen[k] = true
			order = append(order, a)
		}
	}
	for _, s := range opt.Seeds {
		c, err := CanonicalAssignment(s, nCores)
		if err != nil {
			return nil, fmt.Errorf("search: placement seed %v: %w", s, err)
		}
		push(c)
	}
	enum, complete := canonicalAssignments(n, nCores, opt.MaxAssignments)
	for _, a := range enum {
		push(a)
	}
	if len(order) == 0 {
		return nil, fmt.Errorf("search: placement space exceeds %d assignments and no seeds given", opt.MaxAssignments)
	}

	res := &MulticoreResult{Cores: nCores, BestValue: math.Inf(-1), Enumerated: complete}

	// Placement-level bound tables (branch-and-bound only): an application
	// on a core hosting k applications of a W-way private cache gets at
	// most W-(k-1) dedicated ways, or the shared cache.
	var appBest, wayBestUpTo [][]float64
	if useBB {
		total := pt.TotalWays()
		appBest = make([][]float64, n)
		wayBestUpTo = make([][]float64, n)
		for i := 0; i < n; i++ {
			appBest[i] = make([]float64, total+1)
			wayBestUpTo[i] = make([]float64, total+1)
			for w := 0; w <= total; w++ {
				appBest[i][w] = opt.Bounder.AppBest(i, w)
			}
			wayBestUpTo[i][0] = math.Inf(-1)
			for w := 1; w <= total; w++ {
				wayBestUpTo[i][w] = wayBestUpTo[i][w-1]
				if appBest[i][w] > wayBestUpTo[i][w] {
					wayBestUpTo[i][w] = appBest[i][w]
				}
			}
		}
	}
	boundAssign := func(subsets [][]int) float64 {
		ub := 0.0
		for _, sub := range subsets {
			cap := pt.TotalWays() - (len(sub) - 1)
			if cap < 0 {
				cap = 0
			}
			for _, i := range sub {
				t := appBest[i][0]
				if cap >= 1 && wayBestUpTo[i][cap] > t {
					t = wayBestUpTo[i][cap]
				}
				ub += t
			}
		}
		return ub
	}

	solved := map[string]*coreSolve{}
	solve := func(idx []int) (*coreSolve, error) {
		key := appsKey(idx)
		if cs, ok := solved[key]; ok {
			return cs, nil
		}
		sub, err := SubPartition(pt, idx)
		if err != nil {
			return nil, err
		}
		jc := evalcache.NewCache(0, func(j sched.JointSchedule) (Outcome, error) {
			out, _, err := cache.Get(CorePoint{Apps: idx, Point: j})
			return out, err
		})
		cs := &coreSolve{sol: CoreSolution{Apps: idx}}
		switch {
		case opt.Uniform:
			list, err := enumerateUniformFeasible(sub, opt.MaxM)
			if err != nil {
				return nil, err
			}
			best := math.Inf(-1)
			for _, j := range list {
				out, _, err := jc.Get(j)
				if err != nil {
					return nil, err
				}
				cs.evaluated++
				if !out.Feasible {
					continue
				}
				cs.feasible++
				if out.Pall > best {
					best = out.Pall
					cs.sol.Point = j.Clone()
					cs.sol.Value = out.Pall
					cs.sol.Found = true
				}
			}
		case useBB:
			r, err := JointBranchBound(jc, sub, subBounder{opt.Bounder, idx}, opt.MaxM)
			if err != nil {
				return nil, err
			}
			cs.evaluated, cs.feasible, cs.pruned = r.Evaluated, r.Feasible, r.Pruned
			cs.sol.Point, cs.sol.Value, cs.sol.Found = r.Best, r.BestValue, r.FoundBest
		default:
			r, err := JointExhaustiveCached(jc, sub, opt.MaxM, 1)
			if err != nil {
				return nil, err
			}
			cs.evaluated, cs.feasible = r.Evaluated, r.Feasible
			cs.sol.Point, cs.sol.Value, cs.sol.Found = r.Best, r.BestValue, r.FoundBest
		}
		solved[key] = cs
		res.Subsets++
		res.Evaluated += cs.evaluated
		res.Feasible += cs.feasible
		res.SubtreesPruned += cs.pruned
		return cs, nil
	}

	perCore := make([]CoreSolution, nCores)
	for _, a := range order {
		res.Assignments++
		subsets := assignmentSubsets(a, nCores)
		if useBB && res.FoundBest && boundAssign(subsets) <= res.BestValue {
			res.AssignmentsPruned++
			continue
		}
		total := 0.0
		ok := true
		for c, idx := range subsets {
			cs, err := solve(idx)
			if err != nil {
				return nil, err
			}
			if !cs.sol.Found {
				ok = false
				break
			}
			perCore[c] = cs.sol
			total += cs.sol.Value
		}
		if !ok {
			continue
		}
		if total > res.BestValue {
			res.BestValue = total
			res.FoundBest = true
			res.Assignment = append([]int(nil), a...)
			res.PerCore = make([]CoreSolution, nCores)
			for c := range perCore {
				res.PerCore[c] = CoreSolution{
					Apps:  append([]int(nil), perCore[c].Apps...),
					Point: perCore[c].Point.Clone(),
					Value: perCore[c].Value,
					Found: true,
				}
			}
		}
	}
	return res, nil
}

// enumerateUniformFeasible lists the uniform-split subspace of one core's
// joint box: the shared points plus, when the core's private cache has at
// least one way per application, every idle-feasible schedule under the
// even way split.
func enumerateUniformFeasible(pt sched.PartitionTimings, maxM int) ([]sched.JointSchedule, error) {
	shared, err := sched.EnumerateFeasible(pt.Shared, maxM)
	if err != nil {
		return nil, err
	}
	out := make([]sched.JointSchedule, 0, 2*len(shared))
	for _, m := range shared {
		out = append(out, sched.JointSchedule{M: m})
	}
	even := sched.EvenWays(pt.Apps(), pt.TotalWays())
	if even == nil {
		return out, nil
	}
	timings, err := pt.Timings(sched.JointSchedule{M: sched.RoundRobin(pt.Apps()), W: even})
	if err != nil {
		return nil, err
	}
	ms, err := sched.EnumerateFeasible(timings, maxM)
	if err != nil {
		return nil, err
	}
	for _, m := range ms {
		out = append(out, sched.JointSchedule{M: m, W: even.Clone()})
	}
	return out, nil
}
