package search

import (
	"math"
	"testing"

	"repro/internal/sched"
)

// jointTestTimings is a 3-app taskset on a 4-way cache where partitioning
// pays: the shared model restarts cold every burst, a 2-way partition is as
// warm as the shared steady state with no cold start at all.
func jointTestTimings() sched.PartitionTimings {
	apps := testApps()
	flatten := func(scale float64) []sched.AppTiming {
		out := make([]sched.AppTiming, len(apps))
		for i, a := range apps {
			w := a.WarmWCET * scale
			out[i] = sched.AppTiming{Name: a.Name, ColdWCET: w, WarmWCET: w, MaxIdle: a.MaxIdle}
		}
		return out
	}
	return sched.PartitionTimings{
		Shared: apps,
		ByWays: [][]sched.AppTiming{flatten(2.0), flatten(1.0), flatten(1.0), flatten(1.0)},
	}
}

// jointQuadEval peaks at a target joint point: a quadratic bowl over the
// schedule plus a bonus for matching the target partition.
func jointQuadEval(target sched.JointSchedule) JointEvalFunc {
	return func(j sched.JointSchedule) (Outcome, error) {
		v := 1.0
		for i := range j.M {
			d := float64(j.M[i] - target.M[i])
			v -= 0.05 * d * d
		}
		if len(target.W) > 0 {
			if j.Shared() {
				v -= 0.5
			} else {
				for i := range j.W {
					d := float64(j.W[i] - target.W[i])
					v -= 0.03 * d * d
				}
			}
		}
		return Outcome{Pall: v, Feasible: true}, nil
	}
}

func TestJointHybridFindsPartitionedPeak(t *testing.T) {
	pt := jointTestTimings()
	target := sched.JointSchedule{M: sched.Schedule{2, 2, 2}, W: sched.Ways{2, 1, 1}}
	starts := []sched.JointSchedule{
		{M: sched.Schedule{1, 1, 1}, W: sched.Ways{1, 1, 1}},
	}
	res, err := JointHybrid(jointQuadEval(target), pt, starts, JointOptions{MaxM: 6})
	if err != nil {
		t.Fatal(err)
	}
	if !res.FoundBest || !res.Best.Equal(target) {
		t.Errorf("best = %v (found=%v), want %v", res.Best, res.FoundBest, target)
	}
	if math.Abs(res.BestValue-1) > 1e-12 {
		t.Errorf("best value %g", res.BestValue)
	}
}

func TestJointHybridSharedStartStaysShared(t *testing.T) {
	// From a shared start the walk has no partition moves; it must behave
	// exactly like the schedule-only ascent on the shared timings.
	pt := jointTestTimings()
	target := sched.SharedPoint(sched.Schedule{3, 2, 3})
	res, err := JointHybrid(jointQuadEval(target), pt, []sched.JointSchedule{sched.SharedPoint(sched.Schedule{1, 1, 1})}, JointOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Best.Shared() || !res.Best.M.Equal(target.M) {
		t.Errorf("best = %v, want shared %v", res.Best, target.M)
	}
	for _, p := range res.Runs[0].Path {
		if !p.Shared() {
			t.Errorf("shared walk visited partitioned point %v", p)
		}
	}
}

func TestJointExhaustiveDominatesShared(t *testing.T) {
	pt := jointTestTimings()
	// An objective preferring partitioned points: the joint optimum must
	// beat the shared optimum, and BestShared must equal the schedule-only
	// exhaustive result on the shared timings.
	target := sched.JointSchedule{M: sched.Schedule{2, 2, 2}, W: sched.Ways{2, 1, 1}}
	eval := jointQuadEval(target)
	res, err := JointExhaustive(eval, pt, 4)
	if err != nil {
		t.Fatal(err)
	}
	if !res.FoundBest || !res.FoundShared {
		t.Fatalf("found: joint=%v shared=%v", res.FoundBest, res.FoundShared)
	}
	if !res.Best.Equal(target) {
		t.Errorf("joint best %v, want %v", res.Best, target)
	}
	if res.BestValue <= res.BestSharedValue {
		t.Errorf("joint best %.4f does not beat shared best %.4f", res.BestValue, res.BestSharedValue)
	}

	sharedEval := func(s sched.Schedule) (Outcome, error) { return eval(sched.SharedPoint(s)) }
	ex, err := Exhaustive(sharedEval, pt.Shared, 4)
	if err != nil {
		t.Fatal(err)
	}
	if !res.BestShared.M.Equal(ex.Best) ||
		math.Float64bits(res.BestSharedValue) != math.Float64bits(ex.BestValue) {
		t.Errorf("shared-subspace optimum %v (%.6f) != schedule-only optimum %v (%.6f)",
			res.BestShared, res.BestSharedValue, ex.Best, ex.BestValue)
	}
}

func TestJointExhaustiveParallelMatchesSerial(t *testing.T) {
	pt := jointTestTimings()
	target := sched.JointSchedule{M: sched.Schedule{2, 3, 2}, W: sched.Ways{1, 2, 1}}
	eval := jointQuadEval(target)
	serial, err := JointExhaustive(eval, pt, 4)
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := JointExhaustiveCached(NewJointCache(eval), pt, 4, 8)
	if err != nil {
		t.Fatal(err)
	}
	if serial.Evaluated != parallel.Evaluated || serial.Feasible != parallel.Feasible ||
		!serial.Best.Equal(parallel.Best) ||
		math.Float64bits(serial.BestValue) != math.Float64bits(parallel.BestValue) ||
		!serial.BestShared.Equal(parallel.BestShared) {
		t.Errorf("parallel joint exhaustive diverged:\nserial   %+v\nparallel %+v", serial, parallel)
	}
}

func TestJointHybridInfeasibleStartRejected(t *testing.T) {
	pt := jointTestTimings()
	eval := jointQuadEval(sched.SharedPoint(sched.Schedule{1, 1, 1}))
	_, err := JointHybrid(eval, pt, []sched.JointSchedule{
		{M: sched.Schedule{1, 1, 1}, W: sched.Ways{3, 1, 1}}, // 5 > 4 ways
	}, JointOptions{})
	if err == nil {
		t.Error("over-budget start accepted")
	}
}
