package search

import (
	"math"
	"sync/atomic"
	"testing"

	"repro/internal/sched"
)

func testApps() []sched.AppTiming {
	return []sched.AppTiming{
		{Name: "C1", ColdWCET: 907.55e-6, WarmWCET: 452.15e-6, MaxIdle: 3.4e-3},
		{Name: "C2", ColdWCET: 645.25e-6, WarmWCET: 175.00e-6, MaxIdle: 3.9e-3},
		{Name: "C3", ColdWCET: 749.15e-6, WarmWCET: 234.35e-6, MaxIdle: 3.5e-3},
	}
}

// quadEval builds a smooth synthetic objective peaking at the target
// schedule; every schedule is feasible.
func quadEval(target sched.Schedule) EvalFunc {
	return func(s sched.Schedule) (Outcome, error) {
		v := 1.0
		for i := range s {
			d := float64(s[i] - target[i])
			v -= 0.05 * d * d
		}
		return Outcome{Pall: v, Feasible: true}, nil
	}
}

func TestHybridFindsPeak(t *testing.T) {
	apps := testApps()
	target := sched.Schedule{3, 2, 3}
	res, err := Hybrid(quadEval(target), apps, []sched.Schedule{{1, 1, 1}}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.FoundBest || !res.Best.Equal(target) {
		t.Errorf("best = %v (found=%v), want %v", res.Best, res.FoundBest, target)
	}
	if math.Abs(res.BestValue-1) > 1e-12 {
		t.Errorf("best value %g", res.BestValue)
	}
}

func TestHybridMultiStartAgree(t *testing.T) {
	apps := testApps()
	target := sched.Schedule{3, 2, 3}
	res, err := Hybrid(quadEval(target), apps, []sched.Schedule{{4, 2, 2}, {1, 2, 1}}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Runs) != 2 {
		t.Fatalf("runs: %d", len(res.Runs))
	}
	for i, r := range res.Runs {
		if !r.Best.Equal(target) {
			t.Errorf("run %d best %v, want %v", i, r.Best, target)
		}
		if r.Evaluations <= 0 {
			t.Errorf("run %d evaluations %d", i, r.Evaluations)
		}
	}
}

func TestHybridEvaluationCountBelowExhaustive(t *testing.T) {
	apps := testApps()
	target := sched.Schedule{3, 2, 3}
	var evals int64
	counted := func(s sched.Schedule) (Outcome, error) {
		atomic.AddInt64(&evals, 1)
		return quadEval(target)(s)
	}
	res, err := Hybrid(counted, apps, []sched.Schedule{{1, 1, 1}}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	ex, err := Exhaustive(quadEval(target), apps, 12)
	if err != nil {
		t.Fatal(err)
	}
	if res.Runs[0].Evaluations >= ex.Evaluated {
		t.Errorf("hybrid used %d evals, exhaustive %d", res.Runs[0].Evaluations, ex.Evaluated)
	}
	if int(evals) != res.Runs[0].Evaluations {
		t.Errorf("reported %d evals, actually %d", res.Runs[0].Evaluations, evals)
	}
}

func TestHybridRespectsIdleConstraint(t *testing.T) {
	apps := testApps()
	// Reward enormous m1: the walk must stop at the idle-feasibility edge.
	greedy := func(s sched.Schedule) (Outcome, error) {
		return Outcome{Pall: float64(s[0]), Feasible: true}, nil
	}
	res, err := Hybrid(greedy, apps, []sched.Schedule{{1, 1, 1}}, Options{MaxM: 50})
	if err != nil {
		t.Fatal(err)
	}
	ok, _ := sched.IdleFeasible(apps, res.Best)
	if !ok {
		t.Errorf("best %v violates idle constraint", res.Best)
	}
	// It must have pushed m1 to the feasibility boundary.
	next := res.Best.Clone()
	next[0]++
	ok, _ = sched.IdleFeasible(apps, next)
	if ok {
		t.Errorf("best %v is not at the m1 boundary", res.Best)
	}
}

func TestHybridRejectsInfeasibleStart(t *testing.T) {
	apps := testApps()
	if _, err := Hybrid(quadEval(sched.Schedule{2, 2, 2}), apps, []sched.Schedule{{1, 30, 30}}, Options{MaxM: 50}); err == nil {
		t.Error("infeasible start accepted")
	}
	if _, err := Hybrid(quadEval(sched.Schedule{2, 2, 2}), apps, []sched.Schedule{{1, 1}}, Options{}); err == nil {
		t.Error("wrong-length start accepted")
	}
	if _, err := Hybrid(quadEval(sched.Schedule{2, 2, 2}), apps, nil, Options{}); err == nil {
		t.Error("no starts accepted")
	}
}

func TestHybridToleranceEscapesPlateau(t *testing.T) {
	apps := testApps()
	// Objective with a small dip between start and optimum along m1:
	// values 0.5, 0.48, 1.0 for m1 = 1, 2, 3. Without tolerance the walk
	// stalls at m1=1; with tolerance 0.05 it crosses the dip.
	evalFn := func(s sched.Schedule) (Outcome, error) {
		v := map[int]float64{1: 0.5, 2: 0.48, 3: 1.0}[s[0]]
		if v == 0 {
			v = -1
		}
		// Penalize moving off (1,1) in the other dims so the walk focuses
		// on m1.
		v -= 0.2 * (float64(s[1]-1) + float64(s[2]-1))
		return Outcome{Pall: v, Feasible: true}, nil
	}
	noTol, err := Hybrid(evalFn, apps, []sched.Schedule{{1, 1, 1}}, Options{Tolerance: 0})
	if err != nil {
		t.Fatal(err)
	}
	if noTol.Best[0] != 1 {
		t.Errorf("without tolerance the dip should block: best %v", noTol.Best)
	}
	withTol, err := Hybrid(evalFn, apps, []sched.Schedule{{1, 1, 1}}, Options{Tolerance: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	if withTol.Best[0] != 3 {
		t.Errorf("tolerance should cross the dip: best %v", withTol.Best)
	}
}

func TestExhaustiveFindsGlobalOptimum(t *testing.T) {
	apps := testApps()
	target := sched.Schedule{2, 3, 2}
	res, err := Exhaustive(quadEval(target), apps, 10)
	if err != nil {
		t.Fatal(err)
	}
	if !res.FoundBest || !res.Best.Equal(target) {
		t.Errorf("best %v, want %v", res.Best, target)
	}
	if res.Evaluated != res.Feasible {
		t.Errorf("all synthetic outcomes feasible: %d vs %d", res.Evaluated, res.Feasible)
	}
	if len(res.All) != res.Evaluated || len(res.AllOutcomes) != res.Evaluated {
		t.Error("result lists inconsistent")
	}
}

func TestExhaustiveTracksInfeasible(t *testing.T) {
	apps := testApps()
	// Schedules with m1 >= 3 violate the settling constraint (synthetic).
	evalFn := func(s sched.Schedule) (Outcome, error) {
		return Outcome{Pall: float64(s[0]), Feasible: s[0] < 3}, nil
	}
	res, err := Exhaustive(evalFn, apps, 6)
	if err != nil {
		t.Fatal(err)
	}
	if res.Feasible >= res.Evaluated {
		t.Error("some schedules must be infeasible")
	}
	if res.Best[0] != 2 {
		t.Errorf("best feasible must have m1=2: %v", res.Best)
	}
}

func TestHybridPathRecordsMoves(t *testing.T) {
	apps := testApps()
	res, err := Hybrid(quadEval(sched.Schedule{3, 2, 3}), apps, []sched.Schedule{{1, 1, 1}}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	path := res.Runs[0].Path
	if len(path) < 2 {
		t.Fatalf("path too short: %v", path)
	}
	if !path[0].Equal(sched.Schedule{1, 1, 1}) {
		t.Error("path must start at the start point")
	}
	for i := 1; i < len(path); i++ {
		diff := 0
		for j := range path[i] {
			d := path[i][j] - path[i-1][j]
			if d < 0 {
				d = -d
			}
			diff += d
		}
		if diff != 1 {
			t.Errorf("step %d is not a unit move: %v -> %v", i, path[i-1], path[i])
		}
	}
}
