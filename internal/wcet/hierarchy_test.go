package wcet

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/cachesim"
	"repro/internal/program"
)

// hierL1 and hierL2 give a small two-level platform with real L2 reuse: an
// 8-line direct-mapped L1 backed by a 32-line 4-way L2.
func hierL1() cachesim.Config {
	return cachesim.Config{Lines: 8, LineSize: 16, Ways: 1, Policy: cachesim.LRU, HitCycles: 1, MissCycles: 100}
}

func hierL2() cachesim.Config {
	return cachesim.Config{Lines: 32, LineSize: 16, Ways: 4, Policy: cachesim.LRU, HitCycles: 10, MissCycles: 100}
}

// TestAnalyzeRejectsNonLRU is the regression for the silent-unsoundness
// fix: the must-analysis models LRU ages only, so set-associative FIFO and
// PLRU configurations must be rejected, not silently analyzed as LRU.
func TestAnalyzeRejectsNonLRU(t *testing.T) {
	p := straightLine(4)
	for _, pol := range []cachesim.Policy{cachesim.FIFO, cachesim.PLRU} {
		plat := Platform{ClockHz: 20e6, Cache: cachesim.Config{
			Lines: 16, LineSize: 16, Ways: 2, Policy: pol, HitCycles: 1, MissCycles: 100,
		}}
		if _, err := Analyze(p, plat); err == nil {
			t.Errorf("Analyze accepted a 2-way %v cache", pol)
		}
		if _, err := AnalyzePartitioned(p, plat, 1); err == nil {
			t.Errorf("AnalyzePartitioned accepted a 2-way %v cache", pol)
		}
	}
	// Set-associative non-LRU L2s are rejected too.
	l2 := hierL2()
	l2.Policy = cachesim.FIFO
	plat := Platform{ClockHz: 20e6, Cache: hierL1(), Hier: cachesim.Hierarchy{L2: l2}}
	if _, err := Analyze(p, plat); err == nil {
		t.Error("Analyze accepted a 4-way FIFO L2")
	}
	// Direct-mapped caches are policy-free: FIFO tagging is harmless there.
	dm := Platform{ClockHz: 20e6, Cache: cachesim.Config{
		Lines: 16, LineSize: 16, Ways: 1, Policy: cachesim.FIFO, HitCycles: 1, MissCycles: 100,
	}}
	if _, err := Analyze(p, dm); err != nil {
		t.Errorf("Analyze rejected a direct-mapped FIFO cache: %v", err)
	}
}

func TestAnalyzePartitionedRejectsHierarchy(t *testing.T) {
	plat := Platform{ClockHz: 20e6, Cache: hierL1(), Hier: cachesim.Hierarchy{L2: hierL2()}}
	if _, err := AnalyzePartitioned(straightLine(2), plat, 1); err == nil {
		t.Error("AnalyzePartitioned accepted a platform with an enabled hierarchy")
	}
}

// goldenSingleLevelPlatforms mirrors the engine's golden platform variants
// (paper direct-mapped, 2-way LRU, half-size) without importing the engine.
func goldenSingleLevelPlatforms() []Platform {
	paper := PaperPlatform()
	twoWay := paper
	twoWay.Cache.Ways = 2
	twoWay.Cache.Policy = cachesim.LRU
	half := paper
	half.Cache.Lines = paper.Cache.Lines / 2
	return []Platform{paper, twoWay, half}
}

// TestHierDegenerateL2MatchesSingleLevel is the differential pin: on every
// golden platform, an L2 whose hit costs exactly the memory latency (so the
// second level can never save a cycle) must leave the hierarchy analysis
// bit-identical to the single-level path — bounds and simulations alike —
// in both inclusive and exclusive arrangements. A disabled hierarchy is
// checked to take the single-level path unchanged.
func TestHierDegenerateL2MatchesSingleLevel(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for pi, plat := range goldenSingleLevelPlatforms() {
		progs := []*program.Program{straightLine(6)}
		for i := 0; i < 12; i++ {
			progs = append(progs, program.Random(rng, program.RandomSpec{AddressSpan: plat.Cache.Lines * 2}))
		}
		for i, p := range progs {
			want, err := Analyze(p, plat)
			if err != nil {
				t.Fatal(err)
			}
			disabled := plat // zero Hier
			if got, err := Analyze(p, disabled); err != nil || *got != *want {
				t.Fatalf("platform %d program %d: disabled hierarchy diverged: %+v vs %+v (%v)", pi, i, got, want, err)
			}
			for _, excl := range []bool{false, true} {
				hp := plat
				hp.Hier = cachesim.Hierarchy{
					L2: cachesim.Config{
						Lines: plat.Cache.Lines * 4, LineSize: plat.Cache.LineSize, Ways: 4,
						Policy: cachesim.LRU, HitCycles: plat.Cache.MissCycles, MissCycles: plat.Cache.MissCycles,
					},
					Exclusive: excl,
				}
				got, err := Analyze(p, hp)
				if err != nil {
					t.Fatal(err)
				}
				if *got != *want {
					t.Fatalf("platform %d program %d exclusive=%v: zero-cost L2 diverged:\n got %+v\nwant %+v",
						pi, i, excl, got, want)
				}
			}
		}
	}
}

// TestHierL2HitBounds pins the multi-level classification on a hand-built
// case: two lines conflicting in the direct-mapped L1 but co-resident in
// the 4-way L2. Every post-cold access is a guaranteed L1 miss (the may
// analysis proves the other line evicted it) that hits the L2.
func TestHierL2HitBounds(t *testing.T) {
	// addr 0 -> line 0, addr 128 -> line 8: both set 0 of the 8-set L1,
	// both set 0 of the 8-set L2 (which has 4 ways for them).
	p := &program.Program{Name: "pingpong", Root: program.Loop{
		Body:  program.Seq{program.Line{Addr: 0, Fetches: 1}, program.Line{Addr: 128, Fetches: 1}},
		Count: 10,
	}}
	plat := Platform{ClockHz: 20e6, Cache: hierL1(), Hier: cachesim.Hierarchy{L2: hierL2()}}
	res, err := Analyze(p, plat)
	if err != nil {
		t.Fatal(err)
	}
	// Cold: 2 memory misses, then 18 guaranteed L2 hits.
	if want := int64(2*100 + 18*10); res.ColdCycles != want || res.SimColdCycles != want {
		t.Errorf("cold = %d (sim %d), want %d", res.ColdCycles, res.SimColdCycles, want)
	}
	// Warm: all 20 accesses are guaranteed L2 hits.
	if want := int64(20 * 10); res.WarmCycles != want || res.SimWarmCycles != want {
		t.Errorf("warm = %d (sim %d), want %d", res.WarmCycles, res.SimWarmCycles, want)
	}
}

// TestQuickHierBoundsSound extends the soundness contract to hierarchies:
// on random programs and both arrangements, the multi-level guaranteed
// bounds dominate the exact two-level simulation, and the single-level
// bounds dominate the hierarchy bounds (an L2 can only help).
func TestQuickHierBoundsSound(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		l1 := cachesim.Config{
			Lines:      8 << r.Intn(3), // 8, 16, 32
			LineSize:   16,
			Ways:       1 << r.Intn(2), // 1, 2
			Policy:     cachesim.LRU,
			HitCycles:  1,
			MissCycles: 100,
		}
		l2 := cachesim.Config{
			Lines:      l1.Lines * (2 << r.Intn(2)), // 2x, 4x the L1
			LineSize:   16,
			Ways:       1 << r.Intn(3), // 1, 2, 4
			Policy:     cachesim.LRU,
			HitCycles:  2 + r.Intn(50),
			MissCycles: 100,
		}
		p := program.Random(r, program.RandomSpec{AddressSpan: l1.Lines * 2})
		single, err := Analyze(p, Platform{ClockHz: 20e6, Cache: l1})
		if err != nil {
			return false
		}
		for _, excl := range []bool{false, true} {
			plat := Platform{ClockHz: 20e6, Cache: l1, Hier: cachesim.Hierarchy{L2: l2, Exclusive: excl}}
			res, err := Analyze(p, plat)
			if err != nil {
				return false
			}
			ok := res.ColdCycles > 0 &&
				res.WarmCycles > 0 &&
				res.WarmCycles <= res.ColdCycles &&
				res.SimColdCycles <= res.ColdCycles &&
				res.SimWarmCycles <= res.WarmCycles &&
				res.ColdCycles <= single.ColdCycles &&
				res.WarmCycles <= single.WarmCycles
			if !ok {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}
