package wcet

import (
	"testing"

	"repro/internal/cachesim"
	"repro/internal/program"
)

func smallPlatform() Platform {
	return Platform{
		ClockHz: 20e6,
		Cache:   cachesim.Config{Lines: 8, LineSize: 16, Ways: 1, HitCycles: 1, MissCycles: 100},
	}
}

func straightLine(n int) *program.Program {
	return &program.Program{Name: "straight", Root: program.ContiguousLines(0, n, 4, 16)}
}

func TestStraightLineCold(t *testing.T) {
	// 4 lines, 4 fetches each, all distinct sets: cold = 4 misses + 12 hits.
	p := straightLine(4)
	res, err := Analyze(p, smallPlatform())
	if err != nil {
		t.Fatal(err)
	}
	want := int64(4*100 + 4*3*1)
	if res.ColdCycles != want {
		t.Errorf("cold = %d, want %d", res.ColdCycles, want)
	}
	if res.SimColdCycles != want {
		t.Errorf("sim cold = %d, want %d", res.SimColdCycles, want)
	}
	// Everything fits: warm run is all hits.
	if res.WarmCycles != int64(4*4) {
		t.Errorf("warm = %d, want 16", res.WarmCycles)
	}
	if res.ReusedLines != 4 {
		t.Errorf("reused lines = %d, want 4", res.ReusedLines)
	}
}

func TestLoopFirstIterationMisses(t *testing.T) {
	// Loop of 2 lines, 5 iterations: cold = 2 misses + (2*5-2) line-hits,
	// with 4 fetches per line.
	p := &program.Program{Name: "loop", Root: program.Loop{
		Body:  program.ContiguousLines(0, 2, 4, 16),
		Count: 5,
	}}
	res, err := Analyze(p, smallPlatform())
	if err != nil {
		t.Fatal(err)
	}
	// First iteration: 2 * (100 + 3). Remaining 4 iterations: 2*4 hits each.
	want := int64(2*103 + 4*8)
	if res.ColdCycles != want {
		t.Errorf("cold = %d, want %d", res.ColdCycles, want)
	}
	if res.SimColdCycles != want {
		t.Errorf("sim cold = %d, want %d", res.SimColdCycles, want)
	}
	// Warm: loop body still cached from previous run.
	if res.WarmCycles != int64(5*8) {
		t.Errorf("warm = %d, want 40", res.WarmCycles)
	}
}

func TestConflictingLinesNeverReused(t *testing.T) {
	// Two lines 8 sets apart (same set, direct-mapped small cache): they
	// evict each other every run; no guaranteed reduction.
	stride := uint32(8 * 16)
	p := &program.Program{Name: "conflict", Root: program.Seq{
		program.Line{Addr: 0, Fetches: 4},
		program.Line{Addr: stride, Fetches: 4},
	}}
	res, err := Analyze(p, smallPlatform())
	if err != nil {
		t.Fatal(err)
	}
	if res.ReductionCycles != 0 {
		t.Errorf("conflicting pair must have zero guaranteed reduction, got %d", res.ReductionCycles)
	}
	if res.SimWarmCycles != res.SimColdCycles {
		t.Errorf("simulation should also show no reuse: cold=%d warm=%d", res.SimColdCycles, res.SimWarmCycles)
	}
}

func TestBranchTakesWorstArm(t *testing.T) {
	// Then-arm: 1 line; Else-arm: 2 lines. Cold analysis must charge the
	// else-arm (2 misses) as worst case.
	p := &program.Program{Name: "branch", Root: program.Branch{
		Then: program.Line{Addr: 0x00, Fetches: 4},
		Else: program.ContiguousLines(0x10, 2, 4, 16),
	}}
	res, err := Analyze(p, smallPlatform())
	if err != nil {
		t.Fatal(err)
	}
	want := int64(2 * 103)
	if res.ColdCycles != want {
		t.Errorf("cold = %d, want %d", res.ColdCycles, want)
	}
	if res.SimColdCycles != want {
		t.Errorf("sim = %d, want %d", res.SimColdCycles, want)
	}
}

func TestBranchJoinIsIntersection(t *testing.T) {
	// After the branch, neither arm's lines are guaranteed cached, but the
	// common prefix line is. The second run must charge misses for both
	// arm lines again (not guaranteed), but hit the prefix.
	p := &program.Program{Name: "join", Root: program.Seq{
		program.Line{Addr: 0x00, Fetches: 4}, // common: guaranteed
		program.Branch{
			Then: program.Line{Addr: 0x10, Fetches: 4},
			Else: program.Line{Addr: 0x20, Fetches: 4},
		},
	}}
	res, err := Analyze(p, smallPlatform())
	if err != nil {
		t.Fatal(err)
	}
	// Warm guaranteed: prefix hit (4) + worst arm still a miss (103).
	if res.WarmCycles != 4+103 {
		t.Errorf("warm = %d, want 107", res.WarmCycles)
	}
	// Reduction: only the prefix line is guaranteed reusable.
	if res.ReductionCycles != 99 {
		t.Errorf("reduction = %d, want 99", res.ReductionCycles)
	}
}

func TestMustBoundDominatesSimulation(t *testing.T) {
	// On arbitrary structured programs the guaranteed bound must dominate
	// the concrete simulation, cold and warm.
	progs := []*program.Program{
		straightLine(12), // larger than the 8-line cache: wraps around
		{Name: "mix", Root: program.Seq{
			program.ContiguousLines(0, 6, 4, 16),
			program.Loop{Body: program.Seq{
				program.Line{Addr: 0x60, Fetches: 8},
				program.Branch{
					Then: program.Line{Addr: 0x70, Fetches: 4},
					Else: program.Line{Addr: 0x80, Fetches: 6},
				},
			}, Count: 7},
			program.ContiguousLines(0x90, 3, 2, 16),
		}},
	}
	for _, p := range progs {
		res, err := Analyze(p, smallPlatform())
		if err != nil {
			t.Fatalf("%s: %v", p.Name, err)
		}
		if res.SimColdCycles > res.ColdCycles {
			t.Errorf("%s: sim cold %d exceeds bound %d", p.Name, res.SimColdCycles, res.ColdCycles)
		}
		if res.SimWarmCycles > res.WarmCycles {
			t.Errorf("%s: sim warm %d exceeds bound %d", p.Name, res.SimWarmCycles, res.WarmCycles)
		}
		if res.WarmCycles > res.ColdCycles {
			t.Errorf("%s: warm bound %d exceeds cold bound %d", p.Name, res.WarmCycles, res.ColdCycles)
		}
	}
}

func TestTaskWCETsSeconds(t *testing.T) {
	res := &Result{ColdCycles: 2000, WarmCycles: 500}
	plat := Platform{ClockHz: 20e6}
	ws := res.TaskWCETsSeconds(plat, 3)
	if len(ws) != 3 {
		t.Fatalf("len = %d", len(ws))
	}
	if ws[0] != 1e-4 || ws[1] != 2.5e-5 || ws[2] != 2.5e-5 {
		t.Errorf("wcets = %v", ws)
	}
	if res.TaskWCETsSeconds(plat, 0) != nil {
		t.Error("m=0 should be nil")
	}
}

func TestCyclesConversion(t *testing.T) {
	plat := PaperPlatform()
	if got := plat.CyclesToMicros(18151); got < 907.55-1e-9 || got > 907.55+1e-9 {
		t.Errorf("18151 cycles = %g us, want 907.55", got)
	}
	if plat.CyclesToSeconds(20) != 1e-6 {
		t.Errorf("20 cycles = %g s", plat.CyclesToSeconds(20))
	}
}

func TestSimulateRunsSteadyState(t *testing.T) {
	p := straightLine(4)
	runs := SimulateRuns(p, smallPlatform().Cache, 4)
	if runs[1] != runs[2] || runs[2] != runs[3] {
		t.Errorf("warm runs should be steady: %v", runs)
	}
	if runs[0] <= runs[1] {
		t.Errorf("cold run should cost more: %v", runs)
	}
}

func TestSimulateOnSharedCache(t *testing.T) {
	cfg := smallPlatform().Cache
	c := cachesim.MustNew(cfg)
	p1 := straightLine(8)                                                             // fills the whole cache
	p2 := &program.Program{Name: "p2", Root: program.ContiguousLines(0x80, 8, 4, 16)} // aliases p1 completely
	SimulateOn(p1, c)
	SimulateOn(p2, c) // evicts p1
	cold := SimulateOn(p1, cachesim.MustNew(cfg))
	again := SimulateOn(p1, c)
	if again != cold {
		t.Errorf("p1 after p2 should be fully cold: %d vs %d", again, cold)
	}
}

func TestAnalyzeRejectsInvalid(t *testing.T) {
	p := &program.Program{Name: "bad", Root: program.Line{Addr: 3, Fetches: 1}}
	if _, err := Analyze(p, smallPlatform()); err == nil {
		t.Error("unaligned program must be rejected")
	}
	bad := smallPlatform()
	bad.Cache.Lines = -1
	if _, err := Analyze(straightLine(2), bad); err == nil {
		t.Error("invalid cache config must be rejected")
	}
}

func TestSetAssociativeMustAnalysis(t *testing.T) {
	// 2-way cache: two conflicting lines CAN both be guaranteed.
	plat := Platform{ClockHz: 20e6, Cache: cachesim.Config{
		Lines: 8, LineSize: 16, Ways: 2, Policy: cachesim.LRU, HitCycles: 1, MissCycles: 100,
	}}
	stride := uint32(plat.Cache.Sets() * plat.Cache.LineSize)
	p := &program.Program{Name: "assoc", Root: program.Seq{
		program.Line{Addr: 0, Fetches: 4},
		program.Line{Addr: stride, Fetches: 4},
	}}
	res, err := Analyze(p, plat)
	if err != nil {
		t.Fatal(err)
	}
	if res.ReusedLines != 2 {
		t.Errorf("2-way cache should guarantee both lines reused, got %d", res.ReusedLines)
	}
	// Third line in the same set exceeds associativity: with LRU age
	// bounds only the two most recent survive.
	p3 := &program.Program{Name: "assoc3", Root: program.Seq{
		program.Line{Addr: 0, Fetches: 4},
		program.Line{Addr: stride, Fetches: 4},
		program.Line{Addr: 2 * stride, Fetches: 4},
	}}
	res3, err := Analyze(p3, plat)
	if err != nil {
		t.Fatal(err)
	}
	if res3.ReusedLines != 0 {
		t.Errorf("3 lines in a 2-way set must not be guaranteed, got %d reused", res3.ReusedLines)
	}
}
