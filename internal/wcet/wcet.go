// Package wcet computes worst-case execution times of control programs on
// the cache-equipped platform, following Section II-B of the paper:
//
//   - the WCET of a task starting with a cold cache (Ewc(1)), and
//   - the guaranteed WCET reduction Egu from instruction-cache reuse when
//     the same program runs back-to-back, giving the effective WCET of the
//     second and later tasks of a burst, Ewc(j) = Ewc(1) - Egu (Eq. 5).
//
// Two engines are provided and cross-checked against each other:
//
//  1. an abstract-interpretation "must" cache analysis (Ferdinand-style age
//     bounds with branch-join by intersection and virtual loop unrolling),
//     which yields *guaranteed* bounds as a WCET tool would; and
//  2. an exact trace simulation over the cache model, which yields the
//     concrete worst-path timing the bounds must dominate.
package wcet

import (
	"fmt"

	"repro/internal/cachesim"
	"repro/internal/program"
	"repro/internal/sched"
)

// Platform is the execution platform: processor clock plus cache geometry,
// optionally extended with a second cache level (Hier; the zero value keeps
// the single-level model).
type Platform struct {
	ClockHz float64
	Cache   cachesim.Config
	Hier    cachesim.Hierarchy
}

// PaperPlatform returns the experimental platform of Section V: 20 MHz
// clock, 128 x 16-byte direct-mapped cache, 1-cycle hit, 100-cycle miss.
func PaperPlatform() Platform {
	return Platform{ClockHz: 20e6, Cache: cachesim.PaperConfig()}
}

// CyclesToSeconds converts a cycle count to seconds on this platform.
func (p Platform) CyclesToSeconds(c int64) float64 { return float64(c) / p.ClockHz }

// CyclesToMicros converts a cycle count to microseconds on this platform.
func (p Platform) CyclesToMicros(c int64) float64 { return float64(c) * 1e6 / p.ClockHz }

// Restrict returns the platform as seen by an application owning `ways`
// dedicated ways of the shared cache (same clock, same set count, reduced
// associativity; see cachesim.Config.Restrict).
func (p Platform) Restrict(ways int) (Platform, error) {
	cfg, err := p.Cache.Restrict(ways)
	if err != nil {
		return Platform{}, err
	}
	return Platform{ClockHz: p.ClockHz, Cache: cfg}, nil
}

// Result holds the WCET analysis outcome for one program.
type Result struct {
	// Guaranteed bounds from the must analysis.
	ColdCycles      int64 // Ewc(1): worst path, cold cache
	WarmCycles      int64 // Ewc(j), j >= 2: worst path with guaranteed reuse
	ReductionCycles int64 // Egu = ColdCycles - WarmCycles

	// Concrete worst-path simulation timings (must satisfy Sim <= bound
	// for cold, and SimWarm <= WarmCycles).
	SimColdCycles int64
	SimWarmCycles int64

	// ReusedLines is ReductionCycles expressed in whole reused cache lines
	// (reduction / (miss-hit)); -1 if the reduction is not line-granular.
	ReusedLines int
}

// validateMustPolicy rejects replacement policies the must-analysis cannot
// soundly bound. The Ferdinand age-bound domain models LRU only: running it
// against a FIFO or PLRU cache can report "guaranteed" hits the concrete
// cache misses. Direct-mapped caches are policy-free.
func validateMustPolicy(cfg cachesim.Config, level string) error {
	if cfg.Ways > 1 && cfg.Policy != cachesim.LRU {
		return fmt.Errorf("wcet: must-analysis supports only LRU replacement for set-associative caches; %s is %d-way %s",
			level, cfg.Ways, cfg.Policy)
	}
	return nil
}

// Analyze runs both engines on p and returns the combined result. When the
// platform carries an enabled cache hierarchy, both engines run the
// two-level model (multi-level must-analysis vs exact HierCache trace).
func Analyze(p *program.Program, plat Platform) (*Result, error) {
	if err := plat.Cache.Validate(); err != nil {
		return nil, err
	}
	if err := validateMustPolicy(plat.Cache, "L1 cache"); err != nil {
		return nil, err
	}
	if plat.Hier.Enabled() {
		if err := plat.Hier.Validate(plat.Cache); err != nil {
			return nil, err
		}
		if err := validateMustPolicy(plat.Hier.L2, "L2 cache"); err != nil {
			return nil, err
		}
	}
	if err := p.Validate(plat.Cache.LineSize); err != nil {
		return nil, err
	}

	var cold, warm, simCold, simWarm int64
	if plat.Hier.Enabled() {
		cold, warm = hierMustBounds(p, plat.Cache, plat.Hier)
		simCold, simWarm = simulateTwoRunsHier(p, plat.Cache, plat.Hier)
	} else {
		var err error
		cold, warm, err = mustBounds(p, plat.Cache)
		if err != nil {
			return nil, err
		}
		simCold, simWarm = simulateTwoRuns(p, plat.Cache)
	}

	res := &Result{
		ColdCycles:      cold,
		WarmCycles:      warm,
		ReductionCycles: cold - warm,
		SimColdCycles:   simCold,
		SimWarmCycles:   simWarm,
		ReusedLines:     -1,
	}
	if d := int64(plat.Cache.MissCycles - plat.Cache.HitCycles); d > 0 && res.ReductionCycles%d == 0 {
		res.ReusedLines = int(res.ReductionCycles / d)
	}
	return res, nil
}

// AnalyzePartitioned analyzes p running on `ways` dedicated ways of plat's
// cache (a way partition): the must-analysis and the concrete simulation
// both run on the restricted geometry — identical set mapping, reduced
// associativity — and, because no other application can evict the
// partition's contents, the abstract state survives the gaps between the
// application's bursts. In periodic steady state every task therefore runs
// at the warm bound, including the first task of each burst; callers model
// that by using WarmCycles for the whole burst (sched.PartitionTimings).
func AnalyzePartitioned(p *program.Program, plat Platform, ways int) (*Result, error) {
	if plat.Hier.Enabled() {
		return nil, fmt.Errorf("wcet: partitioned analysis does not support cache hierarchies")
	}
	if err := validateMustPolicy(plat.Cache, "L1 cache"); err != nil {
		return nil, err
	}
	restricted, err := plat.Restrict(ways)
	if err != nil {
		return nil, err
	}
	return Analyze(p, restricted)
}

// SteadyWayTimings returns the program's steady-state schedule timing under
// every dedicated-way count: entry w-1 is the AppTiming when the
// application owns w ways, with ColdWCET == WarmWCET == the warm bound of
// the restricted analysis (the partition persists across other
// applications' bursts, so bursts have no cold start). This is the single
// home of the partition timing model; apps.PartitionTimings and the
// engine's random tasksets both build their sched.PartitionTimings tables
// from it.
func SteadyWayTimings(p *program.Program, plat Platform, name string, maxIdle float64) ([]sched.AppTiming, error) {
	out := make([]sched.AppTiming, plat.Cache.Ways)
	for w := 1; w <= plat.Cache.Ways; w++ {
		res, err := AnalyzePartitioned(p, plat, w)
		if err != nil {
			return nil, fmt.Errorf("wcet: %s on %d ways: %w", name, w, err)
		}
		warm := plat.CyclesToSeconds(res.WarmCycles)
		out[w-1] = sched.AppTiming{Name: name, ColdWCET: warm, WarmWCET: warm, MaxIdle: maxIdle}
	}
	return out, nil
}

// TaskWCETsSeconds returns the per-task WCET sequence for a burst of m
// consecutive tasks (Eq. 5): [Ewc(1), Ewc(2), ..., Ewc(m)] in seconds,
// where every task after the first benefits from the guaranteed reduction.
func (r *Result) TaskWCETsSeconds(plat Platform, m int) []float64 {
	if m <= 0 {
		return nil
	}
	out := make([]float64, m)
	out[0] = plat.CyclesToSeconds(r.ColdCycles)
	for j := 1; j < m; j++ {
		out[j] = plat.CyclesToSeconds(r.WarmCycles)
	}
	return out
}

// ---------------------------------------------------------------------------
// Engine 1: must-analysis (guaranteed bounds).
// ---------------------------------------------------------------------------

// mustState is the abstract must-cache: per set, the lines guaranteed to be
// cached with an upper bound on their LRU age (0 = most recently used).
// A line is guaranteed present iff its age bound is < ways.
//
// The state is stored flat: set s owns the entry range
// [s*ways, s*ways+cnt[s]), each entry a (line, age) pair kept sorted by line
// index. The must domain guarantees at most `ways` lines per set (at most
// k+1 lines can have age bound <= k), so the layout is exact, clone is three
// bulk copies, equality is one linear scan, and join is a sorted-run
// intersection — replacing a map per set with full rehash on every branch
// arm and loop iteration.
//
// The address arithmetic (set count, line shift) comes precomputed from
// cachesim.Geometry, so the per-access path performs no divisions.
type mustState struct {
	ways  int
	geom  cachesim.Geometry
	lines []uint32
	ages  []int32
	cnt   []int32
}

func newMustState(cfg cachesim.Config) *mustState {
	sets := cfg.Sets()
	return &mustState{
		ways:  cfg.Ways,
		geom:  cfg.Geometry(),
		lines: make([]uint32, sets*cfg.Ways),
		ages:  make([]int32, sets*cfg.Ways),
		cnt:   make([]int32, sets),
	}
}

func (s *mustState) clone() *mustState {
	return &mustState{
		ways:  s.ways,
		geom:  s.geom,
		lines: append([]uint32(nil), s.lines...),
		ages:  append([]int32(nil), s.ages...),
		cnt:   append([]int32(nil), s.cnt...),
	}
}

func (s *mustState) equal(o *mustState) bool {
	for set := range s.cnt {
		if s.cnt[set] != o.cnt[set] {
			return false
		}
		base := set * s.ways
		for i := base; i < base+int(s.cnt[set]); i++ {
			if s.lines[i] != o.lines[i] || s.ages[i] != o.ages[i] {
				return false
			}
		}
	}
	return true
}

// guaranteed reports whether the line containing addr is guaranteed cached.
func (s *mustState) guaranteed(addr uint32) bool {
	line := s.geom.Line(addr)
	set := s.geom.Set(line)
	base := set * s.ways
	for i := base; i < base+int(s.cnt[set]); i++ {
		if s.lines[i] == line {
			return true
		}
	}
	return false
}

// access applies the must-domain LRU update for one line access.
func (s *mustState) access(addr uint32) {
	line := s.geom.Line(addr)
	set := s.geom.Set(line)
	base := set * s.ways
	n := int(s.cnt[set])
	ways := int32(s.ways)

	oldAge := ways // conceptually outside the cache
	pos := -1
	for i := 0; i < n; i++ {
		if s.lines[base+i] == line {
			oldAge = s.ages[base+i]
			pos = i
			break
		}
	}
	// Age every strictly younger line by one, evicting lines that reach the
	// associativity bound; the sorted-by-line order is preserved because
	// surviving entries are compacted in place.
	w := 0
	for i := 0; i < n; i++ {
		if i == pos {
			continue // re-inserted with age 0 below
		}
		age := s.ages[base+i]
		if age < oldAge {
			age++
			if age >= ways {
				continue // evicted
			}
		}
		s.lines[base+w] = s.lines[base+i]
		s.ages[base+w] = age
		w++
	}
	// Insert the accessed line at age 0, keeping the run sorted by line.
	ins := w
	for ins > 0 && s.lines[base+ins-1] > line {
		s.lines[base+ins] = s.lines[base+ins-1]
		s.ages[base+ins] = s.ages[base+ins-1]
		ins--
	}
	s.lines[base+ins] = line
	s.ages[base+ins] = 0
	s.cnt[set] = int32(w + 1)
}

// join intersects two must states (classic must-join: keep lines guaranteed
// in both, with the larger age bound). Both runs are sorted by line, so the
// intersection is a single merge pass per set.
func join(a, b *mustState) *mustState {
	out := &mustState{
		ways:  a.ways,
		geom:  a.geom,
		lines: make([]uint32, len(a.lines)),
		ages:  make([]int32, len(a.ages)),
		cnt:   make([]int32, len(a.cnt)),
	}
	for set := range a.cnt {
		base := set * a.ways
		i, j, w := 0, 0, 0
		na, nb := int(a.cnt[set]), int(b.cnt[set])
		for i < na && j < nb {
			la, lb := a.lines[base+i], b.lines[base+j]
			switch {
			case la < lb:
				i++
			case la > lb:
				j++
			default:
				age := a.ages[base+i]
				if b.ages[base+j] > age {
					age = b.ages[base+j]
				}
				out.lines[base+w] = la
				out.ages[base+w] = age
				w++
				i++
				j++
			}
		}
		out.cnt[set] = int32(w)
	}
	return out
}

// analyzeCost walks the CFG computing a guaranteed worst-path cycle bound,
// threading the must state. Branches take the max cost and intersect the
// out-states; loops are virtually unrolled (first iteration separate,
// remaining iterations from the per-iteration fixpoint).
func analyzeCost(n program.Node, st *mustState, cfg cachesim.Config) (int64, *mustState) {
	switch v := n.(type) {
	case nil:
		return 0, st
	case program.Line:
		var c int64
		if st.guaranteed(v.Addr) {
			c = int64(v.Fetches) * int64(cfg.HitCycles)
		} else {
			c = int64(cfg.MissCycles) + int64(v.Fetches-1)*int64(cfg.HitCycles)
		}
		st.access(v.Addr)
		return c, st
	case program.Seq:
		var total int64
		for _, child := range v {
			var c int64
			c, st = analyzeCost(child, st, cfg)
			total += c
		}
		return total, st
	case program.Loop:
		// First iteration from the incoming state.
		total, cur := analyzeCost(v.Body, st, cfg)
		for k := 2; k <= v.Count; k++ {
			c, next := analyzeCost(v.Body, cur.clone(), cfg)
			if next.equal(cur) {
				// Per-iteration fixpoint reached: all remaining
				// iterations cost the same.
				total += c * int64(v.Count-k+1)
				cur = next
				break
			}
			total += c
			cur = next
		}
		return total, cur
	case program.Branch:
		ct, stThen := analyzeCost(v.Then, st.clone(), cfg)
		ce, stElse := analyzeCost(v.Else, st.clone(), cfg)
		c := ct
		if ce > c {
			c = ce
		}
		return c, join(stThen, stElse)
	}
	panic(fmt.Sprintf("wcet: unknown node type %T", n))
}

// mustBounds returns the guaranteed cold WCET and the guaranteed warm WCET
// (steady state of back-to-back executions).
func mustBounds(p *program.Program, cfg cachesim.Config) (cold, warm int64, err error) {
	st := newMustState(cfg)
	cold, st = analyzeCost(p.Root, st, cfg)

	// Iterate whole-program passes until the entry state (and hence the
	// cost) of a pass stabilizes; that pass's cost is the guaranteed warm
	// WCET. Cap the iteration defensively.
	prev := st
	for i := 0; i < 16; i++ {
		var c int64
		c, st = analyzeCost(p.Root, prev.clone(), cfg)
		if st.equal(prev) {
			return cold, c, nil
		}
		warm = c
		prev = st
	}
	// No fixpoint within the cap (pathological ping-pong): be conservative
	// and report no guaranteed reduction.
	return cold, cold, nil
}

// ---------------------------------------------------------------------------
// Engine 2: concrete worst-path simulation.
// ---------------------------------------------------------------------------

// simulateNode executes n against the concrete cache, choosing at each
// branch the arm that is costlier *from the current concrete state* (ties
// go to Then), and returns the cycle count.
func simulateNode(n program.Node, c *cachesim.Cache) int64 {
	switch v := n.(type) {
	case nil:
		return 0
	case program.Line:
		_, cyc := c.AccessRun(v.Addr, v.Fetches)
		return int64(cyc)
	case program.Seq:
		var total int64
		for _, child := range v {
			total += simulateNode(child, c)
		}
		return total
	case program.Loop:
		var total int64
		for i := 0; i < v.Count; i++ {
			total += simulateNode(v.Body, c)
		}
		return total
	case program.Branch:
		ct := simulateNode(v.Then, c.Clone())
		ce := simulateNode(v.Else, c.Clone())
		if ce > ct {
			return simulateNode(v.Else, c)
		}
		return simulateNode(v.Then, c)
	}
	panic(fmt.Sprintf("wcet: unknown node type %T", n))
}

// simulateTwoRuns returns the concrete cycles of a cold run followed by a
// warm run of the same program (back-to-back tasks of one burst).
func simulateTwoRuns(p *program.Program, cfg cachesim.Config) (coldRun, warmRun int64) {
	c := cachesim.MustNew(cfg)
	coldRun = simulateNode(p.Root, c)
	warmRun = simulateNode(p.Root, c)
	return coldRun, warmRun
}

// SimulateRuns returns the concrete per-run cycle counts of k back-to-back
// executions starting from a cold cache, using the worst-branch policy. It
// is used by integration tests to validate the burst model of Eq. (5).
func SimulateRuns(p *program.Program, cfg cachesim.Config, k int) []int64 {
	c := cachesim.MustNew(cfg)
	out := make([]int64, k)
	for i := range out {
		out[i] = simulateNode(p.Root, c)
	}
	return out
}

// SimulateOn executes p once against the provided (shared) cache, returning
// the cycle count. The cache is mutated; schedule-level integration tests
// use this to interleave multiple applications on one cache.
func SimulateOn(p *program.Program, c *cachesim.Cache) int64 {
	return simulateNode(p.Root, c)
}
