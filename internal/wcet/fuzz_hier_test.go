package wcet

// Native fuzz target for the two-level hierarchy state: the production
// hierState (flat L1 must + dynamic sorted L1 may + flat L2 must) is driven
// against a retained map-based reference through arbitrary
// access/clone/join interleavings on arbitrary small two-level geometries,
// demanding identical abstract states, identical per-access cycle costs,
// and the sorted-layout invariants after every step — mirroring
// FuzzMustStateOps for the single-level domain.
//
// Run the corpus (testdata/fuzz/FuzzHierStateOps) as part of `go test`;
// fuzz with
//
//	go test -run '^$' -fuzz FuzzHierStateOps -fuzztime 30s ./internal/wcet

import (
	"sort"
	"testing"

	"repro/internal/cachesim"
	"repro/internal/program"
)

// refMayState is the map-based executable specification of the may domain:
// per set, a map from line index to its lower-bound LRU age.
type refMayState struct {
	ways int32
	geom cachesim.Geometry
	sets []map[uint32]int32
}

func newRefMayState(cfg cachesim.Config) *refMayState {
	s := &refMayState{ways: int32(cfg.Ways), geom: cfg.Geometry(), sets: make([]map[uint32]int32, cfg.Sets())}
	for i := range s.sets {
		s.sets[i] = make(map[uint32]int32)
	}
	return s
}

func (s *refMayState) clone() *refMayState {
	n := &refMayState{ways: s.ways, geom: s.geom, sets: make([]map[uint32]int32, len(s.sets))}
	for i, m := range s.sets {
		n.sets[i] = make(map[uint32]int32, len(m))
		for k, v := range m {
			n.sets[i][k] = v
		}
	}
	return n
}

func (s *refMayState) maybe(addr uint32) bool {
	line := s.geom.Line(addr)
	_, ok := s.sets[s.geom.Set(line)][line]
	return ok
}

func (s *refMayState) access(addr uint32) {
	line := s.geom.Line(addr)
	m := s.sets[s.geom.Set(line)]
	oldAge, ok := m[line]
	if !ok {
		oldAge = s.ways
	}
	for l, age := range m {
		if l == line {
			continue
		}
		if age <= oldAge {
			age++
			if age >= s.ways {
				delete(m, l)
				continue
			}
			m[l] = age
		}
	}
	m[line] = 0
}

func refMayJoin(a, b *refMayState) *refMayState {
	out := newRefMayState(cachesim.Config{Lines: 1, LineSize: 1, Ways: 1})
	out.ways, out.geom = a.ways, a.geom
	out.sets = make([]map[uint32]int32, len(a.sets))
	for i := range a.sets {
		out.sets[i] = make(map[uint32]int32)
		for l, age := range a.sets[i] {
			out.sets[i][l] = age
		}
		for l, age := range b.sets[i] {
			if cur, ok := out.sets[i][l]; !ok || age < cur {
				out.sets[i][l] = age
			}
		}
	}
	return out
}

// canonical extracts a reference may set's entries sorted by line.
func (s *refMayState) canonical(set int) []lineAge {
	out := make([]lineAge, 0, len(s.sets[set]))
	for l, a := range s.sets[set] {
		out = append(out, lineAge{l, a})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].line < out[j].line })
	return out
}

// checkMayInvariants asserts the structural invariants of the sorted may
// layout: lines strictly sorted, ages in [0, ways), every line mapping to
// its set. (Unlike the must domain a set may hold more lines than ways.)
func checkMayInvariants(t *testing.T, s *mayState, cfg cachesim.Config) {
	t.Helper()
	geom := cfg.Geometry()
	for set, entries := range s.sets {
		for i, e := range entries {
			if i > 0 && entries[i-1].line >= e.line {
				t.Fatalf("may set %d entries unsorted: %d then %d", set, entries[i-1].line, e.line)
			}
			if e.age < 0 || e.age >= int32(cfg.Ways) {
				t.Fatalf("may set %d line %d age %d out of [0, %d)", set, e.line, e.age, cfg.Ways)
			}
			if geom.Set(e.line) != set {
				t.Fatalf("may set %d holds line %d which maps to set %d", set, e.line, geom.Set(e.line))
			}
		}
	}
}

// compareMayStates requires the sorted and reference states be the same
// abstract may-cache, and cross-checks maybe() on each held line.
func compareMayStates(t *testing.T, flat *mayState, ref *refMayState, cfg cachesim.Config) {
	t.Helper()
	for set := 0; set < cfg.Sets(); set++ {
		f := append([]mayEntry(nil), flat.sets[set]...)
		r := ref.canonical(set)
		if len(f) != len(r) {
			t.Fatalf("may set %d: sorted holds %d lines, reference %d (%v vs %v)", set, len(f), len(r), f, r)
		}
		for i := range f {
			if f[i].line != r[i].line || f[i].age != r[i].age {
				t.Fatalf("may set %d entry %d: sorted %+v, reference %+v", set, i, f[i], r[i])
			}
			addr := f[i].line << 4 // line size 16
			if !flat.maybe(addr) {
				t.Fatalf("may set %d line %d held but not maybe-cached", set, f[i].line)
			}
		}
	}
}

// refHierState is the map-based reference of the combined hierarchy state.
type refHierState struct {
	l1Must *refMustState
	l1May  *refMayState
	l2Must *refMustState
}

func newRefHierState(cfg cachesim.Config, h cachesim.Hierarchy) *refHierState {
	st := &refHierState{l1Must: newRefMustState(cfg), l1May: newRefMayState(cfg)}
	if !h.Exclusive {
		st.l2Must = newRefMustState(h.L2)
	}
	return st
}

func (s *refHierState) clone() *refHierState {
	n := &refHierState{l1Must: s.l1Must.clone(), l1May: s.l1May.clone()}
	if s.l2Must != nil {
		n.l2Must = s.l2Must.clone()
	}
	return n
}

func refHierJoin(a, b *refHierState) *refHierState {
	out := &refHierState{l1Must: refJoin(a.l1Must, b.l1Must), l1May: refMayJoin(a.l1May, b.l1May)}
	if a.l2Must != nil {
		out.l2Must = refJoin(a.l2Must, b.l2Must)
	}
	return out
}

// refGuaranteed mirrors mustState.guaranteed on the reference maps.
func refGuaranteed(s *refMustState, addr uint32) bool {
	line := s.geom.Line(addr)
	_, ok := s.sets[s.geom.Set(line)][line]
	return ok
}

// refHierAccess mirrors hierLineCost (single fetch) on the reference state.
func refHierAccess(st *refHierState, addr uint32, cfg cachesim.Config, h cachesim.Hierarchy) int64 {
	var c int64
	switch {
	case refGuaranteed(st.l1Must, addr):
		c = int64(cfg.HitCycles)
	case !st.l1May.maybe(addr):
		if st.l2Must != nil && refGuaranteed(st.l2Must, addr) {
			c = int64(h.L2.HitCycles)
		} else {
			c = int64(cfg.MissCycles)
		}
		if st.l2Must != nil {
			st.l2Must.access(addr)
		}
	default:
		if st.l2Must != nil && refGuaranteed(st.l2Must, addr) {
			c = int64(h.L2.HitCycles)
		} else {
			c = int64(cfg.MissCycles)
		}
		if st.l2Must != nil {
			touched := st.l2Must.clone()
			touched.access(addr)
			st.l2Must = refJoin(touched, st.l2Must)
		}
	}
	st.l1Must.access(addr)
	st.l1May.access(addr)
	return c
}

// compareHierStates requires all three component states agree with the
// reference.
func compareHierStates(t *testing.T, st *hierState, ref *refHierState, cfg cachesim.Config, h cachesim.Hierarchy) {
	t.Helper()
	checkFlatInvariants(t, st.l1Must, cfg)
	checkMayInvariants(t, st.l1May, cfg)
	compareStates(t, st.l1Must, ref.l1Must, cfg)
	compareMayStates(t, st.l1May, ref.l1May, cfg)
	if (st.l2Must == nil) != (ref.l2Must == nil) {
		t.Fatalf("L2 must presence diverged: production %v, reference %v", st.l2Must != nil, ref.l2Must != nil)
	}
	if st.l2Must != nil {
		checkFlatInvariants(t, st.l2Must, h.L2)
		compareStates(t, st.l2Must, ref.l2Must, h.L2)
	}
}

// fuzzHier decodes a small L2 geometry (and the arrangement bit) from two
// fuzz bytes, compatible with any fuzzConfig L1.
func fuzzHier(b2, b3 byte) cachesim.Hierarchy {
	ways := 1 << (b2 % 4) // 1, 2, 4, 8
	sets := 4 << (b3 % 3) // 4, 8, 16
	return cachesim.Hierarchy{
		L2: cachesim.Config{
			Lines: sets * ways, LineSize: 16, Ways: ways,
			Policy: cachesim.LRU, HitCycles: 10, MissCycles: 100,
		},
		Exclusive: b2&0x40 != 0,
	}
}

// FuzzHierStateOps drives two (production, reference) hierarchy-state pairs
// through an arbitrary interleaving of line accesses, clones, and joins,
// comparing states and per-access costs after every operation.
func FuzzHierStateOps(f *testing.F) {
	f.Add([]byte{0, 0, 0, 0, 0, 0, 0})
	f.Add([]byte{1, 1, 1, 1, 0, 16, 32, 1, 16, 32, 2, 0, 0})
	f.Add([]byte{2, 0, 64, 0, 0, 0, 16, 1, 0, 16, 3, 0, 0, 2, 0, 0, 0, 255, 255})
	f.Add([]byte{3, 2, 2, 1, 0, 0, 1, 1, 0, 32, 2, 0, 0, 3, 0, 0, 0, 1, 0})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) < 4 {
			return
		}
		cfg := fuzzConfig(data[0], data[1])
		h := fuzzHier(data[2], data[3])
		stA, stB := newHierState(cfg, h), newHierState(cfg, h)
		refA, refB := newRefHierState(cfg, h), newRefHierState(cfg, h)
		for i := 4; i+2 < len(data); i += 3 {
			op, a0, a1 := data[i], data[i+1], data[i+2]
			switch op % 4 {
			case 0:
				addr := fuzzAddr(a0, a1)
				got := hierLineCost(program.Line{Addr: addr, Fetches: 1}, stA, cfg, h)
				if want := refHierAccess(refA, addr, cfg, h); got != want {
					t.Fatalf("access %#x: production cost %d, reference %d", addr, got, want)
				}
			case 1:
				addr := fuzzAddr(a0, a1)
				got := hierLineCost(program.Line{Addr: addr, Fetches: 1}, stB, cfg, h)
				if want := refHierAccess(refB, addr, cfg, h); got != want {
					t.Fatalf("access %#x: production cost %d, reference %d", addr, got, want)
				}
			case 2:
				stA = hierJoin(stA, stB)
				refA = refHierJoin(refA, refB)
			case 3:
				stB = stA.clone()
				refB = refA.clone()
				if !stB.equal(stA) {
					t.Fatal("clone not equal to its source")
				}
			}
			compareHierStates(t, stA, refA, cfg, h)
			compareHierStates(t, stB, refB, cfg, h)
		}
	})
}

// TestFuzzHierHelpersAgreeOnPaperConfig pins the hierarchy fuzz reference
// against the production state on a realistic two-level geometry: a long
// access sequence with periodic joins must agree cost for cost.
func TestFuzzHierHelpersAgreeOnPaperConfig(t *testing.T) {
	cfg := cachesim.Config{Lines: 32, LineSize: 16, Ways: 2, Policy: cachesim.LRU, HitCycles: 1, MissCycles: 100}
	h := cachesim.Hierarchy{L2: cachesim.Config{
		Lines: 128, LineSize: 16, Ways: 4, Policy: cachesim.LRU, HitCycles: 10, MissCycles: 100,
	}}
	st, ref := newHierState(cfg, h), newRefHierState(cfg, h)
	other, refOther := newHierState(cfg, h), newRefHierState(cfg, h)
	for i := 0; i < 4000; i++ {
		addr := fuzzAddr(byte(i*7), byte(i*13+1))
		if got, want := hierLineCost(program.Line{Addr: addr, Fetches: 1}, st, cfg, h), refHierAccess(ref, addr, cfg, h); got != want {
			t.Fatalf("access %d (%#x): production cost %d, reference %d", i, addr, got, want)
		}
		switch i % 97 {
		case 31:
			hierLineCost(program.Line{Addr: addr ^ 0x100, Fetches: 1}, other, cfg, h)
			refHierAccess(refOther, addr^0x100, cfg, h)
		case 96:
			st = hierJoin(st, other)
			ref = refHierJoin(ref, refOther)
		}
	}
	compareHierStates(t, st, ref, cfg, h)
}
