package wcet

// Native fuzz targets for the PR-2 rewrite of the abstract must-cache: the
// flat sorted per-set (line, age) arrays with bulk-copy clone and
// merge-intersection join replaced a map-per-set representation. The fuzzer
// drives both implementations — the flat production one and the retained
// map-based reference below — through arbitrary access/clone/join
// interleavings on arbitrary small geometries and demands identical
// abstract states plus the flat layout's structural invariants after every
// step.
//
// Run the corpus (testdata/fuzz/...) as part of `go test`; fuzz with
//
//	go test -run '^$' -fuzz FuzzMustStateOps -fuzztime 30s ./internal/wcet

import (
	"sort"
	"testing"

	"repro/internal/cachesim"
)

// refMustState is the retained reference implementation: per set, a map
// from line index to LRU age bound — the representation the flat arrays
// replaced, kept here as the executable specification of the must domain.
type refMustState struct {
	ways int32
	geom cachesim.Geometry
	sets []map[uint32]int32
}

func newRefMustState(cfg cachesim.Config) *refMustState {
	s := &refMustState{ways: int32(cfg.Ways), geom: cfg.Geometry(), sets: make([]map[uint32]int32, cfg.Sets())}
	for i := range s.sets {
		s.sets[i] = make(map[uint32]int32)
	}
	return s
}

func (s *refMustState) clone() *refMustState {
	n := &refMustState{ways: s.ways, geom: s.geom, sets: make([]map[uint32]int32, len(s.sets))}
	for i, m := range s.sets {
		n.sets[i] = make(map[uint32]int32, len(m))
		for k, v := range m {
			n.sets[i][k] = v
		}
	}
	return n
}

func (s *refMustState) access(addr uint32) {
	line := s.geom.Line(addr)
	set := s.geom.Set(line)
	m := s.sets[set]
	oldAge, ok := m[line]
	if !ok {
		oldAge = s.ways
	}
	for l, age := range m {
		if l == line {
			continue
		}
		if age < oldAge {
			age++
			if age >= s.ways {
				delete(m, l)
				continue
			}
			m[l] = age
		}
	}
	m[line] = 0
}

func refJoin(a, b *refMustState) *refMustState {
	out := &refMustState{ways: a.ways, geom: a.geom, sets: make([]map[uint32]int32, len(a.sets))}
	for i := range a.sets {
		out.sets[i] = make(map[uint32]int32)
		for l, ageA := range a.sets[i] {
			if ageB, ok := b.sets[i][l]; ok {
				age := ageA
				if ageB > age {
					age = ageB
				}
				out.sets[i][l] = age
			}
		}
	}
	return out
}

// lineAge is one canonical (line, age) entry for state comparison.
type lineAge struct {
	line uint32
	age  int32
}

// canonical extracts a set's entries sorted by line.
func (s *refMustState) canonical(set int) []lineAge {
	out := make([]lineAge, 0, len(s.sets[set]))
	for l, a := range s.sets[set] {
		out = append(out, lineAge{l, a})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].line < out[j].line })
	return out
}

// flatCanonical extracts the flat state's entries of one set (already
// sorted by line per the layout invariant).
func flatCanonical(s *mustState, set int) []lineAge {
	base := set * s.ways
	out := make([]lineAge, 0, s.cnt[set])
	for i := base; i < base+int(s.cnt[set]); i++ {
		out = append(out, lineAge{s.lines[i], s.ages[i]})
	}
	return out
}

// checkFlatInvariants asserts the structural invariants of the flat layout:
// per-set entry counts within associativity, lines strictly sorted, ages in
// [0, ways), and every line actually mapping to its set.
func checkFlatInvariants(t *testing.T, s *mustState, cfg cachesim.Config) {
	t.Helper()
	for set := range s.cnt {
		n := int(s.cnt[set])
		if n < 0 || n > s.ways {
			t.Fatalf("set %d holds %d entries of %d ways", set, n, s.ways)
		}
		base := set * s.ways
		for i := 0; i < n; i++ {
			line, age := s.lines[base+i], s.ages[base+i]
			if i > 0 && s.lines[base+i-1] >= line {
				t.Fatalf("set %d entries unsorted: %d then %d", set, s.lines[base+i-1], line)
			}
			if age < 0 || age >= int32(s.ways) {
				t.Fatalf("set %d line %d age %d out of [0, %d)", set, line, age, s.ways)
			}
			if s.geom.Set(line) != set {
				t.Fatalf("set %d holds line %d which maps to set %d", set, line, s.geom.Set(line))
			}
		}
	}
}

// compareStates requires the flat and reference states be the same abstract
// must-cache, and cross-checks guaranteed() on each held line.
func compareStates(t *testing.T, flat *mustState, ref *refMustState, cfg cachesim.Config) {
	t.Helper()
	for set := 0; set < cfg.Sets(); set++ {
		f, r := flatCanonical(flat, set), ref.canonical(set)
		if len(f) != len(r) {
			t.Fatalf("set %d: flat holds %d lines, reference %d (flat %v, ref %v)", set, len(f), len(r), f, r)
		}
		for i := range f {
			if f[i] != r[i] {
				t.Fatalf("set %d entry %d: flat %+v, reference %+v", set, i, f[i], r[i])
			}
			addr := f[i].line << 4 // line size 16
			if !flat.guaranteed(addr) {
				t.Fatalf("set %d line %d held but not guaranteed", set, f[i].line)
			}
		}
	}
}

// fuzzConfig decodes a small cache geometry from two fuzz bytes.
func fuzzConfig(b0, b1 byte) cachesim.Config {
	ways := 1 << (b0 % 4) // 1, 2, 4, 8
	sets := 4 << (b1 % 3) // 4, 8, 16
	return cachesim.Config{
		Lines: sets * ways, LineSize: 16, Ways: ways,
		Policy: cachesim.LRU, HitCycles: 1, MissCycles: 100,
	}
}

// fuzzAddr decodes a line-aligned address from two fuzz bytes, spanning
// several times the largest fuzz geometry so conflicts are plentiful.
func fuzzAddr(b0, b1 byte) uint32 {
	return (uint32(b0)<<8 | uint32(b1)) % 512 << 4
}

// FuzzMustStateOps drives two (flat, reference) state pairs through an
// arbitrary interleaving of accesses, clones, and joins, comparing after
// every operation.
func FuzzMustStateOps(f *testing.F) {
	f.Add([]byte{0, 0, 0, 0, 0})
	f.Add([]byte{1, 1, 0, 16, 32, 1, 16, 32, 2, 0, 0})
	f.Add([]byte{2, 0, 0, 0, 16, 1, 0, 16, 3, 0, 0, 2, 0, 0, 0, 255, 255})
	f.Add([]byte{3, 2, 0, 1, 0, 0, 1, 16, 1, 0, 32, 2, 0, 0, 3, 0, 0, 0, 1, 0})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) < 2 {
			return
		}
		cfg := fuzzConfig(data[0], data[1])
		flatA, flatB := newMustState(cfg), newMustState(cfg)
		refA, refB := newRefMustState(cfg), newRefMustState(cfg)
		for i := 2; i+2 < len(data); i += 3 {
			op, a0, a1 := data[i], data[i+1], data[i+2]
			switch op % 4 {
			case 0:
				addr := fuzzAddr(a0, a1)
				flatA.access(addr)
				refA.access(addr)
			case 1:
				addr := fuzzAddr(a0, a1)
				flatB.access(addr)
				refB.access(addr)
			case 2:
				flatA = join(flatA, flatB)
				refA = refJoin(refA, refB)
			case 3:
				flatB = flatA.clone()
				refB = refA.clone()
				if !flatB.equal(flatA) {
					t.Fatal("clone not equal to its source")
				}
			}
			checkFlatInvariants(t, flatA, cfg)
			checkFlatInvariants(t, flatB, cfg)
			compareStates(t, flatA, refA, cfg)
			compareStates(t, flatB, refB, cfg)
		}
	})
}

// FuzzMustJoin builds two states from two access streams and checks the
// merge-intersection join against the reference plus its algebra: join is
// commutative, join(a, a) == a, and joining never grows a set beyond
// either operand.
func FuzzMustJoin(f *testing.F) {
	f.Add([]byte{0, 0}, []byte{0, 0}, []byte{16, 0})
	f.Add([]byte{1, 1, 0, 16}, []byte{0, 16, 0, 32}, []byte{32, 0, 16, 0})
	f.Add([]byte{2, 2, 255, 255, 0, 0}, []byte{1, 2, 3, 4, 5, 6}, []byte{6, 5, 4, 3, 2, 1})
	f.Fuzz(func(t *testing.T, hdr, streamA, streamB []byte) {
		if len(hdr) < 2 {
			return
		}
		cfg := fuzzConfig(hdr[0], hdr[1])
		flatA, flatB := newMustState(cfg), newMustState(cfg)
		refA, refB := newRefMustState(cfg), newRefMustState(cfg)
		for i := 0; i+1 < len(streamA); i += 2 {
			addr := fuzzAddr(streamA[i], streamA[i+1])
			flatA.access(addr)
			refA.access(addr)
		}
		for i := 0; i+1 < len(streamB); i += 2 {
			addr := fuzzAddr(streamB[i], streamB[i+1])
			flatB.access(addr)
			refB.access(addr)
		}
		j := join(flatA, flatB)
		checkFlatInvariants(t, j, cfg)
		compareStates(t, j, refJoin(refA, refB), cfg)
		if ji := join(flatB, flatA); !ji.equal(j) {
			t.Fatal("join not commutative")
		}
		if self := join(flatA, flatA); !self.equal(flatA) {
			t.Fatal("join(a, a) != a")
		}
		for set := range j.cnt {
			if j.cnt[set] > flatA.cnt[set] || j.cnt[set] > flatB.cnt[set] {
				t.Fatalf("set %d: join holds %d lines, operands %d and %d",
					set, j.cnt[set], flatA.cnt[set], flatB.cnt[set])
			}
		}
	})
}

// TestFuzzHelpersAgreeOnPaperConfig pins the fuzz reference itself against
// the production analysis on a realistic geometry: a long access sequence
// through both implementations must agree line for line.
func TestFuzzHelpersAgreeOnPaperConfig(t *testing.T) {
	cfg := cachesim.Config{Lines: 32, LineSize: 16, Ways: 4, Policy: cachesim.LRU, HitCycles: 1, MissCycles: 100}
	flat, ref := newMustState(cfg), newRefMustState(cfg)
	for i := 0; i < 4000; i++ {
		addr := fuzzAddr(byte(i*7), byte(i*13+1))
		flat.access(addr)
		ref.access(addr)
	}
	compareStates(t, flat, ref, cfg)
}
