package wcet

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/cachesim"
	"repro/internal/program"
)

func assocPlatform(lines, ways int) Platform {
	return Platform{ClockHz: 20e6, Cache: cachesim.Config{
		Lines: lines, LineSize: 16, Ways: ways, Policy: cachesim.LRU, HitCycles: 1, MissCycles: 100,
	}}
}

// AnalyzePartitioned with every way of the cache is exactly Analyze: the
// "partition" owning the whole cache is the shared cache.
func TestAnalyzePartitionedFullWaysEqualsAnalyze(t *testing.T) {
	plat := assocPlatform(128, 4)
	for seed := int64(0); seed < 10; seed++ {
		r := rand.New(rand.NewSource(seed))
		p := program.Random(r, program.RandomSpec{})
		full, err := AnalyzePartitioned(p, plat, plat.Cache.Ways)
		if err != nil {
			t.Fatal(err)
		}
		shared, err := Analyze(p, plat)
		if err != nil {
			t.Fatal(err)
		}
		if *full != *shared {
			t.Errorf("seed %d: full-ways partition %+v != shared %+v", seed, full, shared)
		}
	}
}

// The partitioned analysis is sound on its own restricted geometry (the
// bounds dominate the concrete worst-branch simulation), and warm <= cold.
func TestAnalyzePartitionedSound(t *testing.T) {
	plat := assocPlatform(128, 4)
	for seed := int64(0); seed < 20; seed++ {
		r := rand.New(rand.NewSource(seed))
		p := program.Random(r, program.RandomSpec{})
		for ways := 1; ways <= plat.Cache.Ways; ways++ {
			res, err := AnalyzePartitioned(p, plat, ways)
			if err != nil {
				t.Fatal(err)
			}
			if res.ColdCycles <= 0 || res.WarmCycles <= 0 || res.WarmCycles > res.ColdCycles {
				t.Errorf("seed %d ways %d: bounds cold=%d warm=%d", seed, ways, res.ColdCycles, res.WarmCycles)
			}
			if res.SimColdCycles > res.ColdCycles || res.SimWarmCycles > res.WarmCycles {
				t.Errorf("seed %d ways %d: simulation exceeds bounds: %+v", seed, ways, res)
			}
		}
	}
}

// The restricted view keeps the set count (and hence the address mapping)
// and errors out of range.
func TestPlatformRestrict(t *testing.T) {
	plat := assocPlatform(128, 4)
	r, err := plat.Restrict(2)
	if err != nil {
		t.Fatal(err)
	}
	if r.ClockHz != plat.ClockHz || r.Cache.Sets() != plat.Cache.Sets() || r.Cache.Ways != 2 {
		t.Errorf("restricted platform = %+v", r)
	}
	for _, bad := range []int{0, 5} {
		if _, err := plat.Restrict(bad); err == nil {
			t.Errorf("Restrict(%d) accepted", bad)
		}
	}
}

// Steady-state partition timing never has math.Inf or negative values, and
// owning more ways never hurts on branch-free programs (monotone warm
// bound; with branches must-join path effects can go either way, mirroring
// TestQuickAssociativityHelpsReuse).
func TestPartitionedWarmMonotoneBranchFree(t *testing.T) {
	plat := assocPlatform(128, 8)
	for seed := int64(0); seed < 20; seed++ {
		r := rand.New(rand.NewSource(seed))
		var build func(depth int) program.Node
		build = func(depth int) program.Node {
			if depth == 0 || r.Intn(2) == 0 {
				return program.ContiguousLines(uint32(r.Intn(64))*16, 1+r.Intn(8), 4, 16)
			}
			return program.Loop{Body: build(depth - 1), Count: 1 + r.Intn(4)}
		}
		p := &program.Program{Name: "bf", Root: program.Seq{build(2), build(2)}}
		prev := int64(math.MaxInt64)
		for ways := 1; ways <= plat.Cache.Ways; ways++ {
			res, err := AnalyzePartitioned(p, plat, ways)
			if err != nil {
				t.Fatal(err)
			}
			if res.WarmCycles > prev {
				t.Errorf("seed %d: warm bound rose from %d to %d at %d ways", seed, prev, res.WarmCycles, ways)
			}
			prev = res.WarmCycles
		}
	}
}
