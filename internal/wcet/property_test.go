package wcet

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/cachesim"
	"repro/internal/program"
)

// Property: on arbitrary structured programs and cache geometries, the
// guaranteed (must-analysis) bounds dominate concrete worst-branch
// simulation, the warm bound never exceeds the cold bound, and all costs
// are positive. This is the soundness contract of the WCET engine.
func TestQuickMustBoundsSound(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		cfg := cachesim.Config{
			Lines:      8 << r.Intn(3), // 8, 16, 32
			LineSize:   16,
			Ways:       1 << r.Intn(2), // 1, 2
			Policy:     cachesim.LRU,
			HitCycles:  1,
			MissCycles: 10 + r.Intn(90),
		}
		p := program.Random(r, program.RandomSpec{AddressSpan: cfg.Lines * 2})
		plat := Platform{ClockHz: 20e6, Cache: cfg}
		res, err := Analyze(p, plat)
		if err != nil {
			return false
		}
		return res.ColdCycles > 0 &&
			res.WarmCycles > 0 &&
			res.WarmCycles <= res.ColdCycles &&
			res.SimColdCycles <= res.ColdCycles &&
			res.SimWarmCycles <= res.WarmCycles
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}

// Property: the cold bound is monotone in the miss penalty.
func TestQuickColdMonotoneInMissCost(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		p := program.Random(r, program.RandomSpec{})
		mkPlat := func(miss int) Platform {
			return Platform{ClockHz: 20e6, Cache: cachesim.Config{
				Lines: 16, LineSize: 16, Ways: 1, HitCycles: 1, MissCycles: miss,
			}}
		}
		lo, err := Analyze(p, mkPlat(10))
		if err != nil {
			return false
		}
		hi, err := Analyze(p, mkPlat(100))
		if err != nil {
			return false
		}
		return hi.ColdCycles >= lo.ColdCycles && hi.WarmCycles >= lo.WarmCycles
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// Property: increasing associativity (same total lines, LRU) never reduces
// the number of guaranteed-reused lines on branch-free programs.
// (With branches, path-sensitive effects can go either way; straight-line
// plus loops is the monotone case.)
func TestQuickAssociativityHelpsReuse(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		// Branch-free random program: straight sections and loops only.
		var build func(depth int) program.Node
		build = func(depth int) program.Node {
			if depth == 0 || r.Intn(2) == 0 {
				return program.ContiguousLines(uint32(r.Intn(32))*16, 1+r.Intn(5), 4, 16)
			}
			return program.Loop{Body: build(depth - 1), Count: 1 + r.Intn(4)}
		}
		p := &program.Program{Name: "bf", Root: program.Seq{build(2), build(2)}}
		direct := Platform{ClockHz: 20e6, Cache: cachesim.Config{
			Lines: 16, LineSize: 16, Ways: 1, Policy: cachesim.LRU, HitCycles: 1, MissCycles: 100,
		}}
		assoc := direct
		assoc.Cache.Ways = 4
		rd, err := Analyze(p, direct)
		if err != nil {
			return false
		}
		ra, err := Analyze(p, assoc)
		if err != nil {
			return false
		}
		return ra.ReductionCycles >= rd.ReductionCycles
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// Property: simulation is deterministic — two runs of the same program on
// fresh caches agree cycle for cycle.
func TestQuickSimulationDeterministic(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		p := program.Random(r, program.RandomSpec{})
		cfg := cachesim.PaperConfig()
		a := SimulateRuns(p, cfg, 3)
		b := SimulateRuns(p, cfg, 3)
		for i := range a {
			if a[i] != b[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// Property: the third and later back-to-back runs cost no more than the
// second (the steady state is reached after one warm-up run for LRU
// direct-mapped caches on every program the generator produces).
func TestQuickSteadyStateAfterOneRun(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		p := program.Random(r, program.RandomSpec{})
		runs := SimulateRuns(p, cachesim.PaperConfig(), 4)
		return runs[2] <= runs[1] && runs[3] <= runs[1]
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
