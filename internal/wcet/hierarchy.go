// Multi-level must-analysis: guaranteed WCET bounds on two-level cache
// hierarchies (cachesim.Hierarchy), cross-checked against the exact
// HierCache trace simulation exactly like the single-level pair.
//
// Classifying an access against the L2 requires knowing whether the L1 is
// consulted at all, so the hierarchy analysis threads three abstract states
// (Hardy & Puaut's multi-level framing of the Ferdinand domains):
//
//   - an L1 must-cache (age upper bounds): guaranteed L1 hits;
//   - an L1 may-cache (age lower bounds, union join): a line absent from it
//     is guaranteed NOT in the L1, so the access is a guaranteed L1 miss
//     and the L2 is definitely consulted; and
//   - an L2 must-cache, updated with the full access transformer only on
//     guaranteed L1 misses, left untouched on guaranteed L1 hits, and moved
//     to the join of both possibilities when the L1 outcome is uncertain.
//
// Exclusive (victim-cache) hierarchies promote on L2 hits and demote L1
// victims, which breaks the monotone access transformer the must domain
// relies on; they are analyzed conservatively with no guaranteed L2 hits
// (every non-guaranteed-L1 access is bounded by the memory latency), which
// the exact simulation can only improve on.
package wcet

import (
	"fmt"

	"repro/internal/cachesim"
	"repro/internal/program"
)

func badNode(n program.Node) string { return fmt.Sprintf("wcet: unknown node type %T", n) }

// ---------------------------------------------------------------------------
// May-analysis: lower bounds on LRU ages, the dual of mustState.
// ---------------------------------------------------------------------------

// mayEntry is one (line, lower-bound age) pair of the abstract may-cache.
type mayEntry struct {
	line uint32
	age  int32
}

// mayState is the abstract may-cache: per set, every line possibly cached,
// with a lower bound on its LRU age. A line absent from its set is
// guaranteed not cached. Unlike the must domain, a set can track more lines
// than its associativity (several lines may share a lower bound after a
// join), so sets are dynamically sized slices kept sorted by line.
type mayState struct {
	ways int32
	geom cachesim.Geometry
	sets [][]mayEntry
}

func newMayState(cfg cachesim.Config) *mayState {
	return &mayState{
		ways: int32(cfg.Ways),
		geom: cfg.Geometry(),
		sets: make([][]mayEntry, cfg.Sets()),
	}
}

func (s *mayState) clone() *mayState {
	n := &mayState{ways: s.ways, geom: s.geom, sets: make([][]mayEntry, len(s.sets))}
	for i, set := range s.sets {
		if len(set) > 0 {
			n.sets[i] = append([]mayEntry(nil), set...)
		}
	}
	return n
}

func (s *mayState) equal(o *mayState) bool {
	for i, set := range s.sets {
		if len(set) != len(o.sets[i]) {
			return false
		}
		for j, e := range set {
			if e != o.sets[i][j] {
				return false
			}
		}
	}
	return true
}

// maybe reports whether the line containing addr may be cached; false means
// a guaranteed miss.
func (s *mayState) maybe(addr uint32) bool {
	line := s.geom.Line(addr)
	for _, e := range s.sets[s.geom.Set(line)] {
		if e.line == line {
			return true
		}
	}
	return false
}

// access applies the may-domain LRU update: the accessed line moves to age
// 0, and every line whose lower bound does not exceed the accessed line's
// old lower bound ages by one (in every concretization attaining its lower
// bound such a line is younger than — or tied below — the accessed line, so
// it ages; lines bounded strictly older may stay put). Lines aged to the
// associativity limit may have been evicted and leave the state.
func (s *mayState) access(addr uint32) {
	line := s.geom.Line(addr)
	set := s.geom.Set(line)
	entries := s.sets[set]

	oldAge := s.ways // absent: guaranteed not cached, everything ages
	for _, e := range entries {
		if e.line == line {
			oldAge = e.age
			break
		}
	}
	w := 0
	for _, e := range entries {
		if e.line == line {
			continue // re-inserted at age 0 below
		}
		if e.age <= oldAge {
			e.age++
			if e.age >= s.ways {
				continue // possibly evicted: no longer possibly cached
			}
		}
		entries[w] = e
		w++
	}
	entries = entries[:w]
	// Insert the accessed line at age 0, keeping the run sorted by line.
	ins := len(entries)
	entries = append(entries, mayEntry{})
	for ins > 0 && entries[ins-1].line > line {
		entries[ins] = entries[ins-1]
		ins--
	}
	entries[ins] = mayEntry{line: line, age: 0}
	s.sets[set] = entries
}

// mayJoin unions two may states (classic may-join: keep every line possibly
// cached in either, with the smaller age bound). Both runs are sorted by
// line, so the union is a single merge pass per set.
func mayJoin(a, b *mayState) *mayState {
	out := &mayState{ways: a.ways, geom: a.geom, sets: make([][]mayEntry, len(a.sets))}
	for set := range a.sets {
		sa, sb := a.sets[set], b.sets[set]
		if len(sa) == 0 && len(sb) == 0 {
			continue
		}
		merged := make([]mayEntry, 0, len(sa)+len(sb))
		i, j := 0, 0
		for i < len(sa) && j < len(sb) {
			switch {
			case sa[i].line < sb[j].line:
				merged = append(merged, sa[i])
				i++
			case sa[i].line > sb[j].line:
				merged = append(merged, sb[j])
				j++
			default:
				age := sa[i].age
				if sb[j].age < age {
					age = sb[j].age
				}
				merged = append(merged, mayEntry{line: sa[i].line, age: age})
				i++
				j++
			}
		}
		merged = append(merged, sa[i:]...)
		merged = append(merged, sb[j:]...)
		out.sets[set] = merged
	}
	return out
}

// ---------------------------------------------------------------------------
// Combined hierarchy state and the multi-level cost walker.
// ---------------------------------------------------------------------------

// hierState bundles the three abstract states of the multi-level analysis.
// l2Must is nil for exclusive hierarchies (no guaranteed L2 hits).
type hierState struct {
	l1Must *mustState
	l1May  *mayState
	l2Must *mustState
}

func newHierState(cfg cachesim.Config, h cachesim.Hierarchy) *hierState {
	st := &hierState{l1Must: newMustState(cfg), l1May: newMayState(cfg)}
	if !h.Exclusive {
		st.l2Must = newMustState(h.L2)
	}
	return st
}

func (s *hierState) clone() *hierState {
	n := &hierState{l1Must: s.l1Must.clone(), l1May: s.l1May.clone()}
	if s.l2Must != nil {
		n.l2Must = s.l2Must.clone()
	}
	return n
}

func (s *hierState) equal(o *hierState) bool {
	if !s.l1Must.equal(o.l1Must) || !s.l1May.equal(o.l1May) {
		return false
	}
	if (s.l2Must == nil) != (o.l2Must == nil) {
		return false
	}
	return s.l2Must == nil || s.l2Must.equal(o.l2Must)
}

func hierJoin(a, b *hierState) *hierState {
	out := &hierState{l1Must: join(a.l1Must, b.l1Must), l1May: mayJoin(a.l1May, b.l1May)}
	if a.l2Must != nil {
		out.l2Must = join(a.l2Must, b.l2Must)
	}
	return out
}

// hierLineCost classifies one line access against the hierarchy state,
// returns its guaranteed cycle bound, and applies the abstract updates.
func hierLineCost(v program.Line, st *hierState, cfg cachesim.Config, h cachesim.Hierarchy) int64 {
	hit1 := int64(cfg.HitCycles)
	var c int64
	switch {
	case st.l1Must.guaranteed(v.Addr):
		// Guaranteed L1 hit: the L2 is not consulted.
		c = int64(v.Fetches) * hit1
	case !st.l1May.maybe(v.Addr):
		// Guaranteed L1 miss: the L2 is definitely consulted, so its must
		// state takes the full access transformer.
		if st.l2Must != nil && st.l2Must.guaranteed(v.Addr) {
			c = int64(h.L2.HitCycles) + int64(v.Fetches-1)*hit1
		} else {
			c = int64(cfg.MissCycles) + int64(v.Fetches-1)*hit1
		}
		if st.l2Must != nil {
			st.l2Must.access(v.Addr)
		}
	default:
		// Uncertain L1 outcome. The worst cost is still bounded by a
		// guaranteed L2 hit when one holds (an L1 hit would be cheaper
		// yet); the L2 may or may not see the access, so its must state
		// moves to the join of both possibilities.
		if st.l2Must != nil && st.l2Must.guaranteed(v.Addr) {
			c = int64(h.L2.HitCycles) + int64(v.Fetches-1)*hit1
		} else {
			c = int64(cfg.MissCycles) + int64(v.Fetches-1)*hit1
		}
		if st.l2Must != nil {
			touched := st.l2Must.clone()
			touched.access(v.Addr)
			st.l2Must = join(touched, st.l2Must)
		}
	}
	// Whatever happened below it, the L1 ends up holding the line: hits
	// refresh it, misses fill it (both arrangements).
	st.l1Must.access(v.Addr)
	st.l1May.access(v.Addr)
	return c
}

// analyzeHierCost is analyzeCost over the combined hierarchy state: same
// CFG walk, same virtual loop unrolling, same branch max + join.
func analyzeHierCost(n program.Node, st *hierState, cfg cachesim.Config, h cachesim.Hierarchy) (int64, *hierState) {
	switch v := n.(type) {
	case nil:
		return 0, st
	case program.Line:
		return hierLineCost(v, st, cfg, h), st
	case program.Seq:
		var total int64
		for _, child := range v {
			var c int64
			c, st = analyzeHierCost(child, st, cfg, h)
			total += c
		}
		return total, st
	case program.Loop:
		total, cur := analyzeHierCost(v.Body, st, cfg, h)
		for k := 2; k <= v.Count; k++ {
			c, next := analyzeHierCost(v.Body, cur.clone(), cfg, h)
			if next.equal(cur) {
				total += c * int64(v.Count-k+1)
				cur = next
				break
			}
			total += c
			cur = next
		}
		return total, cur
	case program.Branch:
		ct, stThen := analyzeHierCost(v.Then, st.clone(), cfg, h)
		ce, stElse := analyzeHierCost(v.Else, st.clone(), cfg, h)
		c := ct
		if ce > c {
			c = ce
		}
		return c, hierJoin(stThen, stElse)
	}
	panic(badNode(n))
}

// hierMustBounds is mustBounds over the hierarchy: the guaranteed cold WCET
// and the guaranteed warm WCET from the whole-program fixpoint of all three
// abstract states.
//
// Unlike the single-level analysis, the warm bound can exceed the cold
// bound: the cold pass knows the caches start empty, so every access is a
// guaranteed L1 miss that definitely reaches the L2, building a strong L2
// must state (many guaranteed L2 hits); in steady state the may analysis
// turns those accesses "uncertain", the L2 must state weakens through
// joins, and the warm bound can rise above cold. Both bounds stay sound
// individually, and the Result contract (Egu >= 0, Eq. 5) is restored by
// raising the cold bound to the warm one — raising an upper bound is
// always sound. With a degenerate L2 (hit cost == memory cost) the pass
// costs equal the single-level ones, so the clamp is a no-op and the
// degenerate equivalence stays bit-exact.
func hierMustBounds(p *program.Program, cfg cachesim.Config, h cachesim.Hierarchy) (cold, warm int64) {
	st := newHierState(cfg, h)
	cold, st = analyzeHierCost(p.Root, st, cfg, h)

	prev := st
	for i := 0; i < 64; i++ {
		var c int64
		c, st = analyzeHierCost(p.Root, prev.clone(), cfg, h)
		if st.equal(prev) {
			if c > cold {
				cold = c
			}
			return cold, c
		}
		prev = st
	}
	// No fixpoint within the cap (pathological ping-pong): fall back to the
	// trivially sound all-miss bound for both values.
	wc := allMissCost(p.Root, cfg)
	if wc < cold {
		wc = cold
	}
	return wc, wc
}

// allMissCost is the structural worst case with no cache guarantees at all:
// every line access pays the memory latency. It bounds any run from any
// cache state.
func allMissCost(n program.Node, cfg cachesim.Config) int64 {
	switch v := n.(type) {
	case nil:
		return 0
	case program.Line:
		return int64(cfg.MissCycles) + int64(v.Fetches-1)*int64(cfg.HitCycles)
	case program.Seq:
		var total int64
		for _, child := range v {
			total += allMissCost(child, cfg)
		}
		return total
	case program.Loop:
		return int64(v.Count) * allMissCost(v.Body, cfg)
	case program.Branch:
		ct, ce := allMissCost(v.Then, cfg), allMissCost(v.Else, cfg)
		if ce > ct {
			return ce
		}
		return ct
	}
	panic(badNode(n))
}

// ---------------------------------------------------------------------------
// Exact two-level trace simulation (the cross-check engine).
// ---------------------------------------------------------------------------

// simulateHierNode is simulateNode against the concrete two-level cache:
// same worst-branch policy (costlier arm from the current state, ties to
// Then).
func simulateHierNode(n program.Node, c *cachesim.HierCache) int64 {
	switch v := n.(type) {
	case nil:
		return 0
	case program.Line:
		return int64(c.AccessRun(v.Addr, v.Fetches))
	case program.Seq:
		var total int64
		for _, child := range v {
			total += simulateHierNode(child, c)
		}
		return total
	case program.Loop:
		var total int64
		for i := 0; i < v.Count; i++ {
			total += simulateHierNode(v.Body, c)
		}
		return total
	case program.Branch:
		ct := simulateHierNode(v.Then, c.Clone())
		ce := simulateHierNode(v.Else, c.Clone())
		if ce > ct {
			return simulateHierNode(v.Else, c)
		}
		return simulateHierNode(v.Then, c)
	}
	panic(badNode(n))
}

// simulateTwoRunsHier returns the concrete cycles of a cold run followed by
// a warm run through the two-level cache.
func simulateTwoRunsHier(p *program.Program, cfg cachesim.Config, h cachesim.Hierarchy) (coldRun, warmRun int64) {
	c := cachesim.MustNewHier(cfg, h)
	coldRun = simulateHierNode(p.Root, c)
	warmRun = simulateHierNode(p.Root, c)
	return coldRun, warmRun
}

// SimulateHierRuns returns the concrete per-run cycle counts of k
// back-to-back executions through a two-level cache starting cold, using
// the worst-branch policy; the hierarchy twin of SimulateRuns.
func SimulateHierRuns(p *program.Program, cfg cachesim.Config, h cachesim.Hierarchy, k int) []int64 {
	c := cachesim.MustNewHier(cfg, h)
	out := make([]int64, k)
	for i := range out {
		out[i] = simulateHierNode(p.Root, c)
	}
	return out
}
