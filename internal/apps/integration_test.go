package apps

import (
	"testing"

	"repro/internal/cachesim"
	"repro/internal/sched"
	"repro/internal/wcet"
)

// TestScheduleCacheSimulation validates the burst WCET model of Eq. (5) at
// the instruction level: executing the full schedule's task sequence on ONE
// shared cache must give exactly the analytical per-task timings — the
// first task of each burst pays the cold WCET (the other applications evict
// everything reusable in between; the programs' cache-set layouts are
// coordinated to guarantee it) and each later task of a burst pays the
// reduced warm WCET.
func TestScheduleCacheSimulation(t *testing.T) {
	plat := wcet.PaperPlatform()
	study := CaseStudy()
	results := make([]*wcet.Result, len(study))
	for i, a := range study {
		r, err := wcet.Analyze(a.Program, plat)
		if err != nil {
			t.Fatal(err)
		}
		results[i] = r
	}

	for _, s := range []sched.Schedule{{1, 1, 1}, {2, 2, 2}, {3, 2, 3}, {2, 1, 4}} {
		cache := cachesim.MustNew(plat.Cache)
		// Warm-up period: the very first burst of the very first period
		// starts from a truly empty cache, which is also "cold", so the
		// model applies from the start; run two full periods and check
		// every task.
		for period := 0; period < 2; period++ {
			for i, a := range study {
				for j := 0; j < s[i]; j++ {
					got := wcet.SimulateOn(a.Program, cache)
					want := results[i].WarmCycles
					if j == 0 {
						want = results[i].ColdCycles
					}
					if got != want {
						t.Errorf("schedule %v period %d %s task %d: %d cycles, want %d",
							s, period, a.Name, j+1, got, want)
					}
				}
			}
		}
	}
}

// TestCrossAppEviction verifies the layout coordination directly: after any
// other application's program runs, an application's first task is fully
// cold again (no partial reuse carries across applications).
func TestCrossAppEviction(t *testing.T) {
	plat := wcet.PaperPlatform()
	study := CaseStudy()
	for i, victim := range study {
		res, err := wcet.Analyze(victim.Program, plat)
		if err != nil {
			t.Fatal(err)
		}
		for k, other := range study {
			if k == i {
				continue
			}
			// Pair (i, k) alone does not have to evict everything; the
			// paper's schedule always runs BOTH other apps in between.
			_ = other
		}
		cache := cachesim.MustNew(plat.Cache)
		wcet.SimulateOn(victim.Program, cache) // warm the cache with victim
		for k, other := range study {
			if k != i {
				wcet.SimulateOn(other.Program, cache)
			}
		}
		got := wcet.SimulateOn(victim.Program, cache)
		if got != res.ColdCycles {
			t.Errorf("%s after the other two apps: %d cycles, want cold %d",
				victim.Name, got, res.ColdCycles)
		}
	}
}

// TestBackToBackSteadyState confirms that within a burst every execution
// after the second costs the same as the second (the model's Ewc(j) for all
// j >= 2 being a single warm value).
func TestBackToBackSteadyState(t *testing.T) {
	plat := wcet.PaperPlatform()
	for _, a := range CaseStudy() {
		runs := wcet.SimulateRuns(a.Program, plat.Cache, 6)
		for j := 2; j < len(runs); j++ {
			if runs[j] != runs[1] {
				t.Errorf("%s run %d: %d cycles, want steady %d", a.Name, j+1, runs[j], runs[1])
			}
		}
	}
}
