package apps

import "repro/internal/program"

// The synthetic control programs below are constructed so that the WCET
// analysis on the paper's cache (128 lines x 16 B, direct-mapped, 1-cycle
// hit / 100-cycle miss, 20 MHz) reproduces Table I *exactly*:
//
//	            cold WCET      guaranteed reduction   warm WCET
//	C1 (servo)  907.55 us      455.40 us              452.15 us
//	C2 (motor)  645.25 us      470.25 us              175.00 us
//	C3 (brake)  749.15 us      234.35 us  <- derived: 749.15-514.80
//
// In cycles at 20 MHz: cold 18151/12905/14983, reductions 9108/9405/10296 —
// each reduction is exactly 99 cycles x {92, 95, 104} reused cache lines.
//
// Each program has three kinds of code sections:
//
//   - a reusable region ("S1"): straight-line prologue, a bounded main
//     control loop, and an epilogue, all placed in cache sets that nothing
//     else in the program maps to, so they are guaranteed to persist
//     between back-to-back runs (these are the reused lines of Table I);
//   - an alias group: an init section and a tail section (plus, for C1, an
//     if/else pair of equally sized branch arms) laid out 2 KB apart so
//     they map to the same cache sets and evict one another every run —
//     these lines never produce guaranteed reuse;
//   - instruction densities (fetches per 16-byte line, 4..8 = mixed 2/4
//     byte encodings as on the XC2000-family ISA) chosen to land the cycle
//     counts exactly.
//
// The set ranges of the three programs are coordinated so that every
// program's reusable region is completely covered by the union of the other
// two programs' footprints: when another application's burst runs in
// between, the first task of the next burst is exactly cold, matching the
// schedule model of Section II (validated by an integration test).
const (
	lineSize  = 16
	aliasStep = 2048 // cache size: 128 sets x 16 B; +2048 B aliases the same set

	baseC1 = 0x00010000
	baseC2 = 0x00020000
	baseC3 = 0x00030000
)

// section builds n contiguous one-line blocks starting at cache set
// firstSet of alias copy copyIdx, with the given per-line fetch count.
func section(base uint32, copyIdx, firstSet, n, fetches int) program.Seq {
	addr := base + uint32(copyIdx)*aliasStep + uint32(firstSet)*lineSize
	return program.ContiguousLines(addr, n, fetches, lineSize)
}

// mixedSection is section with per-line fetch counts.
func mixedSection(base uint32, copyIdx, firstSet int, fetches []int) program.Seq {
	addr := base + uint32(copyIdx)*aliasStep + uint32(firstSet)*lineSize
	s := make(program.Seq, len(fetches))
	for i, f := range fetches {
		s[i] = program.Line{Addr: addr + uint32(i*lineSize), Fetches: f}
	}
	return s
}

func repeatInts(v, n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = v
	}
	return out
}

// ServoProgram is C1's control program: 136 lines (2176 B, larger than the
// 2 KB cache) with a 60-line filter loop iterated 12 times and a
// mode-selection branch. Cold 18151 cycles, warm 9043 cycles (92 lines
// guaranteed reused).
func ServoProgram() *program.Program {
	// Alias group at sets 108..127 (20 lines): init (copy 0), branch arms
	// (copies 1 and 2, 4 lines each, equal cost), tail (copy 3).
	init := section(baseC1, 0, 108, 20, 4)
	armThen := section(baseC1, 1, 108, 4, 4)
	armElse := section(baseC1, 2, 108, 4, 4)
	tail := section(baseC1, 3, 108, 20, 4)

	// Reusable region at sets 0..91 (92 lines).
	//   prologue: sets 0..15, 13 lines @4 + 3 lines @5 fetches
	//   loop body: sets 16..75, 5 lines @7 + 55 lines @6, 12 iterations
	//   epilogue: sets 76..91, 16 lines @4
	prologue := mixedSection(baseC1, 0, 0, append(repeatInts(4, 13), 5, 5, 5))
	body := mixedSection(baseC1, 0, 16, append(repeatInts(7, 5), repeatInts(6, 55)...))
	epilogue := section(baseC1, 0, 76, 16, 4)

	return &program.Program{
		Name: "servo-position",
		Root: program.Seq{
			init,
			prologue,
			program.Loop{Body: body, Count: 12},
			program.Branch{Then: armThen, Else: armElse},
			epilogue,
			tail,
		},
	}
}

// DCMotorProgram is C2's control program: 115 lines with a 25-line PI/field
// loop iterated 4 times; all lines at the full fetch density. Cold 12905
// cycles, warm 3500 cycles (95 lines guaranteed reused).
func DCMotorProgram() *program.Program {
	init := section(baseC2, 0, 95, 10, 8)
	tail := section(baseC2, 1, 95, 10, 8)
	prologue := section(baseC2, 0, 0, 35, 8)
	body := section(baseC2, 0, 35, 25, 8)
	epilogue := section(baseC2, 0, 60, 35, 8)
	return &program.Program{
		Name: "dcmotor-speed",
		Root: program.Seq{
			init,
			prologue,
			program.Loop{Body: body, Count: 4},
			epilogue,
			tail,
		},
	}
}

// WedgeBrakeProgram is C3's control program: 130 lines (2080 B, larger than
// the cache) with a 45-line wedge-dynamics loop iterated 4 times. Cold
// 14983 cycles, warm 4687 cycles (104 lines guaranteed reused).
func WedgeBrakeProgram() *program.Program {
	init := section(baseC3, 0, 104, 13, 8)
	tail := section(baseC3, 1, 104, 13, 8)
	prologue := mixedSection(baseC3, 0, 0, append(repeatInts(7, 7), repeatInts(8, 23)...))
	body := section(baseC3, 0, 30, 45, 8)
	epilogue := section(baseC3, 0, 75, 29, 8)
	return &program.Program{
		Name: "wedgebrake-force",
		Root: program.Seq{
			init,
			prologue,
			program.Loop{Body: body, Count: 4},
			epilogue,
			tail,
		},
	}
}
