package apps

import (
	"math"
	"testing"

	"repro/internal/lti"
	"repro/internal/wcet"
)

// TestTableIExact verifies the headline calibration: the WCET analysis of
// the three synthetic programs on the paper's platform reproduces Table I
// to the microsecond.
func TestTableIExact(t *testing.T) {
	plat := wcet.PaperPlatform()
	want := []struct {
		name      string
		coldUs    float64
		reduceUs  float64
		warmUs    float64
		coldCyc   int64
		reuseLine int
	}{
		{"C1", 907.55, 455.40, 452.15, 18151, 92},
		{"C2", 645.25, 470.25, 175.00, 12905, 95},
		{"C3", 749.15, 514.80, 234.35, 14983, 104},
	}
	for i, a := range CaseStudy() {
		res, err := wcet.Analyze(a.Program, plat)
		if err != nil {
			t.Fatalf("%s: %v", a.Name, err)
		}
		w := want[i]
		if res.ColdCycles != w.coldCyc {
			t.Errorf("%s cold = %d cycles (%.2f us), want %d (%.2f us)",
				a.Name, res.ColdCycles, plat.CyclesToMicros(res.ColdCycles), w.coldCyc, w.coldUs)
		}
		if got := plat.CyclesToMicros(res.ReductionCycles); math.Abs(got-w.reduceUs) > 1e-9 {
			t.Errorf("%s reduction = %.4f us, want %.2f us", a.Name, got, w.reduceUs)
		}
		if got := plat.CyclesToMicros(res.WarmCycles); math.Abs(got-w.warmUs) > 1e-9 {
			t.Errorf("%s warm = %.4f us, want %.2f us", a.Name, got, w.warmUs)
		}
		if res.ReusedLines != w.reuseLine {
			t.Errorf("%s reused lines = %d, want %d", a.Name, res.ReusedLines, w.reuseLine)
		}
		// The analytical guarantee must agree with concrete simulation on
		// these conflict-engineered programs.
		if res.SimColdCycles != res.ColdCycles {
			t.Errorf("%s: sim cold %d != bound %d", a.Name, res.SimColdCycles, res.ColdCycles)
		}
		if res.SimWarmCycles != res.WarmCycles {
			t.Errorf("%s: sim warm %d != bound %d", a.Name, res.SimWarmCycles, res.WarmCycles)
		}
	}
}

func TestProgramsValidate(t *testing.T) {
	for _, a := range CaseStudy() {
		if err := a.Program.Validate(lineSize); err != nil {
			t.Errorf("%s: %v", a.Name, err)
		}
	}
}

func TestProgramFootprints(t *testing.T) {
	// C1 and C3 must be larger than the 2 KB cache (the paper's premise);
	// C2's cycle budget mathematically cannot exceed it (see DESIGN.md).
	byName := map[string]int{}
	for _, a := range CaseStudy() {
		byName[a.Name] = a.Program.CodeBytes(lineSize)
	}
	if byName["C1"] <= 2048 {
		t.Errorf("C1 footprint %d B should exceed the 2 KB cache", byName["C1"])
	}
	if byName["C3"] <= 2048 {
		t.Errorf("C3 footprint %d B should exceed the 2 KB cache", byName["C3"])
	}
	if byName["C2"] >= 2048 {
		t.Errorf("C2 footprint %d B expected below cache size by construction", byName["C2"])
	}
}

func TestTableIIParameters(t *testing.T) {
	apps := CaseStudy()
	weights := 0.0
	for _, a := range apps {
		weights += a.Weight
	}
	if math.Abs(weights-1) > 1e-12 {
		t.Errorf("weights sum to %g, want 1", weights)
	}
	wantDeadline := []float64{45e-3, 20e-3, 17.5e-3}
	wantIdle := []float64{3.4e-3, 3.9e-3, 3.5e-3}
	for i, a := range apps {
		if a.SettleDeadline != wantDeadline[i] {
			t.Errorf("%s deadline %g", a.Name, a.SettleDeadline)
		}
		if a.MaxIdle != wantIdle[i] {
			t.Errorf("%s idle bound %g", a.Name, a.MaxIdle)
		}
	}
}

func TestPlantsAreControllable(t *testing.T) {
	for _, a := range CaseStudy() {
		if !lti.IsControllable(a.Plant.A, a.Plant.B) {
			t.Errorf("%s plant not controllable", a.Name)
		}
		if a.Plant.Order() != 2 {
			t.Errorf("%s order %d", a.Name, a.Plant.Order())
		}
	}
}

func TestTimings(t *testing.T) {
	plat := wcet.PaperPlatform()
	ts, rs, err := Timings(CaseStudy(), plat)
	if err != nil {
		t.Fatal(err)
	}
	if len(ts) != 3 || len(rs) != 3 {
		t.Fatal("wrong lengths")
	}
	// Timing must carry Table I cold/warm WCETs in seconds.
	if math.Abs(ts[0].ColdWCET-907.55e-6) > 1e-12 {
		t.Errorf("C1 cold timing %g", ts[0].ColdWCET)
	}
	if math.Abs(ts[1].WarmWCET-175e-6) > 1e-12 {
		t.Errorf("C2 warm timing %g", ts[1].WarmWCET)
	}
	if ts[2].MaxIdle != 3.5e-3 {
		t.Errorf("C3 idle bound %g", ts[2].MaxIdle)
	}
}

func TestConstraintsAccessor(t *testing.T) {
	a := CaseStudy()[0]
	c := a.Constraints()
	if c.Ref != a.Ref || c.UMax != a.UMax || c.SettleDeadline != a.SettleDeadline {
		t.Error("constraints accessor mismatch")
	}
}
