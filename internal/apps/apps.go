// Package apps defines the paper's automotive case study (Section V): three
// control applications sharing one microcontroller —
//
//	C1: position control of a servo motor (steer-by-wire),
//	C2: speed control of a DC motor (EV cruise control),
//	C3: control of the electronic wedge brake (brake-by-wire),
//
// each consisting of a continuous-time plant model, the design constraints
// of Table II, and a synthetic instruction-level control program whose
// cache/WCET analysis reproduces Table I exactly on the paper's platform
// (128 x 16-byte direct-mapped cache, 1-cycle hit, 100-cycle miss, 20 MHz).
//
// The plants in the paper come from references [16]-[18] whose parameters
// the paper does not reprint; the models here are physically plausible
// stand-ins with dynamics on the same time scale (documented in DESIGN.md).
package apps

import (
	"repro/internal/ctrl"
	"repro/internal/lti"
	"repro/internal/program"
	"repro/internal/sched"
	"repro/internal/wcet"
)

// App bundles everything the framework needs about one control application.
type App struct {
	Name           string
	Plant          *lti.System
	Program        *program.Program
	Weight         float64 // w_i of Eq. (2)
	SettleDeadline float64 // s_max_i (seconds), also the normalization s0_i
	MaxIdle        float64 // t_idle_i (seconds), constraint (4)
	Ref            float64 // reference step magnitude for the evaluation
	UMax           float64 // input saturation bound
}

// Constraints returns the ctrl-level constraint set of the application.
func (a App) Constraints() ctrl.Constraints {
	return ctrl.Constraints{
		Ref:            a.Ref,
		UMax:           a.UMax,
		SettleDeadline: a.SettleDeadline,
	}
}

// Timing runs the WCET analysis of the application's program on the
// platform and returns its schedule-level timing parameters.
func (a App) Timing(plat wcet.Platform) (sched.AppTiming, *wcet.Result, error) {
	res, err := wcet.Analyze(a.Program, plat)
	if err != nil {
		return sched.AppTiming{}, nil, err
	}
	return sched.AppTiming{
		Name:     a.Name,
		ColdWCET: plat.CyclesToSeconds(res.ColdCycles),
		WarmWCET: plat.CyclesToSeconds(res.WarmCycles),
		MaxIdle:  a.MaxIdle,
	}, res, nil
}

// Timings analyzes all apps at once.
func Timings(apps []App, plat wcet.Platform) ([]sched.AppTiming, []*wcet.Result, error) {
	ts := make([]sched.AppTiming, len(apps))
	rs := make([]*wcet.Result, len(apps))
	for i, a := range apps {
		t, r, err := a.Timing(plat)
		if err != nil {
			return nil, nil, err
		}
		ts[i] = t
		rs[i] = r
	}
	return ts, rs, nil
}

// WayTimings analyzes every app under each possible dedicated-way count,
// returning the ByWays table of the joint co-design (entry [w-1][i] is app
// i's steady-state timing owning w ways; see wcet.SteadyWayTimings for the
// model). Callers that already hold the shared timings (core.New) pair it
// with them directly instead of re-analyzing through PartitionTimings.
func WayTimings(apps []App, plat wcet.Platform) ([][]sched.AppTiming, error) {
	byWays := make([][]sched.AppTiming, plat.Cache.Ways)
	for w := range byWays {
		byWays[w] = make([]sched.AppTiming, len(apps))
	}
	for i, a := range apps {
		col, err := wcet.SteadyWayTimings(a.Program, plat, a.Name, a.MaxIdle)
		if err != nil {
			return nil, err
		}
		for w := range col {
			byWays[w][i] = col[w]
		}
	}
	return byWays, nil
}

// PartitionTimings analyzes every app both on the shared cache and under
// every possible dedicated-way count, returning the timing table of the
// joint cache-partition + schedule co-design (see sched.PartitionTimings).
func PartitionTimings(apps []App, plat wcet.Platform) (sched.PartitionTimings, error) {
	shared, _, err := Timings(apps, plat)
	if err != nil {
		return sched.PartitionTimings{}, err
	}
	byWays, err := WayTimings(apps, plat)
	if err != nil {
		return sched.PartitionTimings{}, err
	}
	return sched.PartitionTimings{Shared: shared, ByWays: byWays}, nil
}

// CaseStudy returns the paper's three applications with Table II parameters:
// weights 0.4/0.4/0.2, settling deadlines 45/20/17.5 ms, and maximum idle
// times 3.4/3.9/3.5 ms.
func CaseStudy() []App {
	return []App{
		{
			Name:           "C1",
			Plant:          ServoPlant(),
			Program:        ServoProgram(),
			Weight:         0.4,
			SettleDeadline: 45e-3,
			MaxIdle:        3.4e-3,
			Ref:            0.2, // rad, matching Fig. 6's y range
			UMax:           48,  // V
		},
		{
			Name:           "C2",
			Plant:          DCMotorPlant(),
			Program:        DCMotorProgram(),
			Weight:         0.4,
			SettleDeadline: 20e-3,
			MaxIdle:        3.9e-3,
			Ref:            40, // rad/s speed step
			UMax:           24, // V
		},
		{
			Name:           "C3",
			Plant:          WedgeBrakePlant(),
			Program:        WedgeBrakeProgram(),
			Weight:         0.2,
			SettleDeadline: 17.5e-3,
			MaxIdle:        3.5e-3,
			Ref:            2000, // N clamp force, matching Fig. 6
			UMax:           30,
		},
	}
}
