package apps

import (
	"repro/internal/lti"
	"repro/internal/mat"
)

// ServoPlant models C1, the position loop of a steer-by-wire servo motor
// (paper ref. [16]): a voltage-driven DC servo whose position responds as
// an integrator behind the mechanical pole,
//
//	theta_dot = omega
//	omega_dot = -(1/tau_m) omega + (Km/tau_m) u
//
// with mechanical time constant tau_m = 10 ms and gain chosen so a few
// volts slews the wheel at ~1 rad within tens of milliseconds. States are
// [theta (rad); omega (rad/s)], input is the drive voltage, output the
// position in radians (Fig. 6 top).
func ServoPlant() *lti.System {
	const tauM = 0.010 // s
	const km = 4.0     // (rad/s)/V at steady state
	return lti.MustSystem(
		mat.NewFromRows([][]float64{
			{0, 1},
			{0, -1 / tauM},
		}),
		mat.ColVec(0, km/tauM),
		mat.RowVec(1, 0),
	)
}

// DCMotorPlant models C2, the speed loop of an EV cruise-control DC motor
// (paper ref. [17]): standard armature dynamics
//
//	J omega_dot = Kt i - b omega
//	L i_dot    = -R i - Ke omega + u
//
// with J = 1e-4 kg m^2, b = 1e-4 N m s, Kt = Ke = 0.05, R = 1 Ohm,
// L = 1 mH. States are [omega (rad/s); i (A)], input the terminal voltage,
// output the speed (Fig. 6 middle, which the paper labels in round/s).
func DCMotorPlant() *lti.System {
	const (
		j  = 1e-4
		b  = 1e-4
		kt = 0.05
		ke = 0.05
		r  = 1.0
		l  = 1e-3
	)
	return lti.MustSystem(
		mat.NewFromRows([][]float64{
			{-b / j, kt / j},
			{-ke / l, -r / l},
		}),
		mat.ColVec(0, 1/l),
		mat.RowVec(1, 0),
	)
}

// WedgeBrakePlant models C3, the clamp-force loop of the Siemens electronic
// wedge brake (paper ref. [18]): the wedge/caliper compliance acts as a
// lightly damped second-order stage between motor force and clamp force,
//
//	x_dot = v
//	v_dot = -(k/m) x - (c/m) v + (g/m) u
//	y     = k_c x   (clamp force, N)
//
// with natural frequency ~300 rad/s and damping ratio 0.25, on the 17.5 ms
// settling scale of Table II. Output reaches the ~2 kN range of Fig. 6.
func WedgeBrakePlant() *lti.System {
	const (
		wn   = 700.0 // rad/s
		zeta = 0.08
		kc   = 9e4   // N per m of wedge travel
		gain = 545.0 // (m/s^2) per input unit: u_ss ~ 20 for a 2 kN step
	)
	return lti.MustSystem(
		mat.NewFromRows([][]float64{
			{0, 1},
			{-wn * wn, -2 * zeta * wn},
		}),
		mat.ColVec(0, gain),
		mat.RowVec(kc, 0),
	)
}
