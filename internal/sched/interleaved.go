package sched

import (
	"fmt"
	"strings"
)

// Burst is one run of consecutive tasks of a single application inside an
// interleaved schedule.
type Burst struct {
	App   int // application index
	Count int // number of consecutive tasks
}

// Interleaved is a generalized periodic schedule in which an application
// may appear in several bursts per period, e.g. (m1(1), m2, m1(2), m3).
// This implements the future-work extension sketched in Section VI of the
// paper. A plain Schedule (m1, ..., mn) is the special case of one burst
// per application in index order.
type Interleaved []Burst

// FromSchedule converts a plain periodic schedule to its interleaved
// representation.
func FromSchedule(s Schedule) Interleaved {
	out := make(Interleaved, 0, len(s))
	for i, m := range s {
		out = append(out, Burst{App: i, Count: m})
	}
	return out
}

// Valid checks that bursts reference valid applications with positive
// counts, that every application appears at least once, and that no two
// adjacent bursts (cyclically) belong to the same application (they would
// simply merge).
func (iv Interleaved) Valid(n int) error {
	if len(iv) == 0 {
		return fmt.Errorf("sched: empty interleaved schedule")
	}
	seen := make([]bool, n)
	for _, b := range iv {
		if b.App < 0 || b.App >= n {
			return fmt.Errorf("sched: burst references app %d of %d", b.App, n)
		}
		if b.Count < 1 {
			return fmt.Errorf("sched: burst of app %d has count %d", b.App, b.Count)
		}
		seen[b.App] = true
	}
	for i, ok := range seen {
		if !ok {
			return fmt.Errorf("sched: app %d never scheduled", i)
		}
	}
	for i, b := range iv {
		next := iv[(i+1)%len(iv)]
		if len(iv) > 1 && b.App == next.App {
			return fmt.Errorf("sched: adjacent bursts %d and %d belong to the same app %d", i, (i+1)%len(iv), b.App)
		}
	}
	return nil
}

// String renders e.g. "(C0 x2 | C1 x1 | C0 x1)".
func (iv Interleaved) String() string {
	parts := make([]string, len(iv))
	for i, b := range iv {
		parts[i] = fmt.Sprintf("C%d x%d", b.App, b.Count)
	}
	return "(" + strings.Join(parts, " | ") + ")"
}

// TaskCount returns the total tasks of app per period.
func (iv Interleaved) TaskCount(app int) int {
	n := 0
	for _, b := range iv {
		if b.App == app {
			n += b.Count
		}
	}
	return n
}

// DeriveInterleaved computes per-application control timing under an
// interleaved schedule. The cache-reuse model follows the paper: the first
// task of every burst runs cold (other applications have polluted the
// cache in between), and tasks after the first within a burst run warm.
// Sampling periods are the distances between consecutive task start times
// of the same application around the period.
func DeriveInterleaved(apps []AppTiming, iv Interleaved) ([]AppSchedule, error) {
	if err := iv.Valid(len(apps)); err != nil {
		return nil, err
	}
	for _, a := range apps {
		if err := a.Validate(); err != nil {
			return nil, err
		}
	}
	// Lay out all tasks in time.
	type taskInst struct {
		app   int
		start float64
		wcet  float64
	}
	var tasks []taskInst
	t := 0.0
	for _, b := range iv {
		app := apps[b.App]
		for j := 0; j < b.Count; j++ {
			w := app.WarmWCET
			if j == 0 {
				w = app.ColdWCET
			}
			tasks = append(tasks, taskInst{app: b.App, start: t, wcet: w})
			t += w
		}
	}
	period := t

	out := make([]AppSchedule, len(apps))
	for i := range apps {
		var starts, wcets []float64
		for _, tk := range tasks {
			if tk.app == i {
				starts = append(starts, tk.start)
				wcets = append(wcets, tk.wcet)
			}
		}
		m := len(starts)
		periods := make([]float64, m)
		delays := make([]float64, m)
		for j := 0; j < m; j++ {
			next := j + 1
			if next == m {
				periods[j] = period - starts[j] + starts[0]
			} else {
				periods[j] = starts[next] - starts[j]
			}
			delays[j] = wcets[j]
		}
		// Gap: the longest stretch with no task of this app running,
		// reported for diagnostics (the idle before the burst that the
		// worst-case settling measurement starts after).
		gap := 0.0
		for j := 0; j < m; j++ {
			if g := periods[j] - wcets[j]; g > gap {
				gap = g
			}
		}
		out[i] = AppSchedule{
			Name: apps[i].Name, M: m,
			WCETs: wcets, Periods: periods, Delays: delays, Gap: gap,
		}
	}
	return out, nil
}

// IdleFeasibleInterleaved checks constraint (4) for interleaved schedules.
func IdleFeasibleInterleaved(apps []AppTiming, iv Interleaved) (bool, error) {
	der, err := DeriveInterleaved(apps, iv)
	if err != nil {
		return false, err
	}
	for i, a := range der {
		if apps[i].MaxIdle > 0 && a.MaxPeriod() > apps[i].MaxIdle+1e-12 {
			return false, nil
		}
	}
	return true, nil
}
