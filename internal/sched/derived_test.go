package sched

import (
	"fmt"
	"math"
	"math/rand"
	"strings"
	"testing"
)

func randomTimings(r *rand.Rand, n int) []AppTiming {
	apps := make([]AppTiming, n)
	for i := range apps {
		cold := 1e-6 * (10 + 90*r.Float64())
		apps[i] = AppTiming{
			Name:     fmt.Sprintf("A%d", i),
			ColdWCET: cold,
			WarmWCET: cold * (0.3 + 0.7*r.Float64()),
		}
	}
	rr := PeriodLength(apps, RoundRobin(n))
	for i := range apps {
		switch r.Intn(3) {
		case 0:
			apps[i].MaxIdle = 0 // unconstrained
		default:
			apps[i].MaxIdle = rr * (0.8 + 3*r.Float64())
		}
	}
	return apps
}

func randomSchedule(r *rand.Rand, n, maxM int) Schedule {
	s := make(Schedule, n)
	for i := range s {
		s[i] = 1 + r.Intn(maxM)
	}
	return s
}

// idleFeasibleReference is the original Derive-based formulation, kept as
// the bit-identity reference for the closed-form IdleFeasible.
func idleFeasibleReference(apps []AppTiming, s Schedule) (bool, error) {
	der, err := Derive(apps, s)
	if err != nil {
		return false, err
	}
	for i, a := range der {
		if apps[i].MaxIdle > 0 && a.MaxPeriod() > apps[i].MaxIdle+1e-12 {
			return false, nil
		}
	}
	return true, nil
}

// TestIdleFeasibleMatchesDerive pins the allocation-free IdleFeasible
// against the Derive-based reference across random tasksets, including the
// error paths.
func TestIdleFeasibleMatchesDerive(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	for trial := 0; trial < 500; trial++ {
		n := 1 + r.Intn(5)
		apps := randomTimings(r, n)
		s := randomSchedule(r, n, 8)
		want, errW := idleFeasibleReference(apps, s)
		got, errG := IdleFeasible(apps, s)
		if want != got || (errW == nil) != (errG == nil) {
			t.Fatalf("trial %d: fast (%v, %v) vs reference (%v, %v) for %v", trial, got, errG, want, errW, s)
		}
	}
	// Error paths: invalid schedule, invalid timing.
	apps := randomTimings(r, 2)
	for _, bad := range []Schedule{{1}, {0, 1}, {1, 1, 1}} {
		want, errW := idleFeasibleReference(apps, bad)
		got, errG := IdleFeasible(apps, bad)
		if want != got || (errW == nil) != (errG == nil) {
			t.Fatalf("schedule %v: fast (%v, %v) vs reference (%v, %v)", bad, got, errG, want, errW)
		}
		if errW != nil && errW.Error() != errG.Error() {
			t.Fatalf("schedule %v: error text %q vs %q", bad, errG, errW)
		}
	}
	broken := []AppTiming{{Name: "bad", ColdWCET: 1e-6, WarmWCET: 2e-6}}
	_, errW := idleFeasibleReference(broken, Schedule{1})
	_, errG := IdleFeasible(broken, Schedule{1})
	if errW == nil || errG == nil || errW.Error() != errG.Error() {
		t.Fatalf("invalid timing: %v vs %v", errG, errW)
	}
}

// TestDerivedClosedFormsMatchDense pins BurstGap/DerivedMaxPeriod/
// DerivedHyperPeriod against the materialized AppSchedule bit for bit.
func TestDerivedClosedFormsMatchDense(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	for trial := 0; trial < 500; trial++ {
		n := 1 + r.Intn(5)
		apps := randomTimings(r, n)
		s := randomSchedule(r, n, 8)
		der, err := Derive(apps, s)
		if err != nil {
			t.Fatal(err)
		}
		for i, a := range der {
			gap := BurstGap(apps, s, i)
			if math.Float64bits(gap) != math.Float64bits(a.Gap) {
				t.Fatalf("trial %d app %d: gap %x, dense %x", trial, i, gap, a.Gap)
			}
			if got, want := DerivedMaxPeriod(apps[i], s[i], gap), a.MaxPeriod(); math.Float64bits(got) != math.Float64bits(want) {
				t.Fatalf("trial %d app %d: max period %x, dense %x", trial, i, got, want)
			}
			if got, want := DerivedHyperPeriod(apps[i], s[i], gap), a.HyperPeriod(); math.Float64bits(got) != math.Float64bits(want) {
				t.Fatalf("trial %d app %d: hyper period %x, dense %x", trial, i, got, want)
			}
		}
	}
}

// TestScheduleStringMatchesReference pins the strconv-based renderings
// (which double as cache keys) against the fmt-based originals.
func TestScheduleStringMatchesReference(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	refSchedule := func(s Schedule) string {
		parts := make([]string, len(s))
		for i, m := range s {
			parts[i] = fmt.Sprint(m)
		}
		return "(" + strings.Join(parts, ", ") + ")"
	}
	refWays := func(w Ways) string {
		if len(w) == 0 {
			return "shared"
		}
		parts := make([]string, len(w))
		for i, v := range w {
			parts[i] = fmt.Sprint(v)
		}
		return "[" + strings.Join(parts, " ") + "]"
	}
	for trial := 0; trial < 200; trial++ {
		n := 1 + r.Intn(6)
		s := make(Schedule, n)
		w := make(Ways, n)
		for i := range s {
			s[i] = r.Intn(100) - 10 // String must render any int, not just valid bursts
			w[i] = r.Intn(20)
		}
		if got, want := s.String(), refSchedule(s); got != want {
			t.Fatalf("schedule %v: %q vs %q", []int(s), got, want)
		}
		if got, want := w.String(), refWays(w); got != want {
			t.Fatalf("ways %v: %q vs %q", []int(w), got, want)
		}
		j := JointSchedule{M: s, W: w}
		if got, want := j.Key(), s.String()+"|w"+w.String(); got != want {
			t.Fatalf("joint key %q vs %q", got, want)
		}
	}
	if got := (Ways{}).String(); got != "shared" {
		t.Fatalf("empty ways: %q", got)
	}
}

// TestIdleFeasibleAllocFree pins that the hot predicate does not allocate.
func TestIdleFeasibleAllocFree(t *testing.T) {
	apps := randomTimings(rand.New(rand.NewSource(4)), 3)
	s := Schedule{2, 3, 1}
	allocs := testing.AllocsPerRun(100, func() {
		if _, err := IdleFeasible(apps, s); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("IdleFeasible allocates %g per call", allocs)
	}
}
