package sched

import (
	"testing"
)

func jointTestTimings() PartitionTimings {
	// Two apps on a 4-way cache. Shared: cold 10, warm 4 / cold 8, warm 3.
	// Partitioned steady state improves with ways.
	mk := func(name string, cold, warm, idle float64) AppTiming {
		return AppTiming{Name: name, ColdWCET: cold, WarmWCET: warm, MaxIdle: idle}
	}
	flat := func(name string, w, idle float64) AppTiming { return mk(name, w, w, idle) }
	return PartitionTimings{
		Shared: []AppTiming{mk("A", 10e-6, 4e-6, 100e-6), mk("B", 8e-6, 3e-6, 100e-6)},
		ByWays: [][]AppTiming{
			{flat("A", 9e-6, 100e-6), flat("B", 7e-6, 100e-6)},
			{flat("A", 5e-6, 100e-6), flat("B", 4e-6, 100e-6)},
			{flat("A", 4e-6, 100e-6), flat("B", 3e-6, 100e-6)},
			{flat("A", 4e-6, 100e-6), flat("B", 3e-6, 100e-6)},
		},
	}
}

func TestWaysValidAndHelpers(t *testing.T) {
	if !(Ways{}).Valid(3, 1) {
		t.Error("empty ways (shared) must be valid for any app count")
	}
	cases := []struct {
		w     Ways
		n, tw int
		want  bool
	}{
		{Ways{2, 1}, 2, 4, true},
		{Ways{2, 2}, 2, 4, true},
		{Ways{3, 2}, 2, 4, false}, // over budget
		{Ways{2, 0}, 2, 4, false}, // zero ways
		{Ways{2}, 2, 4, false},    // wrong length
	}
	for _, c := range cases {
		if got := c.w.Valid(c.n, c.tw); got != c.want {
			t.Errorf("%v.Valid(%d, %d) = %v, want %v", c.w, c.n, c.tw, got, c.want)
		}
	}
	if s := (Ways{2, 1}).Sum(); s != 3 {
		t.Errorf("Sum = %d", s)
	}
	if ew := EvenWays(3, 8); !ew.Equal(Ways{2, 2, 2}) {
		t.Errorf("EvenWays(3, 8) = %v", ew)
	}
	if ew := EvenWays(3, 2); ew != nil {
		t.Errorf("EvenWays(3, 2) = %v, want nil", ew)
	}
}

func TestJointScheduleKeyAndString(t *testing.T) {
	m := Schedule{3, 2}
	shared := SharedPoint(m)
	if !shared.Shared() || shared.Key() != m.Key() || shared.String() != m.String() {
		t.Errorf("shared point: key %q string %q", shared.Key(), shared.String())
	}
	part := JointSchedule{M: m, W: Ways{2, 1}}
	if part.Shared() {
		t.Error("partitioned point reports shared")
	}
	if part.Key() == shared.Key() {
		t.Error("partitioned key collides with shared key")
	}
	if want := "(3, 2)x[2 1]"; part.String() != want {
		t.Errorf("String = %q, want %q", part.String(), want)
	}
	clone := part.Clone()
	clone.W[0] = 1
	clone.M[0] = 1
	if part.W[0] != 2 || part.M[0] != 3 {
		t.Error("Clone shares backing arrays")
	}
	if !part.Equal(JointSchedule{M: Schedule{3, 2}, W: Ways{2, 1}}) || part.Equal(shared) {
		t.Error("Equal misbehaves")
	}
}

func TestEnumeratePartitions(t *testing.T) {
	if got := EnumeratePartitions(3, 2); got != nil {
		t.Errorf("n=3, ways=2: %v, want none", got)
	}
	got := EnumeratePartitions(2, 3)
	want := []Ways{{1, 1}, {1, 2}, {2, 1}}
	if len(got) != len(want) {
		t.Fatalf("partitions = %v, want %v", got, want)
	}
	for i := range want {
		if !got[i].Equal(want[i]) {
			t.Errorf("partition %d = %v, want %v", i, got[i], want[i])
		}
	}
	// Count check: n=3, ways=8 has sum_{s=3..8} C(s-1,2) = 56 partitions.
	if got := EnumeratePartitions(3, 8); len(got) != 56 {
		t.Errorf("n=3, ways=8: %d partitions, want 56", len(got))
	}
}

func TestPartitionTimingsLookupAndFeasible(t *testing.T) {
	pt := jointTestTimings()
	if err := pt.Validate(); err != nil {
		t.Fatal(err)
	}
	if pt.Apps() != 2 || pt.TotalWays() != 4 {
		t.Fatalf("shape: %d apps, %d ways", pt.Apps(), pt.TotalWays())
	}

	shared, err := pt.Timings(SharedPoint(Schedule{1, 1}))
	if err != nil {
		t.Fatal(err)
	}
	if &shared[0] != &pt.Shared[0] {
		t.Error("shared lookup must alias the shared taskset")
	}

	part, err := pt.Timings(JointSchedule{M: Schedule{1, 1}, W: Ways{3, 1}})
	if err != nil {
		t.Fatal(err)
	}
	if part[0].ColdWCET != 4e-6 || part[1].ColdWCET != 7e-6 {
		t.Errorf("per-way lookup = %+v", part)
	}
	if part[0].ColdWCET != part[0].WarmWCET {
		t.Error("partitioned timing must be steady state (cold == warm)")
	}

	if _, err := pt.Timings(JointSchedule{M: Schedule{1, 1}, W: Ways{4, 1}}); err == nil {
		t.Error("over-budget lookup accepted")
	}

	if ok, _ := pt.Feasible(SharedPoint(Schedule{1, 1})); !ok {
		t.Error("round robin infeasible")
	}
	if ok, _ := pt.Feasible(JointSchedule{M: Schedule{1, 1}, W: Ways{4, 1}}); ok {
		t.Error("over-budget point feasible")
	}
	// Idle constraint still binds: a giant burst blows the 100us budget.
	if ok, _ := pt.Feasible(JointSchedule{M: Schedule{40, 1}, W: Ways{2, 2}}); ok {
		t.Error("idle-infeasible point accepted")
	}
}

func TestEnumerateJointFeasible(t *testing.T) {
	pt := jointTestTimings()
	maxM := 3
	list, err := EnumerateJointFeasible(pt, maxM)
	if err != nil {
		t.Fatal(err)
	}
	sharedOnly, err := EnumerateFeasible(pt.Shared, maxM)
	if err != nil {
		t.Fatal(err)
	}
	// Prefix: the shared subspace in EnumerateFeasible order.
	if len(list) < len(sharedOnly) {
		t.Fatalf("joint box %d < shared box %d", len(list), len(sharedOnly))
	}
	for i, m := range sharedOnly {
		if !list[i].Shared() || !list[i].M.Equal(m) {
			t.Fatalf("joint[%d] = %v, want shared %v", i, list[i], m)
		}
	}
	// Remainder: partitioned points only, all feasible, no duplicate keys.
	seen := map[string]bool{}
	for _, j := range list {
		if seen[j.Key()] {
			t.Fatalf("duplicate joint point %v", j)
		}
		seen[j.Key()] = true
		ok, err := pt.Feasible(j)
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			t.Errorf("enumerated infeasible point %v", j)
		}
	}
	for _, j := range list[len(sharedOnly):] {
		if j.Shared() {
			t.Errorf("shared point %v after the shared prefix", j)
		}
	}
}
