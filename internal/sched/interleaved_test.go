package sched

import (
	"math"
	"testing"
)

func TestInterleavedValid(t *testing.T) {
	ok := Interleaved{{App: 0, Count: 2}, {App: 1, Count: 1}, {App: 0, Count: 1}, {App: 2, Count: 1}}
	if err := ok.Valid(3); err != nil {
		t.Errorf("valid interleaved rejected: %v", err)
	}
	cases := []struct {
		name string
		iv   Interleaved
		n    int
	}{
		{"empty", Interleaved{}, 2},
		{"bad app", Interleaved{{App: 5, Count: 1}}, 2},
		{"bad count", Interleaved{{App: 0, Count: 0}, {App: 1, Count: 1}}, 2},
		{"missing app", Interleaved{{App: 0, Count: 1}}, 2},
		{"adjacent same", Interleaved{{App: 0, Count: 1}, {App: 0, Count: 1}, {App: 1, Count: 1}}, 2},
		{"cyclic adjacent", Interleaved{{App: 0, Count: 1}, {App: 1, Count: 1}, {App: 0, Count: 2}}, 2},
	}
	for _, c := range cases {
		if err := c.iv.Valid(c.n); err == nil {
			t.Errorf("%s: expected error", c.name)
		}
	}
}

func TestFromSchedule(t *testing.T) {
	iv := FromSchedule(Schedule{2, 3})
	if len(iv) != 2 || iv[0] != (Burst{App: 0, Count: 2}) || iv[1] != (Burst{App: 1, Count: 3}) {
		t.Errorf("FromSchedule: %v", iv)
	}
	if iv.TaskCount(1) != 3 {
		t.Error("TaskCount wrong")
	}
}

func TestDeriveInterleavedMatchesPlainForSingleBursts(t *testing.T) {
	apps := paperApps()
	s := Schedule{2, 2, 2}
	plain, err := Derive(apps, s)
	if err != nil {
		t.Fatal(err)
	}
	inter, err := DeriveInterleaved(apps, FromSchedule(s))
	if err != nil {
		t.Fatal(err)
	}
	for i := range plain {
		if len(plain[i].Periods) != len(inter[i].Periods) {
			t.Fatalf("app %d: period count mismatch", i)
		}
		for j := range plain[i].Periods {
			if math.Abs(plain[i].Periods[j]-inter[i].Periods[j]) > 1e-12 {
				t.Errorf("app %d h(%d): plain %g inter %g", i, j, plain[i].Periods[j], inter[i].Periods[j])
			}
			if math.Abs(plain[i].Delays[j]-inter[i].Delays[j]) > 1e-15 {
				t.Errorf("app %d tau(%d) mismatch", i, j)
			}
		}
	}
}

func TestDeriveInterleavedSplitBurst(t *testing.T) {
	apps := paperApps()
	// (C1 x1 | C2 x1 | C1 x1 | C3 x1): C1 appears twice, both tasks COLD
	// because other apps run in between.
	iv := Interleaved{{App: 0, Count: 1}, {App: 1, Count: 1}, {App: 0, Count: 1}, {App: 2, Count: 1}}
	der, err := DeriveInterleaved(apps, iv)
	if err != nil {
		t.Fatal(err)
	}
	c1 := der[0]
	if c1.M != 2 {
		t.Fatalf("C1 task count = %d", c1.M)
	}
	for j, w := range c1.WCETs {
		if math.Abs(w-apps[0].ColdWCET) > 1e-15 {
			t.Errorf("C1 task %d WCET %g, want cold %g", j, w, apps[0].ColdWCET)
		}
	}
	// First period: start of 2nd C1 task - start of first = cold(C1)+cold(C2).
	want0 := apps[0].ColdWCET + apps[1].ColdWCET
	if math.Abs(c1.Periods[0]-want0) > 1e-12 {
		t.Errorf("C1 h(1) = %g, want %g", c1.Periods[0], want0)
	}
	// Periods wrap the full hyper-period.
	total := apps[0].ColdWCET*2 + apps[1].ColdWCET + apps[2].ColdWCET
	if math.Abs(c1.HyperPeriod()-total) > 1e-12 {
		t.Errorf("hyper-period %g, want %g", c1.HyperPeriod(), total)
	}
}

func TestDeriveInterleavedWarmWithinBurst(t *testing.T) {
	apps := paperApps()
	iv := Interleaved{{App: 0, Count: 3}, {App: 1, Count: 1}, {App: 2, Count: 1}}
	der, err := DeriveInterleaved(apps, iv)
	if err != nil {
		t.Fatal(err)
	}
	c1 := der[0]
	if math.Abs(c1.WCETs[0]-apps[0].ColdWCET) > 1e-15 ||
		math.Abs(c1.WCETs[1]-apps[0].WarmWCET) > 1e-15 ||
		math.Abs(c1.WCETs[2]-apps[0].WarmWCET) > 1e-15 {
		t.Errorf("burst WCETs: %v", c1.WCETs)
	}
}

func TestIdleFeasibleInterleaved(t *testing.T) {
	apps := paperApps()
	// Splitting C1's burst reduces its longest gap, so a schedule that is
	// idle-infeasible as (1, 10, 10)-style bursts can become feasible
	// interleaved. Just verify the checker runs and respects bounds.
	iv := Interleaved{{App: 0, Count: 1}, {App: 1, Count: 2}, {App: 0, Count: 1}, {App: 2, Count: 2}}
	ok, err := IdleFeasibleInterleaved(apps, iv)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Error("modest interleaved schedule should be feasible")
	}
	bad := Interleaved{{App: 0, Count: 1}, {App: 1, Count: 30}, {App: 2, Count: 30}}
	ok, err = IdleFeasibleInterleaved(apps, bad)
	if err != nil || ok {
		t.Error("starving schedule should be infeasible")
	}
}

func TestInterleavedString(t *testing.T) {
	iv := Interleaved{{App: 0, Count: 2}, {App: 1, Count: 1}}
	if iv.String() != "(C0 x2 | C1 x1)" {
		t.Errorf("String = %q", iv.String())
	}
}
