// Joint cache-partition + schedule co-design points: a schedule (m1..mn)
// paired with an optional way partition (w1..wn) of the shared cache
// (Sun et al., "Co-Optimizing Cache Partitioning and Multi-Core Task
// Scheduling", PAPERS.md).
//
// Two cache regimes are modeled:
//
//   - shared (the paper's model, W empty): all applications contend for the
//     whole cache, so the first task of every burst starts cold and the
//     timing is the AppTiming (cold, warm) pair of wcet.Analyze;
//   - partitioned (W non-empty): application i owns w_i dedicated ways, no
//     inter-application eviction is possible, and in periodic steady state
//     every task — including the first of each burst — runs at the warm
//     bound of the reduced-associativity analysis (wcet.AnalyzePartitioned),
//     so its AppTiming has ColdWCET == WarmWCET.
//
// The package stays platform-agnostic: PartitionTimings carries the
// pre-analyzed per-way-count timing table; internal/apps and internal/engine
// build it from WCET analyses.
package sched

import (
	"fmt"
	"strconv"
	"strings"
)

// Ways is a cache partition in way counts: entry i is the number of
// dedicated ways application i owns. An empty Ways means the applications
// share the whole cache (the paper's model).
type Ways []int

// Clone returns a copy of w.
func (w Ways) Clone() Ways {
	if len(w) == 0 {
		return nil
	}
	return append(Ways(nil), w...)
}

// Equal reports element-wise equality (two empty values are equal).
func (w Ways) Equal(o Ways) bool {
	if len(w) != len(o) {
		return false
	}
	for i := range w {
		if w[i] != o[i] {
			return false
		}
	}
	return true
}

// Sum returns the total number of ways the partition uses.
func (w Ways) Sum() int {
	s := 0
	for _, v := range w {
		s += v
	}
	return s
}

// Valid reports whether the partition assigns every one of n applications
// at least one way without exceeding totalWays in sum. An empty Ways is
// valid for any n (shared cache).
func (w Ways) Valid(n, totalWays int) bool {
	if len(w) == 0 {
		return true
	}
	if len(w) != n {
		return false
	}
	for _, v := range w {
		if v < 1 {
			return false
		}
	}
	return w.Sum() <= totalWays
}

// String renders the partition as "[w1 w2 ... wn]", or "shared" when empty.
// Like Schedule.String it doubles as cache-key material, so it builds the
// string directly.
func (w Ways) String() string {
	if len(w) == 0 {
		return "shared"
	}
	var b strings.Builder
	b.Grow(2 + 3*len(w))
	b.WriteByte('[')
	for i, v := range w {
		if i > 0 {
			b.WriteByte(' ')
		}
		b.WriteString(strconv.Itoa(v))
	}
	b.WriteByte(']')
	return b.String()
}

// EvenWays splits totalWays evenly over n applications (floor division),
// returning nil when fewer than one way per application is available.
func EvenWays(n, totalWays int) Ways {
	if n < 1 || totalWays/n < 1 {
		return nil
	}
	w := make(Ways, n)
	for i := range w {
		w[i] = totalWays / n
	}
	return w
}

// JointSchedule is one point of the joint co-design space: the burst-count
// schedule M plus the way partition W (empty = shared cache).
type JointSchedule struct {
	M Schedule
	W Ways
}

// SharedPoint wraps a schedule as the shared-cache joint point.
func SharedPoint(m Schedule) JointSchedule { return JointSchedule{M: m.Clone()} }

// Shared reports whether the point uses the shared (unpartitioned) cache.
func (j JointSchedule) Shared() bool { return len(j.W) == 0 }

// Clone returns a deep copy of j.
func (j JointSchedule) Clone() JointSchedule {
	return JointSchedule{M: j.M.Clone(), W: j.W.Clone()}
}

// Equal reports whether both the schedule and the partition match.
func (j JointSchedule) Equal(o JointSchedule) bool {
	return j.M.Equal(o.M) && j.W.Equal(o.W)
}

// Key returns a canonical memoization key. Shared points key exactly like
// their plain schedule, so a joint cache over the shared subspace coincides
// with the schedule-only cache keying.
func (j JointSchedule) Key() string {
	if j.Shared() {
		return j.M.Key()
	}
	return j.M.Key() + "|w" + j.W.String()
}

// String renders the point as "(m1, ..., mn)" or "(m1, ..., mn)x[w1 ... wn]".
func (j JointSchedule) String() string {
	if j.Shared() {
		return j.M.String()
	}
	return j.M.String() + "x" + j.W.String()
}

// PartitionTimings is the pre-analyzed timing table of the joint co-design
// space for one taskset on one platform:
//
//   - Shared is the unpartitioned taskset (cold-start bursts, today's model);
//   - ByWays[w-1][i] is application i's steady-state timing when it owns w
//     dedicated ways: ColdWCET == WarmWCET == the warm bound of the
//     reduced-associativity must-analysis, because the partition's contents
//     survive other applications' bursts.
//
// len(ByWays) is the platform's total way count.
type PartitionTimings struct {
	Shared []AppTiming
	ByWays [][]AppTiming
}

// Apps returns the number of applications.
func (pt PartitionTimings) Apps() int { return len(pt.Shared) }

// TotalWays returns the number of ways of the underlying cache.
func (pt PartitionTimings) TotalWays() int { return len(pt.ByWays) }

// Validate checks the table's shape and per-entry sanity.
func (pt PartitionTimings) Validate() error {
	n := len(pt.Shared)
	if n == 0 {
		return fmt.Errorf("sched: partition timings with no applications")
	}
	for _, a := range pt.Shared {
		if err := a.Validate(); err != nil {
			return err
		}
	}
	for w, row := range pt.ByWays {
		if len(row) != n {
			return fmt.Errorf("sched: partition timings for %d ways cover %d of %d apps", w+1, len(row), n)
		}
		for _, a := range row {
			if err := a.Validate(); err != nil {
				return fmt.Errorf("sched: partition timings for %d ways: %w", w+1, err)
			}
		}
	}
	return nil
}

// Timings returns the per-app timing vector of a joint point: the shared
// taskset for shared points, the per-way steady-state timings otherwise.
func (pt PartitionTimings) Timings(j JointSchedule) ([]AppTiming, error) {
	if j.Shared() {
		return pt.Shared, nil
	}
	if !j.W.Valid(pt.Apps(), pt.TotalWays()) {
		return nil, fmt.Errorf("sched: partition %v invalid for %d apps on %d ways", j.W, pt.Apps(), pt.TotalWays())
	}
	out := make([]AppTiming, pt.Apps())
	for i, w := range j.W {
		out[i] = pt.ByWays[w-1][i]
	}
	return out, nil
}

// Feasible checks the joint feasibility of a point: the way budget
// (sum w_i <= total ways, every w_i >= 1) and the unchanged idle-time
// constraint (4) under the point's timing vector.
func (pt PartitionTimings) Feasible(j JointSchedule) (bool, error) {
	if !j.W.Valid(pt.Apps(), pt.TotalWays()) {
		return false, nil
	}
	timings, err := pt.Timings(j)
	if err != nil {
		return false, err
	}
	return IdleFeasible(timings, j.M)
}

// EnumeratePartitions returns every way partition (w1..wn) with w_i >= 1
// and sum <= totalWays, in lexicographic order. The result is empty when
// totalWays < n (no valid partition; the joint space degenerates to the
// shared subspace).
func EnumeratePartitions(n, totalWays int) []Ways {
	if n < 1 || totalWays < n {
		return nil
	}
	var out []Ways
	cur := make(Ways, n)
	var rec func(i, used int)
	rec = func(i, used int) {
		if i == n {
			out = append(out, cur.Clone())
			return
		}
		// Leave at least one way for each remaining application.
		for w := 1; used+w+(n-1-i) <= totalWays; w++ {
			cur[i] = w
			rec(i+1, used+w)
		}
	}
	rec(0, 0)
	return out
}

// EnumerateJointFeasible returns every feasible point of the joint box: the
// shared subspace (exactly EnumerateFeasible on the shared timings) followed
// by, for each partition in EnumeratePartitions order, every idle-feasible
// schedule under that partition's timings.
func EnumerateJointFeasible(pt PartitionTimings, maxM int) ([]JointSchedule, error) {
	shared, err := EnumerateFeasible(pt.Shared, maxM)
	if err != nil {
		return nil, err
	}
	out := make([]JointSchedule, 0, len(shared))
	for _, m := range shared {
		out = append(out, JointSchedule{M: m})
	}
	for _, w := range EnumeratePartitions(pt.Apps(), pt.TotalWays()) {
		timings, err := pt.Timings(JointSchedule{M: RoundRobin(pt.Apps()), W: w})
		if err != nil {
			return nil, err
		}
		ms, err := EnumerateFeasible(timings, maxM)
		if err != nil {
			return nil, err
		}
		for _, m := range ms {
			out = append(out, JointSchedule{M: m, W: w.Clone()})
		}
	}
	return out, nil
}
