package sched

import (
	"math"
	"testing"
)

// paperApps returns the Table I timings in seconds.
func paperApps() []AppTiming {
	return []AppTiming{
		{Name: "C1", ColdWCET: 907.55e-6, WarmWCET: 452.15e-6, MaxIdle: 3.4e-3},
		{Name: "C2", ColdWCET: 645.25e-6, WarmWCET: 175.00e-6, MaxIdle: 3.9e-3},
		{Name: "C3", ColdWCET: 749.15e-6, WarmWCET: 234.35e-6, MaxIdle: 3.5e-3},
	}
}

func approx(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestValidateAppTiming(t *testing.T) {
	if err := (AppTiming{Name: "x", ColdWCET: 1, WarmWCET: 0.5}).Validate(); err != nil {
		t.Errorf("valid timing rejected: %v", err)
	}
	bad := []AppTiming{
		{Name: "a", ColdWCET: 0, WarmWCET: 1},
		{Name: "b", ColdWCET: 1, WarmWCET: 0},
		{Name: "c", ColdWCET: 1, WarmWCET: 2},
	}
	for _, a := range bad {
		if a.Validate() == nil {
			t.Errorf("%q should be invalid", a.Name)
		}
	}
}

func TestScheduleBasics(t *testing.T) {
	s := Schedule{3, 2, 3}
	if s.String() != "(3, 2, 3)" {
		t.Errorf("String = %q", s.String())
	}
	if !s.Equal(s.Clone()) {
		t.Error("clone not equal")
	}
	c := s.Clone()
	c[0] = 9
	if s[0] != 3 {
		t.Error("clone aliases original")
	}
	if !RoundRobin(3).Equal(Schedule{1, 1, 1}) {
		t.Error("round robin wrong")
	}
	zeroBurst := Schedule{0, 1}
	if s.Valid(2) || !s.Valid(3) || zeroBurst.Valid(2) {
		t.Error("Valid checks wrong")
	}
}

func TestBurstAndPeriodLength(t *testing.T) {
	apps := paperApps()
	// Burst of C1 with m=3: 907.55 + 2*452.15 = 1811.85 us.
	if !approx(BurstLength(apps[0], 3), 1811.85e-6, 1e-12) {
		t.Errorf("burst C1 m=3 = %g", BurstLength(apps[0], 3))
	}
	// Schedule period of (3,2,3):
	// C1: 1811.85, C2: 645.25+175=820.25, C3: 749.15+2*234.35=1217.85
	want := (1811.85 + 820.25 + 1217.85) * 1e-6
	if !approx(PeriodLength(apps, Schedule{3, 2, 3}), want, 1e-12) {
		t.Errorf("period = %g, want %g", PeriodLength(apps, Schedule{3, 2, 3}), want)
	}
}

func TestDeriveRoundRobin(t *testing.T) {
	apps := paperApps()
	der, err := Derive(apps, RoundRobin(3))
	if err != nil {
		t.Fatal(err)
	}
	// Under (1,1,1) every app has one period equal to the total of all
	// cold WCETs, and delay equal to its own cold WCET.
	total := (907.55 + 645.25 + 749.15) * 1e-6
	for i, d := range der {
		if len(d.Periods) != 1 {
			t.Fatalf("app %d: %d periods", i, len(d.Periods))
		}
		if !approx(d.Periods[0], total, 1e-12) {
			t.Errorf("app %d period = %g, want %g", i, d.Periods[0], total)
		}
		if !approx(d.Delays[0], apps[i].ColdWCET, 1e-15) {
			t.Errorf("app %d delay = %g", i, d.Delays[0])
		}
		if !approx(d.Gap, total-apps[i].ColdWCET, 1e-12) {
			t.Errorf("app %d gap = %g", i, d.Gap)
		}
	}
}

func TestDerivePaperExample(t *testing.T) {
	// The (2,2,2) example of Section II-C: h1(1) = Ewc1(1),
	// h1(2) = Ewc1(2) + Delta with Delta the other apps' bursts.
	apps := paperApps()
	der, err := Derive(apps, Schedule{2, 2, 2})
	if err != nil {
		t.Fatal(err)
	}
	c1 := der[0]
	if !approx(c1.Periods[0], 907.55e-6, 1e-15) {
		t.Errorf("h1(1) = %g", c1.Periods[0])
	}
	delta := (645.25 + 175 + 749.15 + 234.35) * 1e-6
	if !approx(c1.Gap, delta, 1e-12) {
		t.Errorf("Delta = %g, want %g", c1.Gap, delta)
	}
	if !approx(c1.Periods[1], 452.15e-6+delta, 1e-12) {
		t.Errorf("h1(2) = %g", c1.Periods[1])
	}
	// Delays equal the task WCETs (Eq. 8).
	if !approx(c1.Delays[0], 907.55e-6, 1e-15) || !approx(c1.Delays[1], 452.15e-6, 1e-15) {
		t.Errorf("delays = %v", c1.Delays)
	}
	// Hyper-period equals the schedule period for every app.
	p := PeriodLength(apps, Schedule{2, 2, 2})
	for i, d := range der {
		if !approx(d.HyperPeriod(), p, 1e-12) {
			t.Errorf("app %d hyper-period %g != schedule period %g", i, d.HyperPeriod(), p)
		}
	}
}

func TestDeriveRejects(t *testing.T) {
	apps := paperApps()
	if _, err := Derive(apps, Schedule{1, 2}); err == nil {
		t.Error("wrong-length schedule accepted")
	}
	if _, err := Derive(apps, Schedule{0, 1, 1}); err == nil {
		t.Error("zero burst accepted")
	}
	bad := paperApps()
	bad[0].WarmWCET = -1
	if _, err := Derive(bad, RoundRobin(3)); err == nil {
		t.Error("invalid timing accepted")
	}
}

func TestIdleFeasible(t *testing.T) {
	apps := paperApps()
	for _, s := range []Schedule{{1, 1, 1}, {3, 2, 3}, {2, 2, 2}} {
		ok, err := IdleFeasible(apps, s)
		if err != nil || !ok {
			t.Errorf("%v should be feasible: ok=%v err=%v", s, ok, err)
		}
	}
	// Huge burst of C2+C3 starves C1 beyond its 3.4 ms idle bound.
	ok, err := IdleFeasible(apps, Schedule{1, 10, 10})
	if err != nil || ok {
		t.Errorf("(1,10,10) should violate C1's idle bound")
	}
}

func TestEnumerateFeasible(t *testing.T) {
	apps := paperApps()
	list, err := EnumerateFeasible(apps, 12)
	if err != nil {
		t.Fatal(err)
	}
	if len(list) == 0 {
		t.Fatal("no feasible schedules")
	}
	// (1,1,1) and (3,2,3) must be in the set.
	found111, found323 := false, false
	for _, s := range list {
		if s.Equal(Schedule{1, 1, 1}) {
			found111 = true
		}
		if s.Equal(Schedule{3, 2, 3}) {
			found323 = true
		}
		ok, _ := IdleFeasible(apps, s)
		if !ok {
			t.Errorf("enumerated infeasible schedule %v", s)
		}
	}
	if !found111 || !found323 {
		t.Errorf("expected schedules missing: 111=%v 323=%v (total %d)", found111, found323, len(list))
	}
	t.Logf("feasible schedules with paper timings: %d", len(list))
}

func TestMaxFeasibleM(t *testing.T) {
	apps := paperApps()
	bounds, err := MaxFeasibleM(apps, 30)
	if err != nil {
		t.Fatal(err)
	}
	for i, b := range bounds {
		if b < 1 {
			t.Errorf("app %d bound %d", i, b)
		}
		// Verify the bound is tight: m=bound feasible, m=bound+1 not (when
		// the constraint binds below the cap).
		s := RoundRobin(3)
		s[i] = b
		if ok, _ := IdleFeasible(apps, s); !ok {
			t.Errorf("app %d: m=%d reported feasible but is not", i, b)
		}
	}
}

func TestTimeline(t *testing.T) {
	apps := paperApps()
	slots, err := Timeline(apps, Schedule{2, 1, 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(slots) != 4 {
		t.Fatalf("slots: %d", len(slots))
	}
	if !slots[0].Cold || slots[1].Cold {
		t.Error("first of burst must be cold, second warm")
	}
	if !approx(slots[1].Start, 907.55e-6, 1e-15) {
		t.Errorf("second slot start %g", slots[1].Start)
	}
	if !approx(slots[3].End, PeriodLength(apps, Schedule{2, 1, 1}), 1e-12) {
		t.Error("last slot must end at the period boundary")
	}
	txt, err := FormatTimeline(apps, Schedule{2, 1, 1})
	if err != nil || len(txt) == 0 {
		t.Error("FormatTimeline failed")
	}
}

func TestTotalUtilization(t *testing.T) {
	apps := paperApps()
	if u := TotalUtilization(apps, Schedule{2, 2, 2}); !approx(u, 1, 1e-12) {
		t.Errorf("utilization = %g, want 1", u)
	}
}
