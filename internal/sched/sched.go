// Package sched implements the periodic task schedules of the paper and the
// derivation of control-timing parameters from them.
//
// A schedule (m1, m2, ..., mn) runs mi back-to-back tasks of application Ci
// per schedule period (Section II). Consecutive tasks of one application
// reuse the instruction cache, so the first task of a burst has the
// cold-cache WCET Ewc(1) and every later task the reduced WCET
// Ewc(j) = Ewc(1) - Egu (Eq. 5). The sampling periods h_i(j) and
// sensing-to-actuation delays tau_i(j) follow Eq. (6)-(8): tasks inside a
// burst sample back-to-back, and the last task of a burst additionally
// waits for all other applications' bursts (the gap Delta_i).
package sched

import (
	"fmt"
	"math"
	"strconv"
	"strings"
)

// AppTiming carries the per-application platform analysis results that
// timing derivation needs. Times are in seconds.
type AppTiming struct {
	Name     string
	ColdWCET float64 // Ewc(1): WCET without cache reuse
	WarmWCET float64 // Ewc(j>=2): WCET with guaranteed cache reuse
	MaxIdle  float64 // t_idle: maximum allowed sampling period (Eq. 4); <=0 means unconstrained
}

// Validate checks that the timing numbers are physically meaningful.
func (a AppTiming) Validate() error {
	switch {
	case a.ColdWCET <= 0:
		return fmt.Errorf("sched: app %q: cold WCET %g must be positive", a.Name, a.ColdWCET)
	case a.WarmWCET <= 0 || a.WarmWCET > a.ColdWCET:
		return fmt.Errorf("sched: app %q: warm WCET %g must be in (0, cold=%g]", a.Name, a.WarmWCET, a.ColdWCET)
	}
	return nil
}

// Schedule is a periodic schedule (m1, ..., mn): entry i is the number of
// consecutively executed tasks of application i per schedule period.
type Schedule []int

// RoundRobin returns the conventional cache-oblivious schedule (1, 1, ..., 1).
func RoundRobin(n int) Schedule {
	s := make(Schedule, n)
	for i := range s {
		s[i] = 1
	}
	return s
}

// Clone returns a copy of s.
func (s Schedule) Clone() Schedule { return append(Schedule(nil), s...) }

// Equal reports element-wise equality.
func (s Schedule) Equal(o Schedule) bool {
	if len(s) != len(o) {
		return false
	}
	for i := range s {
		if s[i] != o[i] {
			return false
		}
	}
	return true
}

// Valid reports whether every burst length is at least one and the length
// matches the application count.
func (s Schedule) Valid(n int) bool {
	if len(s) != n {
		return false
	}
	for _, m := range s {
		if m < 1 {
			return false
		}
	}
	return true
}

// String renders the schedule as "(m1, m2, ..., mn)". It is also the
// memoization key of every evaluation cache, so it builds the string
// directly instead of routing each entry through fmt.
func (s Schedule) String() string {
	var b strings.Builder
	b.Grow(2 + 4*len(s))
	b.WriteByte('(')
	for i, m := range s {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(strconv.Itoa(m))
	}
	b.WriteByte(')')
	return b.String()
}

// Key returns a map key for memoizing schedule evaluations.
func (s Schedule) Key() string { return s.String() }

// BurstLength returns the duration of one burst of m consecutive tasks of
// app: Ewc(1) + (m-1) * Ewc(2).
func BurstLength(app AppTiming, m int) float64 {
	return app.ColdWCET + float64(m-1)*app.WarmWCET
}

// PeriodLength returns the total schedule period: the sum of all bursts.
func PeriodLength(apps []AppTiming, s Schedule) float64 {
	total := 0.0
	for i, app := range apps {
		total += BurstLength(app, s[i])
	}
	return total
}

// AppSchedule is the derived control timing of one application under a
// schedule: the periodically repeating sampling periods h(j), the
// sensing-to-actuation delays tau(j) = Ewc(j), and the gap Delta during
// which the other applications run.
type AppSchedule struct {
	Name    string
	M       int       // burst length m_i
	WCETs   []float64 // Ewc(j), j = 1..m
	Periods []float64 // h(j), j = 1..m (h(m) includes the gap)
	Delays  []float64 // tau(j) = Ewc(j)
	Gap     float64   // Delta_i: sum of the other applications' bursts
}

// MaxPeriod returns the longest sampling period h_max (Eq. 4's left side).
func (a AppSchedule) MaxPeriod() float64 {
	max := 0.0
	for _, h := range a.Periods {
		if h > max {
			max = h
		}
	}
	return max
}

// HyperPeriod returns the sum of the sampling periods, which equals the
// schedule period.
func (a AppSchedule) HyperPeriod() float64 {
	s := 0.0
	for _, h := range a.Periods {
		s += h
	}
	return s
}

// Derive computes the control-timing parameters of every application under
// schedule s (Eq. 5-8).
func Derive(apps []AppTiming, s Schedule) ([]AppSchedule, error) {
	if !s.Valid(len(apps)) {
		return nil, fmt.Errorf("sched: schedule %v invalid for %d applications", s, len(apps))
	}
	for _, a := range apps {
		if err := a.Validate(); err != nil {
			return nil, err
		}
	}
	out := make([]AppSchedule, len(apps))
	for i, app := range apps {
		m := s[i]
		gap := 0.0
		for k, other := range apps {
			if k != i {
				gap += BurstLength(other, s[k])
			}
		}
		wcets := make([]float64, m)
		periods := make([]float64, m)
		delays := make([]float64, m)
		for j := 0; j < m; j++ {
			if j == 0 {
				wcets[j] = app.ColdWCET
			} else {
				wcets[j] = app.WarmWCET
			}
			delays[j] = wcets[j]
			periods[j] = wcets[j]
		}
		periods[m-1] += gap
		out[i] = AppSchedule{
			Name: app.Name, M: m,
			WCETs: wcets, Periods: periods, Delays: delays, Gap: gap,
		}
	}
	return out, nil
}

// BurstGap returns Delta_i: the sum of every other application's burst
// length under s — the gap during which application i idles. The summation
// order equals Derive's, so the value is bit-identical to
// Derive(...)[i].Gap.
func BurstGap(apps []AppTiming, s Schedule, i int) float64 {
	gap := 0.0
	for k, other := range apps {
		if k != i {
			gap += BurstLength(other, s[k])
		}
	}
	return gap
}

// DerivedMaxPeriod returns AppSchedule.MaxPeriod() of app's derived timing
// under burst length m and gap, without materializing the period slices.
// The per-period values and the running-max comparisons replicate the dense
// computation exactly, so the result is bit-identical.
func DerivedMaxPeriod(app AppTiming, m int, gap float64) float64 {
	max := 0.0
	for j := 0; j < m; j++ {
		p := app.WarmWCET
		if j == 0 {
			p = app.ColdWCET
		}
		if j == m-1 {
			p += gap
		}
		if p > max {
			max = p
		}
	}
	return max
}

// DerivedHyperPeriod returns AppSchedule.HyperPeriod() of app's derived
// timing under burst length m and gap: the sampling periods summed in index
// order, bit-identical to the dense computation.
func DerivedHyperPeriod(app AppTiming, m int, gap float64) float64 {
	sum := 0.0
	for j := 0; j < m; j++ {
		p := app.WarmWCET
		if j == 0 {
			p = app.ColdWCET
		}
		if j == m-1 {
			p += gap
		}
		sum += p
	}
	return sum
}

// IdleFeasible checks constraint (4): every application's longest sampling
// period must not exceed its maximum allowed idle time. Apps with
// MaxIdle <= 0 are unconstrained.
//
// It is the innermost predicate of every box enumeration and hybrid walk,
// so it evaluates the derived periods through the closed-form helpers above
// instead of materializing Derive's slices; the validation order, error
// values, and every float comparison match the Derive-based formulation
// bit for bit (TestIdleFeasibleMatchesDerive).
func IdleFeasible(apps []AppTiming, s Schedule) (bool, error) {
	if !s.Valid(len(apps)) {
		return false, fmt.Errorf("sched: schedule %v invalid for %d applications", s, len(apps))
	}
	for _, a := range apps {
		if err := a.Validate(); err != nil {
			return false, err
		}
	}
	for i, app := range apps {
		if app.MaxIdle <= 0 {
			continue
		}
		gap := BurstGap(apps, s, i)
		if DerivedMaxPeriod(app, s[i], gap) > app.MaxIdle+1e-12 {
			return false, nil
		}
	}
	return true, nil
}

// EnumerateFeasible returns every schedule with 1 <= m_i <= maxM satisfying
// the idle-time constraint (4), in lexicographic order. maxM bounds the
// search box; the idle constraint itself usually prunes far below it.
func EnumerateFeasible(apps []AppTiming, maxM int) ([]Schedule, error) {
	n := len(apps)
	if n == 0 || maxM < 1 {
		return nil, fmt.Errorf("sched: nothing to enumerate (n=%d, maxM=%d)", n, maxM)
	}
	var out []Schedule
	cur := make(Schedule, n)
	for i := range cur {
		cur[i] = 1
	}
	for {
		ok, err := IdleFeasible(apps, cur)
		if err != nil {
			return nil, err
		}
		if ok {
			out = append(out, cur.Clone())
		}
		// Advance odometer.
		i := n - 1
		for ; i >= 0; i-- {
			cur[i]++
			if cur[i] <= maxM {
				break
			}
			cur[i] = 1
		}
		if i < 0 {
			return out, nil
		}
	}
}

// MaxFeasibleM returns, for each application, the largest burst length m_i
// that is idle-feasible when every other application runs a single task.
// This is a per-dimension upper bound used to size the search box.
func MaxFeasibleM(apps []AppTiming, maxM int) ([]int, error) {
	n := len(apps)
	bounds := make([]int, n)
	for i := range apps {
		bounds[i] = 0
		for m := 1; m <= maxM; m++ {
			s := RoundRobin(n)
			s[i] = m
			ok, err := IdleFeasible(apps, s)
			if err != nil {
				return nil, err
			}
			if ok {
				bounds[i] = m
			} else {
				break
			}
		}
		if bounds[i] == 0 {
			return nil, fmt.Errorf("sched: app %q infeasible even at m=1", apps[i].Name)
		}
	}
	return bounds, nil
}

// Slot is one task execution in a rendered schedule timeline.
type Slot struct {
	App   int
	Task  int     // 1-based task index within the burst
	Start float64 // seconds from schedule-period start
	End   float64
	Cold  bool // true when executed with a cold cache (first of burst)
}

// Timeline lays out one schedule period as a sequence of task slots, in
// burst order C1 ... Cn (Fig. 2/4 of the paper, rendered as data).
func Timeline(apps []AppTiming, s Schedule) ([]Slot, error) {
	if !s.Valid(len(apps)) {
		return nil, fmt.Errorf("sched: schedule %v invalid for %d applications", s, len(apps))
	}
	var slots []Slot
	t := 0.0
	for i, app := range apps {
		for j := 0; j < s[i]; j++ {
			w := app.WarmWCET
			cold := j == 0
			if cold {
				w = app.ColdWCET
			}
			slots = append(slots, Slot{App: i, Task: j + 1, Start: t, End: t + w, Cold: cold})
			t += w
		}
	}
	return slots, nil
}

// FormatTimeline renders Timeline output as a human-readable table, one
// line per task slot, with microsecond timestamps.
func FormatTimeline(apps []AppTiming, s Schedule) (string, error) {
	slots, err := Timeline(apps, s)
	if err != nil {
		return "", err
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "schedule %s, period %.2f us\n", s, PeriodLength(apps, s)*1e6)
	for _, sl := range slots {
		state := "warm"
		if sl.Cold {
			state = "cold"
		}
		fmt.Fprintf(&sb, "  %-8s task %d  [%9.2f, %9.2f] us  (%s cache)\n",
			apps[sl.App].Name, sl.Task, sl.Start*1e6, sl.End*1e6, state)
	}
	return sb.String(), nil
}

// TotalUtilization is the fraction of the schedule period spent executing
// (always 1 for the back-to-back schedules of the paper, provided for
// interleaved variants and sanity checks).
func TotalUtilization(apps []AppTiming, s Schedule) float64 {
	p := PeriodLength(apps, s)
	if p <= 0 {
		return math.NaN()
	}
	busy := 0.0
	for i, app := range apps {
		busy += BurstLength(app, s[i])
	}
	return busy / p
}
