package sched

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// Property: for any valid schedule, every application's sampling periods
// sum to the schedule period (all apps share one hyper-period).
func TestQuickHyperPeriodInvariant(t *testing.T) {
	apps := paperApps()
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		s := Schedule{1 + r.Intn(6), 1 + r.Intn(6), 1 + r.Intn(6)}
		der, err := Derive(apps, s)
		if err != nil {
			return false
		}
		p := PeriodLength(apps, s)
		for _, d := range der {
			if diff := d.HyperPeriod() - p; diff > 1e-12 || diff < -1e-12 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

// Property: delays never exceed periods (tau_i(j) <= h_i(j)), and the gap
// is always non-negative.
func TestQuickDelayWithinPeriod(t *testing.T) {
	apps := paperApps()
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		s := Schedule{1 + r.Intn(8), 1 + r.Intn(8), 1 + r.Intn(8)}
		der, err := Derive(apps, s)
		if err != nil {
			return false
		}
		for _, d := range der {
			if d.Gap < 0 {
				return false
			}
			for j := range d.Periods {
				if d.Delays[j] > d.Periods[j]+1e-15 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

// Property: shrinking a burst from m >= 3 keeps a feasible schedule
// feasible — the shrunk app's longest period is unchanged (its last task
// stays warm) while every other app's gap shrinks. Note this does NOT hold
// for m = 2 -> 1: the last task turns cold, which can lengthen the app's
// own longest period past its idle bound (see the explicit test below).
func TestQuickIdleFeasibilityMonotoneAboveTwo(t *testing.T) {
	apps := paperApps()
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		s := Schedule{1 + r.Intn(6), 1 + r.Intn(6), 1 + r.Intn(6)}
		ok, err := IdleFeasible(apps, s)
		if err != nil {
			return false
		}
		if !ok {
			return true // nothing to check
		}
		// Shrink one random dimension, staying at or above 2.
		i := r.Intn(3)
		if s[i] <= 2 {
			return true
		}
		smaller := s.Clone()
		smaller[i]--
		ok2, err := IdleFeasible(apps, smaller)
		return err == nil && ok2
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// TestShrinkToSingleTaskCanBreakFeasibility documents the non-obvious
// non-monotonicity at m = 1: with a single task per period the task is
// cold, so the app's only sampling period is cold+Delta rather than
// warm+Delta, which can exceed its idle bound even when m = 2 satisfies it.
func TestShrinkToSingleTaskCanBreakFeasibility(t *testing.T) {
	apps := []AppTiming{
		{Name: "a", ColdWCET: 1.0e-3, WarmWCET: 0.2e-3, MaxIdle: 2.3e-3},
		{Name: "b", ColdWCET: 1.0e-3, WarmWCET: 0.2e-3},
	}
	// m_a = 2: h_max(a) = warm + Delta = 0.2 + 1.0 = 1.2 ms <= 2.3 ms.
	ok, err := IdleFeasible(apps, Schedule{2, 1})
	if err != nil || !ok {
		t.Fatalf("(2,1) should be feasible: %v %v", ok, err)
	}
	// m_a = 1 with a bigger b-burst: h_max(a) = cold + Delta.
	ok, err = IdleFeasible(apps, Schedule{1, 3})
	if err != nil {
		t.Fatal(err)
	}
	// Delta = 1.0 + 2*0.2 = 1.4; h_max(a) = 1.0 + 1.4 = 2.4 > 2.3: infeasible.
	if ok {
		t.Error("(1,3) should violate a's idle bound")
	}
	// The same b-burst with m_a = 2 is fine: h_max(a) = 0.2 + 1.4 = 1.6.
	ok, err = IdleFeasible(apps, Schedule{2, 3})
	if err != nil || !ok {
		t.Errorf("(2,3) should be feasible: %v %v", ok, err)
	}
}

// Property: the timeline tiles the period exactly: slots are contiguous,
// non-overlapping, and ordered.
func TestQuickTimelineTilesPeriod(t *testing.T) {
	apps := paperApps()
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		s := Schedule{1 + r.Intn(5), 1 + r.Intn(5), 1 + r.Intn(5)}
		slots, err := Timeline(apps, s)
		if err != nil {
			return false
		}
		prevEnd := 0.0
		for _, sl := range slots {
			if sl.Start != prevEnd || sl.End <= sl.Start {
				return false
			}
			prevEnd = sl.End
		}
		diff := prevEnd - PeriodLength(apps, s)
		return diff < 1e-12 && diff > -1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

// Property: interleaved derivation agrees with the plain derivation on
// single-burst-per-app schedules, for random schedules.
func TestQuickInterleavedAgreesWithPlain(t *testing.T) {
	apps := paperApps()
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		s := Schedule{1 + r.Intn(4), 1 + r.Intn(4), 1 + r.Intn(4)}
		plain, err := Derive(apps, s)
		if err != nil {
			return false
		}
		inter, err := DeriveInterleaved(apps, FromSchedule(s))
		if err != nil {
			return false
		}
		for i := range plain {
			for j := range plain[i].Periods {
				d := plain[i].Periods[j] - inter[i].Periods[j]
				if d > 1e-12 || d < -1e-12 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestEnumerateRejectsBadArgs(t *testing.T) {
	if _, err := EnumerateFeasible(nil, 3); err == nil {
		t.Error("no apps accepted")
	}
	if _, err := EnumerateFeasible(paperApps(), 0); err == nil {
		t.Error("maxM=0 accepted")
	}
}

func TestMaxFeasibleMInfeasibleApp(t *testing.T) {
	apps := paperApps()
	apps[0].MaxIdle = 1e-6 // impossible even at m=1
	if _, err := MaxFeasibleM(apps, 5); err == nil {
		t.Error("infeasible app must error")
	}
}
