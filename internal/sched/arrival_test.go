package sched

import (
	"math"
	"reflect"
	"testing"
)

func arrivalApps() []AppTiming {
	return []AppTiming{
		{Name: "C1", ColdWCET: 300e-6, WarmWCET: 200e-6, MaxIdle: 3e-3},
		{Name: "C2", ColdWCET: 400e-6, WarmWCET: 250e-6, MaxIdle: 4e-3},
		{Name: "C3", ColdWCET: 500e-6, WarmWCET: 300e-6, MaxIdle: 5e-3},
	}
}

func TestArrivalValidate(t *testing.T) {
	good := []Arrival{
		{},
		{Model: ArrivalSporadic},
		{Model: ArrivalSporadic, Jitter: 0.25, Seed: 7, Cycles: 16},
		{Model: ArrivalSporadic, Jitter: 0.999},
	}
	for _, a := range good {
		if err := a.Validate(); err != nil {
			t.Errorf("%+v rejected: %v", a, err)
		}
	}
	bad := []Arrival{
		{Model: ArrivalModel(9)},
		{Model: ArrivalSporadic, Jitter: -0.1},
		{Model: ArrivalSporadic, Jitter: 1.0},
		{Jitter: 0.1}, // periodic with jitter
		{Model: ArrivalSporadic, Jitter: 0.1, Cycles: 1},
		{Model: ArrivalSporadic, Jitter: 0.1, Cycles: -3},
	}
	for _, a := range bad {
		if err := a.Validate(); err == nil {
			t.Errorf("%+v accepted", a)
		}
	}
	if (Arrival{Model: ArrivalSporadic}).Sporadic() {
		t.Error("zero-jitter sporadic must count as periodic")
	}
	if !(Arrival{Model: ArrivalSporadic, Jitter: 0.1}).Sporadic() {
		t.Error("jittered sporadic not reported as sporadic")
	}
	if got := (Arrival{}).WithDefaults().Cycles; got != DefaultArrivalCycles {
		t.Errorf("default cycles = %d, want %d", got, DefaultArrivalCycles)
	}
}

// TestSporadicZeroJitterMatchesClosedForm: with zero jitter the heap-driven
// timeline reproduces the closed-form periodic layout — every burst of
// cycle k starts at k*T + phase_i up to floating-point accumulation.
func TestSporadicZeroJitterMatchesClosedForm(t *testing.T) {
	apps := arrivalApps()
	s := Schedule{2, 1, 3}
	arr := Arrival{Model: ArrivalSporadic, Seed: 11, Cycles: 8}
	events, err := SporadicTimeline(apps, s, arr)
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != len(apps)*arr.Cycles {
		t.Fatalf("%d events, want %d", len(events), len(apps)*arr.Cycles)
	}
	period := PeriodLength(apps, s)
	slots, err := Timeline(apps, s)
	if err != nil {
		t.Fatal(err)
	}
	// Burst phase of app i = start of its first slot in the closed form.
	phase := make([]float64, len(apps))
	for i := len(slots) - 1; i >= 0; i-- {
		if slots[i].Task == 1 {
			phase[slots[i].App] = slots[i].Start
		}
	}
	tol := 1e-9 * period
	for _, ev := range events {
		want := float64(ev.Cycle)*period + phase[ev.App]
		if math.Abs(ev.Start-want) > tol {
			t.Fatalf("app %d cycle %d starts at %g, closed form %g", ev.App, ev.Cycle, ev.Start, want)
		}
		if math.Abs(ev.End-ev.Start-BurstLength(apps[ev.App], s[ev.App])) > tol {
			t.Fatalf("app %d cycle %d burst length %g, want %g",
				ev.App, ev.Cycle, ev.End-ev.Start, BurstLength(apps[ev.App], s[ev.App]))
		}
	}
}

func TestSporadicTimelineDeterministic(t *testing.T) {
	apps := arrivalApps()
	s := Schedule{1, 2, 1}
	arr := Arrival{Model: ArrivalSporadic, Jitter: 0.3, Seed: 42, Cycles: 32}
	a, err := SporadicTimeline(apps, s, arr)
	if err != nil {
		t.Fatal(err)
	}
	b, err := SporadicTimeline(apps, s, arr)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same seed produced different timelines")
	}
	arr.Seed = 43
	c, err := SporadicTimeline(apps, s, arr)
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(a, c) {
		t.Fatal("different seeds produced identical jittered timelines")
	}
}

// TestSporadicTimelineSane: releases stay within their jitter window,
// bursts never start before their release, starts are non-decreasing
// (FCFS), and the processor never runs two bursts at once.
func TestSporadicTimelineSane(t *testing.T) {
	apps := arrivalApps()
	s := Schedule{2, 3, 1}
	arr := Arrival{Model: ArrivalSporadic, Jitter: 0.4, Seed: 5, Cycles: 64}
	events, err := SporadicTimeline(apps, s, arr)
	if err != nil {
		t.Fatal(err)
	}
	period := PeriodLength(apps, s)
	phase := []float64{0, BurstLength(apps[0], s[0]), BurstLength(apps[0], s[0]) + BurstLength(apps[1], s[1])}
	prevStart, prevEnd := math.Inf(-1), math.Inf(-1)
	for _, ev := range events {
		nominal := float64(ev.Cycle)*period + phase[ev.App]
		if ev.Release < nominal-1e-12 || ev.Release > nominal+arr.Jitter*period+1e-12 {
			t.Fatalf("app %d cycle %d released at %g outside [%g, %g]",
				ev.App, ev.Cycle, ev.Release, nominal, nominal+arr.Jitter*period)
		}
		if ev.Start < ev.Release {
			t.Fatalf("burst started at %g before release %g", ev.Start, ev.Release)
		}
		if ev.Start < prevStart {
			t.Fatal("starts not in FCFS order")
		}
		if ev.Start < prevEnd-1e-12 {
			t.Fatalf("burst at %g overlaps previous ending %g", ev.Start, prevEnd)
		}
		prevStart, prevEnd = ev.Start, ev.End
	}
}

// TestSporadicStatsZeroJitterMatchDerived: with zero jitter the empirical
// per-app stats reproduce the closed-form derivation — max consecutive-start
// difference equals DerivedMaxPeriod, and the mean approaches
// DerivedHyperPeriod/m as cycles grow.
func TestSporadicStatsZeroJitterMatchDerived(t *testing.T) {
	apps := arrivalApps()
	s := Schedule{2, 1, 3}
	arr := Arrival{Model: ArrivalSporadic, Seed: 3, Cycles: 256}
	events, err := SporadicTimeline(apps, s, arr)
	if err != nil {
		t.Fatal(err)
	}
	stats := SporadicStats(apps, s, events)
	for i, app := range apps {
		gap := BurstGap(apps, s, i)
		wantMax := DerivedMaxPeriod(app, s[i], gap)
		if math.Abs(stats[i].MaxPeriod-wantMax) > 1e-9*wantMax {
			t.Errorf("app %d: empirical max period %g, derived %g", i, stats[i].MaxPeriod, wantMax)
		}
		wantMean := DerivedHyperPeriod(app, s[i], gap) / float64(s[i])
		if rel := math.Abs(stats[i].MeanPeriod-wantMean) / wantMean; rel > 0.02 {
			t.Errorf("app %d: empirical mean period %g, derived %g (rel %g)", i, stats[i].MeanPeriod, wantMean, rel)
		}
		if stats[i].Tasks != s[i]*arr.Cycles {
			t.Errorf("app %d: %d tasks observed, want %d", i, stats[i].Tasks, s[i]*arr.Cycles)
		}
	}
}

// TestSporadicJitterDegradesPeriods: on this taskset and seed, adding
// release jitter stretches the worst observed sampling period of at least
// one application — the degradation Table VI measures.
func TestSporadicJitterDegradesPeriods(t *testing.T) {
	apps := arrivalApps()
	s := Schedule{2, 1, 3}
	base, err := SporadicTimeline(apps, s, Arrival{Model: ArrivalSporadic, Seed: 7, Cycles: 64})
	if err != nil {
		t.Fatal(err)
	}
	jit, err := SporadicTimeline(apps, s, Arrival{Model: ArrivalSporadic, Jitter: 0.3, Seed: 7, Cycles: 64})
	if err != nil {
		t.Fatal(err)
	}
	bs, js := SporadicStats(apps, s, base), SporadicStats(apps, s, jit)
	worse := false
	for i := range apps {
		if js[i].MaxPeriod > bs[i].MaxPeriod+1e-12 {
			worse = true
		}
	}
	if !worse {
		t.Error("0.3 jitter did not stretch any application's max period")
	}
}
