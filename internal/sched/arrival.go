// Arrival models: the paper's schedules assume strictly periodic bursts
// (every application's burst k starts exactly k schedule periods after its
// burst 0). The sporadic model relaxes that with seeded bounded release
// jitter: burst k of application i is *released* at
//
//	r_i(k) = k*T + phase_i + u_{k,i} * Jitter * T
//
// where T is the nominal schedule period, phase_i the application's burst
// offset within it, and u_{k,i} uniform in [0, 1) drawn from a fixed seed —
// releases never arrive early, only up to Jitter*T late. Released bursts
// are served FCFS and non-preemptively by a heap-driven event loop
// (SporadicTimeline), which replaces the closed-form burst-gap timing when
// jitter is nonzero. With zero jitter the event loop reproduces the
// closed-form Timeline up to floating-point accumulation (the engine
// normalizes that case back to the periodic path, keeping it bit-exact).
package sched

import (
	"container/heap"
	"fmt"
	"math/rand"
)

// ArrivalModel selects how bursts of a schedule are released over time.
type ArrivalModel int

const (
	// ArrivalPeriodic is the paper's model: burst starts are determined by
	// the schedule alone.
	ArrivalPeriodic ArrivalModel = iota
	// ArrivalSporadic adds seeded bounded release jitter per burst.
	ArrivalSporadic
)

// String names the model for signatures and error messages.
func (m ArrivalModel) String() string {
	switch m {
	case ArrivalPeriodic:
		return "periodic"
	case ArrivalSporadic:
		return "sporadic"
	}
	return fmt.Sprintf("ArrivalModel(%d)", int(m))
}

// DefaultArrivalCycles is the number of schedule periods a sporadic
// timeline simulates when the caller leaves Cycles unset.
const DefaultArrivalCycles = 64

// Arrival configures the burst release model of a scenario. The zero value
// is the periodic model.
type Arrival struct {
	Model  ArrivalModel `json:"model"`
	Jitter float64      `json:"jitter"` // max late release, as a fraction of the schedule period, in [0, 1)
	Seed   int64        `json:"seed"`   // seed of the jitter draws
	Cycles int          `json:"cycles"` // schedule periods to simulate; 0 means DefaultArrivalCycles
}

// Sporadic reports whether the arrival model actually deviates from the
// periodic one: sporadic with zero jitter is periodic.
func (a Arrival) Sporadic() bool { return a.Model == ArrivalSporadic && a.Jitter > 0 }

// WithDefaults resolves unset fields.
func (a Arrival) WithDefaults() Arrival {
	if a.Cycles == 0 {
		a.Cycles = DefaultArrivalCycles
	}
	return a
}

// Validate checks the arrival configuration.
func (a Arrival) Validate() error {
	switch {
	case a.Model != ArrivalPeriodic && a.Model != ArrivalSporadic:
		return fmt.Errorf("sched: unknown arrival model %d", int(a.Model))
	case a.Jitter < 0 || a.Jitter >= 1:
		return fmt.Errorf("sched: arrival jitter %g outside [0, 1)", a.Jitter)
	case a.Model == ArrivalPeriodic && a.Jitter != 0:
		return fmt.Errorf("sched: periodic arrivals cannot carry jitter %g", a.Jitter)
	case a.Cycles < 0 || a.Cycles == 1:
		return fmt.Errorf("sched: arrival cycles %d must be 0 (default) or >= 2", a.Cycles)
	}
	return nil
}

// BurstEvent is one executed burst in a sporadic timeline: application App's
// burst of cycle k, released at Release, started at Start >= Release
// (waiting behind earlier-released bursts), finished at End.
type BurstEvent struct {
	App     int
	Cycle   int
	Release float64
	Start   float64
	End     float64
}

// releaseEvent orders pending burst releases: earliest release first, ties
// broken by application then cycle so the timeline is deterministic.
type releaseEvent struct {
	release float64
	app     int
	cycle   int
}

type releaseHeap []releaseEvent

func (h releaseHeap) Len() int { return len(h) }
func (h releaseHeap) Less(i, j int) bool {
	switch {
	case h[i].release != h[j].release:
		return h[i].release < h[j].release
	case h[i].app != h[j].app:
		return h[i].app < h[j].app
	}
	return h[i].cycle < h[j].cycle
}
func (h releaseHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *releaseHeap) Push(x any)   { *h = append(*h, x.(releaseEvent)) }
func (h *releaseHeap) Pop() any     { old := *h; n := len(old); x := old[n-1]; *h = old[:n-1]; return x }

// SporadicTimeline simulates arr.Cycles schedule periods of jittered burst
// releases served FCFS and non-preemptively, and returns the executed
// bursts in start order. Every burst conservatively starts with the
// cold-cache WCET (under jitter, other applications' bursts can interleave
// arbitrarily between two bursts of one application, so no cross-burst
// cache reuse is assumed). The same (apps, s, arr) always yields the same
// timeline.
func SporadicTimeline(apps []AppTiming, s Schedule, arr Arrival) ([]BurstEvent, error) {
	if !s.Valid(len(apps)) {
		return nil, fmt.Errorf("sched: schedule %v invalid for %d applications", s, len(apps))
	}
	for _, a := range apps {
		if err := a.Validate(); err != nil {
			return nil, err
		}
	}
	arr = arr.WithDefaults()
	if err := arr.Validate(); err != nil {
		return nil, err
	}

	period := PeriodLength(apps, s)
	phase := make([]float64, len(apps))
	for i := 1; i < len(apps); i++ {
		phase[i] = phase[i-1] + BurstLength(apps[i-1], s[i-1])
	}

	// Draw every release up front, cycle-outer/application-inner, so the
	// draw order (and hence the whole timeline) is a pure function of the
	// seed. Releases are computed from k*period, not accumulated, so jitter
	// never drifts the nominal grid.
	rng := rand.New(rand.NewSource(arr.Seed))
	pending := make(releaseHeap, 0, len(apps)*arr.Cycles)
	for k := 0; k < arr.Cycles; k++ {
		for i := range apps {
			u := rng.Float64()
			pending = append(pending, releaseEvent{
				release: float64(k)*period + phase[i] + u*arr.Jitter*period,
				app:     i,
				cycle:   k,
			})
		}
	}
	heap.Init(&pending)

	events := make([]BurstEvent, 0, len(pending))
	t := 0.0
	for pending.Len() > 0 {
		ev := heap.Pop(&pending).(releaseEvent)
		if ev.release > t {
			t = ev.release
		}
		start := t
		t += BurstLength(apps[ev.app], s[ev.app])
		events = append(events, BurstEvent{App: ev.app, Cycle: ev.cycle, Release: ev.release, Start: start, End: t})
	}
	return events, nil
}

// ArrivalStats summarizes the sampling behaviour one application actually
// experienced in a sporadic timeline, over the starts of its individual
// tasks (tasks inside a burst run back-to-back, first cold, rest warm):
// the mean and maximum difference between consecutive task starts — the
// empirical counterparts of DerivedHyperPeriod/m and DerivedMaxPeriod.
type ArrivalStats struct {
	Tasks      int     // task starts observed
	MeanPeriod float64 // mean consecutive-start difference
	MaxPeriod  float64 // max consecutive-start difference
}

// SporadicStats reduces a timeline from SporadicTimeline to per-application
// arrival statistics, in application order.
func SporadicStats(apps []AppTiming, s Schedule, events []BurstEvent) []ArrivalStats {
	type acc struct {
		last  float64
		seen  bool
		count int
		sum   float64
		max   float64
	}
	accs := make([]acc, len(apps))
	for _, ev := range events {
		a := &accs[ev.App]
		start := ev.Start
		for j := 0; j < s[ev.App]; j++ {
			if a.seen {
				d := start - a.last
				a.sum += d
				a.count++
				if d > a.max {
					a.max = d
				}
			}
			a.last = start
			a.seen = true
			w := apps[ev.App].WarmWCET
			if j == 0 {
				w = apps[ev.App].ColdWCET
			}
			start += w
		}
	}
	out := make([]ArrivalStats, len(apps))
	for i, a := range accs {
		out[i] = ArrivalStats{Tasks: a.count + 1, MaxPeriod: a.max}
		if a.count > 0 {
			out[i].MeanPeriod = a.sum / float64(a.count)
		} else {
			out[i].Tasks = 0
		}
	}
	return out
}
