package parallel

import (
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestNewExecutorDefaults(t *testing.T) {
	if got := NewExecutor(0).Capacity(); got != runtime.GOMAXPROCS(0) {
		t.Fatalf("capacity %d, want GOMAXPROCS %d", got, runtime.GOMAXPROCS(0))
	}
	if got := NewExecutor(-3).Capacity(); got != runtime.GOMAXPROCS(0) {
		t.Fatalf("capacity %d for negative request", got)
	}
	if got := NewExecutor(7).Capacity(); got != 7 {
		t.Fatalf("capacity %d, want 7", got)
	}
}

func TestDefaultIsProcessWide(t *testing.T) {
	if Default() != Default() {
		t.Fatal("Default returned distinct executors")
	}
}

func TestAcquireClampsToCapacity(t *testing.T) {
	e := NewExecutor(3)
	if got := e.Acquire(10); got != 3 {
		t.Fatalf("Acquire(10) granted %d, want clamp to 3", got)
	}
	if e.TryAcquire(1) {
		t.Fatal("TryAcquire succeeded with all tokens held")
	}
	e.Release(3)
	if !e.TryAcquire(1) {
		t.Fatal("TryAcquire failed after full release")
	}
	e.Release(1)
}

func TestTryAcquireNeverBlocks(t *testing.T) {
	e := NewExecutor(2)
	if !e.TryAcquire(2) {
		t.Fatal("TryAcquire(2) on idle executor failed")
	}
	if e.TryAcquire(1) {
		t.Fatal("TryAcquire(1) succeeded beyond capacity")
	}
	if e.TryAcquire(5) {
		t.Fatal("TryAcquire wider than capacity must fail, not clamp")
	}
	e.Release(2)
}

func TestReleaseOverflowPanics(t *testing.T) {
	e := NewExecutor(2)
	defer func() {
		if recover() == nil {
			t.Fatal("Release of unheld tokens did not panic")
		}
	}()
	e.Release(1)
}

// TestAcquireFIFOFairness pins the waiter-queue ordering: a small request
// arriving after a large one must not overtake it.
func TestAcquireFIFOFairness(t *testing.T) {
	e := NewExecutor(4)
	e.Acquire(4) // drain

	var order []string
	var mu sync.Mutex
	record := func(tag string) {
		mu.Lock()
		order = append(order, tag)
		mu.Unlock()
	}

	bigQueued := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		close(bigQueued)
		e.Acquire(3)
		record("big")
		e.Release(3)
	}()
	<-bigQueued
	// Give the big waiter time to enqueue before the small one arrives.
	for {
		if e.Stats().QueueDepth == 1 {
			break
		}
		time.Sleep(time.Millisecond)
	}
	go func() {
		defer wg.Done()
		e.Acquire(1)
		record("small")
		e.Release(1)
	}()
	for {
		if e.Stats().QueueDepth == 2 {
			break
		}
		time.Sleep(time.Millisecond)
	}

	// Release one token: enough for "small" but FIFO demands "big" waits
	// first, so nothing may be granted yet.
	e.Release(1)
	time.Sleep(5 * time.Millisecond)
	mu.Lock()
	granted := len(order)
	mu.Unlock()
	if granted != 0 {
		t.Fatalf("a waiter was granted with only 1 token free (order %v)", order)
	}
	// Free exactly enough for "big" (3 of 4 tokens available): only the
	// head of the queue may be granted, and "small" must still wait.
	e.Release(2)
	for {
		mu.Lock()
		n := len(order)
		mu.Unlock()
		if n >= 1 {
			break
		}
		time.Sleep(time.Millisecond)
	}
	mu.Lock()
	first := order[0]
	mu.Unlock()
	if first != "big" {
		t.Fatalf("first grant %q, want the FIFO head \"big\"", first)
	}
	e.Release(1)
	wg.Wait()
	if order[1] != "small" {
		t.Fatalf("grant order %v, want [big small]", order)
	}
}

func TestForEachCoversAllIndices(t *testing.T) {
	e := NewExecutor(4)
	for _, n := range []int{0, 1, 7, 100} {
		seen := make([]atomic.Int64, n)
		e.ForEach(n, 0, func(i int) { seen[i].Add(1) })
		for i := range seen {
			if got := seen[i].Load(); got != 1 {
				t.Fatalf("n=%d: index %d executed %d times", n, i, got)
			}
		}
	}
	if st := e.Stats(); st.InFlight != 0 {
		t.Fatalf("tokens leaked: %d in flight after ForEach", st.InFlight)
	}
}

func TestForEachLimitBoundsConcurrency(t *testing.T) {
	e := NewExecutor(8)
	var cur, peak atomic.Int64
	e.ForEach(64, 2, func(i int) {
		if c := cur.Add(1); c > peak.Load() {
			peak.Store(c)
		}
		time.Sleep(time.Millisecond)
		cur.Add(-1)
	})
	if p := peak.Load(); p > 2 {
		t.Fatalf("ForEach limit 2 reached concurrency %d", p)
	}
}

// TestForEachNestedCompletes is the deadlock-freedom contract: deeply
// nested ForEach calls over one small executor must finish because every
// caller makes progress inline, with or without tokens.
func TestForEachNestedCompletes(t *testing.T) {
	e := NewExecutor(2)
	var leaves atomic.Int64
	e.ForEach(4, 0, func(i int) {
		e.ForEach(4, 0, func(j int) {
			e.ForEach(4, 0, func(k int) {
				leaves.Add(1)
			})
		})
	})
	if got := leaves.Load(); got != 64 {
		t.Fatalf("nested leaves %d, want 64", got)
	}
	if st := e.Stats(); st.InFlight != 0 {
		t.Fatalf("tokens leaked after nesting: %+v", st)
	}
}

// TestForEachZeroTokensRunsInline pins that ForEach needs no tokens at all.
func TestForEachZeroTokensRunsInline(t *testing.T) {
	e := NewExecutor(1)
	e.Acquire(1) // starve the executor
	defer e.Release(1)
	done := 0
	e.ForEach(10, 0, func(i int) { done++ }) // inline: no data race possible
	if done != 10 {
		t.Fatalf("inline ForEach ran %d of 10 iterations", done)
	}
}

func TestStatsCounters(t *testing.T) {
	e := NewExecutor(2)
	e.Acquire(2)
	if e.TryAcquire(1) {
		t.Fatal("TryAcquire succeeded at capacity")
	}
	st := e.Stats()
	if st.InFlight != 2 || st.PeakInFlight != 2 || st.Denied != 1 || st.Acquired != 1 {
		t.Fatalf("stats %+v", st)
	}
	released := make(chan struct{})
	go func() {
		e.Acquire(1)
		close(released)
	}()
	for e.Stats().QueueDepth != 1 {
		time.Sleep(time.Millisecond)
	}
	e.Release(2)
	<-released
	e.Release(1)
	st = e.Stats()
	if st.InFlight != 0 || st.QueueDepth != 0 || st.Waited != 1 {
		t.Fatalf("final stats %+v", st)
	}
}

// TestExecutorStress hammers one executor from many goroutines mixing
// blocking, non-blocking, and ForEach traffic; run under -race in CI.
func TestExecutorStress(t *testing.T) {
	e := NewExecutor(4)
	var wg sync.WaitGroup
	var sum atomic.Int64
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for r := 0; r < 20; r++ {
				switch g % 3 {
				case 0:
					n := e.Acquire(1 + g%4)
					sum.Add(1)
					e.Release(n)
				case 1:
					if e.TryAcquire(1) {
						sum.Add(1)
						e.Release(1)
					}
				default:
					e.ForEach(8, 3, func(i int) { sum.Add(1) })
				}
			}
		}(g)
	}
	wg.Wait()
	st := e.Stats()
	if st.InFlight != 0 || st.QueueDepth != 0 {
		t.Fatalf("stress left executor dirty: %+v", st)
	}
	if sum.Load() == 0 {
		t.Fatal("no work executed")
	}
}
