// Package parallel is the process-wide concurrency governor: one bounded,
// weighted-token executor that every parallel layer of the pipeline — the
// scenario sweep (internal/engine), the exhaustive searchers
// (internal/search), the per-application design fan-out (internal/core),
// the PSO evaluation pool (internal/pso), and the HTTP design batches
// (cmd/served) — draws from, instead of each layer running its own
// sync.WaitGroup+channel pool.
//
// Before the governor, parallelism was nested and unbounded in aggregate:
// sweep workers × per-scenario exhaustive workers × per-app design
// goroutines × PSO goroutine-per-particle could oversubscribe the scheduler
// by orders of magnitude exactly when the process was busiest. The governor
// caps the number of *computing* goroutines at its capacity (default
// GOMAXPROCS) while keeping every layer's coordination goroutines free, so
// the box saturates without thrashing.
//
// # Deadlock freedom under nesting
//
// The one rule that makes arbitrary nesting safe: a layer's own goroutine
// never blocks waiting for a token in order to make progress. ForEach — the
// work-distribution primitive every internal layer uses — always runs
// iterations on the calling goroutine and only adds helper goroutines for
// tokens TryAcquire can grant immediately. Tokens are therefore pure
// accelerators: with zero tokens available every ForEach degrades to an
// inline serial loop and still completes. Blocking Acquire exists for
// top-level admission control (weighted by request size) and must not be
// called while holding tokens.
//
// # Determinism
//
// The governor never changes results: every consumer writes into
// index-addressed slots and reduces in index order, so any token
// availability — including none — yields bit-identical outputs. The
// engine's parallel-equals-serial sweep tests and the searchers' worker
// -count equivalence tests pin this.
package parallel

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
)

// Executor is a bounded, weighted-token concurrency governor. The zero
// value is not usable; construct with NewExecutor or use the process-wide
// Default.
type Executor struct {
	capacity int

	mu      sync.Mutex
	held    int // tokens currently held
	waiters waiterList
	peak    int

	acquired atomic.Int64 // granted Acquire/TryAcquire calls
	waited   atomic.Int64 // Acquire calls that had to queue
	denied   atomic.Int64 // TryAcquire calls that returned false
}

// waiter is one queued Acquire call. Waiters are served strictly in arrival
// order: a later, smaller request never overtakes an earlier, larger one
// (no starvation of heavy requests).
type waiter struct {
	need  int
	ready chan struct{}
	next  *waiter
}

// waiterList is a FIFO queue of blocked Acquire calls.
type waiterList struct {
	head, tail *waiter
	n          int
}

func (l *waiterList) push(w *waiter) {
	if l.tail == nil {
		l.head, l.tail = w, w
	} else {
		l.tail.next = w
		l.tail = w
	}
	l.n++
}

func (l *waiterList) pop() *waiter {
	w := l.head
	l.head = w.next
	if l.head == nil {
		l.tail = nil
	}
	w.next = nil
	l.n--
	return w
}

// NewExecutor returns an executor with the given token capacity;
// capacity <= 0 selects runtime.GOMAXPROCS(0).
func NewExecutor(capacity int) *Executor {
	if capacity <= 0 {
		capacity = runtime.GOMAXPROCS(0)
	}
	return &Executor{capacity: capacity}
}

var (
	defaultOnce sync.Once
	defaultExec *Executor
)

// Default returns the process-wide executor (capacity GOMAXPROCS at first
// use). All internal pipeline layers draw from it.
func Default() *Executor {
	defaultOnce.Do(func() { defaultExec = NewExecutor(0) })
	return defaultExec
}

// Capacity returns the executor's token capacity.
func (e *Executor) Capacity() int { return e.capacity }

// Acquire blocks until n tokens are available and takes them, returning the
// granted count: n clamped to the capacity, so a request wider than the
// whole executor degrades to "the whole executor" instead of deadlocking.
// Waiters are served in FIFO order. Release the same count when done.
//
// Acquire is for top-level admission control: cmd/served's singleflight
// evaluators (cold design records, cold table renders) and its sweep
// handler hold one token while they compute, since that goroutine works
// inline — excess cold requests queue FIFO instead of piling onto the box,
// while cache hits never touch the queue. Acquire must be the first thing
// such a leader does, before it can hold anything another token holder
// might wait on. Compute layers inside the pipeline must use ForEach or
// TryAcquire instead: blocking on tokens while holding tokens, or while a
// parent layer waits on this goroutine, can stall the process.
func (e *Executor) Acquire(n int) int {
	if n < 1 {
		n = 1
	}
	if n > e.capacity {
		n = e.capacity
	}
	e.mu.Lock()
	if e.waiters.n == 0 && e.held+n <= e.capacity {
		e.grantLocked(n)
		e.mu.Unlock()
		return n
	}
	w := &waiter{need: n, ready: make(chan struct{})}
	e.waiters.push(w)
	e.mu.Unlock()
	e.waited.Add(1)
	<-w.ready // grantLocked already accounted the tokens
	return n
}

// TryAcquire takes n tokens if they are available right now without
// overtaking queued Acquire waiters, reporting whether it got them. It
// never blocks and never allocates, which makes it safe for steady-state
// hot loops (the PSO pool calls it once per evaluation round).
func (e *Executor) TryAcquire(n int) bool {
	if n < 1 {
		n = 1
	}
	e.mu.Lock()
	if n > e.capacity || e.waiters.n > 0 || e.held+n > e.capacity {
		e.mu.Unlock()
		e.denied.Add(1)
		return false
	}
	e.grantLocked(n)
	e.mu.Unlock()
	return true
}

// grantLocked takes n tokens; the caller holds e.mu.
func (e *Executor) grantLocked(n int) {
	e.held += n
	if e.held > e.peak {
		e.peak = e.held
	}
	e.acquired.Add(1)
}

// Release returns n tokens and hands them to queued waiters in FIFO order.
// n must match a prior grant; releasing more than held panics, catching
// accounting bugs loudly instead of silently inflating capacity.
func (e *Executor) Release(n int) {
	if n < 1 {
		n = 1
	}
	if n > e.capacity {
		n = e.capacity
	}
	e.mu.Lock()
	if n > e.held {
		e.mu.Unlock()
		panic(fmt.Sprintf("parallel: Release(%d) exceeds %d held tokens", n, e.held))
	}
	e.held -= n
	for e.waiters.n > 0 && e.held+e.waiters.head.need <= e.capacity {
		w := e.waiters.pop()
		e.grantLocked(w.need)
		close(w.ready)
	}
	e.mu.Unlock()
}

// ForEach runs fn(i) for every i in [0, n), distributing iterations over
// the executor's spare capacity. Iterations are claimed from an atomic
// counter, so fn must be safe for concurrent calls and should write results
// into index-addressed slots; reducing those slots in index order afterward
// is what keeps parallel runs bit-identical to serial ones.
//
// The calling goroutine always executes iterations itself, so completion
// never depends on token availability and nested ForEach calls cannot
// deadlock; up to limit-1 helper goroutines join for whatever tokens
// TryAcquire grants at entry. limit <= 0 means "executor capacity". Each
// helper holds one token for the duration of its work and releases it on
// exit.
func (e *Executor) ForEach(n, limit int, fn func(i int)) {
	if n <= 0 {
		return
	}
	if limit <= 0 || limit > n {
		limit = n
	}
	var next atomic.Int64
	work := func(f func(int)) {
		for {
			i := int(next.Add(1)) - 1
			if i >= n {
				return
			}
			f(i)
		}
	}
	var wg sync.WaitGroup
	for h := 0; h < limit-1 && e.TryAcquire(1); h++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer e.Release(1)
			work(fn)
		}()
	}
	work(fn)
	wg.Wait()
}

// Stats is a point-in-time snapshot of the executor's gauges and counters;
// cmd/served exposes it on /statsz.
type Stats struct {
	Capacity     int   // token capacity
	InFlight     int   // tokens currently held
	QueueDepth   int   // Acquire calls currently waiting
	PeakInFlight int   // high-water mark of InFlight
	Acquired     int64 // grants (Acquire completions + successful TryAcquires)
	Waited       int64 // Acquire calls that had to queue before being granted
	Denied       int64 // TryAcquire calls that found no spare capacity
}

// Stats snapshots the executor counters.
func (e *Executor) Stats() Stats {
	e.mu.Lock()
	s := Stats{
		Capacity:     e.capacity,
		InFlight:     e.held,
		QueueDepth:   e.waiters.n,
		PeakInFlight: e.peak,
	}
	e.mu.Unlock()
	s.Acquired = e.acquired.Load()
	s.Waited = e.waited.Load()
	s.Denied = e.denied.Load()
	return s
}
