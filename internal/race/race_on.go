//go:build race

package race

// Enabled reports whether the race detector is compiled in. Allocation
// regression tests skip their exact-count assertions under the race
// detector, whose instrumentation adds allocations of its own.
const Enabled = true
