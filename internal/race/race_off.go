//go:build !race

// Package race exposes whether the race detector is active, so
// allocation-count regression tests can skip exact assertions under -race.
package race

// Enabled reports whether the race detector is compiled in.
const Enabled = false
