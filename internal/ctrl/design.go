package ctrl

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/lti"
	"repro/internal/mat"
	"repro/internal/pso"
	"repro/internal/sched"
)

// Constraints are the per-application design constraints of Section II-A:
// reference magnitude, input saturation, settling deadline (doubling as the
// normalization reference s0), and the settling band.
type Constraints struct {
	Ref            float64 // reference step magnitude r (non-zero)
	UMax           float64 // maximum |u|; <= 0 disables the constraint
	SettleDeadline float64 // s_max (seconds); also the normalization s0
	Band           float64 // settling band fraction (default lti.SettlingBand)
}

func (c Constraints) withDefaults() Constraints {
	if c.Band <= 0 {
		c.Band = lti.SettlingBand
	}
	return c
}

// Validate rejects unusable constraint sets.
func (c Constraints) Validate() error {
	if c.Ref == 0 {
		return errors.New("ctrl: constraints need a non-zero reference")
	}
	if c.SettleDeadline <= 0 {
		return errors.New("ctrl: constraints need a positive settling deadline")
	}
	return nil
}

// DesignOptions tunes the holistic design search.
type DesignOptions struct {
	Swarm pso.Options // PSO budget; zero-value uses pso defaults
	Sim   SimOptions  // simulation grid; Horizon <= 0 defaults to 2.5x deadline
	// GainScale multiplies the warm-start gain magnitudes to form the PSO
	// search box (default 8).
	GainScale float64
	// WarmStartRadii are closed-loop pole radii used to generate Ackermann
	// warm starts (default 0.2, 0.4, 0.6, 0.8).
	WarmStartRadii []float64
	// PerModeFeedforward selects the paper's per-mode Eq. (17) feedforward
	// instead of the default holistic (periodic-orbit) feedforward; the
	// ablation benchmarks use it to quantify the difference.
	PerModeFeedforward bool
}

func (o DesignOptions) withDefaults(cons Constraints) DesignOptions {
	if o.GainScale <= 0 {
		o.GainScale = 4
	}
	if len(o.WarmStartRadii) == 0 {
		o.WarmStartRadii = []float64{0.2, 0.4, 0.6, 0.8, 0.9, 0.96}
	}
	if o.Sim.Horizon <= 0 {
		o.Sim.Horizon = 2.5 * cons.SettleDeadline
	}
	if o.Swarm.Particles == 0 {
		o.Swarm.Particles = 24
	}
	if o.Swarm.Iterations == 0 {
		o.Swarm.Iterations = 40
	}
	if o.Swarm.StallLimit == 0 {
		o.Swarm.StallLimit = 12
		if lim := o.Swarm.Iterations / 3; lim > 12 {
			o.Swarm.StallLimit = lim
		}
	}
	return o
}

// Design is a completed controller design with its evaluation.
type Design struct {
	Gains          Gains
	Modes          []Mode
	SettlingTime   float64 // worst-case settling time s_i of y[k] (seconds)
	Settled        bool
	DenseSettling  float64 // settling time of the dense continuous output
	SpectralRadius float64 // of the monodromy matrix
	MaxInput       float64 // peak |u[k]| over the evaluation run
	MaxRipple      float64 // peak |y(t)-r| after the sampled settling instant
	RippleOK       bool    // intersample ripple stays within 5x the band
	Performance    float64 // P_i = 1 - s_i/s0 (Eq. 2)
	Feasible       bool    // stable, settled, within saturation and deadline
	Evaluations    int     // objective evaluations spent
	Trajectory     *Trajectory
}

// DesignHolistic designs all gains of one application's schedule period
// together (Section III): a layered search (periodic-LQR warm starts, a
// shared-gain PSO pre-solve, the full per-mode PSO, and a deterministic
// compass polish) over the stacked per-task feedback gains, feedforward
// gains solved from the closed-loop periodic orbit (equivalent to Eq. (17)
// here), stability enforced on the lifted closed loop, and the worst-case
// settling time of the sampled output as the objective, with the reference
// step applied right after the application's burst.
func DesignHolistic(plant *lti.System, as sched.AppSchedule, cons Constraints, opt DesignOptions) (*Design, error) {
	cons = cons.withDefaults()
	if err := cons.Validate(); err != nil {
		return nil, err
	}
	opt = opt.withDefaults(cons)
	modes, err := ModesFromSchedule(plant, as)
	if err != nil {
		return nil, err
	}
	m, l := len(modes), plant.Order()
	opt.Sim.InitialGap = as.Gap

	// Compile the simulation once: every objective evaluation of both PSO
	// phases and the polish reuses the same precomputed segments and scratch
	// pool instead of re-discretizing the plant per call.
	plan, err := CompileSimPlan(plant, modes, opt.Sim)
	if err != nil {
		return nil, err
	}

	ackSeeds, scale := warmStarts(plant, modes, opt)
	lqrSeeds, lqrScale := LQRSeedGains(modes)
	for s := range scale {
		if s < len(lqrScale) && lqrScale[s] > scale[s] {
			scale[s] = lqrScale[s]
		}
	}
	// Seed priority matters: the swarm only adopts the first Particles
	// seeds, so the robust periodic-LQR designs go first and the
	// aggressive Ackermann families last.
	seeds := append(append([][]float64{}, lqrSeeds...), ackSeeds...)
	evals := 0

	// One reusable evaluation scratch for the calling goroutine (both PSO
	// phases and the polish); the pools get an independent instance per
	// worker so every worker's gain buffers and workspaces stay private and
	// cache-hot. All instances are bit-identical to the allocating
	// reference objective.
	eval := newDesignEval(plan, modes, cons, opt.PerModeFeedforward)
	newObjective := func() func([]float64) float64 {
		return newDesignEval(plan, modes, cons, opt.PerModeFeedforward).objective
	}
	newShared := func() func([]float64) float64 {
		return newDesignEval(plan, modes, cons, opt.PerModeFeedforward).sharedObjective
	}

	// Phase 1: search a single gain shared by all modes (dimension l).
	// This low-dimensional pre-solve reliably lands in the feasible basin;
	// its optimum seeds the full per-mode search.
	tile := func(k []float64) []float64 {
		out := make([]float64, 0, m*l)
		for j := 0; j < m; j++ {
			out = append(out, k...)
		}
		return out
	}
	lower1 := make([]float64, l)
	upper1 := make([]float64, l)
	for s := 0; s < l; s++ {
		lower1[s] = -scale[s]
		upper1[s] = +scale[s]
	}
	swarm1 := opt.Swarm
	swarm1.Seeds = nil
	for _, sd := range seeds {
		swarm1.Seeds = append(swarm1.Seeds, sd[:l]) // first mode's gain of each warm start
	}
	res1, err := pso.Minimize(pso.Problem{
		Dim: l, Lower: lower1, Upper: upper1,
		Objective: eval.sharedObjective, NewObjective: newShared,
	}, swarm1)
	if err != nil {
		return nil, err
	}
	evals += res1.Evaluations

	// Phase 2: full per-mode search seeded with the shared optimum and the
	// analytic warm starts.
	dim := m * l
	lower := make([]float64, dim)
	upper := make([]float64, dim)
	for j := 0; j < m; j++ {
		for s := 0; s < l; s++ {
			lower[j*l+s] = -scale[s]
			upper[j*l+s] = +scale[s]
		}
	}
	opt.Swarm.Seeds = append([][]float64{tile(res1.X)}, seeds...)
	res, err := pso.Minimize(pso.Problem{
		Dim: dim, Lower: lower, Upper: upper,
		Objective: eval.objective, NewObjective: newObjective,
	}, opt.Swarm)
	if err != nil {
		return nil, err
	}
	evals += res.Evaluations

	best := res.X
	bestVal := res.Value
	if res1.Value < bestVal {
		best, bestVal = tile(res1.X), res1.Value // phase 2 must never lose to its own seed
	}

	// Phase 3: deterministic compass-search polish. PSO leaves plateau
	// noise on the staircase-shaped settling objective; a shrinking
	// coordinate descent from the incumbent removes it cheaply.
	best, _, pEvals := polish(best, bestVal, lower, upper, eval.objective)
	evals += pEvals

	g, err := gainsFromVectorFF(best, modes, m, l, opt.PerModeFeedforward)
	if err != nil {
		return nil, fmt.Errorf("ctrl: best PSO point invalid: %w", err)
	}
	d, err := EvaluateDesign(plant, modes, g, cons, opt.Sim)
	if err != nil {
		return nil, err
	}
	d.Evaluations = evals
	return d, nil
}

// EvaluateDesign runs the definitive evaluation of a gain set: stability,
// worst-case settling simulation, saturation, and the performance index.
func EvaluateDesign(plant *lti.System, modes []Mode, g Gains, cons Constraints, sim SimOptions) (*Design, error) {
	cons = cons.withDefaults()
	stable, rho, err := StableMonodromy(modes, g)
	if err != nil {
		return nil, err
	}
	d := &Design{Gains: g, Modes: modes, SpectralRadius: rho, SettlingTime: math.Inf(1)}
	if !stable {
		return d, nil
	}
	tr, err := Simulate(plant, modes, g, cons.Ref, sim)
	if err != nil {
		return d, nil // diverged: unstable in practice, keep infeasible
	}
	info := tr.Evaluate(cons.Ref, cons.Band)
	dense := tr.EvaluateDense(cons.Ref, cons.Band)
	d.Trajectory = tr
	d.SettlingTime = info.SettlingTime
	d.Settled = info.Settled
	d.DenseSettling = dense.SettlingTime
	d.MaxInput = info.PeakInput
	d.MaxRipple = tr.MaxDenseDeviationAfter(info.SettlingTime, cons.Ref)
	d.RippleOK = d.MaxRipple <= 5*cons.Band*math.Abs(cons.Ref)
	d.Performance = 1 - info.SettlingTime/cons.SettleDeadline
	d.Feasible = info.Settled && d.RippleOK &&
		(cons.UMax <= 0 || info.PeakInput <= cons.UMax+1e-9) &&
		info.SettlingTime <= cons.SettleDeadline
	return d, nil
}

// polish runs a bounded compass (pattern) search from x0: probe +/- step
// along every coordinate, move to the best improvement, halve the step when
// none improves. Deterministic, at most ~40*dim objective evaluations.
func polish(x0 []float64, v0 float64, lower, upper []float64, objective func([]float64) float64) ([]float64, float64, int) {
	dim := len(x0)
	x := append([]float64(nil), x0...)
	v := v0
	step := make([]float64, dim)
	for i := range step {
		step[i] = 0.05 * (upper[i] - lower[i])
	}
	evals := 0
	probe := append([]float64(nil), x...)
	for round := 0; round < 20; round++ {
		improved := false
		for i := 0; i < dim; i++ {
			for _, dir := range []float64{+1, -1} {
				copy(probe, x)
				probe[i] = clampTo(probe[i]+dir*step[i], lower[i], upper[i])
				if probe[i] == x[i] {
					continue
				}
				pv := objective(probe)
				evals++
				if pv < v {
					v = pv
					x[i] = probe[i]
					improved = true
				}
			}
		}
		if !improved {
			for i := range step {
				step[i] *= 0.5
			}
		}
	}
	return x, v, evals
}

func clampTo(x, lo, hi float64) float64 {
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}

// designObjective is the scalar cost PSO minimizes: settling time plus
// smooth penalties for instability, saturation violation, and not settling.
// It runs the compiled plan's streaming evaluation — no trajectory is
// materialized — and produces values bit-identical to the dense path (see
// TestDesignObjectiveStreamingMatchesDense). It is the allocating reference
// implementation; the search itself runs designEval, whose per-worker
// scratch computes the same value bit for bit.
func designObjective(plan *SimPlan, modes []Mode, g Gains, cons Constraints) float64 {
	stable, rho, err := StableMonodromy(modes, g)
	return monodromyScore(plan, g, cons, stable, rho, err)
}

// monodromyScore turns a stability verdict plus the streaming simulation
// metrics into the scalar design cost; shared by designObjective and
// designEval so the two paths cannot drift.
func monodromyScore(plan *SimPlan, g Gains, cons Constraints, stable bool, rho float64, err error) float64 {
	if err != nil || math.IsNaN(rho) {
		return 1e6
	}
	if !stable {
		// Push toward the stability boundary.
		return 1e3 * (1 + rho)
	}
	horizon := plan.Horizon()
	// Design against a slightly tighter band than the reported one so the
	// final 2% measurement has margin instead of riding the band edge.
	met, err := plan.Metrics(g, cons.Ref, 0.9*cons.Band, horizon/2, 0.9*cons.Band)
	if err != nil {
		return 1e5
	}
	// The sampled settling time is a staircase in gain space; the smooth
	// ITAE term gives the swarm a gradient across its plateaus.
	obj := met.SettlingTime + 0.25*horizon*met.ITAE
	if !met.Settled {
		// Shape the landscape for nearly settling designs: reward staying
		// mostly inside the band over the second half of the horizon.
		obj = horizon * (1.5 + met.BandViolation + met.FinalError/math.Abs(cons.Ref))
	} else {
		// Penalize intersample ringing beyond 5x the band so the sampled
		// metric cannot hide wild continuous behavior.
		if rip := met.MaxDevAfterSettle; rip > 5*cons.Band*math.Abs(cons.Ref) {
			obj += horizon * (rip/(5*cons.Band*math.Abs(cons.Ref)) - 1)
		}
	}
	if cons.UMax > 0 && met.PeakInput > cons.UMax {
		obj += horizon * 5 * (met.PeakInput/cons.UMax - 1)
	}
	return obj
}

// gainsFromVector unpacks the PSO decision vector into per-mode gains and
// computes the matching feedforward gains. The default is the holistic
// feedforward (periodic-orbit tracking); perModeFF selects the paper's
// per-mode Eq. (17) instead (used by the ablation baseline).
func gainsFromVector(x []float64, modes []Mode, m, l int) (Gains, error) {
	return gainsFromVectorFF(x, modes, m, l, false)
}

func gainsFromVectorFF(x []float64, modes []Mode, m, l int, perModeFF bool) (Gains, error) {
	g := Gains{K: make([]*mat.Matrix, m), F: make([]float64, m)}
	for j := 0; j < m; j++ {
		k := mat.New(1, l)
		for s := 0; s < l; s++ {
			k.Set(0, s, x[j*l+s])
		}
		g.K[j] = k
	}
	if perModeFF {
		for j := 0; j < m; j++ {
			f, err := Feedforward(modes[j].D.Ad, modes[j].D.BTotal(), modes[j].D.C, g.K[j])
			if err != nil {
				return Gains{}, err
			}
			g.F[j] = f
		}
		return g, nil
	}
	fs, err := HolisticFeedforward(modes, g.K)
	if err != nil {
		return Gains{}, err
	}
	g.F = fs
	return g, nil
}

// warmStarts produces Ackermann-based seed gain vectors and a per-state
// search scale. Seeds place real poles of radius rho on each mode's
// zero-delay ZOH pair; per-mode gains are stacked into the decision vector.
// The search box is derived from the *moderate* radii only (>= 0.5), since
// aggressive low-radius gains blow the box up to regions where every point
// saturates or destabilizes.
func warmStarts(plant *lti.System, modes []Mode, opt DesignOptions) (seeds [][]float64, scale []float64) {
	m, l := len(modes), plant.Order()
	scale = make([]float64, l)
	for _, rho := range opt.WarmStartRadii {
		poles := make([]complex128, l)
		for s := 0; s < l; s++ {
			// Distinct real poles descending from rho.
			poles[s] = complex(rho*math.Pow(0.8, float64(s)), 0)
		}
		vec := make([]float64, 0, m*l)
		ok := true
		for j := 0; j < m; j++ {
			k, err := Ackermann(modes[j].D.Ad, modes[j].D.BTotal(), poles)
			if err != nil {
				ok = false
				break
			}
			for s := 0; s < l; s++ {
				v := k.At(0, s)
				vec = append(vec, v)
				if a := math.Abs(v); a > scale[s] && rho >= 0.5 {
					scale[s] = a
				}
			}
		}
		if ok {
			seeds = append(seeds, vec)
			// Down-scaled variants cover the low-gain corner, which is
			// where saturation-limited designs live.
			for _, sc := range []float64{0.3, 0.1, 0.03} {
				scaled := make([]float64, len(vec))
				for i, v := range vec {
					scaled[i] = sc * v
				}
				seeds = append(seeds, scaled)
			}
		}
	}
	// Continuous-time designs used directly as discrete state-feedback
	// gains: classic emulation design, inherently tolerant of the one-step
	// actuation delays of in-burst tasks. Bandwidths are expressed relative
	// to the mean sampling rate.
	meanH := 0.0
	for _, md := range modes {
		meanH += md.D.H
	}
	meanH /= float64(m)
	for _, frac := range []float64{0.05, 0.1, 0.2, 0.35, 0.5} {
		alpha := frac * 2 * math.Pi / meanH
		poles := make([]complex128, l)
		for s := 0; s < l; s++ {
			poles[s] = complex(-alpha*math.Pow(0.85, float64(s)), 0)
		}
		k, err := Ackermann(plant.A, plant.B, poles)
		if err != nil {
			continue
		}
		vec := make([]float64, 0, m*l)
		for j := 0; j < m; j++ {
			for s := 0; s < l; s++ {
				v := k.At(0, s)
				vec = append(vec, v)
				if a := math.Abs(v); a > scale[s] {
					scale[s] = a
				}
			}
		}
		seeds = append(seeds, vec)
	}

	for s := range scale {
		if scale[s] == 0 {
			scale[s] = 1
		}
		scale[s] *= opt.GainScale
	}
	return seeds, scale
}

// DesignPerMode is the non-holistic ablation baseline: each task's gain is
// designed in isolation as if its own sampling interval repeated uniformly,
// then the per-mode designs are combined and evaluated on the true switched
// system. The gap between this and DesignHolistic quantifies the value of
// the paper's joint design.
func DesignPerMode(plant *lti.System, as sched.AppSchedule, cons Constraints, opt DesignOptions) (*Design, error) {
	cons = cons.withDefaults()
	if err := cons.Validate(); err != nil {
		return nil, err
	}
	opt = opt.withDefaults(cons)
	modes, err := ModesFromSchedule(plant, as)
	if err != nil {
		return nil, err
	}
	m := len(modes)

	g := Gains{K: make([]*mat.Matrix, m), F: make([]float64, m)}
	evals := 0
	for j := 0; j < m; j++ {
		single := sched.AppSchedule{
			Name:    as.Name,
			M:       1,
			WCETs:   []float64{as.WCETs[j]},
			Periods: []float64{as.Periods[j]},
			Delays:  []float64{as.Delays[j]},
			Gap:     as.Periods[j] - as.Delays[j],
		}
		sub, err := DesignHolistic(plant, single, cons, opt)
		if err != nil {
			return nil, fmt.Errorf("ctrl: per-mode design %d: %w", j, err)
		}
		evals += sub.Evaluations
		g.K[j] = sub.Gains.K[0]
	}
	for j := 0; j < m; j++ {
		f, err := Feedforward(modes[j].D.Ad, modes[j].D.BTotal(), modes[j].D.C, g.K[j])
		if err != nil {
			return nil, err
		}
		g.F[j] = f
	}
	sim := opt.Sim
	sim.InitialGap = as.Gap
	d, err := EvaluateDesign(plant, modes, g, cons, sim)
	if err != nil {
		return nil, err
	}
	d.Evaluations = evals
	return d, nil
}
