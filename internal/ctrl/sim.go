package ctrl

import (
	"math"

	"repro/internal/lti"
	"repro/internal/mat"
)

// SimOptions configures the closed-loop simulation.
type SimOptions struct {
	// Horizon is the simulated duration in seconds after the reference
	// step. Required > 0.
	Horizon float64
	// DtMax is the densest output sampling interval; intervals are
	// subdivided so no output gap exceeds it (default: Horizon/2000).
	DtMax float64
	// InitialGap delays the first sampling instant after the reference
	// step; the paper's worst-case convention starts tracking right after
	// the application's last burst task, so the plant idles for the gap
	// before the first new sample (Section V). Negative means zero.
	InitialGap float64
	// X0 optionally sets the initial plant state (default: origin).
	X0 *mat.Matrix
	// UHeld0 is the input held at t=0 (default 0: old equilibrium).
	UHeld0 float64
}

// Trajectory is a simulated closed-loop run.
type Trajectory struct {
	Dense   []lti.Sample // densely sampled output y(t)
	Inputs  []float64    // control input computed at each sampling instant
	Times   []float64    // sampling instants
	Outputs []float64    // output at sampling instants
}

// Simulate runs the periodically switched closed loop against a reference
// step r, starting worst-case (per SimOptions.InitialGap), and returns the
// dense trajectory. Inputs are NOT saturated: exceeding a bound is reported
// by the caller as a constraint violation, matching the paper's u <= Umax
// design constraint.
//
// Simulate compiles a fresh SimPlan per call; evaluation loops that run the
// same (plant, modes, options) against many gain sets should compile the
// plan once with CompileSimPlan and call its Simulate/Metrics methods.
func Simulate(plant *lti.System, modes []Mode, g Gains, r float64, opt SimOptions) (*Trajectory, error) {
	plan, err := CompileSimPlan(plant, modes, opt)
	if err != nil {
		return nil, err
	}
	return plan.Simulate(g, r)
}

// Evaluate summarizes the trajectory at the sampling instants, which is the
// paper's performance metric: the settling time of the sampled output y[k]
// (Section II-A, "the time it takes for y[k] to reach and stay in a closed
// region around r").
func (tr *Trajectory) Evaluate(r, band float64) lti.StepInfo {
	return lti.AnalyzeStepSeries(tr.Times, tr.Outputs, tr.Inputs, r, band)
}

// EvaluateDense measures settling on the densely sampled continuous output
// instead of the sampling instants; it is stricter than the paper's sampled
// metric and is reported alongside it.
func (tr *Trajectory) EvaluateDense(r, band float64) lti.StepInfo {
	return lti.AnalyzeStep(tr.Dense, tr.Inputs, r, band)
}

// MaxDenseDeviationAfter returns the largest |y(t) - r| over the dense
// trajectory for t >= from. It guards against designs that look settled at
// the sampling instants while ringing in between.
func (tr *Trajectory) MaxDenseDeviationAfter(from, r float64) float64 {
	max := 0.0
	for _, s := range tr.Dense {
		if s.T < from {
			continue
		}
		if d := math.Abs(s.Y - r); d > max {
			max = d
		}
	}
	return max
}

// BandViolationFraction returns the fraction of dense samples with t >= from
// lying outside the band around r; it shapes the objective for designs that
// are close to settling.
func (tr *Trajectory) BandViolationFraction(from, r, band float64) float64 {
	total, out := 0, 0
	delta := band * math.Abs(r)
	for _, s := range tr.Dense {
		if s.T < from {
			continue
		}
		total++
		if math.Abs(s.Y-r) > delta {
			out++
		}
	}
	if total == 0 {
		return 1
	}
	return float64(out) / float64(total)
}

// ITAE returns the normalized integral of time-weighted absolute error of
// the dense output, ∫ t·|y(t)-r| dt / (|r|·T²/2). It is a smooth surrogate
// for settling time used to break the staircase plateaus of the sampled
// settling metric during gain search.
func (tr *Trajectory) ITAE(r float64) float64 {
	if len(tr.Dense) < 2 {
		return math.Inf(1)
	}
	sum := 0.0
	for i := 1; i < len(tr.Dense); i++ {
		dt := tr.Dense[i].T - tr.Dense[i-1].T
		sum += tr.Dense[i].T * math.Abs(tr.Dense[i].Y-r) * dt
	}
	T := tr.Dense[len(tr.Dense)-1].T
	norm := math.Abs(r) * T * T / 2
	if norm == 0 {
		return math.Inf(1)
	}
	return sum / norm
}

// FinalError returns |y(T) - r| at the last dense sample, used to rank
// unsettled designs.
func (tr *Trajectory) FinalError(r float64) float64 {
	if len(tr.Dense) == 0 {
		return math.Inf(1)
	}
	return math.Abs(tr.Dense[len(tr.Dense)-1].Y - r)
}
