package ctrl

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/lti"
	"repro/internal/mat"
)

// SimOptions configures the closed-loop simulation.
type SimOptions struct {
	// Horizon is the simulated duration in seconds after the reference
	// step. Required > 0.
	Horizon float64
	// DtMax is the densest output sampling interval; intervals are
	// subdivided so no output gap exceeds it (default: Horizon/2000).
	DtMax float64
	// InitialGap delays the first sampling instant after the reference
	// step; the paper's worst-case convention starts tracking right after
	// the application's last burst task, so the plant idles for the gap
	// before the first new sample (Section V). Negative means zero.
	InitialGap float64
	// X0 optionally sets the initial plant state (default: origin).
	X0 *mat.Matrix
	// UHeld0 is the input held at t=0 (default 0: old equilibrium).
	UHeld0 float64
}

// Trajectory is a simulated closed-loop run.
type Trajectory struct {
	Dense   []lti.Sample // densely sampled output y(t)
	Inputs  []float64    // control input computed at each sampling instant
	Times   []float64    // sampling instants
	Outputs []float64    // output at sampling instants
}

// segment is a precomputed propagation step: x <- Ad x + Bd*u over dt.
type segment struct {
	dt   float64
	ad   *mat.Matrix
	bd   []float64
	held bool // true: apply the held input; false: apply the current input
}

// planSpan appends sub-steps covering span (each <= dtMax) to segs.
func planSpan(plant *lti.System, span, dtMax float64, held bool, segs []segment) []segment {
	if span <= 0 {
		return segs
	}
	n := int(math.Ceil(span/dtMax - 1e-12))
	if n < 1 {
		n = 1
	}
	dt := span / float64(n)
	ad, bd := mat.ExpmIntegral(plant.A, plant.B, dt)
	seg := segment{dt: dt, ad: ad, bd: bd.Col(0), held: held}
	for i := 0; i < n; i++ {
		segs = append(segs, seg)
	}
	return segs
}

// Simulate runs the periodically switched closed loop against a reference
// step r, starting worst-case (per SimOptions.InitialGap), and returns the
// dense trajectory. Inputs are NOT saturated: exceeding a bound is reported
// by the caller as a constraint violation, matching the paper's u <= Umax
// design constraint.
func Simulate(plant *lti.System, modes []Mode, g Gains, r float64, opt SimOptions) (*Trajectory, error) {
	if len(modes) == 0 {
		return nil, errors.New("ctrl: no modes to simulate")
	}
	l := plant.Order()
	if err := g.Validate(len(modes), l); err != nil {
		return nil, err
	}
	if opt.Horizon <= 0 {
		return nil, fmt.Errorf("ctrl: horizon %g must be positive", opt.Horizon)
	}
	dtMax := opt.DtMax
	if dtMax <= 0 {
		dtMax = opt.Horizon / 2000
	}

	// Precompute per-mode propagation segments: before the actuation
	// instant tau the held (previous) input applies, after it the fresh one.
	plans := make([][]segment, len(modes))
	for j, m := range modes {
		var segs []segment
		segs = planSpan(plant, m.D.Tau, dtMax, true, segs)
		segs = planSpan(plant, m.D.H-m.D.Tau, dtMax, false, segs)
		plans[j] = segs
	}
	kRows := make([][]float64, len(modes))
	for j := range modes {
		kRows[j] = g.K[j].Row(0)
	}
	cRow := plant.C.Row(0)

	x := make([]float64, l)
	if opt.X0 != nil {
		copy(x, opt.X0.Col(0))
	}
	xNext := make([]float64, l)
	uHeld := opt.UHeld0
	dot := func(a, b []float64) float64 {
		s := 0.0
		for i := range a {
			s += a[i] * b[i]
		}
		return s
	}

	tr := &Trajectory{}
	t := 0.0
	tr.Dense = append(tr.Dense, lti.Sample{T: t, Y: dot(cRow, x)})

	step := func(seg segment, u float64) {
		seg.ad.ApplyVec(xNext, x)
		for i := range xNext {
			xNext[i] += seg.bd[i] * u
		}
		x, xNext = xNext, x
		t += seg.dt
		tr.Dense = append(tr.Dense, lti.Sample{T: t, Y: dot(cRow, x)})
	}

	// Initial idle gap: the reference has stepped but the next sampling
	// instant is InitialGap away; the held input keeps applying.
	if opt.InitialGap > 0 {
		for _, seg := range planSpan(plant, opt.InitialGap, dtMax, true, nil) {
			step(seg, uHeld)
		}
	}

	j := 0
	for t < opt.Horizon {
		// Sampling instant of mode j: compute the new input.
		u := dot(kRows[j], x) + g.F[j]*r
		if math.IsNaN(u) || math.IsInf(u, 0) {
			return nil, errors.New("ctrl: control input diverged to non-finite value")
		}
		tr.Times = append(tr.Times, t)
		tr.Outputs = append(tr.Outputs, dot(cRow, x))
		tr.Inputs = append(tr.Inputs, u)
		for _, seg := range plans[j] {
			if seg.held {
				step(seg, uHeld)
			} else {
				step(seg, u)
			}
		}
		uHeld = u
		j = (j + 1) % len(modes)
	}
	return tr, nil
}

// Evaluate summarizes the trajectory at the sampling instants, which is the
// paper's performance metric: the settling time of the sampled output y[k]
// (Section II-A, "the time it takes for y[k] to reach and stay in a closed
// region around r").
func (tr *Trajectory) Evaluate(r, band float64) lti.StepInfo {
	samples := make([]lti.Sample, len(tr.Times))
	for i := range tr.Times {
		samples[i] = lti.Sample{T: tr.Times[i], Y: tr.Outputs[i]}
	}
	return lti.AnalyzeStep(samples, tr.Inputs, r, band)
}

// EvaluateDense measures settling on the densely sampled continuous output
// instead of the sampling instants; it is stricter than the paper's sampled
// metric and is reported alongside it.
func (tr *Trajectory) EvaluateDense(r, band float64) lti.StepInfo {
	return lti.AnalyzeStep(tr.Dense, tr.Inputs, r, band)
}

// MaxDenseDeviationAfter returns the largest |y(t) - r| over the dense
// trajectory for t >= from. It guards against designs that look settled at
// the sampling instants while ringing in between.
func (tr *Trajectory) MaxDenseDeviationAfter(from, r float64) float64 {
	max := 0.0
	for _, s := range tr.Dense {
		if s.T < from {
			continue
		}
		if d := math.Abs(s.Y - r); d > max {
			max = d
		}
	}
	return max
}

// BandViolationFraction returns the fraction of dense samples with t >= from
// lying outside the band around r; it shapes the objective for designs that
// are close to settling.
func (tr *Trajectory) BandViolationFraction(from, r, band float64) float64 {
	total, out := 0, 0
	delta := band * math.Abs(r)
	for _, s := range tr.Dense {
		if s.T < from {
			continue
		}
		total++
		if math.Abs(s.Y-r) > delta {
			out++
		}
	}
	if total == 0 {
		return 1
	}
	return float64(out) / float64(total)
}

// ITAE returns the normalized integral of time-weighted absolute error of
// the dense output, ∫ t·|y(t)-r| dt / (|r|·T²/2). It is a smooth surrogate
// for settling time used to break the staircase plateaus of the sampled
// settling metric during gain search.
func (tr *Trajectory) ITAE(r float64) float64 {
	if len(tr.Dense) < 2 {
		return math.Inf(1)
	}
	sum := 0.0
	for i := 1; i < len(tr.Dense); i++ {
		dt := tr.Dense[i].T - tr.Dense[i-1].T
		sum += tr.Dense[i].T * math.Abs(tr.Dense[i].Y-r) * dt
	}
	T := tr.Dense[len(tr.Dense)-1].T
	norm := math.Abs(r) * T * T / 2
	if norm == 0 {
		return math.Inf(1)
	}
	return sum / norm
}

// FinalError returns |y(T) - r| at the last dense sample, used to rank
// unsettled designs.
func (tr *Trajectory) FinalError(r float64) float64 {
	if len(tr.Dense) == 0 {
		return math.Inf(1)
	}
	return math.Abs(tr.Dense[len(tr.Dense)-1].Y - r)
}
