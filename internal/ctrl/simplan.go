package ctrl

import (
	"errors"
	"fmt"
	"math"
	"sync"

	"repro/internal/lti"
	"repro/internal/mat"
)

// SimPlan is a compiled closed-loop simulation: the propagation segments of
// every mode (and the initial idle gap) discretized once, so the thousands
// of objective evaluations inside one design search stop re-running matrix
// exponentials per call. A plan depends only on (plant, modes, SimOptions) —
// the gains are per-call inputs — and is safe for concurrent use: per-call
// state lives in pooled scratch buffers.
//
// The discretized segment matrices are packed into one flat []float64
// arena (stride-aware mat.Flat views), so the step loop walks contiguous
// memory instead of pointer-chasing a *mat.Matrix per step and the segment
// data of one plan stays hot in cache across the particles of a PSO
// evaluation round.
//
// Two evaluation modes run on the same core loop and therefore produce
// bit-identical dynamics: Simulate records the dense trajectory for
// reporting (Fig. 6, response dumps), Metrics streams the design-objective
// statistics without materializing any per-sample storage.
type SimPlan struct {
	m, l    int
	horizon float64
	gap     []segment   // initial idle-gap segments (held input applies)
	plans   [][]segment // per-mode propagation segments
	cRow    []float64
	x0      []float64 // nil: origin
	uHeld0  float64

	scratch sync.Pool // *simScratch
}

// segment is a precomputed propagation step: x <- Ad x + bd*u over dt. The
// ad/bd views alias the compiling discretizer's arena; ref carries their
// arena offsets between compilation and binding.
type segment struct {
	dt   float64
	ad   mat.Flat  // l-by-l view into the plan's flat arena
	bd   []float64 // length-l view into the arena
	held bool      // true: apply the held input; false: apply the current input
	ref  segRef
}

type simScratch struct {
	x, xNext []float64
	kFlat    []float64
	kRows    [][]float64
}

// Sentinel errors of the hot evaluation path (preallocated so the streaming
// objective stays allocation-free on the success path and cheap on failure).
var (
	errNoModes  = errors.New("ctrl: no modes to simulate")
	errDiverged = errors.New("ctrl: control input diverged to non-finite value")
)

// discretizer memoizes the ZOH discretization by step length: the gap and
// mode spans of one plan frequently share dt, and the workspace removes the
// Padé temporaries of each distinct one. Each distinct pair is appended to
// the flat arena once; segments carry offsets until bindArena resolves them
// into views (append may still move the backing array while compiling).
type discretizer struct {
	plant *lti.System
	ws    *mat.ExpmWorkspace
	memo  map[float64]segRef
	arena []float64
}

// segRef locates one discretized (Ad, bd) pair inside the arena.
type segRef struct {
	ad, bd int
}

func (d *discretizer) get(dt float64) segRef {
	if ref, ok := d.memo[dt]; ok {
		return ref
	}
	ad, bd := d.ws.ExpmIntegral(d.plant.A, d.plant.B, dt)
	ref := segRef{ad: len(d.arena)}
	d.arena = append(d.arena, ad.Flat().Data...)
	ref.bd = len(d.arena)
	d.arena = append(d.arena, bd.Col(0)...)
	d.memo[dt] = ref
	return ref
}

// span appends sub-steps covering span (each <= dtMax) to segs, exactly as
// the pre-plan simulator did per call.
func (d *discretizer) span(span, dtMax float64, held bool, segs []segment) []segment {
	if span <= 0 {
		return segs
	}
	n := int(math.Ceil(span/dtMax - 1e-12))
	if n < 1 {
		n = 1
	}
	dt := span / float64(n)
	seg := segment{dt: dt, ref: d.get(dt), held: held}
	for i := 0; i < n; i++ {
		segs = append(segs, seg)
	}
	return segs
}

// bindArena resolves every segment's arena offsets into mat.Flat views once
// the arena has reached its final size.
func bindArena(arena []float64, l int, segs []segment) {
	for i := range segs {
		s := &segs[i]
		s.ad = mat.FlatView(arena[s.ref.ad:s.ref.ad+l*l], l, l, l)
		s.bd = arena[s.ref.bd : s.ref.bd+l]
	}
}

// CompileSimPlan discretizes the closed-loop simulation of (plant, modes)
// under opt into a reusable plan. Gains are supplied per evaluation.
func CompileSimPlan(plant *lti.System, modes []Mode, opt SimOptions) (*SimPlan, error) {
	if len(modes) == 0 {
		return nil, errNoModes
	}
	if opt.Horizon <= 0 {
		return nil, fmt.Errorf("ctrl: horizon %g must be positive", opt.Horizon)
	}
	dtMax := opt.DtMax
	if dtMax <= 0 {
		dtMax = opt.Horizon / 2000
	}
	l := plant.Order()
	d := &discretizer{
		plant: plant,
		ws:    mat.NewExpmWorkspace(l + plant.B.Cols()),
		memo:  make(map[float64]segRef),
	}
	p := &SimPlan{
		m:       len(modes),
		l:       l,
		horizon: opt.Horizon,
		cRow:    plant.C.Row(0),
		uHeld0:  opt.UHeld0,
	}
	if opt.X0 != nil {
		p.x0 = opt.X0.Col(0)
	}
	if opt.InitialGap > 0 {
		p.gap = d.span(opt.InitialGap, dtMax, true, nil)
	}
	p.plans = make([][]segment, len(modes))
	for j, m := range modes {
		var segs []segment
		segs = d.span(m.D.Tau, dtMax, true, segs)
		segs = d.span(m.D.H-m.D.Tau, dtMax, false, segs)
		p.plans[j] = segs
	}
	bindArena(d.arena, l, p.gap)
	for _, segs := range p.plans {
		bindArena(d.arena, l, segs)
	}
	p.scratch.New = func() any {
		sc := &simScratch{
			x:     make([]float64, p.l),
			xNext: make([]float64, p.l),
			kFlat: make([]float64, p.m*p.l),
			kRows: make([][]float64, p.m),
		}
		for j := range sc.kRows {
			sc.kRows[j] = sc.kFlat[j*p.l : (j+1)*p.l]
		}
		return sc
	}
	return p, nil
}

// Horizon returns the simulated duration the plan was compiled for.
func (p *SimPlan) Horizon() float64 { return p.horizon }

func dotVec(a, b []float64) float64 {
	if len(a) == 2 {
		// Unrolled in the accumulation order of the loop below.
		s := 0.0
		s += a[0] * b[0]
		s += a[1] * b[1]
		return s
	}
	s := 0.0
	for i := range a {
		s += a[i] * b[i]
	}
	return s
}

// runState is the per-call stepping state of one plan execution. It lives on
// the caller's stack (no closure captures), with the state vectors borrowed
// from the plan's scratch pool. The current/next state buffers ping-pong
// through the cur index rather than by swapping the slice headers: the hot
// loop then writes only scalars through the state pointer, which keeps GC
// write barriers out of the per-step path.
type runState struct {
	tr   *Trajectory
	acc  *metricsAcc
	cRow []float64
	xs   [2][]float64 // state ping-pong buffers; xs[cur] is current
	cur  int
	t    float64
}

// x returns the current state vector.
func (rs *runState) x() []float64 { return rs.xs[rs.cur] }

// step advances the state over one precomputed segment under input u and
// emits the dense sample at the segment end. The fused flat kernel computes
// x' = Ad x + bd u in one contiguous pass, bit-identical to the unfused
// ApplyVec-then-axpy sequence (see mat.Flat.ApplyVecAdd).
func (rs *runState) step(seg *segment, u float64) {
	x, xNext := rs.xs[rs.cur], rs.xs[1-rs.cur]
	seg.ad.ApplyVecAdd(xNext, x, seg.bd, u)
	rs.cur = 1 - rs.cur
	rs.t += seg.dt
	y := dotVec(rs.cRow, xNext)
	if rs.tr != nil {
		rs.tr.Dense = append(rs.tr.Dense, lti.Sample{T: rs.t, Y: y})
	} else if rs.acc != nil {
		rs.acc.dense(rs.t, y)
	}
}

// run is the shared core loop: it propagates the switched closed loop and
// feeds every dense sample and sampling instant to at most one of the two
// observers (tr records, acc streams). Keeping a single loop guarantees the
// two modes see bit-identical dynamics.
func (p *SimPlan) run(g Gains, r float64, tr *Trajectory, acc *metricsAcc) error {
	if err := g.Validate(p.m, p.l); err != nil {
		return err
	}
	sc := p.scratch.Get().(*simScratch)
	defer p.scratch.Put(sc)
	rs := runState{tr: tr, acc: acc, cRow: p.cRow, xs: [2][]float64{sc.x, sc.xNext}}
	x0 := rs.x()
	for i := range x0 {
		x0[i] = 0
	}
	if p.x0 != nil {
		copy(x0, p.x0)
	}
	kRows := sc.kRows
	for j := 0; j < p.m; j++ {
		g.K[j].RowInto(0, kRows[j])
	}
	uHeld := p.uHeld0

	y := dotVec(p.cRow, rs.x())
	if tr != nil {
		tr.Dense = append(tr.Dense, lti.Sample{T: rs.t, Y: y})
	} else if acc != nil {
		acc.dense(rs.t, y)
	}

	// Initial idle gap: the reference has stepped but the next sampling
	// instant is InitialGap away; the held input keeps applying.
	for i := range p.gap {
		rs.step(&p.gap[i], uHeld)
	}

	j := 0
	for rs.t < p.horizon {
		// Sampling instant of mode j: compute the new input.
		x := rs.x()
		u := dotVec(kRows[j], x) + g.F[j]*r
		if math.IsNaN(u) || math.IsInf(u, 0) {
			return errDiverged
		}
		yi := dotVec(p.cRow, x)
		if tr != nil {
			tr.Times = append(tr.Times, rs.t)
			tr.Outputs = append(tr.Outputs, yi)
			tr.Inputs = append(tr.Inputs, u)
		} else if acc != nil {
			acc.instant(rs.t, yi, u)
		}
		segs := p.plans[j]
		for i := range segs {
			if segs[i].held {
				rs.step(&segs[i], uHeld)
			} else {
				rs.step(&segs[i], u)
			}
		}
		uHeld = u
		j = (j + 1) % p.m
	}
	return nil
}

// Simulate runs the plan with the given gains against a reference step r and
// records the dense trajectory, exactly like the package-level Simulate.
func (p *SimPlan) Simulate(g Gains, r float64) (*Trajectory, error) {
	tr := &Trajectory{}
	if err := p.run(g, r, tr, nil); err != nil {
		return nil, err
	}
	return tr, nil
}

// SimMetrics are the streaming design-objective statistics of one run: the
// exact quantities designObjective consumed from the dense trajectory,
// computed on the fly.
type SimMetrics struct {
	SettlingTime float64 // sampled settling time (lti.SettlingTime semantics)
	Settled      bool
	PeakInput    float64 // max |u[k]| over the sampling instants
	PeakOutput   float64 // max y[k] over the sampling instants
	ITAE         float64 // normalized ∫ t|y-r| dt of the dense output
	// BandViolation is the fraction of dense samples with t >= the
	// compiled-in window start lying outside the band (Trajectory.
	// BandViolationFraction semantics).
	BandViolation float64
	FinalError    float64 // |y(T) - r| at the last dense sample
	// MaxDevAfterSettle is max |y(t)-r| over dense samples with t >= the
	// settling instant; meaningful only when Settled.
	MaxDevAfterSettle float64
}

// metricsAcc accumulates SimMetrics during a streaming run. Every update
// mirrors the corresponding dense-slice computation sample for sample, so
// streamed metrics are bit-identical to the recorded ones.
type metricsAcc struct {
	r         float64
	delta     float64 // settling band half-width, band*|r|
	violFrom  float64
	violDelta float64

	candT float64 // time of the current candidate settling instant
	cand  bool

	lastInstT          float64
	nInst              int
	peakOut, peakIn    float64
	itaeSum            float64
	lastDenseT         float64
	lastDenseY         float64
	nDense             int
	violTotal, violOut int
	maxDev             float64
}

func (a *metricsAcc) dense(t, y float64) {
	if a.nDense > 0 {
		dt := t - a.lastDenseT
		a.itaeSum += t * math.Abs(y-a.r) * dt
	}
	a.nDense++
	a.lastDenseT = t
	a.lastDenseY = y
	if t >= a.violFrom {
		a.violTotal++
		if math.Abs(y-a.r) > a.violDelta {
			a.violOut++
		}
	}
	if a.cand {
		if d := math.Abs(y - a.r); d > a.maxDev {
			a.maxDev = d
		}
	}
}

func (a *metricsAcc) instant(t, y, u float64) {
	a.nInst++
	a.lastInstT = t
	if y > a.peakOut {
		a.peakOut = y
	}
	if au := math.Abs(u); au > a.peakIn {
		a.peakIn = au
	}
	if math.Abs(y-a.r) <= a.delta {
		if !a.cand {
			a.cand = true
			a.candT = t
			// The dense sample at this exact time was emitted just before
			// this instant and carries the same output value, so it seeds
			// the running max of MaxDenseDeviationAfter(candT).
			a.maxDev = math.Abs(y - a.r)
		}
	} else {
		a.cand = false
	}
}

func (a *metricsAcc) finalize() SimMetrics {
	m := SimMetrics{
		PeakInput:         a.peakIn,
		PeakOutput:        a.peakOut,
		MaxDevAfterSettle: a.maxDev,
	}
	switch {
	case a.nInst == 0:
		m.SettlingTime, m.Settled = math.Inf(1), false
	case a.cand:
		m.SettlingTime, m.Settled = a.candT, true
	default:
		m.SettlingTime, m.Settled = a.lastInstT, false
	}
	if !m.Settled {
		m.MaxDevAfterSettle = 0 // tracked a candidate that later left the band
	}
	if a.nDense < 2 {
		m.ITAE = math.Inf(1)
	} else {
		T := a.lastDenseT
		norm := math.Abs(a.r) * T * T / 2
		if norm == 0 {
			m.ITAE = math.Inf(1)
		} else {
			m.ITAE = a.itaeSum / norm
		}
	}
	if a.violTotal == 0 {
		m.BandViolation = 1
	} else {
		m.BandViolation = float64(a.violOut) / float64(a.violTotal)
	}
	if a.nDense == 0 {
		m.FinalError = math.Inf(1)
	} else {
		m.FinalError = math.Abs(a.lastDenseY - a.r)
	}
	return m
}

// Metrics runs the plan with the given gains and streams the design
// statistics without recording the trajectory: band is the settling band
// fraction (the objective's tightened band), violFrom/violBand parameterize
// the band-violation window. Values equal those derived from a recorded
// Trajectory bit for bit.
func (p *SimPlan) Metrics(g Gains, r, band, violFrom, violBand float64) (SimMetrics, error) {
	acc := metricsAcc{
		r:         r,
		delta:     band * math.Abs(r),
		violFrom:  violFrom,
		violDelta: violBand * math.Abs(r),
		peakOut:   math.Inf(-1),
	}
	if err := p.run(g, r, nil, &acc); err != nil {
		return SimMetrics{}, err
	}
	return acc.finalize(), nil
}
