// Package ctrl implements the paper's controller-design stage (Section III):
// state-feedback design u[k] = K x[k] + F r for every task of a schedule
// period, taking all sampling periods and sensing-to-actuation delays into
// account simultaneously (the "holistic" design), with stability enforced on
// the lifted closed-loop dynamics and settling time as the objective.
package ctrl

import (
	"errors"
	"fmt"

	"repro/internal/lti"
	"repro/internal/mat"
	"repro/internal/poly"
)

// ErrUncontrollable is returned when pole placement is requested for an
// uncontrollable pair (A, B).
var ErrUncontrollable = errors.New("ctrl: (A, B) is not controllable")

// Ackermann computes the state-feedback gain K (1-by-l) such that the
// closed-loop matrix A + B*K has the desired eigenvalues, using Ackermann's
// formula. Note the sign convention follows the paper's u = K x + F r
// (Eq. 9-10), i.e. K here is the negation of the classical u = -Kx gain.
// Complex poles must form conjugate pairs.
func Ackermann(a, b *mat.Matrix, poles []complex128) (*mat.Matrix, error) {
	l := a.Rows()
	if len(poles) != l {
		return nil, fmt.Errorf("ctrl: need %d poles, got %d", l, len(poles))
	}
	if !lti.IsControllable(a, b) {
		return nil, ErrUncontrollable
	}
	phi, err := poly.FromRoots(poles)
	if err != nil {
		return nil, err
	}
	phiA := phi.EvalMat(a) // desired characteristic polynomial evaluated at A
	ctrb := lti.Ctrb(a, b)
	inv, err := mat.Inverse(ctrb)
	if err != nil {
		return nil, ErrUncontrollable
	}
	// K_classical = [0 ... 0 1] * Ctrb^-1 * phi(A); paper convention negates.
	eL := mat.New(1, l)
	eL.Set(0, l-1, 1)
	k := eL.Mul(inv).Mul(phiA)
	return k.Scale(-1), nil
}

// Feedforward computes the static feedforward gain of Eq. (11)/(17):
//
//	F = 1 / ( C (I - A - B K)^{-1} B )
//
// for a discrete-time pair (A, B) with output row C and feedback gain K
// (paper convention u = Kx + Fr). It returns an error when the closed loop
// has no DC path from input to output (zero or singular denominator).
func Feedforward(a, b, c, k *mat.Matrix) (float64, error) {
	l := a.Rows()
	acl := a.Add(b.Mul(k))
	m := mat.Identity(l).Sub(acl)
	x, err := mat.Solve(m, b)
	if err != nil {
		return 0, fmt.Errorf("ctrl: feedforward: closed loop has eigenvalue 1: %w", err)
	}
	den := c.Mul(x).At(0, 0)
	if den == 0 {
		return 0, errors.New("ctrl: feedforward: zero DC gain")
	}
	return 1 / den, nil
}
