package ctrl

import (
	"math"
	"sync"
	"testing"

	"repro/internal/lti"
	"repro/internal/mat"
	"repro/internal/race"
	"repro/internal/sched"
)

// planFixture compiles a two-mode plan with stabilizing gains on the servo
// plant, mirroring the design loop's configuration.
func planFixture(t *testing.T) (*SimPlan, []Mode, Gains, Constraints) {
	t.Helper()
	plant := servo()
	der, err := sched.Derive(paperTimings(), sched.Schedule{2, 2, 2})
	if err != nil {
		t.Fatal(err)
	}
	modes, err := ModesFromSchedule(plant, der[0])
	if err != nil {
		t.Fatal(err)
	}
	ks, err := PeriodicLQR(modes, 1, 1e-2)
	if err != nil {
		t.Fatal(err)
	}
	fs, err := HolisticFeedforward(modes, ks)
	if err != nil {
		t.Fatal(err)
	}
	cons := Constraints{Ref: 0.2, UMax: 60, SettleDeadline: 45e-3}.withDefaults()
	opt := SimOptions{Horizon: 0.1, InitialGap: der[0].Gap}
	plan, err := CompileSimPlan(plant, modes, opt)
	if err != nil {
		t.Fatal(err)
	}
	return plan, modes, Gains{K: ks, F: fs}, cons
}

// TestSimPlanSimulateMatchesPackageSimulate: the plan's dense run and the
// one-shot package Simulate must produce bit-identical trajectories (they
// share the core loop, but the plan also memoizes discretizations).
func TestSimPlanSimulateMatchesPackageSimulate(t *testing.T) {
	plan, modes, g, cons := planFixture(t)
	plant := servo()
	der, _ := sched.Derive(paperTimings(), sched.Schedule{2, 2, 2})
	opt := SimOptions{Horizon: 0.1, InitialGap: der[0].Gap}

	want, err := Simulate(plant, modes, g, cons.Ref, opt)
	if err != nil {
		t.Fatal(err)
	}
	got, err := plan.Simulate(g, cons.Ref)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Dense) != len(want.Dense) || len(got.Times) != len(want.Times) {
		t.Fatalf("shape mismatch: dense %d/%d times %d/%d",
			len(got.Dense), len(want.Dense), len(got.Times), len(want.Times))
	}
	for i := range want.Dense {
		if got.Dense[i] != want.Dense[i] {
			t.Fatalf("dense[%d]: %+v != %+v", i, got.Dense[i], want.Dense[i])
		}
	}
	for i := range want.Times {
		if got.Times[i] != want.Times[i] || got.Outputs[i] != want.Outputs[i] || got.Inputs[i] != want.Inputs[i] {
			t.Fatalf("instant %d differs", i)
		}
	}
}

// denseMetrics derives SimMetrics from a recorded trajectory through the
// original dense-slice computations; the streaming path must match it bit
// for bit.
func denseMetrics(tr *Trajectory, r, band, violFrom, violBand float64) SimMetrics {
	info := tr.Evaluate(r, band)
	m := SimMetrics{
		SettlingTime:  info.SettlingTime,
		Settled:       info.Settled,
		PeakInput:     info.PeakInput,
		PeakOutput:    info.PeakOutput,
		ITAE:          tr.ITAE(r),
		BandViolation: tr.BandViolationFraction(violFrom, r, violBand),
		FinalError:    tr.FinalError(r),
	}
	if info.Settled {
		m.MaxDevAfterSettle = tr.MaxDenseDeviationAfter(info.SettlingTime, r)
	}
	return m
}

// TestSimPlanMetricsMatchDense is the load-bearing equivalence test of this
// package: the streaming observer must reproduce every dense-derived
// objective statistic exactly, across settling and non-settling gain sets,
// so the PSO search (and hence all golden tables) cannot move.
func TestSimPlanMetricsMatchDense(t *testing.T) {
	plan, _, g, cons := planFixture(t)
	band := 0.9 * cons.Band
	violFrom := plan.Horizon() / 2

	gainSets := []Gains{g}
	// Scaled-down gains: sluggish, typically unsettled within the horizon.
	for _, sc := range []float64{0.3, 0.05, 0.0} {
		weak := Gains{K: make([]*mat.Matrix, len(g.K)), F: make([]float64, len(g.F))}
		for j := range g.K {
			weak.K[j] = g.K[j].Scale(sc)
			weak.F[j] = g.F[j] * sc
		}
		gainSets = append(gainSets, weak)
	}

	for gi, gs := range gainSets {
		tr, err := plan.Simulate(gs, cons.Ref)
		if err != nil {
			t.Fatalf("gains %d: %v", gi, err)
		}
		want := denseMetrics(tr, cons.Ref, band, violFrom, band)
		got, err := plan.Metrics(gs, cons.Ref, band, violFrom, band)
		if err != nil {
			t.Fatalf("gains %d: %v", gi, err)
		}
		if got != want {
			t.Errorf("gains %d (settled=%v):\n got %+v\nwant %+v", gi, want.Settled, got, want)
		}
	}
}

// TestSimPlanMetricsConcurrent hammers one plan from many goroutines (the
// PSO evaluates objectives concurrently) and checks every run returns the
// same metrics; run under -race in CI this also proves pool safety.
func TestSimPlanMetricsConcurrent(t *testing.T) {
	plan, _, g, cons := planFixture(t)
	band := 0.9 * cons.Band
	ref, err := plan.Metrics(g, cons.Ref, band, plan.Horizon()/2, band)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	results := make([]SimMetrics, 32)
	for i := range results {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			m, err := plan.Metrics(g, cons.Ref, band, plan.Horizon()/2, band)
			if err != nil {
				t.Error(err)
				return
			}
			results[i] = m
		}(i)
	}
	wg.Wait()
	for i, m := range results {
		if m != ref {
			t.Fatalf("run %d diverged from reference", i)
		}
	}
}

// TestSimPlanMetricsAllocs pins the streaming objective path to a small
// fixed allocation budget: the scratch pool must absorb the state vectors,
// and no per-sample storage may be materialized.
func TestSimPlanMetricsAllocs(t *testing.T) {
	if race.Enabled {
		t.Skip("allocation counts differ under the race detector")
	}
	plan, _, g, cons := planFixture(t)
	band := 0.9 * cons.Band
	violFrom := plan.Horizon() / 2
	// Warm the scratch pool.
	if _, err := plan.Metrics(g, cons.Ref, band, violFrom, band); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(50, func() {
		if _, err := plan.Metrics(g, cons.Ref, band, violFrom, band); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > 2 {
		t.Errorf("streaming Metrics allocates %v per run, want <= 2", allocs)
	}
}

// TestSimPlanDivergenceAndValidation mirrors the legacy Simulate error
// contract on the plan paths.
func TestSimPlanDivergenceAndValidation(t *testing.T) {
	plant := servo()
	d, _ := lti.DiscretizeDelayed(plant, 1e-3, 0.5e-3)
	modes := []Mode{{D: d}}
	plan, err := CompileSimPlan(plant, modes, SimOptions{Horizon: 5, X0: mat.ColVec(0.1, 0)})
	if err != nil {
		t.Fatal(err)
	}
	blowup := Gains{K: []*mat.Matrix{mat.RowVec(1e6, 1e6)}, F: []float64{0}}
	if _, err := plan.Metrics(blowup, 0.2, 0.02, 2.5, 0.02); err == nil {
		// Divergence to non-finite must surface as an error on the
		// streaming path exactly as it does on the dense one.
		if _, derr := plan.Simulate(blowup, 0.2); derr != nil {
			t.Error("dense path errored but streaming did not")
		}
	}
	bad := Gains{K: []*mat.Matrix{mat.RowVec(0)}, F: []float64{1}}
	if _, err := plan.Metrics(bad, 1, 0.02, 2.5, 0.02); err == nil {
		t.Error("wrong gain shape accepted by Metrics")
	}
	if _, err := CompileSimPlan(plant, nil, SimOptions{Horizon: 1}); err == nil {
		t.Error("no modes accepted")
	}
	if _, err := CompileSimPlan(plant, modes, SimOptions{}); err == nil {
		t.Error("zero horizon accepted")
	}
}

// TestDesignObjectiveStreamingMatchesDense recomputes the objective from a
// recorded trajectory (the pre-plan formula) and requires exact agreement
// with the streaming designObjective.
func TestDesignObjectiveStreamingMatchesDense(t *testing.T) {
	plan, modes, g, cons := planFixture(t)

	denseObjective := func(g Gains) float64 {
		stable, rho, err := StableMonodromy(modes, g)
		if err != nil || math.IsNaN(rho) {
			return 1e6
		}
		if !stable {
			return 1e3 * (1 + rho)
		}
		tr, err := plan.Simulate(g, cons.Ref)
		if err != nil {
			return 1e5
		}
		info := tr.Evaluate(cons.Ref, 0.9*cons.Band)
		obj := info.SettlingTime + 0.25*plan.Horizon()*tr.ITAE(cons.Ref)
		if !info.Settled {
			viol := tr.BandViolationFraction(plan.Horizon()/2, cons.Ref, 0.9*cons.Band)
			obj = plan.Horizon() * (1.5 + viol + tr.FinalError(cons.Ref)/math.Abs(cons.Ref))
		} else {
			if rip := tr.MaxDenseDeviationAfter(info.SettlingTime, cons.Ref); rip > 5*cons.Band*math.Abs(cons.Ref) {
				obj += plan.Horizon() * (rip/(5*cons.Band*math.Abs(cons.Ref)) - 1)
			}
		}
		if cons.UMax > 0 && info.PeakInput > cons.UMax {
			obj += plan.Horizon() * 5 * (info.PeakInput/cons.UMax - 1)
		}
		return obj
	}

	for _, sc := range []float64{1, 0.5, 0.1, 0.01, 0} {
		scaled := Gains{K: make([]*mat.Matrix, len(g.K)), F: make([]float64, len(g.F))}
		for j := range g.K {
			scaled.K[j] = g.K[j].Scale(sc)
			scaled.F[j] = g.F[j] * sc
		}
		want := denseObjective(scaled)
		got := designObjective(plan, modes, scaled, cons)
		if got != want {
			t.Errorf("scale %g: streaming objective %v != dense %v", sc, got, want)
		}
	}
}
