package ctrl

import (
	"errors"
	"fmt"

	"repro/internal/mat"
)

// PeriodicLQR computes per-mode state-feedback gains for the periodically
// switched system by iterating the periodic discrete Riccati recursion on
// the augmented state z = [x; u_held]:
//
//	z[k+1] = Â_j z[k] + B̂_j u[k],   Â_j = [Ad_j BPrev_j; 0 0],  B̂_j = [BCur_j; 1]
//
// with stage cost z'Qz + rIn*u², Q = qOut * Ĉ'Ĉ + eps*I, Ĉ = [C 0].
// The full LQR gain feeds back the held input as well; since the paper's
// controller structure u = K x + F r uses only the plant state, the
// returned gains are the plant-state blocks K_x of the augmented-optimal
// gains. They are excellent deterministic warm starts for the settling-time
// search (and are stabilizing whenever the held-input coupling is weak).
//
// The recursion sweeps the mode cycle backward until the periodic solution
// converges.
func PeriodicLQR(modes []Mode, qOut, rIn float64) ([]*mat.Matrix, error) {
	m := len(modes)
	if m == 0 {
		return nil, errors.New("ctrl: PeriodicLQR needs at least one mode")
	}
	if qOut <= 0 || rIn <= 0 {
		return nil, fmt.Errorf("ctrl: PeriodicLQR weights must be positive (q=%g, r=%g)", qOut, rIn)
	}
	l := modes[0].D.Ad.Rows()
	n := l + 1

	ahat := make([]*mat.Matrix, m)
	bhat := make([]*mat.Matrix, m)
	for j, md := range modes {
		a := mat.New(n, n)
		a.SetSlice(0, 0, md.D.Ad)
		a.SetSlice(0, l, md.D.BPrev)
		ahat[j] = a
		b := mat.New(n, 1)
		b.SetSlice(0, 0, md.D.BCur)
		b.Set(l, 0, 1)
		bhat[j] = b
	}
	chat := mat.New(1, n)
	chat.SetSlice(0, 0, modes[0].D.C)
	q := chat.Transpose().Mul(chat).Scale(qOut)
	for i := 0; i < n; i++ {
		q.Set(i, i, q.At(i, i)+1e-12*qOut)
	}

	// The backward sweep runs on a fixed set of buffers (every destination
	// kernel accumulates in the same element order as its allocating
	// counterpart, and -1-scaled addition equals subtraction exactly), so
	// the up-to-4000-sweep recursion performs no steady-state allocation.
	// TestPeriodicLQRMatchesReference pins bit-identity to the allocating
	// formulation.
	aT := make([]*mat.Matrix, m)
	bT := make([]*mat.Matrix, m)
	for j := range modes {
		aT[j] = ahat[j].Transpose()
		bT[j] = bhat[j].Transpose()
	}
	p := q.Clone()
	gains := make([]*mat.Matrix, m)
	for j := range gains {
		gains[j] = mat.New(1, n)
	}
	var (
		prev = mat.New(n, n)
		pb   = mat.New(n, 1)
		s11  = mat.New(1, 1)
		btp  = mat.New(1, n)
		bpa  = mat.New(1, n)
		pa   = mat.New(n, n)
		apa  = mat.New(n, n)
		sum  = mat.New(n, n)
		apb  = mat.New(n, 1)
		apbk = mat.New(n, n)
		pNew = mat.New(n, n)
		pT   = mat.New(n, n)
		pSym = mat.New(n, n)
	)
	const maxSweeps = 4000
	for sweep := 0; sweep < maxSweeps; sweep++ {
		prev.Copy(p)
		for jj := m - 1; jj >= 0; jj-- {
			j := jj
			a, b := ahat[j], bhat[j]
			// K = (r + b'Pb)^-1 b'Pa ; P = Q + a'P a - a'P b K
			p.MulTo(pb, b) // n x 1
			bT[j].MulTo(s11, pb)
			den := rIn + s11.At(0, 0)
			if den <= 0 {
				return nil, errors.New("ctrl: PeriodicLQR lost positive definiteness")
			}
			bT[j].MulTo(btp, p)
			btp.MulTo(bpa, a)
			bpa.ScaleTo(gains[j], 1/den) // k = 1 x n
			p.MulTo(pa, a)
			aT[j].MulTo(apa, pa)
			q.AddScaledTo(sum, 1, apa)
			aT[j].MulTo(apb, pb)
			apb.MulTo(apbk, gains[j])
			sum.AddScaledTo(pNew, -1, apbk)
			// Symmetrize to suppress drift.
			pNew.TransposeTo(pT)
			pNew.AddScaledTo(pSym, 1, pT)
			pSym.ScaleTo(p, 0.5)
		}
		if maxAbsDiff(p, prev) <= 1e-9*(1+p.MaxAbs()) {
			break
		}
	}

	// Extract the plant-state block, negated into the paper's u = +Kx
	// convention (LQR computes u = -Kz).
	out := make([]*mat.Matrix, m)
	for j := range gains {
		kx := mat.New(1, l)
		for s := 0; s < l; s++ {
			kx.Set(0, s, -gains[j].At(0, s))
		}
		out[j] = kx
	}
	return out, nil
}

// LQRSeedGains produces a family of per-mode gain seed vectors by sweeping
// the LQR input weight over a logarithmic range scaled to the plant's
// one-period output sensitivity. It returns stacked decision vectors
// matching DesignHolistic's layout plus a per-state search scale derived
// from the moderate weights (the aggressive low-weight designs are included
// as seeds but deliberately excluded from the scale so they do not blow up
// the search box).
func LQRSeedGains(modes []Mode) (seeds [][]float64, scale []float64) {
	m := len(modes)
	if m == 0 {
		return nil, nil
	}
	l := modes[0].D.Ad.Rows()
	scale = make([]float64, l)
	// Scale: squared one-period output response to a unit held input.
	g := 0.0
	for _, md := range modes {
		v := md.D.C.Mul(md.D.BTotal()).At(0, 0)
		g += v * v
	}
	g /= float64(m)
	if g == 0 {
		g = 1
	}
	for _, rho := range []float64{1e-4, 1e-3, 1e-2, 1e-1, 1, 10, 100} {
		ks, err := PeriodicLQR(modes, 1, rho*g)
		if err != nil {
			continue
		}
		vec := make([]float64, 0, m*l)
		for j := 0; j < m; j++ {
			for s := 0; s < l; s++ {
				v := ks[j].At(0, s)
				vec = append(vec, v)
				if a := abs(v); rho >= 1e-2 && a*2 > scale[s] {
					scale[s] = a * 2
				}
			}
		}
		seeds = append(seeds, vec)
	}
	return seeds, scale
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

// maxAbsDiff returns a.Sub(b).MaxAbs() without the intermediate matrix.
func maxAbsDiff(a, b *mat.Matrix) float64 {
	max := 0.0
	for i := 0; i < a.Rows(); i++ {
		for j := 0; j < a.Cols(); j++ {
			if d := abs(a.At(i, j) - b.At(i, j)); d > max {
				max = d
			}
		}
	}
	return max
}
