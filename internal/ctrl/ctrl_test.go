package ctrl

import (
	"math"
	"sort"
	"testing"

	"repro/internal/lti"
	"repro/internal/mat"
	"repro/internal/sched"
)

// servo is a damped double integrator: position control of a small motor.
func servo() *lti.System {
	return lti.MustSystem(
		mat.NewFromRows([][]float64{{0, 1}, {0, -20}}),
		mat.ColVec(0, 400),
		mat.RowVec(1, 0),
	)
}

func firstOrder() *lti.System {
	return lti.MustSystem(
		mat.NewFromRows([][]float64{{-5}}),
		mat.ColVec(5),
		mat.RowVec(1),
	)
}

func paperTimings() []sched.AppTiming {
	return []sched.AppTiming{
		{Name: "C1", ColdWCET: 907.55e-6, WarmWCET: 452.15e-6, MaxIdle: 3.4e-3},
		{Name: "C2", ColdWCET: 645.25e-6, WarmWCET: 175.00e-6, MaxIdle: 3.9e-3},
		{Name: "C3", ColdWCET: 749.15e-6, WarmWCET: 234.35e-6, MaxIdle: 3.5e-3},
	}
}

func TestAckermannPlacesPoles(t *testing.T) {
	s := servo()
	d, err := lti.Discretize(s, 1e-3)
	if err != nil {
		t.Fatal(err)
	}
	want := []complex128{complex(0.5, 0.2), complex(0.5, -0.2)}
	k, err := Ackermann(d.Ad, d.Bd, want)
	if err != nil {
		t.Fatal(err)
	}
	acl := d.Ad.Add(d.Bd.Mul(k))
	got, err := mat.Eigenvalues(acl)
	if err != nil {
		t.Fatal(err)
	}
	mat.SortEigenvalues(got)
	mat.SortEigenvalues(want)
	for i := range want {
		if math.Hypot(real(got[i]-want[i]), imag(got[i]-want[i])) > 1e-9 {
			t.Errorf("pole %d: got %v, want %v", i, got[i], want[i])
		}
	}
}

func TestAckermannRejects(t *testing.T) {
	s := servo()
	d, _ := lti.Discretize(s, 1e-3)
	if _, err := Ackermann(d.Ad, d.Bd, []complex128{0.5}); err == nil {
		t.Error("wrong pole count accepted")
	}
	if _, err := Ackermann(d.Ad, d.Bd, []complex128{complex(0.5, 0.2), complex(0.4, 0.2)}); err == nil {
		t.Error("non-conjugate complex poles accepted")
	}
	// Uncontrollable pair.
	a := mat.NewFromRows([][]float64{{0.5, 0}, {0, 0.6}})
	b := mat.ColVec(1, 0)
	if _, err := Ackermann(a, b, []complex128{0.1, 0.2}); err == nil {
		t.Error("uncontrollable pair accepted")
	}
}

func TestFeedforwardDCGain(t *testing.T) {
	// Closed loop y_ss must equal r: for stable (A+BK), steady state
	// x = (I-Acl)^-1 B F r and y = C x = r by construction.
	s := servo()
	d, _ := lti.Discretize(s, 1e-3)
	k, err := Ackermann(d.Ad, d.Bd, []complex128{0.6, 0.4})
	if err != nil {
		t.Fatal(err)
	}
	f, err := Feedforward(d.Ad, d.Bd, d.C, k)
	if err != nil {
		t.Fatal(err)
	}
	acl := d.Ad.Add(d.Bd.Mul(k))
	m := mat.Identity(2).Sub(acl)
	xss, err := mat.Solve(m, d.Bd.Scale(f))
	if err != nil {
		t.Fatal(err)
	}
	if yss := d.C.Mul(xss).At(0, 0); math.Abs(yss-1) > 1e-9 {
		t.Errorf("steady-state output per unit reference = %g, want 1", yss)
	}
}

func TestFeedforwardZeroDCGain(t *testing.T) {
	// Output matrix selecting velocity of an integrator: zero DC path.
	a := mat.NewFromRows([][]float64{{1, 0}, {0, 0.5}})
	b := mat.ColVec(0, 1)
	c := mat.RowVec(1, 0)
	k := mat.RowVec(0, 0)
	if _, err := Feedforward(a, b, c, k); err == nil {
		t.Error("eigenvalue-1 loop must error (I-Acl singular)")
	}
}

func modesFor(t *testing.T, plant *lti.System, s sched.Schedule, appIdx int) ([]Mode, sched.AppSchedule) {
	t.Helper()
	der, err := sched.Derive(paperTimings(), s)
	if err != nil {
		t.Fatal(err)
	}
	modes, err := ModesFromSchedule(plant, der[appIdx])
	if err != nil {
		t.Fatal(err)
	}
	return modes, der[appIdx]
}

func TestModesFromSchedule(t *testing.T) {
	modes, as := modesFor(t, servo(), sched.Schedule{2, 2, 2}, 0)
	if len(modes) != 2 {
		t.Fatalf("modes: %d", len(modes))
	}
	// First (in-burst) mode: tau = h -> all input weight held.
	if modes[0].D.BCur.MaxAbs() > 1e-14 {
		t.Error("in-burst mode must have BCur = 0")
	}
	// Last mode: tau < h (gap): both parts present.
	if modes[1].D.BCur.MaxAbs() == 0 || modes[1].D.BPrev.MaxAbs() == 0 {
		t.Error("burst-final mode must split the input effect")
	}
	if math.Abs(modes[1].D.H-as.Periods[1]) > 1e-15 {
		t.Error("mode period mismatch")
	}
}

func TestMonodromyMatchesStepByStep(t *testing.T) {
	// The monodromy matrix must reproduce the augmented recursion applied
	// mode by mode with r = 0.
	plant := servo()
	modes, _ := modesFor(t, plant, sched.Schedule{2, 2, 2}, 0)
	g := Gains{
		K: []*mat.Matrix{mat.RowVec(-2, -0.05), mat.RowVec(-1.5, -0.04)},
		F: []float64{2, 1.5},
	}
	phi, err := Monodromy(modes, g)
	if err != nil {
		t.Fatal(err)
	}
	// Manual propagation of z = [x; uHeld].
	z := mat.ColVec(0.3, -1, 0.7)
	want := z.Clone()
	for j := range modes {
		mj, _ := ModeClosedLoop(modes[j], g.K[j], g.F[j])
		want = mj.Mul(want)
	}
	got := phi.Mul(z)
	if !got.Equal(want, 1e-12) {
		t.Errorf("monodromy application mismatch:\n%v vs\n%v", got, want)
	}
}

func TestLiftedAholConsistency(t *testing.T) {
	// Eq. (16): z[k] = A_hol z[k-2] for the autonomous loop (r=0), where
	// z = [x[k]; x[k+1]] and the two steps use mode2 (burst-final) then
	// mode1 (in-burst). Verify against direct recursion.
	plant := servo()
	modes, _ := modesFor(t, plant, sched.Schedule{2, 2, 2}, 0)
	k1 := mat.RowVec(-1.2, -0.03)
	k2 := mat.RowVec(-0.9, -0.02)
	ahol := LiftedAhol(modes[0], modes[1], k1, k2)

	// Direct recursion: x[k] = A2 x[k-1] + B12 u[k-2] + B22 u[k-1],
	// x[k+1] = A1 x[k] + B1 u[k-1], u[j] = K_j-th gain times x[j].
	xm2 := mat.ColVec(0.2, -0.4) // x[k-2]
	xm1 := mat.ColVec(0.5, 0.1)  // x[k-1]
	um2 := k1.Mul(xm2)
	um1 := k2.Mul(xm1)
	a1, b1 := modes[0].D.Ad, modes[0].D.BPrev
	a2, b12, b22 := modes[1].D.Ad, modes[1].D.BPrev, modes[1].D.BCur
	xk := a2.Mul(xm1).Add(b12.Mul(um2)).Add(b22.Mul(um1))
	xk1 := a1.Mul(xk).Add(b1.Mul(um1))

	z := mat.Block([][]*mat.Matrix{{xm2}, {xm1}})
	got := ahol.Mul(z)
	want := mat.Block([][]*mat.Matrix{{xk}, {xk1}})
	if !got.Equal(want, 1e-10) {
		t.Errorf("A_hol recursion mismatch:\ngot\n%v\nwant\n%v", got, want)
	}
}

func TestLiftedAholSpectrumContainsMonodromy(t *testing.T) {
	// The augmented 2-step monodromy's non-zero spectrum must appear in
	// A_hol's spectrum (both lift the same periodic dynamics).
	plant := servo()
	modes, _ := modesFor(t, plant, sched.Schedule{2, 2, 2}, 0)
	k1 := mat.RowVec(-1.2, -0.03)
	k2 := mat.RowVec(-0.9, -0.02)
	g := Gains{K: []*mat.Matrix{k1, k2}, F: []float64{0, 0}}
	phi, err := Monodromy(modes, g)
	if err != nil {
		t.Fatal(err)
	}
	ePhi, err := mat.Eigenvalues(phi)
	if err != nil {
		t.Fatal(err)
	}
	eA, err := mat.Eigenvalues(LiftedAhol(modes[0], modes[1], k1, k2))
	if err != nil {
		t.Fatal(err)
	}
	for _, ev := range ePhi {
		if math.Hypot(real(ev), imag(ev)) < 1e-9 {
			continue // structural zeros may differ between liftings
		}
		found := false
		for _, ea := range eA {
			if math.Hypot(real(ev-ea), imag(ev-ea)) < 1e-6*(1+math.Hypot(real(ev), imag(ev))) {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("monodromy eigenvalue %v missing from A_hol spectrum %v", ev, eA)
		}
	}
}

func TestSimulateTracksReference(t *testing.T) {
	// Stable first-order plant, single mode with tau=0 and pure
	// feedforward (K=0): y must converge to r.
	plant := firstOrder()
	d, err := lti.DiscretizeDelayed(plant, 5e-3, 0)
	if err != nil {
		t.Fatal(err)
	}
	modes := []Mode{{D: d}}
	g := Gains{K: []*mat.Matrix{mat.RowVec(0)}, F: []float64{1}}
	tr, err := Simulate(plant, modes, g, 2.0, SimOptions{Horizon: 2})
	if err != nil {
		t.Fatal(err)
	}
	if got := tr.Dense[len(tr.Dense)-1].Y; math.Abs(got-2) > 1e-3 {
		t.Errorf("final output %g, want 2", got)
	}
	info := tr.Evaluate(2.0, 0.02)
	if !info.Settled {
		t.Error("first-order loop must settle")
	}
}

func TestSimulateInitialGapDelaysResponse(t *testing.T) {
	plant := firstOrder()
	d, _ := lti.DiscretizeDelayed(plant, 5e-3, 0)
	modes := []Mode{{D: d}}
	g := Gains{K: []*mat.Matrix{mat.RowVec(0)}, F: []float64{1}}
	noGap, err := Simulate(plant, modes, g, 1.0, SimOptions{Horizon: 1})
	if err != nil {
		t.Fatal(err)
	}
	gap, err := Simulate(plant, modes, g, 1.0, SimOptions{Horizon: 1, InitialGap: 0.2})
	if err != nil {
		t.Fatal(err)
	}
	s1, ok1 := lti.SettlingTime(noGap.Dense, 1.0, 0.02)
	s2, ok2 := lti.SettlingTime(gap.Dense, 1.0, 0.02)
	if !ok1 || !ok2 {
		t.Fatal("both runs must settle")
	}
	if s2 < s1+0.19 {
		t.Errorf("gap must delay settling: %g vs %g", s2, s1)
	}
	// During the gap the output must remain at the origin.
	for _, smp := range gap.Dense {
		if smp.T < 0.19 && math.Abs(smp.Y) > 1e-12 {
			t.Errorf("output moved during idle gap: t=%g y=%g", smp.T, smp.Y)
		}
	}
}

func TestSimulateDenseMonotonicTime(t *testing.T) {
	plant := servo()
	modes, as := modesFor(t, plant, sched.Schedule{2, 2, 2}, 0)
	g := Gains{
		K: []*mat.Matrix{mat.RowVec(-1, -0.02), mat.RowVec(-1, -0.02)},
		F: []float64{1, 1},
	}
	tr, err := Simulate(plant, modes, g, 0.2, SimOptions{Horizon: 0.02, InitialGap: as.Gap})
	if err != nil {
		t.Fatal(err)
	}
	if !sort.SliceIsSorted(tr.Dense, func(i, j int) bool { return tr.Dense[i].T < tr.Dense[j].T }) {
		t.Error("dense trajectory times must be increasing")
	}
	if len(tr.Inputs) != len(tr.Times) || len(tr.Outputs) != len(tr.Times) {
		t.Error("sampled series lengths differ")
	}
	// Sampling instants follow the schedule: first at the gap, second one
	// in-burst period later.
	if math.Abs(tr.Times[0]-as.Gap) > 1e-9 {
		t.Errorf("first sample at %g, want gap %g", tr.Times[0], as.Gap)
	}
	if math.Abs(tr.Times[1]-tr.Times[0]-as.Periods[0]) > 1e-9 {
		t.Errorf("second sample spacing %g, want %g", tr.Times[1]-tr.Times[0], as.Periods[0])
	}
}

func TestDesignHolisticServo(t *testing.T) {
	plant := servo()
	der, err := sched.Derive(paperTimings(), sched.Schedule{2, 2, 2})
	if err != nil {
		t.Fatal(err)
	}
	cons := Constraints{Ref: 0.2, UMax: 60, SettleDeadline: 45e-3}
	opt := DesignOptions{}
	opt.Swarm.Particles = 12
	opt.Swarm.Iterations = 20
	opt.Swarm.Seed = 3
	d, err := DesignHolistic(plant, der[0], cons, opt)
	if err != nil {
		t.Fatal(err)
	}
	if !d.Feasible {
		t.Fatalf("design infeasible: settled=%v rho=%g maxU=%g s=%g",
			d.Settled, d.SpectralRadius, d.MaxInput, d.SettlingTime)
	}
	if d.SettlingTime <= 0 || d.SettlingTime > 45e-3 {
		t.Errorf("settling time %g out of range", d.SettlingTime)
	}
	if d.Performance <= 0 || d.Performance >= 1 {
		t.Errorf("performance %g out of (0,1)", d.Performance)
	}
	if d.MaxInput > 60 {
		t.Errorf("saturation violated: %g", d.MaxInput)
	}
	if d.SpectralRadius >= 1 {
		t.Errorf("unstable design: rho=%g", d.SpectralRadius)
	}
}

func TestDesignRespectsSaturation(t *testing.T) {
	// With a very tight input bound the design must still respect it
	// (slower but feasible), or be reported infeasible - never silently
	// violate.
	plant := servo()
	der, err := sched.Derive(paperTimings(), sched.RoundRobin(3))
	if err != nil {
		t.Fatal(err)
	}
	cons := Constraints{Ref: 0.2, UMax: 3, SettleDeadline: 45e-3}
	opt := DesignOptions{}
	opt.Swarm.Particles = 12
	opt.Swarm.Iterations = 20
	opt.Swarm.Seed = 5
	d, err := DesignHolistic(plant, der[0], cons, opt)
	if err != nil {
		t.Fatal(err)
	}
	if d.Feasible && d.MaxInput > 3+1e-9 {
		t.Errorf("feasible design violates Umax: %g", d.MaxInput)
	}
}

func TestDesignPerModeBaseline(t *testing.T) {
	plant := servo()
	der, err := sched.Derive(paperTimings(), sched.Schedule{2, 2, 2})
	if err != nil {
		t.Fatal(err)
	}
	cons := Constraints{Ref: 0.2, UMax: 60, SettleDeadline: 45e-3}
	opt := DesignOptions{}
	opt.Swarm.Particles = 10
	opt.Swarm.Iterations = 12
	opt.Swarm.Seed = 7
	d, err := DesignPerMode(plant, der[0], cons, opt)
	if err != nil {
		t.Fatal(err)
	}
	if d.SpectralRadius <= 0 {
		t.Error("per-mode design must report a spectral radius")
	}
	if len(d.Gains.K) != 2 {
		t.Errorf("per-mode gains: %d", len(d.Gains.K))
	}
}

func TestConstraintsValidate(t *testing.T) {
	if (Constraints{Ref: 1, SettleDeadline: 1}).Validate() != nil {
		t.Error("valid constraints rejected")
	}
	if (Constraints{Ref: 0, SettleDeadline: 1}).Validate() == nil {
		t.Error("zero reference accepted")
	}
	if (Constraints{Ref: 1, SettleDeadline: 0}).Validate() == nil {
		t.Error("zero deadline accepted")
	}
}

func TestGainsValidate(t *testing.T) {
	g := Gains{K: []*mat.Matrix{mat.RowVec(1, 2)}, F: []float64{1}}
	if g.Validate(1, 2) != nil {
		t.Error("valid gains rejected")
	}
	if g.Validate(2, 2) == nil {
		t.Error("mode count mismatch accepted")
	}
	if g.Validate(1, 3) == nil {
		t.Error("state count mismatch accepted")
	}
}
