package ctrl

import (
	"math"
	"testing"

	"repro/internal/lti"
	"repro/internal/mat"
	"repro/internal/sched"
)

func TestSimulateInitialStateAndHeldInput(t *testing.T) {
	// Starting at the reference with matching held input must keep the
	// output glued to the reference (equilibrium start).
	plant := firstOrder() // DC gain 1
	d, err := lti.DiscretizeDelayed(plant, 5e-3, 2e-3)
	if err != nil {
		t.Fatal(err)
	}
	modes := []Mode{{D: d}}
	g := Gains{K: []*mat.Matrix{mat.RowVec(0)}, F: []float64{1}}
	r := 3.0
	tr, err := Simulate(plant, modes, g, r, SimOptions{
		Horizon: 0.5,
		X0:      mat.ColVec(r), // state = output for this plant
		UHeld0:  r,             // input that sustains it
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range tr.Dense {
		if math.Abs(s.Y-r) > 1e-9 {
			t.Fatalf("equilibrium start drifted: t=%g y=%g", s.T, s.Y)
		}
	}
}

func TestSimulateRejectsBadInputs(t *testing.T) {
	plant := firstOrder()
	d, _ := lti.DiscretizeDelayed(plant, 5e-3, 0)
	modes := []Mode{{D: d}}
	g := Gains{K: []*mat.Matrix{mat.RowVec(0)}, F: []float64{1}}
	if _, err := Simulate(plant, nil, g, 1, SimOptions{Horizon: 1}); err == nil {
		t.Error("no modes accepted")
	}
	if _, err := Simulate(plant, modes, g, 1, SimOptions{}); err == nil {
		t.Error("zero horizon accepted")
	}
	bad := Gains{K: []*mat.Matrix{mat.RowVec(0, 0)}, F: []float64{1}}
	if _, err := Simulate(plant, modes, bad, 1, SimOptions{Horizon: 1}); err == nil {
		t.Error("wrong gain shape accepted")
	}
}

func TestSimulateDivergenceDetected(t *testing.T) {
	// A wildly destabilizing positive-feedback gain must be reported as an
	// error (non-finite input) rather than producing NaN trajectories.
	plant := servo()
	d, _ := lti.DiscretizeDelayed(plant, 1e-3, 0.5e-3)
	modes := []Mode{{D: d}}
	g := Gains{K: []*mat.Matrix{mat.RowVec(1e6, 1e6)}, F: []float64{0}}
	tr, err := Simulate(plant, modes, g, 0.2, SimOptions{Horizon: 5, X0: mat.ColVec(0.1, 0)})
	if err == nil {
		// If it didn't overflow to non-finite within the horizon, the
		// trajectory must at least be finite.
		for _, s := range tr.Dense {
			if math.IsNaN(s.Y) {
				t.Fatal("NaN escaped the simulator")
			}
		}
	}
}

func TestITAE(t *testing.T) {
	// Right-endpoint rule: the error at t=1 (|0-1| = 1) is the only
	// non-zero contribution.
	tr := &Trajectory{Dense: []lti.Sample{{T: 0, Y: 1}, {T: 1, Y: 0}, {T: 2, Y: 1}}}
	v := tr.ITAE(1)
	if v <= 0 || math.IsInf(v, 0) {
		t.Errorf("ITAE = %g", v)
	}
	perfect := &Trajectory{Dense: []lti.Sample{{T: 0, Y: 1}, {T: 1, Y: 1}}}
	if perfect.ITAE(1) != 0 {
		t.Error("perfect tracking must have zero ITAE")
	}
	empty := &Trajectory{}
	if !math.IsInf(empty.ITAE(1), 1) {
		t.Error("empty trajectory ITAE must be +Inf")
	}
}

func TestBandViolationFraction(t *testing.T) {
	tr := &Trajectory{Dense: []lti.Sample{
		{T: 0, Y: 0}, {T: 1, Y: 1}, {T: 2, Y: 1}, {T: 3, Y: 0},
	}}
	// From t=1: samples 1, 1, 0 -> one of three outside a 2% band around 1.
	got := tr.BandViolationFraction(1, 1, 0.02)
	if math.Abs(got-1.0/3.0) > 1e-12 {
		t.Errorf("violation fraction = %g", got)
	}
	if tr.BandViolationFraction(100, 1, 0.02) != 1 {
		t.Error("empty window must report full violation")
	}
}

func TestMaxDenseDeviationAfter(t *testing.T) {
	tr := &Trajectory{Dense: []lti.Sample{
		{T: 0, Y: 5}, {T: 1, Y: 1.1}, {T: 2, Y: 0.95},
	}}
	if got := tr.MaxDenseDeviationAfter(0.5, 1); math.Abs(got-0.1) > 1e-12 {
		t.Errorf("deviation = %g, want 0.1", got)
	}
}

func TestPolishImprovesOrKeeps(t *testing.T) {
	// Polish must never return a worse point than its start.
	obj := func(x []float64) float64 { return (x[0]-0.3)*(x[0]-0.3) + math.Abs(x[1]) }
	x0 := []float64{-1, 1}
	v0 := obj(x0)
	x, v, evals := polish(x0, v0, []float64{-2, -2}, []float64{2, 2}, obj)
	if v > v0 {
		t.Errorf("polish made it worse: %g -> %g", v0, v)
	}
	if evals <= 0 {
		t.Error("polish must evaluate")
	}
	if math.Abs(x[0]-0.3) > 0.05 || math.Abs(x[1]) > 0.05 {
		t.Errorf("polish did not approach optimum: %v", x)
	}
}

func TestDesignPerModeVsHolisticComparable(t *testing.T) {
	// Both baselines must produce evaluable designs on the same schedule.
	plant := servo()
	der, err := sched.Derive(paperTimings(), sched.Schedule{2, 2, 2})
	if err != nil {
		t.Fatal(err)
	}
	cons := Constraints{Ref: 0.2, UMax: 60, SettleDeadline: 45e-3}
	var opt DesignOptions
	opt.Swarm.Particles = 8
	opt.Swarm.Iterations = 8
	h, err := DesignHolistic(plant, der[0], cons, opt)
	if err != nil {
		t.Fatal(err)
	}
	p, err := DesignPerMode(plant, der[0], cons, opt)
	if err != nil {
		t.Fatal(err)
	}
	if !h.Settled {
		t.Error("holistic design failed to settle on the easy servo")
	}
	if h.Evaluations == 0 || p.Evaluations == 0 {
		t.Error("evaluation counts must be reported")
	}
}
