package ctrl

import (
	"errors"
	"math"
	"testing"

	"repro/internal/mat"
)

// periodicLQRReference is the original allocating formulation of the
// periodic Riccati recursion, retained verbatim as the bit-identity
// reference for the buffer-reusing PeriodicLQR.
func periodicLQRReference(modes []Mode, qOut, rIn float64) ([]*mat.Matrix, error) {
	m := len(modes)
	l := modes[0].D.Ad.Rows()
	n := l + 1

	ahat := make([]*mat.Matrix, m)
	bhat := make([]*mat.Matrix, m)
	for j, md := range modes {
		a := mat.New(n, n)
		a.SetSlice(0, 0, md.D.Ad)
		a.SetSlice(0, l, md.D.BPrev)
		ahat[j] = a
		b := mat.New(n, 1)
		b.SetSlice(0, 0, md.D.BCur)
		b.Set(l, 0, 1)
		bhat[j] = b
	}
	chat := mat.New(1, n)
	chat.SetSlice(0, 0, modes[0].D.C)
	q := chat.Transpose().Mul(chat).Scale(qOut)
	for i := 0; i < n; i++ {
		q.Set(i, i, q.At(i, i)+1e-12*qOut)
	}

	p := q.Clone()
	gains := make([]*mat.Matrix, m)
	const maxSweeps = 4000
	for sweep := 0; sweep < maxSweeps; sweep++ {
		prev := p
		for jj := m - 1; jj >= 0; jj-- {
			j := jj
			a, b := ahat[j], bhat[j]
			pb := p.Mul(b)
			den := rIn + b.Transpose().Mul(pb).At(0, 0)
			if den <= 0 {
				return nil, errors.New("ctrl: PeriodicLQR lost positive definiteness")
			}
			k := b.Transpose().Mul(p).Mul(a).Scale(1 / den)
			gains[j] = k
			pa := p.Mul(a)
			p = q.Add(a.Transpose().Mul(pa)).Sub(a.Transpose().Mul(pb).Mul(k))
			p = p.Add(p.Transpose()).Scale(0.5)
		}
		if p.Sub(prev).MaxAbs() <= 1e-9*(1+p.MaxAbs()) {
			break
		}
	}

	out := make([]*mat.Matrix, m)
	for j := range gains {
		kx := mat.New(1, l)
		for s := 0; s < l; s++ {
			kx.Set(0, s, -gains[j].At(0, s))
		}
		out[j] = kx
	}
	return out, nil
}

// TestPeriodicLQRMatchesReference pins the buffer-reusing recursion against
// the allocating reference bit for bit across the weight range the seed
// generator sweeps.
func TestPeriodicLQRMatchesReference(t *testing.T) {
	plan, modes, _ := objectiveFixture(t)
	_ = plan
	for _, rIn := range []float64{1e-4, 1e-2, 1, 100} {
		want, errW := periodicLQRReference(modes, 1, rIn)
		got, errG := PeriodicLQR(modes, 1, rIn)
		if (errW == nil) != (errG == nil) {
			t.Fatalf("rIn=%g: err %v vs %v", rIn, errW, errG)
		}
		if errW != nil {
			continue
		}
		for j := range want {
			for s := 0; s < want[j].Cols(); s++ {
				w, g := want[j].At(0, s), got[j].At(0, s)
				if math.Float64bits(w) != math.Float64bits(g) {
					t.Fatalf("rIn=%g: K[%d][%d] = %x, reference %x", rIn, j, s, g, w)
				}
			}
		}
	}
}
