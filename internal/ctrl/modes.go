package ctrl

import (
	"errors"
	"fmt"

	"repro/internal/lti"
	"repro/internal/mat"
	"repro/internal/sched"
)

// Mode is one sampling interval of the schedule period: the delayed-input
// discretization of the plant over (h_j, tau_j).
type Mode struct {
	D *lti.DelayedDiscrete
}

// ModesFromSchedule discretizes the plant over every sampling interval of
// the application's derived schedule (Eq. 12 generalized to m_i modes).
func ModesFromSchedule(plant *lti.System, as sched.AppSchedule) ([]Mode, error) {
	if len(as.Periods) == 0 {
		return nil, errors.New("ctrl: schedule has no sampling intervals")
	}
	modes := make([]Mode, len(as.Periods))
	for j := range as.Periods {
		d, err := lti.DiscretizeDelayed(plant, as.Periods[j], as.Delays[j])
		if err != nil {
			return nil, fmt.Errorf("ctrl: mode %d (h=%g, tau=%g): %w", j, as.Periods[j], as.Delays[j], err)
		}
		modes[j] = Mode{D: d}
	}
	return modes, nil
}

// Gains holds the holistic controller of one application: a feedback row
// vector K_j and feedforward scalar F_j for every task j of the burst
// (Eq. 13/17).
type Gains struct {
	K []*mat.Matrix // each 1-by-l
	F []float64
}

// Validate checks that the gain set matches m modes of an l-state plant.
func (g Gains) Validate(m, l int) error {
	if len(g.K) != m || len(g.F) != m {
		return fmt.Errorf("ctrl: gains for %d/%d modes, want %d", len(g.K), len(g.F), m)
	}
	for j, k := range g.K {
		if k == nil || k.Rows() != 1 || k.Cols() != l {
			return fmt.Errorf("ctrl: K[%d] must be 1x%d", j, l)
		}
	}
	return nil
}

// ModeClosedLoop returns the closed-loop transition matrix of one mode on
// the augmented state z = [x; u_held]:
//
//	z[k+1] = [ Ad + BCur*K   BPrev ] z[k] + [ BCur*F ] r
//	         [      K          0   ]        [    F   ]
//
// where u_held is the input actuated most recently before the sampling
// instant. The second block row records u[k] = K x[k] + F r becoming the
// held input of the next interval.
func ModeClosedLoop(m Mode, k *mat.Matrix, f float64) (phi *mat.Matrix, gamma *mat.Matrix) {
	l := m.D.Ad.Rows()
	phi = mat.New(l+1, l+1)
	phi.SetSlice(0, 0, m.D.Ad.Add(m.D.BCur.Mul(k)))
	phi.SetSlice(0, l, m.D.BPrev)
	phi.SetSlice(l, 0, k)
	// phi[l][l] = 0: the held input is fully replaced each interval.
	gamma = mat.New(l+1, 1)
	gamma.SetSlice(0, 0, m.D.BCur.Scale(f))
	gamma.Set(l, 0, f)
	return phi, gamma
}

// Monodromy returns the product Phi = M_m * ... * M_1 of the closed-loop
// mode matrices over one schedule period. Its spectral radius determines
// the stability of the periodically switched closed loop; it plays the
// role of the lifted matrix A_hol of Eq. (16).
func Monodromy(modes []Mode, g Gains) (*mat.Matrix, error) {
	if len(modes) == 0 {
		return nil, errors.New("ctrl: no modes")
	}
	l := modes[0].D.Ad.Rows()
	if err := g.Validate(len(modes), l); err != nil {
		return nil, err
	}
	phi := mat.Identity(l + 1)
	for j := range modes {
		mj, _ := ModeClosedLoop(modes[j], g.K[j], g.F[j])
		phi = mj.Mul(phi)
	}
	return phi, nil
}

// StableMonodromy reports the closed-loop stability of the switched system
// and its spectral radius.
func StableMonodromy(modes []Mode, g Gains) (bool, float64, error) {
	phi, err := Monodromy(modes, g)
	if err != nil {
		return false, 0, err
	}
	rho, err := mat.SpectralRadius(phi)
	if err != nil {
		return false, 0, err
	}
	return rho < 1, rho, nil
}

// HolisticFeedforward computes the feedforward gains F_1..F_m jointly so
// that the closed-loop *periodic orbit* satisfies y = r at every sampling
// instant. Per-mode feedforward (Eq. 17) regulates each mode's individual
// fixed point to r; under switching, those fixed points differ, leaving a
// permanent sampled-output ripple. Solving the periodic-orbit conditions
//
//	z_{j+1} = M_j z_j + ĝ_j F_j,   C x_j = 1   (j cyclic, unit reference)
//
// for the orbit states z_j and the gains F_j eliminates that ripple; by
// linearity the same gains track any reference magnitude. It returns an
// error when the system is singular (e.g. the closed loop cannot reach the
// reference).
func HolisticFeedforward(modes []Mode, k []*mat.Matrix) ([]float64, error) {
	m := len(modes)
	if m == 0 {
		return nil, errors.New("ctrl: no modes")
	}
	l := modes[0].D.Ad.Rows()
	n := l + 1     // augmented state dimension
	dim := m*n + m // unknowns: z_0..z_{m-1}, F_0..F_{m-1}
	a := mat.New(dim, dim)
	b := mat.New(dim, 1)

	for j := 0; j < m; j++ {
		mj, _ := ModeClosedLoop(modes[j], k[j], 0) // F enters via ĝ_j below
		gj := mat.New(n, 1)
		gj.SetSlice(0, 0, modes[j].D.BCur)
		gj.Set(l, 0, 1)
		next := (j + 1) % m
		// Rows j*n .. j*n+n-1:  z_next - M_j z_j - g_j F_j = 0.
		for r := 0; r < n; r++ {
			row := j*n + r
			a.Set(row, next*n+r, 1)
			for c := 0; c < n; c++ {
				a.Set(row, j*n+c, a.At(row, j*n+c)-mj.At(r, c))
			}
			a.Set(row, m*n+j, -gj.At(r, 0))
		}
	}
	// Output constraints: C x_j = 1 at every sampling instant.
	cRow := modes[0].D.C
	for j := 0; j < m; j++ {
		row := m*n + j
		for s := 0; s < l; s++ {
			a.Set(row, j*n+s, cRow.At(0, s))
		}
		b.Set(row, 0, 1)
	}

	w, err := mat.Solve(a, b)
	if err != nil {
		return nil, fmt.Errorf("ctrl: holistic feedforward: %w", err)
	}
	out := make([]float64, m)
	for j := 0; j < m; j++ {
		out[j] = w.At(m*n+j, 0)
	}
	return out, nil
}

// LiftedAhol builds the paper's explicit 2l-by-2l lifted closed-loop matrix
// of Eq. (16) for the two-mode case (schedule bursts of length 2), on the
// state z[k] = [x[k]; x[k+1]]. It exists to cross-validate Monodromy: the
// non-zero eigenvalues of A_hol must match those of the augmented two-mode
// monodromy.
//
// Mode conventions follow Section III: mode 1 is an in-burst interval
// (tau = h, input matrix B1 = Γ(h1)), mode 2 the burst-final interval with
// tau2 < h2 and split input matrices B12 (held) and B22 (current).
func LiftedAhol(mode1, mode2 Mode, k1, k2 *mat.Matrix) *mat.Matrix {
	a1 := mode1.D.Ad
	b1 := mode1.D.BPrev // Γ(h1): in-burst interval has tau = h
	a2 := mode2.D.Ad
	b12 := mode2.D.BPrev
	b22 := mode2.D.BCur

	// x[k]   = A2 x[k-1] + B12 u[k-2] + B22 u[k-1]
	// x[k+1] = A1 x[k]   + B1 u[k-1]
	// with u[k-2] = K1 x[k-2], u[k-1] = K2 x[k-1]  (reference terms omitted:
	// A_hol is the autonomous part).
	top0 := b12.Mul(k1)                  // coefficient of x[k-2] in x[k]
	top1 := a2.Add(b22.Mul(k2))          // coefficient of x[k-1] in x[k]
	bot0 := a1.Mul(b12).Mul(k1)          // coefficient of x[k-2] in x[k+1]
	bot1 := a1.Mul(top1).Add(b1.Mul(k2)) // coefficient of x[k-1] in x[k+1]
	return mat.Block([][]*mat.Matrix{{top0, top1}, {bot0, bot1}})
}
