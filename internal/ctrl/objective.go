package ctrl

import (
	"repro/internal/mat"
)

// designEval is one worker's reusable evaluation state for the holistic
// design objective: the gain buffers, the monodromy/stability workspace,
// and the holistic-feedforward linear system are allocated once and
// overwritten per candidate, so the steady-state objective call performs no
// heap allocation beyond what the underlying plan pools. Every computation
// mirrors the allocating reference path (gainsFromVectorFF +
// designObjective) operation for operation, so values are bit-identical —
// pinned by TestDesignEvalMatchesReference. A designEval is not safe for
// concurrent use; the PSO pool creates one per worker (pso.Problem.
// NewObjective), which keeps the plan's segment arena and this scratch hot
// in one worker's cache while it batch-evaluates its share of a particle
// generation.
type designEval struct {
	plan      *SimPlan
	modes     []Mode
	cons      Constraints
	perModeFF bool
	m, l      int

	g    Gains     // reused per candidate; K entries are overwritten in place
	tile []float64 // phase-1 shared-gain tiling buffer

	mj, prodA, prodB *mat.Matrix // mode closed-loop matrix + monodromy ping-pong
	eig              *mat.EigWorkspace

	ffA, ffB *mat.Matrix // holistic-feedforward periodic-orbit system
	lu       *mat.LUWorkspace
}

func newDesignEval(plan *SimPlan, modes []Mode, cons Constraints, perModeFF bool) *designEval {
	m, l := len(modes), modes[0].D.Ad.Rows()
	n := l + 1
	dim := m*n + m
	e := &designEval{
		plan: plan, modes: modes, cons: cons, perModeFF: perModeFF, m: m, l: l,
		g:     Gains{K: make([]*mat.Matrix, m), F: make([]float64, m)},
		tile:  make([]float64, m*l),
		mj:    mat.New(n, n),
		prodA: mat.New(n, n),
		prodB: mat.New(n, n),
		eig:   mat.NewEigWorkspace(n),
		ffA:   mat.New(dim, dim),
		ffB:   mat.New(dim, 1),
		lu:    mat.NewLUWorkspace(dim, 1),
	}
	for j := range e.g.K {
		e.g.K[j] = mat.New(1, l)
	}
	return e
}

// setGains unpacks the decision vector into the reused gain buffers and
// computes the matching feedforward, mirroring gainsFromVectorFF.
func (e *designEval) setGains(x []float64) error {
	for j := 0; j < e.m; j++ {
		for s := 0; s < e.l; s++ {
			e.g.K[j].Set(0, s, x[j*e.l+s])
		}
	}
	if e.perModeFF {
		// Ablation path (rare): keep the allocating per-mode solve.
		for j := 0; j < e.m; j++ {
			f, err := Feedforward(e.modes[j].D.Ad, e.modes[j].D.BTotal(), e.modes[j].D.C, e.g.K[j])
			if err != nil {
				return err
			}
			e.g.F[j] = f
		}
		return nil
	}
	return e.holisticFeedforward()
}

// holisticFeedforward solves the periodic-orbit conditions of
// HolisticFeedforward in the reused linear system, writing the gains into
// e.g.F. Matrix assembly and the LU solve run the same operations on the
// same values, so the gains are bit-identical.
func (e *designEval) holisticFeedforward() error {
	m, l := e.m, e.l
	n := l + 1
	e.ffA.Zero()
	e.ffB.Zero()
	for j := 0; j < m; j++ {
		modeClosedLoopInto(e.mj, e.modes[j], e.g.K[j])
		next := (j + 1) % m
		bcur := e.modes[j].D.BCur
		for r := 0; r < n; r++ {
			row := j*n + r
			e.ffA.Set(row, next*n+r, 1)
			for c := 0; c < n; c++ {
				e.ffA.Set(row, j*n+c, e.ffA.At(row, j*n+c)-e.mj.At(r, c))
			}
			// ĝ_j = [BCur; 1]: the reference-injection column of mode j.
			gjr := 1.0
			if r < l {
				gjr = bcur.At(r, 0)
			}
			e.ffA.Set(row, m*n+j, -gjr)
		}
	}
	cRow := e.modes[0].D.C
	for j := 0; j < m; j++ {
		row := m*n + j
		for s := 0; s < l; s++ {
			e.ffA.Set(row, j*n+s, cRow.At(0, s))
		}
		e.ffB.Set(row, 0, 1)
	}
	w, err := e.lu.Solve(e.ffA, e.ffB)
	if err != nil {
		return err
	}
	for j := 0; j < m; j++ {
		e.g.F[j] = w.At(m*n+j, 0)
	}
	return nil
}

// modeClosedLoopInto writes ModeClosedLoop's phi matrix into dst without
// allocating: dst = [[Ad + BCur*K, BPrev], [K, 0]]. The BCur*K product has
// inner dimension one, so every entry is a single multiply-add exactly like
// the Mul/Add reference.
func modeClosedLoopInto(dst *mat.Matrix, md Mode, k *mat.Matrix) {
	l := md.D.Ad.Rows()
	ad, bcur, bprev := md.D.Ad, md.D.BCur, md.D.BPrev
	for i := 0; i < l; i++ {
		bi := bcur.At(i, 0)
		for j := 0; j < l; j++ {
			dst.Set(i, j, ad.At(i, j)+bi*k.At(0, j))
		}
		dst.Set(i, l, bprev.At(i, 0))
	}
	for j := 0; j < l; j++ {
		dst.Set(l, j, k.At(0, j))
	}
	dst.Set(l, l, 0)
}

// stableMonodromy is StableMonodromy on the reused buffers: the same
// left-multiplied product chain and the same eigenvalue iteration, without
// the per-call matrices.
func (e *designEval) stableMonodromy() (bool, float64, error) {
	e.prodA.SetIdentity()
	cur, buf := e.prodA, e.prodB
	for j := range e.modes {
		modeClosedLoopInto(e.mj, e.modes[j], e.g.K[j])
		e.mj.MulTo(buf, cur)
		cur, buf = buf, cur
	}
	rho, err := e.eig.SpectralRadius(cur)
	if err != nil {
		return false, 0, err
	}
	return rho < 1, rho, nil
}

// objective evaluates the full per-mode decision vector; it equals the
// reference designObjective over gainsFromVectorFF bit for bit.
func (e *designEval) objective(x []float64) float64 {
	if err := e.setGains(x); err != nil {
		return 1e6
	}
	stable, rho, err := e.stableMonodromy()
	return monodromyScore(e.plan, e.g, e.cons, stable, rho, err)
}

// sharedObjective evaluates a single gain tiled across all modes (the
// phase-1 pre-solve of DesignHolistic).
func (e *designEval) sharedObjective(k []float64) float64 {
	for j := 0; j < e.m; j++ {
		copy(e.tile[j*e.l:(j+1)*e.l], k)
	}
	return e.objective(e.tile)
}
