package ctrl

import (
	"math"
	"testing"

	"repro/internal/lti"
	"repro/internal/mat"
	"repro/internal/sched"
)

func TestPeriodicLQRStabilizes(t *testing.T) {
	plant := servo()
	for _, s := range []sched.Schedule{{1, 1, 1}, {2, 2, 2}, {3, 2, 3}} {
		modes, _ := modesFor(t, plant, s, 0)
		ks, err := PeriodicLQR(modes, 1, 1e-3)
		if err != nil {
			t.Fatalf("%v: %v", s, err)
		}
		if len(ks) != len(modes) {
			t.Fatalf("%v: %d gains for %d modes", s, len(ks), len(modes))
		}
		fs, err := HolisticFeedforward(modes, ks)
		if err != nil {
			t.Fatalf("%v feedforward: %v", s, err)
		}
		g := Gains{K: ks, F: fs}
		stable, rho, err := StableMonodromy(modes, g)
		if err != nil {
			t.Fatal(err)
		}
		if !stable {
			t.Errorf("%v: LQR gains unstable (rho=%g)", s, rho)
		}
	}
}

func TestPeriodicLQRWeightMonotonicity(t *testing.T) {
	// Heavier input weight must give weaker gains (smaller norm).
	plant := servo()
	modes, _ := modesFor(t, plant, sched.Schedule{2, 2, 2}, 0)
	kLight, err := PeriodicLQR(modes, 1, 1e-4)
	if err != nil {
		t.Fatal(err)
	}
	kHeavy, err := PeriodicLQR(modes, 1, 10)
	if err != nil {
		t.Fatal(err)
	}
	nl := kLight[0].Frobenius()
	nh := kHeavy[0].Frobenius()
	if nh >= nl {
		t.Errorf("heavier input weight should shrink gains: %g vs %g", nh, nl)
	}
}

func TestPeriodicLQRRejectsBadInput(t *testing.T) {
	if _, err := PeriodicLQR(nil, 1, 1); err == nil {
		t.Error("no modes accepted")
	}
	plant := servo()
	modes, _ := modesFor(t, plant, sched.Schedule{1, 1, 1}, 0)
	if _, err := PeriodicLQR(modes, 0, 1); err == nil {
		t.Error("zero state weight accepted")
	}
	if _, err := PeriodicLQR(modes, 1, -1); err == nil {
		t.Error("negative input weight accepted")
	}
}

func TestLQRSeedGainsShape(t *testing.T) {
	plant := servo()
	modes, _ := modesFor(t, plant, sched.Schedule{3, 2, 3}, 0)
	seeds, scale := LQRSeedGains(modes)
	if len(seeds) == 0 {
		t.Fatal("no LQR seeds")
	}
	for i, sd := range seeds {
		if len(sd) != len(modes)*plant.Order() {
			t.Errorf("seed %d has %d entries", i, len(sd))
		}
	}
	for s, v := range scale {
		if v <= 0 {
			t.Errorf("scale[%d] = %g", s, v)
		}
	}
}

func TestHolisticFeedforwardOrbitOnReference(t *testing.T) {
	// For a NON-integrating plant (distinct per-mode DC fixed points) the
	// holistic feedforward must make the closed-loop periodic orbit pass
	// through y = r at every sampling instant, while the per-mode Eq. (17)
	// feedforward generally does not.
	plant := lti.MustSystem(
		mat.NewFromRows([][]float64{{-30, 10}, {0, -200}}),
		mat.ColVec(0, 400),
		mat.RowVec(1, 0),
	)
	der, err := sched.Derive(paperTimings(), sched.Schedule{3, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	modes, err := ModesFromSchedule(plant, der[0])
	if err != nil {
		t.Fatal(err)
	}
	ks, err := PeriodicLQR(modes, 1, 1e-2)
	if err != nil {
		t.Fatal(err)
	}
	fs, err := HolisticFeedforward(modes, ks)
	if err != nil {
		t.Fatal(err)
	}
	g := Gains{K: ks, F: fs}
	r := 2.5
	tr, err := Simulate(plant, modes, g, r, SimOptions{Horizon: 2.0, InitialGap: der[0].Gap})
	if err != nil {
		t.Fatal(err)
	}
	// After the transient dies, every sampled output must equal r.
	n := len(tr.Outputs)
	for i := n - 2*len(modes); i < n; i++ {
		if math.Abs(tr.Outputs[i]-r) > 1e-6*math.Abs(r) {
			t.Errorf("sampled output %d = %g, want %g", i, tr.Outputs[i], r)
		}
	}
}

func TestPerModeFeedforwardEquivalence(t *testing.T) {
	// Because every mode is an exact ZOH discretization of the same
	// continuous plant, the constant-input DC fixed point is shared by all
	// modes; the per-mode Eq. (17) feedforward therefore coincides with
	// the joint periodic-orbit solution. This test documents and pins that
	// equivalence (the joint solver exists for numerical robustness and
	// for non-uniform mode families, e.g. multi-plant extensions).
	plant := lti.MustSystem(
		mat.NewFromRows([][]float64{{-30, 10}, {0, -200}}),
		mat.ColVec(0, 400),
		mat.RowVec(1, 0),
	)
	der, err := sched.Derive(paperTimings(), sched.Schedule{3, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	modes, err := ModesFromSchedule(plant, der[0])
	if err != nil {
		t.Fatal(err)
	}
	ks, err := PeriodicLQR(modes, 1, 1e-2)
	if err != nil {
		t.Fatal(err)
	}
	g := Gains{K: ks, F: make([]float64, len(modes))}
	for j := range modes {
		f, err := Feedforward(modes[j].D.Ad, modes[j].D.BTotal(), modes[j].D.C, ks[j])
		if err != nil {
			t.Fatal(err)
		}
		g.F[j] = f
	}
	joint, err := HolisticFeedforward(modes, ks)
	if err != nil {
		t.Fatal(err)
	}
	for j := range modes {
		if math.Abs(g.F[j]-joint[j]) > 1e-6*(1+math.Abs(joint[j])) {
			t.Errorf("mode %d: per-mode F=%g, joint F=%g", j, g.F[j], joint[j])
		}
	}
}
