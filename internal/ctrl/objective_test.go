package ctrl

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/lti"
	"repro/internal/mat"
	"repro/internal/sched"
)

// objectiveFixture compiles a two-mode design problem on a second-order
// plant, mirroring the case-study geometry the search exercises.
func objectiveFixture(t *testing.T) (*SimPlan, []Mode, Constraints) {
	t.Helper()
	plant := &lti.System{
		A: mat.NewFromRows([][]float64{{0, 1}, {-4, -1.2}}),
		B: mat.ColVec(0, 1),
		C: mat.RowVec(1, 0),
	}
	as := sched.AppSchedule{
		Name: "fx", M: 2,
		WCETs:   []float64{48e-6, 28e-6},
		Periods: []float64{48e-6, 28e-6 + 150e-6},
		Delays:  []float64{48e-6, 28e-6},
		Gap:     150e-6,
	}
	modes, err := ModesFromSchedule(plant, as)
	if err != nil {
		t.Fatal(err)
	}
	cons := Constraints{Ref: 0.2, UMax: 60, SettleDeadline: 5e-3}.withDefaults()
	plan, err := CompileSimPlan(plant, modes, SimOptions{Horizon: 2.5 * cons.SettleDeadline, InitialGap: as.Gap})
	if err != nil {
		t.Fatal(err)
	}
	return plan, modes, cons
}

// TestDesignEvalMatchesReference pins the per-worker scratch objective
// against the allocating reference path (gainsFromVectorFF +
// designObjective) bit for bit, across random candidates including wild
// unstable ones, for both feedforward variants.
func TestDesignEvalMatchesReference(t *testing.T) {
	plan, modes, cons := objectiveFixture(t)
	m, l := len(modes), 2
	for _, perMode := range []bool{false, true} {
		eval := newDesignEval(plan, modes, cons, perMode)
		reference := func(x []float64) float64 {
			g, err := gainsFromVectorFF(x, modes, m, l, perMode)
			if err != nil {
				return 1e6
			}
			return designObjective(plan, modes, g, cons)
		}
		r := rand.New(rand.NewSource(42))
		for trial := 0; trial < 60; trial++ {
			x := make([]float64, m*l)
			scale := math.Pow(10, float64(r.Intn(5))-1) // 0.1 .. 1000
			for i := range x {
				x[i] = scale * r.NormFloat64()
			}
			want := reference(x)
			got := eval.objective(x)
			if math.Float64bits(want) != math.Float64bits(got) {
				t.Fatalf("perMode=%v trial %d: designEval %v (%x), reference %v (%x)",
					perMode, trial, got, math.Float64bits(got), want, math.Float64bits(want))
			}
		}
	}
}

// TestDesignEvalSharedObjectiveMatchesTiled pins the phase-1 shared-gain
// path against tiling by hand.
func TestDesignEvalSharedObjectiveMatchesTiled(t *testing.T) {
	plan, modes, cons := objectiveFixture(t)
	eval := newDesignEval(plan, modes, cons, false)
	check := newDesignEval(plan, modes, cons, false)
	r := rand.New(rand.NewSource(7))
	for trial := 0; trial < 20; trial++ {
		k := []float64{r.NormFloat64(), r.NormFloat64()}
		tiled := append(append([]float64(nil), k...), k...)
		want := check.objective(tiled)
		got := eval.sharedObjective(k)
		if math.Float64bits(want) != math.Float64bits(got) {
			t.Fatalf("trial %d: shared %v, tiled %v", trial, got, want)
		}
	}
}

// TestDesignEvalInstancesAgree pins that independent instances (the
// per-worker copies the PSO pool creates) compute identical values, which
// is what makes parallel evaluation bit-identical to serial.
func TestDesignEvalInstancesAgree(t *testing.T) {
	plan, modes, cons := objectiveFixture(t)
	a := newDesignEval(plan, modes, cons, false)
	b := newDesignEval(plan, modes, cons, false)
	r := rand.New(rand.NewSource(3))
	for trial := 0; trial < 20; trial++ {
		x := make([]float64, 4)
		for i := range x {
			x[i] = 5 * r.NormFloat64()
		}
		va, vb := a.objective(x), b.objective(x)
		if math.Float64bits(va) != math.Float64bits(vb) {
			t.Fatalf("trial %d: instance values differ: %v vs %v", trial, va, vb)
		}
	}
}

// TestModeClosedLoopIntoMatchesReference pins the in-place mode matrix
// against ModeClosedLoop.
func TestModeClosedLoopIntoMatchesReference(t *testing.T) {
	_, modes, _ := objectiveFixture(t)
	r := rand.New(rand.NewSource(11))
	l := modes[0].D.Ad.Rows()
	dst := mat.New(l+1, l+1)
	for trial := 0; trial < 20; trial++ {
		k := mat.New(1, l)
		for s := 0; s < l; s++ {
			k.Set(0, s, 10*r.NormFloat64())
		}
		for _, md := range modes {
			want, _ := ModeClosedLoop(md, k, 0)
			modeClosedLoopInto(dst, md, k)
			for i := 0; i <= l; i++ {
				for j := 0; j <= l; j++ {
					if math.Float64bits(want.At(i, j)) != math.Float64bits(dst.At(i, j)) {
						t.Fatalf("phi[%d,%d]: in-place %v, reference %v", i, j, dst.At(i, j), want.At(i, j))
					}
				}
			}
		}
	}
}
